package semicont

import (
	"testing"

	"semicont/internal/faults"
	"semicont/internal/workload"
)

// FuzzScenarioValidate fuzzes the public configuration surface against
// the validation authority contract: Validate must never panic on any
// input, and a scenario that validates must build and run. The second
// half is gated behind a bounded envelope so the fuzzer cannot demand a
// multi-hour simulation — inside the envelope a clean Validate followed
// by a Run error (other than an audit violation, which would be an
// engine bug in its own right) means Validate let something through
// that the construction path rejects, i.e. a gap in the contract.
func FuzzScenarioValidate(f *testing.F) {
	f.Add(5, 100.0, 50, 600.0, 1800.0, 2.2, 3.0,
		0.2, 0, true, 1, 1, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.0, 0.0, 0, uint64(1),
		0.0, 0.0, false, false, false, "", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0,
		0, 0.0, 0.0, "", "", 0.0)
	f.Add(2, 30.0, 25, 300.0, 900.0, 2.0, 3.0,
		0.0, 0, false, 0, 0, true, false, 0.0, 0.2, 30.0, 120.0, -1.0, 1.2, 0.5, 1, uint64(7),
		0.02, 0.01, true, true, true, "least-loaded", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 2,
		0, 0.0, 0.0, "", "", 0.0)
	f.Add(3, 45.0, 25, 300.0, 900.0, 2.0, 3.0,
		0.2, 2, true, -1, 2, false, true, 0.0, 0.0, 30.0, 120.0, 1.0, 1.0, 0.0, 0, uint64(9),
		0.05, 0.02, false, true, false, "most-headroom", "direct-only",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 3,
		0, 0.0, 0.0, "", "", 0.0)
	f.Add(4, 60.0, 30, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, false, 0, 0, false, false, 300.0, 0.0, 30.0, 120.0, -1.5, 1.0, 0.0, 0, uint64(3),
		-1.0, 0.5, false, false, true, "nonsense", "nonsense",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, -1,
		0, 0.0, 0.0, "", "", 0.0)
	// DRM + server churn + retry queue + a non-default controller pair in
	// one seed: the selector seam is crossed by arrivals, retry
	// re-attempts, and rescue reconnects all at once — sharded, so the
	// global-event merge sits under all of it.
	f.Add(4, 60.0, 20, 300.0, 900.0, 2.5, 3.0,
		0.2, 0, true, 2, 2, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.2, 0.0, 0, uint64(11),
		0.5, 0.1, true, true, true, "random-feasible", "chain-dfs",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 4,
		0, 0.0, 0.0, "", "", 0.0)
	// Interactivity under intermittent scheduling with a heterogeneous
	// client mix: pause/resume churns the wake index while the two
	// classes diverge on bufCap (StagingFrac) and recvCap (ReceiveCap),
	// so the per-slot lane state is rewritten on every resume.
	f.Add(4, 60.0, 25, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, true, 1, 1, false, true, 0.0, 0.3, 10.0, 60.0, 0.271, 1.0, 0.0, 0, uint64(13),
		0.0, 0.0, false, false, false, "", "",
		2, 2.0, 0.3, 0.05, 6.0, 4.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 2,
		0, 0.0, 0.0, "", "", 0.0)
	// Every viewer pauses, with short pauses (rapid resume churn) and a
	// single class whose receive cap sits barely above the view rate:
	// spare feeds saturate immediately, so the spare path's wake-key
	// rewrites happen at the recvCap clamp.
	f.Add(3, 45.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.0, 1, false, 1, 1, false, false, 0.0, 1.0, 1.0, 5.0, 0.0, 1.0, 0.0, 0, uint64(17),
		0.0, 0.0, false, false, false, "", "",
		1, 0.0, 0.5, 0.0, 3.5, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 3,
		0, 0.0, 0.0, "", "", 0.0)
	// Degenerate mix weights: class B has weight zero (never drawn but
	// still validated), pause range collapsed to a point, even-split
	// spare. Exercises the ClientMix validation edge and the fixed-length
	// pause path together.
	f.Add(3, 45.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.1, 2, false, 1, 1, false, true, 0.0, 0.5, 45.0, 45.0, 0.0, 1.0, 0.0, 0, uint64(19),
		0.0, 0.0, false, false, false, "", "",
		2, 0.0, 0.4, 0.2, 0.0, 8.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0,
		0, 0.0, 0.0, "", "", 0.0)
	// Brownout churn under two traffic classes with shedding armed: the
	// shed controller, the class selector seam, and dimmed capacity all
	// interact on one audited run.
	f.Add(4, 60.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, true, 1, 1, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.0, 0.0, 0, uint64(23),
		0.0, 0.0, false, true, true, "", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.3, 0.1, 0.5, 2, 3.0, 600.0, 0.75, 0.0, 0.0, 2,
		0, 0.0, 0.0, "", "", 0.0)
	// Flash crowd stacked on a diurnal curve with classes but no
	// shedding: the thinned arrival path feeds the class draw while the
	// surge concentrates on video zero.
	f.Add(4, 60.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, true, 1, 1, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.0, 0.0, 0, uint64(29),
		0.0, 0.0, false, true, true, "", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 2, 1.0, 0.0, 0.0, 0.5, 3.0, 8,
		0, 0.0, 0.0, "", "", 0.0)
	// Edge tier with batch-prefix sharing, sharded: suffix streams with
	// nonzero start offsets cross the prefix probe, the join path, and
	// the global-event merge in one audited run.
	f.Add(4, 60.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, true, 1, 1, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.0, 0.0, 0, uint64(31),
		0.0, 0.0, false, false, false, "", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 4,
		2, 300.0, 20000.0, "", "batch-prefix", 120.0)
	// An lru-filled edge under fault churn with the retry queue: cache
	// content depends on arrival order, which rescue re-attempts and
	// degraded restarts reshuffle.
	f.Add(4, 60.0, 20, 300.0, 900.0, 2.0, 3.0,
		0.2, 0, true, 1, 1, false, false, 0.0, 0.0, 30.0, 120.0, 0.271, 1.0, 0.0, 0, uint64(37),
		0.5, 0.1, false, true, true, "", "",
		0, 0.0, 0.0, 0.0, 0.0, 0.0,
		0.0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 2,
		1, 600.0, 9000.0, "lru", "", 0.0)
	f.Fuzz(func(t *testing.T,
		numServers int, bw float64, numVideos int, minLen, maxLen, avgCopies, viewRate float64,
		stagingFrac float64, spare int, migration bool, maxHops, maxChain int,
		replicate, intermittent bool, patchWindow, pauseProb float64,
		minPause, maxPause float64,
		theta, load, failAt float64, failServer int, seed uint64,
		mtbf, mttr float64, cold, retryQueue, degraded bool,
		selector, planner string,
		classes int, classWeightB, classStagingA, classStagingB, classRecvA, classRecvB float64,
		bmtbf, bmttr, bfrac float64, tclasses int, tShareB, tPatience, shedWM float64,
		diurnalAmp, flashFactor float64, shards int,
		edgeNodes int, edgePrefixSec, edgeCacheMb float64,
		edgeCachePol, batchPol string, batchWindow float64) {
		sc := Scenario{
			System: System{
				Name:            "fuzz",
				NumServers:      numServers,
				ServerBandwidth: bw,
				DiskCapacity:    1e6,
				NumVideos:       numVideos,
				MinVideoLength:  minLen,
				MaxVideoLength:  maxLen,
				AvgCopies:       avgCopies,
				ViewRate:        viewRate,
			},
			Policy: Policy{
				Name:             "fuzz",
				StagingFrac:      stagingFrac,
				Spare:            SpareKind(spare),
				Migration:        migration,
				MaxHops:          maxHops,
				MaxChain:         maxChain,
				Replicate:        replicate,
				Intermittent:     intermittent,
				PatchWindowSec:   patchWindow,
				PauseProb:        pauseProb,
				MinPauseSec:      minPause,
				MaxPauseSec:      maxPause,
				RetryQueue:       retryQueue,
				DegradedPlayback: degraded,
				Selector:         selector,
				Planner:          planner,
				ShedWatermark:    shedWM,
				EdgeNodes:        edgeNodes,
				EdgePrefixSec:    edgePrefixSec,
				EdgeCacheMb:      edgeCacheMb,
				EdgeCachePolicy:  edgeCachePol,
				BatchPolicy:      batchPol,
				BatchWindowSec:   batchWindow,
			},
			Theta:        theta,
			HorizonHours: 1,
			LoadFactor:   load,
			Seed:         seed,
			// Shards flows through unclamped too (Validate rejects
			// negatives; the engine caps the count at NumServers), so
			// sharded merge paths are fuzzed under faults, classes,
			// curves, and retry queues alike.
			Shards:      shards,
			FailServer:  failServer,
			FailAtHours: failAt,
			Faults: faults.Config{
				MTBFHours: mtbf, MTTRHours: mttr, Cold: cold,
				BrownoutMTBFHours: bmtbf, BrownoutMTTRHours: bmttr, BrownoutFraction: bfrac,
			},
		}
		// classes selects the heterogeneous-population shape: 0 leaves
		// ClientMix nil (homogeneous StagingFrac path), 1 is a single
		// class, anything else a two-class mix. The field values flow
		// through unclamped — Validate owns the rejection.
		switch {
		case classes <= 0:
		case classes == 1:
			sc.Policy.ClientMix = []ClientClass{
				{Weight: 1, StagingFrac: classStagingA, ReceiveCap: classRecvA},
			}
		default:
			sc.Policy.ClientMix = []ClientClass{
				{Weight: 1, StagingFrac: classStagingA, ReceiveCap: classRecvA},
				{Weight: classWeightB, StagingFrac: classStagingB, ReceiveCap: classRecvB},
			}
		}
		// tclasses shapes the traffic-class tiers the same way; one class
		// with shedWM > 0 is a deliberate negative case (Validate requires
		// at least two tiers to differentiate).
		switch {
		case tclasses <= 0:
		case tclasses == 1:
			sc.Policy.Classes = []TrafficClass{
				{Name: "premium", Share: 1, RetryPatienceSec: tPatience},
			}
		default:
			sc.Policy.Classes = []TrafficClass{
				{Name: "premium", Share: 1, RetryPatienceSec: tPatience},
				{Name: "standard", Share: tShareB},
			}
		}
		// The curve params flow through unclamped too; a flash window is
		// synthesized inside the shortened run envelope so accepted curves
		// actually modulate the run.
		sc.Curve = workload.Curve{DiurnalAmp: diurnalAmp}
		if flashFactor != 0 {
			sc.Curve.FlashAt = 30
			sc.Curve.FlashDuration = 60
			sc.Curve.FlashFactor = flashFactor
		}
		if sc.Faults.Enabled() {
			// The stochastic process and the legacy single-failure knob are
			// mutually exclusive by contract; exercise the fault path.
			sc.FailAtHours = 0
		}
		if err := sc.Validate(); err != nil {
			return // rejection is fine; panicking is not
		}
		// Bounded envelope: small enough that a run takes milliseconds.
		if numServers > 5 || numVideos > 50 || bw > 150 ||
			viewRate < 1 || minLen < 60 || maxLen > 1800 ||
			theta < -2 || theta > 2 || load > 1.5 ||
			stagingFrac > 1 || patchWindow > 1800 ||
			maxPause > 3600 || classStagingA > 1 || classStagingB > 1 ||
			flashFactor > 20 || tShareB > 1e6 ||
			edgeNodes > 8 || edgePrefixSec > 3600 || batchWindow > 1800 {
			return
		}
		// A sub-minute MTBF would compile thousands of fault events even
		// for the shortened horizon; keep churn but bound the schedule.
		if mtbf > 0 && mtbf < 0.01 || bmtbf > 0 && bmtbf < 0.01 {
			return
		}
		// Placement feasibility depends on the randomized catalog, which
		// Validate cannot see; skip geometries whose expected catalog bytes
		// crowd the cluster's disk (bin-packing may legitimately fail).
		if float64(numVideos)*avgCopies*maxLen*viewRate > 0.5*float64(numServers)*1e6 {
			return
		}
		sc.HorizonHours = 0.05
		if sc.FailAtHours > 0 {
			sc.FailAtHours = 0.02 // keep the validated failure inside the run window
		}
		sc.Audit = true
		if _, err := Run(sc); err != nil {
			t.Fatalf("validated scenario failed to run: %v\nscenario: %+v", err, sc)
		}
	})
}
