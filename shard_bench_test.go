package semicont

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// Shard benchmarks: the 200-server scale cell — the regime ISSUE 9's
// refactor targets — run serial and at each shard count. On a multicore
// host the sharded rows should approach wall/shards for the wake-
// dominated fraction of the run; on a 1-hardware-thread host (like the
// container BENCH_shard.json was recorded on) they can only show the
// merge's overhead, which is the honest number to pin here either way.

// shardBenchCell keeps each measured run large enough to dwarf timer
// noise but benchable: ~10^5 requests over 200 servers, full
// fault-tolerance stack, Stats on (sketch channels are
// shard-mergeable, so the parallel path stays engaged).
func shardBenchCell(shards int) Scenario {
	sc := scaleCell(200, 2)
	sc.Shards = shards
	return sc
}

// BenchmarkShardScale measures the end-to-end scale cell at each shard
// count; the shards=0 row is the serial engine the others are judged
// against.
func BenchmarkShardScale(b *testing.B) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sc := shardBenchCell(shards)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(sc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRecordShardBench writes BENCH_shard.json: wall clock of the scale
// cell serial and at shards ∈ {1,2,4,8}, each the best of rounds
// interleaved across configurations (this host's run-to-run variance
// makes single runs meaningless), plus the host fingerprint the CI
// bench-smoke job records beside every BENCH_*.json. Gated behind
// SEMICONT_SHARD_BENCH=1; results also double as a determinism check —
// every configuration must report identical arrivals and completions.
func TestRecordShardBench(t *testing.T) {
	if os.Getenv("SEMICONT_SHARD_BENCH") == "" {
		t.Skip("set SEMICONT_SHARD_BENCH=1 to record BENCH_shard.json")
	}
	const rounds = 5
	counts := []int{0, 1, 2, 4, 8}
	best := make(map[int]float64, len(counts))
	var arrivals, completions int64
	for r := 0; r < rounds; r++ {
		for _, shards := range counts {
			sc := shardBenchCell(shards)
			runtime.GC()
			start := time.Now()
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			wall := time.Since(start).Seconds()
			if w, ok := best[shards]; !ok || wall < w {
				best[shards] = wall
			}
			if arrivals == 0 {
				arrivals, completions = res.Arrivals, res.Completions
			} else if res.Arrivals != arrivals || res.Completions != completions {
				t.Fatalf("shards=%d: %d arrivals / %d completions, serial saw %d / %d — determinism broken",
					shards, res.Arrivals, res.Completions, arrivals, completions)
			}
		}
	}
	doc := map[string]any{
		"note": fmt.Sprintf("Sharded-engine baseline for the within-run parallelism PR: the 200-server scale cell "+
			"(full fault-tolerance stack, 0.9 load, Stats on, %d requests) run serial (shards=0) and at shards 1/2/4/8. "+
			"MEASUREMENT METHODOLOGY: this host shows up to +/-40%% run-to-run variance on identical binaries, so each row "+
			"is the best of %d rounds interleaved across configurations. IMPORTANT HOST CAVEAT: this container exposes "+
			"exactly 1 hardware thread (GOMAXPROCS=1), so the sharded rows CANNOT show real scaling — at best they tie "+
			"serial plus the merge overhead, and that overhead is what these numbers pin. On an N-core host the window "+
			"phase parallelizes across shards (wake handling dominates this cell); re-record there and keep the "+
			"companion bench-host.txt fingerprint (vodsim -bench-host) next to the refreshed file. Every configuration "+
			"reported identical arrivals and completions (the determinism contract, also pinned bit-exactly by "+
			"TestShardDeterminism over the golden matrix).", arrivals, rounds),
		"go":               runtime.Version(),
		"gomaxprocs":       runtime.GOMAXPROCS(0),
		"hardware_threads": runtime.NumCPU(),
		"benchmarks": map[string]any{
			"ShardScale/serial":   map[string]float64{"wall_s": best[0]},
			"ShardScale/shards=1": map[string]float64{"wall_s": best[1]},
			"ShardScale/shards=2": map[string]float64{"wall_s": best[2]},
			"ShardScale/shards=4": map[string]float64{"wall_s": best[4]},
			"ShardScale/shards=8": map[string]float64{"wall_s": best[8]},
		},
	}
	data, err := json.MarshalIndent(doc, "", "\t")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_shard.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, shards := range counts {
		t.Logf("shards=%d: best wall %.3fs over %d rounds", shards, best[shards], rounds)
	}
}
