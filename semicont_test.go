package semicont

import (
	"math"
	"testing"
)

func TestPaperSystems(t *testing.T) {
	small := SmallSystem()
	if small.NumServers != 5 || small.ServerBandwidth != 100 || small.ViewRate != 3 {
		t.Errorf("small system = %+v", small)
	}
	if small.SVBR() != 100.0/3 {
		t.Errorf("small SVBR = %v", small.SVBR())
	}
	if small.MinVideoLength != 600 || small.MaxVideoLength != 1800 {
		t.Errorf("small lengths = %v–%v", small.MinVideoLength, small.MaxVideoLength)
	}
	large := LargeSystem()
	if large.NumServers != 20 || large.ServerBandwidth != 300 {
		t.Errorf("large system = %+v", large)
	}
	if large.MinVideoLength != 3600 || large.MaxVideoLength != 7200 {
		t.Errorf("large lengths = %v–%v", large.MinVideoLength, large.MaxVideoLength)
	}
	if small.TotalBandwidth() != 500 || large.TotalBandwidth() != 6000 {
		t.Errorf("totals = %v, %v", small.TotalBandwidth(), large.TotalBandwidth())
	}
	for _, sys := range []System{small, large, SingleServer(33)} {
		if err := sys.Validate(); err != nil {
			t.Errorf("%s: %v", sys.Name, err)
		}
	}
}

func TestSingleServer(t *testing.T) {
	s := SingleServer(33)
	if s.NumServers != 1 || s.ServerBandwidth != 99 {
		t.Errorf("SingleServer(33) = %+v", s)
	}
	if s.SVBR() != 33 {
		t.Errorf("SVBR = %v", s.SVBR())
	}
}

func TestSystemValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"no servers", func(s *System) { s.NumServers = 0 }},
		{"bandwidth mismatch", func(s *System) { s.Bandwidths = []float64{1, 2} }},
		{"capacity mismatch", func(s *System) { s.Capacities = []float64{1} }},
		{"zero bandwidth", func(s *System) { s.ServerBandwidth = 0 }},
		{"zero disk", func(s *System) { s.DiskCapacity = 0 }},
		{"no videos", func(s *System) { s.NumVideos = 0 }},
		{"bad lengths", func(s *System) { s.MaxVideoLength = s.MinVideoLength - 1 }},
		{"low copies", func(s *System) { s.AvgCopies = 0.5 }},
		{"zero view rate", func(s *System) { s.ViewRate = 0 }},
	}
	for _, tc := range cases {
		sys := SmallSystem()
		tc.mutate(&sys)
		if err := sys.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestHeterogeneousOverrides(t *testing.T) {
	sys := SmallSystem()
	sys.Bandwidths = []float64{150, 50, 150, 50, 100}
	sys.Capacities = []float64{1e6, 1e6, 1e6, 1e6, 1e6}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sys.TotalBandwidth(); !approxEq(got, 500, 1e-9) {
		t.Errorf("TotalBandwidth = %v", got)
	}
	if sys.SVBR() != 50 {
		t.Errorf("SVBR uses server 0: %v", sys.SVBR())
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
