package semicont

import "testing"

func TestAnalyzeBracketsSimulation(t *testing.T) {
	// The no-sharing / complete-sharing bracket must contain the
	// simulated P1 utilization across demand skews (the whole point of
	// the analytical cross-check).
	for _, theta := range []float64{-1.5, -0.5, 0.5, 1} {
		sc := Scenario{
			System:       SmallSystem(),
			Policy:       PolicyP1(),
			Theta:        theta,
			HorizonHours: 40,
			Seed:         1,
		}
		a, err := Analyze(sc)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if a.NoSharing > a.CompleteSharing+1e-9 {
			t.Errorf("theta=%g: bracket inverted (%v > %v)", theta, a.NoSharing, a.CompleteSharing)
		}
		if a.FixedPoint > a.CompleteSharing+1e-9 {
			t.Errorf("theta=%g: fixed point %v above the sharing ceiling %v", theta, a.FixedPoint, a.CompleteSharing)
		}
		// Generous slack: 40 h trials are noisy and the bracket is
		// heuristic at its lower end.
		if sim.Utilization < a.NoSharing-0.05 || sim.Utilization > a.CompleteSharing+0.02 {
			t.Errorf("theta=%g: sim %v outside bracket [%v, %v]",
				theta, sim.Utilization, a.NoSharing, a.CompleteSharing)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	sc := Scenario{System: SmallSystem(), Policy: PolicyP1(), Theta: 0.271, HorizonHours: 1, Seed: 9}
	a, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("Analyze not deterministic: %+v vs %+v", a, b)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	bad := Scenario{System: SmallSystem(), Policy: PolicyP1(), HorizonHours: -1}
	if _, err := Analyze(bad); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestAnalyzeSingleServerMatchesErlang(t *testing.T) {
	// For one server the three estimates coincide, matching the E-SVBR
	// experiment's analytic curve.
	sc := Scenario{
		System:       SingleServer(33),
		Policy:       PolicyP1(),
		Theta:        1,
		HorizonHours: 1,
		Seed:         1,
	}
	a, err := Analyze(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(a.NoSharing, a.CompleteSharing, 1e-9) || !approxEq(a.FixedPoint, a.CompleteSharing, 1e-9) {
		t.Errorf("single-server estimates disagree: %+v", a)
	}
}
