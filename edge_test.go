package semicont

import "testing"

// edgeScenario is quickScenario with the edge tier on: two nodes, a
// 900-second prefix, and a budget around a third of the catalog's
// prefix bytes so hits and misses both occur.
func edgeScenario() Scenario {
	sc := quickScenario()
	sc.Policy = Policy{
		Name:          "edge",
		Placement:     EvenPlacement,
		StagingFrac:   0.2,
		Migration:     true,
		EdgeNodes:     2,
		EdgePrefixSec: 900,
		EdgeCacheMb:   90000,
	}
	return sc
}

func TestPolicyValidateEdge(t *testing.T) {
	bad := []Policy{
		{EdgeNodes: -1},
		{EdgeNodes: 2},                     // missing prefix + cache
		{EdgeNodes: 2, EdgePrefixSec: 900}, // missing cache
		{EdgeNodes: 2, EdgePrefixSec: -1, EdgeCacheMb: 1000}, // negative prefix
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: -1},  // negative cache
		{EdgePrefixSec: 900},            // prefix without the tier
		{EdgeCacheMb: 1000},             // cache without the tier
		{EdgeCachePolicy: EdgeCacheLRU}, // policy without the tier
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000, EdgeCachePolicy: "nope"},
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000, PatchWindowSec: 600},           // legacy patching behind the edge
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000, BatchPolicy: BatchPolicyPatch}, // patch grafts onto whole objects
		{BatchPolicy: "nope"},
		{BatchPolicy: BatchPolicyPatch, PatchWindowSec: 600},                                       // two spellings of one knob
		{BatchPolicy: BatchPolicyBatchPrefix, BatchWindowSec: 60},                                  // batch-prefix without the tier
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000, BatchPolicy: BatchPolicyBatchPrefix}, // missing window
		{BatchWindowSec: -1},
		{BatchWindowSec: 60}, // window without a sharing policy
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000,
			BatchPolicy: BatchPolicyBatchPrefix, BatchWindowSec: 60, StagingFrac: 0.2, Intermittent: true},
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000,
			BatchPolicy: BatchPolicyBatchPrefix, BatchWindowSec: 60,
			PauseProb: 0.5, MinPauseSec: 10, MaxPauseSec: 20},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	good := []Policy{
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000},
		{EdgeNodes: 1, EdgePrefixSec: 900, EdgeCacheMb: 1000, EdgeCachePolicy: EdgeCacheLRU},
		{EdgeNodes: 2, EdgePrefixSec: 900, EdgeCacheMb: 1000,
			BatchPolicy: BatchPolicyBatchPrefix, BatchWindowSec: 300},
		{BatchPolicy: BatchPolicyPatch, BatchWindowSec: 600, StagingFrac: 0.2},
		{BatchPolicy: BatchPolicyUnicast},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("valid edge policy %d rejected: %v", i, err)
		}
	}
	if len(BatchPolicyNames()) < 3 {
		t.Errorf("batch registry too small: %v", BatchPolicyNames())
	}
	if len(EdgeCachePolicyNames()) < 2 {
		t.Errorf("edge cache registry too small: %v", EdgeCachePolicyNames())
	}
}

// TestRunEdgePolicy pins the tier's accounting identities on an audited
// run: edge hits happen, edge bytes never enter cluster egress, and the
// ClusterEgressMb mirror equals DeliveredMb bit-for-bit (the
// edge-accounting audit rule checks the same identity per event).
func TestRunEdgePolicy(t *testing.T) {
	sc := edgeScenario()
	sc.Audit = true
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeHits == 0 || res.EdgeMb <= 0 {
		t.Fatalf("no edge activity: %+v", res)
	}
	if res.ClusterEgressMb != res.DeliveredMb {
		t.Errorf("cluster egress %v != delivered %v", res.ClusterEgressMb, res.DeliveredMb)
	}
	// The edge absorbs prefix bytes, so denial cannot be worse than the
	// no-edge twin at the same offered load.
	base := sc
	base.Policy.EdgeNodes = 0
	base.Policy.EdgePrefixSec, base.Policy.EdgeCacheMb = 0, 0
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if bres.EdgeHits != 0 || bres.EdgeMb != 0 || bres.ClusterEgressMb != 0 {
		t.Errorf("edge metrics nonzero with the tier disabled: %+v", bres)
	}
	if res.RejectionRatio > bres.RejectionRatio {
		t.Errorf("edge rejection %v above no-edge %v", res.RejectionRatio, bres.RejectionRatio)
	}
}

// TestRunBatchPrefixPolicy exercises the edge-aware sharing policy:
// joins happen on hot suffixes and shared bytes are recorded, under the
// auditor.
func TestRunBatchPrefixPolicy(t *testing.T) {
	sc := edgeScenario()
	sc.Theta = -1 // hot titles overlap constantly
	sc.Policy.BatchPolicy = BatchPolicyBatchPrefix
	sc.Policy.BatchWindowSec = 300
	sc.Audit = true
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchedJoins == 0 || res.SharedMb <= 0 {
		t.Fatalf("no batching activity under skew: %+v", res)
	}
	if res.ClusterEgressMb != res.DeliveredMb {
		t.Errorf("cluster egress %v != delivered %v", res.ClusterEgressMb, res.DeliveredMb)
	}
}

// TestBatchPatchEquivalence pins the registry refactor against the
// legacy spelling: BatchPolicy "patch" with a window must reproduce a
// PatchWindowSec run bit-for-bit — same policy body, two config paths.
func TestBatchPatchEquivalence(t *testing.T) {
	legacy := quickScenario()
	legacy.Theta = -1
	legacy.Policy = Policy{
		Name: "patch", Placement: EvenPlacement,
		StagingFrac: 0.2, PatchWindowSec: 300,
	}
	a, err := Run(legacy)
	if err != nil {
		t.Fatal(err)
	}
	modern := legacy
	modern.Policy.PatchWindowSec = 0
	modern.Policy.BatchPolicy = BatchPolicyPatch
	modern.Policy.BatchWindowSec = 300
	b, err := Run(modern)
	if err != nil {
		t.Fatal(err)
	}
	if a.PatchedJoins == 0 {
		t.Fatal("no patched joins; the equivalence would pin nothing")
	}
	if *a != *b {
		t.Errorf("batch policy %q diverged from PatchWindowSec:\nlegacy %+v\nmodern %+v",
			BatchPolicyPatch, a, b)
	}
}
