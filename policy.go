package semicont

import (
	"fmt"

	"semicont/internal/core"
	"semicont/internal/edge"
)

// PlacementKind selects a static video placement strategy.
type PlacementKind int

// The placement strategies of Sections 3.2 and 4.4.
const (
	// EvenPlacement gives every video the same number of copies
	// (randomized rounding), oblivious to popularity.
	EvenPlacement PlacementKind = iota
	// PredictivePlacement allocates copies in proportion to perfectly
	// predicted popularity, at least one copy each.
	PredictivePlacement
	// PartialPredictivePlacement is even allocation plus a few extra
	// copies of the most popular videos — the paper's model of limited
	// prediction ability.
	PartialPredictivePlacement
)

// String implements fmt.Stringer.
func (k PlacementKind) String() string {
	switch k {
	case EvenPlacement:
		return "even"
	case PredictivePlacement:
		return "predictive"
	case PartialPredictivePlacement:
		return "partial-predictive"
	default:
		return fmt.Sprintf("PlacementKind(%d)", int(k))
	}
}

// UnlimitedHops configures migration without a per-request lifetime
// bound (mirrors core.UnlimitedHops).
const UnlimitedHops = -1

// DefaultReceiveCap is the client receive bandwidth limit applied in
// the paper's staging experiments (Section 4.3), in Mb/s.
const DefaultReceiveCap = 30.0

// Policy bundles the three mechanisms under study: placement, dynamic
// request migration, and client staging. The paper's Figure 6 evaluates
// the eight combinations P1–P8; PaperPolicies returns them.
type Policy struct {
	// Name labels the policy in reports.
	Name string

	// Placement selects the static allocation strategy.
	Placement PlacementKind

	// PartialTopFraction and PartialExtra parameterize
	// PartialPredictivePlacement (zero values mean top 10%, +2 copies).
	PartialTopFraction float64
	PartialExtra       int

	// Migration enables DRM. MaxHops bounds lifetime migrations per
	// request (UnlimitedHops removes the bound); MaxChain bounds
	// migrations per arrival (the paper's "migration chain length").
	//
	// Zero-value convention, by design: with Migration set, MaxHops=0
	// and MaxChain=0 both mean "the paper's default of 1" — NOT "no
	// migrations" — so the zero Policy plus Migration reproduces the
	// paper. maxHops and maxChain are the only decoders of this
	// convention; core.MigrationConfig receives the decoded values
	// (there, 0 really means zero). Setting either field while
	// Migration is false is a validation error, not a silent no-op.
	Migration bool
	MaxHops   int
	MaxChain  int

	// SwitchDelay is the blackout a migrating stream suffers, in
	// seconds; the client buffer must cover it (0 = instantaneous).
	SwitchDelay float64

	// StagingFrac is the client staging buffer as a fraction of the
	// average video object size (the paper's "percentage buffer").
	// Zero disables workahead entirely.
	StagingFrac float64

	// ReceiveCap limits a client's receive bandwidth in Mb/s when
	// staging is on. Zero means DefaultReceiveCap; negative means
	// unlimited.
	ReceiveCap float64

	// Intermittent switches the server scheduler from the paper's
	// minimum-flow class to the intermittent class (Section 3.3):
	// streams with full buffers may be paused entirely so the server
	// can over-subscribe its slots. The heuristic admission rule risks
	// playback glitches, reported in Result.GlitchedStreams — this is
	// the ablation for the paper's choice of minimum-flow. Requires
	// StagingFrac > 0 (or a ClientMix with buffers).
	Intermittent bool

	// ResumeGuard is the intermittent scheduler's urgency threshold in
	// seconds of buffered playback (0 = the 30 s default).
	ResumeGuard float64

	// ClientMix, when non-empty, makes the client population
	// heterogeneous: each admitted request draws one class. It
	// overrides StagingFrac/ReceiveCap per client.
	ClientMix []ClientClass

	// Replicate enables dynamic replication: when a request is rejected,
	// the controller copies the video onto a server with storage room,
	// consuming spare source bandwidth, so future requests find an
	// extra replica — the resource-intensive alternative to DRM that
	// Section 3.1 mentions.
	Replicate bool

	// ReplicationRate caps one copy job's bandwidth in Mb/s
	// (0 = twice the view rate).
	ReplicationRate float64

	// Spare selects the workahead discipline: how spare bandwidth is
	// divided among staging candidates. EFTFSpare (default) is the
	// paper's algorithm; LFTFSpare and EvenSplitSpare are ablations of
	// the Theorem's scheduling rule.
	Spare SpareKind

	// Allocator selects the engine's bandwidth-allocation policy by
	// registry name (see AllocatorNames). Empty uses the policy the
	// Intermittent and Spare fields imply. Naming a built-in policy sets
	// the fields it implies — e.g. AllocatorLFTF implies Spare:
	// LFTFSpare — and contradictory explicit fields are validation
	// errors. Custom policies registered with core.RegisterAllocator are
	// selected by their registered name, with Intermittent and Spare
	// passed through untouched.
	Allocator string

	// Selector names the admission controller's server-selection policy
	// by registry name (see SelectorNames). Empty means least-loaded,
	// the paper's Section 3.2 assignment rule. All built-in selectors
	// are deterministic given the scenario seed (random-feasible draws
	// from a split seed stream).
	Selector string

	// Planner names the DRM move-planning policy by registry name (see
	// PlannerNames). Empty means chain-dfs, the iterative-deepening
	// chain search. Requires Migration: naming a planner that can never
	// run is a validation error.
	Planner string

	// PatchWindowSec enables multicast patching when positive: a new
	// request for a video already streaming taps that transmission and
	// receives only the missed prefix as a short unicast patch, if the
	// prefix fits both this window (seconds of playback) and the
	// client's staging buffer. Incompatible with Intermittent and
	// PauseProb.
	PatchWindowSec float64

	// EdgeNodes, when positive, puts an edge/proxy tier of that many
	// nodes in front of the cluster: each node holds the first
	// EdgePrefixSec seconds of selected videos in an EdgeCacheMb byte
	// budget and serves those prefixes locally, so the cluster streams
	// only the suffix of a hit title (or nothing when the cached prefix
	// covers the whole video). Arrivals probe nodes round-robin.
	// EdgeNodes > 0 requires EdgePrefixSec > 0 and EdgeCacheMb > 0;
	// setting any of the other edge fields while EdgeNodes is zero is a
	// validation error, not a silent no-op. Incompatible with
	// PatchWindowSec (express patching as BatchPolicy instead).
	EdgeNodes     int
	EdgePrefixSec float64
	EdgeCacheMb   float64

	// EdgeCachePolicy names the per-node prefix-cache policy by registry
	// name (see EdgeCachePolicyNames). Empty means static-zipf, the
	// provisioned greedy fill in popularity order.
	EdgeCachePolicy string

	// BatchPolicy names the multicast batching policy by registry name
	// (see BatchPolicyNames): how concurrent requests for one title
	// share a cluster stream. Empty resolves to "patch" when
	// PatchWindowSec is set (the legacy spelling) and "unicast"
	// otherwise. "patch" is classic multicast patching with
	// BatchWindowSec as its window; "batch-prefix" joins an ongoing
	// suffix stream while the edge prefix absorbs the catch-up, and
	// requires EdgeNodes > 0 and BatchWindowSec > 0. Non-unicast
	// policies are incompatible with Intermittent and PauseProb.
	BatchPolicy string

	// BatchWindowSec is the batching window in seconds of playback for
	// BatchPolicy ("patch": 0 means 20 minutes; "batch-prefix" requires
	// it). Setting it without a batching BatchPolicy is an error.
	BatchWindowSec float64

	// RetryQueue enables the admission retry queue: a rejected arrival
	// waits (modeling client patience) and re-attempts admission every
	// RetryBackoffSec seconds until RetryPatienceSec expires, at which
	// point it reneges — accounted in Result.Reneged, separately from
	// up-front rejections. RetryMaxQueue bounds the queue (0 = 64);
	// overflow rejects immediately. Zero durations mean 10 s backoff
	// and 300 s patience.
	RetryQueue       bool
	RetryMaxQueue    int
	RetryPatienceSec float64
	RetryBackoffSec  float64

	// DegradedPlayback enables degraded-mode playback: a stream whose
	// server fails with no rescue target keeps playing from its client
	// staging buffer and retries reconnection every DegradedRetrySec
	// seconds (0 = 5 s); only when the buffer runs dry does the viewer
	// see a glitch and the stream count as dropped. Meaningful only
	// with client staging buffers (without buffered data streams drop
	// immediately, as before).
	DegradedPlayback bool
	DegradedRetrySec float64

	// PauseProb enables viewer interactivity: the probability that a
	// viewing pauses once, at a uniformly random playback point, for a
	// uniform duration in [MinPauseSec, MaxPauseSec]. The paper's EFTF
	// optimality theorem assumes no pauses; this knob measures what
	// interactivity does to the mechanisms (future work, Section 6).
	PauseProb   float64
	MinPauseSec float64
	MaxPauseSec float64

	// Classes, when non-empty, partitions arrivals into traffic classes
	// (at most MaxTrafficClasses; index 0 is the highest-priority tier,
	// never shed). Each arrival draws a class by Share from a split
	// seed stream; the class can override the admission selector and
	// retry patience, and is the unit the shed controller acts on.
	Classes []TrafficClass

	// ShedWatermark, when positive, enables graceful load shedding: at
	// every arrival the controller compares instantaneous utilization
	// (minimum-flow committed bandwidth over live effective capacity)
	// against this watermark in (0, 1], and at or above it rejects
	// arrivals of every class but class 0 up front — before the retry
	// queue and before replication reacts. Requires at least two
	// Classes (with fewer there is nothing to differentiate).
	ShedWatermark float64
}

// MaxTrafficClasses mirrors the engine's bound on Policy.Classes.
const MaxTrafficClasses = core.MaxTrafficClasses

// TrafficClass is one priority tier of the arrival stream (see
// Policy.Classes).
type TrafficClass struct {
	// Name labels the class in reports ("premium", "standard", …).
	Name string
	// Share is the class's relative frequency among arrivals.
	Share float64
	// Selector optionally overrides the admission selector for this
	// class by registry name (empty = the policy's selector).
	Selector string
	// RetryPatienceSec optionally overrides the retry-queue patience
	// for this class (0 = the policy's RetryPatienceSec default);
	// premium tiers typically wait longer.
	RetryPatienceSec float64
}

// SpareKind mirrors the engine's spare-bandwidth disciplines.
type SpareKind int

// Workahead disciplines for Policy.Spare.
const (
	// EFTFSpare is Earliest Finishing Time First (the paper's Fig. 2).
	EFTFSpare SpareKind = iota
	// LFTFSpare is Latest Finishing Time First, the adversarial
	// opposite used by the A-EFTF ablation.
	LFTFSpare
	// EvenSplitSpare divides spare bandwidth equally (water-filling).
	EvenSplitSpare
)

// String implements fmt.Stringer.
func (k SpareKind) String() string {
	switch k {
	case EFTFSpare:
		return "eftf"
	case LFTFSpare:
		return "lftf"
	case EvenSplitSpare:
		return "even-split"
	default:
		return fmt.Sprintf("SpareKind(%d)", int(k))
	}
}

// Registry names of the engine's built-in bandwidth-allocation
// policies, usable as Policy.Allocator.
const (
	// AllocatorEFTF is minimum-flow plus Earliest-Finishing-Time-First
	// workahead (the paper's Figure 2 algorithm).
	AllocatorEFTF = core.AllocMinFlowEFTF
	// AllocatorLFTF is minimum-flow plus latest-finisher-first workahead
	// (the adversarial ablation).
	AllocatorLFTF = core.AllocMinFlowLFTF
	// AllocatorEvenSplit is minimum-flow plus water-filling workahead.
	AllocatorEvenSplit = core.AllocMinFlowEvenSplit
	// AllocatorIntermittent is the Section 3.3 intermittent-class
	// heuristic (over-subscribing admission, pause-and-resume feeds).
	AllocatorIntermittent = core.AllocIntermittent
)

// AllocatorNames returns the bandwidth-allocation policies registered
// with the engine, sorted by name.
func AllocatorNames() []string { return core.AllocatorNames() }

// Registry names of the engine's built-in controller policies, usable
// as Policy.Selector and Policy.Planner.
const (
	// SelectorLeastLoaded admits on the feasible replica holder with
	// the fewest streams (Section 3.2's rule; the default).
	SelectorLeastLoaded = core.SelectorLeastLoaded
	// SelectorFirstFit admits on the first feasible holder in replica
	// order — the simplest controller.
	SelectorFirstFit = core.SelectorFirstFit
	// SelectorMostHeadroom admits on the feasible holder with the most
	// uncommitted bandwidth (differs from least-loaded only on
	// heterogeneous clusters).
	SelectorMostHeadroom = core.SelectorMostHeadroom
	// SelectorRandomFeasible admits uniformly at random among feasible
	// holders, seeded from the scenario's split-RNG streams.
	SelectorRandomFeasible = core.SelectorRandomFeasible

	// PlannerChainDFS is the iterative-deepening DFS chain search (the
	// default).
	PlannerChainDFS = core.PlannerChainDFS
	// PlannerDirectOnly plans single moves only, never chains.
	PlannerDirectOnly = core.PlannerDirectOnly
)

// SelectorNames returns the admission selectors registered with the
// engine's controller, sorted by name.
func SelectorNames() []string { return core.SelectorNames() }

// Registry names of the engine's built-in multicast batching policies,
// usable as Policy.BatchPolicy.
const (
	// BatchPolicyUnicast streams every admitted request on its own
	// unicast channel (the default).
	BatchPolicyUnicast = core.BatchUnicast
	// BatchPolicyPatch is classic multicast patching: tap an ongoing
	// transmission and receive the missed prefix as a unicast patch.
	BatchPolicyPatch = core.BatchPatch
	// BatchPolicyBatchPrefix joins an ongoing cluster suffix stream
	// while the edge-cached prefix absorbs the catch-up; requires the
	// edge tier.
	BatchPolicyBatchPrefix = core.BatchBatchPrefix
)

// BatchPolicyNames returns the multicast batching policies registered
// with the engine, sorted by name.
func BatchPolicyNames() []string { return core.BatchPolicyNames() }

// Registry names of the built-in edge prefix-cache policies, usable as
// Policy.EdgeCachePolicy.
const (
	// EdgeCacheStaticZipf pins prefixes at run start in popularity
	// order (greedy fill; the default).
	EdgeCacheStaticZipf = edge.PolicyStaticZipf
	// EdgeCacheLRU starts empty and fills on demand with
	// least-recently-used eviction.
	EdgeCacheLRU = edge.PolicyLRU
)

// EdgeCachePolicyNames returns the edge prefix-cache policies
// registered with internal/edge, sorted by name.
func EdgeCachePolicyNames() []string { return edge.Names() }

// PlannerNames returns the DRM planners registered with the engine's
// controller, sorted by name.
func PlannerNames() []string { return core.PlannerNames() }

// allocChoice resolves the effective scheduling fields from the
// Allocator name and the legacy Intermittent/Spare fields, rejecting
// contradictory combinations.
func (p Policy) allocChoice() (intermittent bool, spare SpareKind, err error) {
	var implied SpareKind
	switch p.Allocator {
	case "":
		return p.Intermittent, p.Spare, nil
	case AllocatorEFTF:
		implied = EFTFSpare
	case AllocatorLFTF:
		implied = LFTFSpare
	case AllocatorEvenSplit:
		implied = EvenSplitSpare
	case AllocatorIntermittent:
		// The intermittent scheduler composes with any workahead
		// discipline for its residual spare.
		return true, p.Spare, nil
	default:
		if !core.HasAllocator(p.Allocator) {
			return false, 0, fmt.Errorf("semicont: unknown allocator %q (have %v)", p.Allocator, AllocatorNames())
		}
		// Custom policy: scheduling fields pass through untouched.
		return p.Intermittent, p.Spare, nil
	}
	if p.Intermittent {
		return false, 0, fmt.Errorf("semicont: Allocator %q conflicts with Intermittent", p.Allocator)
	}
	if p.Spare != EFTFSpare && p.Spare != implied {
		return false, 0, fmt.Errorf("semicont: Allocator %q conflicts with Spare %v", p.Allocator, p.Spare)
	}
	return false, implied, nil
}

// ClientClass is one kind of client in a heterogeneous population
// (e.g. set-top boxes with disks vs. thin clients without).
type ClientClass struct {
	// Weight is the class's relative frequency.
	Weight float64
	// StagingFrac is this class's buffer as a fraction of the average
	// object size (0 = no staging buffer).
	StagingFrac float64
	// ReceiveCap is this class's receive bandwidth in Mb/s
	// (0 = unlimited).
	ReceiveCap float64
}

// maxHops returns the effective hops bound.
func (p Policy) maxHops() int {
	if p.MaxHops == 0 {
		return 1
	}
	return p.MaxHops
}

// maxChain returns the effective chain bound.
func (p Policy) maxChain() int {
	if p.MaxChain == 0 {
		return 1
	}
	return p.MaxChain
}

// receiveCap returns the effective client receive cap (0 = unlimited).
func (p Policy) receiveCap() float64 {
	switch {
	case p.ReceiveCap < 0:
		return 0
	case p.ReceiveCap == 0:
		return DefaultReceiveCap
	default:
		return p.ReceiveCap
	}
}

// Validate reports policy errors.
func (p Policy) Validate() error {
	intermittent, _, err := p.allocChoice()
	if err != nil {
		return err
	}
	switch {
	case p.Placement < EvenPlacement || p.Placement > PartialPredictivePlacement:
		return fmt.Errorf("semicont: unknown placement %d", int(p.Placement))
	case !finite(p.StagingFrac) || p.StagingFrac < 0:
		return fmt.Errorf("semicont: negative StagingFrac %g", p.StagingFrac)
	case p.Placement == PartialPredictivePlacement &&
		(!finite(p.PartialTopFraction) || p.PartialTopFraction < 0 || p.PartialTopFraction > 1):
		return fmt.Errorf("semicont: PartialTopFraction %g outside [0,1]", p.PartialTopFraction)
	case p.Placement == PartialPredictivePlacement && p.PartialExtra < 0:
		return fmt.Errorf("semicont: negative PartialExtra %d", p.PartialExtra)
	case !finite(p.SwitchDelay) || p.SwitchDelay < 0:
		return fmt.Errorf("semicont: negative SwitchDelay %g", p.SwitchDelay)
	case p.Migration && p.MaxHops < UnlimitedHops:
		return fmt.Errorf("semicont: MaxHops %d (use UnlimitedHops=-1)", p.MaxHops)
	case p.Migration && p.MaxChain < 0:
		return fmt.Errorf("semicont: negative MaxChain %d", p.MaxChain)
	case !p.Migration && (p.MaxHops != 0 || p.MaxChain != 0):
		return fmt.Errorf("semicont: MaxHops=%d/MaxChain=%d set while Migration is disabled (enable Migration or leave them zero)", p.MaxHops, p.MaxChain)
	case !p.Migration && p.Planner != "":
		return fmt.Errorf("semicont: Planner %q configured while Migration is disabled", p.Planner)
	case p.Selector != "" && !core.HasSelector(p.Selector):
		return fmt.Errorf("semicont: unknown selector %q (have %v)", p.Selector, SelectorNames())
	case p.Planner != "" && !core.HasPlanner(p.Planner):
		return fmt.Errorf("semicont: unknown planner %q (have %v)", p.Planner, PlannerNames())
	case !finite(p.ReceiveCap):
		return fmt.Errorf("semicont: ReceiveCap %g must be finite", p.ReceiveCap)
	case !finite(p.ResumeGuard) || p.ResumeGuard < 0:
		return fmt.Errorf("semicont: negative ResumeGuard %g", p.ResumeGuard)
	case !finite(p.ReplicationRate) || p.ReplicationRate < 0:
		return fmt.Errorf("semicont: negative ReplicationRate %g", p.ReplicationRate)
	case p.Spare < EFTFSpare || p.Spare > EvenSplitSpare:
		return fmt.Errorf("semicont: unknown spare discipline %d", int(p.Spare))
	case !finite(p.PatchWindowSec) || p.PatchWindowSec < 0:
		return fmt.Errorf("semicont: negative PatchWindowSec %g", p.PatchWindowSec)
	case p.PatchWindowSec > 0 && intermittent:
		return fmt.Errorf("semicont: patching is incompatible with intermittent scheduling")
	case p.RetryMaxQueue < 0:
		return fmt.Errorf("semicont: negative RetryMaxQueue %d", p.RetryMaxQueue)
	case !finite(p.RetryPatienceSec) || p.RetryPatienceSec < 0:
		return fmt.Errorf("semicont: negative RetryPatienceSec %g", p.RetryPatienceSec)
	case !finite(p.RetryBackoffSec) || p.RetryBackoffSec < 0:
		return fmt.Errorf("semicont: negative RetryBackoffSec %g", p.RetryBackoffSec)
	case !finite(p.DegradedRetrySec) || p.DegradedRetrySec < 0:
		return fmt.Errorf("semicont: negative DegradedRetrySec %g", p.DegradedRetrySec)
	case !finite(p.PauseProb) || p.PauseProb < 0 || p.PauseProb > 1:
		return fmt.Errorf("semicont: PauseProb %g outside [0,1]", p.PauseProb)
	case p.PatchWindowSec > 0 && p.PauseProb > 0:
		return fmt.Errorf("semicont: patching is incompatible with viewer interactivity")
	case p.PauseProb > 0 && (!finite(p.MinPauseSec) || !finite(p.MaxPauseSec) ||
		p.MinPauseSec <= 0 || p.MaxPauseSec < p.MinPauseSec):
		return fmt.Errorf("semicont: invalid pause range [%g, %g]", p.MinPauseSec, p.MaxPauseSec)
	}
	switch {
	case p.EdgeNodes < 0:
		return fmt.Errorf("semicont: negative EdgeNodes %d", p.EdgeNodes)
	case p.EdgeNodes > 0 && (!finite(p.EdgePrefixSec) || p.EdgePrefixSec <= 0):
		return fmt.Errorf("semicont: EdgeNodes=%d needs a positive EdgePrefixSec, got %g", p.EdgeNodes, p.EdgePrefixSec)
	case p.EdgeNodes > 0 && (!finite(p.EdgeCacheMb) || p.EdgeCacheMb <= 0):
		return fmt.Errorf("semicont: EdgeNodes=%d needs a positive EdgeCacheMb, got %g", p.EdgeNodes, p.EdgeCacheMb)
	case p.EdgeNodes == 0 && (p.EdgePrefixSec != 0 || p.EdgeCacheMb != 0 || p.EdgeCachePolicy != ""):
		return fmt.Errorf("semicont: EdgePrefixSec=%g/EdgeCacheMb=%g/EdgeCachePolicy=%q set while EdgeNodes is zero (enable the edge tier or leave them zero)",
			p.EdgePrefixSec, p.EdgeCacheMb, p.EdgeCachePolicy)
	case p.EdgeCachePolicy != "" && !edge.Has(p.EdgeCachePolicy):
		return fmt.Errorf("semicont: unknown edge cache policy %q (have %v)", p.EdgeCachePolicy, EdgeCachePolicyNames())
	case p.EdgeNodes > 0 && p.PatchWindowSec > 0:
		return fmt.Errorf("semicont: PatchWindowSec and EdgeNodes are mutually exclusive (express patching as BatchPolicy=%q)", BatchPolicyPatch)
	case p.BatchPolicy != "" && !core.HasBatchPolicy(p.BatchPolicy):
		return fmt.Errorf("semicont: unknown batch policy %q (have %v)", p.BatchPolicy, BatchPolicyNames())
	case p.BatchPolicy != "" && p.PatchWindowSec > 0:
		return fmt.Errorf("semicont: PatchWindowSec and BatchPolicy are both set (use BatchPolicy=%q with BatchWindowSec)", BatchPolicyPatch)
	case !finite(p.BatchWindowSec) || p.BatchWindowSec < 0:
		return fmt.Errorf("semicont: negative BatchWindowSec %g", p.BatchWindowSec)
	case p.BatchPolicy == BatchPolicyPatch && p.EdgeNodes > 0:
		return fmt.Errorf("semicont: BatchPolicy %q taps full streams from their start and cannot run behind the edge tier (use %q)",
			BatchPolicyPatch, BatchPolicyBatchPrefix)
	case p.BatchPolicy == BatchPolicyBatchPrefix && p.EdgeNodes == 0:
		return fmt.Errorf("semicont: BatchPolicy %q joins suffix streams and requires the edge tier (EdgeNodes > 0)", BatchPolicyBatchPrefix)
	case p.BatchPolicy == BatchPolicyBatchPrefix && p.BatchWindowSec <= 0:
		return fmt.Errorf("semicont: BatchPolicy %q requires a positive BatchWindowSec", BatchPolicyBatchPrefix)
	case (p.BatchPolicy == "" || p.BatchPolicy == BatchPolicyUnicast) && p.BatchWindowSec != 0:
		return fmt.Errorf("semicont: BatchWindowSec=%g set without a batching BatchPolicy", p.BatchWindowSec)
	}
	if p.BatchPolicy != "" && p.BatchPolicy != BatchPolicyUnicast {
		if intermittent {
			return fmt.Errorf("semicont: BatchPolicy %q is incompatible with intermittent scheduling", p.BatchPolicy)
		}
		if p.PauseProb > 0 {
			return fmt.Errorf("semicont: BatchPolicy %q is incompatible with viewer interactivity", p.BatchPolicy)
		}
	}
	if len(p.Classes) > MaxTrafficClasses {
		return fmt.Errorf("semicont: %d traffic classes exceed the limit of %d", len(p.Classes), MaxTrafficClasses)
	}
	for i, c := range p.Classes {
		if !finite(c.Share) || c.Share <= 0 {
			return fmt.Errorf("semicont: traffic class %d share %g must be positive", i, c.Share)
		}
		if c.Selector != "" && !core.HasSelector(c.Selector) {
			return fmt.Errorf("semicont: traffic class %d names unknown selector %q (have %v)", i, c.Selector, SelectorNames())
		}
		if !finite(c.RetryPatienceSec) || c.RetryPatienceSec < 0 {
			return fmt.Errorf("semicont: traffic class %d negative RetryPatienceSec %g", i, c.RetryPatienceSec)
		}
	}
	switch {
	case !finite(p.ShedWatermark) || p.ShedWatermark < 0 || p.ShedWatermark > 1:
		return fmt.Errorf("semicont: ShedWatermark %g outside [0, 1]", p.ShedWatermark)
	case p.ShedWatermark > 0 && len(p.Classes) < 2:
		return fmt.Errorf("semicont: ShedWatermark needs at least two traffic classes to differentiate")
	}
	total, staged := 0.0, p.StagingFrac > 0
	for i, c := range p.ClientMix {
		if !finite(c.Weight) || !finite(c.StagingFrac) || !finite(c.ReceiveCap) ||
			c.Weight < 0 || c.StagingFrac < 0 || c.ReceiveCap < 0 {
			return fmt.Errorf("semicont: client class %d has negative fields: %+v", i, c)
		}
		total += c.Weight
		if c.StagingFrac > 0 {
			// Mirrors the construction path: any class buffer enables
			// workahead, even on a zero-weight class.
			staged = true
		}
	}
	if len(p.ClientMix) > 0 && total <= 0 {
		return fmt.Errorf("semicont: ClientMix has no positive weight")
	}
	if intermittent && !staged {
		return fmt.Errorf("semicont: intermittent scheduling needs client staging buffers")
	}
	return nil
}

// The eight policies of the paper's Figure 6. P1–P4 are oblivious to
// popularity (even placement); P5–P8 assume perfect prediction. Within
// each group the four combinations of migration and 20% client staging
// are covered.

// PolicyP1 returns even placement, no migration, no staging.
func PolicyP1() Policy {
	return Policy{Name: "P1", Placement: EvenPlacement}
}

// PolicyP2 returns even placement, no migration, 20% staging.
func PolicyP2() Policy {
	return Policy{Name: "P2", Placement: EvenPlacement, StagingFrac: 0.2}
}

// PolicyP3 returns even placement with migration, no staging.
func PolicyP3() Policy {
	return Policy{Name: "P3", Placement: EvenPlacement, Migration: true}
}

// PolicyP4 returns even placement with migration and 20% staging.
func PolicyP4() Policy {
	return Policy{Name: "P4", Placement: EvenPlacement, Migration: true, StagingFrac: 0.2}
}

// PolicyP5 returns predictive placement, no migration, no staging.
func PolicyP5() Policy {
	return Policy{Name: "P5", Placement: PredictivePlacement}
}

// PolicyP6 returns predictive placement, no migration, 20% staging.
func PolicyP6() Policy {
	return Policy{Name: "P6", Placement: PredictivePlacement, StagingFrac: 0.2}
}

// PolicyP7 returns predictive placement with migration, no staging.
func PolicyP7() Policy {
	return Policy{Name: "P7", Placement: PredictivePlacement, Migration: true}
}

// PolicyP8 returns predictive placement with migration and 20% staging.
func PolicyP8() Policy {
	return Policy{Name: "P8", Placement: PredictivePlacement, Migration: true, StagingFrac: 0.2}
}

// PaperPolicies returns P1–P8 in order.
func PaperPolicies() []Policy {
	return []Policy{
		PolicyP1(), PolicyP2(), PolicyP3(), PolicyP4(),
		PolicyP5(), PolicyP6(), PolicyP7(), PolicyP8(),
	}
}
