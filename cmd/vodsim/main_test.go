package main

import "testing"

func TestParseSystem(t *testing.T) {
	small, err := parseSystem("small")
	if err != nil || small.NumServers != 5 {
		t.Errorf("small: %+v, %v", small, err)
	}
	large, err := parseSystem("large")
	if err != nil || large.NumServers != 20 {
		t.Errorf("large: %+v, %v", large, err)
	}
	one, err := parseSystem("svbr:40")
	if err != nil || one.NumServers != 1 || one.ServerBandwidth != 120 {
		t.Errorf("svbr: %+v, %v", one, err)
	}
	for _, bad := range []string{"", "medium", "svbr:0", "svbr:-3", "svbr:x"} {
		if _, err := parseSystem(bad); err == nil {
			t.Errorf("parseSystem(%q) accepted", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"P1", "P4", "P8"} {
		p, err := parsePolicy(name)
		if err != nil || p.Name != name {
			t.Errorf("parsePolicy(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := parsePolicy("P9"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := parsePolicy(""); err == nil {
		t.Error("empty policy accepted")
	}
}

func TestOrOne(t *testing.T) {
	if orOne(0) != 1 || orOne(0.5) != 0.5 {
		t.Error("orOne defaults wrong")
	}
}
