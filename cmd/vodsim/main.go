// Command vodsim runs a single cluster-VoD simulation with every model
// knob exposed as a flag and prints the resulting metrics. It is the
// interactive companion to cmd/paperfigs: use it to poke at one
// configuration, trace its events, or test a failure scenario.
//
// Examples:
//
//	vodsim -system small -policy P4 -theta 0.271 -hours 100
//	vodsim -system large -placement even -migration -staging 0.2 -theta -1
//	vodsim -system small -policy P3 -fail-at 50 -fail-server 2
//	vodsim -system small -policy P4 -trace events.csv -hours 2
//	vodsim -system small -policy P4 -admission first-fit -planner direct-only
//	vodsim -experiment fault-sweep-small -parallel 8 -hours 20
//	vodsim -experiment all -trials 5 -hours 100
//	vodsim -system small -policy P4 -trials 5 -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"semicont"
	"semicont/internal/experiments"
	"semicont/internal/faults"
	"semicont/internal/report"
	"semicont/internal/sweep"
	"semicont/internal/trace"
)

func main() {
	var (
		system    = flag.String("system", "small", `system: "small", "large", "scale:<n>" (n servers at 300 Mb/s), or "svbr:<k>" for a single server`)
		policy    = flag.String("policy", "", "paper policy P1..P8 (overrides the individual knobs)")
		placement = flag.String("placement", "even", "placement: even, predictive, partial")
		migration = flag.Bool("migration", false, "enable dynamic request migration")
		maxHops   = flag.Int("max-hops", 1, "lifetime migrations per request (-1 = unlimited)")
		maxChain  = flag.Int("max-chain", 1, "migrations per arrival (chain length)")
		switchDel = flag.Float64("switch-delay", 0, "seconds of blackout per migration")
		staging   = flag.Float64("staging", 0, "client buffer as fraction of average object size")
		spare     = flag.String("spare", "eftf", "workahead discipline: eftf, lftf, even-split")
		alloc     = flag.String("alloc", "", "bandwidth allocator by registry name (see -list-allocators; overrides -spare/-intermittent)")
		listAlloc = flag.Bool("list-allocators", false, "list registered bandwidth allocators and exit")
		admission = flag.String("admission", "", "admission server selector by registry name (see -list-admissions; empty = least-loaded)")
		planner   = flag.String("planner", "", "DRM migration planner by registry name (see -list-planners; requires -migration)")
		listAdm   = flag.Bool("list-admissions", false, "list registered admission selectors and exit")
		listPlan  = flag.Bool("list-planners", false, "list registered DRM planners and exit")
		intermit  = flag.Bool("intermittent", false, "intermittent scheduling (pause full-buffer streams; risks glitches)")
		guard     = flag.Float64("resume-guard", 0, "intermittent resume guard, seconds (0 = 30s default)")
		replicate = flag.Bool("replicate", false, "dynamic replication on rejection")
		copyRate  = flag.Float64("copy-rate", 0, "replication copy rate cap, Mb/s (0 = 2x view rate)")
		patchWin  = flag.Float64("patch-window", 0, "multicast patch window, seconds (0 = off)")
		pauseProb = flag.Float64("pause-prob", 0, "probability a viewer pauses once")
		pauseMin  = flag.Float64("pause-min", 60, "shortest viewer pause, seconds")
		pauseMax  = flag.Float64("pause-max", 540, "longest viewer pause, seconds")
		recvCap   = flag.Float64("recv-cap", semicont.DefaultReceiveCap, "client receive cap, Mb/s (-1 = unlimited)")
		theta     = flag.Float64("theta", 0.271, "Zipf theta (1 = uniform demand)")
		hours     = flag.Float64("hours", 100, "simulated hours of arrivals")
		load      = flag.Float64("load", 1.0, "offered load as a fraction of capacity")
		seed      = flag.Uint64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "independent trials (seeds derived)")
		failAt    = flag.Float64("fail-at", 0, "hours after which a server fails (0 = never)")
		failSrv   = flag.Int("fail-server", 0, "server to fail")
		mtbf      = flag.Float64("mtbf", 0, "per-server mean time between failures, hours (0 = no stochastic faults)")
		mttr      = flag.Float64("mttr", 0, "per-server mean time to recovery, hours (required with -mtbf)")
		coldRec   = flag.Bool("cold-recovery", false, "stochastic recoveries wipe the server's storage (rebuilt via -replicate)")
		faultTr   = flag.String("fault-trace", "", "JSON fault-trace file of scripted fail/recover events (see internal/faults)")
		retryQ    = flag.Bool("retry-queue", false, "queue rejected arrivals for bounded retry instead of dropping them")
		retryPat  = flag.Float64("retry-patience", 0, "seconds a queued client waits before reneging (0 = 300s default)")
		retryBack = flag.Float64("retry-backoff", 0, "seconds between admission retries (0 = 10s default)")
		degraded  = flag.Bool("degraded", false, "degraded-mode playback: streams parked at a failure drain their buffer and reconnect on recovery")
		traceOut  = flag.String("trace", "", "write an event trace CSV to this file (single trial only)")
		check     = flag.Bool("check", false, "enable per-event invariant checking (slow)")
		auditOn   = flag.Bool("audit", false, "attach the invariant auditor: every event is checked against the model's conservation laws; a violation aborts the run with a structured error")
		auditSamp = flag.Int("audit-sample", 0, "with -audit, snapshot-check only every k-th event (0 or 1 = every event); deterministic from the event sequence, keeps audited large runs feasible")
		statsOn   = flag.Bool("stats", false, "record per-request distributions (wait, retry sojourn, glitch, migrations, degraded park) into O(1)-memory quantile sketches and print p50/p95/p99")
		parallel  = flag.Int("parallel", 0, "max concurrent simulation jobs for -trials and -experiment (0 = GOMAXPROCS); results are identical at any setting")
		expt      = flag.String("experiment", "", `run registered experiments: an id, a comma list, or "all" (see -list-experiments); all share one -parallel pool`)
		listExp   = flag.Bool("list-experiments", false, "list registered experiments and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (see DESIGN.md for the profiling workflow)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchHost = flag.Bool("bench-host", false, "print the benchmark host fingerprint (GOMAXPROCS, hardware threads, go version, platform) and exit; CI records it next to every uploaded BENCH_*.json")
	)
	flag.Parse()

	if *benchHost {
		fmt.Printf("gomaxprocs=%d hardware_threads=%d go=%s platform=%s/%s\n",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	if *listAlloc {
		for _, name := range semicont.AllocatorNames() {
			fmt.Println(name)
		}
		return
	}
	if *listAdm {
		for _, name := range semicont.SelectorNames() {
			fmt.Println(name)
		}
		return
	}
	if *listPlan {
		for _, name := range semicont.PlannerNames() {
			fmt.Println(name)
		}
		return
	}
	if *listExp {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}

	// Profiles cover everything after flag handling. Error exits go
	// through os.Exit and lose the profile — profile runs that work.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	pool := sweep.New(*parallel)
	if *expt != "" {
		runExperiments(*expt, experiments.Options{
			HorizonHours: *hours,
			Trials:       *trials,
			Seed:         *seed,
			Audit:        *auditOn,
			Pool:         pool,
		})
		return
	}

	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}

	var pol semicont.Policy
	if *policy != "" {
		pol, err = parsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
	} else {
		pol = semicont.Policy{
			Name:            "custom",
			Migration:       *migration,
			SwitchDelay:     *switchDel,
			StagingFrac:     *staging,
			ReceiveCap:      *recvCap,
			Intermittent:    *intermit,
			ResumeGuard:     *guard,
			Replicate:       *replicate,
			ReplicationRate: *copyRate,
			PatchWindowSec:  *patchWin,
			PauseProb:       *pauseProb,
		}
		if *pauseProb > 0 {
			pol.MinPauseSec, pol.MaxPauseSec = *pauseMin, *pauseMax
		}
		if *migration {
			// MaxHops/MaxChain are meaningful only with DRM; setting them
			// without -migration is a validation error rather than a
			// silent no-op, so the flag defaults must not leak through.
			pol.MaxHops, pol.MaxChain = *maxHops, *maxChain
		}
		switch *spare {
		case "eftf":
			pol.Spare = semicont.EFTFSpare
		case "lftf":
			pol.Spare = semicont.LFTFSpare
		case "even-split":
			pol.Spare = semicont.EvenSplitSpare
		default:
			fatal(fmt.Errorf("unknown spare discipline %q", *spare))
		}
		switch *placement {
		case "even":
			pol.Placement = semicont.EvenPlacement
		case "predictive":
			pol.Placement = semicont.PredictivePlacement
		case "partial":
			pol.Placement = semicont.PartialPredictivePlacement
		default:
			fatal(fmt.Errorf("unknown placement %q", *placement))
		}
	}
	if *alloc != "" {
		pol.Allocator = *alloc
	}
	if *admission != "" {
		pol.Selector = *admission
	}
	if *planner != "" {
		pol.Planner = *planner
	}
	// Fault-tolerance knobs compose with both custom and paper policies.
	pol.RetryQueue = pol.RetryQueue || *retryQ
	pol.RetryPatienceSec = *retryPat
	pol.RetryBackoffSec = *retryBack
	pol.DegradedPlayback = pol.DegradedPlayback || *degraded

	fcfg := faults.Config{MTBFHours: *mtbf, MTTRHours: *mttr, Cold: *coldRec}
	if *faultTr != "" {
		data, err := os.ReadFile(*faultTr)
		if err != nil {
			fatal(err)
		}
		if fcfg.Trace, err = faults.ParseTrace(data); err != nil {
			fatal(err)
		}
	}

	sc := semicont.Scenario{
		System:          sys,
		Policy:          pol,
		Theta:           *theta,
		HorizonHours:    *hours,
		LoadFactor:      *load,
		Seed:            *seed,
		FailServer:      *failSrv,
		FailAtHours:     *failAt,
		Faults:          fcfg,
		CheckInvariants: *check,
		Audit:           *auditOn,
		AuditSample:     *auditSamp,
		Stats:           *statsOn,
	}

	if *traceOut != "" {
		if *trials != 1 {
			fatal(fmt.Errorf("-trace requires -trials 1"))
		}
		rec := &trace.Recorder{}
		sc.Observer = rec
		res, err := semicont.Run(sc)
		if err != nil {
			fatal(err)
		}
		printResult(sc, res)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(rec.Events), *traceOut)
		return
	}

	if *trials == 1 {
		res, err := semicont.Run(sc)
		if err != nil {
			fatal(err)
		}
		printResult(sc, res)
		return
	}

	agg, err := semicont.RunTrialsOn(pool, sc, *trials)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system=%s policy=%s theta=%g hours=%g trials=%d\n",
		sys.Name, pol.Name, sc.Theta, sc.HorizonHours, *trials)
	fmt.Printf("utilization      %s\n", agg.Utilization.String())
	fmt.Printf("rejection ratio  %s\n", agg.Rejection.String())
	fmt.Printf("migrations       %s\n", agg.Migrations.String())
	printDist(agg.Dist)
}

// runExperiments runs registered experiments by id ("all" runs the full
// registry), all sharing one worker pool, and prints their tables and
// figures as aligned text (cmd/paperfigs adds CSV output and the full
// presentation layer).
func runExperiments(spec string, opts experiments.Options) {
	entries := experiments.Registry()
	if spec != "all" {
		var selected []experiments.Entry
		for _, id := range strings.Split(spec, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
		entries = selected
	}
	for _, e := range entries {
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.ID, e.Description)
		out, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		for _, tbl := range out.Tables {
			if err := tbl.Write(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for _, fig := range out.Figures {
			tbl, err := report.SeriesTable(fig.Title, fig.XLabel, fig.Series)
			if err != nil {
				fatal(err)
			}
			if err := tbl.Write(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		fmt.Printf("(%s done in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func parseSystem(s string) (semicont.System, error) {
	switch s {
	case "small":
		return semicont.SmallSystem(), nil
	case "large":
		return semicont.LargeSystem(), nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "svbr:%d", &k); err == nil && k > 0 {
		return semicont.SingleServer(k), nil
	}
	if _, err := fmt.Sscanf(s, "scale:%d", &k); err == nil && k > 0 {
		return semicont.ScaleSystem(k), nil
	}
	return semicont.System{}, fmt.Errorf(`unknown system %q (want "small", "large", "scale:<n>", or "svbr:<k>")`, s)
}

func parsePolicy(name string) (semicont.Policy, error) {
	for _, p := range semicont.PaperPolicies() {
		if p.Name == name {
			return p, nil
		}
	}
	return semicont.Policy{}, fmt.Errorf("unknown policy %q (want P1..P8)", name)
}

func printResult(sc semicont.Scenario, r *semicont.Result) {
	fmt.Printf("system=%s policy=%s theta=%g hours=%g seed=%d\n",
		sc.System.Name, sc.Policy.Name, sc.Theta, sc.HorizonHours, sc.Seed)
	if sc.Policy.Selector != "" || sc.Policy.Planner != "" {
		fmt.Printf("controller         admission=%s planner=%s\n",
			orName(sc.Policy.Selector, semicont.SelectorLeastLoaded),
			orName(sc.Policy.Planner, semicont.PlannerChainDFS))
	}
	fmt.Printf("arrival rate       %.4f req/s (offered load = %.0f%% of %g Mb/s)\n",
		r.ArrivalRate, 100*orOne(sc.LoadFactor), r.TotalBandwidthMbps)
	fmt.Printf("utilization        %.4f\n", r.Utilization)
	fmt.Printf("requests           %d offered, %d accepted, %d rejected (%.2f%% rejected)\n",
		r.Arrivals, r.Accepted, r.Rejected, 100*r.RejectionRatio)
	fmt.Printf("data               %.0f Mb accepted, %.0f Mb delivered, %d completions\n",
		r.AcceptedMb, r.DeliveredMb, r.Completions)
	if sc.Policy.Migration {
		fmt.Printf("migration          %d moves, %d admissions via DRM, mean chain %.2f, max chain %d\n",
			r.Migrations, r.AdmissionsViaDRM, r.MeanChainLength, r.MaxChainUsed)
	}
	if sc.Policy.StagingFrac > 0 {
		fmt.Printf("staging            %.0f Mb client buffer (%.0f%% of avg object)\n",
			r.StagingBufferMb, 100*sc.Policy.StagingFrac)
	}
	if sc.FailAtHours > 0 {
		fmt.Printf("failure            server %d at %g h: %d rescued, %d dropped\n",
			sc.FailServer, sc.FailAtHours, r.RescuedStreams, r.DroppedStreams)
	}
	if sc.Faults.Enabled() {
		fmt.Printf("faults             %d failures, %d recoveries (%d cold): %d rescued, %d dropped\n",
			r.Failures, r.Recoveries, r.ColdRecoveries, r.RescuedStreams, r.DroppedStreams)
	}
	if sc.Policy.RetryQueue {
		fmt.Printf("retry queue        %d queued, %d admitted on retry, %d reneged\n",
			r.RetriesQueued, r.RetriedAdmissions, r.Reneged)
	}
	if sc.Policy.DegradedPlayback {
		fmt.Printf("degraded playback  %d parked, %d resumed, %d glitched\n",
			r.DegradedParked, r.DegradedResumed, r.DegradedGlitches)
	}
	if sc.Policy.Intermittent {
		fmt.Printf("intermittent       %d streams glitched\n", r.GlitchedStreams)
	}
	if sc.Policy.Replicate {
		fmt.Printf("replication        %d copies completed (%d started), %.0f Mb moved\n",
			r.ReplicationsCompleted, r.ReplicationsStarted, r.ReplicatedMb)
	}
	if sc.Policy.PauseProb > 0 {
		fmt.Printf("interactivity      %d viewer pauses\n", r.ViewerPauses)
	}
	if sc.Policy.PatchWindowSec > 0 {
		fmt.Printf("patching           %d joins, %.0f Mb delivered over shared streams\n",
			r.PatchedJoins, r.SharedMb)
	}
	if r.PlacementShortfall > 0 {
		fmt.Printf("placement          WARNING: %d replicas did not fit (placed %d)\n",
			r.PlacementShortfall, r.PlacedCopies)
	}
	if sc.Audit {
		if sc.AuditSample > 1 {
			fmt.Printf("audit              %d events snapshot-checked (every %dth), 0 violations\n",
				r.AuditedEvents, sc.AuditSample)
		} else {
			fmt.Printf("audit              %d events checked, 0 violations\n", r.AuditedEvents)
		}
	}
	printDist(r.Dist)
}

// printDist renders the streaming distribution sketches, one line per
// non-empty channel (nil unless the run had -stats).
func printDist(d *semicont.DistStats) {
	if d == nil {
		return
	}
	for _, c := range d.Channels() {
		if c.Sketch.N() == 0 {
			continue
		}
		q := c.Sketch.Summary()
		fmt.Printf("dist %-14s n=%d p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			c.Name, c.Sketch.N(), q.P50, q.P95, q.P99, c.Sketch.Max())
	}
}

func orName(name, def string) string {
	if name == "" {
		return def
	}
	return name
}

func orOne(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodsim:", err)
	os.Exit(1)
}
