// Command vodsim runs a single cluster-VoD simulation with every model
// knob exposed as a flag and prints the resulting metrics. It is the
// interactive companion to cmd/paperfigs: use it to poke at one
// configuration, trace its events, or test a failure scenario.
//
// Examples:
//
//	vodsim -system small -policy P4 -theta 0.271 -hours 100
//	vodsim -system large -placement even -migration -staging 0.2 -theta -1
//	vodsim -system small -policy P3 -fail-at 50 -fail-server 2
//	vodsim -system small -policy P4 -trace events.csv -hours 2
//	vodsim -system small -policy P4 -admission first-fit -planner direct-only
//	vodsim -system small -staging 0.2 -edge-nodes 2 -prefix-sec 900 -edge-cache-mb 96000 -batch-policy batch-prefix -batch-window 300
//	vodsim -experiment fault-sweep-small -parallel 8 -hours 20
//	vodsim -experiment all -trials 5 -hours 100
//	vodsim -system small -policy P4 -trials 5 -cpuprofile cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"semicont"
	"semicont/internal/experiments"
	"semicont/internal/faults"
	"semicont/internal/report"
	"semicont/internal/sweep"
	"semicont/internal/trace"
	"semicont/internal/workload"
)

func main() {
	var (
		system    = flag.String("system", "small", `system: "small", "large", "scale:<n>" (n servers at 300 Mb/s), or "svbr:<k>" for a single server`)
		policy    = flag.String("policy", "", "paper policy P1..P8 (overrides the individual knobs)")
		placement = flag.String("placement", "even", "placement: even, predictive, partial")
		migration = flag.Bool("migration", false, "enable dynamic request migration")
		maxHops   = flag.Int("max-hops", 1, "lifetime migrations per request (-1 = unlimited)")
		maxChain  = flag.Int("max-chain", 1, "migrations per arrival (chain length)")
		switchDel = flag.Float64("switch-delay", 0, "seconds of blackout per migration")
		staging   = flag.Float64("staging", 0, "client buffer as fraction of average object size")
		spare     = flag.String("spare", "eftf", "workahead discipline: eftf, lftf, even-split")
		alloc     = flag.String("alloc", "", "bandwidth allocator by registry name (see -list-allocators; overrides -spare/-intermittent)")
		listAlloc = flag.Bool("list-allocators", false, "list registered bandwidth allocators and exit")
		admission = flag.String("admission", "", "admission server selector by registry name (see -list-admissions; empty = least-loaded)")
		planner   = flag.String("planner", "", "DRM migration planner by registry name (see -list-planners; requires -migration)")
		listAdm   = flag.Bool("list-admissions", false, "list registered admission selectors and exit")
		listPlan  = flag.Bool("list-planners", false, "list registered DRM planners and exit")
		intermit  = flag.Bool("intermittent", false, "intermittent scheduling (pause full-buffer streams; risks glitches)")
		guard     = flag.Float64("resume-guard", 0, "intermittent resume guard, seconds (0 = 30s default)")
		replicate = flag.Bool("replicate", false, "dynamic replication on rejection")
		copyRate  = flag.Float64("copy-rate", 0, "replication copy rate cap, Mb/s (0 = 2x view rate)")
		patchWin  = flag.Float64("patch-window", 0, "multicast patch window, seconds (0 = off)")
		edgeNodes = flag.Int("edge-nodes", 0, "edge/proxy nodes holding video prefixes in front of the cluster (0 = no edge tier)")
		prefixSec = flag.Float64("prefix-sec", 0, "edge-cached prefix length per video, seconds of playback (requires -edge-nodes)")
		edgeCache = flag.Float64("edge-cache-mb", 0, "per-node edge cache byte budget, Mb (requires -edge-nodes)")
		edgePol   = flag.String("edge-cache-policy", "", "edge prefix-cache policy by registry name (see -list-edge-caches; empty = static-zipf)")
		listEdge  = flag.Bool("list-edge-caches", false, "list registered edge prefix-cache policies and exit")
		batchPol  = flag.String("batch-policy", "", `multicast batching policy by registry name (see -list-batch-policies; empty = "patch" with -patch-window, else "unicast")`)
		batchWin  = flag.Float64("batch-window", 0, "batching window for -batch-policy, seconds")
		listBatch = flag.Bool("list-batch-policies", false, "list registered multicast batching policies and exit")
		pauseProb = flag.Float64("pause-prob", 0, "probability a viewer pauses once")
		pauseMin  = flag.Float64("pause-min", 60, "shortest viewer pause, seconds")
		pauseMax  = flag.Float64("pause-max", 540, "longest viewer pause, seconds")
		recvCap   = flag.Float64("recv-cap", semicont.DefaultReceiveCap, "client receive cap, Mb/s (-1 = unlimited)")
		theta     = flag.Float64("theta", 0.271, "Zipf theta (1 = uniform demand)")
		hours     = flag.Float64("hours", 100, "simulated hours of arrivals")
		load      = flag.Float64("load", 1.0, "offered load as a fraction of capacity")
		seed      = flag.Uint64("seed", 1, "random seed")
		trials    = flag.Int("trials", 1, "independent trials (seeds derived)")
		failAt    = flag.Float64("fail-at", 0, "hours after which a server fails (0 = never)")
		failSrv   = flag.Int("fail-server", 0, "server to fail")
		mtbf      = flag.Float64("mtbf", 0, "per-server mean time between failures, hours (0 = no stochastic faults)")
		mttr      = flag.Float64("mttr", 0, "per-server mean time to recovery, hours (required with -mtbf)")
		coldRec   = flag.Bool("cold-recovery", false, "stochastic recoveries wipe the server's storage (rebuilt via -replicate)")
		faultTr   = flag.String("fault-trace", "", "JSON fault-trace file of scripted fail/recover/brownout events (see internal/faults)")
		brownoutF = flag.String("brownout", "", `stochastic brownouts "mtbf:mttr:frac" (hours, hours, fraction of capacity kept); with -fault-domains whole domains brown out instead of failing`)
		domainsF  = flag.String("fault-domains", "", `correlated failure domains as ';'-separated server lists, e.g. "0,1;2,3"; -mtbf/-mttr (or -brownout) then drive whole-domain churn`)
		flashF    = flag.String("flash-crowd", "", `flash crowd "at:dur:factor[:video]" (hours, hours, rate multiplier, catalog id): the video jumps to rank 1 while aggregate load multiplies`)
		diurnalF  = flag.String("diurnal", "", `diurnal arrival curve "amp[:period-hours]" (relative amplitude in [0,1); period defaults to 24h)`)
		classesF  = flag.String("classes", "", `traffic classes "name=share,name=share" (first class is premium: highest priority, never shed)`)
		shedWM    = flag.Float64("shed-watermark", 0, "load-shedding utilization watermark in (0,1] (0 = off; requires -classes)")
		retryQ    = flag.Bool("retry-queue", false, "queue rejected arrivals for bounded retry instead of dropping them")
		retryPat  = flag.Float64("retry-patience", 0, "seconds a queued client waits before reneging (0 = 300s default)")
		retryBack = flag.Float64("retry-backoff", 0, "seconds between admission retries (0 = 10s default)")
		degraded  = flag.Bool("degraded", false, "degraded-mode playback: streams parked at a failure drain their buffer and reconnect on recovery")
		traceOut  = flag.String("trace", "", "write an event trace CSV to this file (single trial only)")
		check     = flag.Bool("check", false, "enable per-event invariant checking (slow)")
		auditOn   = flag.Bool("audit", false, "attach the invariant auditor: every event is checked against the model's conservation laws; a violation aborts the run with a structured error")
		auditSamp = flag.Int("audit-sample", 0, "with -audit, snapshot-check only every k-th event (0 or 1 = every event); deterministic from the event sequence, keeps audited large runs feasible")
		statsOn   = flag.Bool("stats", false, "record per-request distributions (wait, retry sojourn, glitch, migrations, degraded park) into O(1)-memory quantile sketches and print p50/p95/p99")
		shards    = flag.Int("shards", 1, "within-run engine shards (server subsets advanced in parallel and merged deterministically; results are identical at any setting)")
		parallel  = flag.Int("parallel", 0, "max concurrent simulation jobs for -trials and -experiment (0 = GOMAXPROCS); results are identical at any setting")
		expt      = flag.String("experiment", "", `run registered experiments: an id, a comma list, or "all" (see -list-experiments); all share one -parallel pool`)
		listExp   = flag.Bool("list-experiments", false, "list registered experiments and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file (see DESIGN.md for the profiling workflow)")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchHost = flag.Bool("bench-host", false, "print the benchmark host fingerprint (GOMAXPROCS, hardware threads, go version, platform) and exit; CI records it next to every uploaded BENCH_*.json")
	)
	flag.Parse()

	if *benchHost {
		fmt.Printf("gomaxprocs=%d hardware_threads=%d go=%s platform=%s/%s\n",
			runtime.GOMAXPROCS(0), runtime.NumCPU(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	if *listAlloc {
		for _, name := range semicont.AllocatorNames() {
			fmt.Println(name)
		}
		return
	}
	if *listAdm {
		for _, name := range semicont.SelectorNames() {
			fmt.Println(name)
		}
		return
	}
	if *listPlan {
		for _, name := range semicont.PlannerNames() {
			fmt.Println(name)
		}
		return
	}
	if *listEdge {
		for _, name := range semicont.EdgeCachePolicyNames() {
			fmt.Println(name)
		}
		return
	}
	if *listBatch {
		for _, name := range semicont.BatchPolicyNames() {
			fmt.Println(name)
		}
		return
	}
	if *listExp {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}

	// Profiles cover everything after flag handling. Error exits go
	// through os.Exit and lose the profile — profile runs that work.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}

	// With sharded runs, each job may use -shards threads internally, so
	// the pool admits proportionally fewer concurrent jobs.
	pool := sweep.New(sweep.Budget(*parallel, *shards))
	if *expt != "" {
		runExperiments(*expt, experiments.Options{
			HorizonHours: *hours,
			Trials:       *trials,
			Seed:         *seed,
			Audit:        *auditOn,
			Pool:         pool,
		})
		return
	}

	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}

	var pol semicont.Policy
	if *policy != "" {
		pol, err = parsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
	} else {
		pol = semicont.Policy{
			Name:            "custom",
			Migration:       *migration,
			SwitchDelay:     *switchDel,
			StagingFrac:     *staging,
			ReceiveCap:      *recvCap,
			Intermittent:    *intermit,
			ResumeGuard:     *guard,
			Replicate:       *replicate,
			ReplicationRate: *copyRate,
			PatchWindowSec:  *patchWin,
			PauseProb:       *pauseProb,
		}
		if *pauseProb > 0 {
			pol.MinPauseSec, pol.MaxPauseSec = *pauseMin, *pauseMax
		}
		if *migration {
			// MaxHops/MaxChain are meaningful only with DRM; setting them
			// without -migration is a validation error rather than a
			// silent no-op, so the flag defaults must not leak through.
			pol.MaxHops, pol.MaxChain = *maxHops, *maxChain
		}
		switch *spare {
		case "eftf":
			pol.Spare = semicont.EFTFSpare
		case "lftf":
			pol.Spare = semicont.LFTFSpare
		case "even-split":
			pol.Spare = semicont.EvenSplitSpare
		default:
			fatal(fmt.Errorf("unknown spare discipline %q", *spare))
		}
		switch *placement {
		case "even":
			pol.Placement = semicont.EvenPlacement
		case "predictive":
			pol.Placement = semicont.PredictivePlacement
		case "partial":
			pol.Placement = semicont.PartialPredictivePlacement
		default:
			fatal(fmt.Errorf("unknown placement %q", *placement))
		}
	}
	if *alloc != "" {
		pol.Allocator = *alloc
	}
	if *admission != "" {
		pol.Selector = *admission
	}
	if *planner != "" {
		pol.Planner = *planner
	}
	// Fault-tolerance knobs compose with both custom and paper policies.
	pol.RetryQueue = pol.RetryQueue || *retryQ
	pol.RetryPatienceSec = *retryPat
	pol.RetryBackoffSec = *retryBack
	pol.DegradedPlayback = pol.DegradedPlayback || *degraded
	if *classesF != "" {
		classes, err := parseClasses(*classesF)
		if err != nil {
			fatal(err)
		}
		pol.Classes = classes
	}
	pol.ShedWatermark = *shedWM
	// Edge-tier knobs compose with both custom and paper policies; the
	// zero defaults mean validation catches partial configurations
	// (e.g. -prefix-sec without -edge-nodes) instead of ignoring them.
	pol.EdgeNodes = *edgeNodes
	pol.EdgePrefixSec = *prefixSec
	pol.EdgeCacheMb = *edgeCache
	pol.EdgeCachePolicy = *edgePol
	pol.BatchPolicy = *batchPol
	pol.BatchWindowSec = *batchWin

	fcfg := faults.Config{MTBFHours: *mtbf, MTTRHours: *mttr, Cold: *coldRec}
	if *brownoutF != "" {
		var err error
		fcfg.BrownoutMTBFHours, fcfg.BrownoutMTTRHours, fcfg.BrownoutFraction, err = parseBrownout(*brownoutF)
		if err != nil {
			fatal(err)
		}
	}
	if *domainsF != "" {
		ds, err := parseDomains(*domainsF)
		if err != nil {
			fatal(err)
		}
		fcfg.Domains = ds
		// Domain churn takes over the per-server rate flags; a -brownout
		// spec makes the domain events brownouts instead of failures.
		fcfg.DomainMTBFHours, fcfg.MTBFHours = fcfg.MTBFHours, 0
		fcfg.DomainMTTRHours, fcfg.MTTRHours = fcfg.MTTRHours, 0
		if *brownoutF != "" {
			fcfg.DomainBrownout = true
			fcfg.DomainFraction = fcfg.BrownoutFraction
			if fcfg.DomainMTBFHours == 0 {
				fcfg.DomainMTBFHours, fcfg.DomainMTTRHours = fcfg.BrownoutMTBFHours, fcfg.BrownoutMTTRHours
			}
			fcfg.BrownoutMTBFHours, fcfg.BrownoutMTTRHours, fcfg.BrownoutFraction = 0, 0, 0
		}
	}
	if *faultTr != "" {
		data, err := os.ReadFile(*faultTr)
		if err != nil {
			fatal(err)
		}
		if fcfg.Trace, err = faults.ParseTrace(data); err != nil {
			fatal(err)
		}
	}

	var curve workload.Curve
	if *diurnalF != "" {
		var err error
		curve.DiurnalAmp, curve.DiurnalPeriod, err = parseDiurnal(*diurnalF)
		if err != nil {
			fatal(err)
		}
	}
	if *flashF != "" {
		var err error
		curve.FlashAt, curve.FlashDuration, curve.FlashFactor, curve.FlashVideo, err = parseFlash(*flashF)
		if err != nil {
			fatal(err)
		}
	}

	sc := semicont.Scenario{
		System:          sys,
		Policy:          pol,
		Theta:           *theta,
		HorizonHours:    *hours,
		LoadFactor:      *load,
		Seed:            *seed,
		FailServer:      *failSrv,
		FailAtHours:     *failAt,
		Faults:          fcfg,
		Curve:           curve,
		CheckInvariants: *check,
		Shards:          *shards,
		Audit:           *auditOn,
		AuditSample:     *auditSamp,
		Stats:           *statsOn,
	}

	if *traceOut != "" {
		if *trials != 1 {
			fatal(fmt.Errorf("-trace requires -trials 1"))
		}
		rec := &trace.Recorder{}
		sc.Observer = rec
		res, err := semicont.Run(sc)
		if err != nil {
			fatal(err)
		}
		printResult(sc, res)
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s\n", len(rec.Events), *traceOut)
		return
	}

	if *trials == 1 {
		res, err := semicont.Run(sc)
		if err != nil {
			fatal(err)
		}
		printResult(sc, res)
		return
	}

	agg, err := semicont.RunTrialsOn(pool, sc, *trials)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("system=%s policy=%s theta=%g hours=%g trials=%d\n",
		sys.Name, pol.Name, sc.Theta, sc.HorizonHours, *trials)
	fmt.Printf("utilization      %s\n", agg.Utilization.String())
	fmt.Printf("rejection ratio  %s\n", agg.Rejection.String())
	fmt.Printf("migrations       %s\n", agg.Migrations.String())
	printDist(agg.Dist)
}

// runExperiments runs registered experiments by id ("all" runs the full
// registry), all sharing one worker pool, and prints their tables and
// figures as aligned text (cmd/paperfigs adds CSV output and the full
// presentation layer).
func runExperiments(spec string, opts experiments.Options) {
	entries := experiments.Registry()
	if spec != "all" {
		var selected []experiments.Entry
		for _, id := range strings.Split(spec, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
		entries = selected
	}
	for _, e := range entries {
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.ID, e.Description)
		out, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		for _, tbl := range out.Tables {
			if err := tbl.Write(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for _, fig := range out.Figures {
			tbl, err := report.SeriesTable(fig.Title, fig.XLabel, fig.Series)
			if err != nil {
				fatal(err)
			}
			if err := tbl.Write(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		fmt.Printf("(%s done in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func parseSystem(s string) (semicont.System, error) {
	switch s {
	case "small":
		return semicont.SmallSystem(), nil
	case "large":
		return semicont.LargeSystem(), nil
	}
	var k int
	if _, err := fmt.Sscanf(s, "svbr:%d", &k); err == nil && k > 0 {
		return semicont.SingleServer(k), nil
	}
	if _, err := fmt.Sscanf(s, "scale:%d", &k); err == nil && k > 0 {
		return semicont.ScaleSystem(k), nil
	}
	return semicont.System{}, fmt.Errorf(`unknown system %q (want "small", "large", "scale:<n>", or "svbr:<k>")`, s)
}

// parseBrownout decodes "-brownout mtbf:mttr:frac" (hours, hours,
// fraction of capacity kept during the brownout).
func parseBrownout(s string) (mtbf, mttr, frac float64, err error) {
	if _, err := fmt.Sscanf(s, "%g:%g:%g", &mtbf, &mttr, &frac); err != nil {
		return 0, 0, 0, fmt.Errorf(`bad -brownout %q (want "mtbf:mttr:frac")`, s)
	}
	return mtbf, mttr, frac, nil
}

// parseDomains decodes "-fault-domains 0,1;2,3" into server-id lists.
func parseDomains(s string) ([][]int, error) {
	var domains [][]int
	for _, part := range strings.Split(s, ";") {
		var members []int
		for _, m := range strings.Split(part, ",") {
			var id int
			if _, err := fmt.Sscanf(strings.TrimSpace(m), "%d", &id); err != nil {
				return nil, fmt.Errorf(`bad -fault-domains %q (want ';'-separated server lists like "0,1;2,3")`, s)
			}
			members = append(members, id)
		}
		domains = append(domains, members)
	}
	return domains, nil
}

// parseDiurnal decodes "-diurnal amp[:period-hours]" into curve fields
// (period in seconds; 0 keeps the 24 h default).
func parseDiurnal(s string) (amp, period float64, err error) {
	var hours float64
	if _, err := fmt.Sscanf(s, "%g:%g", &amp, &hours); err == nil {
		return amp, hours * 3600, nil
	}
	if _, err := fmt.Sscanf(s, "%g", &amp); err != nil {
		return 0, 0, fmt.Errorf(`bad -diurnal %q (want "amp" or "amp:period-hours")`, s)
	}
	return amp, 0, nil
}

// parseFlash decodes "-flash-crowd at:dur:factor[:video]" (hours,
// hours, rate multiplier, catalog id) into curve fields in seconds.
func parseFlash(s string) (at, dur, factor float64, video int, err error) {
	if _, err := fmt.Sscanf(s, "%g:%g:%g:%d", &at, &dur, &factor, &video); err != nil {
		if _, err := fmt.Sscanf(s, "%g:%g:%g", &at, &dur, &factor); err != nil {
			return 0, 0, 0, 0, fmt.Errorf(`bad -flash-crowd %q (want "at:dur:factor[:video]")`, s)
		}
	}
	return at * 3600, dur * 3600, factor, video, nil
}

// parseClasses decodes "-classes premium=1,standard=3" into traffic
// classes in declaration order (the first is the protected tier).
func parseClasses(s string) ([]semicont.TrafficClass, error) {
	var classes []semicont.TrafficClass
	for _, part := range strings.Split(s, ",") {
		name, share, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf(`bad -classes %q (want "name=share,name=share")`, s)
		}
		var w float64
		if _, err := fmt.Sscanf(share, "%g", &w); err != nil {
			return nil, fmt.Errorf("bad -classes share %q: %v", share, err)
		}
		classes = append(classes, semicont.TrafficClass{Name: name, Share: w})
	}
	return classes, nil
}

func parsePolicy(name string) (semicont.Policy, error) {
	for _, p := range semicont.PaperPolicies() {
		if p.Name == name {
			return p, nil
		}
	}
	return semicont.Policy{}, fmt.Errorf("unknown policy %q (want P1..P8)", name)
}

func printResult(sc semicont.Scenario, r *semicont.Result) {
	fmt.Printf("system=%s policy=%s theta=%g hours=%g seed=%d\n",
		sc.System.Name, sc.Policy.Name, sc.Theta, sc.HorizonHours, sc.Seed)
	if sc.Policy.Selector != "" || sc.Policy.Planner != "" {
		fmt.Printf("controller         admission=%s planner=%s\n",
			orName(sc.Policy.Selector, semicont.SelectorLeastLoaded),
			orName(sc.Policy.Planner, semicont.PlannerChainDFS))
	}
	fmt.Printf("arrival rate       %.4f req/s (offered load = %.0f%% of %g Mb/s)\n",
		r.ArrivalRate, 100*orOne(sc.LoadFactor), r.TotalBandwidthMbps)
	fmt.Printf("utilization        %.4f\n", r.Utilization)
	fmt.Printf("requests           %d offered, %d accepted, %d rejected (%.2f%% rejected)\n",
		r.Arrivals, r.Accepted, r.Rejected, 100*r.RejectionRatio)
	fmt.Printf("data               %.0f Mb accepted, %.0f Mb delivered, %d completions\n",
		r.AcceptedMb, r.DeliveredMb, r.Completions)
	if sc.Policy.Migration {
		fmt.Printf("migration          %d moves, %d admissions via DRM, mean chain %.2f, max chain %d\n",
			r.Migrations, r.AdmissionsViaDRM, r.MeanChainLength, r.MaxChainUsed)
	}
	if sc.Policy.StagingFrac > 0 {
		fmt.Printf("staging            %.0f Mb client buffer (%.0f%% of avg object)\n",
			r.StagingBufferMb, 100*sc.Policy.StagingFrac)
	}
	if sc.FailAtHours > 0 {
		fmt.Printf("failure            server %d at %g h: %d rescued, %d dropped\n",
			sc.FailServer, sc.FailAtHours, r.RescuedStreams, r.DroppedStreams)
	}
	if sc.Faults.Enabled() {
		fmt.Printf("faults             %d failures, %d recoveries (%d cold): %d rescued, %d dropped\n",
			r.Failures, r.Recoveries, r.ColdRecoveries, r.RescuedStreams, r.DroppedStreams)
		if r.Brownouts > 0 {
			fmt.Printf("brownouts          %d begun, %d restored\n", r.Brownouts, r.BrownoutRestores)
		}
	}
	if len(sc.Policy.Classes) > 0 {
		if sc.Policy.ShedWatermark > 0 {
			fmt.Printf("shedding           watermark %.2f, activated %d times\n",
				sc.Policy.ShedWatermark, r.SheddingActivated)
		}
		for i, c := range sc.Policy.Classes {
			fmt.Printf("class %-12s %d offered, %d accepted, %d rejected (%d shed), %d reneged\n",
				c.Name, r.ClassArrivals[i], r.ClassAccepted[i], r.ClassRejected[i],
				r.ClassShed[i], r.ClassReneged[i])
		}
	}
	if sc.Policy.RetryQueue {
		fmt.Printf("retry queue        %d queued, %d admitted on retry, %d reneged\n",
			r.RetriesQueued, r.RetriedAdmissions, r.Reneged)
	}
	if sc.Policy.DegradedPlayback {
		fmt.Printf("degraded playback  %d parked, %d resumed, %d glitched\n",
			r.DegradedParked, r.DegradedResumed, r.DegradedGlitches)
	}
	if sc.Policy.Intermittent {
		fmt.Printf("intermittent       %d streams glitched\n", r.GlitchedStreams)
	}
	if sc.Policy.Replicate {
		fmt.Printf("replication        %d copies completed (%d started), %.0f Mb moved\n",
			r.ReplicationsCompleted, r.ReplicationsStarted, r.ReplicatedMb)
	}
	if sc.Policy.PauseProb > 0 {
		fmt.Printf("interactivity      %d viewer pauses\n", r.ViewerPauses)
	}
	if sc.Policy.PatchWindowSec > 0 || sc.Policy.BatchPolicy == semicont.BatchPolicyPatch {
		fmt.Printf("patching           %d joins, %.0f Mb delivered over shared streams\n",
			r.PatchedJoins, r.SharedMb)
	}
	if sc.Policy.EdgeNodes > 0 {
		fmt.Printf("edge               %d nodes, %d hits (%d batched joins), %.0f Mb edge-served, %.0f Mb shared, %.0f Mb cluster egress\n",
			sc.Policy.EdgeNodes, r.EdgeHits, r.BatchedJoins, r.EdgeMb, r.SharedMb, r.ClusterEgressMb)
	}
	if r.PlacementShortfall > 0 {
		fmt.Printf("placement          WARNING: %d replicas did not fit (placed %d)\n",
			r.PlacementShortfall, r.PlacedCopies)
	}
	if sc.Audit {
		if sc.AuditSample > 1 {
			fmt.Printf("audit              %d events snapshot-checked (every %dth), 0 violations\n",
				r.AuditedEvents, sc.AuditSample)
		} else {
			fmt.Printf("audit              %d events checked, 0 violations\n", r.AuditedEvents)
		}
	}
	printDist(r.Dist)
}

// printDist renders the streaming distribution sketches, one line per
// non-empty channel (nil unless the run had -stats).
func printDist(d *semicont.DistStats) {
	if d == nil {
		return
	}
	for _, c := range d.Channels() {
		if c.Sketch.N() == 0 {
			continue
		}
		q := c.Sketch.Summary()
		fmt.Printf("dist %-14s n=%d p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			c.Name, c.Sketch.N(), q.P50, q.P95, q.P99, c.Sketch.Max())
	}
}

func orName(name, def string) string {
	if name == "" {
		return def
	}
	return name
}

func orOne(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vodsim:", err)
	os.Exit(1)
}
