// Command paperfigs regenerates every table and figure of the paper's
// evaluation (and this reproduction's extension experiments), printing
// aligned text tables and optionally writing CSV files for plotting.
//
// Usage:
//
//	paperfigs [-only f4-small,f7-large] [-hours 100] [-trials 5]
//	          [-seed 1] [-out results/] [-list] [-v]
//
// Defaults run every experiment at 100 simulated hours × 5 trials per
// point — a laptop-scale setting whose shapes match the paper's
// 1000-hour design (see EXPERIMENTS.md). Pass -hours 1000 for the
// paper's full scale.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"semicont"
	"semicont/internal/experiments"
	"semicont/internal/report"
	"semicont/internal/sweep"
)

func main() {
	var (
		only   = flag.String("only", "", "comma-separated experiment ids (default: all)")
		hours  = flag.Float64("hours", 100, "simulated hours per trial")
		trials = flag.Int("trials", 5, "trials per data point")
		seed   = flag.Uint64("seed", 1, "base random seed")
		outDir = flag.String("out", "", "directory for CSV output (empty: no CSV)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		listAl = flag.Bool("list-allocators", false, "list registered bandwidth allocators and exit")
		verb   = flag.Bool("v", false, "print per-point progress")
		par    = flag.Int("parallel", 0, "max concurrent simulation jobs, shared by all experiments (0 = GOMAXPROCS); output is identical at any setting")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-14s %s\n", e.ID, e.Description)
		}
		return
	}
	if *listAl {
		for _, name := range semicont.AllocatorNames() {
			fmt.Println(name)
		}
		return
	}

	entries := experiments.Registry()
	if *only != "" {
		var selected []experiments.Entry
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Find(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			selected = append(selected, e)
		}
		entries = selected
	}

	opts := experiments.Options{
		HorizonHours: *hours,
		Trials:       *trials,
		Seed:         *seed,
		Pool:         sweep.New(*par),
	}
	if *verb {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	for _, e := range entries {
		start := time.Now()
		fmt.Printf("== %s: %s\n", e.ID, e.Description)
		out, err := e.Run(opts)
		if err != nil {
			fatal(err)
		}
		if err := renderOutput(os.Stdout, out, *outDir); err != nil {
			fatal(err)
		}
		fmt.Printf("(%s done in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// renderOutput prints one experiment's tables and figures to w as
// aligned text; when csvDir is non-empty every figure is also written
// there as <figure id>.csv. It is the whole presentation layer of the
// command, factored out so the rendering is testable against goldens.
func renderOutput(w io.Writer, out *experiments.Output, csvDir string) error {
	for _, tbl := range out.Tables {
		if err := tbl.Write(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	for _, fig := range out.Figures {
		tbl, err := report.SeriesTable(fig.Title, fig.XLabel, fig.Series)
		if err != nil {
			return err
		}
		if err := tbl.Write(w); err != nil {
			return err
		}
		if fig.Notes != "" {
			fmt.Fprintf(w, "note: %s\n", fig.Notes)
		}
		fmt.Fprintln(w)
		if csvDir != "" {
			if err := writeCSV(w, csvDir, fig); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(w io.Writer, dir string, fig experiments.Figure) error {
	path := filepath.Join(dir, fig.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteSeriesCSV(f, fig.XLabel, fig.Series); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
