package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semicont/internal/experiments"
	"semicont/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestRenderTablesGolden pins the command's rendering of the paper's
// two pure tables (Figure 3 parameters, Figure 6 policies). Both are
// deterministic — no simulation runs — so the full output is
// byte-comparable.
func TestRenderTablesGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		out  *experiments.Output
	}{
		{"t3.golden", experiments.TableFig3()},
		{"t6.golden", experiments.TableFig6()},
	} {
		var buf bytes.Buffer
		if err := renderOutput(&buf, tc.out, ""); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		golden(t, tc.name, buf.Bytes())
	}
}

// TestRenderFiguresGolden covers the figure path of renderOutput —
// series table, notes line, and CSV side output — with a synthetic
// deterministic figure.
func TestRenderFiguresGolden(t *testing.T) {
	out := &experiments.Output{
		ID:    "synthetic",
		Title: "synthetic figure",
		Figures: []experiments.Figure{{
			ID:     "synthetic-fig",
			Title:  "Utilization vs theta",
			XLabel: "theta",
			Notes:  "two fixed curves, no simulation",
			Series: []stats.Series{
				{Name: "base", Points: []stats.Point{
					{X: -1, Mean: 0.7, CI95: 0.01},
					{X: 1, Mean: 0.9, CI95: 0.02},
				}},
				{Name: "tuned", Points: []stats.Point{
					{X: -1, Mean: 0.8, CI95: 0.005},
					{X: 1, Mean: 0.95, CI95: 0},
				}},
			},
		}},
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := renderOutput(&buf, out, dir); err != nil {
		t.Fatal(err)
	}
	// The CSV path embeds the temp dir; normalize it before comparing.
	text := strings.ReplaceAll(buf.String(), dir, "OUT")
	golden(t, "figure.golden", []byte(text))

	csv, err := os.ReadFile(filepath.Join(dir, "synthetic-fig.csv"))
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure.csv.golden", csv)
}
