package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"semicont"
	"semicont/internal/sweep"
)

// runAt executes one experiment function with the shared pool sized to
// w workers and returns its Output. Trials is 2 so the cross-trial
// aggregation order is exercised, not just single-result plumbing.
func runAt(t *testing.T, w int, f func(semicont.System, Options) (*Output, error)) *Output {
	t.Helper()
	opts := tinyOpts()
	opts.Trials = 2
	opts.Pool = sweep.New(w)
	out, err := f(semicont.SmallSystem(), opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", w, err)
	}
	return out
}

// TestSweepsDeterministicAcrossWorkers pins the flattened-sweep
// contract: an experiment's Output must be byte-identical no matter how
// many workers drain the cell×trial job list, because every trial's
// seed derives from its (cell, trial) index and every result lands in a
// pre-indexed slot. One allocator sweep, one fault sweep, and one
// admission sweep each run at 1, 2, and GOMAXPROCS workers and must
// reproduce the single-worker output exactly — any ordering dependence
// (a shared RNG, an append instead of an indexed store, aggregation in
// completion order) diverges here.
func TestSweepsDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		f    func(semicont.System, Options) (*Output, error)
	}{
		{"allocators", Allocators},
		{"fault-sweep", FaultSweep},
		{"admission-sweep", AdmissionSweep},
	}
	workers := []int{2, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial := runAt(t, 1, tc.f)
			for _, w := range workers {
				got := runAt(t, w, tc.f)
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("output diverged between workers=1 and workers=%d", w)
				}
			}
		})
	}
}

// TestSweepsDeterministicWithSharedPool reruns an experiment on one
// pool shared across invocations (the `-experiment all` shape, where
// every experiment's cells contend for the same semaphore) and demands
// the same output as a private pool — the pool must carry no per-run
// state.
func TestSweepsDeterministicWithSharedPool(t *testing.T) {
	t.Parallel()
	private := runAt(t, 2, FaultSweep)
	shared := sweep.New(2)
	opts := tinyOpts()
	opts.Trials = 2
	opts.Pool = shared
	if _, err := Allocators(semicont.SmallSystem(), opts); err != nil {
		t.Fatal(err)
	}
	out, err := FaultSweep(semicont.SmallSystem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(private, out) {
		t.Error("fault-sweep output diverged when the pool was shared with a prior experiment")
	}
}
