// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation (plus the extension and ablation
// studies listed in DESIGN.md). Each experiment is a pure function of
// its Options, returning figures (named series over a swept x-axis) and
// tables ready for rendering by internal/report or cmd/paperfigs.
package experiments

import (
	"semicont"
	"semicont/internal/report"
	"semicont/internal/stats"
	"semicont/internal/sweep"
)

// Options scale an experiment. The zero value is filled with practical
// defaults; pass PaperScale for the paper's full 1000 h × 5 trials.
type Options struct {
	// HorizonHours per trial. Default 100 (utilization estimates are
	// stable well before the paper's 1000; see EXPERIMENTS.md).
	HorizonHours float64
	// Trials per data point. Default 5, as in the paper.
	Trials int
	// Seed for the whole experiment; every (point, trial) derives its
	// own stream.
	Seed uint64
	// Thetas overrides the default θ sweep where applicable.
	Thetas []float64
	// Progress, when non-nil, receives one line per completed data
	// point — long sweeps report where they are.
	Progress func(format string, args ...any)
	// Audit attaches the invariant auditor to every scenario run (see
	// Scenario.Audit). The registry test runs the whole suite with it
	// on; any violation fails the experiment with a structured error.
	Audit bool
	// Pool, when non-nil, bounds the concurrency of the experiment's
	// flattened (cell × trial) job matrix; nil gets a private
	// GOMAXPROCS-sized pool per experiment. vodsim -experiment all
	// shares one pool across every experiment it runs. Results are
	// byte-identical at any worker count.
	Pool *sweep.Pool
}

func (o Options) withDefaults() Options {
	if o.HorizonHours == 0 {
		o.HorizonHours = 100
	}
	if o.Trials == 0 {
		o.Trials = semicont.PaperTrials
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Thetas == nil {
		o.Thetas = DefaultThetaSweep()
	}
	if o.Progress == nil {
		o.Progress = func(string, ...any) {}
	}
	return o
}

// PaperScale returns options matching the paper's experimental design:
// 1000-hour trials, five per point.
func PaperScale() Options {
	return Options{HorizonHours: semicont.PaperHorizonHours, Trials: semicont.PaperTrials}
}

// DefaultThetaSweep returns the θ grid of the paper's figures,
// −1.5 … 1 in steps of 0.25.
func DefaultThetaSweep() []float64 {
	var ts []float64
	for t := -1.5; t <= 1.0001; t += 0.25 {
		ts = append(ts, t)
	}
	return ts
}

// Figure is one plot: named curves over a shared x-axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []stats.Series
	Notes  string
}

// Output is everything one experiment produces.
type Output struct {
	ID      string
	Title   string
	Figures []Figure
	Tables  []*report.Table
}
