package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/stats"
)

// AdmissionSweep compares every registered admission selector on denial
// rate as offered load sweeps through saturation. All runs use the EFTF
// allocator, even placement, and 20% client staging with migration off,
// so the only degree of freedom is which feasible replica holder the
// controller assigns each arrival to — differences in the curves are
// pure placement quality. Utilization rides along as a second figure to
// show the selectors pay for their denial rates in opposite coin.
func AdmissionSweep(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	loads := []float64{0.7, 0.85, 1.0, 1.15, 1.3}
	names := semicont.SelectorNames()
	w := newSweeper(opts)
	cells := make(map[string][]cellRef, len(names))
	for _, name := range names {
		for _, load := range loads {
			sc := semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:        name,
					Placement:   semicont.EvenPlacement,
					StagingFrac: 0.2,
					ReceiveCap:  semicont.DefaultReceiveCap,
					Allocator:   semicont.AllocatorEFTF,
					Selector:    name,
				},
				Theta:        PriorStudiesTheta,
				HorizonHours: opts.HorizonHours,
				LoadFactor:   load,
				Seed:         opts.Seed,
				Audit:        opts.Audit,
			}
			label := fmt.Sprintf("admission-sweep %s at load=%g", name, load)
			cells[name] = append(cells[name], w.cell(label, sc))
		}
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var denial, util []stats.Series
	for _, name := range names {
		den := stats.Series{Name: name}
		ut := stats.Series{Name: name}
		for i, load := range loads {
			var dSmp, uSmp stats.Sample
			for _, r := range cells[name][i].results() {
				if r.Arrivals > 0 {
					dSmp.Add(float64(r.Rejected) / float64(r.Arrivals))
				}
				uSmp.Add(r.Utilization)
			}
			den.Points = append(den.Points, stats.FromSample(load, &dSmp))
			ut.Points = append(ut.Points, stats.FromSample(load, &uSmp))
			opts.Progress("  admission-sweep %s load=%g denial=%.4f util=%.4f",
				name, load, dSmp.Mean(), uSmp.Mean())
		}
		denial, util = append(denial, den), append(util, ut)
	}
	id := "admission-sweep-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Admission sweep: registered selectors vs offered load (%s system)", sys.Name),
		Figures: []Figure{
			{
				ID:     id + "-denial",
				Title:  fmt.Sprintf("Denial rate vs. offered load per admission selector, %s system (EFTF allocator, even placement, no DRM)", sys.Name),
				XLabel: "load-factor",
				YLabel: "denial-rate",
				Series: denial,
				Notes:  "Expected shape: all selectors converge below saturation; past load 1.0 first-fit concentrates streams on low-index servers and denies at least as often as least-loaded, which balances holders and tracks the feasible frontier. random-feasible lands between them.",
			},
			{
				ID:     id + "-util",
				Title:  fmt.Sprintf("Server utilization vs. offered load per admission selector, %s system", sys.Name),
				XLabel: "load-factor",
				YLabel: "utilization",
				Series: util,
				Notes:  "Expected shape: utilization rises toward the ceiling with load; selectors that deny more admit less work, so the denial ordering reappears inverted here.",
			},
		},
	}, nil
}
