package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/stats"
)

// Allocators sweeps every bandwidth-allocation policy registered with
// the engine through the named-policy seam (Policy.Allocator): the
// three minimum-flow workahead disciplines plus the intermittent-class
// heuristic, all under even placement and 20% staging. Unlike the
// eftf-small ablation, which toggles the legacy Spare field, this
// experiment drives the allocator registry itself — any policy added
// with core.RegisterAllocator joins the sweep without code changes
// here.
func Allocators(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	w := newSweeper(opts)
	var refs []seriesRef
	for _, name := range semicont.AllocatorNames() {
		alloc := name
		refs = append(refs, w.series(alloc, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:        alloc,
					Placement:   semicont.EvenPlacement,
					StagingFrac: 0.2,
					ReceiveCap:  semicont.DefaultReceiveCap,
					Allocator:   alloc,
				},
				Theta: theta,
			}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var utils []stats.Series
	for _, r := range refs {
		utils = append(utils, r.utilization())
	}
	id := "alloc-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Registered bandwidth allocators (%s system)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Utilization by allocator registry name, %s system (even placement, 20%% staging)", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: utils,
			Notes:  "Expected shape: minflow-eftf at or above minflow-lftf and minflow-evensplit everywhere (the Theorem); intermittent matches or slightly exceeds them on utilization while risking playback glitches.",
		}},
	}, nil
}
