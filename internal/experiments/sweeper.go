package experiments

import (
	"errors"
	"fmt"

	"semicont"
	"semicont/internal/stats"
	"semicont/internal/sweep"
)

// sweeper flattens one experiment's full (cell × trial) matrix onto a
// single worker pool. Experiments submit every scenario up front
// (cell/series), then wait once, then materialize figures from the
// in-order results — so all trials of all cells drain the pool
// together instead of five trials at a time per data point.
//
// Determinism: results land in slots fixed at submission and are
// materialized in submission order; progress lines and error selection
// follow the same order the old serial loops produced. Output is
// byte-identical to the serial path at any worker count.
type sweeper struct {
	opts   Options
	grid   *sweep.Grid[*semicont.Result]
	labels []string // labels[cell] names the cell in errors
	cells  [][]*semicont.Result
	subErr error // first submission error, reported by wait
}

func newSweeper(opts Options) *sweeper {
	return &sweeper{opts: opts, grid: sweep.NewGrid[*semicont.Result](opts.Pool)}
}

// cellRef is a handle to one submitted cell; its results become
// available after wait.
type cellRef struct {
	w   *sweeper
	idx int
}

func (c cellRef) results() []*semicont.Result { return c.w.cells[c.idx] }

// cell submits one scenario's trials. label names the cell in error
// messages (the old per-point loops' "%s at x=%g" context).
func (w *sweeper) cell(label string, sc semicont.Scenario) cellRef {
	if w.subErr != nil {
		return cellRef{}
	}
	idx, err := semicont.SubmitTrials(w.grid, sc, w.opts.Trials)
	if err != nil {
		w.subErr = fmt.Errorf("experiments: %s: %w", label, err)
		return cellRef{}
	}
	w.labels = append(w.labels, label)
	return cellRef{w: w, idx: idx}
}

// rawCell submits a cell whose trials need custom seeding (Failover
// perturbs seeds its own way rather than via TrialScenario).
func (w *sweeper) rawCell(label string, trials int, run func(trial int) (*semicont.Result, error)) cellRef {
	if w.subErr != nil {
		return cellRef{}
	}
	idx := w.grid.Cell(trials, run)
	w.labels = append(w.labels, label)
	return cellRef{w: w, idx: idx}
}

// wait drains the grid. The first failure in (cell, trial) submission
// order comes back wrapped with its cell's label — the same error the
// serial loops would have stopped at.
func (w *sweeper) wait() error {
	if w.subErr != nil {
		return w.subErr
	}
	cells, err := w.grid.Wait()
	if err != nil {
		var ce *sweep.CellError
		if errors.As(err, &ce) {
			return fmt.Errorf("experiments: %s: %w", w.labels[ce.Cell], ce.Err)
		}
		return err
	}
	w.cells = cells
	return nil
}

// seriesRef is a handle to one submitted curve: a scenario family over
// an x grid, materializable under any per-result metric after wait.
type seriesRef struct {
	w     *sweeper
	name  string
	xs    []float64
	cells []cellRef
}

// series submits one curve's scenarios, applying the experiment-wide
// horizon, seed, and audit options exactly as the serial curve helper
// did.
func (w *sweeper) series(name string, xs []float64, mk func(x float64) semicont.Scenario) seriesRef {
	refs := make([]cellRef, len(xs))
	for i, x := range xs {
		sc := mk(x)
		sc.HorizonHours = w.opts.HorizonHours
		sc.Seed = w.opts.Seed
		sc.Audit = w.opts.Audit
		refs[i] = w.cell(fmt.Sprintf("%s at x=%g", name, x), sc)
	}
	return seriesRef{w: w, name: name, xs: xs, cells: refs}
}

// metric materializes the series under the given measure, one progress
// line per point. A series can be materialized under several metrics —
// the shared cells are run once (the serial path re-ran them per
// metric, with identical scenarios and therefore identical results).
func (s seriesRef) metric(metric func(*semicont.Result) float64) stats.Series {
	out := stats.Series{Name: s.name}
	for i, x := range s.xs {
		var sample stats.Sample
		for _, r := range s.cells[i].results() {
			sample.Add(metric(r))
		}
		out.Points = append(out.Points, stats.FromSample(x, &sample))
		s.w.opts.Progress("  %s x=%g value=%.4f ±%.4f", s.name, x, sample.Mean(), sample.CI95())
	}
	return out
}

// utilization materializes the paper's headline metric.
func (s seriesRef) utilization() stats.Series {
	return s.metric(func(r *semicont.Result) float64 { return r.Utilization })
}
