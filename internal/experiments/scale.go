package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/faults"
	"semicont/internal/stats"
)

// The `*-large` experiment family: hundreds of servers and 10^6–10^7
// requests per trial at the paper-default horizon, reported through the
// streaming metrics layer. The paper's evaluation stops at mean
// bandwidth utilization; the staging/DRM mechanisms, however, live or
// die on tail behavior — a burst EFTF absorbs shows up in wait/glitch
// percentiles, not means — so these experiments report p50/p95/p99 from
// the O(1)-memory quantile sketches instead of retaining per-request
// state.
const (
	// scaleServers sizes the family's cluster: 200 × 300 Mb/s servers
	// calibrate to ≈60,000 requests per simulated hour, so the default
	// 100-hour horizon is ~6×10^6 requests per trial.
	scaleServers = 200

	// scaleAuditSample is the snapshot-audit sampling rate for the
	// family. A full snapshot is linear in cluster size, so auditing
	// every event of a 200-server, 10^6-event run costs ~10^9 checks;
	// every 512th keeps audited large runs feasible while the always-on
	// stateful taps keep the auditor's models exact.
	scaleAuditSample = 512
)

// scaleScenario applies the family's common settings.
func scaleScenario(sc semicont.Scenario, opts Options) semicont.Scenario {
	sc.HorizonHours = opts.HorizonHours
	sc.Seed = opts.Seed
	sc.Audit = opts.Audit
	if sc.Audit {
		sc.AuditSample = scaleAuditSample
	}
	sc.Stats = true
	return sc
}

// distPoint condenses one cell's trials into a figure point at x: the
// mean/CI95 of the per-trial p50s (trial-to-trial spread of the
// median), with the trial-merged sketch's p50/p95/p99 attached as
// quantile columns.
func distPoint(x float64, trials []*semicont.Result, pick func(*semicont.DistStats) *stats.Sketch) stats.Point {
	var med stats.Sample
	merged := new(semicont.DistStats)
	for _, r := range trials {
		if r.Dist == nil {
			continue
		}
		med.Add(pick(r.Dist).Quantile(0.5))
		merged.Merge(r.Dist)
	}
	p := stats.FromSample(x, &med)
	q := pick(merged).Summary()
	p.Q = &q
	return p
}

// ScaleDist measures admission-delay distributions at cluster scale:
// wait and retry-sojourn quantiles as offered load sweeps through
// saturation on a 200-server cluster with the full P4-style policy plus
// a bounded admission retry queue. Denial rate rides along for context.
func ScaleDist(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	sys := semicont.ScaleSystem(scaleServers)
	loads := []float64{0.9, 1.0, 1.1}
	w := newSweeper(opts)
	cells := make([]cellRef, len(loads))
	for i, load := range loads {
		sc := scaleScenario(semicont.Scenario{
			System: sys,
			Policy: semicont.Policy{
				Name:        "scale-p4-retry",
				Placement:   semicont.EvenPlacement,
				StagingFrac: 0.2,
				ReceiveCap:  semicont.DefaultReceiveCap,
				Allocator:   semicont.AllocatorEFTF,
				Migration:   true,
				MaxHops:     semicont.UnlimitedHops,
				MaxChain:    1,
				RetryQueue:  true,
			},
			Theta:      PriorStudiesTheta,
			LoadFactor: load,
		}, opts)
		cells[i] = w.cell(fmt.Sprintf("scale-dist at load=%g", load), sc)
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	wait := stats.Series{Name: "wait"}
	sojourn := stats.Series{Name: "retry sojourn"}
	denial := stats.Series{Name: "denial"}
	for i, load := range loads {
		trials := cells[i].results()
		wait.Points = append(wait.Points, distPoint(load, trials,
			func(d *semicont.DistStats) *stats.Sketch { return &d.Wait }))
		sojourn.Points = append(sojourn.Points, distPoint(load, trials,
			func(d *semicont.DistStats) *stats.Sketch { return &d.RetrySojourn }))
		var den stats.Sample
		for _, r := range trials {
			if r.Arrivals > 0 {
				den.Add(float64(r.Rejected+r.Reneged) / float64(r.Arrivals))
			}
		}
		denial.Points = append(denial.Points, stats.FromSample(load, &den))
		opts.Progress("  scale-dist load=%g wait_p99=%.4f sojourn_p99=%.4f denial=%.4f",
			load, wait.Points[i].Q.P99, sojourn.Points[i].Q.P99, den.Mean())
	}
	return &Output{
		ID:    "scale-large",
		Title: fmt.Sprintf("Scale: admission-delay quantiles vs offered load (%d-server cluster)", scaleServers),
		Figures: []Figure{
			{
				ID:     "scale-large-delay",
				Title:  fmt.Sprintf("Admission wait and retry sojourn vs offered load, %d servers (mean-of-trial-medians ± CI95; p50/p95/p99 from trial-merged sketches)", scaleServers),
				XLabel: "offered-load",
				YLabel: "seconds",
				Series: []stats.Series{wait, sojourn},
				Notes:  "Expected shape: wait p50 stays 0 below saturation (immediate admissions dominate) while p95/p99 grow with load as the retry queue fills; sojourn quantiles bound the queueing delay by the retry patience.",
			},
			{
				ID:     "scale-large-denial",
				Title:  fmt.Sprintf("Denial rate (rejected + reneged per arrival) vs offered load, %d servers", scaleServers),
				XLabel: "offered-load",
				YLabel: "denial-rate",
				Series: []stats.Series{denial},
				Notes:  "Context for the delay quantiles: beyond saturation the queue saturates too and the excess load converts to denials.",
			},
		},
	}, nil
}

// ScaleFaults measures viewer-visible fault behavior at cluster scale:
// glitch, degraded-park, and per-stream migration quantiles as the
// per-server MTBF sweeps from frequent to rare failures under the full
// fault-tolerance stack (DRM rescue, retry queue, degraded playback).
func ScaleFaults(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	sys := semicont.ScaleSystem(scaleServers)
	mtbfs := []float64{4, 8, 16}
	w := newSweeper(opts)
	cells := make([]cellRef, len(mtbfs))
	for i, mtbf := range mtbfs {
		sc := scaleScenario(semicont.Scenario{
			System: sys,
			Policy: semicont.Policy{
				Name:             "scale-faulttol",
				Placement:        semicont.EvenPlacement,
				StagingFrac:      0.2,
				ReceiveCap:       semicont.DefaultReceiveCap,
				Allocator:        semicont.AllocatorEFTF,
				Migration:        true,
				MaxHops:          semicont.UnlimitedHops,
				MaxChain:         1,
				RetryQueue:       true,
				DegradedPlayback: true,
			},
			Theta:      PriorStudiesTheta,
			LoadFactor: 0.85,
			Faults:     faults.Config{MTBFHours: mtbf, MTTRHours: 0.5},
		}, opts)
		cells[i] = w.cell(fmt.Sprintf("scale-faults at mtbf=%g", mtbf), sc)
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	glitch := stats.Series{Name: "glitch"}
	park := stats.Series{Name: "park"}
	hops := stats.Series{Name: "migrations"}
	for i, mtbf := range mtbfs {
		trials := cells[i].results()
		glitch.Points = append(glitch.Points, distPoint(mtbf, trials,
			func(d *semicont.DistStats) *stats.Sketch { return &d.Glitch }))
		park.Points = append(park.Points, distPoint(mtbf, trials,
			func(d *semicont.DistStats) *stats.Sketch { return &d.Park }))
		hops.Points = append(hops.Points, distPoint(mtbf, trials,
			func(d *semicont.DistStats) *stats.Sketch { return &d.Migrations }))
		opts.Progress("  scale-faults mtbf=%g glitch_p99=%.4f park_p99=%.4f hops_p99=%.4f",
			mtbf, glitch.Points[i].Q.P99, park.Points[i].Q.P99, hops.Points[i].Q.P99)
	}
	return &Output{
		ID:    "faults-large",
		Title: fmt.Sprintf("Scale: fault-behavior quantiles vs MTBF (%d-server cluster, MTTR 0.5 h, load 0.85)", scaleServers),
		Figures: []Figure{
			{
				ID:     "faults-large-glitch",
				Title:  fmt.Sprintf("Glitch duration quantiles vs MTBF, %d servers", scaleServers),
				XLabel: "mtbf-hours",
				YLabel: "seconds",
				Series: []stats.Series{glitch, park},
				Notes:  "Expected shape: both fall as failures rarefy. Park p99 approaches the staging buffer's playback depth — a parked stream survives at most its buffered seconds.",
			},
			{
				ID:     "faults-large-migrations",
				Title:  fmt.Sprintf("Per-stream migration-count quantiles vs MTBF, %d servers", scaleServers),
				XLabel: "mtbf-hours",
				YLabel: "migrations-per-stream",
				Series: []stats.Series{hops},
				Notes:  "Expected shape: p50 stays 0 (most streams never move); the tail counts rescue chains under churn and shrinks as MTBF grows.",
			},
		},
	}, nil
}
