package experiments

import (
	"testing"

	"semicont"
	"semicont/internal/stats"
)

func TestEdgeSweepTiny(t *testing.T) {
	out, err := EdgeSweep(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("edge-sweep has %d figures, want egress + denial", len(out.Figures))
	}
	wantSeries := len(edgeThetas) * len(edgeWindows)
	for _, fig := range out.Figures {
		if len(fig.Series) != wantSeries {
			t.Fatalf("%s has %d series, want one per theta×window (%d)", fig.ID, len(fig.Series), wantSeries)
		}
		for _, s := range fig.Series {
			if len(s.Points) != len(edgeCacheMbs) {
				t.Errorf("%s/%s has %d points, want %d", fig.ID, s.Name, len(s.Points), len(edgeCacheMbs))
			}
		}
	}
	// Baseline egress must be positive and the largest cache must not
	// increase it on any series — the monotone direction holds even at
	// tiny scale.
	for _, s := range out.Figures[0].Series {
		first, last := s.Points[0].Mean, s.Points[len(s.Points)-1].Mean
		if first <= 0 {
			t.Errorf("%s: baseline egress %g", s.Name, first)
		}
		if last > first {
			t.Errorf("%s: egress grew with the cache (%g -> %g)", s.Name, first, last)
		}
	}
}

// TestEdgeSweepEgressReduction pins the experiment's headline claim: at
// fixed cluster capacity and θ = 0.271, fully caching 900-second
// prefixes cuts cluster egress at least 2× against the no-edge
// baseline, and the denial rate does not rise. Scaled down from the
// registry run but long enough for the effect to dominate noise.
func TestEdgeSweepEgressReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour edge sweep skipped in -short mode")
	}
	out, err := EdgeSweep(semicont.SmallSystem(), Options{HorizonHours: 8, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	find := func(fig Figure, name string) stats.Series {
		for _, s := range fig.Series {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("%s: no series %q", fig.ID, name)
		panic("unreachable")
	}
	name := "theta=0.271 unicast"
	eg := find(out.Figures[0], name)
	baseline := eg.Points[0].Mean
	largest := eg.Points[len(eg.Points)-1].Mean
	if largest <= 0 || baseline < 2*largest {
		t.Errorf("egress reduction %.2fx below 2x (baseline %g, largest cache %g)",
			baseline/largest, baseline, largest)
	}
	dn := find(out.Figures[1], name)
	if edge, noedge := dn.Points[len(dn.Points)-1].Mean, dn.Points[0].Mean; edge > noedge+1e-3 {
		t.Errorf("denial rose with the edge tier (%g -> %g)", noedge, edge)
	}
	// Batching must not exceed unicast egress at the same cache point —
	// joins only remove suffix streams.
	bt := find(out.Figures[0], "theta=0.271 batch=300s")
	if bt.Points[len(bt.Points)-1].Mean > largest+1e-6 {
		t.Errorf("batched egress %g above unicast %g at the largest cache",
			bt.Points[len(bt.Points)-1].Mean, largest)
	}
}
