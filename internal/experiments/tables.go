package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/report"
	"semicont/internal/units"
)

// TableFig3 renders the paper's Figure 3, the parameters of the two
// systems studied, as realized by this reproduction.
func TableFig3() *Output {
	small, large := semicont.SmallSystem(), semicont.LargeSystem()
	t := &report.Table{
		Title:   "Figure 3: parameters of the two video servers studied",
		Headers: []string{"parameter", "small", "large"},
	}
	t.AddRow("Number of Servers",
		fmt.Sprintf("%d", small.NumServers), fmt.Sprintf("%d", large.NumServers))
	t.AddRow("Bandwidth",
		fmt.Sprintf("%g Mb/s", small.ServerBandwidth), fmt.Sprintf("%g Mb/s", large.ServerBandwidth))
	t.AddRow("Video Length",
		lengthRange(small), lengthRange(large))
	t.AddRow("Number of Videos",
		fmt.Sprintf("%d", small.NumVideos), fmt.Sprintf("%d", large.NumVideos))
	t.AddRow("Average Copies Per Video",
		fmt.Sprintf("%g", small.AvgCopies), fmt.Sprintf("%g", large.AvgCopies))
	t.AddRow("Disk Capacity",
		gbString(small.DiskCapacity), gbString(large.DiskCapacity))
	t.AddRow("View Bandwidth",
		fmt.Sprintf("%g Mb/s", small.ViewRate), fmt.Sprintf("%g Mb/s", large.ViewRate))
	t.AddRow("SVBR",
		fmt.Sprintf("%.0f", small.SVBR()), fmt.Sprintf("%.0f", large.SVBR()))
	return &Output{ID: "t3", Title: "Figure 3 (parameter table)", Tables: []*report.Table{t}}
}

func lengthRange(s semicont.System) string {
	return fmt.Sprintf("%s - %s",
		units.Seconds(s.MinVideoLength), units.Seconds(s.MaxVideoLength))
}

// TableFig6 renders the paper's Figure 6, the policy matrix P1–P8.
func TableFig6() *Output {
	t := &report.Table{
		Title:   "Figure 6: policies evaluated",
		Headers: []string{"policy", "allocation", "migration", "client staging"},
	}
	for _, p := range semicont.PaperPolicies() {
		migr := "No Migr"
		if p.Migration {
			migr = "Migr"
		}
		t.AddRow(p.Name, p.Placement.String(), migr,
			fmt.Sprintf("%g%% Buffer", p.StagingFrac*100))
	}
	return &Output{ID: "t6", Title: "Figure 6 (policy table)", Tables: []*report.Table{t}}
}
