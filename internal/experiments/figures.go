package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/stats"
)

// Fig4 reproduces Figure 4, "the effect of dynamic video migration":
// even placement, no workahead staging, θ swept; curves for no
// migration, hops-per-request = 1, and unlimited hops (migration chain
// length is one throughout, as in the paper).
func Fig4(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	variants := []struct {
		name string
		pol  semicont.Policy
	}{
		{"no-migration", semicont.Policy{Name: "no-migration", Placement: semicont.EvenPlacement}},
		{"hops=1", semicont.Policy{Name: "hops=1", Placement: semicont.EvenPlacement, Migration: true, MaxHops: 1}},
		{"hops=unlimited", semicont.Policy{Name: "hops=unlimited", Placement: semicont.EvenPlacement, Migration: true, MaxHops: semicont.UnlimitedHops}},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(variants))
	for i, v := range variants {
		pol := v.pol
		refs[i] = w.series(v.name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "f4-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Figure 4 (%s system): effect of dynamic request migration", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Effect of DRM, %s system (even placement, no staging)", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: migration curves above no-migration; hops=1 within a point or two of unlimited; all curves sag for theta < 0.",
		}},
	}, nil
}

// Fig5 reproduces Figure 5, "the effect of client staging": even
// placement, no migration, client receive bandwidth capped at 30 Mb/s,
// staging buffers of 0%, 2%, 20% and 100% of the average object size.
func Fig5(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	fracs := []float64{0, 0.02, 0.2, 1.0}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(fracs))
	for i, f := range fracs {
		frac := f
		name := fmt.Sprintf("%g%% buffer", frac*100)
		refs[i] = w.series(name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:        name,
					Placement:   semicont.EvenPlacement,
					StagingFrac: frac,
					ReceiveCap:  semicont.DefaultReceiveCap,
				},
				Theta: theta,
			}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "f5-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Figure 5 (%s system): effect of client staging", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Effect of client staging, %s system (even placement, no migration, 30 Mb/s receive cap)", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: 20% buffer nearly matches 100%; both clearly above 0%; the gain is larger on the small system (smaller SVBR).",
		}},
	}, nil
}

// Fig7 reproduces Figure 7: the eight policies of Figure 6 compared
// over the θ sweep, with 20% client buffers wherever staging is on.
func Fig7(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	w := newSweeper(opts)
	var refs []seriesRef
	for _, p := range semicont.PaperPolicies() {
		pol := p
		refs = append(refs, w.series(pol.Name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "f7-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Figure 7 (%s system): policies P1-P8", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Adaptive placement vs. migration vs. staging, %s system", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: P4 comparable to P8 and both on top for theta in [0,1]; for strongly negative theta the predictive policies (P5-P8) dominate - placement is then the binding factor.",
		}},
	}, nil
}
