package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/stats"
)

// Edge-sweep grid. The prefix length (900 s × 3 Mb/s = 2700 Mb) covers
// 10–30-minute titles only partially, so both mechanisms stay live
// across the sweep: short titles are served entirely from the edge
// while long ones still need a cluster suffix stream that batch-prefix
// joins can share. The cache grid runs from nothing to every prefix
// cached (the small catalog's prefixes total ≈ 259 000 Mb).
const edgePrefixSec = 900

var (
	edgeCacheMbs = []float64{0, 32000, 96000, 260000}
	edgeWindows  = []float64{0, 300}
	edgeThetas   = []float64{-0.5, PriorStudiesTheta, 1}
)

// EdgeSweep measures what the edge/proxy tier buys at fixed cluster
// capacity: cluster egress and denial rate versus prefix-cache size,
// across Zipf skew and batching window. Every cell offers the same
// calibrated load (offered = capacity), so any egress the edge absorbs
// turns directly into admission headroom — the headline claim is that
// a modest prefix cache cuts cluster egress multiplicatively on hot
// titles and converts the savings into a lower denial rate. Cache size
// 0 is the shared no-edge baseline (one cell per θ; the window does
// not apply without the edge tier).
func EdgeSweep(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	w := newSweeper(opts)
	base := make(map[float64]cellRef, len(edgeThetas))
	cells := make(map[[2]float64][]cellRef, len(edgeThetas)*len(edgeWindows))
	for _, theta := range edgeThetas {
		pol := semicont.Policy{
			Name:        "edge",
			Placement:   semicont.EvenPlacement,
			StagingFrac: 0.2,
			Migration:   true,
		}
		sc := semicont.Scenario{
			System:       sys,
			Policy:       pol,
			Theta:        theta,
			HorizonHours: opts.HorizonHours,
			Seed:         opts.Seed,
			Audit:        opts.Audit,
		}
		base[theta] = w.cell(fmt.Sprintf("edge-sweep baseline at theta=%g", theta), sc)
		for _, window := range edgeWindows {
			for _, cacheMb := range edgeCacheMbs[1:] {
				esc := sc
				esc.Policy.EdgeNodes = 2
				esc.Policy.EdgePrefixSec = edgePrefixSec
				esc.Policy.EdgeCacheMb = cacheMb
				if window > 0 {
					esc.Policy.BatchPolicy = semicont.BatchPolicyBatchPrefix
					esc.Policy.BatchWindowSec = window
				}
				label := fmt.Sprintf("edge-sweep theta=%g window=%g cache=%g", theta, window, cacheMb)
				key := [2]float64{theta, window}
				cells[key] = append(cells[key], w.cell(label, esc))
			}
		}
	}
	if err := w.wait(); err != nil {
		return nil, err
	}

	egress := func(r *semicont.Result) float64 {
		if r.EdgeHits > 0 {
			return r.ClusterEgressMb
		}
		return r.DeliveredMb // no-edge baseline: everything is cluster egress
	}
	denial := func(r *semicont.Result) float64 {
		if r.Arrivals == 0 {
			return 0
		}
		return float64(r.Rejected+r.Reneged) / float64(r.Arrivals)
	}
	var egressSeries, denialSeries []stats.Series
	for _, theta := range edgeThetas {
		for _, window := range edgeWindows {
			name := fmt.Sprintf("theta=%g unicast", theta)
			if window > 0 {
				name = fmt.Sprintf("theta=%g batch=%gs", theta, window)
			}
			eg := stats.Series{Name: name}
			dn := stats.Series{Name: name}
			refs := append([]cellRef{base[theta]}, cells[[2]float64{theta, window}]...)
			for i, cacheMb := range edgeCacheMbs {
				var eSmp, dSmp stats.Sample
				for _, r := range refs[i].results() {
					eSmp.Add(egress(r))
					dSmp.Add(denial(r))
				}
				eg.Points = append(eg.Points, stats.FromSample(cacheMb, &eSmp))
				dn.Points = append(dn.Points, stats.FromSample(cacheMb, &dSmp))
				opts.Progress("  edge-sweep %s cache=%g egress=%.0f denial=%.4f",
					name, cacheMb, eSmp.Mean(), dSmp.Mean())
			}
			egressSeries = append(egressSeries, eg)
			denialSeries = append(denialSeries, dn)
		}
	}
	id := "edge-sweep-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Edge sweep: prefix caching and multicast batching (%s system)", sys.Name),
		Figures: []Figure{
			{
				ID:     id + "-egress",
				Title:  fmt.Sprintf("Cluster egress (Mb) vs. prefix-cache size, %s system (prefix %d s, offered = capacity)", sys.Name, edgePrefixSec),
				XLabel: "cache-mb",
				YLabel: "cluster-egress-mb",
				Series: egressSeries,
				Notes:  "Expected shape: monotone fall as the cache grows; steeper under skew (small θ concentrates demand on the cached head) and steeper still with batching, which merges concurrent suffix streams the prefix playback time already overlaps.",
			},
			{
				ID:     id + "-denial",
				Title:  fmt.Sprintf("Denial rate (rejected + reneged per arrival) vs. prefix-cache size, %s system", sys.Name),
				XLabel: "cache-mb",
				YLabel: "denial-rate",
				Series: denialSeries,
				Notes:  "Expected shape: falls with cache size at fixed capacity — every Mb the edge serves is admission headroom for the suffixes the cluster still carries.",
			},
		},
	}, nil
}
