package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"semicont/internal/sweep"
)

// scaleOpts shrinks the `*-large` family to test size: half a simulated
// hour on the 200-server cluster is ~27,000 requests per cell-trial —
// enough to populate every sketch channel without the multi-minute
// full-scale horizon.
func scaleOpts(workers int) Options {
	return Options{
		HorizonHours: 0.5,
		Trials:       2,
		Seed:         1,
		Pool:         sweep.New(workers),
	}
}

// TestScaleSweepsDeterministicAcrossWorkers extends the worker-count
// determinism contract to the quantile-reporting experiments: ScaleDist
// and ScaleFaults carry *DistStats sketches through the sweeper and the
// trial-merge in distPoint, and the merged quantiles (reached through
// Point.Q pointers, which DeepEqual follows) must be byte-identical no
// matter how many workers drain the job list.
func TestScaleSweepsDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name string
		f    func(Options) (*Output, error)
	}{
		{"scale-dist", ScaleDist},
		{"scale-faults", ScaleFaults},
	}
	workers := []int{2, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial, err := tc.f(scaleOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range serial.Figures[0].Series {
				for _, p := range s.Points {
					if p.Q == nil {
						t.Fatalf("series %q point x=%g has no quantiles", s.Name, p.X)
					}
				}
			}
			for _, w := range workers {
				got, err := tc.f(scaleOpts(w))
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("output diverged between workers=1 and workers=%d", w)
				}
			}
		})
	}
}
