package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/stats"
)

// Intermittent evaluates the scheduling class the paper sets aside in
// Section 3.3: streams with full buffers may be paused entirely so the
// server over-subscribes its minimum-flow slots. The figure pairs the
// acceptance gain with its cost — playback glitches per thousand
// accepted streams — quantifying why the paper restricts itself to
// minimum-flow algorithms.
func Intermittent(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	variants := []struct {
		name string
		pol  semicont.Policy
	}{
		{"minimum-flow", semicont.Policy{
			Name: "minimum-flow", Placement: semicont.EvenPlacement,
			StagingFrac: 0.2, ReceiveCap: semicont.DefaultReceiveCap,
		}},
		{"intermittent guard=60s", semicont.Policy{
			Name: "int-60", Placement: semicont.EvenPlacement,
			StagingFrac: 0.2, ReceiveCap: semicont.DefaultReceiveCap,
			Intermittent: true, ResumeGuard: 60,
		}},
		{"intermittent guard=10s", semicont.Policy{
			Name: "int-10", Placement: semicont.EvenPlacement,
			StagingFrac: 0.2, ReceiveCap: semicont.DefaultReceiveCap,
			Intermittent: true, ResumeGuard: 10,
		}},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(variants))
	for i, v := range variants {
		pol := v.pol
		refs[i] = w.series(v.name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var utils, glitches []stats.Series
	for _, r := range refs {
		utils = append(utils, r.utilization())
		glitches = append(glitches, r.metric(func(r *semicont.Result) float64 {
			if r.Accepted == 0 {
				return 0
			}
			return 1000 * float64(r.GlitchedStreams) / float64(r.Accepted)
		}))
	}
	id := "intermittent-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Intermittent vs. minimum-flow scheduling (%s system, Section 3.3 ablation)", sys.Name),
		Figures: []Figure{
			{
				ID:     id,
				Title:  fmt.Sprintf("Utilization: minimum-flow vs. intermittent, %s system (even placement, 20%% staging)", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "utilization",
				Series: utils,
				Notes:  "Expected shape: intermittent matches or slightly exceeds minimum-flow utilization; aggressive guards gain a little more.",
			},
			{
				ID:     id + "-glitches",
				Title:  fmt.Sprintf("Playback glitches per 1000 accepted streams, %s system", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "glitches-per-1000",
				Series: glitches,
				Notes:  "Expected shape: minimum-flow is glitch-free by construction; the intermittent heuristic trades its admission gain for interrupted playback - the paper's reason for restricting to minimum-flow.",
			},
		},
	}, nil
}

// Replication compares dynamic request migration against dynamic
// replication — the "more resource intensive solution" of Section 3.1 —
// and their combination, under even placement. Replication attacks the
// placement problem itself (it creates new copies of hot videos), so it
// should repair the negative-θ sag that DRM alone cannot; the cost is
// the copy bandwidth it burns.
func Replication(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	variants := []semicont.Policy{
		{Name: "neither", Placement: semicont.EvenPlacement},
		{Name: "DRM", Placement: semicont.EvenPlacement, Migration: true},
		{Name: "replication", Placement: semicont.EvenPlacement, Replicate: true},
		{Name: "DRM+replication", Placement: semicont.EvenPlacement, Migration: true, Replicate: true},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(variants))
	for i, p := range variants {
		pol := p
		refs[i] = w.series(pol.Name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var utils, copies []stats.Series
	for i, p := range variants {
		utils = append(utils, refs[i].utilization())
		if p.Replicate {
			copies = append(copies, refs[i].metric(func(r *semicont.Result) float64 {
				return float64(r.ReplicationsCompleted)
			}))
		}
	}
	id := "replication-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("DRM vs. dynamic replication (%s system, Section 3.1 alternative)", sys.Name),
		Figures: []Figure{
			{
				ID:     id,
				Title:  fmt.Sprintf("Utilization: DRM vs. dynamic replication, %s system (even placement, no staging)", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "utilization",
				Series: utils,
				Notes:  "Expected shape: replication repairs the negative-theta sag that even placement suffers and DRM cannot fix (it creates the missing copies of hot videos); DRM still adds its burst-absorption benefit on top.",
			},
			{
				ID:     id + "-copies",
				Title:  fmt.Sprintf("Dynamic replicas created, %s system", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "replicas",
				Series: copies,
				Notes:  "Expected shape: copy activity concentrates where demand is skewed - the controller replicates exactly the hot videos the even placement under-provisioned.",
			},
		},
	}, nil
}

// ClientMix studies heterogeneous client populations (the paper's
// future-work note that "client resource capabilities can vary"): a
// fraction of clients are thin (no staging disk) while the rest carry
// the standard 20% buffer, under the full P4 mechanisms.
func ClientMix(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	thinFracs := []float64{0, 0.25, 0.5, 0.75, 1}
	mk := func(thin float64) semicont.Scenario {
		return semicont.Scenario{
			System: sys,
			Policy: semicont.Policy{
				Name:      fmt.Sprintf("thin-%g", thin),
				Placement: semicont.EvenPlacement,
				Migration: true,
				ClientMix: []semicont.ClientClass{
					{Weight: 1 - thin, StagingFrac: 0.2, ReceiveCap: semicont.DefaultReceiveCap},
					{Weight: thin, StagingFrac: 0, ReceiveCap: semicont.DefaultReceiveCap},
				},
			},
			Theta: PriorStudiesTheta,
		}
	}
	w := newSweeper(opts)
	ref := w.series("utilization", thinFracs, mk)
	if err := w.wait(); err != nil {
		return nil, err
	}
	s := ref.utilization()
	id := "clientmix-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Heterogeneous client capabilities (%s system)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs. fraction of disk-less clients, %s system (even placement + DRM, theta = 0.271)", sys.Name),
			XLabel: "thin-client-fraction",
			YLabel: "utilization",
			Series: []stats.Series{s},
			Notes:  "Expected shape: utilization degrades smoothly from the fully staged level to the no-staging level as disk-less clients take over - partial deployments of client disks still pay off proportionally.",
		}},
	}, nil
}

// Interactivity measures what viewer pauses do to the paper's
// mechanisms (Section 6 future work; the EFTF optimality theorem
// assumes "the videos are not paused"). Every viewer pauses once with
// the given probability for 5 minutes on average; utilization is
// plotted against the pause probability for the no-staging baseline
// and the full P4 mechanisms.
func Interactivity(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	probs := []float64{0, 0.25, 0.5, 0.75, 1}
	variants := []semicont.Policy{
		{Name: "P1 (no staging)", Placement: semicont.EvenPlacement},
		{Name: "P2 (20% staging)", Placement: semicont.EvenPlacement, StagingFrac: 0.2},
		{Name: "P4 (staging+DRM)", Placement: semicont.EvenPlacement, Migration: true, StagingFrac: 0.2},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(variants))
	for i, v := range variants {
		pol := v
		refs[i] = w.series(pol.Name, probs, func(prob float64) semicont.Scenario {
			p := pol
			p.PauseProb = prob
			p.MinPauseSec = 60
			p.MaxPauseSec = 540 // mean 5 minutes
			return semicont.Scenario{System: sys, Policy: p, Theta: PriorStudiesTheta}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "interactive-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Viewer interactivity (%s system, Section 6 future work)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs. pause probability, %s system (pauses of 1-9 min, theta = 0.271)", sys.Name),
			XLabel: "pause-probability",
			YLabel: "utilization",
			Series: []stats.Series{series[0], series[1], series[2]},
			Notes:  "Expected shape: pauses lengthen slot occupancy (a capped buffer halts transmission while the viewer is away), so utilization erodes slightly with pause probability; staging+DRM keep their full advantage over the baseline throughout.",
		}},
	}, nil
}

// ClusterAnalysis compares the simulator against the closed-form
// cluster model: the no-sharing / complete-sharing Erlang bracket and
// the reduced-load fixed point, across the θ sweep under continuous
// transmission (P1). It extends the paper's single-server Erlang-B
// validation to the full cluster and quantifies where the independence
// approximation breaks down (strong skew → correlated holders).
func ClusterAnalysis(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	w := newSweeper(opts)
	simRef := w.series("simulated-P1", opts.Thetas, func(theta float64) semicont.Scenario {
		return semicont.Scenario{System: sys, Policy: semicont.PolicyP1(), Theta: theta}
	})
	if err := w.wait(); err != nil {
		return nil, err
	}
	sim := simRef.utilization()
	lower := stats.Series{Name: "no-sharing"}
	fixed := stats.Series{Name: "fixed-point"}
	upper := stats.Series{Name: "complete-sharing"}
	for _, theta := range opts.Thetas {
		a, err := semicont.Analyze(semicont.Scenario{
			System: sys, Policy: semicont.PolicyP1(), Theta: theta,
			HorizonHours: opts.HorizonHours, Seed: opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		lower.Points = append(lower.Points, stats.Point{X: theta, Mean: a.NoSharing, N: 1})
		fixed.Points = append(fixed.Points, stats.Point{X: theta, Mean: a.FixedPoint, N: 1})
		upper.Points = append(upper.Points, stats.Point{X: theta, Mean: a.CompleteSharing, N: 1})
	}
	id := "analytic-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Cluster-level analytical model vs. simulation (%s system)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Simulated P1 utilization vs. Erlang bracket and fixed point, %s system", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: []stats.Series{lower, sim, fixed, upper},
			Notes:  "Expected shape: the simulation lies between the no-sharing and complete-sharing Erlang estimates at every theta; the reduced-load fixed point tracks it loosely and grows optimistic under skew, where holder occupancies correlate.",
		}},
	}, nil
}

// SpareDisciplines is the ablation of the EFTF rule itself: the paper's
// Theorem says Earliest Finishing Time First is optimal among
// minimum-flow algorithms (with unbounded client receive bandwidth);
// this measures EFTF against its adversarial opposite (LFTF) and a
// naive even split, both with the paper's 30 Mb/s receive cap and
// without it.
func SpareDisciplines(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	caps := []float64{semicont.DefaultReceiveCap, -1}
	discs := []semicont.SpareKind{semicont.EFTFSpare, semicont.LFTFSpare, semicont.EvenSplitSpare}
	w := newSweeper(opts)
	refs := make(map[float64][]seriesRef, len(caps))
	for _, cap := range caps {
		for _, d := range discs {
			disc := d
			rc := cap
			refs[cap] = append(refs[cap], w.series(disc.String(), opts.Thetas, func(theta float64) semicont.Scenario {
				return semicont.Scenario{
					System: sys,
					Policy: semicont.Policy{
						Name:        disc.String(),
						Placement:   semicont.EvenPlacement,
						StagingFrac: 0.2,
						ReceiveCap:  rc,
						Spare:       disc,
					},
					Theta: theta,
				}
			}))
		}
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var figures []Figure
	for _, cap := range caps {
		capLabel := "30 Mb/s receive cap"
		if cap < 0 {
			capLabel = "unbounded receive"
		}
		var series []stats.Series
		for _, r := range refs[cap] {
			series = append(series, r.utilization())
		}
		suffix := "capped"
		if cap < 0 {
			suffix = "uncapped"
		}
		figures = append(figures, Figure{
			ID:     "eftf-" + sys.Name + "-" + suffix,
			Title:  fmt.Sprintf("Workahead discipline ablation, %s system (%s)", sys.Name, capLabel),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: EFTF at or above both alternatives everywhere (the Theorem's claim); the gap narrows under the receive cap, which limits how much any discipline can concentrate bandwidth.",
		})
	}
	return &Output{
		ID:      "eftf-" + sys.Name,
		Title:   fmt.Sprintf("EFTF vs. alternative workahead disciplines (%s system, Theorem ablation)", sys.Name),
		Figures: figures,
	}, nil
}

// Patching measures multicast stream-sharing (related-work technique;
// "patching … stream merging" in Section 6's future work) against the
// unicast baseline. Patching thrives exactly where placement fails —
// skewed demand means overlapping requests for the same hot title — so
// it is the third answer (after DRM and replication) to the
// negative-θ problem, and it needs precisely the client staging buffer
// this paper introduces.
func Patching(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	// 20% staging buffers hold 240 s of playback, so windows above that
	// clamp to the buffer; 60 s and 240 s probe below and at the bound.
	// Offered load is 150% of capacity: at the paper's calibrated 100%
	// patching simply absorbs everything (shared streams cut effective
	// load by 24-70%), which saturates the acceptance metric.
	variants := []semicont.Policy{
		{Name: "unicast", Placement: semicont.EvenPlacement, StagingFrac: 0.2},
		{Name: "patch window 1min", Placement: semicont.EvenPlacement, StagingFrac: 0.2, PatchWindowSec: 60},
		{Name: "patch window 4min", Placement: semicont.EvenPlacement, StagingFrac: 0.2, PatchWindowSec: 240},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(variants))
	for i, v := range variants {
		pol := v
		refs[i] = w.series(pol.Name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta, LoadFactor: 1.5}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var accept, shared []stats.Series
	for i, v := range variants {
		accept = append(accept, refs[i].metric(func(r *semicont.Result) float64 {
			if r.Arrivals == 0 {
				return 0
			}
			return float64(r.Accepted) / float64(r.Arrivals)
		}))
		if v.PatchWindowSec > 0 {
			shared = append(shared, refs[i].metric(func(r *semicont.Result) float64 {
				total := r.AcceptedMb + r.SharedMb
				if total == 0 {
					return 0
				}
				return r.SharedMb / total
			}))
		}
	}
	id := "patching-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Multicast patching (%s system, Section 6 future work)", sys.Name),
		Figures: []Figure{
			{
				ID:     id,
				Title:  fmt.Sprintf("Acceptance ratio with patching, %s system (even placement, 20%% staging)", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "acceptance-ratio",
				Series: accept,
				Notes:  "Expected shape: patching lifts acceptance most under skewed demand (hot titles overlap constantly) - it attacks the same negative-theta regime as replication, but with multicast instead of storage; wider windows help more. Acceptance ratio is the metric because shared bytes do not consume server bandwidth, so 'utilization' understates service. Offered load is 1.5x capacity.",
			},
			{
				ID:     id + "-shared",
				Title:  fmt.Sprintf("Fraction of delivered data carried by shared streams, %s system", sys.Name),
				XLabel: "zipf-theta",
				YLabel: "shared-fraction",
				Series: shared,
				Notes:  "Expected shape: the shared fraction grows as demand concentrates and with the window size - the bandwidth multicast saves.",
			},
		},
	}, nil
}
