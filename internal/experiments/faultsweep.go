package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/faults"
	"semicont/internal/stats"
)

// FaultSweep measures graceful degradation under stochastic server
// churn: every registered bandwidth allocator runs the full
// fault-tolerance stack (DRM rescue, bounded admission retry queue,
// degraded-mode playback) while the per-server MTBF sweeps from
// frequent to rare failures at a fixed one-hour MTTR. Three views of
// the same runs come out: the denial rate (rejections plus reneged
// retries over arrivals), the drop rate (streams killed mid-play per
// admission), and the glitch rate (playback interruptions per
// admission — degraded-mode buffer dry-outs plus intermittent-class
// glitches). Load is held at 0.85 so rescues and retries have
// headroom, matching the failover experiment.
func FaultSweep(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	mtbfs := []float64{5, 10, 20, 40, 80}
	names := semicont.AllocatorNames()
	w := newSweeper(opts)
	cells := make(map[string][]cellRef, len(names))
	for _, name := range names {
		for _, mtbf := range mtbfs {
			sc := semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:             name,
					Placement:        semicont.EvenPlacement,
					StagingFrac:      0.2,
					ReceiveCap:       semicont.DefaultReceiveCap,
					Allocator:        name,
					Migration:        true,
					MaxHops:          semicont.UnlimitedHops,
					MaxChain:         1,
					RetryQueue:       true,
					DegradedPlayback: true,
				},
				Theta:        PriorStudiesTheta,
				HorizonHours: opts.HorizonHours,
				LoadFactor:   0.85,
				Seed:         opts.Seed,
				Faults:       faults.Config{MTBFHours: mtbf, MTTRHours: 1},
				Audit:        opts.Audit,
			}
			label := fmt.Sprintf("fault-sweep %s at mtbf=%g", name, mtbf)
			cells[name] = append(cells[name], w.cell(label, sc))
		}
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var denial, drops, glitches []stats.Series
	for _, name := range names {
		den := stats.Series{Name: name}
		drp := stats.Series{Name: name}
		gl := stats.Series{Name: name}
		for i, mtbf := range mtbfs {
			var dSmp, drSmp, gSmp stats.Sample
			for _, r := range cells[name][i].results() {
				if r.Arrivals > 0 {
					dSmp.Add(float64(r.Rejected+r.Reneged) / float64(r.Arrivals))
				}
				if r.Accepted > 0 {
					drSmp.Add(float64(r.DroppedStreams) / float64(r.Accepted))
					gSmp.Add(float64(r.DegradedGlitches+r.GlitchedStreams) / float64(r.Accepted))
				}
			}
			den.Points = append(den.Points, stats.FromSample(mtbf, &dSmp))
			drp.Points = append(drp.Points, stats.FromSample(mtbf, &drSmp))
			gl.Points = append(gl.Points, stats.FromSample(mtbf, &gSmp))
			opts.Progress("  fault-sweep %s mtbf=%g denial=%.4f drop=%.4f glitch=%.4f",
				name, mtbf, dSmp.Mean(), drSmp.Mean(), gSmp.Mean())
		}
		denial, drops, glitches = append(denial, den), append(drops, drp), append(glitches, gl)
	}
	id := "fault-sweep-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Fault sweep: graceful degradation under server churn (%s system)", sys.Name),
		Figures: []Figure{
			{
				ID:     id + "-denial",
				Title:  fmt.Sprintf("Denial rate (rejected + reneged per arrival) vs. MTBF, %s system (MTTR 1 h, load 0.85)", sys.Name),
				XLabel: "mtbf-hours",
				YLabel: "denial-rate",
				Series: denial,
				Notes:  "Expected shape: monotone fall as failures rarefy; the retry queue converts transient outages into delayed admissions rather than outright rejections.",
			},
			{
				ID:     id + "-drop",
				Title:  fmt.Sprintf("Drop rate (streams killed mid-play per admission) vs. MTBF, %s system", sys.Name),
				XLabel: "mtbf-hours",
				YLabel: "drop-rate",
				Series: drops,
				Notes:  "Expected shape: falls with MTBF. Workahead disciplines park failed streams on buffered data and reconnect after recovery, so eftf sustains fewer drops than evensplit at equal MTBF.",
			},
			{
				ID:     id + "-glitch",
				Title:  fmt.Sprintf("Glitch rate (interruptions per admission) vs. MTBF, %s system", sys.Name),
				XLabel: "mtbf-hours",
				YLabel: "glitch-rate",
				Series: glitches,
				Notes:  "Expected shape: falls with MTBF. EFTF front-loads workahead into the emptiest buffers, so parked streams ride out longer outages than under even-split; intermittent adds its scheduling glitches on top.",
			},
		},
	}, nil
}
