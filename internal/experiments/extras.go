package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/analytic"
	"semicont/internal/hetero"
	"semicont/internal/report"
	"semicont/internal/stats"
	"semicont/internal/units"
)

// PriorStudiesTheta is the Zipf skew used by earlier video-server
// studies the paper cites (Dan & Sitaram): θ ≈ 0.271.
const PriorStudiesTheta = 0.271

// StagingSweep quantifies the headline claim of the abstract: "a client
// buffer size (staging degree) of 20 percent (of object size) is near
// optimal for most objects". It sweeps the staging fraction on both
// systems at θ = 0.271 with even placement and no migration.
func StagingSweep(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	fracs := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}
	w := newSweeper(opts)
	var refs []seriesRef
	for _, sys := range []semicont.System{semicont.SmallSystem(), semicont.LargeSystem()} {
		system := sys
		refs = append(refs, w.series(system.Name, fracs, func(frac float64) semicont.Scenario {
			return semicont.Scenario{
				System: system,
				Policy: semicont.Policy{
					Name:        fmt.Sprintf("stage-%g", frac),
					Placement:   semicont.EvenPlacement,
					StagingFrac: frac,
					ReceiveCap:  semicont.DefaultReceiveCap,
				},
				Theta: PriorStudiesTheta,
			}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	return &Output{
		ID:    "stage",
		Title: "Staging-degree sweep (abstract's 20% claim)",
		Figures: []Figure{{
			ID:     "stage",
			Title:  "Utilization vs. staging buffer fraction (theta = 0.271, even placement, no migration)",
			XLabel: "buffer-fraction",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: steep rise up to ~0.2, then a plateau - 20% of the average object size captures nearly the whole staging benefit.",
		}},
	}, nil
}

// SVBR validates the simulator against the Erlang-B analytical model of
// Section 3.2 / the full version [5]: a single server with k = SVBR
// minimum-flow slots under calibrated load is an M/G/k/k loss system,
// so expected utilization is 1 − B(k, k).
func SVBR(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	ratios := []float64{5, 10, 20, 33, 50, 100, 200}
	w := newSweeper(opts)
	simRef := w.series("simulated", ratios, func(svbr float64) semicont.Scenario {
		return semicont.Scenario{
			System: semicont.SingleServer(int(svbr)),
			Policy: semicont.Policy{Name: "plain", Placement: semicont.EvenPlacement},
			Theta:  1, // uniform demand; irrelevant with one server
		}
	})
	if err := w.wait(); err != nil {
		return nil, err
	}
	sim := simRef.utilization()
	ana := stats.Series{Name: "erlang-b"}
	for _, k := range ratios {
		u, err := analytic.ExpectedUtilization(int(k), 1)
		if err != nil {
			return nil, err
		}
		ana.Points = append(ana.Points, stats.Point{X: k, Mean: u, N: 1})
	}
	return &Output{
		ID:    "svbr",
		Title: "Server-to-view bandwidth ratio: simulation vs. Erlang-B analysis",
		Figures: []Figure{{
			ID:     "svbr",
			Title:  "Single-server utilization vs. SVBR (offered load = capacity)",
			XLabel: "svbr",
			YLabel: "utilization",
			Series: []stats.Series{sim, ana},
			Notes:  "Expected shape: monotone rise toward 1 with growing SVBR; simulated and analytic curves agree closely, validating the simulator (as the paper reports of its own).",
		}},
	}, nil
}

// Heterogeneity reproduces the Section 4.6 study: cluster classes of 5,
// 10 and 20 servers, each homogeneous, bandwidth-heterogeneous or
// storage-heterogeneous with totals preserved (spread level 0.5),
// running policy P4 at θ = 0.271.
func Heterogeneity(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	sizes := []float64{5, 10, 20}
	const level = 0.5
	w := newSweeper(opts)
	var refs []seriesRef
	for _, prof := range []hetero.Profile{hetero.Homogeneous, hetero.BandwidthHetero, hetero.StorageHetero} {
		profile := prof
		refs = append(refs, w.series(profile.String(), sizes, func(n float64) semicont.Scenario {
			sys := semicont.SmallSystem()
			sys.Name = fmt.Sprintf("het-%s-%d", profile, int(n))
			sys.NumServers = int(n)
			bw, st, err := hetero.Cluster(profile, int(n), sys.ServerBandwidth, sys.DiskCapacity, level)
			if err != nil {
				panic(err) // parameters are internal constants; cannot fail
			}
			sys.Bandwidths, sys.Capacities = bw, st
			return semicont.Scenario{System: sys, Policy: semicont.PolicyP4(), Theta: PriorStudiesTheta}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	return &Output{
		ID:    "het",
		Title: "Heterogeneity study (Section 4.6)",
		Figures: []Figure{{
			ID:     "het",
			Title:  "Utilization vs. cluster size under resource heterogeneity (spread 0.5, policy P4, theta = 0.271)",
			XLabel: "servers",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: heterogeneity hurts the small cluster most; larger clusters absorb it. Storage heterogeneity is close to statistical noise, bandwidth heterogeneity is the visible effect.",
		}},
	}, nil
}

// PartialPredictive reproduces the Section 4.4 observation: a mildly
// skewed allocation (a few extra copies of the most popular videos)
// plus DRM and staging approaches the perfect predictive scheme even
// under strongly skewed demand.
func PartialPredictive(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	thetas := opts.Thetas
	if len(thetas) == len(DefaultThetaSweep()) {
		thetas = []float64{-1.5, -1.0, -0.5, 0, 0.5} // skew is where the action is
	}
	policies := []semicont.Policy{
		{Name: "even", Placement: semicont.EvenPlacement, Migration: true, StagingFrac: 0.2},
		{Name: "partial-predictive", Placement: semicont.PartialPredictivePlacement, Migration: true, StagingFrac: 0.2},
		{Name: "predictive", Placement: semicont.PredictivePlacement, Migration: true, StagingFrac: 0.2},
	}
	w := newSweeper(opts)
	refs := make([]seriesRef, len(policies))
	for i, p := range policies {
		pol := p
		refs[i] = w.series(pol.Name, thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{System: sys, Policy: pol, Theta: theta}
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "partial-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Partial predictive placement (%s system, Section 4.4)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Even vs. partial vs. perfect predictive placement, %s system (DRM + 20%% staging)", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: partial-predictive recovers most of the gap between even and perfect predictive at negative theta - identifying the popular videos suffices.",
		}},
	}, nil
}

// ChainLength is the ablation for the migration chain bound: the paper
// keeps chains at one migration per arrival and claims near-maximum
// utilization; longer chains should add little.
func ChainLength(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	w := newSweeper(opts)
	var refs []seriesRef
	for _, chain := range []int{1, 2, 3} {
		c := chain
		name := fmt.Sprintf("chain=%d", c)
		refs = append(refs, w.series(name, opts.Thetas, func(theta float64) semicont.Scenario {
			return semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:      name,
					Placement: semicont.EvenPlacement,
					Migration: true,
					MaxHops:   semicont.UnlimitedHops,
					MaxChain:  c,
				},
				Theta: theta,
			}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "chain-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Migration chain-length ablation (%s system)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs. theta for migration chain bounds, %s system (even placement, no staging)", sys.Name),
			XLabel: "zipf-theta",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: chains longer than one add at most marginal utilization - supporting the paper's choice of chain length one.",
		}},
	}, nil
}

// SwitchDelay is the ablation for non-instantaneous stream switching:
// a migration blacks the stream out for the delay, which the client
// buffer must cover; with small buffers long switches suppress DRM.
func SwitchDelay(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	delays := []float64{0, 1, 5, 15, 60}
	w := newSweeper(opts)
	var refs []seriesRef
	for _, frac := range []float64{0.005, 0.02, 0.2} {
		f := frac
		name := fmt.Sprintf("%g%% buffer", f*100)
		refs = append(refs, w.series(name, delays, func(delay float64) semicont.Scenario {
			return semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:        name,
					Placement:   semicont.EvenPlacement,
					Migration:   true,
					StagingFrac: f,
					ReceiveCap:  semicont.DefaultReceiveCap,
					SwitchDelay: delay,
				},
				Theta: PriorStudiesTheta,
			}
		}))
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	var series []stats.Series
	for _, r := range refs {
		series = append(series, r.utilization())
	}
	id := "switch-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Switch-delay ablation (%s system)", sys.Name),
		Figures: []Figure{{
			ID:     id,
			Title:  fmt.Sprintf("Utilization vs. migration switch delay, %s system (even placement + DRM, theta = 0.271)", sys.Name),
			XLabel: "switch-delay-s",
			YLabel: "utilization",
			Series: series,
			Notes:  "Expected shape: with generous buffers utilization is flat in the delay; with thin buffers long switches veto migrations and the DRM benefit evaporates - the paper's argument for why staging enables DRM.",
		}},
	}, nil
}

// Failover demonstrates the fault-tolerance use of DRM (Section 3.1):
// one server is killed mid-run; with migration most of its streams are
// rescued onto other replica holders, without it every stream dies.
func Failover(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	type variant struct {
		name string
		pol  semicont.Policy
	}
	variants := []variant{
		{"no-DRM", semicont.Policy{Name: "no-DRM", Placement: semicont.EvenPlacement}},
		{"DRM", semicont.Policy{Name: "DRM", Placement: semicont.EvenPlacement, Migration: true}},
		{"DRM+staging", semicont.PolicyP4()},
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("Server failure at t = %g h (%s system, theta = %g, load 0.85)", opts.HorizonHours/2, sys.Name, PriorStudiesTheta),
		Headers: []string{"policy", "utilization", "rescued", "dropped", "rescue-rate"},
	}
	w := newSweeper(opts)
	refs := make([]cellRef, len(variants))
	for i, v := range variants {
		pol := v.pol
		refs[i] = w.rawCell("failover "+v.name, opts.Trials, func(trial int) (*semicont.Result, error) {
			return semicont.Run(semicont.Scenario{
				System:       sys,
				Policy:       pol,
				Theta:        PriorStudiesTheta,
				HorizonHours: opts.HorizonHours,
				// Leave headroom so rescues have somewhere to land; a
				// saturated cluster cannot absorb a dead server's work.
				LoadFactor:  0.85,
				Seed:        opts.Seed + uint64(trial)*7919,
				FailServer:  0,
				FailAtHours: opts.HorizonHours / 2,
				Audit:       opts.Audit,
			})
		})
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	for i, v := range variants {
		util, rescued, dropped := stats.Sample{}, stats.Sample{}, stats.Sample{}
		for _, res := range refs[i].results() {
			util.Add(res.Utilization)
			rescued.Add(float64(res.RescuedStreams))
			dropped.Add(float64(res.DroppedStreams))
		}
		rate := 0.0
		if tot := rescued.Mean() + dropped.Mean(); tot > 0 {
			rate = rescued.Mean() / tot
		}
		tbl.AddRow(v.name,
			fmt.Sprintf("%.4f ±%.4f", util.Mean(), util.CI95()),
			fmt.Sprintf("%.1f", rescued.Mean()),
			fmt.Sprintf("%.1f", dropped.Mean()),
			fmt.Sprintf("%.2f", rate))
		opts.Progress("  failover %s: util=%.4f rescued=%.1f dropped=%.1f", v.name, util.Mean(), rescued.Mean(), dropped.Mean())
	}
	return &Output{
		ID:     "fail-" + sys.Name,
		Title:  fmt.Sprintf("Failure rescue via DRM (%s system)", sys.Name),
		Tables: []*report.Table{tbl},
	}, nil
}

// gbString formats Mb as GB for the parameter table.
func gbString(mb float64) string {
	return fmt.Sprintf("%.0f GB", mb/units.MbPerGB)
}
