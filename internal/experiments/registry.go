package experiments

import (
	"fmt"
	"slices"

	"semicont"
)

// Entry names one runnable experiment.
type Entry struct {
	ID          string
	Description string
	Run         func(Options) (*Output, error)
}

// Registry returns every experiment in presentation order. IDs match
// the per-experiment index of DESIGN.md.
func Registry() []Entry {
	small, large := semicont.SmallSystem(), semicont.LargeSystem()
	bind := func(f func(semicont.System, Options) (*Output, error), sys semicont.System) func(Options) (*Output, error) {
		return func(o Options) (*Output, error) { return f(sys, o) }
	}
	return []Entry{
		{"t3", "Figure 3: system parameter table", func(Options) (*Output, error) { return TableFig3(), nil }},
		{"f4-large", "Figure 4 (left): DRM effect, large system", bind(Fig4, large)},
		{"f4-small", "Figure 4 (right): DRM effect, small system", bind(Fig4, small)},
		{"f5-large", "Figure 5 (left): client staging, large system", bind(Fig5, large)},
		{"f5-small", "Figure 5 (right): client staging, small system", bind(Fig5, small)},
		{"t6", "Figure 6: policy matrix P1-P8", func(Options) (*Output, error) { return TableFig6(), nil }},
		{"f7-large", "Figure 7 (left): policies P1-P8, large system", bind(Fig7, large)},
		{"f7-small", "Figure 7 (right): policies P1-P8, small system", bind(Fig7, small)},
		{"stage", "Staging-degree sweep (the 20% claim)", StagingSweep},
		{"svbr", "SVBR: simulation vs Erlang-B analysis", SVBR},
		{"analytic-small", "Cluster-level Erlang bracket vs simulation, small system", bind(ClusterAnalysis, small)},
		{"het", "Heterogeneity study (Section 4.6)", Heterogeneity},
		{"partial-large", "Partial predictive placement, large system", bind(PartialPredictive, large)},
		{"partial-small", "Partial predictive placement, small system", bind(PartialPredictive, small)},
		{"replication-small", "Extension: DRM vs dynamic replication, small system", bind(Replication, small)},
		{"replication-large", "Extension: DRM vs dynamic replication, large system", bind(Replication, large)},
		{"intermittent-small", "Ablation: intermittent vs minimum-flow scheduling, small system", bind(Intermittent, small)},
		{"clientmix-small", "Extension: heterogeneous client capabilities, small system", bind(ClientMix, small)},
		{"interactive-small", "Extension: viewer pause/resume interactivity, small system", bind(Interactivity, small)},
		{"patching-small", "Extension: multicast patching, small system", bind(Patching, small)},
		{"eftf-small", "Ablation: EFTF vs LFTF vs even-split workahead, small system", bind(SpareDisciplines, small)},
		{"alloc-small", "Ablation: registered allocator policies via the named registry, small system", bind(Allocators, small)},
		{"chain-small", "Ablation: migration chain length, small system", bind(ChainLength, small)},
		{"switch-small", "Ablation: migration switch delay, small system", bind(SwitchDelay, small)},
		{"fail-small", "Fault tolerance: failure rescue via DRM, small system", bind(Failover, small)},
		{"fault-sweep-small", "Fault tolerance: denial/drop/glitch rates vs MTBF under server churn, small system", bind(FaultSweep, small)},
		{"overload-sweep-small", "Robustness: per-class denial and glitch rates vs flash-crowd burst under load shedding, small system", bind(OverloadSweep, small)},
		{"edge-sweep-small", "Extension: edge prefix caching and multicast batching — cluster egress and denial rate vs cache size, small system", bind(EdgeSweep, small)},
		{"admission-sweep-small", "Ablation: registered admission selectors vs offered load, small system", bind(AdmissionSweep, small)},
		{"scale-large", "Scale: admission-delay quantiles vs offered load, 200-server cluster, 10^6-request trials", ScaleDist},
		{"faults-large", "Scale: glitch/park/migration quantiles vs MTBF under churn, 200-server cluster", ScaleFaults},
	}
}

// Find returns the registry entry with the given id.
func Find(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := IDs()
	return Entry{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	slices.Sort(ids)
	return ids
}
