package experiments

import (
	"strings"
	"testing"

	"semicont"
)

// tinyOpts makes every experiment cheap enough for the unit-test suite:
// short horizon, one trial, three θ points.
func tinyOpts() Options {
	return Options{
		HorizonHours: 2,
		Trials:       1,
		Seed:         1,
		Thetas:       []float64{-1, 0, 1},
	}
}

func TestRegistryIDsUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := Find(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("Find(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Find("nonsense"); err == nil {
		t.Error("unknown id accepted")
	}
	if len(IDs()) != len(Registry()) {
		t.Error("IDs() length mismatch")
	}
}

func TestDefaultThetaSweep(t *testing.T) {
	ts := DefaultThetaSweep()
	if len(ts) != 11 {
		t.Fatalf("sweep has %d points, want 11", len(ts))
	}
	if ts[0] != -1.5 || ts[len(ts)-1] < 0.999 {
		t.Errorf("sweep range = [%g, %g]", ts[0], ts[len(ts)-1])
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.HorizonHours != 100 || o.Trials != semicont.PaperTrials || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Thetas == nil || o.Progress == nil {
		t.Error("defaults missing sweep or progress")
	}
	p := PaperScale()
	if p.HorizonHours != 1000 || p.Trials != 5 {
		t.Errorf("PaperScale = %+v", p)
	}
}

func TestTables(t *testing.T) {
	t3 := TableFig3()
	if len(t3.Tables) != 1 || len(t3.Tables[0].Rows) < 6 {
		t.Errorf("t3 = %+v", t3)
	}
	var found bool
	for _, row := range t3.Tables[0].Rows {
		if row[0] == "Number of Servers" && row[1] == "5" && row[2] == "20" {
			found = true
		}
	}
	if !found {
		t.Error("t3 missing server counts")
	}

	t6 := TableFig6()
	if len(t6.Tables[0].Rows) != 8 {
		t.Errorf("t6 has %d policies", len(t6.Tables[0].Rows))
	}
	if t6.Tables[0].Rows[3][0] != "P4" || t6.Tables[0].Rows[3][2] != "Migr" {
		t.Errorf("P4 row = %v", t6.Tables[0].Rows[3])
	}
}

func TestFig4Tiny(t *testing.T) {
	out, err := Fig4(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figures[0]
	if len(fig.Series) != 3 {
		t.Fatalf("fig4 has %d series", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 3 {
			t.Errorf("series %q has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mean <= 0 || p.Mean > 1.1 {
				t.Errorf("series %q utilization %v at x=%g out of range", s.Name, p.Mean, p.X)
			}
		}
	}
	// Migration should not hurt: at every theta the hops=1 curve is at
	// least (almost) the no-migration curve.
	noMigr, hops1 := fig.Series[0], fig.Series[1]
	for i := range noMigr.Points {
		if hops1.Points[i].Mean < noMigr.Points[i].Mean-0.02 {
			t.Errorf("theta=%g: DRM hurt utilization (%v vs %v)",
				noMigr.Points[i].X, hops1.Points[i].Mean, noMigr.Points[i].Mean)
		}
	}
}

func TestFig5Tiny(t *testing.T) {
	out, err := Fig5(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figures[0]
	if len(fig.Series) != 4 {
		t.Fatalf("fig5 has %d series", len(fig.Series))
	}
	names := []string{"0% buffer", "2% buffer", "20% buffer", "100% buffer"}
	for i, s := range fig.Series {
		if s.Name != names[i] {
			t.Errorf("series %d name %q, want %q", i, s.Name, names[i])
		}
	}
	// At uniform demand (θ=1, last point) staging must help: 20% ≥ 0%.
	last := len(fig.Series[0].Points) - 1
	if fig.Series[2].Points[last].Mean < fig.Series[0].Points[last].Mean {
		t.Errorf("20%% buffer below 0%% at theta=1: %v vs %v",
			fig.Series[2].Points[last].Mean, fig.Series[0].Points[last].Mean)
	}
}

func TestFig7Tiny(t *testing.T) {
	out, err := Fig7(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 8 {
		t.Fatalf("fig7 has %d series, want 8 policies", len(out.Figures[0].Series))
	}
	for i, s := range out.Figures[0].Series {
		if !strings.HasPrefix(s.Name, "P") {
			t.Errorf("series %d name %q", i, s.Name)
		}
	}
}

func TestSVBRTiny(t *testing.T) {
	// A small-SVBR server sees only ~15 arrivals per simulated hour, so
	// this test needs a longer horizon than the others to beat the
	// sampling noise.
	opts := tinyOpts()
	opts.HorizonHours = 30
	opts.Trials = 2
	out, err := SVBR(opts)
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figures[0]
	if len(fig.Series) != 2 {
		t.Fatalf("svbr has %d series", len(fig.Series))
	}
	sim, ana := fig.Series[0], fig.Series[1]
	// The analytic curve is monotone increasing; the simulation should
	// track it loosely even at tiny scale.
	for i := 1; i < len(ana.Points); i++ {
		if ana.Points[i].Mean <= ana.Points[i-1].Mean {
			t.Errorf("analytic curve not monotone at %g", ana.Points[i].X)
		}
	}
	for i := range sim.Points {
		if diff := sim.Points[i].Mean - ana.Points[i].Mean; diff > 0.15 || diff < -0.15 {
			t.Errorf("svbr=%g: sim %v vs analytic %v", sim.Points[i].X, sim.Points[i].Mean, ana.Points[i].Mean)
		}
	}
}

func TestStagingSweepTiny(t *testing.T) {
	out, err := StagingSweep(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 2 {
		t.Fatalf("stage has %d series", len(out.Figures[0].Series))
	}
}

func TestHeterogeneityTiny(t *testing.T) {
	out, err := Heterogeneity(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 3 {
		t.Fatalf("het has %d series", len(out.Figures[0].Series))
	}
}

func TestPartialPredictiveTiny(t *testing.T) {
	out, err := PartialPredictive(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 3 {
		t.Fatalf("partial has %d series", len(out.Figures[0].Series))
	}
}

func TestChainLengthTiny(t *testing.T) {
	out, err := ChainLength(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 3 {
		t.Fatalf("chain has %d series", len(out.Figures[0].Series))
	}
}

func TestSwitchDelayTiny(t *testing.T) {
	out, err := SwitchDelay(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 3 {
		t.Fatalf("switch has %d series", len(out.Figures[0].Series))
	}
}

func TestFailoverTiny(t *testing.T) {
	out, err := Failover(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 1 || len(out.Tables[0].Rows) != 3 {
		t.Fatalf("failover table = %+v", out.Tables)
	}
}

func TestFaultSweepTiny(t *testing.T) {
	out, err := FaultSweep(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 3 {
		t.Fatalf("fault-sweep has %d figures, want denial + drop + glitch", len(out.Figures))
	}
	allocs := len(semicont.AllocatorNames())
	for _, fig := range out.Figures {
		if len(fig.Series) != allocs {
			t.Fatalf("%s has %d series, want one per allocator (%d)", fig.ID, len(fig.Series), allocs)
		}
		for _, s := range fig.Series {
			if len(s.Points) != 5 {
				t.Errorf("%s/%s has %d points, want 5", fig.ID, s.Name, len(s.Points))
			}
		}
	}
	// The shortest MTBF injects real churn even at tiny scale.
	if p := out.Figures[0].Series[0].Points[0]; p.Mean <= 0 {
		t.Errorf("no denial under heavy churn (mtbf=%g): %v", p.X, p.Mean)
	}
}

// TestFaultSweepEFTFBeatsEvenSplit pins the experiment's headline
// comparison: EFTF front-loads workahead into the emptiest client
// buffers, so streams parked by a failure survive longer outages than
// under even-split — summed over the MTBF grid, its glitch rate must be
// strictly lower, and its drop rate no worse. Scaled down from the
// registry run but long enough for the effect to dominate noise.
func TestFaultSweepEFTFBeatsEvenSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour fault sweep skipped in -short mode")
	}
	out, err := FaultSweep(semicont.SmallSystem(), Options{HorizonHours: 20, Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(fig Figure, name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				total := 0.0
				for _, p := range s.Points {
					total += p.Mean
				}
				return total
			}
		}
		t.Fatalf("%s: no series %q", fig.ID, name)
		return 0
	}
	drops, glitches := out.Figures[1], out.Figures[2]
	if eftf, even := sum(glitches, "minflow-eftf"), sum(glitches, "minflow-evensplit"); eftf >= even {
		t.Errorf("eftf glitch rate %v not below evensplit %v", eftf, even)
	}
	if eftf, even := sum(drops, "minflow-eftf"), sum(drops, "minflow-evensplit"); eftf > even+1e-3 {
		t.Errorf("eftf drop rate %v worse than evensplit %v", eftf, even)
	}
}

func TestOverloadSweepTiny(t *testing.T) {
	out, err := OverloadSweep(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 3 {
		t.Fatalf("overload-sweep has %d figures, want premium + standard + glitch", len(out.Figures))
	}
	for _, fig := range out.Figures {
		if len(fig.Series) != 3 {
			t.Fatalf("%s has %d series, want shed-off + two watermarks", fig.ID, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 4 {
				t.Errorf("%s/%s has %d points, want 4", fig.ID, s.Name, len(s.Points))
			}
		}
	}
}

// TestOverloadSheddingProtectsPremium pins the experiment's headline
// claim: through a flash crowd that doubles the aggregate arrival rate,
// class-based shedding keeps premium denial at least 3× lower than
// running the same surge with shedding disabled — the standard tier
// absorbs the cuts. Scaled down from the registry run but long enough
// for the effect to dominate noise.
func TestOverloadSheddingProtectsPremium(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour overload sweep skipped in -short mode")
	}
	out, err := OverloadSweep(semicont.SmallSystem(), Options{HorizonHours: 20, Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	at := func(fig Figure, name string, x float64) float64 {
		for _, s := range fig.Series {
			if s.Name != name {
				continue
			}
			for _, p := range s.Points {
				if p.X == x {
					return p.Mean
				}
			}
		}
		t.Fatalf("%s: no point %q at x=%g", fig.ID, name, x)
		return 0
	}
	premium := out.Figures[0]
	off, on := at(premium, "shed-off", 2), at(premium, "wm=0.75", 2)
	if off <= 0 {
		t.Fatalf("2x flash crowd denied no premium arrivals without shedding (off=%v)", off)
	}
	if on > off/3 {
		t.Errorf("premium denial with shedding %v not 3x below shed-off %v", on, off)
	}
}

func TestAdmissionSweepTiny(t *testing.T) {
	out, err := AdmissionSweep(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("admission-sweep has %d figures, want denial + utilization", len(out.Figures))
	}
	sels := len(semicont.SelectorNames())
	for _, fig := range out.Figures {
		if len(fig.Series) != sels {
			t.Fatalf("%s has %d series, want one per selector (%d)", fig.ID, len(fig.Series), sels)
		}
		for _, s := range fig.Series {
			if len(s.Points) != 5 {
				t.Errorf("%s/%s has %d points, want 5", fig.ID, s.Name, len(s.Points))
			}
		}
	}
	// 130% offered load must overflow even at tiny scale.
	den := out.Figures[0]
	if p := den.Series[0].Points[len(den.Series[0].Points)-1]; p.Mean <= 0 {
		t.Errorf("no denial at load=%g: %v", p.X, p.Mean)
	}
}

// TestAdmissionSweepFirstFitDeniesMore pins the experiment's headline
// ordering: at and past saturation, first-fit piles streams onto the
// low-index holders and strands feasible slots elsewhere, so its denial
// rate is at least least-loaded's, which balances every holder of a
// video. Compared at load 1.0 and above, summed, with a small slack for
// sampling noise. Scaled down from the registry run.
func TestAdmissionSweepFirstFitDeniesMore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour admission sweep skipped in -short mode")
	}
	out, err := AdmissionSweep(semicont.SmallSystem(), Options{HorizonHours: 20, Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(fig Figure, name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				total := 0.0
				for _, p := range s.Points {
					if p.X >= 1.0 {
						total += p.Mean
					}
				}
				return total
			}
		}
		t.Fatalf("%s: no series %q", fig.ID, name)
		return 0
	}
	denial := out.Figures[0]
	ff, ll := sum(denial, semicont.SelectorFirstFit), sum(denial, semicont.SelectorLeastLoaded)
	if ff < ll-1e-3 {
		t.Errorf("first-fit denial %v below least-loaded %v at load >= 1.0", ff, ll)
	}
}

func TestProgressCallback(t *testing.T) {
	opts := tinyOpts()
	var lines int
	opts.Progress = func(string, ...any) { lines++ }
	if _, err := Fig4(semicont.SmallSystem(), opts); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("no progress reported")
	}
}

func TestIntermittentTiny(t *testing.T) {
	out, err := Intermittent(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("intermittent has %d figures, want utilization + glitches", len(out.Figures))
	}
	// Minimum-flow must be glitch-free at every theta.
	for _, p := range out.Figures[1].Series[0].Points {
		if p.Mean != 0 {
			t.Errorf("minimum-flow glitch rate %v at theta=%g", p.Mean, p.X)
		}
	}
}

func TestClientMixTiny(t *testing.T) {
	out, err := ClientMix(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	pts := out.Figures[0].Series[0].Points
	if len(pts) != 5 {
		t.Fatalf("clientmix has %d points", len(pts))
	}
	// All-staged (thin=0) should not be worse than all-thin (thin=1).
	if pts[0].Mean < pts[len(pts)-1].Mean-0.02 {
		t.Errorf("fully staged %v below fully thin %v", pts[0].Mean, pts[len(pts)-1].Mean)
	}
}

func TestReplicationTiny(t *testing.T) {
	out, err := Replication(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("replication has %d figures", len(out.Figures))
	}
	if len(out.Figures[0].Series) != 4 || len(out.Figures[1].Series) != 2 {
		t.Fatalf("replication series = %d/%d, want 4 utilization + 2 copy curves",
			len(out.Figures[0].Series), len(out.Figures[1].Series))
	}
}

func TestInteractivityExperimentTiny(t *testing.T) {
	out, err := Interactivity(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures[0].Series) != 3 {
		t.Fatalf("interactive has %d series", len(out.Figures[0].Series))
	}
	for _, s := range out.Figures[0].Series {
		if len(s.Points) != 5 {
			t.Errorf("series %q has %d points", s.Name, len(s.Points))
		}
	}
}

// TestRegistryRunsEndToEnd executes every registered experiment at a
// minimal scale — the whole harness, every figure and table, in one
// sweep. Skipped under -short.
func TestRegistryRunsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep skipped in -short mode")
	}
	opts := Options{
		HorizonHours: 1,
		Trials:       1,
		Seed:         1,
		Thetas:       []float64{0},
		Audit:        true, // every experiment must survive the invariant auditor
	}
	for _, e := range Registry() {
		out, err := e.Run(opts)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out.Figures) == 0 && len(out.Tables) == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
		for _, fig := range out.Figures {
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Errorf("%s: series %q empty", e.ID, s.Name)
				}
			}
		}
	}
}

func TestClusterAnalysisTiny(t *testing.T) {
	out, err := ClusterAnalysis(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	fig := out.Figures[0]
	if len(fig.Series) != 4 {
		t.Fatalf("analytic has %d series", len(fig.Series))
	}
	lower, upper := fig.Series[0], fig.Series[3]
	for i := range lower.Points {
		if lower.Points[i].Mean > upper.Points[i].Mean+1e-9 {
			t.Errorf("bracket inverted at theta=%g", lower.Points[i].X)
		}
	}
}

func TestSpareDisciplinesTiny(t *testing.T) {
	out, err := SpareDisciplines(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("eftf ablation has %d figures", len(out.Figures))
	}
	for _, fig := range out.Figures {
		if len(fig.Series) != 3 {
			t.Errorf("%s has %d series", fig.ID, len(fig.Series))
		}
	}
}

func TestPatchingExperimentTiny(t *testing.T) {
	out, err := Patching(semicont.SmallSystem(), tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Figures) != 2 {
		t.Fatalf("patching has %d figures", len(out.Figures))
	}
	if len(out.Figures[0].Series) != 3 || len(out.Figures[1].Series) != 2 {
		t.Fatalf("patching series = %d/%d", len(out.Figures[0].Series), len(out.Figures[1].Series))
	}
}
