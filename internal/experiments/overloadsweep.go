package experiments

import (
	"fmt"

	"semicont"
	"semicont/internal/faults"
	"semicont/internal/stats"
	"semicont/internal/workload"
)

// OverloadSweep measures class-based load shedding under a flash crowd
// layered on background fault churn. The arrival stream splits into a
// premium tier (25% of traffic, patient retries) and a standard tier
// (75%); a flash-crowd window multiplies the aggregate rate by the
// burst factor for 30% of the horizon, concentrating the surge on one
// video. Each burst factor runs once with shedding disabled and once
// per shed watermark, so the figures show what the watermark buys: with
// shedding off, the surge denies both classes alike; with shedding on,
// standard arrivals are turned away at the door while premium denial
// stays near its no-surge baseline. Dynamic replication runs in every
// configuration so the hot flash video gains copies instead of pinning
// denial to its initial placement. Light server churn (failures plus
// half-rate brownouts) runs underneath so the glitch figure has
// content and the audited smoke run exercises faults and overload
// together.
func OverloadSweep(sys semicont.System, opts Options) (*Output, error) {
	opts = opts.withDefaults()
	bursts := []float64{1, 1.5, 2, 3}
	sheds := []struct {
		name      string
		watermark float64
	}{
		{"shed-off", 0},
		{"wm=0.75", 0.75},
		{"wm=0.9", 0.9},
	}
	horizonSec := opts.HorizonHours * 3600
	w := newSweeper(opts)
	cells := make(map[string][]cellRef, len(sheds))
	for _, sh := range sheds {
		for _, burst := range bursts {
			var curve workload.Curve
			if burst > 1 {
				curve = workload.Curve{
					FlashAt:       0.3 * horizonSec,
					FlashDuration: 0.3 * horizonSec,
					FlashFactor:   burst,
					FlashVideo:    0,
				}
			}
			sc := semicont.Scenario{
				System: sys,
				Policy: semicont.Policy{
					Name:             sh.name,
					Placement:        semicont.EvenPlacement,
					StagingFrac:      0.2,
					ReceiveCap:       semicont.DefaultReceiveCap,
					Migration:        true,
					Replicate:        true,
					MaxHops:          semicont.UnlimitedHops,
					MaxChain:         1,
					RetryQueue:       true,
					DegradedPlayback: true,
					Classes: []semicont.TrafficClass{
						{Name: "premium", Share: 1, RetryPatienceSec: 600},
						{Name: "standard", Share: 3},
					},
					ShedWatermark: sh.watermark,
				},
				Theta:        PriorStudiesTheta,
				HorizonHours: opts.HorizonHours,
				LoadFactor:   0.85,
				Seed:         opts.Seed,
				Faults: faults.Config{
					MTBFHours: 40, MTTRHours: 1,
					BrownoutMTBFHours: 30, BrownoutMTTRHours: 2, BrownoutFraction: 0.5,
				},
				Curve: curve,
				Audit: opts.Audit,
			}
			label := fmt.Sprintf("overload-sweep %s at burst=%g", sh.name, burst)
			cells[sh.name] = append(cells[sh.name], w.cell(label, sc))
		}
	}
	if err := w.wait(); err != nil {
		return nil, err
	}
	denialRate := func(r *semicont.Result, class int) (float64, bool) {
		if r.ClassArrivals[class] == 0 {
			return 0, false
		}
		return float64(r.ClassRejected[class]+r.ClassReneged[class]) /
			float64(r.ClassArrivals[class]), true
	}
	var premium, standard, glitches []stats.Series
	for _, sh := range sheds {
		prem := stats.Series{Name: sh.name}
		std := stats.Series{Name: sh.name}
		gl := stats.Series{Name: sh.name}
		for i, burst := range bursts {
			var pSmp, sSmp, gSmp stats.Sample
			for _, r := range cells[sh.name][i].results() {
				if d, ok := denialRate(r, 0); ok {
					pSmp.Add(d)
				}
				if d, ok := denialRate(r, 1); ok {
					sSmp.Add(d)
				}
				if r.Accepted > 0 {
					gSmp.Add(float64(r.DegradedGlitches+r.GlitchedStreams) / float64(r.Accepted))
				}
			}
			prem.Points = append(prem.Points, stats.FromSample(burst, &pSmp))
			std.Points = append(std.Points, stats.FromSample(burst, &sSmp))
			gl.Points = append(gl.Points, stats.FromSample(burst, &gSmp))
			opts.Progress("  overload-sweep %s burst=%g premium=%.4f standard=%.4f glitch=%.4f",
				sh.name, burst, pSmp.Mean(), sSmp.Mean(), gSmp.Mean())
		}
		premium, standard, glitches = append(premium, prem), append(standard, std), append(glitches, gl)
	}
	id := "overload-sweep-" + sys.Name
	return &Output{
		ID:    id,
		Title: fmt.Sprintf("Overload sweep: class-based shedding through a flash crowd (%s system)", sys.Name),
		Figures: []Figure{
			{
				ID:     id + "-premium-denial",
				Title:  fmt.Sprintf("Premium denial rate vs. flash-crowd burst factor, %s system (load 0.85, churn MTBF 40 h)", sys.Name),
				XLabel: "burst-factor",
				YLabel: "denial-rate",
				Series: premium,
				Notes:  "Expected shape: without shedding premium denial climbs with the burst as the surge exhausts the cluster; with shedding the standard tier absorbs the cuts and premium denial stays near its burst=1 baseline.",
			},
			{
				ID:     id + "-standard-denial",
				Title:  fmt.Sprintf("Standard denial rate vs. flash-crowd burst factor, %s system", sys.Name),
				XLabel: "burst-factor",
				YLabel: "denial-rate",
				Series: standard,
				Notes:  "Expected shape: rises with the burst everywhere; under shedding it rises faster and earlier (the watermark converts premium protection into standard rejections), with the lower watermark shedding more.",
			},
			{
				ID:     id + "-glitch",
				Title:  fmt.Sprintf("Glitch rate (interruptions per admission) vs. burst factor, %s system", sys.Name),
				XLabel: "burst-factor",
				YLabel: "glitch-rate",
				Series: glitches,
				Notes:  "Expected shape: shedding keeps admitted streams' glitch exposure roughly flat through the surge — fewer admissions fighting the same churned capacity — while shed-off admits into congestion and glitches more as the burst grows.",
			},
		},
	}, nil
}
