package simtime

import (
	"testing"
	"testing/quick"
)

// TestPushPopEmpty: on an empty queue the pushed event comes straight
// back and the queue stays empty.
func TestPushPopEmpty(t *testing.T) {
	var q Queue[int]
	tm, v, ok := q.PushPop(3, 7)
	if !ok || tm != 3 || v != 7 {
		t.Fatalf("PushPop on empty = (%v, %d, %v), want (3, 7, true)", tm, v, ok)
	}
	if q.Len() != 0 {
		t.Errorf("Len() = %d after empty PushPop, want 0", q.Len())
	}
}

// TestPushPopTieBreak: on a time tie the queued event wins — it was
// pushed first, so FIFO order delivers it before the new one.
func TestPushPopTieBreak(t *testing.T) {
	var q Queue[int]
	q.Push(5, 1)
	tm, v, ok := q.PushPop(5, 2)
	if !ok || tm != 5 || v != 1 {
		t.Fatalf("PushPop tie = (%v, %d, %v), want the queued event (5, 1, true)", tm, v, ok)
	}
	if tm, v, _ := q.Pop(); tm != 5 || v != 2 {
		t.Fatalf("remaining event = (%v, %d), want (5, 2)", tm, v)
	}
}

// TestPushPopEarlier: a strictly earlier event bypasses the heap.
func TestPushPopEarlier(t *testing.T) {
	var q Queue[int]
	q.Push(5, 1)
	if tm, v, _ := q.PushPop(4, 2); tm != 4 || v != 2 {
		t.Fatalf("PushPop earlier = (%v, %d), want (4, 2)", tm, v)
	}
	if q.Len() != 1 {
		t.Errorf("Len() = %d, want 1", q.Len())
	}
}

// Property: PushPop is observationally identical to Push followed by
// Pop. Two queues receive the same operation stream — one fused, one
// split — and every return value and subsequent drain must match.
func TestPushPopEquivalence(t *testing.T) {
	prop := func(ops []uint16) bool {
		var fused, split Queue[int]
		for i, op := range ops {
			tm := float64(op % 50) // plenty of time collisions
			switch op % 3 {
			case 0, 1: // plain push
				fused.Push(tm, i)
				split.Push(tm, i)
			case 2: // fused vs split pop-with-replacement
				ft, fv, fok := fused.PushPop(tm, i)
				split.Push(tm, i)
				st, sv, sok := split.Pop()
				if ft != st || fv != sv || fok != sok {
					return false
				}
			}
			if fused.Len() != split.Len() {
				return false
			}
		}
		for {
			ft, fv, fok := fused.Pop()
			st, sv, sok := split.Pop()
			if ft != st || fv != sv || fok != sok {
				return false
			}
			if !fok {
				return true
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// --- benchmarks (baselines in BENCH_queue.json) ---

func benchmarkPushPopCycle(b *testing.B, n int) {
	var q Queue[int]
	// Pseudo-random but deterministic times, like the event list's mix
	// of near-term wakes and far-future arrivals.
	tm := func(i int) float64 { return float64((i * 2654435761) % 99991) }
	for i := 0; i < n; i++ {
		q.Push(tm(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, v, _ := q.Pop()
		q.Push(t+float64(v%13), v)
	}
}

func benchmarkReplace(b *testing.B, n int) {
	var q Queue[int]
	tm := func(i int) float64 { return float64((i * 2654435761) % 99991) }
	for i := 0; i < n; i++ {
		q.Push(tm(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, v, _ := q.PushPop(tm(i)+1, i)
		_ = t
		_ = v
	}
}

func BenchmarkQueuePushPop1e3(b *testing.B) { benchmarkPushPopCycle(b, 1_000) }
func BenchmarkQueuePushPop1e5(b *testing.B) { benchmarkPushPopCycle(b, 100_000) }
func BenchmarkQueueReplace1e3(b *testing.B) { benchmarkReplace(b, 1_000) }
func BenchmarkQueueReplace1e5(b *testing.B) { benchmarkReplace(b, 100_000) }

func BenchmarkQueueFill1e3(b *testing.B) { benchmarkFill(b, 1_000) }
func BenchmarkQueueFill1e5(b *testing.B) { benchmarkFill(b, 100_000) }

func benchmarkFill(b *testing.B, n int) {
	var q Queue[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Reset()
		for j := 0; j < n; j++ {
			q.Push(float64((j*2654435761)%99991), j)
		}
	}
}
