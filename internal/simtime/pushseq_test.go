package simtime

import (
	"math/rand"
	"testing"
)

// TestPushSeqMergeOrder pins the property the sharded engine builds on:
// events spread over several queues via PushSeq under one shared
// counter, then drained by repeatedly popping the queue whose PeekKey
// is smallest, come out in exactly the order a single Push-fed queue
// delivers them.
func TestPushSeqMergeOrder(t *testing.T) {
	const parts = 4
	r := rand.New(rand.NewSource(11))
	var single Queue[int]
	var split [parts]Queue[int]
	var seq uint64
	for i := 0; i < 500; i++ {
		tm := float64(r.Intn(40)) // dense ties
		single.Push(tm, i)
		seq++
		split[r.Intn(parts)].PushSeq(tm, seq, i)
	}
	for n := 0; ; n++ {
		best := -1
		var bt float64
		var bseq uint64
		for q := range split {
			st, sseq, ok := split[q].PeekKey()
			if ok && (best < 0 || st < bt || (st == bt && sseq < bseq)) {
				best, bt, bseq = q, st, sseq
			}
		}
		wt, wv, wok := single.Pop()
		if best < 0 {
			if wok {
				t.Fatalf("merge drained after %d events, single queue still has (%g, %d)", n, wt, wv)
			}
			return
		}
		gt, gv, _ := split[best].Pop()
		if !wok {
			t.Fatalf("single queue drained after %d events, merge still has (%g, %d)", n, gt, gv)
		}
		if gt != wt || gv != wv {
			t.Fatalf("event %d: merged pop (%g, %d), single-queue pop (%g, %d)", n, gt, gv, wt, wv)
		}
	}
}

// TestPeekKeyMatchesPop checks PeekKey reports the key of exactly the
// event Pop then removes, and the empty-queue contract.
func TestPeekKeyMatchesPop(t *testing.T) {
	var q Queue[string]
	if _, _, ok := q.PeekKey(); ok {
		t.Fatal("PeekKey reported an event on an empty queue")
	}
	q.Push(3, "late")
	q.Push(1, "a")
	q.Push(1, "b") // FIFO tie: seq orders a before b
	wantSeqs := []uint64{2, 3, 1}
	for i, want := range []string{"a", "b", "late"} {
		pt, pseq, ok := q.PeekKey()
		if !ok {
			t.Fatalf("event %d: PeekKey on non-empty queue reported empty", i)
		}
		if pseq != wantSeqs[i] {
			t.Fatalf("event %d: PeekKey seq %d, want %d", i, pseq, wantSeqs[i])
		}
		gt, gv, _ := q.Pop()
		if gt != pt || gv != want {
			t.Fatalf("event %d: PeekKey (%g) then Pop (%g, %q), want %q", i, pt, gt, gv, want)
		}
	}
}
