// Package simtime provides the discrete-event substrate: a future event
// list ordered by simulated time with deterministic FIFO tie-breaking.
//
// The simulator is a fluid-flow discrete-event simulation: between
// events every transmission proceeds at a constant rate, and the engine
// schedules the next instant at which any rate must change (an arrival,
// a transmission finishing, a client buffer filling, a failure). The
// event list is the only data structure whose ordering affects results,
// so it breaks time ties by insertion order to keep runs reproducible.
package simtime

// Queue is a min-heap of events carrying payloads of type T.
// The zero value is an empty queue ready for use.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	time    float64
	seq     uint64
	payload T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules payload v at time t. Events at equal times are
// delivered in the order they were pushed.
func (q *Queue[T]) Push(t float64, v T) {
	q.seq++
	q.items = append(q.items, item[T]{time: t, seq: q.seq, payload: v})
	q.up(len(q.items) - 1)
}

// Peek reports the time of the earliest event without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (t float64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].time, true
}

// Pop removes and returns the earliest event.
// ok is false when the queue is empty.
func (q *Queue[T]) Pop() (t float64, v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	// Clear the vacated slot so payloads don't pin garbage.
	var zero item[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top.time, top.payload, true
}

// Reset empties the queue, retaining its backing storage for reuse.
func (q *Queue[T]) Reset() {
	var zero item[T]
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	q.seq = 0
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
