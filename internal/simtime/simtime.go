// Package simtime provides the discrete-event substrate: a future event
// list ordered by simulated time with deterministic FIFO tie-breaking.
//
// The simulator is a fluid-flow discrete-event simulation: between
// events every transmission proceeds at a constant rate, and the engine
// schedules the next instant at which any rate must change (an arrival,
// a transmission finishing, a client buffer filling, a failure). The
// event list is the only data structure whose ordering affects results,
// so it breaks time ties by insertion order to keep runs reproducible.
package simtime

// Queue is a min-heap of events carrying payloads of type T.
// The zero value is an empty queue ready for use.
//
// The heap is 4-ary rather than binary: sift-down — the cost of every
// Pop — visits a quarter as many levels at the price of three extra
// comparisons per level, which wins on modern hardware because each
// level is a dependent cache miss while the sibling comparisons are
// not. Arity is invisible in the results: (time, seq) is a strict total
// order (seq is unique), and a heap of any arity pops a strict total
// order in exactly sorted order, so event delivery is bit-identical to
// the binary heap's.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

// arity is the heap's branching factor.
const arity = 4

type item[T any] struct {
	time    float64
	seq     uint64
	payload T
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push schedules payload v at time t. Events at equal times are
// delivered in the order they were pushed.
func (q *Queue[T]) Push(t float64, v T) {
	q.seq++
	q.items = append(q.items, item[T]{time: t, seq: q.seq, payload: v})
	q.up(len(q.items) - 1)
}

// PushSeq schedules payload v at time t under a caller-supplied
// sequence number. It exists for the sharded engine, whose queues are
// merged by the (time, seq) key: seq values must then form one global
// order across several queues, so the engine owns the counter and the
// queue stores what it is told. A queue must be fed exclusively through
// Push or exclusively through PushSeq between Resets — mixing the two
// interleaves the internal counter with the external one and the FIFO
// tie-break stops meaning insertion order.
func (q *Queue[T]) PushSeq(t float64, seq uint64, v T) {
	q.items = append(q.items, item[T]{time: t, seq: seq, payload: v})
	q.up(len(q.items) - 1)
}

// Peek reports the time of the earliest event without removing it.
// ok is false when the queue is empty.
func (q *Queue[T]) Peek() (t float64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].time, true
}

// PeekKey reports the full ordering key — time and sequence number — of
// the earliest event without removing it. Merging consumers (the
// sharded engine's lockstep pop and its window horizon) compare heads
// of several queues by this key.
func (q *Queue[T]) PeekKey() (t float64, seq uint64, ok bool) {
	if len(q.items) == 0 {
		return 0, 0, false
	}
	return q.items[0].time, q.items[0].seq, true
}

// Pop removes and returns the earliest event.
// ok is false when the queue is empty.
func (q *Queue[T]) Pop() (t float64, v T, ok bool) {
	if len(q.items) == 0 {
		var zero T
		return 0, zero, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	// Clear the vacated slot so payloads don't pin garbage.
	var zero item[T]
	q.items[last] = zero
	q.items = q.items[:last]
	if len(q.items) > 0 {
		q.down(0)
	}
	return top.time, top.payload, true
}

// PushPop schedules payload v at time t and immediately removes the
// earliest event — exactly equivalent to Push(t, v) followed by Pop(),
// including the FIFO tie-break (the new event gets the next sequence
// number, so it loses time ties to everything already queued). It is
// the fast path for the pop-then-push-wake cycle that dominates the
// engine's event loop: when the new event is the earliest it never
// touches the heap at all, and otherwise it replaces the root with a
// single sift-down instead of an up-sift plus a down-sift.
// ok is always true: the queue momentarily holds at least the new event.
func (q *Queue[T]) PushPop(t float64, v T) (float64, T, bool) {
	q.seq++
	if len(q.items) == 0 || t < q.items[0].time {
		// The new event is strictly earliest (on a time tie the queued
		// root has the smaller seq and wins), so it would be popped
		// right back out.
		return t, v, true
	}
	top := q.items[0]
	q.items[0] = item[T]{time: t, seq: q.seq, payload: v}
	q.down(0)
	return top.time, top.payload, true
}

// Reset empties the queue, retaining its backing storage for reuse.
func (q *Queue[T]) Reset() {
	var zero item[T]
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
	q.seq = 0
}

func (q *Queue[T]) less(i, j int) bool {
	a, b := &q.items[i], &q.items[j]
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / arity
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		first := arity*i + 1
		if first >= n {
			return
		}
		smallest := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(c, smallest) {
				smallest = c
			}
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
