package simtime

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if q.Len() != 0 {
		t.Errorf("Len() = %d, want 0", q.Len())
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek() on empty queue reported ok")
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop() on empty queue reported ok")
	}
}

func TestOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	want := []string{"a", "b", "c"}
	for i, w := range want {
		tm, v, ok := q.Pop()
		if !ok || v != w || tm != float64(i+1) {
			t.Fatalf("pop %d = (%v, %q, %v), want (%d, %q, true)", i, tm, v, ok, i+1, w)
		}
	}
}

func TestFIFOTieBreaking(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 50; i++ {
		q.Push(7, i)
	}
	q.Push(1, 999)
	if _, v, _ := q.Pop(); v != 999 {
		t.Fatalf("earliest event not popped first, got %d", v)
	}
	for i := 0; i < 50; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("tie pop %d = %d, want insertion order", i, v)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(5, 1)
	if tm, ok := q.Peek(); !ok || tm != 5 {
		t.Fatalf("Peek() = (%v, %v)", tm, ok)
	}
	if q.Len() != 1 {
		t.Errorf("Peek removed the event")
	}
}

func TestReset(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(float64(i), i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Errorf("Len() after Reset = %d", q.Len())
	}
	q.Push(1, 42)
	if _, v, ok := q.Pop(); !ok || v != 42 {
		t.Error("queue unusable after Reset")
	}
}

// Property: for any sequence of pushes, pops come out sorted by time,
// and equal times preserve insertion order.
func TestHeapProperty(t *testing.T) {
	prop := func(timesRaw []uint16) bool {
		var q Queue[int]
		times := make([]float64, len(timesRaw))
		for i, r := range timesRaw {
			times[i] = float64(r % 100) // force plenty of ties
			q.Push(times[i], i)
		}
		type popped struct {
			t   float64
			seq int
		}
		var out []popped
		for {
			tm, v, ok := q.Pop()
			if !ok {
				break
			}
			out = append(out, popped{tm, v})
		}
		if len(out) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(out, func(i, j int) bool {
			if out[i].t != out[j].t {
				return out[i].t < out[j].t
			}
			return out[i].seq < out[j].seq
		}) {
			return false
		}
		// The multiset of times must be preserved.
		sort.Float64s(times)
		for i, p := range out {
			if p.t != times[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved pushes and pops never return an element earlier
// than one already returned.
func TestInterleavedProperty(t *testing.T) {
	prop := func(ops []int16) bool {
		var q Queue[int]
		last := -1.0
		pending := 0
		for i, op := range ops {
			if op >= 0 {
				tm := float64(op)
				if tm < last {
					tm = last // future events only, like the simulator
				}
				q.Push(tm, i)
				pending++
			} else if pending > 0 {
				tm, _, ok := q.Pop()
				if !ok || tm < last {
					return false
				}
				last = tm
				pending--
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeDrain(t *testing.T) {
	var q Queue[int]
	const n = 10000
	for i := 0; i < n; i++ {
		q.Push(float64((i*2654435761)%997), i)
	}
	prev := -1.0
	count := 0
	for {
		tm, _, ok := q.Pop()
		if !ok {
			break
		}
		if tm < prev {
			t.Fatalf("out of order: %v after %v", tm, prev)
		}
		prev = tm
		count++
	}
	if count != n {
		t.Errorf("drained %d events, want %d", count, n)
	}
}
