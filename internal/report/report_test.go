package report

import (
	"strings"
	"testing"

	"semicont/internal/stats"
)

func sampleSeries() []stats.Series {
	return []stats.Series{
		{Name: "a", Points: []stats.Point{{X: 0, Mean: 0.5, CI95: 0.01}, {X: 1, Mean: 0.9, CI95: 0.02}}},
		{Name: "b", Points: []stats.Point{{X: 0, Mean: 0.6, CI95: 0.01}, {X: 1, Mean: 0.95, CI95: 0.005}}},
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"col", "value"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("longer-cell", "2")
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5 (title, header, rule, 2 rows):\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "col") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("rule = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	off := strings.Index(lines[1], "value")
	if off < 0 {
		t.Fatalf("no value column")
	}
	if lines[3][off:off+1] != "1" || lines[4][off:off+1] != "2" {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"h"}}
	tbl.AddRow("v")
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(b.String(), "\n") {
		t.Error("leading blank line without title")
	}
}

func TestSeriesTable(t *testing.T) {
	tbl, err := SeriesTable("fig", "x", sampleSeries())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Headers) != 3 || tbl.Headers[0] != "x" || tbl.Headers[1] != "a" {
		t.Errorf("headers = %v", tbl.Headers)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[0][1] != "0.5000 ±0.0100" {
		t.Errorf("cell = %q", tbl.Rows[0][1])
	}
}

func TestSeriesTableErrors(t *testing.T) {
	if _, err := SeriesTable("t", "x", nil); err == nil {
		t.Error("empty series accepted")
	}
	uneven := sampleSeries()
	uneven[1].Points = uneven[1].Points[:1]
	if _, err := SeriesTable("t", "x", uneven); err == nil {
		t.Error("length mismatch accepted")
	}
	shifted := sampleSeries()
	shifted[1].Points[1].X = 99
	if _, err := SeriesTable("t", "x", shifted); err == nil {
		t.Error("x mismatch accepted")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "theta", sampleSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3", len(lines))
	}
	if lines[0] != "theta,a_mean,a_ci95,b_mean,b_ci95" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0.500000,0.010000,") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteSeriesCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "x", nil); err == nil {
		t.Error("empty series accepted")
	}
	uneven := sampleSeries()
	uneven[1].Points = uneven[1].Points[:1]
	if err := WriteSeriesCSV(&b, "x", uneven); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPad(t *testing.T) {
	if pad("ab", 4) != "ab  " {
		t.Errorf("pad = %q", pad("ab", 4))
	}
	if pad("abcd", 2) != "abcd" {
		t.Errorf("overlong pad = %q", pad("abcd", 2))
	}
}
