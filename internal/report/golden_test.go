package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"semicont/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update. Byte-exact comparison is the point: the renderers feed both
// terminals and CSV consumers, so column alignment, separators, and
// float formatting are all part of the contract.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// fixedSeries returns two deterministic curves sharing an x grid,
// including values that exercise the formatting edge cases: zero CI,
// negative means, and x values with differing precision.
func fixedSeries() []stats.Series {
	return []stats.Series{
		{Name: "no migration", Points: []stats.Point{
			{X: -1.5, Mean: 0.7312, CI95: 0.0123},
			{X: 0, Mean: 0.85, CI95: 0},
			{X: 0.75, Mean: 0.9001, CI95: 0.0009},
		}},
		{Name: "hops=1", Points: []stats.Point{
			{X: -1.5, Mean: 0.9123, CI95: 0.0456},
			{X: 0, Mean: 0.95, CI95: 0.002},
			{X: 0.75, Mean: -0.25, CI95: 0.1},
		}},
	}
}

func TestTableWriteGolden(t *testing.T) {
	tbl := &Table{
		Title:   "Cluster parameters",
		Headers: []string{"Parameter", "Small", "Large"},
	}
	tbl.AddRow("Number of Servers", "5", "20")
	tbl.AddRow("Server Bandwidth (Mb/s)", "100", "1000")
	tbl.AddRow("Video Length", "10-30 min", "1-2 hr")
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "table.golden", buf.Bytes())
}

func TestSeriesTableGolden(t *testing.T) {
	tbl, err := SeriesTable("Figure 4: effect of DRM", "theta", fixedSeries())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "series_table.golden", buf.Bytes())
}

func TestWriteSeriesCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "theta", fixedSeries()); err != nil {
		t.Fatal(err)
	}
	golden(t, "series.csv.golden", buf.Bytes())
}
