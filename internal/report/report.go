// Package report renders experiment results as aligned ASCII tables
// (the rows/series the paper's figures plot) and as CSV for external
// plotting.
package report

import (
	"fmt"
	"io"
	"strings"

	"semicont/internal/stats"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table to w.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SeriesTable renders a set of curves sharing x values as one table:
// first column x, one column per series (mean ± CI half-width). Series
// carrying quantiles (any point with a non-nil Q) get three extra
// columns — p50/p95/p99 — appended after all the mean columns, so
// outputs without quantiles render byte-identically to before quantiles
// existed and existing columns never reorder.
func SeriesTable(title, xLabel string, series []stats.Series) (*Table, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("report: no series")
	}
	n := len(series[0].Points)
	for _, s := range series {
		if len(s.Points) != n {
			return nil, fmt.Errorf("report: series %q has %d points, want %d", s.Name, len(s.Points), n)
		}
	}
	headers := append([]string{xLabel}, names(series)...)
	for _, s := range series {
		if hasQuantiles(s) {
			headers = append(headers, s.Name+" p50", s.Name+" p95", s.Name+" p99")
		}
	}
	t := &Table{Title: title, Headers: headers}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%g", series[0].Points[i].X)}
		for _, s := range series {
			p := s.Points[i]
			if p.X != series[0].Points[i].X {
				return nil, fmt.Errorf("report: series %q x mismatch at %d: %g vs %g", s.Name, i, p.X, series[0].Points[i].X)
			}
			row = append(row, fmt.Sprintf("%.4f ±%.4f", p.Mean, p.CI95))
		}
		for _, s := range series {
			if !hasQuantiles(s) {
				continue
			}
			if q := s.Points[i].Q; q != nil {
				row = append(row,
					fmt.Sprintf("%.4f", q.P50), fmt.Sprintf("%.4f", q.P95), fmt.Sprintf("%.4f", q.P99))
			} else {
				row = append(row, "", "", "")
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// hasQuantiles reports whether any point of s carries quantiles.
func hasQuantiles(s stats.Series) bool {
	for _, p := range s.Points {
		if p.Q != nil {
			return true
		}
	}
	return false
}

func names(series []stats.Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Name
	}
	return out
}

// WriteSeriesCSV emits curves sharing x values as CSV: an x column, then
// mean and ci95 columns per series. As in SeriesTable, series carrying
// quantiles append p50/p95/p99 columns after all the mean/ci pairs, so
// quantile-free outputs stay byte-identical.
func WriteSeriesCSV(w io.Writer, xLabel string, series []stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series")
	}
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name+"_mean", s.Name+"_ci95")
	}
	for _, s := range series {
		if hasQuantiles(s) {
			cols = append(cols, s.Name+"_p50", s.Name+"_p95", s.Name+"_p99")
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	n := len(series[0].Points)
	for i := 0; i < n; i++ {
		cells := []string{fmt.Sprintf("%g", series[0].Points[i].X)}
		for _, s := range series {
			if len(s.Points) != n {
				return fmt.Errorf("report: series %q has %d points, want %d", s.Name, len(s.Points), n)
			}
			p := s.Points[i]
			cells = append(cells, fmt.Sprintf("%.6f", p.Mean), fmt.Sprintf("%.6f", p.CI95))
		}
		for _, s := range series {
			if !hasQuantiles(s) {
				continue
			}
			if q := s.Points[i].Q; q != nil {
				cells = append(cells,
					fmt.Sprintf("%.6f", q.P50), fmt.Sprintf("%.6f", q.P95), fmt.Sprintf("%.6f", q.P99))
			} else {
				cells = append(cells, "", "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
