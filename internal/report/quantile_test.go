package report

import (
	"strings"
	"testing"

	"semicont/internal/stats"
)

func quantileSeries() []stats.Series {
	return []stats.Series{
		{Name: "util", Points: []stats.Point{
			{X: 0, Mean: 0.5, CI95: 0.01}, {X: 1, Mean: 0.9, CI95: 0.02}}},
		{Name: "wait", Points: []stats.Point{
			{X: 0, Mean: 1.5, CI95: 0.1, Q: &stats.Quantiles{P50: 1.0, P95: 4.0, P99: 9.0}},
			{X: 1, Mean: 2.5, CI95: 0.2, Q: &stats.Quantiles{P50: 2.0, P95: 6.0, P99: 12.0}}}},
	}
}

// TestSeriesTableQuantileColumns checks that series carrying quantiles
// get p50/p95/p99 columns appended after every mean column, and that
// quantile-free series contribute none (so pre-quantile outputs stay
// byte-identical — the goldens in golden_test.go pin that directly).
func TestSeriesTableQuantileColumns(t *testing.T) {
	tbl, err := SeriesTable("t", "x", quantileSeries())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "util", "wait", "wait p50", "wait p95", "wait p99"}
	if len(tbl.Headers) != len(want) {
		t.Fatalf("headers = %v, want %v", tbl.Headers, want)
	}
	for i, h := range want {
		if tbl.Headers[i] != h {
			t.Fatalf("header[%d] = %q, want %q", i, tbl.Headers[i], h)
		}
	}
	if got := tbl.Rows[1][3]; got != "2.0000" {
		t.Errorf("p50 cell = %q, want 2.0000", got)
	}
	if got := tbl.Rows[0][5]; got != "9.0000" {
		t.Errorf("p99 cell = %q, want 9.0000", got)
	}
}

func TestSeriesTableWithoutQuantilesUnchanged(t *testing.T) {
	tbl, err := SeriesTable("t", "x", sampleSeries())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Headers) != 3 {
		t.Fatalf("quantile-free table grew columns: %v", tbl.Headers)
	}
	for _, row := range tbl.Rows {
		if len(row) != 3 {
			t.Fatalf("quantile-free row grew cells: %v", row)
		}
	}
}

func TestSeriesCSVQuantileColumns(t *testing.T) {
	var b strings.Builder
	if err := WriteSeriesCSV(&b, "x", quantileSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	wantHeader := "x,util_mean,util_ci95,wait_mean,wait_ci95,wait_p50,wait_p95,wait_p99"
	if lines[0] != wantHeader {
		t.Fatalf("header = %q, want %q", lines[0], wantHeader)
	}
	if !strings.HasSuffix(lines[1], "1.000000,4.000000,9.000000") {
		t.Errorf("row 0 = %q missing quantile cells", lines[1])
	}

	// A point with a nil Q in a quantile-bearing series renders empty
	// cells rather than zeros.
	series := quantileSeries()
	series[1].Points[1].Q = nil
	b.Reset()
	if err := WriteSeriesCSV(&b, "x", series); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if !strings.HasSuffix(lines[2], ",,,") {
		t.Errorf("nil-Q row = %q, want trailing empty cells", lines[2])
	}
}
