package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if Minute != 60 {
		t.Errorf("Minute = %v, want 60", Minute)
	}
	if Hour != 3600 {
		t.Errorf("Hour = %v, want 3600", Hour)
	}
	if MbPerGB != 8000 {
		t.Errorf("MbPerGB = %v, want 8000", MbPerGB)
	}
}

func TestGB(t *testing.T) {
	if got := GB(100); got != 800000 {
		t.Errorf("GB(100) = %v, want 800000 Mb", got)
	}
	if got := GB(0.5); got != 4000 {
		t.Errorf("GB(0.5) = %v, want 4000 Mb", got)
	}
}

func TestMinutesHours(t *testing.T) {
	if got := Minutes(30); got != 1800 {
		t.Errorf("Minutes(30) = %v, want 1800", got)
	}
	if got := Hours(2); got != 7200 {
		t.Errorf("Hours(2) = %v, want 7200", got)
	}
}

func TestOver(t *testing.T) {
	if got := Over(300, 3); got != 100 {
		t.Errorf("Over(300, 3) = %v, want 100 s", got)
	}
}

func TestOverPanicsOnNonPositiveRate(t *testing.T) {
	for _, r := range []Mbps{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Over(1, %v) did not panic", r)
				}
			}()
			Over(1, r)
		}()
	}
}

func TestTransferred(t *testing.T) {
	if got := Transferred(3, 60); got != 180 {
		t.Errorf("Transferred(3, 60) = %v, want 180 Mb", got)
	}
}

// Transferred and Over are inverses for positive rates and volumes.
func TestTransferredOverRoundTrip(t *testing.T) {
	prop := func(v, r float64) bool {
		vol := Megabits(math.Abs(v) + 0.001)
		rate := Mbps(math.Abs(r) + 0.001)
		back := Transferred(rate, Over(vol, rate))
		return math.Abs(float64(back-vol)) < 1e-9*math.Max(1, float64(vol))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Megabits(16000).String(), "2.00 GB"},
		{Megabits(12).String(), "12.0 Mb"},
		{Megabits(0.5).String(), "0.500 Mb"},
		{Mbps(3).String(), "3.0 Mb/s"},
		{Seconds(7200).String(), "2.00 h"},
		{Seconds(90).String(), "1.5 min"},
		{Seconds(12).String(), "12.0 s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
