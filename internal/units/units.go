// Package units defines the unit conventions used throughout the
// simulator and helpers for converting between them.
//
// Conventions (matching the paper):
//
//   - data volumes are measured in megabits (Mb),
//   - bandwidth in megabits per second (Mb/s),
//   - simulated time in seconds.
//
// All quantities are float64 because the simulator uses a fluid-flow
// model: data is a continuous quantity transmitted at piecewise-constant
// rates. The named types below are used at API boundaries for
// documentation value; hot simulation paths operate on plain float64
// with the same conventions.
package units

import "fmt"

// Megabits is a volume of data in megabits (decimal, 10^6 bits).
type Megabits float64

// Mbps is a bandwidth in megabits per second.
type Mbps float64

// Seconds is a span of simulated time in seconds.
type Seconds float64

// Common time spans, in seconds.
const (
	Second Seconds = 1
	Minute Seconds = 60
	Hour   Seconds = 3600
)

// MbPerGB converts between storage sizes quoted in gigabytes (as the
// paper's Figure 3 does) and megabits. Decimal units: 1 GB = 8000 Mb.
const MbPerGB = 8000.0

// GB returns a data volume of g gigabytes expressed in megabits.
func GB(g float64) Megabits { return Megabits(g * MbPerGB) }

// Minutes returns a time span of m minutes.
func Minutes(m float64) Seconds { return Seconds(m) * Minute }

// Hours returns a time span of h hours.
func Hours(h float64) Seconds { return Seconds(h) * Hour }

// Over returns the time needed to move v megabits at rate r.
// It panics if r is not positive: transferring data at a non-positive
// rate never completes, and callers are expected to guard against it.
func Over(v Megabits, r Mbps) Seconds {
	if r <= 0 {
		panic(fmt.Sprintf("units: non-positive rate %v Mb/s", float64(r)))
	}
	return Seconds(float64(v) / float64(r))
}

// Transferred returns the volume moved at rate r for duration d.
func Transferred(r Mbps, d Seconds) Megabits {
	return Megabits(float64(r) * float64(d))
}

// String implementations make configuration dumps and traces readable.

func (v Megabits) String() string {
	switch {
	case v >= MbPerGB:
		return fmt.Sprintf("%.2f GB", float64(v)/MbPerGB)
	case v >= 1:
		return fmt.Sprintf("%.1f Mb", float64(v))
	default:
		return fmt.Sprintf("%.3f Mb", float64(v))
	}
}

func (r Mbps) String() string { return fmt.Sprintf("%.1f Mb/s", float64(r)) }

func (s Seconds) String() string {
	switch {
	case s >= Hour:
		return fmt.Sprintf("%.2f h", float64(s)/float64(Hour))
	case s >= Minute:
		return fmt.Sprintf("%.1f min", float64(s)/float64(Minute))
	default:
		return fmt.Sprintf("%.1f s", float64(s))
	}
}
