package analytic

import (
	"fmt"
	"math"
)

// Cluster-level analytical model: an Erlang fixed-point (reduced-load)
// approximation extending the paper's single-server validation to the
// whole cluster under continuous transmission (no staging, no
// migration — policy P1).
//
// Model assumptions, in the tradition of Kelly's fixed-point analysis
// of alternative routing:
//
//  1. each server s blocks like an independent M/G/k/k loss system with
//     blocking probability B_s = ErlangB(k_s, ρ_s);
//  2. video v's offered load a_v = λ·p_v·E[L_v] Erlangs splits across
//     its replica holders in proportion to their admission probability
//     (1 − B_s) — a tractable stand-in for the simulator's
//     least-loaded routing, which equalizes load in the same
//     direction;
//  3. a request for v is lost only if every holder blocks
//     simultaneously, with independence across servers:
//     L_v = Π_{s ∈ H_v} B_s.
//
// Iterating (1)–(2) to a fixed point yields per-server loads and a
// system utilization estimate Σ_v a_v·(1 − L_v)·h / C. The independence
// assumption ignores the positive correlation the shared workload
// induces (and the approximation of least-loaded routing is crude), so
// the estimate is optimistic under skew; the experiment E-ANA measures
// exactly how far.
type ClusterModel struct {
	// Slots per server (⌊bandwidth/b_view⌋).
	Slots []int
	// Load[v] is video v's total offered load in Erlangs.
	Load []float64
	// Holders[v] lists the servers storing video v.
	Holders [][]int
}

// Validate reports model specification errors.
func (m *ClusterModel) Validate() error {
	if len(m.Slots) == 0 {
		return fmt.Errorf("analytic: no servers")
	}
	for s, k := range m.Slots {
		if k <= 0 {
			return fmt.Errorf("analytic: server %d has %d slots", s, k)
		}
	}
	if len(m.Load) != len(m.Holders) {
		return fmt.Errorf("analytic: %d loads for %d videos", len(m.Load), len(m.Holders))
	}
	for v, hs := range m.Holders {
		if m.Load[v] < 0 || math.IsNaN(m.Load[v]) {
			return fmt.Errorf("analytic: video %d load %g", v, m.Load[v])
		}
		if len(hs) == 0 {
			return fmt.Errorf("analytic: video %d has no holders", v)
		}
		for _, s := range hs {
			if s < 0 || s >= len(m.Slots) {
				return fmt.Errorf("analytic: video %d on unknown server %d", v, s)
			}
		}
	}
	return nil
}

// Solution is the fixed point of the reduced-load iteration.
type Solution struct {
	// Blocking[s] is server s's Erlang-B blocking probability.
	Blocking []float64
	// VideoLoss[v] is the probability a request for video v is lost.
	VideoLoss []float64
	// Utilization is carried load over capacity, the paper's metric.
	Utilization float64
	// Iterations the fixed point needed.
	Iterations int
}

// Solve iterates the reduced-load approximation to convergence
// (successive substitution with damping; the map is a contraction in
// practice for loss networks of this kind).
func (m *ClusterModel) Solve() (*Solution, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nS := len(m.Slots)
	B := make([]float64, nS)
	rho := make([]float64, nS)
	const (
		maxIter = 1000
		tol     = 1e-10
		damping = 0.5
	)
	var iter int
	for iter = 0; iter < maxIter; iter++ {
		// Split each video's load over its holders by admission
		// probability.
		for s := range rho {
			rho[s] = 0
		}
		for v, hs := range m.Holders {
			totalAdmit := 0.0
			for _, s := range hs {
				totalAdmit += 1 - B[s]
			}
			if totalAdmit <= 0 {
				// Every holder fully blocked: split evenly.
				for _, s := range hs {
					rho[s] += m.Load[v] / float64(len(hs))
				}
				continue
			}
			for _, s := range hs {
				rho[s] += m.Load[v] * (1 - B[s]) / totalAdmit
			}
		}
		// Update blocking probabilities with damping.
		delta := 0.0
		for s := range B {
			nb, err := ErlangB(m.Slots[s], rho[s])
			if err != nil {
				return nil, err
			}
			next := damping*nb + (1-damping)*B[s]
			if d := math.Abs(next - B[s]); d > delta {
				delta = d
			}
			B[s] = next
		}
		if delta < tol {
			break
		}
	}

	sol := &Solution{
		Blocking:   B,
		VideoLoss:  make([]float64, len(m.Load)),
		Iterations: iter + 1,
	}
	capacity := 0.0
	for _, k := range m.Slots {
		capacity += float64(k)
	}
	carried := 0.0
	for v, hs := range m.Holders {
		loss := 1.0
		for _, s := range hs {
			loss *= B[s]
		}
		sol.VideoLoss[v] = loss
		carried += m.Load[v] * (1 - loss)
	}
	// The independence product can under-count joint blocking badly
	// enough that the implied carried load exceeds physical capacity
	// (deep overload); clamp to keep the estimate meaningful.
	if carried > capacity {
		carried = capacity
	}
	sol.Utilization = carried / capacity
	return sol, nil
}

// NoSharing returns the carried load (in Erlangs) if every video's
// offered load split evenly among its holders and servers blocked
// independently with no overflow — the "partitioned" end of the
// sharing spectrum, a heuristic lower bracket on the real system.
func (m *ClusterModel) NoSharing() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	rho := make([]float64, len(m.Slots))
	for v, hs := range m.Holders {
		for _, s := range hs {
			rho[s] += m.Load[v] / float64(len(hs))
		}
	}
	carried := 0.0
	for s, k := range m.Slots {
		b, err := ErlangB(k, rho[s])
		if err != nil {
			return 0, err
		}
		carried += rho[s] * (1 - b)
	}
	return carried, nil
}

// CompleteSharing returns the carried load (in Erlangs) if the cluster
// pooled every slot into one big loss system — the upper bracket: no
// replication constraint can carry more than full sharing.
func (m *ClusterModel) CompleteSharing() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	slots, load := 0, 0.0
	for _, k := range m.Slots {
		slots += k
	}
	for _, a := range m.Load {
		load += a
	}
	b, err := ErlangB(slots, load)
	if err != nil {
		return 0, err
	}
	return load * (1 - b), nil
}
