// Package analytic implements the closed-form performance model the
// paper uses to validate its simulator (Section 3.2 and the full
// version [5]): the expected utilization of a single video server as a
// function of its server-to-view bandwidth ratio (SVBR).
//
// Without staging or migration, a single server under minimum-flow
// admission is an M/G/k/k loss system: k = ⌊SVBR⌋ slots, Poisson
// arrivals, arbitrarily distributed holding times (video lengths), and
// blocked requests are lost. By the Erlang insensitivity property the
// blocking probability depends on the holding-time distribution only
// through its mean, so the Erlang-B formula applies exactly. With the
// paper's calibration (offered load = capacity, i.e. a = k Erlangs),
//
//	E[utilization] = (a/k) · (1 − B(k, a)) = 1 − B(k, k).
//
// The experiment E-SVBR compares the simulator against this curve; the
// close match validates both (as the paper reports of its own results).
package analytic

import (
	"fmt"
	"math"
)

// ErlangB returns the blocking probability B(k, a) of an M/G/k/k loss
// system with k servers and offered load a Erlangs, computed with the
// numerically stable recurrence
//
//	B(0, a) = 1,  B(n, a) = a·B(n−1, a) / (n + a·B(n−1, a)).
func ErlangB(k int, a float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("analytic: negative server count %d", k)
	}
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("analytic: invalid offered load %g", a)
	}
	b := 1.0
	for n := 1; n <= k; n++ {
		b = a * b / (float64(n) + a*b)
	}
	return b, nil
}

// ErlangBDirect evaluates B(k, a) from its defining sum,
// (a^k/k!) / Σ_{n=0..k} a^n/n!, computed in log space to avoid
// overflow. It exists to cross-check the recurrence in tests.
func ErlangBDirect(k int, a float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("analytic: negative server count %d", k)
	}
	if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
		return 0, fmt.Errorf("analytic: invalid offered load %g", a)
	}
	if a == 0 {
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	}
	// log(a^n/n!) accumulated incrementally; normalize by the max term
	// for a stable sum.
	logTerms := make([]float64, k+1)
	logTerm := 0.0
	maxLog := 0.0
	for n := 1; n <= k; n++ {
		logTerm += math.Log(a) - math.Log(float64(n))
		logTerms[n] = logTerm
		if logTerm > maxLog {
			maxLog = logTerm
		}
	}
	sum := 0.0
	for _, lt := range logTerms {
		sum += math.Exp(lt - maxLog)
	}
	return math.Exp(logTerms[k]-maxLog) / sum, nil
}

// ExpectedUtilization returns the expected bandwidth utilization of a
// single server with k minimum-flow slots under the paper's calibrated
// workload (offered load = capacity): (a/k)·(1 − B(k, a)) with a = k·ρ,
// where ρ is the load factor (1.0 in the paper's experiments).
func ExpectedUtilization(k int, rho float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("analytic: server needs at least one slot, got %d", k)
	}
	if rho <= 0 {
		return 0, fmt.Errorf("analytic: load factor must be positive, got %g", rho)
	}
	a := float64(k) * rho
	b, err := ErlangB(k, a)
	if err != nil {
		return 0, err
	}
	return rho * (1 - b), nil
}
