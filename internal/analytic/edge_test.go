package analytic

import (
	"math"
	"testing"
)

func TestEdgeModelEgressRate(t *testing.T) {
	m := &EdgeModel{
		Rate:     []float64{0.1, 0.05},
		SizeMb:   []float64{3600, 1800},
		PrefixMb: []float64{900, 1800},
	}
	got, err := m.EgressRate()
	if err != nil {
		t.Fatal(err)
	}
	// Unicast: 0.1·(3600−900) + 0.05·0 = 270.
	if want := 270.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("unicast egress = %g, want %g", got, want)
	}
	m.WindowSec = 100
	got, err = m.EgressRate()
	if err != nil {
		t.Fatal(err)
	}
	// Batched: 0.1/(1+10)·2700 = 270/11.
	if want := 270.0 / 11; math.Abs(got-want) > 1e-9 {
		t.Errorf("batched egress = %g, want %g", got, want)
	}
}

// TestEdgeModelMonotone pins the bound's qualitative shape: it falls as
// prefixes grow and as the batching window widens, and never below zero.
func TestEdgeModelMonotone(t *testing.T) {
	base := &EdgeModel{
		Rate:     []float64{0.2, 0.1, 0.01},
		SizeMb:   []float64{5400, 3600, 1800},
		PrefixMb: []float64{0, 0, 0},
	}
	prev, err := base.EgressRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{500, 1000, 1800} {
		for v := range base.PrefixMb {
			base.PrefixMb[v] = p
		}
		got, err := base.EgressRate()
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Errorf("prefix %g: egress %g not below %g", p, got, prev)
		}
		prev = got
	}
	for _, w := range []float64{10, 100, 1000} {
		m := *base
		m.WindowSec = w
		got, err := m.EgressRate()
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev || got < 0 {
			t.Errorf("window %g: egress %g not below %g (or negative)", w, got, prev)
		}
		prev = got
	}
}

func TestEdgeModelValidate(t *testing.T) {
	ok := func() *EdgeModel {
		return &EdgeModel{
			Rate:     []float64{0.1},
			SizeMb:   []float64{3600},
			PrefixMb: []float64{900},
		}
	}
	cases := []struct {
		name string
		mut  func(*EdgeModel)
	}{
		{"empty", func(m *EdgeModel) { m.Rate = nil }},
		{"length mismatch", func(m *EdgeModel) { m.SizeMb = []float64{1, 2} }},
		{"negative rate", func(m *EdgeModel) { m.Rate[0] = -1 }},
		{"nan rate", func(m *EdgeModel) { m.Rate[0] = math.NaN() }},
		{"zero size", func(m *EdgeModel) { m.SizeMb[0] = 0 }},
		{"negative prefix", func(m *EdgeModel) { m.PrefixMb[0] = -1 }},
		{"prefix beyond size", func(m *EdgeModel) { m.PrefixMb[0] = 3601 }},
		{"negative window", func(m *EdgeModel) { m.WindowSec = -1 }},
		{"inf window", func(m *EdgeModel) { m.WindowSec = math.Inf(1) }},
	}
	if err := ok().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	for _, c := range cases {
		m := ok()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, err := m.EgressRate(); err == nil {
			t.Errorf("%s: EgressRate accepted", c.name)
		}
	}
}
