package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangBKnownValues(t *testing.T) {
	cases := []struct {
		k    int
		a    float64
		want float64
	}{
		{0, 5, 1},   // no servers: everything blocks
		{1, 1, 0.5}, // B(1,1) = 1/(1+1)
		{2, 1, 0.2}, // B(2,1) = 0.5/(2+0.5) = 1/5
		{1, 0, 0},   // no load: no blocking
		{5, 0, 0},
		{2, 2, 0.4}, // B(2,2): b1=2/3, b2=(2·2/3)/(2+4/3)=0.4
	}
	for _, c := range cases {
		got, err := ErlangB(c.k, c.a)
		if err != nil {
			t.Fatalf("ErlangB(%d, %g): %v", c.k, c.a, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ErlangB(%d, %g) = %v, want %v", c.k, c.a, got, c.want)
		}
	}
}

func TestErlangBErrors(t *testing.T) {
	if _, err := ErlangB(-1, 1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := ErlangB(1, -1); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := ErlangB(1, math.NaN()); err == nil {
		t.Error("NaN load accepted")
	}
	if _, err := ErlangBDirect(-1, 1); err == nil {
		t.Error("direct: negative k accepted")
	}
	if _, err := ErlangBDirect(1, math.Inf(1)); err == nil {
		t.Error("direct: infinite load accepted")
	}
}

// The recurrence and the direct log-space sum must agree, including at
// large k where the naive factorial formula would overflow.
func TestRecurrenceMatchesDirect(t *testing.T) {
	prop := func(kRaw uint8, aRaw uint16) bool {
		k := int(kRaw%200) + 1
		a := float64(aRaw%3000)/10 + 0.1
		r, err1 := ErlangB(k, a)
		d, err2 := ErlangBDirect(k, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r-d) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErlangBMonotoneInServers(t *testing.T) {
	// More slots at fixed load → less blocking.
	prev := 1.1
	for k := 1; k <= 50; k++ {
		b, err := ErlangB(k, 10)
		if err != nil {
			t.Fatal(err)
		}
		if b >= prev {
			t.Fatalf("B(%d, 10) = %v not below B(%d) = %v", k, b, k-1, prev)
		}
		prev = b
	}
}

func TestErlangBMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for a := 0.5; a <= 50; a += 0.5 {
		b, err := ErlangB(20, a)
		if err != nil {
			t.Fatal(err)
		}
		if b <= prev {
			t.Fatalf("B(20, %g) = %v not above %v", a, b, prev)
		}
		prev = b
	}
}

func TestExpectedUtilization(t *testing.T) {
	// SVBR 1 at full load: utilization = 1 − B(1,1) = 0.5.
	u, err := ExpectedUtilization(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("ExpectedUtilization(1, 1) = %v, want 0.5", u)
	}
	// Utilization grows with SVBR (the paper's Section 3.2 claim) and
	// approaches 1.
	prev := 0.0
	for _, k := range []int{1, 2, 5, 10, 33, 100, 200, 500} {
		u, err := ExpectedUtilization(k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if u <= prev || u >= 1 {
			t.Fatalf("ExpectedUtilization(%d) = %v, prev %v", k, u, prev)
		}
		prev = u
	}
	if prev < 0.94 {
		t.Errorf("utilization at SVBR 500 = %v, expected near 1", prev)
	}
}

func TestExpectedUtilizationLightLoad(t *testing.T) {
	// At 50% offered load and generous slots, utilization ≈ 0.5.
	u, err := ExpectedUtilization(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u-0.5) > 1e-6 {
		t.Errorf("ExpectedUtilization(100, 0.5) = %v, want ≈0.5", u)
	}
}

func TestExpectedUtilizationErrors(t *testing.T) {
	if _, err := ExpectedUtilization(0, 1); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := ExpectedUtilization(10, 0); err == nil {
		t.Error("zero load accepted")
	}
}
