package analytic

import (
	"fmt"
	"math"
)

// Edge-tier egress lower bound: the hierarchical argument of the
// scalable-VoD literature applied to this simulator's two-tier model.
// With video v's first PrefixMb[v] megabits pinned at the edge, the
// cluster ships only suffixes, and a batching window of W seconds
// merges every request arriving within W of an ongoing suffix stream
// into it. For a Poisson arrival stream of rate λ_v, suffix streams
// therefore start at rate λ_v/(1 + λ_v·W) — the renewal rate of
// "batch leaders", each of which opens a window absorbing the
// λ_v·W expected followers — and each stream ships S_v − P_v Mb.
// Hence the long-run cluster egress rate is at least
//
//	Σ_v  λ_v/(1 + λ_v·W) · (S_v − P_v)   Mb/s,
//
// with equality when every request is admitted and every join the
// window permits actually happens. W = 0 degenerates to the unicast
// bound Σ_v λ_v·(S_v − P_v). The bound is hierarchical in the sense
// that it charges the cluster only for bytes no lower tier can supply;
// any real run pays at least this (denials only remove egress the
// bound already charged, so the cross-check experiment holds denial
// near zero).
type EdgeModel struct {
	// Rate[v] is video v's Poisson arrival rate in requests/second
	// (total cluster arrival rate × popularity).
	Rate []float64
	// SizeMb[v] is video v's object size in Mb.
	SizeMb []float64
	// PrefixMb[v] is the edge-cached prefix of video v in Mb — zero for
	// uncached videos, at most SizeMb[v] for cached ones (use
	// edge.GreedyFill to reproduce the static-zipf content exactly).
	PrefixMb []float64
	// WindowSec is the batching window W in seconds (0 = unicast).
	WindowSec float64
}

// Validate reports model specification errors.
func (m *EdgeModel) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	if len(m.Rate) == 0 {
		return fmt.Errorf("analytic: no videos")
	}
	if len(m.SizeMb) != len(m.Rate) || len(m.PrefixMb) != len(m.Rate) {
		return fmt.Errorf("analytic: %d rates, %d sizes, %d prefixes",
			len(m.Rate), len(m.SizeMb), len(m.PrefixMb))
	}
	for v := range m.Rate {
		switch {
		case bad(m.Rate[v]) || m.Rate[v] < 0:
			return fmt.Errorf("analytic: video %d rate %g", v, m.Rate[v])
		case bad(m.SizeMb[v]) || m.SizeMb[v] <= 0:
			return fmt.Errorf("analytic: video %d size %g", v, m.SizeMb[v])
		case bad(m.PrefixMb[v]) || m.PrefixMb[v] < 0 || m.PrefixMb[v] > m.SizeMb[v]:
			return fmt.Errorf("analytic: video %d prefix %g outside [0, %g]",
				v, m.PrefixMb[v], m.SizeMb[v])
		}
	}
	if bad(m.WindowSec) || m.WindowSec < 0 {
		return fmt.Errorf("analytic: negative window %g", m.WindowSec)
	}
	return nil
}

// EgressRate returns the lower bound on the long-run cluster egress
// rate in Mb/s (see the type comment for the derivation).
func (m *EdgeModel) EgressRate() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for v, rate := range m.Rate {
		total += rate / (1 + rate*m.WindowSec) * (m.SizeMb[v] - m.PrefixMb[v])
	}
	return total, nil
}
