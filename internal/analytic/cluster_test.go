package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClusterModelValidate(t *testing.T) {
	good := &ClusterModel{
		Slots:   []int{10, 10},
		Load:    []float64{5, 5},
		Holders: [][]int{{0}, {0, 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []*ClusterModel{
		{},
		{Slots: []int{0}, Load: []float64{1}, Holders: [][]int{{0}}},
		{Slots: []int{10}, Load: []float64{1, 2}, Holders: [][]int{{0}}},
		{Slots: []int{10}, Load: []float64{-1}, Holders: [][]int{{0}}},
		{Slots: []int{10}, Load: []float64{1}, Holders: [][]int{{}}},
		{Slots: []int{10}, Load: []float64{1}, Holders: [][]int{{3}}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSingleServerReducesToErlangB(t *testing.T) {
	// One server, one video: every formulation must equal 1 − B(k, a).
	m := &ClusterModel{
		Slots:   []int{33},
		Load:    []float64{33},
		Holders: [][]int{{0}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErlangB(33, 33)
	if err != nil {
		t.Fatal(err)
	}
	want := 33 * (1 - b) / 33
	if math.Abs(sol.Utilization-want) > 1e-9 {
		t.Errorf("fixed-point utilization = %v, want %v", sol.Utilization, want)
	}
	ns, err := m.NoSharing()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.CompleteSharing()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ns-cs) > 1e-9 {
		t.Errorf("single server: no-sharing %v != complete-sharing %v", ns, cs)
	}
	if math.Abs(ns-33*(1-b)) > 1e-9 {
		t.Errorf("no-sharing carried = %v, want %v", ns, 33*(1-b))
	}
}

func TestSymmetricTwoServer(t *testing.T) {
	// Two identical servers, two videos each held by both: by symmetry
	// the fixed point must split the load evenly and converge.
	m := &ClusterModel{
		Slots:   []int{20, 20},
		Load:    []float64{20, 20},
		Holders: [][]int{{0, 1}, {0, 1}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Blocking[0]-sol.Blocking[1]) > 1e-9 {
		t.Errorf("blocking asymmetric: %v vs %v", sol.Blocking[0], sol.Blocking[1])
	}
	if sol.Iterations >= 1000 {
		t.Errorf("fixed point did not converge (%d iterations)", sol.Iterations)
	}
	// With full replication a request is lost only when both servers
	// block: loss = B².
	wantLoss := sol.Blocking[0] * sol.Blocking[1]
	if math.Abs(sol.VideoLoss[0]-wantLoss) > 1e-12 {
		t.Errorf("video loss = %v, want %v", sol.VideoLoss[0], wantLoss)
	}
}

func TestHotVideoLoadsItsHolders(t *testing.T) {
	// Video 0 carries 10× the load and lives on server 0 only: server 0
	// must block far more than server 1.
	m := &ClusterModel{
		Slots:   []int{10, 10},
		Load:    []float64{20, 2},
		Holders: [][]int{{0}, {1}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Blocking[0] <= sol.Blocking[1] {
		t.Errorf("hot server blocks less: %v vs %v", sol.Blocking[0], sol.Blocking[1])
	}
	if sol.VideoLoss[0] <= sol.VideoLoss[1] {
		t.Errorf("hot video loses less: %v vs %v", sol.VideoLoss[0], sol.VideoLoss[1])
	}
}

// Property: pooling can only help — complete sharing carries at least
// as much as the partitioned estimate, and both stay within the
// offered load.
func TestSharingOrderingProperty(t *testing.T) {
	prop := func(seedsRaw []uint8) bool {
		if len(seedsRaw) < 4 {
			return true
		}
		if len(seedsRaw) > 12 {
			seedsRaw = seedsRaw[:12]
		}
		nServers := 2 + int(seedsRaw[0]%4)
		m := &ClusterModel{Slots: make([]int, nServers)}
		for s := range m.Slots {
			m.Slots[s] = 5 + int(seedsRaw[1]>>2)
		}
		for i, r := range seedsRaw[2:] {
			load := float64(r%40) + 0.5
			h1 := i % nServers
			h2 := (i + 1 + int(r)%(nServers-1)) % nServers
			holders := []int{h1}
			if h2 != h1 {
				holders = append(holders, h2)
			}
			m.Load = append(m.Load, load)
			m.Holders = append(m.Holders, holders)
		}
		ns, err1 := m.NoSharing()
		cs, err2 := m.CompleteSharing()
		if err1 != nil || err2 != nil {
			return false
		}
		total := 0.0
		for _, a := range m.Load {
			total += a
		}
		if ns > cs+1e-9 {
			return false // partitioning can never beat pooling
		}
		return ns >= 0 && cs <= total+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFixedPointStaysInUnitRange(t *testing.T) {
	m := &ClusterModel{
		Slots:   []int{33, 33, 33},
		Load:    []float64{40, 40, 25},
		Holders: [][]int{{0, 1}, {1, 2}, {0, 2}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Utilization <= 0 || sol.Utilization > 1 {
		t.Errorf("utilization %v out of range", sol.Utilization)
	}
	for s, b := range sol.Blocking {
		if b < 0 || b > 1 {
			t.Errorf("blocking[%d] = %v", s, b)
		}
	}
}

func TestSolveOverload(t *testing.T) {
	// Extreme overload: every server saturates, losses approach 1, and
	// the even-split fallback branch is exercised without divergence.
	m := &ClusterModel{
		Slots:   []int{5, 5},
		Load:    []float64{5000},
		Holders: [][]int{{0, 1}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.VideoLoss[0] < 0.99 {
		t.Errorf("loss under extreme overload = %v", sol.VideoLoss[0])
	}
	// Deep overload keeps every server busy: utilization clamps to 1.
	if !(sol.Utilization > 0.99 && sol.Utilization <= 1) {
		t.Errorf("utilization = %v, want ≈1 under deep overload", sol.Utilization)
	}
}
