// Package placement implements the static video placement strategies of
// the paper (Sections 3.2 and 4.4) and the capacity-aware randomized
// placer that maps replica counts onto servers.
//
// Placement happens once, before any request arrives (Section 4.1):
// first the number of copies of each video is decided by a Strategy,
// then each copy is placed on a randomly chosen server, with all copies
// of one video on distinct servers and per-server storage capacity
// respected.
package placement

import (
	"fmt"
	"slices"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

// Strategy decides how many copies each video gets. Implementations:
// Even, Predictive, and PartialPredictive.
type Strategy interface {
	// Name identifies the strategy in reports ("even", "predictive", …).
	Name() string
	// Copies returns the replica count per video. totalCopies is the
	// replica budget (≈ NumVideos × AvgCopies); maxCopies caps any one
	// video's count (normally the number of servers, since two copies of
	// the same video on one server are useless). The returned counts sum
	// to totalCopies unless the cap makes that impossible, and every
	// video gets at least one copy.
	Copies(cat *catalog.Catalog, totalCopies, maxCopies int, p *rng.PCG) ([]int, error)
}

// Even allocates the same number of copies to each video, with the
// remainder distributed to randomly chosen videos ("rounding done at
// random", Section 3.2). It is completely oblivious to popularity.
type Even struct{}

// Name implements Strategy.
func (Even) Name() string { return "even" }

// Copies implements Strategy.
func (Even) Copies(cat *catalog.Catalog, totalCopies, maxCopies int, p *rng.PCG) ([]int, error) {
	n := cat.Len()
	if err := checkBudget(n, totalCopies, maxCopies); err != nil {
		return nil, err
	}
	base := totalCopies / n
	rem := totalCopies % n
	counts := make([]int, n)
	for i := range counts {
		counts[i] = base
	}
	for _, i := range p.Perm(n)[:rem] {
		counts[i]++
	}
	return capAndRedistribute(counts, maxCopies, popularityOrder(cat)), nil
}

// Predictive allocates copies in proportion to each video's (perfectly
// known) popularity, with at least one copy per video (Section 3.2).
type Predictive struct{}

// Name implements Strategy.
func (Predictive) Name() string { return "predictive" }

// Copies implements Strategy.
func (Predictive) Copies(cat *catalog.Catalog, totalCopies, maxCopies int, p *rng.PCG) ([]int, error) {
	n := cat.Len()
	if err := checkBudget(n, totalCopies, maxCopies); err != nil {
		return nil, err
	}
	// Largest-remainder apportionment of totalCopies by popularity, with
	// a floor of one copy per video.
	counts := make([]int, n)
	type frac struct {
		i int
		r float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for i := 0; i < n; i++ {
		ideal := float64(totalCopies) * cat.Video(i).Prob
		c := int(ideal)
		if c < 1 {
			c = 1
		}
		counts[i] = c
		assigned += c
		fracs[i] = frac{i: i, r: ideal - float64(int(ideal))}
	}
	slices.SortFunc(fracs, func(a, b frac) int {
		switch {
		case a.r > b.r:
			return -1
		case a.r < b.r:
			return 1
		default:
			return a.i - b.i
		}
	})
	for k := 0; assigned < totalCopies; k = (k + 1) % n {
		counts[fracs[k].i]++
		assigned++
	}
	// If floors pushed us over budget, trim from the least popular
	// videos that still have more than one copy.
	for i := n - 1; i >= 0 && assigned > totalCopies; i-- {
		for counts[i] > 1 && assigned > totalCopies {
			counts[i]--
			assigned--
		}
	}
	return capAndRedistribute(counts, maxCopies, popularityOrder(cat)), nil
}

// PartialPredictive models limited ability to predict popularity
// (Section 4.4): an even base allocation plus Extra additional copies of
// each of the most popular TopFraction of videos. It only requires
// identifying *which* videos are likely popular, not how popular.
type PartialPredictive struct {
	// TopFraction of the catalog (by popularity) that receives extra
	// copies. Zero defaults to 0.1 (the top 10%).
	TopFraction float64
	// Extra copies granted to each of those videos. Zero defaults to 2.
	Extra int
}

// Name implements Strategy.
func (s PartialPredictive) Name() string { return "partial-predictive" }

// Copies implements Strategy.
func (s PartialPredictive) Copies(cat *catalog.Catalog, totalCopies, maxCopies int, p *rng.PCG) ([]int, error) {
	frac := s.TopFraction
	if frac == 0 {
		frac = 0.1
	}
	extra := s.Extra
	if extra == 0 {
		extra = 2
	}
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("placement: TopFraction %g outside [0,1]", frac)
	}
	if extra < 0 {
		return nil, fmt.Errorf("placement: negative Extra %d", extra)
	}
	n := cat.Len()
	top := int(float64(n)*frac + 0.5)
	if top < 1 {
		top = 1
	}
	boost := top * extra
	if boost >= totalCopies {
		return nil, fmt.Errorf("placement: extra copies (%d) exceed budget %d", boost, totalCopies)
	}
	// Spend the boost out of the even budget so total storage matches
	// the other strategies and comparisons stay fair.
	counts, err := (Even{}).Copies(cat, totalCopies-boost, maxCopies, p)
	if err != nil {
		return nil, err
	}
	order := popularityOrder(cat)
	for k := 0; k < top; k++ {
		counts[order[k]] += extra
	}
	return capAndRedistribute(counts, maxCopies, order), nil
}

func checkBudget(n, totalCopies, maxCopies int) error {
	switch {
	case totalCopies < n:
		return fmt.Errorf("placement: budget %d copies < %d videos (every video needs one copy)", totalCopies, n)
	case maxCopies < 1:
		return fmt.Errorf("placement: maxCopies must be at least 1, got %d", maxCopies)
	case totalCopies > n*maxCopies:
		return fmt.Errorf("placement: budget %d copies > %d videos × %d max copies", totalCopies, n, maxCopies)
	}
	return nil
}

// popularityOrder returns video ids sorted most-popular-first.
func popularityOrder(cat *catalog.Catalog) []int {
	n := cat.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		pa, pb := cat.Video(a).Prob, cat.Video(b).Prob
		switch {
		case pa > pb:
			return -1
		case pa < pb:
			return 1
		default:
			return a - b
		}
	})
	return order
}

// capAndRedistribute clamps each count to maxCopies and hands the freed
// copies to the most popular videos that still have headroom, so the
// budget is preserved whenever that is feasible.
func capAndRedistribute(counts []int, maxCopies int, order []int) []int {
	freed := 0
	for i, c := range counts {
		if c > maxCopies {
			freed += c - maxCopies
			counts[i] = maxCopies
		}
	}
	for _, i := range order {
		if freed == 0 {
			break
		}
		if room := maxCopies - counts[i]; room > 0 {
			give := room
			if give > freed {
				give = freed
			}
			counts[i] += give
			freed -= give
		}
	}
	return counts
}
