package placement

import (
	"testing"
	"testing/quick"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

func testCatalog(t *testing.T, n int, theta float64) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: n, MinLength: 600, MaxLength: 1800, ViewRate: 3, Theta: theta,
	}, rng.New(100))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestEvenCopies(t *testing.T) {
	cat := testCatalog(t, 100, 0)
	counts, err := Even{}.Copies(cat, 220, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(counts); got != 220 {
		t.Errorf("total copies = %d, want 220", got)
	}
	twos, threes := 0, 0
	for i, c := range counts {
		switch c {
		case 2:
			twos++
		case 3:
			threes++
		default:
			t.Fatalf("video %d has %d copies; even allocation of 2.2 must give 2 or 3", i, c)
		}
	}
	if twos != 80 || threes != 20 {
		t.Errorf("got %d twos and %d threes, want 80 and 20", twos, threes)
	}
}

func TestEvenCopiesRandomizedRounding(t *testing.T) {
	cat := testCatalog(t, 100, 0)
	a, err := Even{}.Copies(cat, 220, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Even{}.Copies(cat, 220, 5, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("extra-copy videos identical across seeds; rounding should be randomized")
	}
}

func TestPredictiveCopies(t *testing.T) {
	cat := testCatalog(t, 100, -0.5) // skewed
	counts, err := Predictive{}.Copies(cat, 220, 20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(counts); got != 220 {
		t.Errorf("total copies = %d, want 220", got)
	}
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("video %d has %d copies; predictive must give at least one", i, c)
		}
		if c > 20 {
			t.Fatalf("video %d has %d copies; cap is 20", i, c)
		}
	}
	// The most popular video must get strictly more copies than the
	// median one under this skew.
	if counts[0] <= counts[50] {
		t.Errorf("popular video got %d copies, median video %d", counts[0], counts[50])
	}
}

func TestPredictiveUniformEqualsEvenish(t *testing.T) {
	cat := testCatalog(t, 10, 1) // uniform demand
	counts, err := Predictive{}.Copies(cat, 22, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c < 2 || c > 3 {
			t.Errorf("video %d: %d copies; uniform predictive should spread 22 over 10 as 2s and 3s", i, c)
		}
	}
	if got := sum(counts); got != 22 {
		t.Errorf("total = %d, want 22", got)
	}
}

func TestPartialPredictiveCopies(t *testing.T) {
	cat := testCatalog(t, 100, -0.5)
	strat := PartialPredictive{TopFraction: 0.1, Extra: 2}
	counts, err := strat.Copies(cat, 300, 10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(counts); got != 300 {
		t.Errorf("total = %d, want 300 (boost comes out of the even budget)", got)
	}
	// Top-10 videos (ids 0..9 are most popular in a fresh catalog) get
	// extra copies relative to the tail.
	topMin := counts[0]
	for i := 1; i < 10; i++ {
		if counts[i] < topMin {
			topMin = counts[i]
		}
	}
	tailMax := 0
	for i := 10; i < 100; i++ {
		if counts[i] > tailMax {
			tailMax = counts[i]
		}
	}
	if topMin <= tailMax-1 {
		t.Errorf("top videos min %d vs tail max %d; expected a visible boost", topMin, tailMax)
	}
}

func TestPartialPredictiveErrors(t *testing.T) {
	cat := testCatalog(t, 10, 0)
	if _, err := (PartialPredictive{TopFraction: 2}).Copies(cat, 30, 5, rng.New(1)); err == nil {
		t.Error("TopFraction > 1 accepted")
	}
	if _, err := (PartialPredictive{Extra: -1}).Copies(cat, 30, 5, rng.New(1)); err == nil {
		t.Error("negative Extra accepted")
	}
	if _, err := (PartialPredictive{TopFraction: 1, Extra: 5}).Copies(cat, 30, 5, rng.New(1)); err == nil {
		t.Error("boost exceeding budget accepted")
	}
}

func TestBudgetErrors(t *testing.T) {
	cat := testCatalog(t, 10, 0)
	if _, err := (Even{}).Copies(cat, 5, 5, rng.New(1)); err == nil {
		t.Error("budget below one copy per video accepted")
	}
	if _, err := (Even{}).Copies(cat, 100, 5, rng.New(1)); err == nil {
		t.Error("budget above n×maxCopies accepted")
	}
	if _, err := (Even{}).Copies(cat, 20, 0, rng.New(1)); err == nil {
		t.Error("maxCopies = 0 accepted")
	}
}

func TestCapAndRedistribute(t *testing.T) {
	counts := []int{10, 1, 1, 1}
	order := []int{0, 1, 2, 3}
	got := capAndRedistribute(counts, 4, order)
	if sum(got) != 13 {
		t.Errorf("total after redistribute = %d, want 13", sum(got))
	}
	for i, c := range got {
		if c > 4 {
			t.Errorf("video %d exceeds cap: %d", i, c)
		}
	}
	if got[0] != 4 {
		t.Errorf("capped video has %d copies, want 4", got[0])
	}
}

func TestStrategyNames(t *testing.T) {
	if (Even{}).Name() != "even" {
		t.Error("Even name")
	}
	if (Predictive{}).Name() != "predictive" {
		t.Error("Predictive name")
	}
	if (PartialPredictive{}).Name() != "partial-predictive" {
		t.Error("PartialPredictive name")
	}
}

// Property: every strategy conserves its budget (when feasible), floors
// at one, and respects the cap.
func TestStrategyProperty(t *testing.T) {
	cat := testCatalog(t, 40, -0.3)
	strategies := []Strategy{Even{}, Predictive{}, PartialPredictive{}}
	prop := func(seed uint64, budgetRaw uint8) bool {
		budget := 40 + int(budgetRaw)%(40*7) // within [n, n*8]
		for _, s := range strategies {
			counts, err := s.Copies(cat, budget, 8, rng.New(seed))
			if err != nil {
				// Partial predictive legitimately rejects tiny budgets.
				if _, ok := s.(PartialPredictive); ok {
					continue
				}
				return false
			}
			if sum(counts) != budget {
				return false
			}
			for _, c := range counts {
				if c < 1 || c > 8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
