package placement

import (
	"fmt"
	"slices"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

// Layout is the result of placement: which server holds a replica of
// which video. It is immutable once built; admission control reads it
// on every arrival.
type Layout struct {
	numServers int
	holders    [][]int32 // video id -> sorted server ids holding a replica
	onServer   [][]int32 // server id -> sorted video ids stored there
	used       []float64 // per-server storage consumed, Mb
	shortfall  int       // copies that could not be placed for lack of space
}

// Place maps the replica counts onto servers: each video's copies go to
// distinct servers chosen at random among those with enough free
// storage. Videos are placed largest-first so big objects are not
// squeezed out by earlier small ones; within the random choice this
// only affects which capacity-constrained placements succeed.
//
// Every video must end up with at least one replica; otherwise Place
// returns an error (requests for an unplaced video could never be
// served). Copies beyond the first that do not fit are counted in
// Shortfall rather than failing the run.
func Place(cat *catalog.Catalog, counts []int, capacities []float64, p *rng.PCG) (*Layout, error) {
	n := cat.Len()
	if len(counts) != n {
		return nil, fmt.Errorf("placement: %d counts for %d videos", len(counts), n)
	}
	numServers := len(capacities)
	if numServers == 0 {
		return nil, fmt.Errorf("placement: no servers")
	}
	for i, c := range counts {
		if c < 1 {
			return nil, fmt.Errorf("placement: video %d has %d copies; every video needs at least one", i, c)
		}
		if c > numServers {
			return nil, fmt.Errorf("placement: video %d has %d copies for %d servers", i, c, numServers)
		}
	}

	l := &Layout{
		numServers: numServers,
		holders:    make([][]int32, n),
		onServer:   make([][]int32, numServers),
		used:       make([]float64, numServers),
	}

	// Largest videos first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		sa, sb := cat.Video(a).Size, cat.Video(b).Size
		switch {
		case sa > sb:
			return -1
		case sa < sb:
			return 1
		default:
			return a - b
		}
	})

	candidates := make([]int, 0, numServers)
	for _, v := range order {
		size := cat.Video(v).Size
		candidates = candidates[:0]
		for s := 0; s < numServers; s++ {
			if l.used[s]+size <= capacities[s] {
				candidates = append(candidates, s)
			}
		}
		p.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		want := counts[v]
		if want > len(candidates) {
			l.shortfall += want - len(candidates)
			want = len(candidates)
		}
		if want == 0 {
			return nil, fmt.Errorf("placement: no server has %s free for video %d", fmtMb(size), v)
		}
		for _, s := range candidates[:want] {
			l.holders[v] = append(l.holders[v], int32(s))
			l.onServer[s] = append(l.onServer[s], int32(v))
			l.used[s] += size
		}
		sortInt32(l.holders[v])
	}
	for s := range l.onServer {
		sortInt32(l.onServer[s])
	}
	return l, nil
}

// Build runs a Strategy and places its counts in one step. avgCopies is
// the mean number of replicas per video (Figure 3's "Average Number of
// Copies Per Video", ≈2.2 in the paper).
func Build(strat Strategy, cat *catalog.Catalog, avgCopies float64, capacities []float64, p *rng.PCG) (*Layout, error) {
	if avgCopies < 1 {
		return nil, fmt.Errorf("placement: avgCopies %g < 1", avgCopies)
	}
	total := int(float64(cat.Len())*avgCopies + 0.5)
	counts, err := strat.Copies(cat, total, len(capacities), p)
	if err != nil {
		return nil, err
	}
	return Place(cat, counts, capacities, p)
}

// Manual builds a layout from an explicit replica map: holders[v] lists
// the servers storing video v. It validates distinctness and bounds but
// not storage capacity (the caller has decided the placement). Tests
// and operators with a known-good placement use this instead of the
// randomized Place.
func Manual(cat *catalog.Catalog, holders [][]int, numServers int) (*Layout, error) {
	if len(holders) != cat.Len() {
		return nil, fmt.Errorf("placement: %d holder lists for %d videos", len(holders), cat.Len())
	}
	if numServers <= 0 {
		return nil, fmt.Errorf("placement: need at least one server, got %d", numServers)
	}
	l := &Layout{
		numServers: numServers,
		holders:    make([][]int32, cat.Len()),
		onServer:   make([][]int32, numServers),
		used:       make([]float64, numServers),
	}
	for v, hs := range holders {
		if len(hs) == 0 {
			return nil, fmt.Errorf("placement: video %d has no replica", v)
		}
		seen := make(map[int]bool, len(hs))
		for _, s := range hs {
			if s < 0 || s >= numServers {
				return nil, fmt.Errorf("placement: video %d on unknown server %d", v, s)
			}
			if seen[s] {
				return nil, fmt.Errorf("placement: video %d placed twice on server %d", v, s)
			}
			seen[s] = true
			l.holders[v] = append(l.holders[v], int32(s))
			l.onServer[s] = append(l.onServer[s], int32(v))
			l.used[s] += cat.Video(v).Size
		}
		sortInt32(l.holders[v])
	}
	for s := range l.onServer {
		sortInt32(l.onServer[s])
	}
	return l, nil
}

// NumServers returns the number of servers in the layout.
func (l *Layout) NumServers() int { return l.numServers }

// Holders returns the servers holding a replica of video v, ascending.
// Callers must not modify the returned slice.
func (l *Layout) Holders(v int) []int32 { return l.holders[v] }

// VideosOn returns the videos stored on server s, ascending.
// Callers must not modify the returned slice.
func (l *Layout) VideosOn(s int) []int32 { return l.onServer[s] }

// Holds reports whether server s stores a replica of video v.
func (l *Layout) Holds(v, s int) bool {
	for _, h := range l.holders[v] {
		if int(h) == s {
			return true
		}
	}
	return false
}

// CopyCount returns the number of replicas of video v actually placed.
func (l *Layout) CopyCount(v int) int { return len(l.holders[v]) }

// Used returns the storage consumed on server s in Mb.
func (l *Layout) Used(s int) float64 { return l.used[s] }

// Shortfall returns how many requested copies could not be placed
// because no server had room.
func (l *Layout) Shortfall() int { return l.shortfall }

// TotalCopies returns the total number of replicas placed.
func (l *Layout) TotalCopies() int {
	t := 0
	for _, h := range l.holders {
		t += len(h)
	}
	return t
}

func sortInt32(s []int32) {
	slices.Sort(s)
}

func fmtMb(v float64) string { return fmt.Sprintf("%.0f Mb", v) }
