package placement

import (
	"testing"
	"testing/quick"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

func capacities(n int, mb float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = mb
	}
	return out
}

func TestPlaceBasics(t *testing.T) {
	cat := testCatalog(t, 20, 0)
	counts := make([]int, 20)
	for i := range counts {
		counts[i] = 2
	}
	lay, err := Place(cat, counts, capacities(5, 1e6), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumServers() != 5 {
		t.Errorf("NumServers() = %d", lay.NumServers())
	}
	if lay.TotalCopies() != 40 {
		t.Errorf("TotalCopies() = %d, want 40", lay.TotalCopies())
	}
	if lay.Shortfall() != 0 {
		t.Errorf("Shortfall() = %d", lay.Shortfall())
	}
	for v := 0; v < 20; v++ {
		holders := lay.Holders(v)
		if len(holders) != 2 {
			t.Fatalf("video %d has %d holders, want 2", v, len(holders))
		}
		if holders[0] == holders[1] {
			t.Fatalf("video %d placed twice on server %d", v, holders[0])
		}
		for _, h := range holders {
			if !lay.Holds(v, int(h)) {
				t.Errorf("Holds(%d, %d) = false for a holder", v, h)
			}
		}
		if lay.Holds(v, 99) {
			t.Errorf("Holds(%d, 99) = true", v)
		}
		if lay.CopyCount(v) != 2 {
			t.Errorf("CopyCount(%d) = %d", v, lay.CopyCount(v))
		}
	}
}

func TestPlaceHoldersAndVideosOnAgree(t *testing.T) {
	cat := testCatalog(t, 30, -0.5)
	counts := make([]int, 30)
	for i := range counts {
		counts[i] = 1 + i%3
	}
	lay, err := Place(cat, counts, capacities(6, 1e6), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the two indexes.
	for v := 0; v < 30; v++ {
		for _, h := range lay.Holders(v) {
			found := false
			for _, vid := range lay.VideosOn(int(h)) {
				if int(vid) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("video %d in Holders but not in VideosOn(%d)", v, h)
			}
		}
	}
	total := 0
	for s := 0; s < 6; s++ {
		total += len(lay.VideosOn(s))
	}
	if total != lay.TotalCopies() {
		t.Errorf("VideosOn total %d != TotalCopies %d", total, lay.TotalCopies())
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	cat := testCatalog(t, 10, 0)
	// Room for roughly three average (3600 Mb) videos per server.
	caps := capacities(4, 11000)
	counts := make([]int, 10)
	for i := range counts {
		counts[i] = 1
	}
	lay, err := Place(cat, counts, caps, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if lay.Used(s) > caps[s] {
			t.Errorf("server %d used %v of %v", s, lay.Used(s), caps[s])
		}
	}
}

func TestPlaceShortfall(t *testing.T) {
	// Fixed-size videos (1200 s × 3 Mb/s = 3600 Mb) so capacities can be
	// arranged exactly: server 0 holds two videos, servers 1 and 2 one
	// each. Video 0 takes all three servers; video 1 then finds room
	// only on server 0 — one of its two copies is a shortfall.
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 2, MinLength: 1200, MaxLength: 1200, ViewRate: 3, Theta: 0,
	}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{7200, 3600, 3600}
	lay, err := Place(cat, []int{3, 2}, caps, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if lay.Shortfall() != 1 {
		t.Errorf("Shortfall() = %d, want 1", lay.Shortfall())
	}
	if lay.TotalCopies() != 4 {
		t.Errorf("TotalCopies() = %d, want 4", lay.TotalCopies())
	}
	for v := 0; v < 2; v++ {
		if lay.CopyCount(v) < 1 {
			t.Errorf("video %d lost its only copy", v)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	cat := testCatalog(t, 5, 0)
	if _, err := Place(cat, []int{1, 1}, capacities(3, 1e6), rng.New(1)); err == nil {
		t.Error("count/video length mismatch accepted")
	}
	if _, err := Place(cat, []int{1, 1, 1, 1, 1}, nil, rng.New(1)); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := Place(cat, []int{0, 1, 1, 1, 1}, capacities(3, 1e6), rng.New(1)); err == nil {
		t.Error("zero-copy video accepted")
	}
	if _, err := Place(cat, []int{4, 1, 1, 1, 1}, capacities(3, 1e6), rng.New(1)); err == nil {
		t.Error("more copies than servers accepted")
	}
	// No space at all for some video's only copy.
	if _, err := Place(cat, []int{1, 1, 1, 1, 1}, capacities(2, 100), rng.New(1)); err == nil {
		t.Error("impossible placement accepted")
	}
}

func TestBuild(t *testing.T) {
	cat := testCatalog(t, 50, 0)
	lay, err := Build(Even{}, cat, 2.2, capacities(5, 1e6), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lay.TotalCopies(), 110; got != want {
		t.Errorf("TotalCopies() = %d, want %d", got, want)
	}
	if _, err := Build(Even{}, cat, 0.5, capacities(5, 1e6), rng.New(5)); err == nil {
		t.Error("avgCopies < 1 accepted")
	}
}

// Property: placement always yields distinct holders per video, consistent
// indexes, and capacity compliance.
func TestPlaceProperty(t *testing.T) {
	cat := testCatalog(t, 25, -0.2)
	prop := func(seed uint64, serverRaw, copyRaw uint8) bool {
		nServers := int(serverRaw%8) + 2
		counts := make([]int, 25)
		for i := range counts {
			counts[i] = 1 + int(copyRaw+uint8(i))%nServers
			if counts[i] > nServers {
				counts[i] = nServers
			}
		}
		caps := capacities(nServers, 1e6)
		lay, err := Place(cat, counts, caps, rng.New(seed))
		if err != nil {
			return false
		}
		for v := 0; v < 25; v++ {
			hs := lay.Holders(v)
			if len(hs) != counts[v] {
				return false
			}
			seen := map[int32]bool{}
			for _, h := range hs {
				if seen[h] || int(h) >= nServers {
					return false
				}
				seen[h] = true
			}
		}
		for s := 0; s < nServers; s++ {
			if lay.Used(s) > caps[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestManualLayout(t *testing.T) {
	cat := testCatalog(t, 3, 0)
	lay, err := Manual(cat, [][]int{{0}, {0, 1}, {2}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumServers() != 3 || lay.TotalCopies() != 4 {
		t.Errorf("servers=%d copies=%d", lay.NumServers(), lay.TotalCopies())
	}
	if !lay.Holds(1, 0) || !lay.Holds(1, 1) || lay.Holds(1, 2) {
		t.Error("holder map wrong for video 1")
	}
	if got := lay.Used(0); got != cat.Video(0).Size+cat.Video(1).Size {
		t.Errorf("Used(0) = %v", got)
	}
	if len(lay.VideosOn(2)) != 1 || lay.VideosOn(2)[0] != 2 {
		t.Errorf("VideosOn(2) = %v", lay.VideosOn(2))
	}
}

func TestManualLayoutErrors(t *testing.T) {
	cat := testCatalog(t, 2, 0)
	cases := []struct {
		holders [][]int
		servers int
	}{
		{[][]int{{0}}, 2},         // wrong count
		{[][]int{{0}, {}}, 2},     // replica-less video
		{[][]int{{0}, {5}}, 2},    // unknown server
		{[][]int{{0}, {1, 1}}, 2}, // duplicate holder
		{[][]int{{0}, {1}}, 0},    // no servers
	}
	for i, tc := range cases {
		if _, err := Manual(cat, tc.holders, tc.servers); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
