// Package rng provides the deterministic random-number substrate for the
// simulator.
//
// Reproducibility is a hard requirement: every experiment in the paper
// reproduction must yield bit-identical results for a given seed,
// independent of the Go release or of how many streams run concurrently.
// We therefore implement the generators ourselves rather than depending
// on math/rand internals:
//
//   - SplitMix64 is used to expand a single user seed into independent
//     stream seeds (one per trial, per server, per purpose), so that
//     adding a consumer of randomness never perturbs the draws seen by
//     existing consumers.
//   - PCG-XSH-RR 64/32 (O'Neill 2014) is the workhorse generator. Two
//     PCG32 halves form a 64-bit output with excellent statistical
//     quality and a tiny state.
//
// The package also provides the standard transformations the simulator
// needs: uniform floats, exponential variates (Poisson inter-arrival
// times), bounded integers without modulo bias, and Fisher–Yates
// shuffles.
package rng

import "math"

// SplitMix64 advances a 64-bit state and returns the next value of the
// SplitMix64 sequence. It is used for seeding only.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives an independent sub-seed from a
// base seed and a sequence of labels. Labels distinguish the purpose of
// each stream ("arrivals", "placement", trial index, …) so streams stay
// decoupled when new ones are introduced.
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	s := base ^ 0x6a09e667f3bcc908 // golden-ratio-ish domain separator
	out := SplitMix64(&s)
	for _, l := range labels {
		s ^= l * 0xff51afd7ed558ccd
		out ^= SplitMix64(&s)
	}
	if out == 0 {
		out = 0x9e3779b97f4a7c15
	}
	return out
}

// PCG is a PCG-XSH-RR 64/32 generator with a fixed odd increment.
// The zero value is not useful; construct with New.
type PCG struct {
	state uint64
	inc   uint64
}

// New returns a PCG stream seeded from seed. Distinct seeds produce
// decorrelated streams (the seed selects both state and increment).
func New(seed uint64) *PCG {
	s := seed
	inc := SplitMix64(&s)<<1 | 1 // increment must be odd
	p := &PCG{state: 0, inc: inc}
	p.next32()
	p.state += SplitMix64(&s)
	p.next32()
	return p
}

func (p *PCG) next32() uint32 {
	old := p.state
	p.state = old*6364136223846793005 + p.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (p *PCG) Uint64() uint64 {
	return uint64(p.next32())<<32 | uint64(p.next32())
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (p *PCG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return p.Uint64() & (n - 1)
	}
	thresh := -n % n
	for {
		v := p.Uint64()
		if v >= thresh {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (p *PCG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential variate with mean 1, via inverse
// transform sampling. Scale by the desired mean.
func (p *PCG) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1 - p.Float64())
}

// UniformRange returns a uniform float64 in [lo, hi).
func (p *PCG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*p.Float64()
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (p *PCG) Perm(n int) []int {
	out := make([]int, n)
	for i := 1; i < n; i++ {
		j := p.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
	return out
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (p *PCG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}
