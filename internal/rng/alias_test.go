package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAliasErrors(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for _, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("NewAlias(%v) succeeded, want error", w)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	p := New(1)
	for i := 0; i < 100; i++ {
		if v := a.Sample(p); v != 0 {
			t.Fatalf("Sample() = %d, want 0", v)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := New(2)
	for i := 0; i < 50000; i++ {
		if a.Sample(p) == 1 {
			t.Fatal("drew an outcome with zero weight")
		}
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{10, 1, 5, 0.5, 3.5}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	p := New(3)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(p)]++
	}
	for i, w := range weights {
		want := draws * w / total
		sd := math.Sqrt(want * (1 - w/total))
		if math.Abs(float64(counts[i])-want) > 5*sd {
			t.Errorf("outcome %d drawn %d times, want %.0f ± %.0f", i, counts[i], want, 5*sd)
		}
	}
}

// Property: any valid weight vector builds a table whose samples stay in
// range and hit every positively weighted outcome eventually.
func TestAliasProperty(t *testing.T) {
	prop := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		weights := make([]float64, len(raw))
		total := 0.0
		for i, r := range raw {
			weights[i] = float64(r)
			total += weights[i]
		}
		if total == 0 {
			return true // invalid input; covered by error tests
		}
		a, err := NewAlias(weights)
		if err != nil {
			return false
		}
		p := New(seed)
		hit := make([]bool, len(weights))
		for i := 0; i < 5000; i++ {
			v := a.Sample(p)
			if v < 0 || v >= len(weights) || weights[v] == 0 {
				return false
			}
			hit[v] = true
		}
		// Every outcome with substantial weight should appear.
		for i, w := range weights {
			if w/total > 0.05 && !hit[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAliasN(t *testing.T) {
	a, err := NewAlias([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 3 {
		t.Errorf("N() = %d, want 3", a.N())
	}
}
