package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds produced %d equal 64-bit draws out of 100", same)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	// Different label paths must give different seeds.
	seen := map[uint64][]uint64{}
	paths := [][]uint64{{}, {1}, {2}, {1, 1}, {1, 2}, {2, 1}, {1, 1, 1}}
	for _, p := range paths {
		s := DeriveSeed(99, p...)
		if prev, ok := seen[s]; ok {
			t.Errorf("paths %v and %v collide on seed %d", prev, p, s)
		}
		seen[s] = p
	}
	// Deterministic.
	if DeriveSeed(7, 1, 2) != DeriveSeed(7, 1, 2) {
		t.Error("DeriveSeed not deterministic")
	}
	// Never zero.
	if DeriveSeed(0) == 0 {
		t.Error("DeriveSeed returned 0")
	}
}

func TestFloat64Range(t *testing.T) {
	p := New(3)
	for i := 0; i < 100000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	p := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	p := New(5)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 33} {
		for i := 0; i < 1000; i++ {
			if v := p.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	p := New(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[p.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ≈%.0f", i, c, want)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestExpFloat64Mean(t *testing.T) {
	p := New(7)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		x := p.ExpFloat64()
		if x < 0 {
			t.Fatalf("ExpFloat64() = %v < 0", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean = %v, want ≈1", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("exponential variance = %v, want ≈1", variance)
	}
}

func TestUniformRange(t *testing.T) {
	p := New(8)
	for i := 0; i < 10000; i++ {
		v := p.UniformRange(600, 1800)
		if v < 600 || v >= 1800 {
			t.Fatalf("UniformRange(600, 1800) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		perm := New(seed).Perm(n)
		if len(perm) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range perm {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	p := New(9)
	s := []int{1, 2, 2, 3, 3, 3, 4}
	counts := map[int]int{}
	for _, v := range s {
		counts[v]++
	}
	p.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Errorf("value %d count off by %d after shuffle", v, c)
		}
	}
}

func TestPermZeroAndOne(t *testing.T) {
	if got := New(1).Perm(0); len(got) != 0 {
		t.Errorf("Perm(0) = %v", got)
	}
	if got := New(1).Perm(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("Perm(1) = %v", got)
	}
}
