package rng

import "fmt"

// Alias is a Walker/Vose alias table for O(1) sampling from a fixed
// discrete distribution. The simulator draws hundreds of thousands of
// video identities per trial, so constant-time sampling matters.
type Alias struct {
	prob  []float64 // acceptance probability for each column
	alias []int32   // fallback index for each column
	n     int
}

// NewAlias builds an alias table from non-negative weights. Weights need
// not be normalized. It returns an error if no weight is positive, or if
// any weight is negative, NaN, or infinite.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || w != w || w > 1e308 {
			return nil, fmt.Errorf("rng: invalid weight %v at index %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: all weights are zero")
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		n:     n,
	}
	// Scale weights so the average is 1, then run Vose's algorithm.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are 1 up to rounding error.
	for _, l := range large {
		a.prob[l] = 1
	}
	for _, s := range small {
		a.prob[s] = 1
	}
	return a, nil
}

// N returns the number of outcomes.
func (a *Alias) N() int { return a.n }

// Sample draws an index in [0, N()) with probability proportional to the
// weight supplied at construction.
func (a *Alias) Sample(p *PCG) int {
	i := p.Intn(a.n)
	if p.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
