package edge

import (
	"reflect"
	"testing"
)

func TestRegistry(t *testing.T) {
	want := []string{PolicyLRU, PolicyStaticZipf}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, n := range want {
		if !Has(n) {
			t.Fatalf("Has(%q) = false", n)
		}
	}
	if Has("no-such-policy") {
		t.Fatal("Has(no-such-policy) = true")
	}
	if got := New("").Name(); got != PolicyStaticZipf {
		t.Fatalf("New(\"\") resolved %q, want the default %q", got, PolicyStaticZipf)
	}
	if got := New(PolicyLRU).Name(); got != PolicyLRU {
		t.Fatalf("New(lru) resolved %q", got)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { Register("", func() CachePolicy { return new(staticZipf) }) })
	mustPanic("nil factory", func() { Register("x", nil) })
	mustPanic("duplicate", func() { Register(PolicyStaticZipf, func() CachePolicy { return new(staticZipf) }) })
	mustPanic("unknown New", func() { New("no-such-policy") })
}

func TestGreedyFill(t *testing.T) {
	prefix := []float64{40, 30, 0, 25, 50, 10}
	cached := make([]bool, len(prefix))
	used := GreedyFill(prefix, 100, cached)
	// 40 + 30 fit; video 2 has no prefix; 25 fits (95); 50 does not;
	// 10 does not (95 + 10 > 100).
	want := []bool{true, true, false, true, false, false}
	if !reflect.DeepEqual(cached, want) {
		t.Fatalf("cached = %v, want %v", cached, want)
	}
	if used != 95 {
		t.Fatalf("used = %g, want 95", used)
	}
}

func TestStaticZipf(t *testing.T) {
	p := New(PolicyStaticZipf)
	p.Reset([]float64{40, 30, 25, 50}, 70)
	for i, want := range []bool{true, true, false, false} {
		if got := p.Hit(i); got != want {
			t.Fatalf("Hit(%d) = %t, want %t", i, got, want)
		}
		// Static content: a second probe answers identically.
		if got := p.Hit(i); got != want {
			t.Fatalf("second Hit(%d) = %t, want %t", i, got, want)
		}
	}
	// Reset with a bigger budget re-fills.
	p.Reset([]float64{40, 30, 25, 50}, 1000)
	for i := range 4 {
		if !p.Hit(i) {
			t.Fatalf("after large-budget Reset, Hit(%d) = false", i)
		}
	}
}

func TestLRU(t *testing.T) {
	p := New(PolicyLRU)
	p.Reset([]float64{10, 10, 10, 100}, 20)
	if p.Hit(0) {
		t.Fatal("cold cache reported a hit")
	}
	if !p.Hit(0) {
		t.Fatal("miss did not admit video 0")
	}
	p.Hit(1)       // admit 1 → cache {0, 1}, budget full
	if !p.Hit(0) { // refresh 0's recency
		t.Fatal("video 0 evicted early")
	}
	p.Hit(2) // admit 2 → evicts LRU = 1
	if !p.Hit(0) {
		t.Fatal("video 0 evicted; LRU order broken")
	}
	if p.Hit(1) {
		t.Fatal("video 1 should have been evicted")
	}
	// Video 3's prefix exceeds the whole budget: never cached, and it
	// must not wipe the cache trying.
	if p.Hit(3) {
		t.Fatal("oversized prefix reported a hit")
	}
	if p.Hit(3) {
		t.Fatal("oversized prefix was admitted")
	}
	// 1's re-probe above evicted... verify state still consistent: 0
	// was most recent before the 3-probes and 1 was re-admitted by its
	// probe, evicting 2.
	if !p.Hit(1) {
		t.Fatal("video 1 not re-admitted by its miss")
	}
	if p.Hit(2) {
		t.Fatal("video 2 should have been evicted by 1's re-admission")
	}
}

func TestLRUResetClears(t *testing.T) {
	p := New(PolicyLRU)
	p.Reset([]float64{10, 10}, 20)
	p.Hit(0)
	p.Hit(1)
	p.Reset([]float64{10, 10}, 20)
	if p.Hit(0) || p.Hit(1) {
		t.Fatal("Reset did not clear cached content")
	}
}

func TestHitDoesNotAllocate(t *testing.T) {
	prefix := make([]float64, 1024)
	for i := range prefix {
		prefix[i] = 10
	}
	for _, name := range Names() {
		p := New(name)
		p.Reset(prefix, 512*10)
		n := testing.AllocsPerRun(200, func() {
			for v := 0; v < len(prefix); v += 7 {
				p.Hit(v)
			}
		})
		if n != 0 {
			t.Errorf("%s: Hit allocates %.1f per run, want 0", name, n)
		}
	}
}
