// Package edge models the proxy tier in front of the cluster: edge
// nodes hold the first PrefixSec seconds of selected videos in a
// bounded byte budget and serve those prefixes locally, so the cluster
// streams only the suffix of a hit title (or nothing at all when the
// cached prefix covers the whole video). Which prefixes a node holds is
// a pluggable CachePolicy resolved from a named registry with the same
// contract as the core engine's allocator/selector registries:
// registration is an init-time programming act that panics on empty or
// duplicate names, and names are validated before a run starts.
//
// The package is deliberately free of core dependencies — it knows
// nothing about servers, requests, or events. The engine asks one
// question per arrival (Hit) and the policy answers from its own
// state, so the admission hot path stays allocation-free.
package edge

import (
	"fmt"
	"slices"
)

// CachePolicy decides which video prefixes one edge node holds. A
// policy is per-node state: the engine creates one instance per edge
// node and Resets it at the start of every run.
//
// Implementations must be deterministic functions of the Reset
// arguments and the Hit call sequence, and Hit must not allocate — it
// sits on the per-arrival admission hot path.
type CachePolicy interface {
	// Name returns the policy's registry name.
	Name() string

	// Reset installs the working set for a run: prefixMb[v] is video
	// v's prefix size in Mb (already clamped to the video size) and
	// budgetMb the node's cache byte budget. The policy must not retain
	// prefixMb; it is shared across nodes.
	Reset(prefixMb []float64, budgetMb float64)

	// Hit reports whether video v's prefix is on this node, updating
	// any replacement state (a miss may admit v for future requests).
	Hit(v int) bool
}

// Registry names of the built-in cache policies.
const (
	// PolicyStaticZipf pins prefixes at Reset in popularity order
	// (video 0 is the most popular): a first-fit greedy fill that
	// walks the catalog once and caches every prefix that still fits
	// the remaining budget. The content never changes during a run —
	// the optimal-prefix-replication shape under a known Zipf demand.
	// The default.
	PolicyStaticZipf = "static-zipf"
	// PolicyLRU starts empty and fills on demand: a miss admits the
	// video's prefix, evicting least-recently-used prefixes until it
	// fits. Models a node that learns popularity from traffic instead
	// of being provisioned with it.
	PolicyLRU = "lru"
)

// registry maps cache-policy names to factories. Factories (not
// instances) are registered because each edge node owns mutable
// replacement state.
var registry = map[string]func() CachePolicy{}

// Register adds a named cache policy to the registry. It panics on an
// empty or duplicate name — registration is an init-time programming
// act, not a runtime input.
func Register(name string, factory func() CachePolicy) {
	if name == "" {
		panic("edge: Register with empty name")
	}
	if factory == nil {
		panic("edge: Register with nil factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("edge: cache policy %q registered twice", name))
	}
	registry[name] = factory
}

// Has reports whether a cache policy with the given name exists.
func Has(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns the registered cache-policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// New resolves a cache policy by name ("" selects the default).
// Validation vets names before a run starts, so resolution failure is
// a programming error and panics like the engine's lazy registry
// resolutions do.
func New(name string) CachePolicy {
	if name == "" {
		name = PolicyStaticZipf
	}
	factory, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("edge: cache policy %q not registered", name))
	}
	return factory()
}

// GreedyFill is the static-zipf fill rule, exported so analytic models
// and tests can reproduce a node's content exactly: walking prefixMb in
// index order (most popular first), it marks cached[v] for every prefix
// that still fits the remaining budget and returns the total bytes
// cached. Zero-size prefixes are never cached — a hit must mean bytes
// actually served locally.
func GreedyFill(prefixMb []float64, budgetMb float64, cached []bool) float64 {
	used := 0.0
	for v, p := range prefixMb {
		if p <= 0 {
			cached[v] = false
			continue
		}
		if used+p <= budgetMb {
			cached[v] = true
			used += p
		} else {
			cached[v] = false
		}
	}
	return used
}

func init() {
	Register(PolicyStaticZipf, func() CachePolicy { return new(staticZipf) })
	Register(PolicyLRU, func() CachePolicy { return new(lru) })
}

// staticZipf implements PolicyStaticZipf.
type staticZipf struct {
	cached []bool
}

func (p *staticZipf) Name() string { return PolicyStaticZipf }

func (p *staticZipf) Reset(prefixMb []float64, budgetMb float64) {
	if cap(p.cached) < len(prefixMb) {
		p.cached = make([]bool, len(prefixMb))
	} else {
		p.cached = p.cached[:len(prefixMb)]
	}
	GreedyFill(prefixMb, budgetMb, p.cached)
}

func (p *staticZipf) Hit(v int) bool { return p.cached[v] }

// lru implements PolicyLRU: an intrusive doubly-linked recency list
// over video ids backed by flat arrays, so Hit is pointer-free and
// allocation-free.
type lru struct {
	prefix []float64 // shared per-run prefix sizes (read-only)
	budget float64
	used   float64

	cached     []bool
	prev, next []int32 // recency links, valid only while cached
	head, tail int32   // most / least recently used, -1 when empty
}

func (p *lru) Name() string { return PolicyLRU }

func (p *lru) Reset(prefixMb []float64, budgetMb float64) {
	n := len(prefixMb)
	if cap(p.cached) < n {
		p.cached = make([]bool, n)
		p.prev = make([]int32, n)
		p.next = make([]int32, n)
	} else {
		p.cached = p.cached[:n]
		p.prev = p.prev[:n]
		p.next = p.next[:n]
		for i := range p.cached {
			p.cached[i] = false
		}
	}
	p.prefix = prefixMb
	p.budget = budgetMb
	p.used = 0
	p.head, p.tail = -1, -1
}

// unlink removes a cached video from the recency list.
func (p *lru) unlink(v int32) {
	if p.prev[v] >= 0 {
		p.next[p.prev[v]] = p.next[v]
	} else {
		p.head = p.next[v]
	}
	if p.next[v] >= 0 {
		p.prev[p.next[v]] = p.prev[v]
	} else {
		p.tail = p.prev[v]
	}
}

// pushFront makes v the most recently used entry.
func (p *lru) pushFront(v int32) {
	p.prev[v] = -1
	p.next[v] = p.head
	if p.head >= 0 {
		p.prev[p.head] = v
	}
	p.head = v
	if p.tail < 0 {
		p.tail = v
	}
}

func (p *lru) Hit(v int) bool {
	id := int32(v)
	if p.cached[v] {
		if p.head != id {
			p.unlink(id)
			p.pushFront(id)
		}
		return true
	}
	// Miss: admit v's prefix for future requests, evicting from the
	// cold end until it fits. A prefix larger than the whole budget is
	// simply never cached.
	size := p.prefix[v]
	if size <= 0 || size > p.budget {
		return false
	}
	for p.used+size > p.budget && p.tail >= 0 {
		ev := p.tail
		p.unlink(ev)
		p.cached[ev] = false
		p.used -= p.prefix[ev]
	}
	p.cached[v] = true
	p.used += size
	p.pushFront(id)
	return false
}
