package zipf

import (
	"math"
	"testing"
	"testing/quick"

	"semicont/internal/rng"
)

func TestErrors(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := New(n, 0); err == nil {
			t.Errorf("New(%d, 0) succeeded, want error", n)
		}
	}
}

func TestNormalization(t *testing.T) {
	prop := func(nRaw uint8, thetaRaw int8) bool {
		n := int(nRaw%200) + 1
		theta := float64(thetaRaw) / 50 // roughly [-2.5, 2.5]
		d, err := New(n, theta)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.Prob(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformAtThetaOne(t *testing.T) {
	d, err := New(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if math.Abs(d.Prob(i)-0.02) > 1e-12 {
			t.Fatalf("Prob(%d) = %v, want 0.02 at theta=1", i, d.Prob(i))
		}
	}
}

func TestMonotoneForSkewedTheta(t *testing.T) {
	for _, theta := range []float64{0.5, 0.271, 0, -0.5, -1.5} {
		d, err := New(100, theta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 100; i++ {
			if d.Prob(i) > d.Prob(i-1)+1e-15 {
				t.Fatalf("theta=%g: Prob(%d)=%v > Prob(%d)=%v", theta, i, d.Prob(i), i-1, d.Prob(i-1))
			}
		}
	}
}

func TestSmallerThetaMeansMoreSkew(t *testing.T) {
	// The probability of the most popular item must grow as theta falls.
	prev := -1.0
	for _, theta := range []float64{1, 0.5, 0, -0.5, -1, -1.5} {
		d, err := New(100, theta)
		if err != nil {
			t.Fatal(err)
		}
		if d.Prob(0) < prev {
			t.Fatalf("p_1 at theta=%g is %v, below previous %v", theta, d.Prob(0), prev)
		}
		prev = d.Prob(0)
	}
}

func TestClassicZipfRatios(t *testing.T) {
	// theta = 0 is classic Zipf: p_i ∝ 1/i, so p_1/p_2 = 2.
	d, err := New(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := d.Prob(0) / d.Prob(1); math.Abs(r-2) > 1e-9 {
		t.Errorf("p_1/p_2 = %v, want 2", r)
	}
	if r := d.Prob(0) / d.Prob(3); math.Abs(r-4) > 1e-9 {
		t.Errorf("p_1/p_4 = %v, want 4", r)
	}
}

func TestNegativeThetaExponent(t *testing.T) {
	// theta = -1.5 gives p_i ∝ 1/i^2.5.
	d, err := New(10, -1.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, 2.5)
	if r := d.Prob(0) / d.Prob(1); math.Abs(r-want) > 1e-9 {
		t.Errorf("p_1/p_2 = %v, want %v", r, want)
	}
}

func TestSamplerMatchesProbs(t *testing.T) {
	d, err := New(20, 0.271)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.New(11)
	const draws = 300000
	counts := make([]int, 20)
	for i := 0; i < draws; i++ {
		counts[d.Sample(p)]++
	}
	for i := 0; i < 20; i++ {
		want := draws * d.Prob(i)
		sd := math.Sqrt(want * (1 - d.Prob(i)))
		if math.Abs(float64(counts[i])-want) > 5*sd+1 {
			t.Errorf("item %d drawn %d times, want %.0f ± %.0f", i, counts[i], want, 5*sd)
		}
	}
}

func TestExpectedValue(t *testing.T) {
	d, err := New(3, 1) // uniform
	if err != nil {
		t.Fatal(err)
	}
	got := d.ExpectedValue([]float64{3, 6, 9})
	if math.Abs(got-6) > 1e-12 {
		t.Errorf("ExpectedValue = %v, want 6", got)
	}
}

func TestExpectedValuePanicsOnLengthMismatch(t *testing.T) {
	d, err := New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("ExpectedValue with wrong length did not panic")
		}
	}()
	d.ExpectedValue([]float64{1, 2})
}

func TestAccessors(t *testing.T) {
	d, err := New(7, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 7 {
		t.Errorf("N() = %d, want 7", d.N())
	}
	if d.Theta() != 0.25 {
		t.Errorf("Theta() = %v, want 0.25", d.Theta())
	}
	if len(d.Probs()) != 7 {
		t.Errorf("len(Probs()) = %d, want 7", len(d.Probs()))
	}
}
