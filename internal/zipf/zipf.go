// Package zipf implements the Zipf-like popularity distribution exactly
// as parameterized in the paper (Section 4.1):
//
//	p_i = c / i^(1-θ),  i = 1..N,  c = 1 / Σ_{i=1..N} 1/i^(1-θ)
//
// θ (theta) controls demand skew:
//
//   - θ = 1: every video equally popular (uniform),
//   - θ = 0: classic Zipf (p_i ∝ 1/i),
//   - θ < 0: increasingly skewed; the paper sweeps θ down to −1.5,
//     i.e. p_i ∝ 1/i^2.5.
//
// Note this convention differs from the common "Zipf exponent s"
// (p_i ∝ 1/i^s): here s = 1−θ, so smaller θ means more skew. Figures in
// the paper label the x-axis "Zipf theta (Demand Uniformity)".
package zipf

import (
	"fmt"
	"math"

	"semicont/internal/rng"
)

// Distribution is a Zipf-like popularity distribution over N items with
// an O(1) sampler. Item 0 is the most popular video (paper index i=1).
type Distribution struct {
	theta float64
	probs []float64
	alias *rng.Alias
}

// New builds the distribution for n items with the paper's θ parameter.
func New(n int, theta float64) (*Distribution, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zipf: need at least one item, got %d", n)
	}
	s := 1 - theta // conventional Zipf exponent
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		w := math.Pow(float64(i+1), -s)
		weights[i] = w
		total += w
	}
	probs := make([]float64, n)
	for i, w := range weights {
		probs[i] = w / total
	}
	alias, err := rng.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("zipf: %w", err)
	}
	return &Distribution{theta: theta, probs: probs, alias: alias}, nil
}

// Theta returns the θ the distribution was built with.
func (d *Distribution) Theta() float64 { return d.theta }

// N returns the number of items.
func (d *Distribution) N() int { return len(d.probs) }

// Prob returns p_i for item i (0-based; item 0 is the most popular).
func (d *Distribution) Prob(i int) float64 { return d.probs[i] }

// Probs returns the full probability vector. The caller must not modify
// the returned slice.
func (d *Distribution) Probs() []float64 { return d.probs }

// Sample draws an item index in O(1).
func (d *Distribution) Sample(p *rng.PCG) int { return d.alias.Sample(p) }

// ExpectedValue returns Σ p_i · v[i]; it is used to calibrate the
// arrival rate from per-video sizes. len(v) must equal N().
func (d *Distribution) ExpectedValue(v []float64) float64 {
	if len(v) != len(d.probs) {
		panic(fmt.Sprintf("zipf: value vector length %d != N %d", len(v), len(d.probs)))
	}
	e := 0.0
	for i, p := range d.probs {
		e += p * v[i]
	}
	return e
}
