package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Errorf("zero-value sample not inert: %+v", s)
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.N() != 1 || s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Errorf("single observation: %+v", s)
	}
	if s.Variance() != 0 || s.CI95() != 0 {
		t.Errorf("variance/CI of one observation must be 0")
	}
}

func TestKnownSample(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased sample variance of this classic set is 32/7.
	if want := 32.0 / 7; math.Abs(s.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

// Welford must agree with the two-pass textbook formulas.
func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 16
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-variance) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCI95FiveTrials(t *testing.T) {
	// Five trials (the paper's design): t critical value for df=4 is
	// 2.776.
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	want := 2.776 * s.StdErr()
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
}

func TestTCriticalTable(t *testing.T) {
	if got := tCritical95(1); got != 12.706 {
		t.Errorf("t(1) = %v", got)
	}
	if got := tCritical95(29); got != 2.045 {
		t.Errorf("t(29) = %v", got)
	}
	if got := tCritical95(500); got != 1.96 {
		t.Errorf("t(500) = %v, want normal approximation", got)
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestFromSample(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	p := FromSample(0.5, &s)
	if p.X != 0.5 || p.Mean != 2 || p.Min != 1 || p.Max != 3 || p.N != 2 {
		t.Errorf("FromSample = %+v", p)
	}
}

func TestStdErrShrinks(t *testing.T) {
	var small, large Sample
	for i := 0; i < 4; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 400; i++ {
		large.Add(float64(i % 2))
	}
	if large.StdErr() >= small.StdErr() {
		t.Errorf("StdErr did not shrink with n: %v vs %v", large.StdErr(), small.StdErr())
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	if got := s.String(); got == "" {
		t.Error("String() empty")
	}
}
