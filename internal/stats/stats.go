// Package stats provides the small statistical toolkit the experiment
// harness needs: streaming mean/variance accumulation (Welford), 95%
// confidence intervals across independent trials, and simple series
// containers for figure data.
package stats

import (
	"fmt"
	"math"
)

// Sample accumulates observations with Welford's online algorithm,
// which is numerically stable for long runs.
type Sample struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean, using Student's t critical values for the small trial counts
// the experiments use (5 trials as in the paper) and the normal
// approximation beyond the table.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return tCritical95(int(s.n-1)) * s.StdErr()
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom.
func tCritical95(df int) float64 {
	// Standard table values; df ≥ 30 uses the normal approximation.
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
		2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
		2.052, 2.048, 2.045,
	}
	if df <= 0 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Point is one aggregated datum of a figure: an x value with the mean
// and spread of the metric across trials.
type Point struct {
	X    float64
	Mean float64
	CI95 float64
	Min  float64
	Max  float64
	N    int64

	// Q, when non-nil, carries distribution quantiles for the point
	// (populated by the distribution-level experiments). The report
	// layer appends p50/p95/p99 columns only for series that have it,
	// so outputs without quantiles render byte-identically to before
	// the field existed.
	Q *Quantiles
}

// FromSample builds a Point at x from an accumulated sample.
func FromSample(x float64, s *Sample) Point {
	return Point{X: x, Mean: s.Mean(), CI95: s.CI95(), Min: s.Min(), Max: s.Max(), N: s.N()}
}

// Series is a named sequence of points — one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// String renders a compact single-line summary, handy in logs.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4f ±%.4f [%.4f, %.4f]", s.n, s.Mean(), s.CI95(), s.min, s.max)
}
