package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSketch drives two sketches through an arbitrary program of
// Add/Merge operations decoded from the fuzz input (9-byte chunks: one
// op byte, eight value bits) and then checks the structural contract:
// no panics anywhere, NaN/±Inf/negative observations rejected without
// perturbing state, every quantile — including for an arbitrary,
// possibly non-finite q — inside [Min, Max], and Quantile monotone over
// a q grid.
func FuzzSketch(f *testing.F) {
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\xf8\x7f\x01abcdefgh\x02xxxxxxxx"), 0.95)
	f.Add([]byte("\x00\x00\x00\x00\x00\x00\x00\x00\x00\x01\x00\x00\x00\x00\x00\x00\xf0\x7f"), 0.5)
	f.Add([]byte("\x03ABCDEFGH\x02abcdefgh\x00 \x00\x00\x00\x00\x00\x00\x00"), 0.0)
	f.Fuzz(func(t *testing.T, data []byte, q float64) {
		var a, b Sketch
		for len(data) >= 9 {
			op := data[0]
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[1:9]))
			data = data[9:]
			if op&2 == 2 {
				a.Merge(&b)
				continue
			}
			tgt := &a
			if op&1 == 1 {
				tgt = &b
			}
			before := *tgt
			ok := tgt.Add(v)
			bad := math.IsNaN(v) || math.IsInf(v, 0) || v < 0
			if ok == bad {
				t.Fatalf("Add(%g) = %v, want %v", v, ok, !bad)
			}
			if !ok && !tgt.Equal(&before) {
				t.Fatalf("rejected Add(%g) perturbed sketch", v)
			}
			if ok && tgt.N() != before.N()+1 {
				t.Fatalf("Add(%g): n %d -> %d", v, before.N(), tgt.N())
			}
		}
		for _, s := range []*Sketch{&a, &b} {
			if s.N() == 0 {
				if s.Quantile(q) != 0 || s.Quantile(0.5) != 0 {
					t.Fatal("empty sketch quantile != 0")
				}
				continue
			}
			if v := s.Quantile(q); v < s.Min() || v > s.Max() {
				t.Fatalf("Quantile(%g) = %g outside [%g, %g]", q, v, s.Min(), s.Max())
			}
			prev := math.Inf(-1)
			for i := 0; i <= 64; i++ {
				qq := float64(i) / 64
				v := s.Quantile(qq)
				if v < s.Min() || v > s.Max() {
					t.Fatalf("Quantile(%g) = %g outside [%g, %g]", qq, v, s.Min(), s.Max())
				}
				if v < prev {
					t.Fatalf("Quantile not monotone at q=%g: %g < %g", qq, v, prev)
				}
				prev = v
			}
		}
	})
}
