package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// rawValue maps fuzz/quick raw integers onto the observation space the
// sketch must cover: exact zeros plus positive values spread across
// ~15 binary orders of magnitude with varied mantissas.
func rawValue(r uint64) float64 {
	if r%11 == 0 {
		return 0
	}
	return math.Ldexp(float64(r%4096)+0.5, int(r%40)-20)
}

func sketchFromRaw(raw []uint32) (*Sketch, []float64) {
	s := new(Sketch)
	var vals []float64
	for _, r := range raw {
		v := rawValue(uint64(r))
		if s.Add(v) {
			vals = append(vals, v)
		}
	}
	return s, vals
}

// exactQuantile applies the sketch's rank rule (⌈q·n⌉, clamped) to a
// sorted slice — the reference the sketch is compared against.
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if !(q > 0) {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestSketchQuantileWithinBound checks the sketch against exact
// sorted-slice quantiles on random inputs: the error must stay within
// the documented SketchRelError bound, and ranks that land on exact
// zeros must return exactly zero.
func TestSketchQuantileWithinBound(t *testing.T) {
	f := func(raw []uint32, qRaw uint16) bool {
		s, vals := sketchFromRaw(raw)
		if len(vals) == 0 {
			return s.Quantile(0.5) == 0
		}
		sort.Float64s(vals)
		q := float64(qRaw) / 65535
		exact := exactQuantile(vals, q)
		got := s.Quantile(q)
		if exact == 0 {
			return got == 0
		}
		if got < s.Min() || got > s.Max() {
			return false
		}
		diff := math.Abs(got - exact)
		return diff <= exact*SketchRelError*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchQuantileMonotone checks that Quantile(q) never decreases as
// q grows, on random sketches over a dense q grid.
func TestSketchQuantileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		s, _ := sketchFromRaw(raw)
		prev := math.Inf(-1)
		for i := 0; i <= 200; i++ {
			q := float64(i) / 200
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchMergeCommutesAndAssociates checks bit-for-bit merge
// commutativity and associativity on random sketches — the property the
// sweep layer relies on when workers merge per-trial sketches.
func TestSketchMergeCommutesAndAssociates(t *testing.T) {
	f := func(ra, rb, rc []uint32) bool {
		a, _ := sketchFromRaw(ra)
		b, _ := sketchFromRaw(rb)
		c, _ := sketchFromRaw(rc)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !reflect.DeepEqual(ab, ba) || !ab.Equal(ba) {
			return false
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		return reflect.DeepEqual(abc1, abc2) && abc1.Equal(abc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchMergeMatchesCombinedAdds checks that merging two sketches
// is indistinguishable from adding both observation streams to one.
func TestSketchMergeMatchesCombinedAdds(t *testing.T) {
	f := func(ra, rb []uint32) bool {
		a, va := sketchFromRaw(ra)
		b, vb := sketchFromRaw(rb)
		a.Merge(b)
		both := new(Sketch)
		for _, v := range va {
			both.Add(v)
		}
		for _, v := range vb {
			both.Add(v)
		}
		return a.Equal(both)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSketchRejectsAndEdges(t *testing.T) {
	var s Sketch
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e-300} {
		if s.Add(bad) {
			t.Fatalf("Add(%g) accepted", bad)
		}
	}
	if s.N() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("rejected values perturbed the sketch: %+v", s)
	}

	if !s.Add(3.5) {
		t.Fatal("Add(3.5) rejected")
	}
	if s.Quantile(0) != 3.5 || s.Quantile(1) != 3.5 || s.Quantile(0.5) != 3.5 {
		t.Fatalf("single-value sketch quantiles: %g %g %g",
			s.Quantile(0), s.Quantile(0.5), s.Quantile(1))
	}

	s.Reset()
	for i := 0; i < 10; i++ {
		s.Add(0)
	}
	s.Add(2)
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("median of mostly-zeros = %g, want 0", got)
	}
	if got := s.Quantile(1); got != 2 {
		t.Fatalf("max quantile = %g, want 2", got)
	}
	if s.Min() != 0 || s.Max() != 2 || s.N() != 11 {
		t.Fatalf("extrema/n: min=%g max=%g n=%d", s.Min(), s.Max(), s.N())
	}

	// NaN q behaves like q ≤ 0.
	if got := s.Quantile(math.NaN()); got != s.Min() {
		t.Fatalf("Quantile(NaN) = %g, want min %g", got, s.Min())
	}

	// Denormal and huge magnitudes index without panicking and stay
	// within [min, max].
	s.Reset()
	s.Add(5e-324)
	s.Add(math.MaxFloat64)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		v := s.Quantile(q)
		if v < s.Min() || v > s.Max() {
			t.Fatalf("Quantile(%g) = %g outside [%g, %g]", q, v, s.Min(), s.Max())
		}
	}
}

// TestSampleObserveEquivalence pins the metamorphic contract of the
// Accumulator seam: feeding a Sample through Observe produces a
// bit-identical accumulator to calling Add directly, so routing the
// experiment metrics through Accumulator cannot move any mean or CI95.
func TestSampleObserveEquivalence(t *testing.T) {
	f := func(raw []uint32) bool {
		var direct, routed Sample
		var acc Accumulator = &routed
		for _, r := range raw {
			v := rawValue(uint64(r))
			direct.Add(v)
			acc.Observe(v)
		}
		return direct == routed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardIsInert(t *testing.T) {
	Discard.Observe(math.NaN())
	Discard.Observe(1e300)
	Discard.Observe(-1)
}

func TestSketchSummary(t *testing.T) {
	var s Sketch
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	q := s.Summary()
	check := func(name string, got, want float64) {
		if math.Abs(got-want) > want*SketchRelError*(1+1e-12) {
			t.Errorf("%s = %g, want %g ± %g%%", name, got, want, 100*SketchRelError)
		}
	}
	check("P50", q.P50, 500)
	check("P95", q.P95, 950)
	check("P99", q.P99, 990)
}
