package stats

import (
	"math"
	"testing"
)

// The sketch sits on the per-observation hot path of 10^7-request
// runs; these benches keep Add/Quantile/Merge costs visible in the CI
// bench-smoke job.

func BenchmarkSketchAdd(b *testing.B) {
	var s Sketch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(math.Ldexp(float64(i%4096)+0.5, i%20-10))
	}
}

func BenchmarkSketchQuantile(b *testing.B) {
	var s Sketch
	for i := 0; i < 100_000; i++ {
		s.Add(math.Ldexp(float64(i%4096)+0.5, i%20-10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(float64(i%100) / 100)
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	var a, o Sketch
	for i := 0; i < 10_000; i++ {
		a.Add(math.Ldexp(float64(i%4096)+0.5, i%20-10))
		o.Add(math.Ldexp(float64(i%4096)+0.5, (i+7)%20-10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := a.Clone()
		c.Merge(&o)
	}
}
