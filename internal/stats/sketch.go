package stats

import "math"

// Accumulator is the streaming-observation seam between the simulation
// hot paths and the statistics layer: one method, no error, no result.
// The engine records every observation unconditionally into whatever
// accumulator is bound to a channel — Discard when statistics are off —
// so recording never branches on configuration. *Sample and *Sketch
// both implement it.
type Accumulator interface {
	// Observe records one observation. Implementations must be O(1)
	// amortized and must silently ignore values they cannot represent
	// (the sketch rejects NaN, ±Inf, and negatives).
	Observe(x float64)
}

// Discard is the no-op Accumulator observation channels default to.
var Discard Accumulator = discard{}

type discard struct{}

func (discard) Observe(float64) {}

// Observe implements Accumulator for *Sample.
func (s *Sample) Observe(x float64) { s.Add(x) }

// Sketch parameters: each binary order of magnitude [2^(k-1), 2^k) is
// split into 2^sketchSubBits equal-width sub-buckets, giving a relative
// quantile error of at most 1/2^(sketchSubBits+1) (the bucket midpoint
// is returned; see Quantile). frexp exponents for positive float64
// values lie in [-1073, 1024]; the offset keeps bucket indices
// non-negative.
const (
	sketchSubBits    = 5
	sketchSubBuckets = 1 << sketchSubBits // 32 sub-buckets per octave
	sketchExpOffset  = 1074
	sketchMaxIndex   = (1024 + sketchExpOffset + 1) * sketchSubBuckets

	// SketchRelError is the documented worst-case relative error of
	// Quantile against the exact sorted-slice quantile of the same
	// observations: half a sub-bucket width over the bucket's smallest
	// value, 1/64. The property tests in sketch_test.go enforce it.
	SketchRelError = 1.0 / (2 * sketchSubBuckets)
)

// Sketch is a deterministic, mergeable quantile sketch over
// non-negative observations: a histogram of base-2 exponent ranges
// (via math.Frexp, a bit-exact operation on every platform) split into
// linear sub-buckets, with exact integer counts.
//
// Determinism and mergeability are the design constraints, and both are
// structural rather than numerical:
//
//   - bucket indexing uses only Frexp, exact float subtraction
//     (Sterbenz: f − 0.5 for f ∈ [0.5, 1)), multiplication by a power
//     of two, and integer truncation — no library call with
//     platform-variant rounding, no map iteration anywhere;
//   - counts are uint64, so Merge is integer addition: bit-for-bit
//     commutative and associative, which is what lets sweep workers
//     merge per-trial sketches in submission order and reproduce the
//     serial result exactly at any worker count;
//   - the dense count slice always covers exactly the union of observed
//     bucket index ranges, so the representation after any sequence of
//     Add/Merge depends only on the multiset of observations, not the
//     order they arrived in.
//
// Zero is counted exactly (its own counter, no bucket), min and max are
// tracked exactly, and NaN/±Inf/negative observations are rejected.
// The zero value is an empty sketch ready for use.
type Sketch struct {
	n      uint64 // total accepted observations
	zero   uint64 // observations equal to zero (exact)
	min    float64
	max    float64
	lo     int      // bucket index of counts[0]
	counts []uint64 // dense counts over [lo, lo+len(counts))
}

// bucketIndex maps a positive finite value to its bucket index. Every
// step is bit-exact: Frexp is pure bit manipulation, f−0.5 is exact for
// f ∈ [0.5, 1), scaling by 2·sketchSubBuckets is a power-of-two
// multiply, and the int conversion truncates.
func bucketIndex(x float64) int {
	f, exp := math.Frexp(x)
	sub := int((f - 0.5) * (2 * sketchSubBuckets))
	return (exp+sketchExpOffset)<<sketchSubBits + sub
}

// bucketMid returns the bucket's midpoint, the representative value
// Quantile reports. Exact arithmetic again: (64 + 2·sub + 1)/128 is a
// dyadic rational well inside float64 precision, and Ldexp scales by a
// power of two.
func bucketMid(idx int) float64 {
	exp := idx>>sketchSubBits - sketchExpOffset
	sub := idx & (sketchSubBuckets - 1)
	return math.Ldexp(0.5+(float64(sub)+0.5)/(2*sketchSubBuckets), exp)
}

// Add records one observation. It returns false — and records nothing —
// for NaN, ±Inf, and negative values.
func (s *Sketch) Add(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		return false
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	if x == 0 {
		s.zero++
		return true
	}
	idx := bucketIndex(x)
	s.ensure(idx, idx+1)
	s.counts[idx-s.lo]++
	return true
}

// Observe implements Accumulator: Add with rejects ignored.
func (s *Sketch) Observe(x float64) { s.Add(x) }

// ensure grows counts to cover [lo, hi). Growth allocates exactly the
// union of the old and requested ranges, keeping the representation a
// pure function of the observed multiset (no capacity-dependent
// layout). Observation ranges in practice span a few octaves, so growth
// is rare and small.
func (s *Sketch) ensure(lo, hi int) {
	if s.counts == nil {
		s.lo = lo
		s.counts = make([]uint64, hi-lo)
		return
	}
	curHi := s.lo + len(s.counts)
	if lo >= s.lo && hi <= curHi {
		return
	}
	if s.lo < lo {
		lo = s.lo
	}
	if curHi > hi {
		hi = curHi
	}
	grown := make([]uint64, hi-lo)
	copy(grown[s.lo-lo:], s.counts)
	s.lo, s.counts = lo, grown
}

// N returns the number of accepted observations.
func (s *Sketch) N() uint64 { return s.n }

// Min returns the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds o into s. Counts are integer sums and the covered range
// becomes the exact union, so merging is bit-for-bit commutative and
// associative: any merge tree over the same sketches yields an
// identical struct. o is unmodified; a nil or empty o is a no-op.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.n += o.n
	s.zero += o.zero
	if len(o.counts) > 0 {
		s.ensure(o.lo, o.lo+len(o.counts))
		for i, c := range o.counts {
			s.counts[o.lo+i-s.lo] += c
		}
	}
}

// Clone returns an independent copy of s.
func (s *Sketch) Clone() *Sketch {
	c := *s
	if s.counts != nil {
		c.counts = append([]uint64(nil), s.counts...)
	}
	return &c
}

// Equal reports whether two sketches hold identical state — counts,
// range, extrema, and totals all bit-for-bit. The determinism tests
// compare per-worker-count merge results with it.
func (s *Sketch) Equal(o *Sketch) bool {
	if s.n != o.n || s.zero != o.zero {
		return false
	}
	if s.n > 0 && (s.min != o.min || s.max != o.max) {
		return false
	}
	if len(s.counts) != len(o.counts) {
		return false
	}
	if len(s.counts) > 0 && s.lo != o.lo {
		return false
	}
	for i, c := range s.counts {
		if c != o.counts[i] {
			return false
		}
	}
	return true
}

// Reset empties the sketch for reuse.
func (s *Sketch) Reset() { *s = Sketch{} }

// Quantile returns an estimate of the q-quantile of the observed
// multiset: the midpoint of the bucket holding the element of rank
// ⌈q·n⌉, clamped to [Min, Max]. Guarantees, enforced by the property
// tests:
//
//   - the result lies in [Min, Max] (exactly Min for q ≤ 0, Max for
//     q ≥ 1, and 0 is returned exactly when the rank falls among zero
//     observations);
//   - relative error against the exact sorted-slice quantile with the
//     same rank rule is at most SketchRelError;
//   - Quantile is monotone non-decreasing in q.
//
// An empty sketch returns 0; a NaN q is treated as 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	if !(q > 0) {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	if rank <= s.zero {
		return 0
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(s.lo + i)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Quantiles is the p50/p95/p99 summary the report layer renders as
// additional columns.
type Quantiles struct {
	P50 float64
	P95 float64
	P99 float64
}

// Summary returns the sketch's p50/p95/p99.
func (s *Sketch) Summary() Quantiles {
	return Quantiles{P50: s.Quantile(0.50), P95: s.Quantile(0.95), P99: s.Quantile(0.99)}
}
