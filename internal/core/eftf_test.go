package core

import (
	"math"
	"testing"
)

// mkServer builds a bare server with the given bandwidth.
func mkServer(bandwidth float64, bview float64) *server {
	s := &server{id: 0, bandwidth: bandwidth, slots: int(bandwidth / bview)}
	s.ln.beginRound() // start the wake index empty (+Inf), as Reset does
	return s
}

// rateOf reads an attached request's current allocation from its
// server's lane (the authoritative store while attached).
func rateOf(s *server, r *request) float64 { return s.ln.rate[r.slot] }

// addReq attaches a synthetic request with the given remaining volume,
// elapsed play time, and buffer contents at time t=now implied by those.
// Client capabilities are copied from the engine config, as admission
// would do.
func addReq(e *Engine, s *server, id int64, size, sent, start, now float64) *request {
	r := &request{
		id: id, size: size, carrySent: sent, start: start, carryLast: now,
		bufCap: e.cfg.BufferCapacity, recvCap: e.cfg.ReceiveCap,
	}
	s.attach(r)
	return r
}

func TestAllocateMinimumFlowOnly(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: false}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r1 := addReq(e, s, 1, 3600, 0, 0, 0)
	r2 := addReq(e, s, 2, 3600, 100, 0, 0)
	e.allocate(s, 0)
	if rateOf(s, r1) != 3 || rateOf(s, r2) != 3 {
		t.Errorf("rates = %v, %v; want exactly b_view without workahead", rateOf(s, r1), rateOf(s, r2))
	}
}

func TestAllocateSpareToEarliestFinisher(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 10000,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	far := addReq(e, s, 1, 3600, 0, 0, 0)     // 3600 Mb remaining
	near := addReq(e, s, 2, 3600, 3000, 0, 0) // 600 Mb remaining — earliest finish
	mid := addReq(e, s, 3, 3600, 1000, 0, 0)  // 2600 Mb remaining
	e.allocate(s, 0)
	// Spare = 100 − 3×3 = 91, but each client absorbs at most
	// b_receive − b_view = 27 extra: every request is capped at 30 and
	// 10 Mb/s legitimately goes unused (the receive-bound regime the
	// paper notes keeps EFTF from provable optimality).
	for _, r := range []*request{near, mid, far} {
		if !approx(rateOf(s, r), 30, 1e-9) {
			t.Errorf("request %d rate = %v, want receive cap 30", r.id, rateOf(s, r))
		}
	}
	total := rateOf(s, near) + rateOf(s, mid) + rateOf(s, far)
	if !approx(total, 90, 1e-9) {
		t.Errorf("allocated %v, want 90 (10 unusable under the cap)", total)
	}
}

func TestAllocateUnlimitedReceive(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	near := addReq(e, s, 1, 3600, 3000, 0, 0)
	far := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	if !approx(rateOf(s, near), 97, 1e-9) {
		t.Errorf("earliest finisher rate = %v, want all spare (97)", rateOf(s, near))
	}
	if !approx(rateOf(s, far), 3, 1e-9) {
		t.Errorf("other rate = %v, want b_view", rateOf(s, far))
	}
}

func TestAllocateSkipsFullBuffers(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 600,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	// full has sent 600 with zero viewed: buffer exactly at capacity.
	full := addReq(e, s, 1, 3600, 600, 0, 0)
	other := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	if !approx(rateOf(s, full), 3, 1e-9) {
		t.Errorf("buffer-full request rate = %v, want b_view only", rateOf(s, full))
	}
	if !approx(rateOf(s, other), 30, 1e-9) {
		t.Errorf("other rate = %v, want receive cap", rateOf(s, other))
	}
}

func TestAllocateReceiveCapEqualsViewRate(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 3, BufferCapacity: 600,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 0, 0, 0)
	e.allocate(s, 0) // must terminate and leave r at b_view
	if !approx(rateOf(s, r), 3, 1e-9) {
		t.Errorf("rate = %v, want 3 with zero receive headroom", rateOf(s, r))
	}
}

func TestAllocateSuspendedGetsNothing(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: true, BufferCapacity: 600, ReceiveCap: 30}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 300, 0, 0)
	s.setSuspend(r, 50)
	e.allocate(s, 0)
	if rateOf(s, r) != 0 {
		t.Errorf("suspended request rate = %v, want 0", rateOf(s, r))
	}
}

func TestNextWakeFinishTime(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 3000, 0, 0)
	s.ln.rate[r.slot] = 3
	if got := e.nextWake(s, 0); !approx(got, 200, 1e-9) {
		t.Errorf("nextWake = %v, want finish at 200 (600 Mb / 3 Mb/s)", got)
	}
}

func TestNextWakeBufferFull(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: true, BufferCapacity: 270, ReceiveCap: 30}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 36000, 0, 0, 0)
	s.ln.rate[r.slot] = 30
	// Buffer fills at 27 Mb/s; 270 Mb capacity → full at t=10, long
	// before the finish at 1200.
	if got := e.nextWake(s, 0); !approx(got, 10, 1e-9) {
		t.Errorf("nextWake = %v, want buffer-full at 10", got)
	}
}

func TestNextWakeSuspendedResume(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 600, 0, 0)
	s.setSuspend(r, 42)
	s.ln.rate[r.slot] = 0
	if got := e.nextWake(s, 0); !approx(got, 42, 1e-9) {
		t.Errorf("nextWake = %v, want resume at 42", got)
	}
}

func TestNextWakeIdleServer(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	if got := e.nextWake(s, 5); !math.IsInf(got, 1) {
		t.Errorf("nextWake on idle server = %v, want +Inf", got)
	}
}

func TestRescheduleBumpsVersionAndSchedules(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	addReq(e, s, 1, 3600, 0, 0, 0)
	v0 := s.version
	e.reschedule(s, 0)
	if s.version != v0+1 {
		t.Errorf("version = %d, want %d", s.version, v0+1)
	}
	if !e.hasHeld {
		t.Error("reschedule did not hold a wake event")
	}
	tm, ev, ok := e.popEvent()
	if !ok {
		t.Fatal("popEvent returned no event")
	}
	if ev.kind != evServerWake || ev.version != s.version {
		t.Errorf("queued event = %+v", ev)
	}
	if !approx(tm, 1200, 1e-9) {
		t.Errorf("wake at %v, want finish time 1200", tm)
	}
}

func TestSpareDisciplineLFTF(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: LFTF,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	near := addReq(e, s, 1, 3600, 3000, 0, 0) // earliest finisher
	far := addReq(e, s, 2, 3600, 0, 0, 0)     // latest finisher
	e.allocate(s, 0)
	if !approx(rateOf(s, far), 97, 1e-9) {
		t.Errorf("latest finisher rate = %v, want all spare under LFTF", rateOf(s, far))
	}
	if !approx(rateOf(s, near), 3, 1e-9) {
		t.Errorf("earliest finisher rate = %v, want b_view", rateOf(s, near))
	}
}

func TestSpareDisciplineEvenSplit(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: EvenSplit,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	a := addReq(e, s, 1, 3600, 3000, 0, 0)
	b := addReq(e, s, 2, 3600, 0, 0, 0)
	c := addReq(e, s, 3, 3600, 1000, 0, 0)
	e.allocate(s, 0)
	// Spare = 30 − 9 = 21, split three ways: 7 each → rate 10.
	for _, r := range []*request{a, b, c} {
		if !approx(rateOf(s, r), 10, 1e-9) {
			t.Errorf("request %d rate = %v, want 10 under even split", r.id, rateOf(s, r))
		}
	}
}

func TestSpareDisciplineEvenSplitWaterFilling(t *testing.T) {
	// One client is nearly saturated (receive cap 6): its unused share
	// must flow to the other candidate.
	cfg := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: EvenSplit,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	capped := addReq(e, s, 1, 3600, 0, 0, 0)
	capped.recvCap = 6
	open := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	// Spare = 24. capped absorbs 3 (to its 6 Mb/s cap); open takes the
	// remaining 21 → rate 24.
	if !approx(rateOf(s, capped), 6, 1e-9) {
		t.Errorf("capped rate = %v, want 6", rateOf(s, capped))
	}
	if !approx(rateOf(s, open), 24, 1e-9) {
		t.Errorf("open rate = %v, want 24 (water-filling)", rateOf(s, open))
	}
}

func TestSpareDisciplineValidation(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{30}, ViewRate: 3, Spare: SpareDiscipline(9)}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown spare discipline accepted")
	}
	if EFTF.String() != "eftf" || LFTF.String() != "lftf" || EvenSplit.String() != "even-split" {
		t.Error("discipline names wrong")
	}
	if SpareDiscipline(9).String() == "" {
		t.Error("unknown discipline renders empty")
	}
}

// TestWakeIndexMatchesScan pins the incremental wake index's core
// property: after any allocation round, the stored-key answer wakeAt
// equals the from-scratch scan nextWake bit for bit — across spare
// disciplines, the intermittent scheduler, suspended slots, and after
// a detach forces a lazy repair.
func TestWakeIndexMatchesScan(t *testing.T) {
	for _, spare := range []SpareDiscipline{EFTF, LFTF, EvenSplit} {
		for _, intermittent := range []bool{false, true} {
			for _, k := range []int{1, 7, 33} {
				bview := 3.0
				bw := bview * float64(k) * 1.1
				if intermittent {
					bw = bview * float64(k) * 0.9 // over-subscribed: pause branch runs
				}
				cfg := Config{
					ServerBandwidth: []float64{bw}, ViewRate: bview,
					Workahead: true, ReceiveCap: 30, BufferCapacity: 2000,
					Spare: spare, Intermittent: intermittent,
				}
				e := &Engine{cfg: cfg}
				s := mkServer(bw, bview)
				for i := 0; i < k; i++ {
					r := addReq(e, s, int64(i+1), 16200, float64(i*137%16000)+1, 0, 0)
					if i%5 == 4 {
						s.setSuspend(r, 50)
					}
				}
				e.allocate(s, 0)
				if got, want := s.wakeAt(0), e.nextWake(s, 0); got != want {
					t.Fatalf("spare=%v intermittent=%v k=%d: wakeAt=%v != nextWake=%v",
						spare, intermittent, k, got, want)
				}
				// Detaching a slot invalidates the maintained min; the
				// repaired answer must still match a scan of the survivors.
				if k > 1 {
					s.detach(s.active[0])
					if !s.ln.wakeDirty && len(s.ln.wake) > 0 {
						// detach must have marked the index dirty
						t.Fatalf("spare=%v intermittent=%v k=%d: detach left index clean", spare, intermittent, k)
					}
					if got, want := s.wakeAt(0), e.nextWake(s, 0); got != want {
						t.Fatalf("spare=%v intermittent=%v k=%d after detach: wakeAt=%v != nextWake=%v",
							spare, intermittent, k, got, want)
					}
				}
			}
		}
	}
}

// EFTF must never accept fewer requests than the alternatives on the
// same workload when receive bandwidth is unbounded — the empirical
// face of the paper's Theorem.
func TestEFTFBeatsAlternatives(t *testing.T) {
	accepted := func(d SpareDiscipline, seed uint64) int64 {
		e, _ := buildRandomSim(t, seed, true, false)
		e.cfg.Spare = d
		e.cfg.ReceiveCap = 0 // theorem's premise: unbounded receive
		m, err := e.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		return m.Accepted
	}
	for seed := uint64(1); seed <= 6; seed++ {
		eftf := accepted(EFTF, seed)
		lftf := accepted(LFTF, seed)
		even := accepted(EvenSplit, seed)
		// Sample-path anomalies are possible (an early acceptance can
		// reshuffle later ones), so allow a whisker.
		if float64(eftf) < float64(lftf)*0.995 || float64(eftf) < float64(even)*0.995 {
			t.Errorf("seed %d: EFTF %d below LFTF %d or EvenSplit %d", seed, eftf, lftf, even)
		}
	}
}
