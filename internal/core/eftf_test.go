package core

import (
	"math"
	"testing"
)

// mkServer builds a bare server with the given bandwidth.
func mkServer(bandwidth float64, bview float64) *server {
	return &server{id: 0, bandwidth: bandwidth, slots: int(bandwidth / bview)}
}

// addReq attaches a synthetic request with the given remaining volume,
// elapsed play time, and buffer contents at time t=now implied by those.
// Client capabilities are copied from the engine config, as admission
// would do.
func addReq(e *Engine, s *server, id int64, size, sent, start, now float64) *request {
	r := &request{
		id: id, size: size, sent: sent, start: start, last: now,
		bufCap: e.cfg.BufferCapacity, recvCap: e.cfg.ReceiveCap,
	}
	s.attach(r)
	return r
}

func TestAllocateMinimumFlowOnly(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: false}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r1 := addReq(e, s, 1, 3600, 0, 0, 0)
	r2 := addReq(e, s, 2, 3600, 100, 0, 0)
	e.allocate(s, 0)
	if r1.rate != 3 || r2.rate != 3 {
		t.Errorf("rates = %v, %v; want exactly b_view without workahead", r1.rate, r2.rate)
	}
}

func TestAllocateSpareToEarliestFinisher(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 10000,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	far := addReq(e, s, 1, 3600, 0, 0, 0)     // 3600 Mb remaining
	near := addReq(e, s, 2, 3600, 3000, 0, 0) // 600 Mb remaining — earliest finish
	mid := addReq(e, s, 3, 3600, 1000, 0, 0)  // 2600 Mb remaining
	e.allocate(s, 0)
	// Spare = 100 − 3×3 = 91, but each client absorbs at most
	// b_receive − b_view = 27 extra: every request is capped at 30 and
	// 10 Mb/s legitimately goes unused (the receive-bound regime the
	// paper notes keeps EFTF from provable optimality).
	for _, r := range []*request{near, mid, far} {
		if !approx(r.rate, 30, 1e-9) {
			t.Errorf("request %d rate = %v, want receive cap 30", r.id, r.rate)
		}
	}
	total := near.rate + mid.rate + far.rate
	if !approx(total, 90, 1e-9) {
		t.Errorf("allocated %v, want 90 (10 unusable under the cap)", total)
	}
}

func TestAllocateUnlimitedReceive(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	near := addReq(e, s, 1, 3600, 3000, 0, 0)
	far := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	if !approx(near.rate, 97, 1e-9) {
		t.Errorf("earliest finisher rate = %v, want all spare (97)", near.rate)
	}
	if !approx(far.rate, 3, 1e-9) {
		t.Errorf("other rate = %v, want b_view", far.rate)
	}
}

func TestAllocateSkipsFullBuffers(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 600,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	// full has sent 600 with zero viewed: buffer exactly at capacity.
	full := addReq(e, s, 1, 3600, 600, 0, 0)
	other := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	if !approx(full.rate, 3, 1e-9) {
		t.Errorf("buffer-full request rate = %v, want b_view only", full.rate)
	}
	if !approx(other.rate, 30, 1e-9) {
		t.Errorf("other rate = %v, want receive cap", other.rate)
	}
}

func TestAllocateReceiveCapEqualsViewRate(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 3, BufferCapacity: 600,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 0, 0, 0)
	e.allocate(s, 0) // must terminate and leave r at b_view
	if !approx(r.rate, 3, 1e-9) {
		t.Errorf("rate = %v, want 3 with zero receive headroom", r.rate)
	}
}

func TestAllocateSuspendedGetsNothing(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: true, BufferCapacity: 600, ReceiveCap: 30}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 300, 0, 0)
	r.suspendedUntil = 50
	e.allocate(s, 0)
	if r.rate != 0 {
		t.Errorf("suspended request rate = %v, want 0", r.rate)
	}
}

func TestNextWakeFinishTime(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 3000, 0, 0)
	r.rate = 3
	if got := e.nextWake(s, 0); !approx(got, 200, 1e-9) {
		t.Errorf("nextWake = %v, want finish at 200 (600 Mb / 3 Mb/s)", got)
	}
}

func TestNextWakeBufferFull(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Workahead: true, BufferCapacity: 270, ReceiveCap: 30}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 36000, 0, 0, 0)
	r.rate = 30
	// Buffer fills at 27 Mb/s; 270 Mb capacity → full at t=10, long
	// before the finish at 1200.
	if got := e.nextWake(s, 0); !approx(got, 10, 1e-9) {
		t.Errorf("nextWake = %v, want buffer-full at 10", got)
	}
}

func TestNextWakeSuspendedResume(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	r := addReq(e, s, 1, 3600, 600, 0, 0)
	r.suspendedUntil = 42
	r.rate = 0
	if got := e.nextWake(s, 0); !approx(got, 42, 1e-9) {
		t.Errorf("nextWake = %v, want resume at 42", got)
	}
}

func TestNextWakeIdleServer(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	if got := e.nextWake(s, 5); !math.IsInf(got, 1) {
		t.Errorf("nextWake on idle server = %v, want +Inf", got)
	}
}

func TestRescheduleBumpsVersionAndSchedules(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	addReq(e, s, 1, 3600, 0, 0, 0)
	v0 := s.version
	e.reschedule(s, 0)
	if s.version != v0+1 {
		t.Errorf("version = %d, want %d", s.version, v0+1)
	}
	if !e.hasHeld {
		t.Error("reschedule did not hold a wake event")
	}
	tm, ev, ok := e.popEvent()
	if !ok {
		t.Fatal("popEvent returned no event")
	}
	if ev.kind != evServerWake || ev.version != s.version {
		t.Errorf("queued event = %+v", ev)
	}
	if !approx(tm, 1200, 1e-9) {
		t.Errorf("wake at %v, want finish time 1200", tm)
	}
}

func TestSpareDisciplineLFTF(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: LFTF,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(100, 3)
	near := addReq(e, s, 1, 3600, 3000, 0, 0) // earliest finisher
	far := addReq(e, s, 2, 3600, 0, 0, 0)     // latest finisher
	e.allocate(s, 0)
	if !approx(far.rate, 97, 1e-9) {
		t.Errorf("latest finisher rate = %v, want all spare under LFTF", far.rate)
	}
	if !approx(near.rate, 3, 1e-9) {
		t.Errorf("earliest finisher rate = %v, want b_view", near.rate)
	}
}

func TestSpareDisciplineEvenSplit(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: EvenSplit,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	a := addReq(e, s, 1, 3600, 3000, 0, 0)
	b := addReq(e, s, 2, 3600, 0, 0, 0)
	c := addReq(e, s, 3, 3600, 1000, 0, 0)
	e.allocate(s, 0)
	// Spare = 30 − 9 = 21, split three ways: 7 each → rate 10.
	for _, r := range []*request{a, b, c} {
		if !approx(r.rate, 10, 1e-9) {
			t.Errorf("request %d rate = %v, want 10 under even split", r.id, r.rate)
		}
	}
}

func TestSpareDisciplineEvenSplitWaterFilling(t *testing.T) {
	// One client is nearly saturated (receive cap 6): its unused share
	// must flow to the other candidate.
	cfg := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, ReceiveCap: 0, BufferCapacity: 10000,
		Spare: EvenSplit,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	capped := addReq(e, s, 1, 3600, 0, 0, 0)
	capped.recvCap = 6
	open := addReq(e, s, 2, 3600, 0, 0, 0)
	e.allocate(s, 0)
	// Spare = 24. capped absorbs 3 (to its 6 Mb/s cap); open takes the
	// remaining 21 → rate 24.
	if !approx(capped.rate, 6, 1e-9) {
		t.Errorf("capped rate = %v, want 6", capped.rate)
	}
	if !approx(open.rate, 24, 1e-9) {
		t.Errorf("open rate = %v, want 24 (water-filling)", open.rate)
	}
}

func TestSpareDisciplineValidation(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{30}, ViewRate: 3, Spare: SpareDiscipline(9)}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown spare discipline accepted")
	}
	if EFTF.String() != "eftf" || LFTF.String() != "lftf" || EvenSplit.String() != "even-split" {
		t.Error("discipline names wrong")
	}
	if SpareDiscipline(9).String() == "" {
		t.Error("unknown discipline renders empty")
	}
}

// EFTF must never accept fewer requests than the alternatives on the
// same workload when receive bandwidth is unbounded — the empirical
// face of the paper's Theorem.
func TestEFTFBeatsAlternatives(t *testing.T) {
	accepted := func(d SpareDiscipline, seed uint64) int64 {
		e, _ := buildRandomSim(t, seed, true, false)
		e.cfg.Spare = d
		e.cfg.ReceiveCap = 0 // theorem's premise: unbounded receive
		m, err := e.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		return m.Accepted
	}
	for seed := uint64(1); seed <= 6; seed++ {
		eftf := accepted(EFTF, seed)
		lftf := accepted(LFTF, seed)
		even := accepted(EvenSplit, seed)
		// Sample-path anomalies are possible (an early acceptance can
		// reshuffle later ones), so allow a whisker.
		if float64(eftf) < float64(lftf)*0.995 || float64(eftf) < float64(even)*0.995 {
			t.Errorf("seed %d: EFTF %d below LFTF %d or EvenSplit %d", seed, eftf, lftf, even)
		}
	}
}
