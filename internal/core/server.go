package core

// server is one data source in the cluster. Storage is decided by the
// static placement (a server only ever transmits videos it holds); the
// engine tracks only the transmission side.
type server struct {
	id        int32
	bandwidth float64 // Mb/s
	slots     int     // ⌊bandwidth / b_view⌋, the minimum-flow capacity

	active []*request // unfinished requests currently assigned here
	copies []*copyJob // replica transfers sourced from this server

	// version lazily invalidates scheduled wake events: an event whose
	// version no longer matches is stale and is dropped on pop.
	version uint64

	failed bool
}

// hasSlot reports whether the server can admit one more stream under
// minimum-flow admission: the sum of view bandwidths of its unfinished
// requests plus one more must not exceed its capacity.
func (s *server) hasSlot() bool {
	return !s.failed && len(s.active) < s.slots
}

// load returns the number of unfinished requests assigned to s. The
// controller assigns new arrivals to the replica holder with the
// smallest load (Section 3.2's request assignment rule).
func (s *server) load() int { return len(s.active) }

// attach adds r to the active set.
func (s *server) attach(r *request) {
	r.server = s.id
	r.slot = int32(len(s.active))
	s.active = append(s.active, r)
}

// detach removes r from the active set in O(1) by swapping the last
// element into its slot.
func (s *server) detach(r *request) {
	i := int(r.slot)
	last := len(s.active) - 1
	s.active[i] = s.active[last]
	s.active[i].slot = int32(i)
	s.active[last] = nil
	s.active = s.active[:last]
	r.slot = -1
}

// syncAll advances every active request's and copy job's fluid state
// to time t.
func (s *server) syncAll(t float64) {
	for _, r := range s.active {
		r.syncTo(t)
	}
	for _, c := range s.copies {
		c.syncTo(t)
	}
}
