package core

// server is one data source in the cluster. Storage is decided by the
// static placement (a server only ever transmits videos it holds); the
// engine tracks only the transmission side.
type server struct {
	id        int32
	bandwidth float64 // Mb/s
	slots     int     // ⌊bandwidth / b_view⌋, the minimum-flow capacity

	active []*request // unfinished requests currently assigned here
	copies []*copyJob // replica transfers sourced from this server

	// ln is the server's structure-of-arrays data plane: the active
	// requests' hot fields and the stored wake keys, parallel to the
	// active slice (see lane.go for the ownership contract).
	ln lane

	// version lazily invalidates scheduled wake events: an event whose
	// version no longer matches is stale and is dropped on pop.
	version uint64

	failed bool

	// dimFrac is the brownout state: 0 when the server runs at full
	// capacity, otherwise the fraction f ∈ (0,1] its effective bandwidth
	// (and the slots derived from it) is scaled to. The base capacity
	// stays in Config.ServerBandwidth; bandwidth/slots above always hold
	// the effective values, so allocators, selectors, and invariants
	// need no brownout awareness.
	dimFrac float64
}

// hasSlot reports whether the server can admit one more stream under
// minimum-flow admission: the sum of view bandwidths of its unfinished
// requests plus one more must not exceed its capacity.
func (s *server) hasSlot() bool {
	return !s.failed && len(s.active) < s.slots
}

// load returns the number of unfinished requests assigned to s. The
// controller assigns new arrivals to the replica holder with the
// smallest load (Section 3.2's request assignment rule).
func (s *server) load() int { return len(s.active) }

// attach adds r to the active set, loading its carried hot fields into
// the lane.
func (s *server) attach(r *request) {
	r.server = s.id
	r.slot = int32(len(s.active))
	s.active = append(s.active, r)
	s.ln.attach(r)
}

// detach removes r from the active set in O(1) by swapping the last
// element into its slot, storing the lane slot back into r's carry
// fields.
func (s *server) detach(r *request) {
	i := int(r.slot)
	last := len(s.active) - 1
	s.ln.detach(r, i, last)
	s.active[i] = s.active[last]
	s.active[i].slot = int32(i)
	s.active[last] = nil
	s.active = s.active[:last]
	r.slot = -1
}

// syncAll advances every active request's and copy job's fluid state
// to time t.
func (s *server) syncAll(t float64) {
	s.syncStreams(t)
	for _, c := range s.copies {
		c.syncTo(t)
	}
}

// syncStreams advances the active requests' fluid state to time t: one
// pass over the lane's contiguous arrays, the same arithmetic (and the
// same size clamp) request.syncTo applies to the carried state.
func (s *server) syncStreams(t float64) {
	lastA := s.ln.last
	// Reslicing to lastA's length lets the compiler drop the per-element
	// bounds checks on the parallel arrays.
	rateA := s.ln.rate[:len(lastA)]
	sentA := s.ln.sent[:len(lastA)]
	sizeA := s.ln.size[:len(lastA)]
	for i, last := range lastA {
		if t <= last {
			continue
		}
		if rate := rateA[i]; rate > 0 {
			sent := sentA[i] + rate*(t-last)
			if sent > sizeA[i] {
				sent = sizeA[i]
			}
			sentA[i] = sent
		}
		lastA[i] = t
	}
}

// Per-slot fluid reads, the lane counterparts of the carry-state
// methods on request.

// remainingOf returns slot i's untransmitted volume.
func (s *server) remainingOf(i int) float64 {
	rem := s.ln.size[i] - s.ln.sent[i]
	if rem < 0 {
		return 0
	}
	return rem
}

// finishedAt reports whether slot i's transmission is complete.
func (s *server) finishedAt(i int) bool { return s.remainingOf(i) <= dataEps }

// suspendedAt reports whether slot i is mid-switch at time t.
func (s *server) suspendedAt(i int, t float64) bool { return s.ln.susp[i] > t+timeEps }

// bufferOf returns slot i's client buffer occupancy at time t. The
// slot must be synced to t.
func (s *server) bufferOf(i int, t, bview float64) float64 {
	b := s.ln.sent[i] - s.active[i].viewedAt(t, bview)
	if b < 0 {
		return 0 // float noise only; the model guarantees buffer ≥ 0
	}
	return b
}

// setSuspend sets the attached request r's suspension deadline (a
// mid-switch blackout, written after attach by migration and park
// reconnection).
func (s *server) setSuspend(r *request, until float64) { s.ln.susp[r.slot] = until }
