// Package alloc is the index layer beneath the engine's bandwidth
// allocators: reusable, pointer-free ordered indexes over per-server
// allocation candidates.
//
// The engine's allocation policies (EFTF, LFTF, intermittent) feed
// bandwidth to candidates in a deterministic total order keyed by a
// float64 quantity (remaining volume, buffer level) with the request id
// breaking ties. Under production load only a short prefix of that
// order is ever fed — the spare bandwidth runs out long before the
// candidate list does — so materializing the full sort on every event
// is wasted work. Index instead heapifies the candidates in O(k) and
// pops them lazily in exactly the order a full sort would produce:
// feeding m of k candidates costs O(k + m log k) instead of O(k log k),
// and the un-popped remainder stays available (unordered) for
// order-independent passes.
//
// Entries carry a position into the server's active slice instead of a
// pointer, so a retained scratch Index never pins finished requests
// against the garbage collector.
//
// Determinism contract: Pop yields entries in exactly ascending
// (Key, ID) order — or descending Key with ascending ID ties when the
// index was Reset(true) — which is the same total order Sort produces.
// The engine relies on this to keep heap-selection runs bit-identical
// to full-sort runs (the audit path sorts, the hot path pops).
package alloc

import "slices"

// Entry is one allocation candidate: a sort key, the request id that
// breaks ties deterministically, and the candidate's position in its
// server's active slice.
type Entry struct {
	Key float64
	ID  int64
	Pos int32
}

// Index is a reusable candidate index. The zero value is ready to use.
// Typical cycle: Reset, Add each candidate, then either Init+Pop (lazy
// ordered selection) or Sort (full order for instrumented runs).
type Index struct {
	entries []Entry
	n       int // live heap length; entries[n:len] are popped
	desc    bool
}

// Reset empties the index, reusing its storage. descending selects
// largest-Key-first order (ID ties stay ascending).
func (x *Index) Reset(descending bool) {
	x.entries = x.entries[:0]
	x.n = 0
	x.desc = descending
}

// Add appends a candidate. Call Init before the first Pop.
func (x *Index) Add(key float64, id int64, pos int32) {
	x.entries = append(x.entries, Entry{Key: key, ID: id, Pos: pos})
	x.n = len(x.entries)
}

// Len returns the number of un-popped candidates.
func (x *Index) Len() int { return x.n }

// before reports whether a precedes b in the index's feed order.
func (x *Index) before(a, b Entry) bool {
	if a.Key != b.Key {
		if x.desc {
			return a.Key > b.Key
		}
		return a.Key < b.Key
	}
	return a.ID < b.ID
}

// Init heapifies the added candidates in O(k). Must be called after the
// last Add and before the first Pop; Sort does not require it.
func (x *Index) Init() {
	for i := x.n/2 - 1; i >= 0; i-- {
		x.siftDown(i)
	}
}

// Pop removes and returns the next candidate in feed order. The popped
// entry remains reachable via All. Panics when empty.
func (x *Index) Pop() Entry {
	top := x.entries[0]
	x.n--
	x.entries[0] = x.entries[x.n]
	x.entries[x.n] = top
	if x.n > 1 {
		x.siftDown(0)
	}
	return top
}

func (x *Index) siftDown(i int) {
	e := x.entries
	for {
		l := 2*i + 1
		if l >= x.n {
			return
		}
		c := l
		if r := l + 1; r < x.n && x.before(e[r], e[l]) {
			c = r
		}
		if !x.before(e[c], e[i]) {
			return
		}
		e[i], e[c] = e[c], e[i]
		i = c
	}
}

// Rest returns the un-popped candidates in unspecified order. Use only
// for order-independent passes. The slice aliases the index; it is
// invalidated by Reset, Add, Pop, and Sort.
func (x *Index) Rest() []Entry { return x.entries[:x.n] }

// All returns every added candidate — popped and un-popped — in
// unspecified order. Same aliasing caveats as Rest.
func (x *Index) All() []Entry { return x.entries }

// Sort orders all candidates in feed order and returns them. After
// Sort the index should not be popped (use the returned slice).
func (x *Index) Sort() []Entry {
	slices.SortFunc(x.entries, func(a, b Entry) int {
		switch {
		case x.before(a, b):
			return -1
		case x.before(b, a):
			return 1
		default:
			return 0
		}
	})
	x.n = len(x.entries)
	return x.entries
}
