package alloc

import (
	"math/rand"
	"slices"
	"testing"
)

func popAll(x *Index) []Entry {
	var out []Entry
	for x.Len() > 0 {
		out = append(out, x.Pop())
	}
	return out
}

// TestPopMatchesSort is the determinism contract: lazy heap selection
// must yield exactly the order a full sort produces, ascending and
// descending, including duplicate keys broken by id.
func TestPopMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, desc := range []bool{false, true} {
		for trial := 0; trial < 50; trial++ {
			n := rng.Intn(200)
			keys := make([]float64, n)
			for i := range keys {
				keys[i] = float64(rng.Intn(20)) // force duplicate keys
			}

			var a, b Index
			a.Reset(desc)
			b.Reset(desc)
			for i, k := range keys {
				a.Add(k, int64(i), int32(i))
				b.Add(k, int64(i), int32(i))
			}
			a.Init()
			got := popAll(&a)
			want := slices.Clone(b.Sort())
			if !slices.Equal(got, want) {
				t.Fatalf("desc=%v n=%d: pop order != sort order\n got %v\nwant %v", desc, n, got, want)
			}
		}
	}
}

func TestPartialPopRestAll(t *testing.T) {
	var x Index
	x.Reset(false)
	for i := 0; i < 10; i++ {
		x.Add(float64(10-i), int64(i), int32(i))
	}
	x.Init()
	popped := []Entry{x.Pop(), x.Pop(), x.Pop()}
	if popped[0].Key != 1 || popped[1].Key != 2 || popped[2].Key != 3 {
		t.Fatalf("pop prefix = %v", popped)
	}
	if x.Len() != 7 || len(x.Rest()) != 7 {
		t.Fatalf("rest = %d, want 7", len(x.Rest()))
	}
	if len(x.All()) != 10 {
		t.Fatalf("all = %d, want 10", len(x.All()))
	}
	// Rest plus popped must cover every id exactly once.
	seen := map[int64]bool{}
	for _, e := range x.All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %d", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 10 {
		t.Fatalf("cover = %d ids", len(seen))
	}
}

func TestResetReuses(t *testing.T) {
	var x Index
	x.Reset(false)
	x.Add(5, 1, 0)
	x.Add(3, 2, 1)
	x.Init()
	x.Pop()
	x.Reset(true)
	if x.Len() != 0 || len(x.All()) != 0 {
		t.Fatalf("reset left %d/%d entries", x.Len(), len(x.All()))
	}
	x.Add(1, 1, 0)
	x.Add(2, 2, 1)
	x.Init()
	if got := x.Pop(); got.Key != 2 {
		t.Fatalf("descending pop = %v", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var x Index
	x.Reset(false)
	if x.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	x.Init() // must not panic on empty
	x.Add(1, 7, 3)
	x.Init()
	if got := x.Pop(); got != (Entry{Key: 1, ID: 7, Pos: 3}) {
		t.Fatalf("single pop = %v", got)
	}
	if x.Len() != 0 {
		t.Fatal("not drained")
	}
}
