package core

import (
	"testing"

	"semicont/internal/workload"
)

// migrateObserver records migrations.
type migrateObserver struct {
	finishObserver
	moves []struct {
		req      int64
		from, to int
		rescue   bool
	}
}

func newMigrateObserver() *migrateObserver {
	return &migrateObserver{finishObserver: *newFinishObserver()}
}

func (o *migrateObserver) OnMigrate(t float64, reqID int64, video, from, to int, rescue bool) {
	o.moves = append(o.moves, struct {
		req      int64
		from, to int
		rescue   bool
	}{reqID, from, to, rescue})
}

// drmLayout is the canonical DRM situation: video 0 lives only on
// server 0; video 1 is replicated on both servers. One slot per server.
func drmScenario(t *testing.T, mig MigrationConfig) (*Engine, *migrateObserver) {
	t.Helper()
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{3, 3}, // one slot each
		ViewRate:        3,
		Migration:       mig,
	}
	obs := newMigrateObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1}}, []workload.Request{
		{Arrival: 0, Video: 1},  // lands on server 0 (tie → lower id)
		{Arrival: 10, Video: 0}, // only holder (0) is full → needs DRM
	})
	e.SetObserver(obs)
	return e, obs
}

func TestDRMAdmitsViaMigration(t *testing.T) {
	e, obs := drmScenario(t, MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1})
	m := run(t, e, 100)
	if m.Accepted != 2 || m.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d, want 2/0", m.Accepted, m.Rejected)
	}
	if m.Migrations != 1 || m.AdmissionsViaDRM != 1 {
		t.Fatalf("migrations=%d viaDRM=%d, want 1/1", m.Migrations, m.AdmissionsViaDRM)
	}
	if len(obs.moves) != 1 {
		t.Fatalf("observer saw %d moves", len(obs.moves))
	}
	mv := obs.moves[0]
	if mv.req != 1 || mv.from != 0 || mv.to != 1 || mv.rescue {
		t.Errorf("move = %+v, want request 1 from 0 to 1", mv)
	}
	if m.ChainLengthTotal != 1 || m.MaxChainUsed != 1 {
		t.Errorf("chain accounting: total=%d max=%d", m.ChainLengthTotal, m.MaxChainUsed)
	}
	// Both streams must still complete in full.
	if m.Completions != 2 || !approx(m.DeliveredBytes, 7200, 1e-6) {
		t.Errorf("completions=%d delivered=%v", m.Completions, m.DeliveredBytes)
	}
}

func TestDRMDisabledRejects(t *testing.T) {
	e, _ := drmScenario(t, MigrationConfig{})
	m := run(t, e, 100)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1 without DRM", m.Accepted, m.Rejected)
	}
	if m.Migrations != 0 {
		t.Errorf("migrations = %d", m.Migrations)
	}
}

func TestDRMZeroHopsBudget(t *testing.T) {
	// Migration enabled but no request may ever move: equivalent to off.
	e, _ := drmScenario(t, MigrationConfig{Enabled: true, MaxHops: 0, MaxChain: 1})
	m := run(t, e, 100)
	if m.Accepted != 1 || m.Rejected != 1 || m.Migrations != 0 {
		t.Fatalf("accepted=%d rejected=%d migr=%d, want 1/1/0", m.Accepted, m.Rejected, m.Migrations)
	}
}

func TestDRMHopsBudgetExhausted(t *testing.T) {
	// Three servers, one slot each. Video 1 on {0,1,2}; videos 0 and 2
	// pinned to single servers. The video-1 stream is migrated once
	// (0→1); with MaxHops=1 it cannot move again, so a later arrival
	// for video 2 (only on server 1) is rejected. With MaxHops=2 it is
	// admitted via a second migration (1→2).
	build := func(maxHops int) *Engine {
		cat := fixedCatalog(t, 3, 1200)
		cfg := Config{
			ServerBandwidth: []float64{3, 3, 3},
			ViewRate:        3,
			Migration:       MigrationConfig{Enabled: true, MaxHops: maxHops, MaxChain: 1},
		}
		return newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1, 2}, {1}}, []workload.Request{
			{Arrival: 0, Video: 1},  // → server 0
			{Arrival: 10, Video: 0}, // forces hop 1: video-1 stream 0→1 or 0→2
			{Arrival: 20, Video: 2}, // server 1 must be freed: needs hop 2
		})
	}
	m := run(t, build(1), 100)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("maxHops=1: accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
	m = run(t, build(2), 100)
	if m.Accepted != 3 || m.Rejected != 0 {
		t.Fatalf("maxHops=2: accepted=%d rejected=%d, want 3/0", m.Accepted, m.Rejected)
	}
	if m.Migrations != 2 {
		t.Errorf("maxHops=2: migrations=%d, want 2", m.Migrations)
	}
}

func TestDRMUnlimitedHops(t *testing.T) {
	cat := fixedCatalog(t, 3, 1200)
	cfg := Config{
		ServerBandwidth: []float64{3, 3, 3},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 1},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1, 2}, {1}}, []workload.Request{
		{Arrival: 0, Video: 1},
		{Arrival: 10, Video: 0},
		{Arrival: 20, Video: 2},
	})
	m := run(t, e, 100)
	if m.Accepted != 3 {
		t.Fatalf("accepted=%d, want 3 with unlimited hops", m.Accepted)
	}
}

func TestDRMChainLengthTwo(t *testing.T) {
	// Server A holds {X, Y}, B holds {Y, Z}, C holds {Z}; one slot each.
	// Streams: Y on A, Z on B. An arrival for X (only on A) needs a
	// chain: move Z from B to C, then Y from A to B.
	build := func(maxChain int) *Engine {
		cat := fixedCatalog(t, 3, 1200) // videos: 0=X, 1=Y, 2=Z
		cfg := Config{
			ServerBandwidth: []float64{3, 3, 3},
			ViewRate:        3,
			Migration:       MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: maxChain},
		}
		return newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1}, {1, 2}}, []workload.Request{
			{Arrival: 0, Video: 1},  // Y → server 0 (holders {0,1}, tie → 0)
			{Arrival: 5, Video: 2},  // Z → server 1 (holders {1,2}, tie → 1)
			{Arrival: 10, Video: 0}, // X: only holder 0 is full
		})
	}
	m := run(t, build(1), 100)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("chain=1: accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
	m = run(t, build(2), 100)
	if m.Accepted != 3 || m.Rejected != 0 {
		t.Fatalf("chain=2: accepted=%d rejected=%d, want 3/0", m.Accepted, m.Rejected)
	}
	if m.Migrations != 2 || m.MaxChainUsed != 2 || m.ChainLengthTotal != 2 {
		t.Errorf("chain accounting: migr=%d max=%d total=%d", m.Migrations, m.MaxChainUsed, m.ChainLengthTotal)
	}
}

func TestMigratedStreamCompletesInFull(t *testing.T) {
	e, obs := drmScenario(t, MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1})
	m := run(t, e, 100)
	// The migrated stream (id 1) must finish at its original deadline:
	// it keeps receiving b_view across the switch.
	if got := obs.finishes[1]; !approx(got, 1200, 1e-6) {
		t.Errorf("migrated stream finished at %v, want 1200", got)
	}
	if m.Completions != 2 {
		t.Errorf("completions = %d", m.Completions)
	}
}

func TestSwitchDelayRequiresBuffer(t *testing.T) {
	// Without staging the client has nothing buffered, so a non-zero
	// switch delay vetoes the migration and the arrival is rejected.
	e, _ := drmScenario(t, MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1, SwitchDelay: 5})
	m := run(t, e, 100)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1 (no buffer to mask the switch)", m.Accepted, m.Rejected)
	}
	if m.MigrationsRefusedByBuffer == 0 {
		t.Error("veto not recorded in MigrationsRefusedByBuffer")
	}
}

func TestSwitchDelayWithBufferMigrates(t *testing.T) {
	// Server 0 (7 Mb/s, 2 slots, 1 Mb/s of workahead spare) fills with
	// two video-1 streams; server 1 (9 Mb/s, 3 slots) carries one
	// video-2 stream. By t=60 the first video-1 stream has buffered
	// ≈62 Mb (4 Mb in its solo second, then 1 Mb/s of EFTF spare), so a
	// 5 s switch blackout (needs 15 Mb) is coverable but a 30 s one
	// (needs 90 Mb) is not.
	build := func(delay float64) (*Engine, *migrateObserver) {
		cat := fixedCatalog(t, 3, 1200)
		cfg := Config{
			ServerBandwidth: []float64{7, 9},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  600,
			ReceiveCap:      30,
			Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1, SwitchDelay: delay},
		}
		obs := newMigrateObserver()
		e := newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1}, {1}}, []workload.Request{
			{Arrival: 0, Video: 2},  // → server 1
			{Arrival: 1, Video: 1},  // → server 0 (load 0 < 1)
			{Arrival: 2, Video: 1},  // → server 0 (tie → lower id); now full
			{Arrival: 60, Video: 0}, // only holder (0) full → DRM
		})
		e.SetObserver(obs)
		return e, obs
	}

	e, obs := build(5)
	m := run(t, e, 3000)
	if m.Accepted != 4 || m.Rejected != 0 {
		t.Fatalf("delay=5: accepted=%d rejected=%d, want 4/0", m.Accepted, m.Rejected)
	}
	if m.Migrations != 1 || len(obs.moves) != 1 || obs.moves[0].to != 1 {
		t.Fatalf("delay=5: migrations=%d moves=%+v", m.Migrations, obs.moves)
	}
	// Every stream still completes in full despite the 5 s blackout —
	// the buffer absorbs it (this is the paper's jitter-masking point).
	if m.Completions != 4 {
		t.Errorf("delay=5: completions=%d, want 4", m.Completions)
	}

	e, _ = build(30)
	m = run(t, e, 3000)
	if m.Accepted != 3 || m.Rejected != 1 {
		t.Fatalf("delay=30: accepted=%d rejected=%d, want 3/1 (buffer too thin)", m.Accepted, m.Rejected)
	}
	if m.MigrationsRefusedByBuffer == 0 {
		t.Error("delay=30: veto not recorded")
	}
}

func TestMigrationHopsVisibleInSnapshot(t *testing.T) {
	e, _ := drmScenario(t, MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1})
	if err := e.Start(100); err != nil {
		t.Fatal(err)
	}
	// Process both arrivals (second triggers the migration).
	for e.Now() < 11 && e.Step() {
	}
	reqs := e.Requests()
	if len(reqs) != 2 {
		t.Fatalf("%d in-flight requests", len(reqs))
	}
	var hopped bool
	for _, r := range reqs {
		if r.ID == 1 && r.Hops == 1 && r.Server == 1 {
			hopped = true
		}
	}
	if !hopped {
		t.Errorf("migrated request missing hop accounting: %+v", reqs)
	}
}
