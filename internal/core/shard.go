package core

import (
	"fmt"
	"math"
	"reflect"
	"sync"

	"semicont/internal/simtime"
	"semicont/internal/stats"
)

// Sharded execution: within-run parallelism with a deterministic merge.
//
// The engine's event population is dominated by evServerWake — the
// per-server allocation clock — and a wake reads and writes only its
// own server's state (its lane arrays, its active/copy lists, its
// allocator scratch). Every other event kind (arrivals, admission
// retries, DRM rescues, replication starts, faults, brownouts, viewer
// interaction, park ticks) is "global": its handler may touch any
// server, the controller state, or the request maps. Config.Shards
// exploits this split: servers are partitioned into contiguous shards,
// each with its own wake queue, and shards advance concurrently through
// bounded optimistic windows between global events.
//
// The contract is bit-identical output at every shard count. The serial
// engine's behaviour is fully determined by the order it handles
// events — the (time, seq) key of the future event list — so sharded
// execution reproduces that order exactly:
//
//   - Sequence numbers come from one engine-owned counter (seqSrc)
//     instead of the queue-private counter, so the keys of events
//     spread across K+1 queues (the parent's global queue plus one wake
//     queue per shard) still form a single total order. Every push site
//     assigns seqs in the same relative order the serial engine's
//     pushes would have, so time ties break identically (see the proof
//     sketch in DESIGN.md §14).
//
//   - A window runs one shard up to the horizon (ht, hseq) — the key of
//     the earliest pending global event. The shard handles its queued
//     wakes with key < horizon, plus any wakes *born* inside the window
//     (a handled wake's reschedule) with time strictly < ht. Births
//     have no seq yet; they are ordered after every pre-window event at
//     equal times (main wins ties) and after the horizon event at time
//     ht (strictly-less eligibility), exactly where their
//     later-assigned seqs will place them.
//
//   - Wakes never cross shards (a reschedule targets the server being
//     handled), so windows on disjoint shards handle disjoint,
//     causally independent event sets: running them concurrently
//     cannot change what any single window does.
//
//   - Effects that touch shared or order-sensitive state are not
//     applied in the window. Each window appends a log of (key →
//     deferred effects): requests that finished (their float
//     DeliveredBytes sum and freelist recycle), copies that completed
//     (controller holder/storage bookkeeping), and the wake each event
//     rebirthed. After the windows join, a K-way merge replays those
//     effects on the parent in global (time, seq) order and assigns
//     each birth its seq from seqSrc at exactly the position the serial
//     engine's push would have — then the pending global event is
//     handled on the parent, and the cycle repeats.
//
// Order-insensitive accumulation needs no deferral: int64 counters land
// in each replica's Metrics and are summed at the end of the run, and
// observation channels accumulate into per-shard stats.Sketch instances
// whose Merge is bit-for-bit order-independent. Float metrics must stay
// replica-zero; mergeShardResults enforces that with a panic so a new
// order-sensitive field cannot slip through silently.
//
// Runs that inspect cross-server state at every event — an attached
// auditor or observer, CheckInvariants, or a non-Sketch accumulator —
// cannot defer effects and instead run in lockstep: the serial Step
// loop with popEvent replaced by a K+1-way merged pop (popMerged),
// which is the serial engine with the event list merely partitioned.
// Golden fixtures with Audit set pin that path at every shard count.

// birth is a wake scheduled inside a window. Its seq is assigned at
// commit time, when the event that scheduled it is replayed on the
// parent; consumed births were already handled inside the window and
// are not re-queued.
type birth struct {
	t        float64
	seq      uint64
	ev       event
	consumed bool
}

// logEntry records one in-window event that produced deferred effects.
// Its merge key is (t, seq) for an event popped from the shard's main
// queue (born < 0), or (t, births[born].seq) for a window-born event —
// resolvable by commit time because the entry that created the birth
// precedes it in the same log. finished[fin0:fin1] and
// copiesDone[cp0:cp1] are the effects; birth is the wake this event
// scheduled (-1 if none).
type logEntry struct {
	t          float64
	seq        uint64
	born       int32
	birth      int32
	fin0, fin1 int32
	cp0, cp1   int32
}

// shardState is one shard: a contiguous server range, its wake queue,
// its replica engine, and the per-window log.
type shardState struct {
	eng *Engine // replica: shares servers/catalog/layout, owns scratch

	// main holds the shard's pending wakes with assigned seqs — routed
	// here by the parent's push/holdWake and by window commits.
	main simtime.Queue[event]

	// win orders the current window's unconsumed births (payload: index
	// into births). Its private FIFO tie-break matches birth creation
	// order, which is the order their seqs are later assigned in.
	win simtime.Queue[int32]

	births     []birth
	log        []logEntry
	finished   []*request // deferred finish effects, in handling order
	copiesDone []*copyJob // deferred copy-completion effects

	lo, hi   int // owned server id range [lo, hi)
	cur      int // commit cursor into log
	curBirth int32

	// Per-window dispatch state, owned by the parent between windows.
	ht         float64
	hseq       uint64
	dispatched bool
	err        any
	work       chan struct{}
}

// shardSet is the engine's sharding machinery; nil on serial engines.
type shardSet struct {
	shards  []shardState
	owner   []int32 // server id → shard index
	workers sync.WaitGroup
	windows sync.WaitGroup
}

// ensureShards arms (or disarms) sharded execution for the freshly
// Reset configuration. Called at the end of Engine.Reset, before any
// Schedule* push, so seqSrc numbers every event of the run. Shard
// structures and replica engines are reused across Resets.
func (e *Engine) ensureShards() {
	e.seqSrc = 0
	e.shlog = nil
	k := e.cfg.Shards
	if k > len(e.servers) {
		k = len(e.servers)
	}
	if k <= 1 {
		e.sh = nil // pure serial: the hot path pays only nil checks
		return
	}
	if e.sh == nil {
		e.sh = new(shardSet)
	}
	sh := e.sh
	if cap(sh.shards) < k {
		grown := make([]shardState, k)
		copy(grown, sh.shards)
		sh.shards = grown
	} else {
		sh.shards = sh.shards[:k]
	}
	n := len(e.servers)
	if cap(sh.owner) < n {
		sh.owner = make([]int32, n)
	} else {
		sh.owner = sh.owner[:n]
	}
	for i := range sh.shards {
		ss := &sh.shards[i]
		ss.lo, ss.hi = i*n/k, (i+1)*n/k
		for sid := ss.lo; sid < ss.hi; sid++ {
			sh.owner[sid] = int32(i)
		}
		ss.main.Reset()
		ss.resetLog()
		if ss.eng == nil {
			ss.eng = new(Engine)
			ss.eng.discardObs()
		}
		// Replicas are re-pointed every Reset: sh.shards may have been
		// reallocated, and the replica must never be sharded itself.
		ss.eng.sh = nil
		ss.eng.shlog = ss
	}
}

// lockstepRequired reports whether this run must execute in lockstep
// (merged-pop serial order) rather than parallel windows: any attached
// instrumentation that inspects cross-server state per event, or an
// observation accumulator whose merge is not order-independent.
func (e *Engine) lockstepRequired() bool {
	if e.audit != nil || e.obs != nil || e.cfg.CheckInvariants {
		return true
	}
	for _, a := range e.obsAcc {
		if a == stats.Discard {
			continue
		}
		if _, ok := a.(*stats.Sketch); !ok {
			return true
		}
	}
	return false
}

// popMerged is popEvent over the partitioned event list: the earliest
// (time, seq) key across the parent queue and every shard's wake queue.
// All queues share the seqSrc counter, so the merged order is exactly
// the single-queue order.
func (e *Engine) popMerged() (float64, event, bool) {
	bt, bseq, bok := e.events.PeekKey()
	best := -1
	for i := range e.sh.shards {
		st, sseq, sok := e.sh.shards[i].main.PeekKey()
		if sok && (!bok || st < bt || (st == bt && sseq < bseq)) {
			bt, bseq, bok = st, sseq, true
			best = i
		}
	}
	if !bok {
		return 0, event{}, false
	}
	if best < 0 {
		t, ev, _ := e.events.Pop()
		return t, ev, true
	}
	t, ev, _ := e.sh.shards[best].main.Pop()
	return t, ev, true
}

// eligible reports whether the shard has a queued wake before the
// horizon key.
func (ss *shardState) eligible(ht float64, hseq uint64) bool {
	mt, mseq, ok := ss.main.PeekKey()
	return ok && (mt < ht || (mt == ht && mseq < hseq))
}

// recordBirth captures a wake scheduled by the event the replica is
// currently handling. It is holdWake's window mode: instead of touching
// any heap the parent owns, the wake joins the window's birth list and
// its in-window order book (win).
func (ss *shardState) recordBirth(t float64, ev event) {
	if ss.curBirth >= 0 {
		panic("core: one shard event scheduled two wakes")
	}
	bi := int32(len(ss.births))
	ss.births = append(ss.births, birth{t: t, ev: ev})
	ss.win.Push(t, bi)
	ss.curBirth = bi
}

// runWindow advances the shard to its horizon: every queued wake with
// key < (ht, hseq) plus every window-born wake with time strictly
// below ht, in exactly the order the serial engine would handle them.
// On a time tie a queued wake beats a born one (every pre-window seq
// precedes every birth's commit-assigned seq), and a born wake at
// exactly ht is left for the next window (its seq will follow hseq).
func (ss *shardState) runWindow() {
	rep := ss.eng
	for {
		mt, mseq, mok := ss.main.PeekKey()
		if mok && !(mt < ss.ht || (mt == ss.ht && mseq < ss.hseq)) {
			mok = false
		}
		wt, wok := ss.win.Peek()
		if wok && wt >= ss.ht {
			wok = false
		}
		if !mok && !wok {
			return
		}
		var en logEntry
		en.fin0 = int32(len(ss.finished))
		en.cp0 = int32(len(ss.copiesDone))
		ss.curBirth = -1
		if mok && (!wok || mt <= wt) {
			t, ev, _ := ss.main.Pop()
			en.t, en.seq, en.born = t, mseq, -1
			rep.now = t
			rep.handleWake(rep.servers[ev.server], ev.version, t)
		} else {
			_, bi, _ := ss.win.Pop()
			b := &ss.births[bi]
			b.consumed = true
			en.t, en.born = b.t, bi
			rep.now = b.t
			rep.handleWake(rep.servers[b.ev.server], b.ev.version, b.t)
		}
		en.fin1 = int32(len(ss.finished))
		en.cp1 = int32(len(ss.copiesDone))
		en.birth = ss.curBirth
		// Events with no deferred effects (stale wakes, reschedules of
		// an emptied server) need no commit replay and log nothing.
		if en.fin1 > en.fin0 || en.cp1 > en.cp0 || en.birth >= 0 {
			ss.log = append(ss.log, en)
		}
	}
}

// runWindowSafe runs the window capturing any panic so a worker
// goroutine never crashes the process on its own; the parent re-raises
// after the windows join.
func (ss *shardState) runWindowSafe() {
	defer func() {
		if r := recover(); r != nil {
			ss.err = r
		}
	}()
	ss.runWindow()
}

// resetLog clears the per-window state. win must be reset too: births
// left unconsumed at the horizon still sit in it.
func (ss *shardState) resetLog() {
	ss.log = ss.log[:0]
	clearRequests(ss.finished)
	ss.finished = ss.finished[:0]
	clearCopies(ss.copiesDone)
	ss.copiesDone = ss.copiesDone[:0]
	ss.births = ss.births[:0]
	ss.win.Reset()
	ss.cur = 0
	ss.curBirth = -1
}

// commitWindows replays the joined windows' deferred effects on the
// parent in global (time, seq) order — a K-way merge over the per-shard
// logs, each already sorted by its entries' final keys. Reaching an
// entry assigns its birth the next seq (matching the position of the
// serial engine's push) and routes the birth to the shard's wake queue
// unless the window already consumed it; a consumed birth still takes
// its seq so later entries keyed on it resolve, and so the counter
// tracks the serial engine's push sequence one-for-one.
func (e *Engine) commitWindows() {
	sh := e.sh
	for {
		best := -1
		var bt float64
		var bseq uint64
		for i := range sh.shards {
			ss := &sh.shards[i]
			if ss.cur >= len(ss.log) {
				continue
			}
			en := &ss.log[ss.cur]
			seq := en.seq
			if en.born >= 0 {
				seq = ss.births[en.born].seq
			}
			if best < 0 || en.t < bt || (en.t == bt && seq < bseq) {
				best, bt, bseq = i, en.t, seq
			}
		}
		if best < 0 {
			break
		}
		ss := &sh.shards[best]
		en := &ss.log[ss.cur]
		ss.cur++
		for _, r := range ss.finished[en.fin0:en.fin1] {
			e.metrics.DeliveredBytes += r.carrySent
			if e.cfg.Edge.Nodes > 0 {
				e.metrics.ClusterEgressMb += r.carrySent
			}
			e.recycle(r)
		}
		for _, c := range ss.copiesDone[en.cp0:en.cp1] {
			e.commitCopyDone(c, en.t)
		}
		if en.birth >= 0 {
			b := &ss.births[en.birth]
			e.seqSrc++
			b.seq = e.seqSrc
			if !b.consumed {
				ss.main.PushSeq(b.t, b.seq, b.ev)
			}
		}
	}
	for i := range sh.shards {
		ss := &sh.shards[i]
		if ss.dispatched {
			if ss.eng.now > e.now {
				e.now = ss.eng.now
			}
			ss.resetLog()
		}
	}
}

// syncReplicas refreshes each replica for this run: the shared
// read-only plumbing, a zero Metrics, per-shard observation sinks, and
// a fresh lazy allocator (allocators may carry per-engine scratch).
func (e *Engine) syncReplicas() {
	for i := range e.sh.shards {
		rep := e.sh.shards[i].eng
		rep.cfg = e.cfg
		rep.cat, rep.layout = e.cat, e.layout
		rep.servers = e.servers
		rep.metrics = Metrics{}
		rep.alloc = nil
		rep.now = e.now
		rep.spareMisorder = e.spareMisorder
		rep.wakeSkew = e.wakeSkew
		for k, a := range e.obsAcc {
			if _, ok := a.(*stats.Sketch); !ok {
				rep.obsAcc[k] = stats.Discard
				continue
			}
			sk, ok := rep.obsAcc[k].(*stats.Sketch)
			if !ok {
				sk = new(stats.Sketch)
			}
			sk.Reset()
			rep.obsAcc[k] = sk
		}
	}
}

// startWorkers launches one goroutine per shard for the run; each waits
// for a window dispatch. The channels are per-run, the goroutines exit
// on stopWorkers.
func (sh *shardSet) startWorkers() {
	for i := range sh.shards {
		ss := &sh.shards[i]
		ss.work = make(chan struct{}, 1)
		sh.workers.Add(1)
		go func() {
			defer sh.workers.Done()
			for range ss.work {
				ss.runWindowSafe()
				sh.windows.Done()
			}
		}()
	}
}

func (sh *shardSet) stopWorkers() {
	for i := range sh.shards {
		close(sh.shards[i].work)
	}
	sh.workers.Wait()
}

// runShardedParallel is the sharded Run loop: find the next global
// event's key, run every shard with pending work up to that horizon
// concurrently, merge-commit their effects, then handle the global
// event on the parent. A single eligible shard runs inline — no
// dispatch round-trip — which is also what keeps one-shard-of-work
// phases cheap.
func (e *Engine) runShardedParallel() {
	sh := e.sh
	e.syncReplicas()
	sh.startWorkers()
	defer sh.stopWorkers()
	for {
		ht, hseq, hok := e.events.PeekKey()
		if !hok {
			// No global events left: a final unbounded window drains the
			// shards completely.
			ht, hseq = math.Inf(1), ^uint64(0)
		}
		n, last := 0, -1
		for i := range sh.shards {
			ss := &sh.shards[i]
			ss.dispatched = false
			if ss.eligible(ht, hseq) {
				ss.ht, ss.hseq = ht, hseq
				ss.dispatched = true
				n++
				last = i
			}
		}
		if n == 0 && !hok {
			return
		}
		switch {
		case n == 1:
			sh.shards[last].runWindowSafe()
		case n > 1:
			sh.windows.Add(n)
			for i := range sh.shards {
				if sh.shards[i].dispatched {
					sh.shards[i].work <- struct{}{}
				}
			}
			sh.windows.Wait()
		}
		for i := range sh.shards {
			ss := &sh.shards[i]
			if ss.dispatched && ss.err != nil {
				err := ss.err
				ss.err = nil
				panic(err)
			}
		}
		if n > 0 {
			e.commitWindows()
		}
		if hok {
			t, ev, _ := e.events.Pop()
			if t > e.now {
				e.now = t
			}
			e.dispatch(ev)
		}
	}
}

// mergeShardResults folds each replica's order-independent accumulation
// into the parent after the run: int64 counters (and int64 arrays) add;
// observation sketches merge in shard order (bit-identical regardless —
// Sketch.Merge is commutative and associative to the bit). Float fields
// are order-sensitive sums that must have been deferred through the
// commit path, so a nonzero replica float is a sharding bug worth a
// panic, as is any field kind this merge does not recognize.
func (e *Engine) mergeShardResults() {
	dst := reflect.ValueOf(&e.metrics).Elem()
	for i := range e.sh.shards {
		rep := e.sh.shards[i].eng
		src := reflect.ValueOf(&rep.metrics).Elem()
		for f := 0; f < dst.NumField(); f++ {
			d, s := dst.Field(f), src.Field(f)
			name := dst.Type().Field(f).Name
			switch d.Kind() {
			case reflect.Int64:
				d.SetInt(d.Int() + s.Int())
			case reflect.Array:
				if d.Type().Elem().Kind() != reflect.Int64 {
					panic(fmt.Sprintf("core: Metrics.%s: array of %s not mergeable across shards", name, d.Type().Elem().Kind()))
				}
				for j := 0; j < d.Len(); j++ {
					d.Index(j).SetInt(d.Index(j).Int() + s.Index(j).Int())
				}
			case reflect.Float64:
				if s.Float() != 0 {
					panic(fmt.Sprintf("core: Metrics.%s accumulated %g on a shard replica; float sums are order-sensitive and must defer to the window commit", name, s.Float()))
				}
			case reflect.Int:
				if s.Int() != 0 {
					panic(fmt.Sprintf("core: Metrics.%s = %d on a shard replica; wake handling must not touch it", name, s.Int()))
				}
			default:
				panic(fmt.Sprintf("core: Metrics.%s: kind %s not covered by the shard merge — teach mergeShardResults about it", name, d.Kind()))
			}
		}
		for k := range e.obsAcc {
			if sk, ok := e.obsAcc[k].(*stats.Sketch); ok {
				sk.Merge(rep.obsAcc[k].(*stats.Sketch))
			}
		}
	}
}
