package core

import (
	"testing"

	"semicont/internal/workload"
)

func TestWarmRecoveryRestoresService(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},   // dropped at the failure
		{Arrival: 60, Video: 0},  // server down: rejected
		{Arrival: 200, Video: 0}, // server back: accepted
	})
	if err := e.ScheduleFailure(50, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleRecovery(100, 0, false); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Failures != 1 || m.Recoveries != 1 || m.ColdRecoveries != 0 {
		t.Fatalf("failures=%d recoveries=%d cold=%d", m.Failures, m.Recoveries, m.ColdRecoveries)
	}
	if m.Accepted != 2 || m.Rejected != 1 || m.DroppedStreams != 1 {
		t.Fatalf("accepted=%d rejected=%d dropped=%d, want 2/1/1", m.Accepted, m.Rejected, m.DroppedStreams)
	}
	if m.Completions != 1 {
		t.Errorf("completions = %d, want 1", m.Completions)
	}
}

func TestColdRecoveryWipesReplicas(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 200, Video: 0}, // server up but wiped: no replica, rejected
	})
	if err := e.ScheduleFailure(50, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleRecovery(100, 0, true); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Recoveries != 1 || m.ColdRecoveries != 1 {
		t.Fatalf("recoveries=%d cold=%d", m.Recoveries, m.ColdRecoveries)
	}
	if m.Accepted != 0 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 0/1 (replica lost in the wipe)", m.Accepted, m.Rejected)
	}
}

// TestColdRecoveryRebuildsViaReplication drives the issue's cold-path
// contract end to end: a cold-recovered server re-enters the replica
// set only through dynamic replication, after which it serves again.
func TestColdRecoveryRebuildsViaReplication(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200) // one 3600 Mb video on both servers
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		Replication:     ReplicationConfig{Enabled: true},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 30, Video: 0},   // → server 1 (server 0 wiped)
		{Arrival: 31, Video: 0},   // → server 1, now full
		{Arrival: 32, Video: 0},   // rejected → replication to wiped server 0
		{Arrival: 2500, Video: 0}, // replica rebuilt: → server 0
	})
	if err := e.ScheduleFailure(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleRecovery(20, 0, true); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 3000)
	if m.ReplicationsStarted != 1 || m.ReplicationsCompleted != 1 {
		t.Fatalf("replications started=%d completed=%d, want 1/1",
			m.ReplicationsStarted, m.ReplicationsCompleted)
	}
	if m.Accepted != 3 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 3/1", m.Accepted, m.Rejected)
	}
}

func TestRetryQueueAdmitsWhenSlotFrees(t *testing.T) {
	cat := fixedCatalog(t, 1, 30) // short 90 Mb videos: slots free quickly
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Retry:           RetryConfig{Enabled: true, Backoff: 10},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // both slots taken: queued, admitted ≈ t=32
	})
	m := run(t, e, 2000)
	if m.RetriesQueued != 1 || m.RetriedAdmissions != 1 || m.Reneged != 0 {
		t.Fatalf("queued=%d retried=%d reneged=%d, want 1/1/0",
			m.RetriesQueued, m.RetriedAdmissions, m.Reneged)
	}
	if m.Accepted != 3 || m.Rejected != 0 || m.Completions != 3 {
		t.Fatalf("accepted=%d rejected=%d completions=%d", m.Accepted, m.Rejected, m.Completions)
	}
}

func TestRetryQueueReneges(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200) // long videos: slots stay occupied
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Retry:           RetryConfig{Enabled: true, Patience: 100, Backoff: 10},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // queued; patience runs out at t=102
	})
	e.SetObserver(obs)
	m := run(t, e, 2000)
	if m.RetriesQueued != 1 || m.RetriedAdmissions != 0 || m.Reneged != 1 {
		t.Fatalf("queued=%d retried=%d reneged=%d, want 1/0/1",
			m.RetriesQueued, m.RetriedAdmissions, m.Reneged)
	}
	if m.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0 (the loss is accounted as reneging)", m.Rejected)
	}
	if obs.rejects != 1 {
		t.Errorf("observer saw %d rejects, want 1 (reneging notifies OnReject)", obs.rejects)
	}
}

func TestRetryQueueBoundOverflowRejects(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Retry:           RetryConfig{Enabled: true, MaxQueue: 1, Patience: 50, Backoff: 10},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // queued (fills the bound)
		{Arrival: 3, Video: 0}, // overflow: rejected up front
	})
	m := run(t, e, 2000)
	if m.RetriesQueued != 1 || m.Rejected != 1 || m.Reneged != 1 {
		t.Fatalf("queued=%d rejected=%d reneged=%d, want 1/1/1",
			m.RetriesQueued, m.Rejected, m.Reneged)
	}
}

// parkScenario: stream A (video 0, server 0 only) builds workahead
// until server 0 fails at t=50 with no rescue target; degraded-mode
// playback parks it with 150 Mb (50 s) of buffered data.
func parkScenario(t *testing.T) (*Engine, *finishObserver) {
	t.Helper()
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		BufferCapacity:  300,
		Workahead:       true,
		Degraded:        DegradedConfig{Enabled: true, RetryInterval: 5},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 0, Video: 0},   // A → server 0, parked at t=50
		{Arrival: 0.5, Video: 1}, // → server 1
		{Arrival: 1, Video: 1},   // → server 1, now full
	})
	e.SetObserver(obs)
	if err := e.ScheduleFailure(50, 0); err != nil {
		t.Fatal(err)
	}
	return e, obs
}

func TestDegradedParkGlitchesWhenBufferDries(t *testing.T) {
	e, _ := parkScenario(t)
	// No recovery: A's 150 Mb buffer drains at b_view=3 and runs dry at
	// t=100 with nowhere to reconnect.
	m := run(t, e, 2000)
	if m.DegradedParked != 1 || m.DegradedResumed != 0 || m.DegradedGlitches != 1 {
		t.Fatalf("parked=%d resumed=%d glitches=%d, want 1/0/1",
			m.DegradedParked, m.DegradedResumed, m.DegradedGlitches)
	}
	if m.DroppedStreams != 1 || m.Completions != 2 {
		t.Fatalf("dropped=%d completions=%d, want 1/2", m.DroppedStreams, m.Completions)
	}
	// A delivered exactly what it received before the failure: 50 s at
	// the full 6 Mb/s (minimum flow + workahead).
	want := 2*3600.0 + 300
	if !approx(m.DeliveredBytes, want, 1e-6) {
		t.Errorf("DeliveredBytes = %v, want %v", m.DeliveredBytes, want)
	}
}

func TestDegradedParkResumesAfterRecovery(t *testing.T) {
	e, obs := parkScenario(t)
	if err := e.ScheduleRecovery(80, 0, false); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.DegradedParked != 1 || m.DegradedResumed != 1 || m.DegradedGlitches != 0 {
		t.Fatalf("parked=%d resumed=%d glitches=%d, want 1/1/0",
			m.DegradedParked, m.DegradedResumed, m.DegradedGlitches)
	}
	if m.DroppedStreams != 0 || m.Completions != 3 {
		t.Fatalf("dropped=%d completions=%d, want 0/3", m.DroppedStreams, m.Completions)
	}
	if !approx(m.DeliveredBytes, 3*3600, 1e-6) {
		t.Errorf("DeliveredBytes = %v, want full delivery", m.DeliveredBytes)
	}
	if _, ok := obs.finishes[1]; !ok {
		t.Error("parked stream never finished after readmission")
	}
}

// TestDegradedParkBrownoutInteraction pins the reconnect seam between
// degraded-mode parking and brownouts: a parked stream's park ticks go
// through the admission selector, which must judge a browned-out
// holder by its *effective* capacity. Stream A parks when its only
// holder fails; the holder comes back dimmed before A's buffer dries.
// Whether A resumes then hinges solely on whether the dimmed slot
// count is zero or one — and a zero-slot brownout holds A parked until
// the restore (or the buffer's end, whichever comes first).
func TestDegradedParkBrownoutInteraction(t *testing.T) {
	cases := []struct {
		name      string
		frac      float64 // brownout fraction applied at t=58
		restoreAt float64 // 0 = never restored
		resumed   int64
		glitches  int64
		dropped   int64
		completed int64
	}{
		// 0.4·6 = 2.4 Mb/s < b_view: zero slots, reconnect infeasible
		// until the restore at t=90 (buffer dries at t=100).
		{"zero-slot brownout waits for restore", 0.4, 90, 1, 0, 0, 3},
		// Same brownout, no restore: A stays parked past buffer
		// exhaustion and the viewer eats the glitch.
		{"zero-slot brownout never restored", 0.4, 0, 0, 1, 1, 2},
		// 0.6·6 = 3.6 Mb/s: one dimmed slot is free and feasible, so
		// the first park tick after the brownout reconnects A.
		{"dimmed holder with a free slot resumes", 0.6, 0, 1, 0, 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := parkScenario(t) // fails A's holder (server 0) at t=50
			if err := e.ScheduleRecovery(57, 0, false); err != nil {
				t.Fatal(err)
			}
			if err := e.ScheduleBrownout(58, 0, tc.frac); err != nil {
				t.Fatal(err)
			}
			if tc.restoreAt > 0 {
				if err := e.ScheduleRestore(tc.restoreAt, 0); err != nil {
					t.Fatal(err)
				}
			}
			m := run(t, e, 2000)
			if m.DegradedParked != 1 || m.DegradedResumed != tc.resumed || m.DegradedGlitches != tc.glitches {
				t.Fatalf("parked=%d resumed=%d glitches=%d, want 1/%d/%d",
					m.DegradedParked, m.DegradedResumed, m.DegradedGlitches, tc.resumed, tc.glitches)
			}
			if m.DroppedStreams != tc.dropped || m.Completions != tc.completed {
				t.Fatalf("dropped=%d completions=%d, want %d/%d",
					m.DroppedStreams, m.Completions, tc.dropped, tc.completed)
			}
		})
	}
}
