package core

import (
	"testing"

	"semicont/internal/workload"
)

func TestClientClassValidation(t *testing.T) {
	base := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, BufferCapacity: 600,
	}
	cases := []struct {
		name    string
		classes []ClientClass
		ok      bool
	}{
		{"valid mix", []ClientClass{{Weight: 1, BufferCapacity: 600, ReceiveCap: 30}, {Weight: 1}}, true},
		{"negative weight", []ClientClass{{Weight: -1}}, false},
		{"negative buffer", []ClientClass{{Weight: 1, BufferCapacity: -5}}, false},
		{"receive below view", []ClientClass{{Weight: 1, ReceiveCap: 1}}, false},
		{"all zero weight", []ClientClass{{Weight: 0}, {Weight: 0}}, false},
	}
	for _, tc := range cases {
		cfg := base
		cfg.ClientClasses = tc.classes
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestSingleClassMatchesHomogeneous(t *testing.T) {
	// A one-class population with the same buffer/receive parameters
	// must behave identically to the homogeneous configuration.
	build := func(classes []ClientClass) *Metrics {
		cat := fixedCatalog(t, 2, 900)
		cfg := Config{
			ServerBandwidth: []float64{30, 30},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  540,
			ReceiveCap:      30,
			ClientClasses:   classes,
		}
		reqs := make([]workload.Request, 0, 40)
		for i := 0; i < 40; i++ {
			reqs = append(reqs, workload.Request{Arrival: float64(i * 30), Video: i % 2})
		}
		e := newTestEngine(t, cfg, cat, [][]int{{0, 1}, {0, 1}}, reqs)
		return run(t, e, 4000)
	}
	homog := build(nil)
	oneClass := build([]ClientClass{{Weight: 1, BufferCapacity: 540, ReceiveCap: 30}})
	if *homog != *oneClass {
		t.Errorf("one-class mix diverged from homogeneous:\n%+v\n%+v", homog, oneClass)
	}
}

func TestAllThinClientsDisableStagingBenefit(t *testing.T) {
	// Every client in the "thin" class (no buffer): behavior matches a
	// no-buffer homogeneous run even though Workahead is on.
	cat := fixedCatalog(t, 1, 1200)
	mkCfg := func(classes []ClientClass, buf float64) Config {
		return Config{
			ServerBandwidth: []float64{3.5},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  buf,
			ReceiveCap:      0,
			ClientClasses:   classes,
		}
	}
	reqs := []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1100, Video: 0}, // admitted only if the first finished early
	}
	// Thin clients: no early finish, second arrival rejected.
	e := newTestEngine(t, mkCfg([]ClientClass{{Weight: 1, BufferCapacity: 0}}, 1e9), cat, [][]int{{0}}, reqs)
	m := run(t, e, 2000)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("thin clients: accepted=%d rejected=%d, want 1/1", m.Accepted, m.Rejected)
	}
	// Disk-ful clients: early finish frees the slot.
	e = newTestEngine(t, mkCfg([]ClientClass{{Weight: 1, BufferCapacity: 1e9}}, 1e9), cat, [][]int{{0}}, reqs)
	m = run(t, e, 2000)
	if m.Accepted != 2 {
		t.Fatalf("disk clients: accepted=%d, want 2", m.Accepted)
	}
}

func TestMixedClassesDeterministic(t *testing.T) {
	build := func() *Metrics {
		cat := fixedCatalog(t, 2, 900)
		cfg := Config{
			ServerBandwidth: []float64{30},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  540,
			ReceiveCap:      30,
			ClientSeed:      99,
			ClientClasses: []ClientClass{
				{Weight: 3, BufferCapacity: 540, ReceiveCap: 30},
				{Weight: 1}, // thin
			},
		}
		reqs := make([]workload.Request, 0, 30)
		for i := 0; i < 30; i++ {
			reqs = append(reqs, workload.Request{Arrival: float64(i * 40), Video: i % 2})
		}
		e := newTestEngine(t, cfg, cat, [][]int{{0}, {0}}, reqs)
		return run(t, e, 4000)
	}
	a, b := build(), build()
	if *a != *b {
		t.Errorf("mixed-class runs with equal seeds diverged")
	}
}

func TestClassDrawRespectsWeights(t *testing.T) {
	// With a 3:1 weight ratio over many admissions, roughly 3/4 of the
	// requests should carry the disk class's buffer. Observe via
	// request snapshots mid-run.
	cat := fixedCatalog(t, 1, 7200) // long videos so requests persist
	cfg := Config{
		// 400 slots for 200 streams: 600 Mb/s of spare workahead, which
		// the 6 Mb/s per-client cap spreads across every disk client.
		ServerBandwidth: []float64{1200},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  100,
		ReceiveCap:      0,
		ClientSeed:      7,
		ClientClasses: []ClientClass{
			{Weight: 3, BufferCapacity: 100000, ReceiveCap: 6},
			{Weight: 1, BufferCapacity: 0},
		},
	}
	reqs := make([]workload.Request, 0, 200)
	for i := 0; i < 200; i++ {
		reqs = append(reqs, workload.Request{Arrival: float64(i), Video: 0})
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, reqs)
	if err := e.Start(4000); err != nil {
		t.Fatal(err)
	}
	for e.Now() < 250 && e.Step() {
	}
	snaps := e.Requests()
	if len(snaps) < 150 {
		t.Fatalf("only %d in-flight requests", len(snaps))
	}
	buffered := 0
	for _, r := range snaps {
		if r.Buffer > 0 {
			buffered++
		}
	}
	frac := float64(buffered) / float64(len(snaps))
	if frac < 0.6 || frac > 0.9 {
		t.Errorf("buffered fraction = %v, want ≈0.75 (weights 3:1)", frac)
	}
}
