package core

import (
	"testing"

	"semicont/internal/workload"
)

// finishObserver records completion times by request id.
type finishObserver struct {
	finishes map[int64]float64
	admits   map[int64]int // request -> server
	rejects  int
}

func newFinishObserver() *finishObserver {
	return &finishObserver{finishes: map[int64]float64{}, admits: map[int64]int{}}
}

func (o *finishObserver) OnAdmit(t float64, reqID int64, video, server int, viaMigration bool) {
	o.admits[reqID] = server
}
func (o *finishObserver) OnReject(t float64, video int)                                      { o.rejects++ }
func (o *finishObserver) OnMigrate(t float64, reqID int64, video, from, to int, rescue bool) {}
func (o *finishObserver) OnFinish(t float64, reqID int64, video, server int) {
	o.finishes[reqID] = t
}
func (o *finishObserver) OnFailure(t float64, server int, rescued, dropped, parked int) {}
func (o *finishObserver) OnRecovery(t float64, server int, cold bool)                   {}
func (o *finishObserver) OnReplicate(t float64, video, from, to int)                    {}

func TestSingleRequestContinuous(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200) // one 3600 Mb video
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 10, Video: 0}})
	e.SetObserver(obs)
	m := run(t, e, 100)

	if m.Accepted != 1 || m.Rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d", m.Accepted, m.Rejected)
	}
	// Without workahead the transmission proceeds at exactly b_view and
	// finishes at arrival + size/b_view = 10 + 1200.
	if got := obs.finishes[1]; !approx(got, 1210, 1e-6) {
		t.Errorf("finish at %v, want 1210", got)
	}
	if !approx(m.AcceptedBytes, 3600, 1e-9) {
		t.Errorf("AcceptedBytes = %v", m.AcceptedBytes)
	}
	if !approx(m.DeliveredBytes, 3600, 1e-6) {
		t.Errorf("DeliveredBytes = %v", m.DeliveredBytes)
	}
	if m.Completions != 1 {
		t.Errorf("Completions = %d", m.Completions)
	}
}

func TestSingleRequestWorkaheadUnlimited(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, BufferCapacity: 1e9, ReceiveCap: 0,
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
	e.SetObserver(obs)
	run(t, e, 100)
	// Alone on a 100 Mb/s server with no caps: finish at 3600/100 = 36 s.
	if got := obs.finishes[1]; !approx(got, 36, 1e-6) {
		t.Errorf("finish at %v, want 36", got)
	}
}

func TestSingleRequestBufferLimitedWorkahead(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{100}, ViewRate: 3,
		Workahead: true, BufferCapacity: 270, ReceiveCap: 30,
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
	e.SetObserver(obs)
	run(t, e, 100)
	// Phase 1: 30 Mb/s; buffer fills at 27 Mb/s and hits 270 at t=10
	// (sent 300). Phase 2: 3 Mb/s, buffer pinned full. Finish when
	// sent = 3600: t = 10 + 3300/3 = 1110.
	if got := obs.finishes[1]; !approx(got, 1110, 1e-6) {
		t.Errorf("finish at %v, want 1110", got)
	}
}

func TestLeastLoadedAssignment(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{100, 100}, ViewRate: 3}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0},
		{Arrival: 3, Video: 0},
	})
	e.SetObserver(obs)
	run(t, e, 100)
	// Ties go to the lower id, then alternate: 0, 1, 0, 1.
	want := map[int64]int{1: 0, 2: 1, 3: 0, 4: 1}
	for id, srv := range want {
		if obs.admits[id] != srv {
			t.Errorf("request %d on server %d, want %d", id, obs.admits[id], srv)
		}
	}
}

func TestRejectionWhenFull(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3} // 2 slots
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // no slot: rejected
	})
	m := run(t, e, 100)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
	if m.Arrivals != 3 {
		t.Errorf("Arrivals = %d", m.Arrivals)
	}
}

func TestSlotFreedAfterFinishAllowsAdmission(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)                           // 3600 Mb, plays in 1200 s
	cfg := Config{ServerBandwidth: []float64{3}, ViewRate: 3} // 1 slot
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 600, Video: 0},  // mid-stream: rejected
		{Arrival: 1300, Video: 0}, // after finish at 1200: accepted
	})
	m := run(t, e, 2000)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
}

func TestEarlyFinishFreesSlotSooner(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	// One slot; staging lets the first stream finish at t=36 instead of
	// 1200, so a request at t=50 is admitted. This is the entire
	// semi-continuous transmission benefit in miniature.
	cfg := Config{
		ServerBandwidth: []float64{3.5}, ViewRate: 3,
		Workahead: true, BufferCapacity: 1e9, ReceiveCap: 0,
	}
	// Capacity 3.5 → 1 slot; spare 0.5 Mb/s of workahead.
	// sent(t) = 3.5t → finish at 3600/3.5 ≈ 1028.6 < 1200.
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1100, Video: 0}, // after the early finish: accepted
	})
	m := run(t, e, 2000)
	if m.Accepted != 2 {
		t.Fatalf("accepted=%d, want 2 (early finish must free the slot)", m.Accepted)
	}

	// Without workahead the same arrival is rejected.
	cfg.Workahead = false
	e = newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1100, Video: 0},
	})
	m = run(t, e, 2000)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1 without workahead", m.Accepted, m.Rejected)
	}
}

func TestArrivalsBeyondHorizonIgnored(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 10, Video: 0},
		{Arrival: 99, Video: 0},
		{Arrival: 101, Video: 0}, // past the horizon
	})
	m := run(t, e, 100)
	if m.Arrivals != 2 {
		t.Errorf("Arrivals = %d, want 2 (horizon 100)", m.Arrivals)
	}
	// In-flight work still drains.
	if m.Completions != 2 {
		t.Errorf("Completions = %d, want 2", m.Completions)
	}
}

func TestSnapshotAndRequests(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{100, 100}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 0, Video: 0},
	})
	// Step through the two arrivals only.
	if err := e.Start(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !e.Step() {
			t.Fatal("engine ran dry early")
		}
	}
	snaps := e.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d servers", len(snaps))
	}
	if snaps[0].Load != 1 || snaps[1].Load != 1 {
		t.Errorf("loads = %d, %d; want 1 each", snaps[0].Load, snaps[1].Load)
	}
	if snaps[0].Slots != 33 {
		t.Errorf("slots = %d, want 33", snaps[0].Slots)
	}
	reqs := e.Requests()
	if len(reqs) != 2 {
		t.Fatalf("%d in-flight requests, want 2", len(reqs))
	}
	if reqs[0].ID != 1 || reqs[1].ID != 2 {
		t.Errorf("request ids = %d, %d", reqs[0].ID, reqs[1].ID)
	}
	for _, r := range reqs {
		if r.Rate != 3 {
			t.Errorf("request %d rate %v, want 3", r.ID, r.Rate)
		}
		if r.Size != 3600 {
			t.Errorf("request %d size %v", r.ID, r.Size)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	lay := manualLayout(t, cat, [][]int{{0}}, 1)
	good := Config{ServerBandwidth: []float64{100}, ViewRate: 3}

	if _, err := NewEngine(Config{ViewRate: 3}, cat, lay, &scriptSource{}); err == nil {
		t.Error("config without servers accepted")
	}
	if _, err := NewEngine(good, cat, lay, nil); err == nil {
		t.Error("nil source accepted")
	}
	two := Config{ServerBandwidth: []float64{100, 100}, ViewRate: 3}
	if _, err := NewEngine(two, cat, lay, &scriptSource{}); err == nil {
		t.Error("layout/server count mismatch accepted")
	}
	e, err := NewEngine(good, cat, lay, &scriptSource{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := e.ScheduleFailure(10, 5); err == nil {
		t.Error("failure on unknown server accepted")
	}
	if err := e.ScheduleFailure(-1, 0); err == nil {
		t.Error("failure at negative time accepted")
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{AcceptedBytes: 500, Arrivals: 10, Rejected: 3}
	if got := m.Utilization(100, 10); !approx(got, 0.5, 1e-12) {
		t.Errorf("Utilization = %v", got)
	}
	if got := m.Utilization(0, 10); got != 0 {
		t.Errorf("Utilization with zero bandwidth = %v", got)
	}
	if got := m.RejectionRatio(); !approx(got, 0.3, 1e-12) {
		t.Errorf("RejectionRatio = %v", got)
	}
	if got := (&Metrics{}).RejectionRatio(); got != 0 {
		t.Errorf("empty RejectionRatio = %v", got)
	}
}
