package core

import (
	"fmt"
	"math"
	"slices"
)

// BandwidthAllocator is the policy seam between the engine and the
// bandwidth-allocation rule. The engine owns event dispatch and fluid
// state; an allocator owns one decision: given a server whose requests
// and copy jobs are synced to time t, assign every stream's
// transmission rate and report when the allocation must next be
// revisited.
//
// Implementations live beside the engine in this package (they read
// per-request fluid state directly, which keeps the per-event hot path
// free of interface dispatch per request). Adding a policy is a
// one-file addition: implement the interface, call RegisterAllocator
// from an init function, and select it by name via Config.Allocator
// (threaded from semicont.Policy.Allocator).
type BandwidthAllocator interface {
	// Name returns the allocator's registry name.
	Name() string

	// Allocate recomputes the bandwidth allocation of server s at time
	// t. Every request in s.active and every copy job must already be
	// synced to t. It returns the earliest future instant at which the
	// allocation must be recomputed absent external events (+Inf when
	// the server is idle).
	Allocate(e *Engine, s *server, t float64) float64
}

// Registry names of the built-in allocation policies.
const (
	// AllocMinFlowEFTF is the paper's algorithm: minimum-flow guarantee
	// plus Earliest-Finishing-Time-First workahead (Figure 2).
	AllocMinFlowEFTF = "minflow-eftf"
	// AllocMinFlowLFTF feeds spare to the latest projected finisher
	// first — the adversarial ablation of the EFTF theorem.
	AllocMinFlowLFTF = "minflow-lftf"
	// AllocMinFlowEvenSplit water-fills spare bandwidth equally across
	// staging candidates.
	AllocMinFlowEvenSplit = "minflow-evensplit"
	// AllocIntermittent is the Section 3.3 intermittent-class heuristic:
	// full-buffer streams may be paused entirely so the server can
	// over-subscribe its minimum-flow slots.
	AllocIntermittent = "intermittent"
)

// allocRegistry maps registry names to allocator factories. Factories
// (not instances) are registered because engines run concurrently and
// an allocator may carry per-engine scratch.
var allocRegistry = map[string]func() BandwidthAllocator{}

// RegisterAllocator adds a named bandwidth-allocation policy to the
// registry. It panics on an empty or duplicate name — registration is
// an init-time programming act, not a runtime input.
func RegisterAllocator(name string, factory func() BandwidthAllocator) {
	if name == "" {
		panic("core: RegisterAllocator with empty name")
	}
	if factory == nil {
		panic("core: RegisterAllocator with nil factory")
	}
	if _, dup := allocRegistry[name]; dup {
		panic(fmt.Sprintf("core: allocator %q registered twice", name))
	}
	allocRegistry[name] = factory
}

// HasAllocator reports whether a policy with the given registry name
// exists.
func HasAllocator(name string) bool {
	_, ok := allocRegistry[name]
	return ok
}

// AllocatorNames returns the registered policy names, sorted.
func AllocatorNames() []string {
	names := make([]string, 0, len(allocRegistry))
	for n := range allocRegistry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// AllocatorName returns the effective registry name for this
// configuration: Allocator when set, otherwise the name derived from
// the legacy Intermittent/Spare fields.
func (c Config) AllocatorName() string {
	if c.Allocator != "" {
		return c.Allocator
	}
	if c.Intermittent {
		return AllocIntermittent
	}
	switch c.Spare {
	case LFTF:
		return AllocMinFlowLFTF
	case EvenSplit:
		return AllocMinFlowEvenSplit
	default:
		return AllocMinFlowEFTF
	}
}

// validateAllocator cross-checks Config.Allocator against the registry
// and the legacy scheduling fields. The four built-in names must agree
// with the Intermittent/Spare flags they mirror (admission control and
// the audit contract read those flags); custom registered policies are
// accepted as-is.
func (c Config) validateAllocator() error {
	if c.Allocator == "" {
		return nil
	}
	if !HasAllocator(c.Allocator) {
		return fmt.Errorf("core: unknown allocator %q (have %v)", c.Allocator, AllocatorNames())
	}
	switch c.Allocator {
	case AllocMinFlowEFTF, AllocMinFlowLFTF, AllocMinFlowEvenSplit, AllocIntermittent:
		derived := Config{Intermittent: c.Intermittent, Spare: c.Spare}.AllocatorName()
		if c.Allocator != derived {
			return fmt.Errorf("core: Allocator %q inconsistent with Intermittent/Spare (which imply %q)", c.Allocator, derived)
		}
	}
	return nil
}

// allocator returns the engine's bandwidth allocator, resolving it from
// the registry on first use. Resolution is deliberately lazy — bound at
// the first allocation, not at construction — which mirrors the
// pre-seam behavior of dispatching on the config at call time (tests
// adjust cfg between NewEngine and the first event). Validate vets the
// name, so resolution cannot fail for a validated configuration.
func (e *Engine) allocator() BandwidthAllocator {
	if e.alloc == nil {
		name := e.cfg.AllocatorName()
		factory, ok := allocRegistry[name]
		if !ok {
			panic(fmt.Sprintf("core: allocator %q not registered", name))
		}
		e.alloc = factory()
	}
	return e.alloc
}

// allocate recomputes the bandwidth allocation of server s at time t
// via the engine's allocator, discarding the next-wake value. Tests use
// it to exercise allocation in isolation; the event path goes through
// reschedule, which keeps the fused next-wake result.
func (e *Engine) allocate(s *server, t float64) {
	e.allocator().Allocate(e, s, t)
}

// reschedule recomputes s's allocation at time t and replaces its
// pending wake event. Requests must be synced to t first. The wake is
// held rather than pushed: reschedule is almost always the last act of
// an event handler, so the wake can be fused with the next pop.
func (e *Engine) reschedule(s *server, t float64) {
	next := e.allocator().Allocate(e, s, t)
	s.version++
	if !math.IsInf(next, 1) {
		e.holdWake(next, event{kind: evServerWake, server: s.id, version: s.version})
	}
}
