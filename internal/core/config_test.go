package core

import "testing"

func validCoreConfig() Config {
	return Config{
		ServerBandwidth: []float64{100, 100},
		ViewRate:        3,
		BufferCapacity:  720,
		ReceiveCap:      30,
		Workahead:       true,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validCoreConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no servers", func(c *Config) { c.ServerBandwidth = nil }},
		{"zero view rate", func(c *Config) { c.ViewRate = 0 }},
		{"server below view rate", func(c *Config) { c.ServerBandwidth[1] = 2 }},
		{"negative buffer", func(c *Config) { c.BufferCapacity = -1 }},
		{"negative receive cap", func(c *Config) { c.ReceiveCap = -1 }},
		{"receive cap below view rate", func(c *Config) { c.ReceiveCap = 2 }},
		{"bad max hops", func(c *Config) { c.Migration.MaxHops = -2 }},
		{"zero max chain", func(c *Config) { c.Migration.MaxChain = 0 }},
		{"negative switch delay", func(c *Config) { c.Migration.SwitchDelay = -1 }},
	}
	for _, tc := range cases {
		cfg := validCoreConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", tc.name)
		}
	}
}

func TestMigrationDisabledSkipsChecks(t *testing.T) {
	cfg := validCoreConfig()
	cfg.Migration = MigrationConfig{Enabled: false, MaxChain: 0, MaxHops: -7}
	if err := cfg.Validate(); err != nil {
		t.Errorf("disabled migration config rejected: %v", err)
	}
}

func TestSlots(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100, 99, 3, 301}, ViewRate: 3}
	want := []int{33, 33, 1, 100}
	for i, w := range want {
		if got := cfg.Slots(i); got != w {
			t.Errorf("Slots(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestTotalBandwidth(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100, 200, 300}}
	if got := cfg.TotalBandwidth(); got != 600 {
		t.Errorf("TotalBandwidth() = %v, want 600", got)
	}
}

func TestUnlimitedHopsConstant(t *testing.T) {
	cfg := validCoreConfig()
	cfg.Migration.MaxHops = UnlimitedHops
	if err := cfg.Validate(); err != nil {
		t.Errorf("UnlimitedHops rejected: %v", err)
	}
}
