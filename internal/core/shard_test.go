package core

import (
	"reflect"
	"testing"
)

// TestResetEquivalenceSharded extends the engine-reuse contract across
// the sharded engine: one reused engine alternates between serial and
// sharded configurations of the kitchen-sink scenarios, and every run's
// metrics must equal a fresh serial engine's — which pins both the
// Reset arm/disarm transitions and, in the same stroke, sharded-versus-
// serial determinism at the core layer (invariant checking is turned
// off so even-numbered shard counts take the parallel window path, odd
// runs keep it on to pin the lockstep merge).
func TestResetEquivalenceSharded(t *testing.T) {
	reused := new(Engine)
	shardPlan := []int{2, 0, 4, 3, 8, 1, 2, 5}
	for i, seed := range []uint64{1, 2, 3, 7, 11, 23, 42, 99} {
		cfg, cat, lay, mkSrc := kitchenSinkParts(t, seed)
		shards := shardPlan[i]
		cfg.CheckInvariants = shards%2 == 1 // even counts → parallel windows

		serial := cfg
		serial.Shards = 0
		serial.CheckInvariants = false
		fresh, err := NewEngine(serial, cat, lay, mkSrc())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Shards = shards
		if err := reused.Reset(cfg, cat, lay, mkSrc()); err != nil {
			t.Fatal(err)
		}
		if seed%2 == 1 {
			id := int(seed) % len(cfg.ServerBandwidth)
			for _, e := range []*Engine{fresh, reused} {
				if err := e.ScheduleFailure(600, id); err != nil {
					t.Fatal(err)
				}
				if err := e.ScheduleRecovery(1200, id, seed%4 == 1); err != nil {
					t.Fatal(err)
				}
			}
		}

		mf, errF := fresh.Run(1800)
		mr, errR := reused.Run(1800)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("seed %d: fresh err %v, reused err %v", seed, errF, errR)
		}
		if errF != nil {
			continue
		}
		if *mf != *mr {
			t.Errorf("seed %d shards %d: metrics diverge from serial\nserial:  %+v\nsharded: %+v", seed, shards, *mf, *mr)
		}
	}
}

// TestResetClearsShardState walks shardState by reflection, in the
// TestResetClearsLanes mold, so the check cannot silently rot: every
// per-run container must be empty after Reset, the cursors back at
// their initial values, and any field this test does not recognize
// fails it outright — adding shard-local state without teaching
// ensureShards/resetLog (and this test) about it is a leak waiting for
// the next reused run.
func TestResetClearsShardState(t *testing.T) {
	cfg, cat, lay, mkSrc := kitchenSinkParts(t, 7)
	cfg.CheckInvariants = false // take the parallel window path
	cfg.Shards = 3
	e, err := NewEngine(cfg, cat, lay, mkSrc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1800); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(cfg, cat, lay, mkSrc()); err != nil {
		t.Fatal(err)
	}
	if e.sh == nil {
		t.Fatal("Shards=3 engine has no shard set after Reset")
	}
	if e.seqSrc != 0 {
		t.Errorf("seqSrc = %d after Reset, want 0", e.seqSrc)
	}
	for si := range e.sh.shards {
		ss := &e.sh.shards[si]
		tp := reflect.TypeOf(*ss)
		for fi := 0; fi < tp.NumField(); fi++ {
			switch f := tp.Field(fi); f.Name {
			case "eng":
				switch {
				case ss.eng == nil:
					t.Fatalf("shard %d: nil replica engine after Reset", si)
				case ss.eng.shlog != ss:
					t.Errorf("shard %d: replica's shlog does not point back at its shard", si)
				case ss.eng.sh != nil:
					t.Errorf("shard %d: replica engine is itself sharded", si)
				}
			case "main":
				if n := ss.main.Len(); n != 0 {
					t.Errorf("shard %d: %d events queued after Reset", si, n)
				}
			case "win":
				if n := ss.win.Len(); n != 0 {
					t.Errorf("shard %d: %d window births queued after Reset", si, n)
				}
			case "births", "log", "finished", "copiesDone":
				if n := reflect.ValueOf(*ss).Field(fi).Len(); n != 0 {
					t.Errorf("shard %d: %s has %d entries after Reset", si, f.Name, n)
				}
			case "lo", "hi":
				if ss.lo < 0 || ss.hi > len(e.servers) || ss.lo >= ss.hi {
					t.Errorf("shard %d: owner range [%d, %d) invalid for %d servers", si, ss.lo, ss.hi, len(e.servers))
				}
			case "cur":
				if ss.cur != 0 {
					t.Errorf("shard %d: commit cursor %d after Reset, want 0", si, ss.cur)
				}
			case "curBirth":
				if ss.curBirth != -1 {
					t.Errorf("shard %d: curBirth %d after Reset, want -1", si, ss.curBirth)
				}
			case "err":
				if ss.err != nil {
					t.Errorf("shard %d: captured panic %v survived Reset", si, ss.err)
				}
			case "ht", "hseq", "dispatched", "work":
				// Per-window dispatch state, fully rewritten by the
				// parent before every window; no reset obligation.
			default:
				t.Errorf("shardState.%s: field not covered by this test — extend ensureShards/resetLog and the cases above", f.Name)
			}
		}
	}
	// Disarming must drop the shard set so the serial fast path has no
	// merge overhead left to pay.
	cfg.Shards = 0
	if err := e.Reset(cfg, cat, lay, mkSrc()); err != nil {
		t.Fatal(err)
	}
	if e.sh != nil {
		t.Error("Shards=0 Reset left the engine sharded")
	}
}
