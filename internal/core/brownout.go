package core

// Brownouts: partial failures. Where a failure removes a server
// entirely, a brownout scales its effective bandwidth to a fraction
// f ∈ (0,1] of the configured capacity for a duration — an overheating
// host, a degraded NIC, a noisy neighbour. The engine models it by
// rewriting the server's bandwidth and the slot count derived from it;
// every downstream consumer (allocators, selectors, canAccept, the
// invariant checks, audit snapshots) already reads those effective
// fields, so a browned-out server simply looks like a smaller one.
//
// Under minimum-flow scheduling, streams in excess of the reduced slot
// count cannot all be guaranteed b_view; the excess goes through the
// same rescue → park → drop ladder a failure applies (evictSlot0,
// shared with handleFailure). The intermittent scheduler over-subscribes
// by design, so it sheds nothing — its allocator pauses streams against
// their buffers within whatever bandwidth remains, and underruns are
// accounted as glitches as usual.

// evictOutcome is the disposition of one stream forced off its server.
type evictOutcome uint8

const (
	evictRescued evictOutcome = iota // migrated to a live replica holder
	evictParked                      // degraded-mode playback from buffer
	evictDropped                     // lost mid-play
)

// evictSlot0 forces the stream in slot 0 of s off the server through
// the rescue → park → drop ladder shared by failures and brownouts:
// migrate to the least-loaded live replica holder that can accept it
// (hops budget waived — a stream facing death is moved if at all
// possible), else park it into degraded-mode playback when configured
// and buffered data allows, else drop it. The server must be synced to
// t; detach swaps the last stream into slot 0, so callers loop on the
// active count.
func (e *Engine) evictSlot0(s *server, t float64) evictOutcome {
	r := s.active[0]
	var target *server
	// Rescue is migration: it requires DRM to be configured (the
	// paper's fault-tolerance benefit comes from the ability to
	// switch servers mid-stream).
	if e.cfg.Migration.Enabled && e.migratable(r, t, true) {
		for _, h := range e.holders(int(r.video)) {
			c := e.servers[h]
			if e.cfg.Intermittent {
				c.syncAll(t) // canAccept reads buffer levels
			}
			if e.canAccept(c, t) && e.eligibleTarget(r, c, t) &&
				(target == nil || c.load() < target.load()) {
				target = c
			}
		}
	}
	if target == nil {
		// No rescue target. A stream with buffered data can play on
		// in degraded mode and try to reconnect later; patch trees
		// are pinned and mid-switch streams have no data flowing.
		if e.cfg.Degraded.Enabled && !r.isPatch && r.taps == 0 &&
			!s.suspendedAt(0, t) && !s.finishedAt(0) &&
			s.bufferOf(0, t, e.cfg.ViewRate) > dataEps {
			e.park(r, s, t)
			return evictParked
		}
		// No home for this stream: it is dropped mid-play.
		s.detach(r)
		e.metrics.DroppedStreams++
		e.metrics.DeliveredBytes += r.carrySent
		if e.cfg.Edge.Nodes > 0 {
			e.metrics.ClusterEgressMb += r.carrySent
		}
		e.observe(ObsMigrations, float64(r.hops))
		e.recycle(r)
		return evictDropped
	}
	target.syncAll(t)
	s.detach(r)
	target.attach(r)
	r.hops++
	if d := e.cfg.Migration.SwitchDelay; d > 0 {
		target.setSuspend(r, t+d)
	}
	e.metrics.Migrations++
	e.metrics.RescuedStreams++
	if e.obs != nil {
		e.obs.OnMigrate(t, r.id, int(r.video), int(s.id), int(target.id), true)
	}
	if e.audit != nil {
		e.auditFail(e.audit.Migration(t, r.id, r.video, s.id, target.id, r.hops, true))
	}
	e.reschedule(target, t)
	return evictRescued
}

// handleBrownout scales server s's effective capacity to frac and
// sheds any minimum-flow excess. Schedule-time validation guarantees s
// is up and undimmed when the event fires; the guard mirrors
// handleFailure's defensiveness.
func (e *Engine) handleBrownout(s *server, frac, t float64) {
	if s.failed || s.dimFrac > 0 {
		return
	}
	s.syncAll(t)
	s.dimFrac = frac
	s.bandwidth = e.cfg.ServerBandwidth[s.id] * frac
	s.slots = int(s.bandwidth/e.cfg.ViewRate + timeEps)
	e.metrics.Brownouts++
	// Completed streams and copies release their slots before the
	// over-capacity check (the same pass handleWake runs).
	for i := 0; i < len(s.active); {
		if s.finishedAt(i) {
			e.finish(s.active[i], s, t)
			continue // detach swapped another request into slot i
		}
		i++
	}
	for i := 0; i < len(s.copies); {
		if c := s.copies[i]; c.done() {
			e.finishCopy(s, c, t)
			continue
		}
		i++
	}
	rescued, dropped, parked := 0, 0, 0
	if !e.cfg.Intermittent {
		for len(s.active) > s.slots {
			switch e.evictSlot0(s, t) {
			case evictRescued:
				rescued++
			case evictParked:
				parked++
			case evictDropped:
				dropped++
			}
		}
	}
	if e.audit != nil {
		e.auditFail(e.audit.Brownout(t, s.id, frac, rescued, dropped, parked))
	}
	e.reschedule(s, t)
}

// handleBrownoutEnd restores a browned-out server to its configured
// capacity. The restored values are computed from the config exactly as
// Reset computes them, so a restored server is bit-identical to one
// that never dimmed.
func (e *Engine) handleBrownoutEnd(s *server, t float64) {
	if s.failed || s.dimFrac == 0 {
		return
	}
	s.syncAll(t)
	s.dimFrac = 0
	s.bandwidth = e.cfg.ServerBandwidth[s.id]
	s.slots = e.cfg.Slots(int(s.id))
	e.metrics.BrownoutRestores++
	if e.audit != nil {
		e.auditFail(e.audit.BrownoutEnd(t, s.id))
	}
	e.reschedule(s, t)
}
