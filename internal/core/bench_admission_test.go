package core

import (
	"fmt"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
)

// Admission micro-benchmarks: one Select call per iteration over a
// cluster where every server holds the probed video, parameterized over
// the holder count k. BENCH_admission.json at the repo root holds the
// baseline recorded when the controller seam landed; the bar is zero
// allocations per operation in steady state for every selector (the
// random selector's candidate scratch is warmed before timing).

// benchAdmissionKs are the replica-holder counts the admission benches
// sweep — real layouts replicate a video on a handful of servers, not
// the whole cluster, so the sweep stays small where allocators go big.
var benchAdmissionKs = []int{4, 16, 64}

// benchAdmissionEngine builds a full engine (real catalog, layout, and
// server array) with k servers of 10 slots each, all holding video 0,
// and per-server load active streams already attached. Unlike the bare
// allocator benches this goes through NewEngine: selectors walk
// e.holders and e.servers, which only the real constructor wires.
func benchAdmissionEngine(b *testing.B, selector string, k, load int) *Engine {
	b.Helper()
	bview := 3.0
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 1, MinLength: 1200, MaxLength: 1200, ViewRate: bview, Theta: 1,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	holders := make([]int, k)
	bw := make([]float64, k)
	for i := range holders {
		holders[i] = i
		bw[i] = bview * 10 // 10 slots
	}
	lay, err := placement.Manual(cat, [][]int{holders}, k)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{ServerBandwidth: bw, ViewRate: bview, Selector: selector}
	e, err := NewEngine(cfg, cat, lay, &scriptSource{})
	if err != nil {
		b.Fatal(err)
	}
	id := int64(1)
	for _, s := range e.servers {
		// Stagger the loads so least-loaded and most-headroom do real
		// comparisons instead of riding the first-candidate fast path.
		n := load + int(s.id)%2
		if n > s.slots {
			n = s.slots
		}
		for j := 0; j < n; j++ {
			s.attach(&request{id: id, size: 3600, bufCap: 0, recvCap: 0})
			id++
		}
	}
	return e
}

// BenchmarkAdmissionSelect measures the hot admission path: all k
// holders feasible, the selector scans every candidate and picks one.
func BenchmarkAdmissionSelect(b *testing.B) {
	for _, name := range SelectorNames() {
		for _, k := range benchAdmissionKs {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				e := benchAdmissionEngine(b, name, k, 5)
				if benchSelect(e, 0, 0) == nil {
					b.Fatal("hot cluster refused the probe")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchSelect(e, 0, 0)
				}
			})
		}
	}
}

// BenchmarkAdmissionSelectSaturated is the 100%-load shape: every
// holder is slot-full, so the scan completes without a pick (the
// engine would then fall through to DRM planning or rejection).
func BenchmarkAdmissionSelectSaturated(b *testing.B) {
	for _, name := range SelectorNames() {
		for _, k := range benchAdmissionKs {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				e := benchAdmissionEngine(b, name, k, 10)
				if benchSelect(e, 0, 0) != nil {
					b.Fatal("saturated cluster admitted the probe")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchSelect(e, 0, 0)
				}
			})
		}
	}
}
