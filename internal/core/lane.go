package core

import "math"

// lane is a server's structure-of-arrays data plane: the per-request
// hot fields (rate, sent, last-sync, suspension deadline, object size)
// and the stored wake keys, held in parallel float64 slices indexed by
// request slot. The pointer slice server.active carries everything
// cold (identity, viewer state, client caps, patching/park flags); the
// lane carries everything the per-event passes — syncAll, the
// allocation feeds, the wake query — actually touch, so those passes
// stream contiguous arrays instead of chasing pointers across a
// 100+-byte struct.
//
// Ownership contract: while a request is attached the lane is the only
// authoritative copy of its hot fields; the request struct's carry*
// fields are a marshaling area valid only while detached (parked
// streams, the freelist). attach loads carry → lane; detach stores
// lane → carry and swap-removes the slot. size never changes while
// attached, so its lane mirror cannot go stale.
//
// Wake-index contract (see wake.go for the scheduling semantics): each
// slot stores the request's wake key — the earliest of its finish,
// buffer-full, and resume-guard candidates, computed by the allocation
// round that assigned its current rate; copy jobs store theirs on the
// copyJob. wakeMin/wakeArg maintain the min over all stored keys
// incrementally: beginRound resets them, setWake folds each write, and
// anything that removes or raises a key marks the index dirty so the
// next query lazily repairs it by rescanning the stored keys (compare
// only — the keys themselves are never recomputed outside a round,
// which is what keeps the incremental answer bit-identical to a
// from-scratch min over the same keys).
type lane struct {
	rate []float64 // current allocation, Mb/s
	sent []float64 // Mb transmitted, valid as of last
	last []float64 // time sent was last synced
	susp []float64 // suspension deadline (mid-switch blackout)
	size []float64 // object size mirror, immutable while attached
	wake []float64 // stored wake key (+Inf = no wake needed)

	wakeMin   float64 // min over wake ∪ copy keys, valid unless dirty
	wakeArg   int32   // slot of the min; wakeArgCopy for a copy job
	wakeDirty bool    // a key was removed or raised since the last fold
}

// wakeArg sentinel values. Slots are ≥ 0.
const (
	wakeArgNone = int32(-1) // no key folded yet (idle server)
	wakeArgCopy = int32(-2) // the min is a copy job's key
)

// attach appends r's carried hot fields as a new lane slot. The wake
// key starts at +Inf; the reschedule that follows every attach writes
// the real key (+Inf cannot lower the maintained min, so no
// invalidation is needed).
func (ln *lane) attach(r *request) {
	ln.rate = append(ln.rate, r.carryRate)
	ln.sent = append(ln.sent, r.carrySent)
	ln.last = append(ln.last, r.carryLast)
	ln.susp = append(ln.susp, r.carrySusp)
	ln.size = append(ln.size, r.size)
	ln.wake = append(ln.wake, math.Inf(1))
}

// detach stores slot i back into r's carry fields and swap-removes the
// slot, mirroring server.detach's swap of the active slice. Removing a
// key can orphan the maintained min, so the index goes dirty.
func (ln *lane) detach(r *request, i, last int) {
	r.carryRate, r.carrySent, r.carryLast, r.carrySusp =
		ln.rate[i], ln.sent[i], ln.last[i], ln.susp[i]
	ln.rate[i] = ln.rate[last]
	ln.rate = ln.rate[:last]
	ln.sent[i] = ln.sent[last]
	ln.sent = ln.sent[:last]
	ln.last[i] = ln.last[last]
	ln.last = ln.last[:last]
	ln.susp[i] = ln.susp[last]
	ln.susp = ln.susp[:last]
	ln.size[i] = ln.size[last]
	ln.size = ln.size[:last]
	ln.wake[i] = ln.wake[last]
	ln.wake = ln.wake[:last]
	ln.wakeDirty = true
}

// beginRound opens an allocation round: every slot's key is about to be
// rewritten, so the maintained min restarts empty. Copy keys are
// rewritten by the same round (allocateCopies), so they restart too.
func (ln *lane) beginRound() {
	ln.wakeMin = math.Inf(1)
	ln.wakeArg = wakeArgNone
	ln.wakeDirty = false
}

// setWake stores slot i's wake key and folds it into the maintained
// min. Within a round a slot's key can be rewritten (the spare feed
// raises rates, which only lowers keys); a raise of the current min is
// still handled, by marking the index dirty.
func (ln *lane) setWake(i int32, k float64) {
	ln.wake[i] = k
	if k <= ln.wakeMin {
		ln.wakeMin, ln.wakeArg = k, i
	} else if ln.wakeArg == i {
		ln.wakeDirty = true
	}
}

// foldCopyKey folds a copy job's freshly written key into the
// maintained min (the key itself lives on the copyJob).
func (ln *lane) foldCopyKey(k float64) {
	if k <= ln.wakeMin {
		ln.wakeMin, ln.wakeArg = k, wakeArgCopy
	}
}

// reset returns the lane to its empty state, retaining slice capacity
// for Engine.Reset reuse.
func (ln *lane) reset() {
	ln.rate = ln.rate[:0]
	ln.sent = ln.sent[:0]
	ln.last = ln.last[:0]
	ln.susp = ln.susp[:0]
	ln.size = ln.size[:0]
	ln.wake = ln.wake[:0]
	ln.beginRound()
}
