package core

import (
	"math"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// scriptSource replays a fixed list of requests, then reports +Inf so
// the engine schedules nothing further.
type scriptSource struct {
	reqs []workload.Request
	i    int
}

func (s *scriptSource) Next() workload.Request {
	if s.i < len(s.reqs) {
		r := s.reqs[s.i]
		s.i++
		return r
	}
	return workload.Request{Arrival: math.Inf(1)}
}

// fixedCatalog builds n videos of identical length (seconds) at 3 Mb/s.
func fixedCatalog(t *testing.T, n int, lengthSec float64) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: n, MinLength: lengthSec, MaxLength: lengthSec, ViewRate: 3, Theta: 1,
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// manualLayout wraps placement.Manual with test fatals.
func manualLayout(t *testing.T, cat *catalog.Catalog, holders [][]int, numServers int) *placement.Layout {
	t.Helper()
	lay, err := placement.Manual(cat, holders, numServers)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// newTestEngine builds an engine over fixed-length videos with an
// explicit layout and scripted arrivals. CheckInvariants is always on.
func newTestEngine(t *testing.T, cfg Config, cat *catalog.Catalog, holders [][]int, reqs []workload.Request) *Engine {
	t.Helper()
	cfg.CheckInvariants = true
	lay := manualLayout(t, cat, holders, len(cfg.ServerBandwidth))
	e, err := NewEngine(cfg, cat, lay, &scriptSource{reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// run drives the engine to completion with the given horizon and
// returns the metrics.
func run(t *testing.T, e *Engine, horizon float64) *Metrics {
	t.Helper()
	m, err := e.Run(horizon)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
