// Package core implements the paper's primary contribution: the
// semi-continuous transmission engine for a cluster-based video server.
// It combines
//
//   - a fluid-flow discrete-event model of servers, clients, and
//     constant-bit-rate playback,
//   - minimum-flow admission control (every unfinished request is
//     guaranteed at least the view bandwidth, Section 3.3),
//   - the EFTF (Earliest Finishing Time First) workahead scheduler that
//     stages data into client buffers with spare server bandwidth
//     (Figure 2 of the paper),
//   - dynamic request migration (DRM) between servers at admission time
//     (Section 3.1), including the chain-length and hops-per-request
//     limits studied in Section 4.2, and
//   - server failure injection with DRM-based stream rescue (the
//     fault-tolerance use of migration the paper points out).
//
// The engine is deterministic: given the same configuration, placement,
// and arrival stream it produces bit-identical results.
package core

import (
	"fmt"
	"math"
)

// UnlimitedHops configures migration with no per-request lifetime limit
// (the "unrestricted hops per request" curves of Figure 4).
const UnlimitedHops = -1

// MigrationConfig controls dynamic request migration.
type MigrationConfig struct {
	// Enabled turns DRM on. When off, arrivals finding every replica
	// holder full are rejected outright.
	Enabled bool

	// MaxHops bounds how many times a single request may be migrated
	// during its lifetime. 1 reproduces the paper's "hops per request =
	// 1"; UnlimitedHops removes the bound. 0 with Enabled==true permits
	// no migrations at all.
	MaxHops int

	// MaxChain bounds how many requests may be migrated to accommodate
	// one incoming request (the paper's "migration chain length", kept
	// at one throughout its experiments). Values above one enable the
	// recursive chain search ablation.
	MaxChain int

	// SwitchDelay is the time a migrating stream receives no data while
	// the transmission is re-established on the new server. A migration
	// is only legal if the client's buffer holds at least
	// SwitchDelay × view-rate of data, since playback must continue from
	// the buffer during the switch (Section 3.1's jitter argument).
	// Zero (the paper's assumption) makes switching instantaneous.
	SwitchDelay float64
}

// Validate reports configuration errors.
func (m MigrationConfig) Validate() error {
	if !m.Enabled {
		return nil
	}
	if m.MaxHops < UnlimitedHops {
		return fmt.Errorf("core: MaxHops %d (use UnlimitedHops=-1 for no bound)", m.MaxHops)
	}
	if m.MaxChain < 1 {
		return fmt.Errorf("core: MaxChain must be at least 1, got %d", m.MaxChain)
	}
	if m.SwitchDelay < 0 {
		return fmt.Errorf("core: negative SwitchDelay %g", m.SwitchDelay)
	}
	return nil
}

// SpareDiscipline selects how spare server bandwidth is divided among
// staging candidates. The paper's Theorem (Section 3.3) proves EFTF
// optimal among minimum-flow algorithms when client receive bandwidth
// is unbounded; the alternatives exist to measure the theorem's value
// empirically (ablation A-EFTF).
type SpareDiscipline uint8

const (
	// EFTF gives spare bandwidth to the earliest projected finisher
	// first (the paper's Figure 2 algorithm). The default.
	EFTF SpareDiscipline = iota
	// LFTF gives spare bandwidth to the latest projected finisher
	// first — the adversarial opposite of EFTF.
	LFTF
	// EvenSplit divides spare bandwidth equally among all staging
	// candidates regardless of progress.
	EvenSplit
)

// String implements fmt.Stringer.
func (d SpareDiscipline) String() string {
	switch d {
	case EFTF:
		return "eftf"
	case LFTF:
		return "lftf"
	case EvenSplit:
		return "even-split"
	default:
		return fmt.Sprintf("SpareDiscipline(%d)", uint8(d))
	}
}

// ClientClass describes one kind of client in a heterogeneous client
// population (the paper's future-work observation that "client resource
// capabilities can vary"). Each admitted request draws a class with
// probability proportional to Weight.
type ClientClass struct {
	// Weight is the class's relative frequency (need not sum to 1).
	Weight float64
	// BufferCapacity is this class's staging buffer in Mb (0 = none).
	BufferCapacity float64
	// ReceiveCap is this class's receive bandwidth in Mb/s
	// (0 = unlimited).
	ReceiveCap float64
}

// MaxTrafficClasses bounds the number of traffic classes one run may
// configure. Per-class metrics are fixed-size arrays of this length so
// Metrics (and the Result types built from it) stay comparable.
const MaxTrafficClasses = 4

// TrafficClass describes one priority tier of the arriving traffic
// (premium, standard, …). Unlike ClientClass — which varies client
// *capabilities* — a traffic class varies the *policy* applied to the
// request: its admission selector, its retry patience, and whether the
// shed controller may reject it under overload. Classes are ordered by
// priority: index 0 is the highest and is never shed.
type TrafficClass struct {
	// Name labels the class in reports ("premium"). Informational.
	Name string

	// Share is the class's relative arrival frequency (need not sum
	// to 1 across classes). Must be positive.
	Share float64

	// Selector optionally names this class's admission selector from
	// the controller registry. Empty inherits Config.Selector.
	Selector string

	// RetryPatience optionally overrides Retry.Patience for this
	// class's queued requests, in seconds. Zero inherits the global
	// patience; premium tiers typically wait longer.
	RetryPatience float64
}

// ShedConfig controls graceful load shedding: above a utilization
// watermark the controller rejects low-class arrivals up front —
// before admission, the retry queue, or replication — so the capacity
// that remains serves the high classes. The controller is a two-state
// machine (normal/shedding) re-evaluated at every arrival; entering the
// shedding state increments Metrics.SheddingActivated.
type ShedConfig struct {
	// Enabled turns the shed controller on. Requires at least two
	// traffic classes — with fewer there is no low class to shed.
	Enabled bool

	// Watermark is the instantaneous utilization (committed minimum-flow
	// bandwidth over live effective capacity) at or above which shedding
	// engages. Must be in (0,1].
	Watermark float64
}

// Validate reports configuration errors.
func (s ShedConfig) Validate() error {
	if !s.Enabled {
		if s.Watermark != 0 {
			return fmt.Errorf("core: shed Watermark %g set while shedding is disabled", s.Watermark)
		}
		return nil
	}
	if math.IsNaN(s.Watermark) || s.Watermark <= 0 || s.Watermark > 1 {
		return fmt.Errorf("core: shed Watermark %g must be in (0,1]", s.Watermark)
	}
	return nil
}

// Config describes one cluster simulation.
type Config struct {
	// ServerBandwidth lists each data server's transmission capacity in
	// Mb/s. Homogeneous clusters repeat one value; the heterogeneity
	// experiments vary entries while preserving the total.
	ServerBandwidth []float64

	// ViewRate is b_view, the constant playback rate in Mb/s (3 Mb/s in
	// every experiment of the paper).
	ViewRate float64

	// BufferCapacity is each client's staging buffer in Mb. The paper
	// expresses it as a percentage of the average video object size;
	// callers convert. Zero disables staging entirely.
	BufferCapacity float64

	// ReceiveCap limits the rate at which one client can receive data,
	// in Mb/s (30 Mb/s in the staging experiments, Section 4.3). Zero
	// means unlimited. Only meaningful with Workahead.
	ReceiveCap float64

	// Workahead enables the EFTF scheduler: spare server bandwidth is
	// sent ahead of playback into client buffers. When false every
	// transmission proceeds at exactly ViewRate (pure continuous
	// transmission).
	Workahead bool

	// Spare selects the workahead discipline (default EFTF, the
	// paper's algorithm; LFTF and EvenSplit are ablations).
	Spare SpareDiscipline

	// Allocator names the bandwidth-allocation policy from the registry
	// (see RegisterAllocator). Empty selects the policy the Intermittent
	// and Spare fields imply — the usual path. A built-in name must
	// agree with those fields (Validate enforces it); a custom
	// registered policy may be named freely.
	Allocator string

	// Selector names the admission server-selection policy from the
	// controller registry (see RegisterSelector). Empty selects
	// SelectorLeastLoaded, the paper's Section 3.2 assignment rule.
	Selector string

	// Planner names the DRM move-planning policy from the controller
	// registry (see RegisterPlanner). Empty selects PlannerChainDFS.
	// Naming one while Migration is disabled is a validation error —
	// a planner that can never run is a configuration contradiction.
	Planner string

	// SelectorSeed seeds randomized selectors (SelectorRandomFeasible);
	// runs with equal seeds draw the same selection sequence.
	// Deterministic selectors ignore it.
	SelectorSeed uint64

	// ClientClasses, when non-empty, makes the client population
	// heterogeneous: each admitted request draws a class (seeded by
	// ClientSeed) whose buffer and receive cap override BufferCapacity
	// and ReceiveCap. Workahead still gates staging globally.
	ClientClasses []ClientClass

	// ClientSeed seeds the class draw; runs with equal seeds draw the
	// same class sequence.
	ClientSeed uint64

	// Classes, when non-empty, partitions arrivals into priority tiers:
	// each arrival draws a traffic class (seeded by ClassSeed, its own
	// split stream) that picks its admission selector and retry
	// patience, and feeds the per-class accounting the shed controller
	// acts on. Index 0 is the highest priority. At most
	// MaxTrafficClasses entries.
	Classes []TrafficClass

	// ClassSeed seeds the traffic-class draw; runs with equal seeds
	// draw the same class sequence.
	ClassSeed uint64

	// Shed configures graceful load shedding over the traffic classes.
	Shed ShedConfig

	// Migration configures DRM.
	Migration MigrationConfig

	// Replication configures dynamic replica creation on rejection.
	Replication ReplicationConfig

	// Patching configures multicast stream-sharing with unicast
	// prefix patches (related-work technique; Section 6 future work).
	Patching PatchingConfig

	// Edge configures the proxy tier in front of the cluster: edge
	// nodes with bounded prefix caches serve the head of hot titles
	// locally, and a batching policy lets concurrent edge hits share
	// one cluster suffix stream (see edge.go and batch.go).
	Edge EdgeConfig

	// Retry configures the bounded admission retry queue (fault
	// tolerance: rejected requests wait and re-enter admission).
	Retry RetryConfig

	// Degraded configures degraded-mode playback on failure (streams
	// with staged data park and drain their buffers instead of dropping).
	Degraded DegradedConfig

	// Interactivity lets viewers pause mid-play (the situation excluded
	// by the paper's EFTF optimality theorem — "if the videos are not
	// paused" — and raised as future work in Section 6). A paused
	// viewer stops draining its buffer; transmission continues while
	// the buffer has room and stops when it is full, resuming with
	// playback.
	Interactivity InteractivityConfig

	// ServerStorage lists per-server storage capacities in Mb, used by
	// dynamic replication to decide where new replicas fit. Empty means
	// unbounded storage. Static placement capacity is enforced by the
	// placement package regardless.
	ServerStorage []float64

	// Intermittent switches the scheduler from the paper's minimum-flow
	// class to the intermittent class (Section 3.3): a stream may be
	// paused entirely while its client plays from the staging buffer,
	// letting the server admit more streams than its minimum-flow slot
	// count. The paper notes the optimal intermittent admission test is
	// impractical; this implements the natural heuristic — admit when
	// the streams that *must* transmit (buffer below ResumeGuard) leave
	// a slot free, pause the streams with the fullest buffers first —
	// and counts the playback glitches the heuristic risks
	// (Metrics.GlitchedStreams). Requires Workahead and a non-zero
	// buffer to be useful.
	Intermittent bool

	// ResumeGuard is how many seconds of playback must remain buffered
	// before a paused stream is considered urgent again (default 30 s).
	// Smaller guards admit more aggressively but glitch more.
	ResumeGuard float64

	// CheckInvariants enables expensive model-invariant assertions after
	// every event (tests use this; experiment runs leave it off).
	CheckInvariants bool

	// Shards partitions the servers into that many disjoint subsets,
	// each advanced by its own event queue and merged deterministically
	// so results are bit-identical to the serial engine at every shard
	// count (see shard.go). 0 and 1 mean the serial engine; the count is
	// capped at the number of servers.
	Shards int
}

// RetryConfig controls the admission retry queue: rejected requests
// wait (bounded patience, periodic backoff) and re-enter admission —
// including DRM and, through the rejection path, dynamic replication —
// instead of being lost instantly. The queue models clients that retry
// during a transient outage; a request whose patience expires before a
// slot opens reneges, accounted separately from instant rejections
// (Metrics.Reneged vs Metrics.Rejected).
type RetryConfig struct {
	// Enabled turns the retry queue on. When off, rejections are final
	// (the historical behaviour).
	Enabled bool

	// MaxQueue bounds the number of waiting requests; arrivals rejected
	// while the queue is full are rejected outright. Zero means 64.
	MaxQueue int

	// Patience is how long one request waits before reneging, in
	// seconds. Zero means 300.
	Patience float64

	// Backoff is the interval between admission re-attempts, in seconds.
	// Zero means 10.
	Backoff float64
}

// Validate reports configuration errors.
func (r RetryConfig) Validate() error {
	if !r.Enabled {
		return nil
	}
	if r.MaxQueue < 0 {
		return fmt.Errorf("core: negative retry MaxQueue %d", r.MaxQueue)
	}
	if math.IsNaN(r.Patience) || math.IsInf(r.Patience, 0) || r.Patience < 0 {
		return fmt.Errorf("core: retry Patience %g must be finite and non-negative", r.Patience)
	}
	if math.IsNaN(r.Backoff) || math.IsInf(r.Backoff, 0) || r.Backoff < 0 {
		return fmt.Errorf("core: retry Backoff %g must be finite and non-negative", r.Backoff)
	}
	return nil
}

// DegradedConfig controls degraded-mode playback: when a server fails
// and a stream finds no rescue target able to grant the full b_view
// minimum flow, the stream is parked instead of dropped — its client
// keeps playing from the staged workahead buffer at view rate, and the
// controller periodically re-attempts admission. Only when the buffer
// runs dry does the viewer glitch and the stream count as dropped. This
// turns EFTF staging (which fills buffers earliest) into a measurable
// robustness mechanism.
type DegradedConfig struct {
	// Enabled turns parking on. Streams with no buffered data (or
	// pinned by patching, or mid-switch) are dropped as before.
	Enabled bool

	// RetryInterval is the spacing of readmission attempts for a parked
	// stream, in seconds. Zero means 5.
	RetryInterval float64
}

// Validate reports configuration errors.
func (d DegradedConfig) Validate() error {
	if !d.Enabled {
		return nil
	}
	if math.IsNaN(d.RetryInterval) || math.IsInf(d.RetryInterval, 0) || d.RetryInterval < 0 {
		return fmt.Errorf("core: degraded RetryInterval %g must be finite and non-negative", d.RetryInterval)
	}
	return nil
}

// InteractivityConfig controls viewer pause behaviour.
type InteractivityConfig struct {
	// PauseProb is the probability that a given viewing pauses once at
	// a uniformly random point of its playback. Zero disables
	// interactivity.
	PauseProb float64
	// MinPause and MaxPause bound the uniformly distributed pause
	// duration in seconds.
	MinPause float64
	MaxPause float64
	// Seed decouples the interaction draws from other random streams.
	Seed uint64
}

// Validate reports configuration errors.
func (i InteractivityConfig) Validate() error {
	if i.PauseProb < 0 || i.PauseProb > 1 {
		return fmt.Errorf("core: PauseProb %g outside [0,1]", i.PauseProb)
	}
	if i.PauseProb > 0 {
		if i.MinPause <= 0 || i.MaxPause < i.MinPause {
			return fmt.Errorf("core: invalid pause duration range [%g, %g]", i.MinPause, i.MaxPause)
		}
	}
	return nil
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.ServerBandwidth) == 0 {
		return fmt.Errorf("core: no servers configured")
	}
	if c.ViewRate <= 0 {
		return fmt.Errorf("core: ViewRate must be positive, got %g", c.ViewRate)
	}
	for i, b := range c.ServerBandwidth {
		if b < c.ViewRate {
			return fmt.Errorf("core: server %d bandwidth %g below view rate %g (cannot serve any stream)", i, b, c.ViewRate)
		}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("core: server %d bandwidth %g invalid", i, b)
		}
	}
	if c.BufferCapacity < 0 {
		return fmt.Errorf("core: negative BufferCapacity %g", c.BufferCapacity)
	}
	if c.ReceiveCap < 0 {
		return fmt.Errorf("core: negative ReceiveCap %g", c.ReceiveCap)
	}
	if c.Workahead && c.ReceiveCap > 0 && c.ReceiveCap < c.ViewRate {
		return fmt.Errorf("core: ReceiveCap %g below ViewRate %g", c.ReceiveCap, c.ViewRate)
	}
	totalWeight := 0.0
	for i, cl := range c.ClientClasses {
		if cl.Weight < 0 || math.IsNaN(cl.Weight) {
			return fmt.Errorf("core: client class %d has weight %g", i, cl.Weight)
		}
		if cl.BufferCapacity < 0 {
			return fmt.Errorf("core: client class %d has buffer %g", i, cl.BufferCapacity)
		}
		if cl.ReceiveCap < 0 || (cl.ReceiveCap > 0 && cl.ReceiveCap < c.ViewRate) {
			return fmt.Errorf("core: client class %d receive cap %g below view rate %g", i, cl.ReceiveCap, c.ViewRate)
		}
		totalWeight += cl.Weight
	}
	if len(c.ClientClasses) > 0 && totalWeight <= 0 {
		return fmt.Errorf("core: client classes have no positive weight")
	}
	if len(c.Classes) > MaxTrafficClasses {
		return fmt.Errorf("core: %d traffic classes, at most %d supported", len(c.Classes), MaxTrafficClasses)
	}
	shareTotal := 0.0
	for i, tc := range c.Classes {
		if math.IsNaN(tc.Share) || math.IsInf(tc.Share, 0) || tc.Share <= 0 {
			return fmt.Errorf("core: traffic class %d share %g must be positive and finite", i, tc.Share)
		}
		if tc.Selector != "" && !HasSelector(tc.Selector) {
			return fmt.Errorf("core: traffic class %d selector %q unknown (have %v)", i, tc.Selector, SelectorNames())
		}
		if math.IsNaN(tc.RetryPatience) || math.IsInf(tc.RetryPatience, 0) || tc.RetryPatience < 0 {
			return fmt.Errorf("core: traffic class %d retry patience %g must be finite and non-negative", i, tc.RetryPatience)
		}
		shareTotal += tc.Share
	}
	if len(c.Classes) > 0 && (math.IsInf(shareTotal, 0) || shareTotal <= 0) {
		return fmt.Errorf("core: traffic class shares sum to %g", shareTotal)
	}
	if err := c.Shed.Validate(); err != nil {
		return err
	}
	if c.Shed.Enabled && len(c.Classes) < 2 {
		return fmt.Errorf("core: load shedding requires at least two traffic classes, have %d", len(c.Classes))
	}
	if c.ResumeGuard < 0 {
		return fmt.Errorf("core: negative ResumeGuard %g", c.ResumeGuard)
	}
	if c.Shards < 0 {
		return fmt.Errorf("core: negative Shards %d", c.Shards)
	}
	if c.Spare > EvenSplit {
		return fmt.Errorf("core: unknown spare discipline %d", uint8(c.Spare))
	}
	if err := c.validateAllocator(); err != nil {
		return err
	}
	if err := c.validateController(); err != nil {
		return err
	}
	if len(c.ServerStorage) > 0 && len(c.ServerStorage) != len(c.ServerBandwidth) {
		return fmt.Errorf("core: %d storage capacities for %d servers", len(c.ServerStorage), len(c.ServerBandwidth))
	}
	if c.Replication.CopyRateCap < 0 {
		return fmt.Errorf("core: negative CopyRateCap %g", c.Replication.CopyRateCap)
	}
	if c.Replication.PerSourceLimit < 0 {
		return fmt.Errorf("core: negative PerSourceLimit %d", c.Replication.PerSourceLimit)
	}
	if c.Intermittent && !c.Workahead {
		return fmt.Errorf("core: intermittent scheduling requires Workahead (it pauses streams against their buffers)")
	}
	if err := c.Retry.Validate(); err != nil {
		return err
	}
	if err := c.Degraded.Validate(); err != nil {
		return err
	}
	if err := c.Interactivity.Validate(); err != nil {
		return err
	}
	if err := c.Patching.Validate(); err != nil {
		return err
	}
	if c.Patching.Enabled && c.Intermittent {
		return fmt.Errorf("core: patching is incompatible with intermittent scheduling (a paused primary starves its taps)")
	}
	if c.Patching.Enabled && c.Interactivity.PauseProb > 0 {
		return fmt.Errorf("core: patching is incompatible with viewer interactivity (a paused primary starves its taps)")
	}
	if err := c.Edge.Validate(); err != nil {
		return err
	}
	if c.Edge.Nodes > 0 && c.Patching.Enabled {
		return fmt.Errorf("core: the edge tier and legacy patching are mutually exclusive (express patching as Edge.Batch=%q)", BatchPatch)
	}
	if c.Edge.Batch != "" && c.Patching.Enabled {
		return fmt.Errorf("core: Edge.Batch %q configured alongside legacy Patching (pick one)", c.Edge.Batch)
	}
	if batch := c.BatchPolicyName(); batch != BatchUnicast {
		if c.Intermittent {
			return fmt.Errorf("core: batch policy %q is incompatible with intermittent scheduling (a paused primary starves its taps)", batch)
		}
		if c.Interactivity.PauseProb > 0 {
			return fmt.Errorf("core: batch policy %q is incompatible with viewer interactivity (a paused primary starves its taps)", batch)
		}
	}
	return c.Migration.Validate()
}

// TotalBandwidth returns the aggregate cluster bandwidth in Mb/s.
func (c Config) TotalBandwidth() float64 {
	t := 0.0
	for _, b := range c.ServerBandwidth {
		t += b
	}
	return t
}

// Slots returns how many concurrent streams server i can carry under
// minimum-flow admission: ⌊bandwidth / ViewRate⌋ (the server-to-view
// bandwidth ratio, SVBR, rounded down).
func (c Config) Slots(i int) int {
	return int(c.ServerBandwidth[i]/c.ViewRate + timeEps)
}
