package core

// The edge/proxy tier (ROADMAP: "Edge/proxy tier with prefix caching
// and multicast batching"). Edge nodes sit between clients and the
// cluster and hold the first PrefixSec seconds of selected videos in a
// bounded byte budget (an internal/edge.CachePolicy per node). An
// arrival lands on one node (deterministic round-robin); when the node
// holds the video's prefix, the client plays the head locally and the
// cluster transmits only the suffix — the request admitted through the
// controller is startOff deep into the object and PrefixMb smaller.
// When the cached prefix covers the whole object the cluster is not
// involved at all.
//
// Modeling choices, documented:
//
//   - The suffix stream starts at admission and its playback clock
//     starts with it, exactly like a whole-object request of the
//     suffix's size. In reality the client finishes the prefix first;
//     starting the suffix's deadline immediately is conservative (the
//     cluster gets less slack, never more), and it keeps every fluid
//     invariant of the minimum-flow model intact.
//   - How prefixes reach the edge nodes (off-peak push, cache fill) is
//     out of band: fill traffic is not cluster egress. The LRU policy
//     models demand-driven content churn, not fill bandwidth.
//   - Prefix bytes are accounted in Metrics.EdgeMb, never in
//     AcceptedBytes/DeliveredBytes, so cluster utilization keeps its
//     paper meaning. Metrics.ClusterEgressMb mirrors DeliveredBytes on
//     edge runs so the egress the tier is supposed to cut is a named,
//     audited quantity.

import (
	"fmt"
	"math"

	"semicont/internal/edge"
)

// EdgeConfig configures the proxy tier. The zero value disables it.
type EdgeConfig struct {
	// Nodes is the number of edge proxy nodes; 0 disables the tier.
	// Arrivals are assigned to nodes round-robin in arrival order.
	Nodes int

	// PrefixSec is the cached prefix length per video, in seconds of
	// playback (clamped to each video's duration). Required when the
	// tier is enabled.
	PrefixSec float64

	// CacheMb is each node's cache byte budget in Mb. Required when
	// the tier is enabled.
	CacheMb float64

	// CachePolicy names the per-node prefix cache policy from the
	// internal/edge registry. Empty selects edge.PolicyStaticZipf.
	CachePolicy string

	// Batch names the stream-batching policy from the batch registry
	// (see RegisterBatchPolicy): how concurrent requests for the same
	// title share cluster streams. Empty resolves to BatchPatch when
	// legacy Patching is enabled and BatchUnicast otherwise.
	Batch string

	// BatchWindow bounds the catch-up a batched joiner may need, in
	// seconds of playback. Required by BatchBatchPrefix; BatchPatch
	// defaults it to the legacy 20 minutes when zero.
	BatchWindow float64
}

// Validate reports configuration errors local to the edge tier.
// Cross-field rules against Patching, Intermittent, and Interactivity
// live in Config.Validate.
func (c EdgeConfig) Validate() error {
	if c.Nodes < 0 {
		return fmt.Errorf("core: negative edge Nodes %d", c.Nodes)
	}
	if c.Nodes > 0 {
		if math.IsNaN(c.PrefixSec) || math.IsInf(c.PrefixSec, 0) || c.PrefixSec <= 0 {
			return fmt.Errorf("core: edge PrefixSec %g must be positive and finite", c.PrefixSec)
		}
		if math.IsNaN(c.CacheMb) || math.IsInf(c.CacheMb, 0) || c.CacheMb <= 0 {
			return fmt.Errorf("core: edge CacheMb %g must be positive and finite", c.CacheMb)
		}
		if c.CachePolicy != "" && !edge.Has(c.CachePolicy) {
			return fmt.Errorf("core: unknown edge cache policy %q (have %v)", c.CachePolicy, edge.Names())
		}
	} else {
		// Set-while-disabled is a configuration contradiction, rejected
		// rather than silently ignored (the ShedConfig convention).
		if c.PrefixSec != 0 {
			return fmt.Errorf("core: edge PrefixSec %g set while the edge tier is disabled", c.PrefixSec)
		}
		if c.CacheMb != 0 {
			return fmt.Errorf("core: edge CacheMb %g set while the edge tier is disabled", c.CacheMb)
		}
		if c.CachePolicy != "" {
			return fmt.Errorf("core: edge CachePolicy %q set while the edge tier is disabled", c.CachePolicy)
		}
	}
	if c.Batch != "" && !HasBatchPolicy(c.Batch) {
		return fmt.Errorf("core: unknown batch policy %q (have %v)", c.Batch, BatchPolicyNames())
	}
	if math.IsNaN(c.BatchWindow) || math.IsInf(c.BatchWindow, 0) || c.BatchWindow < 0 {
		return fmt.Errorf("core: edge BatchWindow %g must be finite and non-negative", c.BatchWindow)
	}
	switch c.Batch {
	case BatchPatch:
		if c.Nodes > 0 {
			return fmt.Errorf("core: batch policy %q grafts onto whole-object streams and cannot run behind the edge tier (use %q)", BatchPatch, BatchBatchPrefix)
		}
	case BatchBatchPrefix:
		if c.Nodes == 0 {
			return fmt.Errorf("core: batch policy %q joins at the edge and requires the edge tier (Nodes > 0)", BatchBatchPrefix)
		}
		if c.BatchWindow <= 0 {
			return fmt.Errorf("core: batch policy %q requires a positive BatchWindow", BatchBatchPrefix)
		}
	case "", BatchUnicast:
		if c.BatchWindow != 0 {
			return fmt.Errorf("core: edge BatchWindow %g set without a sharing batch policy", c.BatchWindow)
		}
	}
	return nil
}

// CachePolicyName returns the effective edge cache-policy name.
func (c EdgeConfig) CachePolicyName() string {
	if c.CachePolicy != "" {
		return c.CachePolicy
	}
	return edge.PolicyStaticZipf
}

// resetEdge (re)builds the per-run edge-tier state: the per-video
// prefix sizes (PrefixSec of playback, clamped to the object) and one
// cache-policy instance per node, reusing instances across Reset when
// the shape is unchanged so pooled engines stay allocation-light.
func (e *Engine) resetEdge() {
	if e.cfg.Edge.Nodes == 0 {
		e.edgeCaches = e.edgeCaches[:0]
		e.edgeRR = 0
		return
	}
	n := e.cat.Len()
	e.edgePrefix = resizeFloats(e.edgePrefix, n)
	pref := e.cfg.Edge.PrefixSec * e.cfg.ViewRate
	for v := 0; v < n; v++ {
		size := e.cat.Video(v).Size
		if pref < size {
			e.edgePrefix[v] = pref
		} else {
			e.edgePrefix[v] = size
		}
	}
	name := e.cfg.Edge.CachePolicyName()
	if len(e.edgeCaches) != e.cfg.Edge.Nodes ||
		(len(e.edgeCaches) > 0 && e.edgeCaches[0].Name() != name) {
		e.edgeCaches = make([]edge.CachePolicy, e.cfg.Edge.Nodes)
		for i := range e.edgeCaches {
			e.edgeCaches[i] = edge.New(name)
		}
	}
	for _, c := range e.edgeCaches {
		c.Reset(e.edgePrefix, e.cfg.Edge.CacheMb)
	}
	e.edgeRR = 0
}

// edgeProbe consults the arrival's edge node and returns the prefix
// volume (Mb) the node serves locally — 0 on a miss or with the tier
// disabled. Node assignment is round-robin in arrival order, which is
// deterministic and allocation-free.
func (e *Engine) edgeProbe(v int) float64 {
	if len(e.edgeCaches) == 0 {
		return 0
	}
	node := e.edgeRR
	e.edgeRR++
	if e.edgeRR == len(e.edgeCaches) {
		e.edgeRR = 0
	}
	if e.edgeCaches[node].Hit(v) {
		return e.edgePrefix[v]
	}
	return 0
}

// edgeFullServe completes a request entirely at the edge: the cached
// prefix covers the whole object, so the cluster is never consulted.
// The request is accepted and completed in one step — it holds no
// server slot, draws no interaction, and never migrates.
func (e *Engine) edgeFullServe(v int, t float64, class int32, size float64) {
	e.metrics.Accepted++
	e.metrics.Completions++
	e.metrics.EdgeHits++
	e.metrics.EdgeMb += size
	if class >= 0 {
		e.metrics.ClassAccepted[class]++
	}
	if e.audit != nil {
		e.auditFail(e.audit.EdgeServe(t, int32(v), size, 0, 0, 0, size, false))
	}
}
