package core

import (
	"testing"
	"testing/quick"

	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// buildKitchenSink assembles an engine with an arbitrary combination of
// every feature the engine supports, driven by a seed. Invariant
// checking is always on; this is the engine's fuzz harness.
func buildKitchenSink(t testing.TB, seed uint64) (*Engine, Config) {
	cfg, cat, lay, mkSrc := kitchenSinkParts(t, seed)
	e, err := NewEngine(cfg, cat, lay, mkSrc())
	if err != nil {
		t.Fatal(err)
	}
	return e, cfg
}

// kitchenSinkParts builds the kitchen-sink scenario without allocating
// the engine, so tests can run the identical scenario on fresh and
// Reset engines. mkSrc returns a fresh, identically seeded arrival
// stream on every call.
func kitchenSinkParts(t testing.TB, seed uint64) (Config, *catalog.Catalog, *placement.Layout, func() ArrivalSource) {
	p := rng.New(rng.DeriveSeed(seed, 0xf0))
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 10 + p.Intn(30),
		MinLength: 200,
		MaxLength: 200 + float64(p.Intn(1000)),
		ViewRate:  3,
		Theta:     p.UniformRange(-1.5, 1),
	}, rng.New(rng.DeriveSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	nServers := 2 + p.Intn(5)
	caps := make([]float64, nServers)
	bws := make([]float64, nServers)
	for i := range caps {
		caps[i] = 1e6
		bws[i] = 20 + float64(p.Intn(60))
	}
	avgCopies := 1.5 + p.Float64()
	if max := float64(nServers); avgCopies > max {
		avgCopies = max
	}
	lay, err := placement.Build(placement.Even{}, cat, avgCopies, caps, rng.New(rng.DeriveSeed(seed, 2)))
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		ServerBandwidth: bws,
		ServerStorage:   caps,
		ViewRate:        3,
		CheckInvariants: true,
	}
	if p.Float64() < 0.7 {
		cfg.Workahead = true
		cfg.BufferCapacity = cat.AvgSize() * p.UniformRange(0.02, 0.5)
		if p.Float64() < 0.5 {
			cfg.ReceiveCap = 30
		}
		if p.Float64() < 0.3 {
			cfg.Intermittent = true
			cfg.ResumeGuard = p.UniformRange(5, 60)
		}
		if p.Float64() < 0.3 {
			cfg.Spare = SpareDiscipline(p.Intn(3))
		}
	}
	if p.Float64() < 0.6 {
		cfg.Migration = MigrationConfig{
			Enabled:  true,
			MaxHops:  []int{UnlimitedHops, 1, 2}[p.Intn(3)],
			MaxChain: 1 + p.Intn(2),
		}
		if cfg.Workahead && p.Float64() < 0.3 {
			cfg.Migration.SwitchDelay = p.UniformRange(0, 10)
		}
	}
	if p.Float64() < 0.5 {
		cfg.Replication = ReplicationConfig{Enabled: true, CopyRateCap: 6}
	}
	if p.Float64() < 0.4 {
		cfg.Interactivity = InteractivityConfig{
			PauseProb: p.UniformRange(0.1, 0.9),
			MinPause:  10,
			MaxPause:  120,
			Seed:      seed,
		}
	}
	if p.Float64() < 0.5 {
		cfg.ClientClasses = []ClientClass{
			{Weight: 2, BufferCapacity: cfg.BufferCapacity, ReceiveCap: cfg.ReceiveCap},
			{Weight: 1, BufferCapacity: 0},
		}
		cfg.ClientSeed = seed
	}

	total := 0.0
	for _, b := range bws {
		total += b
	}
	rate, err := workload.CalibratedRate(cat, total, p.UniformRange(0.6, 1.2))
	if err != nil {
		t.Fatal(err)
	}
	mkSrc := func() ArrivalSource {
		gen, err := workload.New(cat, rate, rng.New(rng.DeriveSeed(seed, 3)))
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}
	return cfg, cat, lay, mkSrc
}

// TestKitchenSinkFuzz runs randomized simulations with every feature
// combination under full invariant checking and verifies the global
// accounting identities that must hold regardless of configuration.
func TestKitchenSinkFuzz(t *testing.T) {
	prop := func(seedRaw uint16, failServer uint8) bool {
		seed := uint64(seedRaw) + 1
		e, cfg := buildKitchenSink(t, seed)
		// Half the runs also kill a server mid-way.
		withFailure := seedRaw%2 == 0
		if withFailure {
			if err := e.ScheduleFailure(1800, int(failServer)%len(cfg.ServerBandwidth)); err != nil {
				return false
			}
		}
		m, err := e.Run(3600)
		if err != nil {
			return false
		}
		if m.Arrivals != m.Accepted+m.Rejected {
			return false
		}
		if m.Completions+m.DroppedStreams != m.Accepted {
			return false
		}
		if m.DeliveredBytes > m.AcceptedBytes+1e-3 {
			return false
		}
		if !withFailure {
			// Without failures every accepted byte is delivered.
			if !approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3) {
				return false
			}
			if m.DroppedStreams != 0 || m.ReplicationsAborted != 0 {
				return false
			}
		}
		if !cfg.Intermittent && m.GlitchedStreams != 0 {
			return false
		}
		if !cfg.Migration.Enabled && m.Migrations != 0 {
			return false
		}
		if !cfg.Replication.Enabled && m.ReplicationsStarted != 0 {
			return false
		}
		if m.ReplicationsCompleted > m.ReplicationsStarted {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKitchenSinkDeterminism re-runs full-feature configurations and
// demands bit-identical metrics.
func TestKitchenSinkDeterminism(t *testing.T) {
	for seed := uint64(100); seed < 106; seed++ {
		a, _ := buildKitchenSink(t, seed)
		b, _ := buildKitchenSink(t, seed)
		ma, err := a.Run(3600)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.Run(3600)
		if err != nil {
			t.Fatal(err)
		}
		if *ma != *mb {
			t.Errorf("seed %d: metrics diverged:\n%+v\n%+v", seed, *ma, *mb)
		}
	}
}
