package core

// Intermittent scheduling (Section 3.3). The paper restricts itself to
// minimum-flow algorithms because "the decision procedure for the
// optimal intermittent algorithm is impractical to apply in real time";
// this file implements the natural heuristic member of the intermittent
// class so the restriction can be evaluated quantitatively:
//
//   - a stream whose client buffer holds more than ResumeGuard seconds
//     of playback may be paused (rate 0) while the client plays from
//     its buffer;
//   - bandwidth goes to streams in ascending-buffer order (the most
//     urgent first), so paused streams resume as they drain;
//   - admission only requires the *urgent* streams (buffer below the
//     guard) to fit in the minimum-flow slots, so a server can carry
//     more streams than ⌊B/b_view⌋.
//
// The heuristic is not safe: urgent streams can outnumber slots later
// (paused streams drain concurrently while nothing finishes), in which
// case some stream's buffer runs dry mid-play. The engine counts those
// streams in Metrics.GlitchedStreams — the ablation experiment shows
// the acceptance gain intermittent scheduling buys and the glitches it
// costs, which is the paper's justification for minimum-flow.

// intermittentAllocator assigns bandwidth in ascending-buffer order:
// urgent streams first, then the rest while bandwidth lasts; leftover
// streams are paused. Spare bandwidth still stages ahead under the
// configured workahead discipline.
type intermittentAllocator struct{}

func init() {
	RegisterAllocator(AllocIntermittent, func() BandwidthAllocator { return intermittentAllocator{} })
}

func (intermittentAllocator) Name() string { return AllocIntermittent }

func (intermittentAllocator) Allocate(e *Engine, s *server, t float64) float64 {
	e.allocateIntermittent(s, t)
	return s.wakeAt(t)
}

// allocateIntermittent runs the heuristic on server s at time t.
// Requests must be synced to t. Like minFlowRates it opens the wake
// round and writes every slot's key at the rate decision: suspension
// deadlines in the gather, the resume-guard key for every slot the
// feed leaves at rate zero (a paused-full viewer's buffer still drains
// once it resumes, so it gets the same guard key), and wakeKeyServing
// for the slots it serves.
func (e *Engine) allocateIntermittent(s *server, t float64) {
	bview := e.cfg.ViewRate
	ln := &s.ln
	e.cand.Reset(false)
	ln.beginRound()
	for i := range ln.rate {
		if s.suspendedAt(i, t) {
			ln.rate[i] = 0
			ln.setWake(int32(i), ln.susp[i])
			continue
		}
		r := s.active[i]
		// A negative raw buffer means playback outpaced delivery at some
		// point since the last allocation: the client stalled. Record
		// the glitch on first sight (the raw buffer stays negative until
		// the stream receives more than b_view again, so the first
		// allocation after the underflow always observes it).
		if !r.glitched && ln.sent[i]-r.viewedAt(t, bview) < -dataEps {
			r.glitched = true
			e.metrics.GlitchedStreams++
			// The catch-up deficit at detection: how far playback ran
			// ahead of delivery, in seconds of viewing.
			e.observe(ObsGlitch, (r.viewedAt(t, bview)-ln.sent[i])/bview)
		}
		e.cand.Add(s.bufferOf(i, t, bview), r.id, int32(i))
	}
	avail := s.bandwidth
	if e.audit != nil {
		avail = e.intermittentAudited(s, t, avail)
	} else {
		// Ascending-buffer feed via heap selection. Once the bandwidth
		// no longer covers a full b_view slot, nothing downstream can
		// consume any (paused-full streams never do), so every remaining
		// stream pauses — an order-free operation handled off-heap.
		e.cand.Init()
		for e.cand.Len() > 0 {
			ent := e.cand.Pop()
			i := ent.Pos
			if e.pausedFullAt(s, int(i), t) {
				ln.rate[i] = 0
				ln.setWake(i, e.wakeKeyPaused(ent.Key, t))
				continue
			}
			if avail >= bview-dataEps {
				ln.rate[i] = bview
				avail -= bview
				ln.setWake(i, e.wakeKeyServing(s, s.active[i], int(i), t))
				continue
			}
			e.pauseIntermittent(s, i, ent.Key, t)
			for _, rest := range e.cand.Rest() {
				if e.pausedFullAt(s, int(rest.Pos), t) {
					ln.rate[rest.Pos] = 0
					ln.setWake(rest.Pos, e.wakeKeyPaused(rest.Key, t))
					continue
				}
				e.pauseIntermittent(s, rest.Pos, rest.Key, t)
			}
			break
		}
	}
	avail = e.allocateCopies(s, t, avail)
	if avail > dataEps {
		e.spreadSpare(s, t, avail)
	}
}

// pauseIntermittent pauses slot i, which the feed could not serve. buf
// is the slot's buffer level at time t (its gather key). A stream
// paused with a dry buffer cannot keep playing: the heuristic has
// over-admitted, so the glitch is recorded once.
func (e *Engine) pauseIntermittent(s *server, i int32, buf, t float64) {
	s.ln.rate[i] = 0
	s.ln.setWake(i, e.wakeKeyPaused(buf, t))
	r := s.active[i]
	if !r.glitched && buf <= dataEps && !s.finishedAt(int(i)) {
		r.glitched = true
		e.metrics.GlitchedStreams++
		// The pause itself is the detection point: the buffer just hit
		// empty, so the deficit observed here is zero.
		e.observe(ObsGlitch, 0)
	}
}

// intermittentAudited is the instrumented feed: the IntermittentOrder
// tap reports every stream's grant in ascending-buffer order, which
// requires the full sort the hot path avoids. It returns the bandwidth
// left for copies and staging.
func (e *Engine) intermittentAudited(s *server, t float64, avail float64) float64 {
	bview := e.cfg.ViewRate
	ln := &s.ln
	grants := e.intermitGrantBuf[:0]
	for _, ent := range e.cand.Sort() {
		i := ent.Pos
		pausedFull := e.pausedFullAt(s, int(i), t)
		switch {
		case pausedFull:
			ln.rate[i] = 0
			ln.setWake(i, e.wakeKeyPaused(ent.Key, t))
		case avail >= bview-dataEps:
			ln.rate[i] = bview
			avail -= bview
			ln.setWake(i, e.wakeKeyServing(s, s.active[i], int(i), t))
		default:
			e.pauseIntermittent(s, i, ent.Key, t)
		}
		grants = append(grants, IntermittentGrant{
			Request: ent.ID, Buffer: ent.Key,
			Rate: ln.rate[i], PausedFull: pausedFull,
		})
	}
	e.intermitGrantBuf = grants
	e.auditFail(e.audit.IntermittentOrder(t, s.id, grants))
	return avail
}

// canAccept is the admission test for one server: minimum-flow slot
// availability normally, urgent-stream availability in intermittent
// mode. Intermittent mode reads buffers, so s must be synced to t.
func (e *Engine) canAccept(s *server, t float64) bool {
	if s.failed {
		return false
	}
	if !e.cfg.Intermittent {
		return s.hasSlot()
	}
	return e.urgentCount(s, t)+1 <= s.slots
}

// urgentCount returns the number of streams on s that must be
// transmitting: unfinished, not suspended, with less than ResumeGuard
// seconds of playback buffered.
func (e *Engine) urgentCount(s *server, t float64) int {
	guard := e.resumeGuard() * e.cfg.ViewRate
	n := 0
	for i, r := range s.active {
		if s.suspendedAt(i, t) || s.finishedAt(i) || r.pausedView {
			// Paused viewers consume nothing until they resume.
			continue
		}
		if s.bufferOf(i, t, e.cfg.ViewRate) < guard {
			n++
		}
	}
	return n
}

// resumeGuard returns the configured guard with its 30 s default.
func (e *Engine) resumeGuard() float64 {
	if e.cfg.ResumeGuard > 0 {
		return e.cfg.ResumeGuard
	}
	return 30
}
