package core

// Intermittent scheduling (Section 3.3). The paper restricts itself to
// minimum-flow algorithms because "the decision procedure for the
// optimal intermittent algorithm is impractical to apply in real time";
// this file implements the natural heuristic member of the intermittent
// class so the restriction can be evaluated quantitatively:
//
//   - a stream whose client buffer holds more than ResumeGuard seconds
//     of playback may be paused (rate 0) while the client plays from
//     its buffer;
//   - bandwidth goes to streams in ascending-buffer order (the most
//     urgent first), so paused streams resume as they drain;
//   - admission only requires the *urgent* streams (buffer below the
//     guard) to fit in the minimum-flow slots, so a server can carry
//     more streams than ⌊B/b_view⌋.
//
// The heuristic is not safe: urgent streams can outnumber slots later
// (paused streams drain concurrently while nothing finishes), in which
// case some stream's buffer runs dry mid-play. The engine counts those
// streams in Metrics.GlitchedStreams — the ablation experiment shows
// the acceptance gain intermittent scheduling buys and the glitches it
// costs, which is the paper's justification for minimum-flow.

// intermittentAllocator assigns bandwidth in ascending-buffer order:
// urgent streams first, then the rest while bandwidth lasts; leftover
// streams are paused. Spare bandwidth still stages ahead under the
// configured workahead discipline.
type intermittentAllocator struct{}

func init() {
	RegisterAllocator(AllocIntermittent, func() BandwidthAllocator { return intermittentAllocator{} })
}

func (intermittentAllocator) Name() string { return AllocIntermittent }

func (intermittentAllocator) Allocate(e *Engine, s *server, t float64) float64 {
	e.allocateIntermittent(s, t)
	return e.nextWake(s, t)
}

// allocateIntermittent runs the heuristic on server s at time t.
// Requests must be synced to t.
func (e *Engine) allocateIntermittent(s *server, t float64) {
	bview := e.cfg.ViewRate
	e.cand.Reset(false)
	for i, r := range s.active {
		if r.suspended(t) {
			r.rate = 0
			continue
		}
		// A negative raw buffer means playback outpaced delivery at some
		// point since the last allocation: the client stalled. Record
		// the glitch on first sight (the raw buffer stays negative until
		// the stream receives more than b_view again, so the first
		// allocation after the underflow always observes it).
		if !r.glitched && r.sent-r.viewedAt(t, bview) < -dataEps {
			r.glitched = true
			e.metrics.GlitchedStreams++
			// The catch-up deficit at detection: how far playback ran
			// ahead of delivery, in seconds of viewing.
			e.observe(ObsGlitch, (r.viewedAt(t, bview)-r.sent)/bview)
		}
		e.cand.Add(r.bufferAt(t, bview), r.id, int32(i))
	}
	avail := s.bandwidth
	if e.audit != nil {
		avail = e.intermittentAudited(s, t, avail)
	} else {
		// Ascending-buffer feed via heap selection. Once the bandwidth
		// no longer covers a full b_view slot, nothing downstream can
		// consume any (paused-full streams never do), so every remaining
		// stream pauses — an order-free operation handled off-heap.
		e.cand.Init()
		for e.cand.Len() > 0 {
			ent := e.cand.Pop()
			r := s.active[ent.Pos]
			if e.pausedAndFull(r, t) {
				r.rate = 0
				continue
			}
			if avail >= bview-dataEps {
				r.rate = bview
				avail -= bview
				continue
			}
			e.pauseIntermittent(r, ent.Key)
			for _, rest := range e.cand.Rest() {
				rr := s.active[rest.Pos]
				if e.pausedAndFull(rr, t) {
					rr.rate = 0
					continue
				}
				e.pauseIntermittent(rr, rest.Key)
			}
			break
		}
	}
	avail = e.allocateCopies(s, avail)
	if avail > dataEps {
		e.spreadSpare(s, t, avail)
	}
}

// pauseIntermittent pauses a stream the feed could not serve. buf is
// the stream's buffer level at the current time. A stream paused with a
// dry buffer cannot keep playing: the heuristic has over-admitted, so
// the glitch is recorded once.
func (e *Engine) pauseIntermittent(r *request, buf float64) {
	r.rate = 0
	if !r.glitched && buf <= dataEps && !r.finished() {
		r.glitched = true
		e.metrics.GlitchedStreams++
		// The pause itself is the detection point: the buffer just hit
		// empty, so the deficit observed here is zero.
		e.observe(ObsGlitch, 0)
	}
}

// intermittentAudited is the instrumented feed: the IntermittentOrder
// tap reports every stream's grant in ascending-buffer order, which
// requires the full sort the hot path avoids. It returns the bandwidth
// left for copies and staging.
func (e *Engine) intermittentAudited(s *server, t float64, avail float64) float64 {
	bview := e.cfg.ViewRate
	grants := e.intermitGrantBuf[:0]
	for _, ent := range e.cand.Sort() {
		r := s.active[ent.Pos]
		pausedFull := e.pausedAndFull(r, t)
		switch {
		case pausedFull:
			r.rate = 0
		case avail >= bview-dataEps:
			r.rate = bview
			avail -= bview
		default:
			e.pauseIntermittent(r, ent.Key)
		}
		grants = append(grants, IntermittentGrant{
			Request: r.id, Buffer: ent.Key,
			Rate: r.rate, PausedFull: pausedFull,
		})
	}
	e.intermitGrantBuf = grants
	e.auditFail(e.audit.IntermittentOrder(t, s.id, grants))
	return avail
}

// canAccept is the admission test for one server: minimum-flow slot
// availability normally, urgent-stream availability in intermittent
// mode. Intermittent mode reads buffers, so s must be synced to t.
func (e *Engine) canAccept(s *server, t float64) bool {
	if s.failed {
		return false
	}
	if !e.cfg.Intermittent {
		return s.hasSlot()
	}
	return e.urgentCount(s, t)+1 <= s.slots
}

// urgentCount returns the number of streams on s that must be
// transmitting: unfinished, not suspended, with less than ResumeGuard
// seconds of playback buffered.
func (e *Engine) urgentCount(s *server, t float64) int {
	guard := e.resumeGuard() * e.cfg.ViewRate
	n := 0
	for _, r := range s.active {
		if r.suspended(t) || r.finished() || r.pausedView {
			// Paused viewers consume nothing until they resume.
			continue
		}
		if r.bufferAt(t, e.cfg.ViewRate) < guard {
			n++
		}
	}
	return n
}

// resumeGuard returns the configured guard with its 30 s default.
func (e *Engine) resumeGuard() float64 {
	if e.cfg.ResumeGuard > 0 {
		return e.cfg.ResumeGuard
	}
	return 30
}
