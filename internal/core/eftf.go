package core

import (
	"math"
	"sort"
)

// allocate recomputes the bandwidth allocation of server s at time t,
// implementing the paper's EARLIESTFINISHTIMEFIRST procedure (Figure 2):
//
//  1. every unfinished, non-suspended request receives the view
//     bandwidth b_view (the minimum-flow guarantee), then
//  2. while spare bandwidth remains, the request with the earliest
//     projected finishing time whose client buffer is not full receives
//     as much additional bandwidth as its client can absorb
//     (min(spare, b_receive − b_r)).
//
// The projected finishing time at t is t + remaining/b_view for every
// request, so "earliest projected finish" is exactly "smallest remaining
// volume" — the comparison the implementation uses.
//
// All requests in s.active must be synced to t before calling. The
// theorem in Section 3.3 shows this rule is optimal among minimum-flow
// algorithms when client receive bandwidth is unbounded; with a receive
// cap it remains the paper's (empirically near-optimal) policy.
//
// In intermittent mode (Config.Intermittent) step 1 is relaxed: see
// allocateIntermittent.
func (e *Engine) allocate(s *server, t float64) {
	if e.cfg.Intermittent {
		e.allocateIntermittent(s, t)
		return
	}
	avail := s.bandwidth
	bview := e.cfg.ViewRate
	for _, r := range s.active {
		if r.suspended(t) || e.pausedAndFull(r, t) {
			// Mid-switch streams receive nothing; a paused viewer with
			// a full buffer has nowhere to put data, so the minimum-flow
			// guarantee is moot until it resumes (an evResume event
			// triggers reallocation).
			r.rate = 0
			continue
		}
		r.rate = bview
		avail -= bview
	}
	avail = e.allocateCopies(s, avail)
	if !e.cfg.Workahead || avail <= dataEps {
		return
	}
	e.spreadSpare(s, t, avail)
}

// allocateCopies feeds replica transfers from the spare bandwidth left
// after the minimum-flow guarantee and ahead of client staging: fixing
// placement is the more durable use of the spare. Each job is capped so
// replication cannot monopolize the workahead benefit.
func (e *Engine) allocateCopies(s *server, avail float64) float64 {
	if len(s.copies) == 0 {
		return avail
	}
	rateCap := e.copyRateCap()
	for _, c := range s.copies {
		r := rateCap
		if r > avail {
			r = avail
		}
		if r < 0 {
			r = 0
		}
		c.rate = r
		avail -= r
		if avail <= dataEps {
			avail = 0
			rateCap = 0
		}
	}
	return avail
}

// pausedAndFull reports whether r's viewer has paused with no buffer
// room left: transmission must stop or the client buffer would
// overflow (with no staging buffer at all, any pause stops the flow).
func (e *Engine) pausedAndFull(r *request, t float64) bool {
	return r.pausedView && r.bufferAt(t, e.cfg.ViewRate) >= r.bufCap-dataEps
}

// spreadSpare hands spare bandwidth to staging candidates in EFTF order.
// Requests must be synced to t and already hold their minimum rates.
func (e *Engine) spreadSpare(s *server, t float64, avail float64) {
	bview := e.cfg.ViewRate
	// Gather staging candidates: unfinished (always true for active
	// requests), not suspended, transmitting, buffer not full.
	cand := e.candBuf[:0]
	for _, r := range s.active {
		if r.suspended(t) || r.rate <= 0 {
			continue
		}
		// Streams feeding multicast taps cannot run ahead (the shared
		// receivers' buffers bound the sender), and patch streams share
		// their client's buffer with the tapped remainder, so both stay
		// at exactly b_view.
		if r.taps > 0 || r.isPatch {
			continue
		}
		if r.bufCap > 0 && r.bufferAt(t, bview) < r.bufCap-dataEps {
			cand = append(cand, r)
		}
	}
	if len(cand) == 0 {
		e.candBuf = cand
		return
	}
	switch e.cfg.Spare {
	case EvenSplit:
		// Water-filling: divide spare equally, redistributing what
		// saturated clients cannot absorb.
		remaining := cand
		for avail > dataEps && len(remaining) > 0 {
			share := avail / float64(len(remaining))
			next := remaining[:0]
			for _, r := range remaining {
				headroom := math.Inf(1)
				if r.recvCap > 0 {
					headroom = r.recvCap - r.rate
				}
				extra := share
				if extra >= headroom {
					extra = headroom
				} else {
					next = append(next, r) // can absorb more next round
				}
				if extra > 0 {
					r.rate += extra
					avail -= extra
				}
			}
			if len(next) == len(remaining) {
				break // everyone took a full share; spare exhausted
			}
			remaining = next
		}
		e.candBuf = cand
		return
	case LFTF:
		// Latest projected finish first: the adversarial opposite.
		sort.Slice(cand, func(i, j int) bool {
			ri, rj := cand[i].remaining(), cand[j].remaining()
			if ri != rj {
				return ri > rj
			}
			return cand[i].id < cand[j].id
		})
	default:
		// EFTF: earliest projected finish first; ties broken by
		// request id for determinism.
		sort.Slice(cand, func(i, j int) bool {
			ri, rj := cand[i].remaining(), cand[j].remaining()
			if ri != rj {
				if e.spareMisorder {
					return ri > rj // test-only sabotage (DebugForceSpareMisorder)
				}
				return ri < rj
			}
			return cand[i].id < cand[j].id
		})
	}
	auditing := e.audit != nil
	grants := e.spareGrantBuf[:0]
	for _, r := range cand {
		var extra float64
		if avail > dataEps {
			headroom := math.Inf(1)
			if r.recvCap > 0 {
				headroom = r.recvCap - r.rate
			}
			extra = headroom
			if extra > avail {
				extra = avail
			}
			if extra < 0 {
				extra = 0 // this client is saturated; try the next
			}
		}
		if auditing {
			grants = append(grants, SpareGrant{
				Request: r.id, Remaining: r.remaining(),
				RateBefore: r.rate, Extra: extra, RecvCap: r.recvCap,
			})
		}
		if extra > 0 {
			r.rate += extra
			avail -= extra
		}
	}
	if auditing {
		e.spareGrantBuf = grants
		e.auditFail(e.audit.SpareOrder(t, s.id, e.cfg.Spare, grants))
	}
	e.candBuf = cand
}

// nextWake returns the earliest future instant at which server s's
// allocation must be recomputed absent external events: a transmission
// finishing, a client buffer filling, a suspended stream resuming, or —
// in intermittent mode — a paused stream draining to its resume guard.
// Returns +Inf when the server is idle.
func (e *Engine) nextWake(s *server, t float64) float64 {
	next := math.Inf(1)
	bview := e.cfg.ViewRate
	for _, r := range s.active {
		if r.suspended(t) {
			if r.suspendedUntil < next {
				next = r.suspendedUntil
			}
			continue
		}
		if r.rate <= 0 {
			// Paused by the intermittent scheduler: its buffer drains
			// at b_view; it must be reconsidered when it reaches the
			// resume guard (and certainly before it empties).
			if e.cfg.Intermittent {
				guard := e.resumeGuard() * bview
				lead := r.bufferAt(t, bview) - guard
				// lead ≤ 0 means the stream is already urgent; the
				// allocation that just ran made its decision, and only
				// another event (a finish, an arrival) can change it —
				// scheduling a wake "now" would spin.
				if lead > timeEps {
					if tb := t + lead/bview; tb < next {
						next = tb
					}
				}
			}
			continue
		}
		if tf := t + r.remaining()/r.rate; tf < next {
			next = tf
		}
		if fill := r.rate - r.drainRate(bview); fill > dataEps && r.bufCap >= 0 {
			// Buffer fills at rate − drain (drain is zero while the
			// viewer has paused).
			room := r.bufCap - r.bufferAt(t, bview)
			if room < 0 {
				room = 0
			}
			if tb := t + room/fill; tb < next {
				next = tb
			}
		}
	}
	for _, c := range s.copies {
		if c.rate > 0 {
			if tc := t + (c.size-c.sent)/c.rate; tc < next {
				next = tc
			}
		}
	}
	if next < t {
		next = t // guard against float noise scheduling into the past
	}
	return next
}

// reschedule recomputes s's allocation at time t and replaces its
// pending wake event. Requests must be synced to t first.
func (e *Engine) reschedule(s *server, t float64) {
	e.allocate(s, t)
	s.version++
	if next := e.nextWake(s, t); !math.IsInf(next, 1) {
		e.events.Push(next, event{kind: evServerWake, server: s.id, version: s.version})
	}
}
