package core

// eftfAllocator implements the paper's EARLIESTFINISHTIMEFIRST
// procedure (Figure 2):
//
//  1. every unfinished, non-suspended request receives the view
//     bandwidth b_view (the minimum-flow guarantee), then
//  2. while spare bandwidth remains, the request with the earliest
//     projected finishing time whose client buffer is not full receives
//     as much additional bandwidth as its client can absorb
//     (min(spare, b_receive − b_r)).
//
// The projected finishing time at t is t + remaining/b_view for every
// request, so "earliest projected finish" is exactly "smallest
// remaining volume" — the comparison the implementation uses.
//
// The theorem in Section 3.3 shows this rule is optimal among
// minimum-flow algorithms when client receive bandwidth is unbounded;
// with a receive cap it remains the paper's (empirically near-optimal)
// policy.
type eftfAllocator struct{}

func init() {
	RegisterAllocator(AllocMinFlowEFTF, func() BandwidthAllocator { return eftfAllocator{} })
}

func (eftfAllocator) Name() string { return AllocMinFlowEFTF }

func (eftfAllocator) Allocate(e *Engine, s *server, t float64) float64 {
	avail := e.minFlowRates(s, t)
	avail = e.allocateCopies(s, t, avail)
	if e.cfg.Workahead && avail > dataEps {
		e.feedSpareOrdered(s, t, avail, e.spareMisorder)
	}
	return s.wakeAt(t)
}
