package core

// Built-in admission selectors. Each is registered under the name its
// Name method returns; leastLoadedSelector reproduces the pre-seam
// admission rule bit-for-bit (the golden-equivalence fixtures pin it).

import "semicont/internal/rng"

func init() {
	RegisterSelector(SelectorLeastLoaded, func() ServerSelector { return leastLoadedSelector{} })
	RegisterSelector(SelectorFirstFit, func() ServerSelector { return firstFitSelector{} })
	RegisterSelector(SelectorMostHeadroom, func() ServerSelector { return mostHeadroomSelector{} })
	RegisterSelector(SelectorRandomFeasible, func() ServerSelector { return &randomFeasibleSelector{} })
}

// leastLoadedSelector picks the feasible holder with the fewest
// unfinished streams; ties resolve to the earliest holder in replica
// order (the strict < keeps the original tie-break).
type leastLoadedSelector struct{}

func (leastLoadedSelector) Name() string { return SelectorLeastLoaded }

func (leastLoadedSelector) Select(e *Engine, v int, t float64) *server {
	var best *server
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if e.cfg.Intermittent {
			s.syncAll(t) // the admission test reads buffer levels
		}
		if e.canAccept(s, t) && (best == nil || s.load() < best.load()) {
			best = s
		}
	}
	return best
}

// firstFitSelector picks the first feasible holder in replica order.
type firstFitSelector struct{}

func (firstFitSelector) Name() string { return SelectorFirstFit }

func (firstFitSelector) Select(e *Engine, v int, t float64) *server {
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if e.cfg.Intermittent {
			s.syncAll(t)
		}
		if e.canAccept(s, t) {
			return s
		}
	}
	return nil
}

// mostHeadroomSelector picks the feasible holder with the most
// uncommitted bandwidth: capacity minus b_view per unfinished stream.
// The commitment (not the instantaneous Σ rates, which depends on each
// server's last sync time) keeps the choice deterministic. Ties resolve
// to the earliest holder.
type mostHeadroomSelector struct{}

func (mostHeadroomSelector) Name() string { return SelectorMostHeadroom }

func (mostHeadroomSelector) Select(e *Engine, v int, t float64) *server {
	var best *server
	bestRoom := 0.0
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if e.cfg.Intermittent {
			s.syncAll(t)
		}
		if !e.canAccept(s, t) {
			continue
		}
		room := s.bandwidth - float64(s.load())*e.cfg.ViewRate
		if best == nil || room > bestRoom {
			best, bestRoom = s, room
		}
	}
	return best
}

// randomFeasibleSelector picks uniformly at random among the feasible
// holders. Its stream is split off Config.SelectorSeed on first use, so
// equal seeds draw the same selection sequence regardless of trial
// fan-out; the candidate slice is per-engine scratch reused across
// events to keep the admission path allocation-free in steady state.
type randomFeasibleSelector struct {
	rng  *rng.PCG
	feas []*server
}

func (*randomFeasibleSelector) Name() string { return SelectorRandomFeasible }

func (sel *randomFeasibleSelector) Select(e *Engine, v int, t float64) *server {
	if sel.rng == nil {
		sel.rng = rng.New(rng.DeriveSeed(e.cfg.SelectorSeed, 0x73656c65)) // "sele"
	}
	sel.feas = sel.feas[:0]
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if e.cfg.Intermittent {
			s.syncAll(t)
		}
		if e.canAccept(s, t) {
			sel.feas = append(sel.feas, s)
		}
	}
	if len(sel.feas) == 0 {
		return nil
	}
	return sel.feas[sel.rng.Intn(len(sel.feas))]
}
