package core

// evenSplitAllocator divides spare bandwidth equally among all staging
// candidates regardless of progress (water-filling): the order-free
// ablation of the EFTF theorem's scheduling rule.
type evenSplitAllocator struct{}

func init() {
	RegisterAllocator(AllocMinFlowEvenSplit, func() BandwidthAllocator { return evenSplitAllocator{} })
}

func (evenSplitAllocator) Name() string { return AllocMinFlowEvenSplit }

func (evenSplitAllocator) Allocate(e *Engine, s *server, t float64) float64 {
	avail := e.minFlowRates(s, t)
	avail = e.allocateCopies(s, t, avail)
	if e.cfg.Workahead && avail > dataEps {
		e.feedSpareEven(s, t, avail)
	}
	return s.wakeAt(t)
}
