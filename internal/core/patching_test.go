package core

import (
	"testing"

	"semicont/internal/workload"
)

func TestPatchingValidation(t *testing.T) {
	if err := (PatchingConfig{Window: -1}).Validate(); err == nil {
		t.Error("negative window accepted")
	}
	base := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, BufferCapacity: 600,
		Patching: PatchingConfig{Enabled: true},
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid patching config rejected: %v", err)
	}
	bad := base
	bad.Intermittent = true
	if err := bad.Validate(); err == nil {
		t.Error("patching + intermittent accepted")
	}
	bad = base
	bad.Interactivity = InteractivityConfig{PauseProb: 0.5, MinPause: 10, MaxPause: 20}
	if err := bad.Validate(); err == nil {
		t.Error("patching + interactivity accepted")
	}
}

// patchScenario: one 2-slot server holding a 1200 s video; the second
// request arrives 100 s into the first stream.
func patchScenario(t *testing.T, window, bufCap float64, arrivals []workload.Request) (*Engine, *finishObserver) {
	t.Helper()
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Workahead:       bufCap > 0,
		BufferCapacity:  bufCap,
		// Pin transmissions to b_view so prefixes equal elapsed
		// playback and the arithmetic below stays exact.
		ReceiveCap: 3,
		Patching:   PatchingConfig{Enabled: true, Window: window},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, arrivals)
	e.SetObserver(obs)
	return e, obs
}

func TestPatchJoinBasics(t *testing.T) {
	e, obs := patchScenario(t, 600, 600, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 100, Video: 0}, // taps the first stream; 300 Mb patch
	})
	m := run(t, e, 4000)
	if m.Accepted != 2 || m.PatchedJoins != 1 {
		t.Fatalf("accepted=%d joins=%d", m.Accepted, m.PatchedJoins)
	}
	// The patch is the 300 Mb prefix; the shared stream carries the
	// remaining 3300 Mb for free.
	if !approx(m.AcceptedBytes, 3600+300, 1e-6) {
		t.Errorf("AcceptedBytes = %v, want 3900 (full + patch)", m.AcceptedBytes)
	}
	if !approx(m.SharedMb, 3300, 1e-6) {
		t.Errorf("SharedMb = %v, want 3300", m.SharedMb)
	}
	// The patch finishes after 100 s (300 Mb at b_view), exactly when
	// the joiner's playback reaches the tap point.
	if got := obs.finishes[2]; !approx(got, 200, 1e-6) {
		t.Errorf("patch finished at %v, want 200", got)
	}
	if m.Completions != 2 {
		t.Errorf("completions = %d", m.Completions)
	}
}

func TestPatchFreesSlotEarly(t *testing.T) {
	// 2-slot server: primary + patch fill it at t=100. The patch ends
	// at t=200, so a third (unrelated-in-time) request at t=300 fits —
	// without patching the second stream would hold its slot for 1200 s
	// and the third request would be rejected.
	arrivals := []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 100, Video: 0},
		{Arrival: 300, Video: 0},
	}
	e, _ := patchScenario(t, 600, 600, arrivals)
	m := run(t, e, 5000)
	if m.Accepted != 3 || m.Rejected != 0 {
		t.Fatalf("patching: accepted=%d rejected=%d, want 3/0", m.Accepted, m.Rejected)
	}
	// The t=300 arrival cannot tap the t=0 stream (900 Mb prefix
	// exceeds the 600 Mb client buffer) and patches are not tappable,
	// so it takes the slot the finished patch freed at t=200.
	if m.PatchedJoins != 1 {
		t.Errorf("joins = %d, want 1 (third request exceeds its buffer)", m.PatchedJoins)
	}

	// Without patching: the third arrival finds both slots held.
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3}
	e2 := newTestEngine(t, cfg, cat, [][]int{{0}}, arrivals)
	m = run(t, e2, 5000)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("no patching: accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
}

func TestPatchWindowBoundsJoin(t *testing.T) {
	// Window 60 s (180 Mb): an arrival 100 s in cannot tap.
	e, _ := patchScenario(t, 60, 600, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 100, Video: 0},
	})
	m := run(t, e, 4000)
	if m.PatchedJoins != 0 {
		t.Errorf("joins = %d, want 0 (outside the window)", m.PatchedJoins)
	}
	if m.Accepted != 2 {
		t.Errorf("accepted = %d (normal slot admission should cover it)", m.Accepted)
	}
}

func TestPatchBufferBoundsJoin(t *testing.T) {
	// Buffer 150 Mb < the 300 Mb prefix: no tap.
	e, _ := patchScenario(t, 600, 150, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 100, Video: 0},
	})
	m := run(t, e, 4000)
	if m.PatchedJoins != 0 {
		t.Errorf("joins = %d, want 0 (prefix exceeds client buffer)", m.PatchedJoins)
	}
}

func TestTappedPrimaryPinned(t *testing.T) {
	// A tapped primary must not receive workahead extra (its rate is
	// pinned to b_view for the multicast receivers) and must not
	// migrate.
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{12, 3},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  1e6,
		ReceiveCap:      0,
		Patching:        PatchingConfig{Enabled: true, Window: 1200},
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}, {0}}, []workload.Request{
		{Arrival: 0, Video: 0},  // runs at 12 Mb/s (workahead) until tapped
		{Arrival: 30, Video: 0}, // taps it: 360 Mb prefix, well within buffer
	})
	if err := e.Start(4000); err != nil {
		t.Fatal(err)
	}
	// Exactly two events: the two arrivals (the join happens inside the
	// second). Stop there to inspect the pinned allocation.
	for i := 0; i < 2; i++ {
		if !e.Step() {
			t.Fatal("engine ran dry early")
		}
	}
	reqs := e.Requests()
	if len(reqs) != 2 {
		t.Fatalf("%d in-flight requests, want primary + patch", len(reqs))
	}
	for _, r := range reqs {
		if r.ID == 1 && r.Rate > 3+dataEps {
			t.Errorf("tapped primary rate = %v, want pinned at b_view", r.Rate)
		}
	}
	for e.Step() {
	}
	m := e.Metrics()
	if m.PatchedJoins != 1 {
		t.Fatalf("joins = %d", m.PatchedJoins)
	}
	if m.Completions != 2 || !approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3) {
		t.Errorf("completions=%d delivered=%v accepted=%v", m.Completions, m.DeliveredBytes, m.AcceptedBytes)
	}
}

func TestPatchJoinPrefersSmallestPrefix(t *testing.T) {
	// Two tappable primaries at different progress: the joiner taps the
	// younger one (smaller patch).
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{12},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  1e6,
		ReceiveCap:      3, // pin everyone to b_view for clean arithmetic
		Patching:        PatchingConfig{Enabled: true, Window: 1200},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 200, Video: 0}, // taps stream 1: 600 Mb patch
		{Arrival: 300, Video: 0}, // patches are not tappable → taps stream 1 too: 900 Mb patch
	})
	e.SetObserver(obs)
	m := run(t, e, 5000)
	if m.PatchedJoins != 2 {
		t.Fatalf("joins = %d, want 2", m.PatchedJoins)
	}
	if got := obs.finishes[2]; !approx(got, 400, 1e-6) {
		t.Errorf("first patch finished at %v, want 400", got)
	}
	if got := obs.finishes[3]; !approx(got, 600, 1e-6) {
		t.Errorf("second patch finished at %v, want 600", got)
	}
}

func TestPatchingDisabledByDefault(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 100, Video: 0},
	})
	m := run(t, e, 4000)
	if m.PatchedJoins != 0 || m.SharedMb != 0 {
		t.Errorf("patching activity without Patching.Enabled: %+v", m)
	}
}
