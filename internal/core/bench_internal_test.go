package core

import (
	"testing"

	"semicont/internal/simtime"
)

// Micro-benchmarks of the simulator's hot paths.

func BenchmarkEventQueue(b *testing.B) {
	var q simtime.Queue[event]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Steady-state churn: push two, pop one, like a busy server.
		t := float64(i)
		q.Push(t+1, event{kind: evServerWake, server: 0, version: uint64(i)})
		q.Push(t+2, event{kind: evArrival})
		q.Pop()
	}
}

func BenchmarkEFTFAllocate(b *testing.B) {
	cfg := Config{
		ServerBandwidth: []float64{300}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 3300,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(300, 3)
	// A nearly full server: 90 of 100 slots busy, mixed progress.
	for i := 0; i < 90; i++ {
		r := &request{
			id: int64(i), size: 16200, sent: float64(i * 137 % 16000), last: 0,
			bufCap: cfg.BufferCapacity, recvCap: cfg.ReceiveCap,
		}
		s.attach(r)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.allocate(s, 0)
	}
}

func BenchmarkEFTFAllocateSaturated(b *testing.B) {
	// The common case under 100% offered load: zero spare bandwidth, so
	// the candidate sort must be skipped entirely.
	cfg := Config{
		ServerBandwidth: []float64{300}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 3300,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(300, 3)
	for i := 0; i < 100; i++ {
		r := &request{
			id: int64(i), size: 16200, sent: float64(i * 137 % 16000), last: 0,
			bufCap: cfg.BufferCapacity, recvCap: cfg.ReceiveCap,
		}
		s.attach(r)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.allocate(s, 0)
	}
}

func BenchmarkNextWake(b *testing.B) {
	cfg := Config{
		ServerBandwidth: []float64{300}, ViewRate: 3,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 3300,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(300, 3)
	for i := 0; i < 90; i++ {
		r := &request{
			id: int64(i), size: 16200, sent: float64(i * 137 % 16000), last: 0,
			bufCap: cfg.BufferCapacity, recvCap: cfg.ReceiveCap,
		}
		s.attach(r)
	}
	e.allocate(s, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.nextWake(s, 0)
	}
}
