package core

import (
	"fmt"
	"testing"

	"semicont/internal/simtime"
)

// Micro-benchmarks of the simulator's hot paths. The allocator benches
// are parameterized over the per-server active count k; BENCH_alloc.json
// at the repo root holds the pre-refactor baseline these numbers are
// compared against (see DESIGN.md, "Architecture layers").

// benchKs are the per-server active counts the allocator benches sweep.
var benchKs = []int{16, 256, 4096}

// benchEngine builds a bare engine and one server carrying k active
// requests with mixed progress. spareFrac of the minimum-flow demand is
// left over as spare bandwidth, so the workahead spreader has work to
// do but only feeds a small prefix of the candidates (the production
// shape: a busy server with a sliver of spare).
func benchEngine(k int, spareFrac float64, intermittent bool) (*Engine, *server) {
	bview := 3.0
	bw := bview * float64(k) * (1 + spareFrac)
	cfg := Config{
		ServerBandwidth: []float64{bw}, ViewRate: bview,
		Workahead: true, ReceiveCap: 30, BufferCapacity: 20000,
		Intermittent: intermittent,
	}
	e := &Engine{cfg: cfg}
	benchBindAllocator(e)
	s := mkServer(bw, bview)
	for i := 0; i < k; i++ {
		r := &request{
			id: int64(i + 1), size: 16200, carrySent: float64(i*137%16000) + 1,
			bufCap: cfg.BufferCapacity, recvCap: cfg.ReceiveCap,
		}
		s.attach(r)
	}
	return e, s
}

func BenchmarkEventQueue(b *testing.B) {
	var q simtime.Queue[event]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Steady-state churn: push two, pop one, like a busy server.
		t := float64(i)
		q.Push(t+1, event{kind: evServerWake, server: 0, version: uint64(i)})
		q.Push(t+2, event{kind: evArrival})
		q.Pop()
	}
}

// BenchmarkAllocate measures one full allocation pass of the min-flow +
// EFTF policy, including the next-wake computation that every
// reschedule performs.
func BenchmarkAllocate(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchAllocateWake(e, s)
			}
		})
	}
}

// BenchmarkAllocateSaturated is the common case under 100% offered
// load: zero spare bandwidth, so the candidate machinery must be
// skipped entirely.
func BenchmarkAllocateSaturated(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchAllocateWake(e, s)
			}
		})
	}
}

// BenchmarkSpreadSpare isolates the workahead spreader: rates are reset
// to the minimum flow each iteration, then the spare is spread in EFTF
// order (plus the fused next-wake pass after the refactor).
func BenchmarkSpreadSpare(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, false)
			spare := s.bandwidth - 3*float64(k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range s.ln.rate {
					s.ln.rate[j] = 3
				}
				benchSpreadSpare(e, s, spare)
			}
		})
	}
}

// BenchmarkNextWake measures the production next-wake query against the
// incremental wake index, with the worst case forced every iteration: the
// index is marked dirty so the query pays a full lazy repair (a
// compare-only rescan of the stored keys). The common case — wakeMin
// still valid — is a two-field read and benches at the measurement
// floor, so the repair path is the honest number.
func BenchmarkNextWake(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, false)
			benchAllocateWake(e, s)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.ln.wakeDirty = true
				s.wakeAt(0)
			}
		})
	}
}

// BenchmarkNextWakeScan measures the from-scratch reference scan
// (recomputing every wake key from live rates), the pre-refactor cost
// every reschedule used to pay.
func BenchmarkNextWakeScan(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, false)
			benchAllocateWake(e, s)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.nextWake(s, 0)
			}
		})
	}
}

// BenchmarkIntermittent measures one intermittent allocation pass
// (ascending-buffer feed, then EFTF spread of the leftovers) including
// the next-wake computation. The server is over-subscribed by ~10% so
// the pause branch is exercised.
func BenchmarkIntermittent(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, true)
			s.bandwidth = 3 * float64(k) * 0.9 // over-subscribed
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchAllocateWake(e, s)
			}
		})
	}
}
