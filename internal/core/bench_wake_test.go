package core

import (
	"fmt"
	"testing"
)

// Wake-index and fluid-sync micro-benchmarks. BENCH_wake.json at the
// repo root records the before/after numbers for the data-plane
// refactor (stored wake keys + SoA hot fields); these benches are the
// "after" side and the smoke CI runs them at one iteration.

// BenchmarkSyncAll measures advancing one server's fluid state: every
// active request's (sent, last) pair moves forward under its settled
// rate. This is the per-event pass that runs before any allocation.
func BenchmarkSyncAll(b *testing.B) {
	for _, k := range benchKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e, s := benchEngine(k, 0.1, false)
			benchAllocateWake(e, s)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.syncAll(float64(i+1) * 1e-3)
			}
		})
	}
}
