package core

import "fmt"

// Patching (Gao & Towsley; Sen et al. — cited by the paper's related
// work, and "patching … stream merging" is listed as future work in
// Section 6). A client arriving shortly after another request for the
// same video *taps* that ongoing transmission (a multicast join, free
// of server bandwidth) and receives only the part it missed — the
// prefix the primary has already sent — as a short unicast "patch".
// The tapper buffers the shared stream while it plays the patch, so
// patching needs exactly the client staging disk this paper
// introduces: the join is legal only if the missed prefix fits in the
// client's buffer.
//
// Model, in this simulator's fluid terms:
//
//   - any unfinished non-patch stream can serve as a primary; joining
//     pins its rate to b_view (a multicast sender cannot run ahead of
//     its slowest receiver's buffer), which minimum-flow provides;
//   - the joiner is admitted on the primary's server as a unicast
//     request of size primary.sent (the missed prefix), provided the
//     prefix fits both the patch window and the client buffer;
//   - the shared remainder costs no server bandwidth and is accounted
//     in Metrics.SharedMb; the patch occupies a slot only until it
//     completes (sent/b_view seconds), which is the whole benefit.
//
// Simplifications, documented: streams involved in patching do not
// migrate (the multicast tree is pinned), and patching is mutually
// exclusive with viewer interactivity and intermittent scheduling
// (both can stall a primary mid-stream, which would starve its taps).

// PatchingConfig controls multicast patching.
type PatchingConfig struct {
	// Enabled turns patching on.
	Enabled bool

	// Window bounds the prefix a joiner may catch up on, in seconds of
	// playback (0 means 20 minutes). Joins are also bounded by the
	// joining client's buffer capacity.
	Window float64
}

// Validate reports configuration errors.
func (p PatchingConfig) Validate() error {
	if p.Window < 0 {
		return fmt.Errorf("core: negative patch window %g", p.Window)
	}
	return nil
}

// patchWindow returns the configured window with its default. The
// legacy Patching.Window takes precedence; runs selecting the policy
// through Edge.Batch="patch" configure the window as Edge.BatchWindow.
func (e *Engine) patchWindow() float64 {
	if w := e.cfg.Patching.Window; w > 0 {
		return w
	}
	if w := e.cfg.Edge.BatchWindow; w > 0 {
		return w
	}
	return 1200
}

// tryPatchJoin attempts to admit the arrival for video v by tapping an
// ongoing transmission. bufCap is the joining client's staging buffer.
// On success it returns the created patch request's server. Callers
// gate on policy: this runs only when the resolved batch policy is
// "patch" (legacy Patching.Enabled or Edge.Batch="patch").
func (e *Engine) tryPatchJoin(v int, t float64, bufCap, recvCap float64) (*server, bool) {
	maxPrefix := e.patchWindow() * e.cfg.ViewRate
	if bufCap < maxPrefix {
		maxPrefix = bufCap
	}
	if maxPrefix <= 0 {
		return nil, false
	}
	// Find the cheapest tappable primary: smallest missed prefix wins.
	var primary *request
	var primarySent float64
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if s.failed {
			continue
		}
		synced := false
		for i, r := range s.active {
			if int(r.video) != v || r.isPatch || s.suspendedAt(i, t) {
				continue
			}
			if !synced {
				s.syncAll(t)
				synced = true
			}
			sent := s.ln.sent[i]
			if s.finishedAt(i) || sent > maxPrefix+dataEps {
				continue
			}
			// The primary's server must also have a slot for the patch.
			if !e.canAccept(s, t) {
				continue
			}
			if primary == nil || sent < primarySent ||
				(sent == primarySent && r.id < primary.id) {
				primary, primarySent = r, sent
			}
		}
	}
	if primary == nil {
		return nil, false
	}
	s := e.servers[primary.server]
	s.syncAll(t)

	prefix := primarySent
	if prefix < dataEps {
		prefix = dataEps // a pure join still needs a (vanishing) patch
	}
	joiner := e.newRequest(v, t)
	joiner.size = prefix
	joiner.isPatch = true
	joiner.bufCap, joiner.recvCap = bufCap, recvCap
	s.attach(joiner)
	primary.taps++

	full := e.cat.Video(v).Size
	e.metrics.Accepted++
	e.metrics.PatchedJoins++
	e.metrics.AcceptedBytes += prefix
	e.metrics.SharedMb += full - prefix
	if e.obs != nil {
		e.obs.OnAdmit(t, joiner.id, v, int(s.id), false)
	}
	e.reschedule(s, t)
	return s, true
}
