package core

import (
	"testing"

	"semicont/internal/workload"
)

func TestInteractivityValidation(t *testing.T) {
	cases := []struct {
		cfg InteractivityConfig
		ok  bool
	}{
		{InteractivityConfig{}, true},
		{InteractivityConfig{PauseProb: 0.5, MinPause: 10, MaxPause: 60}, true},
		{InteractivityConfig{PauseProb: -0.1}, false},
		{InteractivityConfig{PauseProb: 1.5}, false},
		{InteractivityConfig{PauseProb: 0.5}, false},                             // no durations
		{InteractivityConfig{PauseProb: 0.5, MinPause: 60, MaxPause: 10}, false}, // inverted
	}
	for i, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: err=%v, want ok=%v", i, err, tc.ok)
		}
	}
}

// pauseEngine runs a single stream with a deterministic pause injected
// via the event queue (PauseProb=1 covers the random path elsewhere).
func TestPauseExtendsBufferAndStopsDrain(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200) // 3600 Mb
	cfg := Config{
		ServerBandwidth: []float64{30},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  600,
		ReceiveCap:      30,
		Interactivity:   InteractivityConfig{PauseProb: 1, MinPause: 100, MaxPause: 100},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
	e.SetObserver(obs)
	m := run(t, e, 4000)
	if m.Accepted != 1 || m.Completions != 1 {
		t.Fatalf("accepted=%d completions=%d", m.Accepted, m.Completions)
	}
	if m.ViewerPauses != 1 {
		t.Errorf("ViewerPauses = %d, want 1", m.ViewerPauses)
	}
	// Conservation still holds.
	if !approx(m.DeliveredBytes, 3600, 1e-6) {
		t.Errorf("delivered %v", m.DeliveredBytes)
	}
}

func TestPauseWithoutBufferStopsTransmission(t *testing.T) {
	// No staging buffer: when the viewer pauses, the client can store
	// nothing, so the server must stop sending — the stream finishes a
	// pause-duration later than it otherwise would.
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{30},
		ViewRate:        3,
		// no workahead, no buffer
		Interactivity: InteractivityConfig{PauseProb: 1, MinPause: 200, MaxPause: 200},
	}
	obs := newFinishObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
	e.SetObserver(obs)
	m := run(t, e, 5000)
	if m.ViewerPauses != 1 {
		t.Fatalf("ViewerPauses = %d", m.ViewerPauses)
	}
	// Finish = 1200 s of transmission + the 200 s stall.
	if got := obs.finishes[1]; !approx(got, 1400, 1e-6) {
		t.Errorf("finish at %v, want 1400", got)
	}
	if m.Completions != 1 {
		t.Errorf("completions = %d", m.Completions)
	}
}

func TestPauseNeverAcceleratesTransmission(t *testing.T) {
	// Total transmittable data by time T is viewed(T) + bufCap; a pause
	// freezes viewed, so transmission completion can only move later
	// (by exactly the pause duration when the buffer is pinned at
	// capacity around the pause, as here: the buffer fills at t≈22 and
	// every legal pause point lies after t=60).
	finishWith := func(interact InteractivityConfig) float64 {
		cat := fixedCatalog(t, 1, 1200)
		cfg := Config{
			ServerBandwidth: []float64{30},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  600,
			ReceiveCap:      30,
			Interactivity:   interact,
		}
		obs := newFinishObserver()
		e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
		e.SetObserver(obs)
		run(t, e, 5000)
		return obs.finishes[1]
	}
	plain := finishWith(InteractivityConfig{})
	if !approx(plain, 1000, 1e-6) {
		t.Fatalf("plain finish = %v, want 1000 (22.2 s fill + 2934 Mb at b_view)", plain)
	}
	paused := finishWith(InteractivityConfig{PauseProb: 1, MinPause: 300, MaxPause: 300})
	if paused < plain-1e-6 {
		t.Fatalf("pause accelerated transmission: %v < %v", paused, plain)
	}
	// Either the draw paused after the transmission finished (no shift)
	// or mid-transmission (shift by the full 300 s, since the buffer is
	// capped for the whole window).
	if !approx(paused, plain, 1e-6) && !approx(paused, plain+300, 1e-6) {
		t.Errorf("paused finish = %v, want %v or %v", paused, plain, plain+300)
	}
}

func TestPauseAfterTransmissionCompleteIsMoot(t *testing.T) {
	// A fast transmission finishes long before the viewer's pause
	// point; the pause event must be ignored gracefully.
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{100},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  1e9,
		ReceiveCap:      0, // finish at t=36, pause lands mid-playback later
		Interactivity:   InteractivityConfig{PauseProb: 1, MinPause: 50, MaxPause: 50},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{{Arrival: 0, Video: 0}})
	m := run(t, e, 5000)
	if m.Completions != 1 {
		t.Fatalf("completions = %d", m.Completions)
	}
	// The pause might race the 36 s finish only for pause points below
	// 9% of playback; with the fixed seed either outcome is legal, but
	// the run must stay consistent (invariants checked throughout).
	if m.ViewerPauses > 1 {
		t.Errorf("ViewerPauses = %d", m.ViewerPauses)
	}
}

func TestInteractivityDeterministic(t *testing.T) {
	build := func() *Metrics {
		cat := fixedCatalog(t, 2, 900)
		cfg := Config{
			ServerBandwidth: []float64{30, 30},
			ViewRate:        3,
			Workahead:       true,
			BufferCapacity:  540,
			ReceiveCap:      30,
			Interactivity:   InteractivityConfig{PauseProb: 0.5, MinPause: 30, MaxPause: 300, Seed: 5},
		}
		reqs := make([]workload.Request, 0, 40)
		for i := 0; i < 40; i++ {
			reqs = append(reqs, workload.Request{Arrival: float64(i * 25), Video: i % 2})
		}
		e := newTestEngine(t, cfg, cat, [][]int{{0, 1}, {0, 1}}, reqs)
		return run(t, e, 4000)
	}
	a, b := build(), build()
	if *a != *b {
		t.Errorf("interactive runs with equal seeds diverged")
	}
	if a.ViewerPauses == 0 {
		t.Error("no pauses occurred at PauseProb=0.5 over 40 streams")
	}
}

func TestPausedViewerNotUrgent(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{30}, ViewRate: 3,
		Workahead: true, BufferCapacity: 1e6, Intermittent: true,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	r := addReq(e, s, 1, 3600, 0, 0, 0) // empty buffer: urgent...
	if got := e.urgentCount(s, 0); got != 1 {
		t.Fatalf("urgentCount = %d, want 1", got)
	}
	r.pausedView = true // ...unless the viewer has paused
	if got := e.urgentCount(s, 0); got != 0 {
		t.Errorf("urgentCount = %d, want 0 for a paused viewer", got)
	}
}

func TestViewedAtWhilePaused(t *testing.T) {
	r := &request{size: 3600, start: 0, viewSyncT: 0}
	const bview = 3.0
	if got := r.viewedAt(100, bview); !approx(got, 300, 1e-9) {
		t.Fatalf("viewedAt(100) = %v", got)
	}
	r.pauseViewing(100, bview)
	if got := r.viewedAt(500, bview); !approx(got, 300, 1e-9) {
		t.Errorf("viewedAt while paused = %v, want frozen 300", got)
	}
	r.resumeViewing(500)
	if got := r.viewedAt(600, bview); !approx(got, 600, 1e-9) {
		t.Errorf("viewedAt after resume = %v, want 600", got)
	}
	if r.drainRate(bview) != bview {
		t.Errorf("drainRate after resume = %v", r.drainRate(bview))
	}
}
