package core

import (
	"math"
	"testing"

	"semicont/internal/workload"
)

// failScenario: two servers with two slots each; video 0 replicated on
// both, video 1 only on server 1 (so server 1 carries streams that can
// be rescued to server 0 only via video 0).
func TestFailureDropsWithoutDRM(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6, 6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1
		{Arrival: 2, Video: 0}, // → server 0
		{Arrival: 3, Video: 0}, // → server 1
	})
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Failures != 1 {
		t.Fatalf("Failures = %d", m.Failures)
	}
	if m.RescuedStreams != 0 || m.DroppedStreams != 2 {
		t.Fatalf("rescued=%d dropped=%d, want 0/2 without DRM", m.RescuedStreams, m.DroppedStreams)
	}
	// Dropped streams (arrived t=1 and t=3, killed at t=100) deliver
	// only 99 s and 97 s of data at 3 Mb/s; survivors deliver in full.
	wantDelivered := 2*3600.0 + 297 + 291
	if !approx(m.DeliveredBytes, wantDelivered, 1e-6) {
		t.Errorf("DeliveredBytes = %v, want %v", m.DeliveredBytes, wantDelivered)
	}
	if m.Completions != 2 {
		t.Errorf("Completions = %d, want 2", m.Completions)
	}
}

func TestFailureRescuesWithDRM(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{12, 6}, // server 0 has room for rescues
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	obs := newMigrateObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0 (tie, lower id)
		{Arrival: 1, Video: 0}, // → server 1
		{Arrival: 2, Video: 0}, // → server 1? no: loads 1,1 tie → 0
		{Arrival: 3, Video: 0}, // → server 1
	})
	e.SetObserver(obs)
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 2 || m.DroppedStreams != 0 {
		t.Fatalf("rescued=%d dropped=%d, want 2/0", m.RescuedStreams, m.DroppedStreams)
	}
	// Rescues appear as migrations flagged rescue=true.
	rescues := 0
	for _, mv := range obs.moves {
		if mv.rescue && mv.from == 1 && mv.to == 0 {
			rescues++
		}
	}
	if rescues != 2 {
		t.Errorf("observer saw %d rescue moves, want 2", rescues)
	}
	// Everything completes in full.
	if m.Completions != 4 || !approx(m.DeliveredBytes, 4*3600, 1e-6) {
		t.Errorf("completions=%d delivered=%v", m.Completions, m.DeliveredBytes)
	}
}

func TestFailureRescueWaivesHopsBudget(t *testing.T) {
	// MaxHops=0 forbids admission-time migration entirely, but a stream
	// on a dying server is still rescued.
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 0, MaxChain: 1},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1
	})
	if err := e.ScheduleFailure(50, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 1 || m.DroppedStreams != 0 {
		t.Fatalf("rescued=%d dropped=%d, want 1/0 (rescue ignores hops budget)", m.RescuedStreams, m.DroppedStreams)
	}
}

func TestFailedServerRejectsNewArrivals(t *testing.T) {
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{ServerBandwidth: []float64{6, 6}, ViewRate: 3}
	// Video 1 only on server 1.
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 200, Video: 1}, // after the failure: nowhere to go
		{Arrival: 201, Video: 0}, // server 0 alive: accepted
	})
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1", m.Accepted, m.Rejected)
	}
}

// TestScheduleFaultValidation pins the scheduling preconditions: per
// server, failures and recoveries must alternate (starting up) in
// non-decreasing, finite, non-negative time order, on a server that
// exists. Each case replays a schedule and expects the last call to
// fail (or the whole sequence to succeed).
func TestScheduleFaultValidation(t *testing.T) {
	type step struct {
		recover bool
		t       float64
		id      int
	}
	inf := math.Inf(1)
	cases := []struct {
		name  string
		steps []step
		ok    bool
	}{
		{"fail then recover", []step{{false, 50, 0}, {true, 60, 0}}, true},
		{"two servers interleaved", []step{{false, 50, 0}, {false, 55, 1}, {true, 60, 0}, {true, 61, 1}}, true},
		{"fail recover fail again", []step{{false, 50, 0}, {true, 60, 0}, {false, 70, 0}}, true},
		{"same-time fail and recover", []step{{false, 50, 0}, {true, 50, 0}}, true},
		{"duplicate failure", []step{{false, 50, 0}, {false, 60, 0}}, false},
		{"recovery without failure", []step{{true, 50, 0}}, false},
		{"double recovery", []step{{false, 50, 0}, {true, 60, 0}, {true, 70, 0}}, false},
		{"recovery before failure time", []step{{false, 50, 0}, {true, 40, 0}}, false},
		{"failure before prior recovery", []step{{false, 50, 0}, {true, 60, 0}, {false, 55, 0}}, false},
		{"negative failure id", []step{{false, 50, -1}}, false},
		{"failure id out of range", []step{{false, 50, 2}}, false},
		{"recovery id out of range", []step{{true, 50, 7}}, false},
		{"negative failure time", []step{{false, -1, 0}}, false},
		{"nan failure time", []step{{false, math.NaN(), 0}}, false},
		{"inf failure time", []step{{false, inf, 0}}, false},
		{"nan recovery time", []step{{false, 50, 0}, {true, math.NaN(), 0}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat := fixedCatalog(t, 1, 1200)
			cfg := Config{ServerBandwidth: []float64{6, 6}, ViewRate: 3}
			e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, nil)
			var err error
			for i, st := range tc.steps {
				if st.recover {
					err = e.ScheduleRecovery(st.t, st.id, false)
				} else {
					err = e.ScheduleFailure(st.t, st.id)
				}
				if err != nil && i < len(tc.steps)-1 {
					t.Fatalf("step %d failed early: %v", i, err)
				}
			}
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("schedule accepted, want error")
			}
		})
	}
}

func TestRescuedStreamKeepsPlaying(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	obs := newMigrateObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1, rescued at t=100
	})
	e.SetObserver(obs)
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 1 {
		t.Fatalf("rescued=%d", m.RescuedStreams)
	}
	// The rescued stream finishes at its original deadline, 1201.
	if got := obs.finishes[2]; !approx(got, 1201, 1e-6) {
		t.Errorf("rescued stream finished at %v, want 1201", got)
	}
	if m.Completions != 2 {
		t.Errorf("completions = %d", m.Completions)
	}
}
