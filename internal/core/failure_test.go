package core

import (
	"testing"

	"semicont/internal/workload"
)

// failScenario: two servers with two slots each; video 0 replicated on
// both, video 1 only on server 1 (so server 1 carries streams that can
// be rescued to server 0 only via video 0).
func TestFailureDropsWithoutDRM(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6, 6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1
		{Arrival: 2, Video: 0}, // → server 0
		{Arrival: 3, Video: 0}, // → server 1
	})
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Failures != 1 {
		t.Fatalf("Failures = %d", m.Failures)
	}
	if m.RescuedStreams != 0 || m.DroppedStreams != 2 {
		t.Fatalf("rescued=%d dropped=%d, want 0/2 without DRM", m.RescuedStreams, m.DroppedStreams)
	}
	// Dropped streams (arrived t=1 and t=3, killed at t=100) deliver
	// only 99 s and 97 s of data at 3 Mb/s; survivors deliver in full.
	wantDelivered := 2*3600.0 + 297 + 291
	if !approx(m.DeliveredBytes, wantDelivered, 1e-6) {
		t.Errorf("DeliveredBytes = %v, want %v", m.DeliveredBytes, wantDelivered)
	}
	if m.Completions != 2 {
		t.Errorf("Completions = %d, want 2", m.Completions)
	}
}

func TestFailureRescuesWithDRM(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{12, 6}, // server 0 has room for rescues
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	obs := newMigrateObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0 (tie, lower id)
		{Arrival: 1, Video: 0}, // → server 1
		{Arrival: 2, Video: 0}, // → server 1? no: loads 1,1 tie → 0
		{Arrival: 3, Video: 0}, // → server 1
	})
	e.SetObserver(obs)
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 2 || m.DroppedStreams != 0 {
		t.Fatalf("rescued=%d dropped=%d, want 2/0", m.RescuedStreams, m.DroppedStreams)
	}
	// Rescues appear as migrations flagged rescue=true.
	rescues := 0
	for _, mv := range obs.moves {
		if mv.rescue && mv.from == 1 && mv.to == 0 {
			rescues++
		}
	}
	if rescues != 2 {
		t.Errorf("observer saw %d rescue moves, want 2", rescues)
	}
	// Everything completes in full.
	if m.Completions != 4 || !approx(m.DeliveredBytes, 4*3600, 1e-6) {
		t.Errorf("completions=%d delivered=%v", m.Completions, m.DeliveredBytes)
	}
}

func TestFailureRescueWaivesHopsBudget(t *testing.T) {
	// MaxHops=0 forbids admission-time migration entirely, but a stream
	// on a dying server is still rescued.
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 0, MaxChain: 1},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1
	})
	if err := e.ScheduleFailure(50, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 1 || m.DroppedStreams != 0 {
		t.Fatalf("rescued=%d dropped=%d, want 1/0 (rescue ignores hops budget)", m.RescuedStreams, m.DroppedStreams)
	}
}

func TestFailedServerRejectsNewArrivals(t *testing.T) {
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{ServerBandwidth: []float64{6, 6}, ViewRate: 3}
	// Video 1 only on server 1.
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 200, Video: 1}, // after the failure: nowhere to go
		{Arrival: 201, Video: 0}, // server 0 alive: accepted
	})
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Accepted != 1 || m.Rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1", m.Accepted, m.Rejected)
	}
}

func TestDoubleFailureEventIdempotent(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{ServerBandwidth: []float64{6}, ViewRate: 3}
	e := newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},
	})
	if err := e.ScheduleFailure(50, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleFailure(60, 0); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.Failures != 1 {
		t.Errorf("Failures = %d, want 1 (second event is a no-op)", m.Failures)
	}
	if m.DroppedStreams != 1 {
		t.Errorf("DroppedStreams = %d, want 1", m.DroppedStreams)
	}
}

func TestRescuedStreamKeepsPlaying(t *testing.T) {
	cat := fixedCatalog(t, 1, 1200)
	cfg := Config{
		ServerBandwidth: []float64{6, 6},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	obs := newMigrateObserver()
	e := newTestEngine(t, cfg, cat, [][]int{{0, 1}}, []workload.Request{
		{Arrival: 0, Video: 0}, // → server 0
		{Arrival: 1, Video: 0}, // → server 1, rescued at t=100
	})
	e.SetObserver(obs)
	if err := e.ScheduleFailure(100, 1); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 2000)
	if m.RescuedStreams != 1 {
		t.Fatalf("rescued=%d", m.RescuedStreams)
	}
	// The rescued stream finishes at its original deadline, 1201.
	if got := obs.finishes[2]; !approx(got, 1201, 1e-6) {
		t.Errorf("rescued stream finished at %v, want 1201", got)
	}
	if m.Completions != 2 {
		t.Errorf("completions = %d", m.Completions)
	}
}
