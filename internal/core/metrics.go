package core

// Metrics accumulates the quantities the paper reports plus supporting
// counters for validation and the extension experiments.
type Metrics struct {
	Arrivals int64 // requests offered
	Accepted int64 // requests admitted
	Rejected int64 // requests turned away

	// AcceptedBytes is the sum of the sizes of all accepted
	// transmissions in Mb — the numerator of the paper's utilization
	// metric ("we sum the size of all transmissions", Section 4.1).
	AcceptedBytes float64

	// DeliveredBytes is the volume actually transmitted, accumulated as
	// requests finish or are dropped. When a run drains completely and
	// no failures occur it equals AcceptedBytes; tests use this as a
	// conservation check.
	DeliveredBytes float64

	Completions int64 // transmissions fully delivered

	// Migration accounting.
	Migrations                int64 // individual request moves (incl. rescues)
	AdmissionsViaDRM          int64 // arrivals admitted only thanks to migration
	ChainLengthTotal          int64 // Σ chain lengths over DRM admissions
	MaxChainUsed              int   // longest chain actually executed
	MigrationsRefusedByBuffer int64 // candidate moves vetoed by SwitchDelay buffer check

	// GlitchedStreams counts streams whose playback buffer ran dry
	// while paused by the intermittent scheduler (always zero under
	// minimum-flow scheduling, whose admission rule guarantees
	// continuous playback).
	GlitchedStreams int64

	// ViewerPauses counts interactivity pause events applied to live
	// transmissions.
	ViewerPauses int64

	// Patching accounting: PatchedJoins counts requests served by
	// tapping an ongoing transmission; SharedMb is the data those
	// clients received over the shared stream (delivered without
	// consuming server bandwidth; not part of AcceptedBytes).
	PatchedJoins int64
	SharedMb     float64

	// Edge-tier accounting (all exactly zero when Edge.Nodes == 0).
	// EdgeHits counts requests whose video prefix was served from an
	// edge cache (including full-cache serves and batched joins);
	// BatchedJoins counts the subset served by joining an ongoing
	// suffix stream under the batch-prefix policy. EdgeMb is the
	// volume the edge tier delivered (cached prefixes plus relayed
	// catch-ups; never part of AcceptedBytes or DeliveredBytes).
	// ClusterEgressMb mirrors DeliveredBytes bit-for-bit on edge runs
	// so the quantity the tier is built to cut is named and audited.
	EdgeHits        int64
	BatchedJoins    int64
	EdgeMb          float64
	ClusterEgressMb float64

	// Replication accounting.
	ReplicationsStarted   int64   // copy jobs begun
	ReplicationsCompleted int64   // replicas installed
	ReplicationsAborted   int64   // copies cancelled by failures
	ReplicationsDeferred  int64   // copy starts skipped (in-flight dup, no source, or no target); the next rejection retries
	ReplicatedMb          float64 // replica bytes moved

	// Failure accounting.
	Failures       int64 // server failure events
	RescuedStreams int64 // streams migrated off a failing server
	DroppedStreams int64 // streams lost because no rescue target existed

	// Recovery accounting.
	Recoveries     int64 // servers rejoining the cluster
	ColdRecoveries int64 // recoveries with storage wiped (replicas lost)

	// Admission retry-queue accounting. Every queued request either
	// gets admitted eventually or reneges, so
	// RetriesQueued == RetriedAdmissions + Reneged once a run drains.
	RetriesQueued     int64 // rejected arrivals parked in the retry queue
	RetriedAdmissions int64 // queued requests admitted on a later attempt
	Reneged           int64 // queued requests whose patience expired

	// Degraded-mode playback accounting. A parking episode ends in a
	// readmission or a buffer-dry glitch, so
	// DegradedParked == DegradedResumed + DegradedGlitches after drain.
	DegradedParked   int64 // streams parked at failure, playing from buffer
	DegradedResumed  int64 // parked streams readmitted to a server
	DegradedGlitches int64 // parked streams whose buffer ran dry (dropped)

	// Brownout accounting: every brownout is eventually restored, so
	// Brownouts == BrownoutRestores once the schedule drains (a run may
	// end with a restore still pending past the horizon).
	Brownouts        int64 // servers dimmed to a fraction of capacity
	BrownoutRestores int64 // servers returned to full capacity

	// Overload-shedding accounting. SheddingActivated counts the shed
	// controller's normal→shedding transitions; the per-class arrays
	// below (indexed by Config.Classes, all-zero on classless runs) are
	// fixed-size so Metrics stays comparable. Per class,
	// ClassArrivals == ClassAccepted + ClassRejected + ClassReneged
	// after drain, and ClassShed ⊆ ClassRejected counts the rejections
	// the shed controller made up front.
	SheddingActivated int64
	ClassArrivals     [MaxTrafficClasses]int64
	ClassAccepted     [MaxTrafficClasses]int64
	ClassRejected     [MaxTrafficClasses]int64
	ClassReneged      [MaxTrafficClasses]int64
	ClassShed         [MaxTrafficClasses]int64
}

// Utilization returns delivered load as a fraction of cluster capacity
// over the horizon: Σ accepted sizes / (total bandwidth × horizon).
func (m *Metrics) Utilization(totalBandwidth, horizon float64) float64 {
	if totalBandwidth <= 0 || horizon <= 0 {
		return 0
	}
	return m.AcceptedBytes / (totalBandwidth * horizon)
}

// RejectionRatio returns the fraction of arrivals rejected.
func (m *Metrics) RejectionRatio() float64 {
	if m.Arrivals == 0 {
		return 0
	}
	return float64(m.Rejected) / float64(m.Arrivals)
}

// Observer receives engine lifecycle notifications; internal/trace
// implements it to record event logs. All methods are called with the
// simulation time first. Implementations must not retain pointers into
// the engine.
type Observer interface {
	OnAdmit(t float64, reqID int64, video, server int, viaMigration bool)
	OnReject(t float64, video int)
	OnMigrate(t float64, reqID int64, video, from, to int, rescue bool)
	OnFinish(t float64, reqID int64, video, server int)
	// OnFailure reports a server failure: rescued streams migrated away,
	// dropped streams were lost, parked streams entered degraded-mode
	// playback from their client buffers.
	OnFailure(t float64, server int, rescued, dropped, parked int)
	// OnRecovery reports a failed server rejoining; cold means its
	// storage was wiped and its replicas must be rebuilt.
	OnRecovery(t float64, server int, cold bool)
	// OnReplicate reports a dynamic replica of video installed on
	// server `to`, copied from server `from`.
	OnReplicate(t float64, video, from, to int)
}
