package core

import "math"

// Spare-bandwidth staging shared by the allocation policies: gathering
// the staging candidates of a server into the engine's reusable index,
// then feeding them in the discipline's order.
//
// The hot path never sorts. Feeding spare in (key, id) order only needs
// the fed *prefix* of that order — once the spare is exhausted every
// later candidate's grant is zero and its state untouched — so the
// index heapifies the candidates in O(k) and pops just the prefix.
// Audited runs instead sort the full candidate list (the SpareOrder tap
// reports every would-be grant in feed order); the per-request rates
// are identical either way because Index.Pop yields exactly Sort's
// order, and the grant arithmetic is the same code.

// gatherSpareCandidates fills e.cand with s's staging candidates at
// time t: unfinished (always true for active requests), not suspended,
// transmitting, not pinned by patching, with buffer room left. Each
// entry's key is the request's untransmitted volume — the EFTF/LFTF
// ordering quantity — and its position indexes s.active.
func (e *Engine) gatherSpareCandidates(s *server, t float64, descending bool) {
	bview := e.cfg.ViewRate
	e.cand.Reset(descending)
	for i, r := range s.active {
		if r.suspended(t) || r.rate <= 0 {
			continue
		}
		// Streams feeding multicast taps cannot run ahead (the shared
		// receivers' buffers bound the sender), and patch streams share
		// their client's buffer with the tapped remainder, so both stay
		// at exactly b_view.
		if r.taps > 0 || r.isPatch {
			continue
		}
		if r.bufCap > 0 && r.bufferAt(t, bview) < r.bufCap-dataEps {
			e.cand.Add(r.remaining(), r.id, int32(i))
		}
	}
}

// spareGrantTo computes how much spare a candidate can absorb:
// min(avail, receive headroom), clamped at zero for saturated clients.
func spareGrantTo(r *request, avail float64) float64 {
	headroom := math.Inf(1)
	if r.recvCap > 0 {
		headroom = r.recvCap - r.rate
	}
	extra := headroom
	if extra > avail {
		extra = avail
	}
	if extra < 0 {
		extra = 0 // this client is saturated; try the next
	}
	return extra
}

// spreadSpare hands spare bandwidth to staging candidates under the
// configured discipline. Requests must be synced to t and already hold
// their minimum rates.
func (e *Engine) spreadSpare(s *server, t float64, avail float64) {
	switch e.cfg.Spare {
	case EvenSplit:
		e.feedSpareEven(s, t, avail)
	case LFTF:
		// Latest projected finish first: the adversarial opposite.
		e.feedSpareOrdered(s, t, avail, true)
	default:
		// EFTF: earliest projected finish first; ties broken by request
		// id for determinism. DebugForceSpareMisorder inverts the order
		// (test-only sabotage the auditor must catch).
		e.feedSpareOrdered(s, t, avail, e.spareMisorder)
	}
}

// feedSpareOrdered feeds spare to candidates in ascending (descending
// when inverted) remaining-volume order.
func (e *Engine) feedSpareOrdered(s *server, t float64, avail float64, descending bool) {
	e.gatherSpareCandidates(s, t, descending)
	if e.cand.Len() == 0 {
		return
	}
	if e.audit != nil {
		e.feedSpareAudited(s, t, avail)
		return
	}
	e.cand.Init()
	for avail > dataEps && e.cand.Len() > 0 {
		r := s.active[e.cand.Pop().Pos]
		if extra := spareGrantTo(r, avail); extra > 0 {
			r.rate += extra
			avail -= extra
		}
	}
}

// feedSpareAudited is the instrumented ordered feed: every candidate's
// grant — including the zero grants after the spare runs out — is
// reported to the SpareOrder tap in feed order, which requires the full
// sort the hot path avoids.
func (e *Engine) feedSpareAudited(s *server, t float64, avail float64) {
	grants := e.spareGrantBuf[:0]
	for _, ent := range e.cand.Sort() {
		r := s.active[ent.Pos]
		var extra float64
		if avail > dataEps {
			extra = spareGrantTo(r, avail)
		}
		grants = append(grants, SpareGrant{
			Request: r.id, Remaining: ent.Key,
			RateBefore: r.rate, Extra: extra, RecvCap: r.recvCap,
		})
		if extra > 0 {
			r.rate += extra
			avail -= extra
		}
	}
	e.spareGrantBuf = grants
	e.auditFail(e.audit.SpareOrder(t, s.id, e.cfg.Spare, grants))
}

// feedSpareEven water-fills spare equally across the candidates,
// redistributing what saturated clients cannot absorb. Candidates are
// processed in active order (the discipline is order-free by design and
// emits no feed-order tap).
func (e *Engine) feedSpareEven(s *server, t float64, avail float64) {
	e.gatherSpareCandidates(s, t, false)
	if e.cand.Len() == 0 {
		return
	}
	// All() returns insertion order (nothing has been popped or sorted);
	// the survivor filter works on a separate scratch so it cannot
	// corrupt the index storage.
	remaining := append(e.evenBuf[:0], e.cand.All()...)
	e.evenBuf = remaining
	for avail > dataEps && len(remaining) > 0 {
		share := avail / float64(len(remaining))
		next := remaining[:0]
		for _, ent := range remaining {
			r := s.active[ent.Pos]
			headroom := math.Inf(1)
			if r.recvCap > 0 {
				headroom = r.recvCap - r.rate
			}
			extra := share
			if extra >= headroom {
				extra = headroom
			} else {
				next = append(next, ent) // can absorb more next round
			}
			if extra > 0 {
				r.rate += extra
				avail -= extra
			}
		}
		if len(next) == len(remaining) {
			break // everyone took a full share; spare exhausted
		}
		remaining = next
	}
}

// allocateCopies feeds replica transfers from the spare bandwidth left
// after the minimum-flow guarantee and ahead of client staging: fixing
// placement is the more durable use of the spare. Each job is capped so
// replication cannot monopolize the workahead benefit.
func (e *Engine) allocateCopies(s *server, avail float64) float64 {
	if len(s.copies) == 0 {
		return avail
	}
	rateCap := e.copyRateCap()
	for _, c := range s.copies {
		r := rateCap
		if r > avail {
			r = avail
		}
		if r < 0 {
			r = 0
		}
		c.rate = r
		avail -= r
		if avail <= dataEps {
			avail = 0
			rateCap = 0
		}
	}
	return avail
}

// pausedAndFull reports whether r's viewer has paused with no buffer
// room left: transmission must stop or the client buffer would
// overflow (with no staging buffer at all, any pause stops the flow).
func (e *Engine) pausedAndFull(r *request, t float64) bool {
	return r.pausedView && r.bufferAt(t, e.cfg.ViewRate) >= r.bufCap-dataEps
}
