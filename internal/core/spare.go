package core

import "math"

// Spare-bandwidth staging shared by the allocation policies: gathering
// the staging candidates of a server into the engine's reusable index,
// then feeding them in the discipline's order.
//
// The hot path never sorts. Feeding spare in (key, id) order only needs
// the fed *prefix* of that order — once the spare is exhausted every
// later candidate's grant is zero and its state untouched — so the
// index heapifies the candidates in O(k) and pops just the prefix.
// Audited runs instead sort the full candidate list (the SpareOrder tap
// reports every would-be grant in feed order); the per-request rates
// are identical either way because Index.Pop yields exactly Sort's
// order, and the grant arithmetic is the same code.
//
// Every feed rewrites the wake key of each slot whose rate it raises
// (see wake.go): a raised rate moves both the finish and the
// buffer-full candidate earlier, so the rewrite only lowers the key
// and the lane's running min stays valid.

// gatherSpareCandidates fills e.cand with s's staging candidates at
// time t: unfinished (always true for active requests), not suspended,
// transmitting, not pinned by patching, with buffer room left. Each
// entry's key is the request's untransmitted volume — the EFTF/LFTF
// ordering quantity — and its position indexes s.active.
func (e *Engine) gatherSpareCandidates(s *server, t float64, descending bool) {
	bview := e.cfg.ViewRate
	e.cand.Reset(descending)
	ln := &s.ln
	rateA := ln.rate
	suspA := ln.susp[:len(rateA)]
	sentA := ln.sent[:len(rateA)]
	sizeA := ln.size[:len(rateA)]
	for i := range rateA {
		if suspA[i] > t+timeEps || rateA[i] <= 0 {
			continue
		}
		r := s.active[i]
		// Streams feeding multicast taps cannot run ahead (the shared
		// receivers' buffers bound the sender), and patch streams share
		// their client's buffer with the tapped remainder, so both stay
		// at exactly b_view.
		if r.taps > 0 || r.isPatch {
			continue
		}
		// bufferOf and remainingOf unrolled onto one sent load (and the r
		// chase already paid above); same operations, same clamps.
		sent := sentA[i]
		if r.bufCap > 0 {
			buf := sent - r.viewedAt(t, bview)
			if buf < 0 {
				buf = 0
			}
			if buf < r.bufCap-dataEps {
				rem := sizeA[i] - sent
				if rem < 0 {
					rem = 0
				}
				e.cand.Add(rem, r.id, int32(i))
			}
		}
	}
}

// spareGrantTo computes how much spare a candidate can absorb:
// min(avail, receive headroom), clamped at zero for saturated clients.
func spareGrantTo(rate, recvCap, avail float64) float64 {
	headroom := math.Inf(1)
	if recvCap > 0 {
		headroom = recvCap - rate
	}
	extra := headroom
	if extra > avail {
		extra = avail
	}
	if extra < 0 {
		extra = 0 // this client is saturated; try the next
	}
	return extra
}

// spreadSpare hands spare bandwidth to staging candidates under the
// configured discipline. Requests must be synced to t and already hold
// their minimum rates.
func (e *Engine) spreadSpare(s *server, t float64, avail float64) {
	switch e.cfg.Spare {
	case EvenSplit:
		e.feedSpareEven(s, t, avail)
	case LFTF:
		// Latest projected finish first: the adversarial opposite.
		e.feedSpareOrdered(s, t, avail, true)
	default:
		// EFTF: earliest projected finish first; ties broken by request
		// id for determinism. DebugForceSpareMisorder inverts the order
		// (test-only sabotage the auditor must catch).
		e.feedSpareOrdered(s, t, avail, e.spareMisorder)
	}
}

// feedSpareOrdered feeds spare to candidates in ascending (descending
// when inverted) remaining-volume order.
func (e *Engine) feedSpareOrdered(s *server, t float64, avail float64, descending bool) {
	e.gatherSpareCandidates(s, t, descending)
	if e.cand.Len() == 0 {
		return
	}
	if e.audit != nil {
		e.feedSpareAudited(s, t, avail)
		return
	}
	ln := &s.ln
	e.cand.Init()
	for avail > dataEps && e.cand.Len() > 0 {
		i := e.cand.Pop().Pos
		r := s.active[i]
		if extra := spareGrantTo(ln.rate[i], r.recvCap, avail); extra > 0 {
			ln.rate[i] += extra
			avail -= extra
			ln.setWake(i, e.wakeKeyServing(s, r, int(i), t))
		}
	}
}

// feedSpareAudited is the instrumented ordered feed: every candidate's
// grant — including the zero grants after the spare runs out — is
// reported to the SpareOrder tap in feed order, which requires the full
// sort the hot path avoids.
func (e *Engine) feedSpareAudited(s *server, t float64, avail float64) {
	ln := &s.ln
	grants := e.spareGrantBuf[:0]
	for _, ent := range e.cand.Sort() {
		i := ent.Pos
		r := s.active[i]
		var extra float64
		if avail > dataEps {
			extra = spareGrantTo(ln.rate[i], r.recvCap, avail)
		}
		grants = append(grants, SpareGrant{
			Request: ent.ID, Remaining: ent.Key,
			RateBefore: ln.rate[i], Extra: extra, RecvCap: r.recvCap,
		})
		if extra > 0 {
			ln.rate[i] += extra
			avail -= extra
			ln.setWake(i, e.wakeKeyServing(s, r, int(i), t))
		}
	}
	e.spareGrantBuf = grants
	e.auditFail(e.audit.SpareOrder(t, s.id, e.cfg.Spare, grants))
}

// feedSpareEven water-fills spare equally across the candidates,
// redistributing what saturated clients cannot absorb. Candidates are
// processed in active order (the discipline is order-free by design and
// emits no feed-order tap). A candidate can be fed across several
// rounds, so the wake keys are written once at the end, from the final
// rates — the same values a post-feed scan would have read.
func (e *Engine) feedSpareEven(s *server, t float64, avail float64) {
	e.gatherSpareCandidates(s, t, false)
	if e.cand.Len() == 0 {
		return
	}
	ln := &s.ln
	// All() returns insertion order (nothing has been popped or sorted);
	// the survivor filter works on a separate scratch so it cannot
	// corrupt the index storage.
	remaining := append(e.evenBuf[:0], e.cand.All()...)
	e.evenBuf = remaining
	for avail > dataEps && len(remaining) > 0 {
		share := avail / float64(len(remaining))
		next := remaining[:0]
		for _, ent := range remaining {
			i := ent.Pos
			headroom := math.Inf(1)
			if recvCap := s.active[i].recvCap; recvCap > 0 {
				headroom = recvCap - ln.rate[i]
			}
			extra := share
			if extra >= headroom {
				extra = headroom
			} else {
				next = append(next, ent) // can absorb more next round
			}
			if extra > 0 {
				ln.rate[i] += extra
				avail -= extra
			}
		}
		if len(next) == len(remaining) {
			break // everyone took a full share; spare exhausted
		}
		remaining = next
	}
	for _, ent := range e.cand.All() {
		ln.setWake(ent.Pos, e.wakeKeyServing(s, s.active[ent.Pos], int(ent.Pos), t))
	}
}

// allocateCopies feeds replica transfers from the spare bandwidth left
// after the minimum-flow guarantee and ahead of client staging: fixing
// placement is the more durable use of the spare. Each job is capped so
// replication cannot monopolize the workahead benefit. Each job's wake
// key for the round is written here (its projected completion).
func (e *Engine) allocateCopies(s *server, t float64, avail float64) float64 {
	if len(s.copies) == 0 {
		return avail
	}
	rateCap := e.copyRateCap()
	for _, c := range s.copies {
		r := rateCap
		if r > avail {
			r = avail
		}
		if r < 0 {
			r = 0
		}
		c.rate = r
		avail -= r
		if avail <= dataEps {
			avail = 0
			rateCap = 0
		}
		if r > 0 {
			c.wakeKey = t + (c.size-c.sent)/r
		} else {
			c.wakeKey = math.Inf(1)
		}
		s.ln.foldCopyKey(c.wakeKey)
	}
	return avail
}

// pausedFullAt reports whether slot i's viewer has paused with no
// buffer room left: transmission must stop or the client buffer would
// overflow (with no staging buffer at all, any pause stops the flow).
func (e *Engine) pausedFullAt(s *server, i int, t float64) bool {
	r := s.active[i]
	return r.pausedView && s.bufferOf(i, t, e.cfg.ViewRate) >= r.bufCap-dataEps
}
