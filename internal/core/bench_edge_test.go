package core

import (
	"fmt"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/edge"
	"semicont/internal/placement"
	"semicont/internal/rng"
)

// Edge-probe micro-benchmarks: one edgeProbe call per iteration over a
// tier whose cache budget holds half the catalog's prefixes, so the
// probe stream mixes hits and misses (and, under lru, admissions and
// evictions — the policy's worst case). BENCH_edge.json at the repo
// root holds the baseline recorded when the edge tier landed; the bar
// is zero allocations per operation for every registered cache policy,
// because the probe runs once per arrival ahead of admission.

// benchEdgeKs are the catalog sizes the edge benches sweep — the probe
// itself is O(1), but lru's eviction loop touches neighbors in the
// recency list, so the sweep goes wide enough to expose cache effects.
var benchEdgeKs = []int{4, 64, 1024}

// benchEdgeEngine builds a full engine with a k-video catalog (fixed
// 1200 s titles, 900 Mb prefixes) on one server and two edge nodes
// whose budget fits half the catalog's prefixes. Like the admission
// benches this goes through NewEngine: edgeProbe walks e.edgeCaches
// and e.edgePrefix, which only the real constructor wires.
func benchEdgeEngine(tb testing.TB, policy string, k int) *Engine {
	tb.Helper()
	bview := 3.0
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: k, MinLength: 1200, MaxLength: 1200, ViewRate: bview, Theta: 1,
	}, rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	holders := make([][]int, k)
	for v := range holders {
		holders[v] = []int{0}
	}
	lay, err := placement.Manual(cat, holders, 1)
	if err != nil {
		tb.Fatal(err)
	}
	prefixMb := 300 * bview // per video, below the 3600 Mb object size
	cfg := Config{
		ServerBandwidth: []float64{10 * bview},
		ViewRate:        bview,
		Edge: EdgeConfig{
			Nodes:       2,
			PrefixSec:   300,
			CacheMb:     prefixMb * float64(k) / 2,
			CachePolicy: policy,
		},
	}
	e, err := NewEngine(cfg, cat, lay, &scriptSource{})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// BenchmarkEdgeAdmit measures the per-arrival edge cost: one probe
// against the arrival's round-robin node, rotating through the catalog
// so hits, misses, and (under lru) evictions all appear in steady
// state.
func BenchmarkEdgeAdmit(b *testing.B) {
	for _, name := range edge.Names() {
		for _, k := range benchEdgeKs {
			b.Run(fmt.Sprintf("%s/k=%d", name, k), func(b *testing.B) {
				e := benchEdgeEngine(b, name, k)
				// Warm the replacement state so lru's first-touch fill
				// is not what gets timed.
				for v := 0; v < k; v++ {
					benchEdgeProbe(e, v)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchEdgeProbe(e, i%k)
				}
			})
		}
	}
}

// TestEdgeAdmitZeroAlloc pins the contract the CachePolicy interface
// documents: Hit sits on the admission hot path and must not allocate,
// for every registered policy.
func TestEdgeAdmitZeroAlloc(t *testing.T) {
	for _, name := range edge.Names() {
		e := benchEdgeEngine(t, name, 64)
		v := 0
		if got := testing.AllocsPerRun(1000, func() {
			benchEdgeProbe(e, v)
			v++
			if v == 64 {
				v = 0
			}
		}); got != 0 {
			t.Errorf("%s: edge probe allocates %.1f per op, want 0", name, got)
		}
	}
}
