package core

// lftfAllocator is the adversarial ablation of the EFTF theorem: the
// minimum-flow guarantee is identical, but spare bandwidth goes to the
// *latest* projected finisher first. The experiments use it to measure
// how much the theorem's ordering rule is worth empirically (A-EFTF).
type lftfAllocator struct{}

func init() {
	RegisterAllocator(AllocMinFlowLFTF, func() BandwidthAllocator { return lftfAllocator{} })
}

func (lftfAllocator) Name() string { return AllocMinFlowLFTF }

func (lftfAllocator) Allocate(e *Engine, s *server, t float64) float64 {
	avail := e.minFlowRates(s, t)
	avail = e.allocateCopies(s, t, avail)
	if e.cfg.Workahead && avail > dataEps {
		e.feedSpareOrdered(s, t, avail, true)
	}
	return s.wakeAt(t)
}
