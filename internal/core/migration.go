package core

// Dynamic request migration (Section 3.1). When a request arrives and
// every server holding a replica of its video is full, the controller
// may migrate an active request off one of those servers to another
// server that holds a replica of *that* request's video, releasing a
// slot for the new arrival. The paper keeps the migration chain length
// at one (one migrated request per arrival) and studies hops-per-request
// limits of one and unlimited; this implementation additionally supports
// bounded chain search (depth > 1) as an ablation.

// move is one planned migration step.
type move struct {
	r  *request
	to *server
}

// eligibleTarget reports whether request r may be migrated to server t
// at time now. r must be synced to now.
func (e *Engine) eligibleTarget(r *request, t *server, now float64) bool {
	if t.failed || int(r.server) == int(t.id) {
		return false
	}
	if !e.holds(int(r.video), int(t.id)) {
		return false
	}
	return true
}

// migratable reports whether request r may move at all (hops budget,
// not mid-switch, and — when switching takes time — enough buffered
// data to mask the blackout). rescue bypasses the hops budget: a stream
// on a failing server is moved if at all possible.
func (e *Engine) migratable(r *request, now float64, rescue bool) bool {
	if r.suspended(now) {
		return false
	}
	if r.isPatch || r.taps > 0 {
		// Patching pins streams to their server: the multicast tree
		// feeding the taps cannot move.
		return false
	}
	if !rescue {
		mh := e.cfg.Migration.MaxHops
		if mh != UnlimitedHops && int(r.hops) >= mh {
			return false
		}
	}
	if d := e.cfg.Migration.SwitchDelay; d > 0 {
		need := d * e.cfg.ViewRate
		if r.bufferAt(now, e.cfg.ViewRate) < need-dataEps {
			e.metrics.MigrationsRefusedByBuffer++
			return false
		}
	}
	return true
}

// planDirect finds the best single migration that frees a slot on s:
// among s's migratable requests with a free-slot target, it picks the
// pair whose target has the lowest load (ties: lowest request id, then
// lowest target id), mirroring the least-loaded assignment rule.
func (e *Engine) planDirect(s *server, now float64) (move, bool) {
	var best move
	bestLoad := -1
	for _, r := range s.active {
		if !e.migratable(r, now, false) {
			continue
		}
		for _, h := range e.holders(int(r.video)) {
			t := e.servers[h]
			if e.cfg.Intermittent {
				t.syncAll(now) // canAccept reads buffer levels
			}
			if !e.canAccept(t, now) || !e.eligibleTarget(r, t, now) {
				continue
			}
			if bestLoad == -1 || t.load() < bestLoad ||
				(t.load() == bestLoad && (r.id < best.r.id || (r.id == best.r.id && t.id < best.to.id))) {
				best = move{r: r, to: t}
				bestLoad = t.load()
			}
		}
	}
	return best, bestLoad >= 0
}

// planChain tries to free one slot on s using at most depthLeft
// migrations. It returns the moves in execution order (deepest first).
// visited marks servers already being freed higher up the chain, to
// prevent cycles.
func (e *Engine) planChain(s *server, now float64, depthLeft int, visited []bool) []move {
	if depthLeft <= 0 {
		return nil
	}
	// Bring fluid state up to date before reading buffers: migratable's
	// switch-delay check depends on each request's current buffer level.
	s.syncAll(now)
	if m, ok := e.planDirect(s, now); ok {
		return []move{m}
	}
	if depthLeft == 1 {
		return nil
	}
	// No direct target has room: try to free a slot on some candidate
	// target first, then move one of s's requests onto it.
	for _, r := range s.active {
		if !e.migratable(r, now, false) {
			continue
		}
		for _, h := range e.holders(int(r.video)) {
			t := e.servers[h]
			if visited[t.id] || !e.eligibleTarget(r, t, now) {
				continue
			}
			visited[t.id] = true
			if sub := e.planChain(t, now, depthLeft-1, visited); sub != nil {
				return append(sub, move{r: r, to: t})
			}
			// Leave visited set: freeing t failed and cannot succeed
			// via another path within this chain either.
		}
	}
	return nil
}

// admitViaMigration attempts to admit a request for video v at time now
// by migrating active requests. All replica holders of v are known to be
// full. On success it executes the chain and returns the freed server.
// Iterative deepening keeps chains as short as possible, so the paper's
// MaxChain=1 configuration performs exactly one migration per arrival.
func (e *Engine) admitViaMigration(v int32, now float64) (*server, bool) {
	holders := e.holders(int(v))
	maxChain := e.cfg.Migration.MaxChain
	for depth := 1; depth <= maxChain; depth++ {
		for _, h := range holders {
			s := e.servers[h]
			if s.failed {
				continue
			}
			for i := range e.visited {
				e.visited[i] = false
			}
			e.visited[s.id] = true
			plan := e.planChain(s, now, depth, e.visited)
			if plan == nil {
				continue
			}
			e.executeMoves(plan, now, false)
			if e.audit != nil {
				e.auditFail(e.audit.Chain(now, len(plan)))
			}
			e.metrics.AdmissionsViaDRM++
			e.metrics.ChainLengthTotal += int64(len(plan))
			if len(plan) > e.metrics.MaxChainUsed {
				e.metrics.MaxChainUsed = len(plan)
			}
			return s, true
		}
	}
	return nil, false
}

// executeMoves applies planned migrations in order. Sources and targets
// are synced and rescheduled exactly once each.
func (e *Engine) executeMoves(plan []move, now float64, rescue bool) {
	touched := e.touchedBuf[:0]
	mark := func(s *server) {
		for _, x := range touched {
			if x == s {
				return
			}
		}
		touched = append(touched, s)
	}
	for _, m := range plan {
		mark(e.servers[m.r.server])
		mark(m.to)
	}
	for _, s := range touched {
		s.syncAll(now)
	}
	for _, m := range plan {
		from := e.servers[m.r.server]
		from.detach(m.r)
		m.to.attach(m.r)
		m.r.hops++
		if d := e.cfg.Migration.SwitchDelay; d > 0 {
			m.r.suspendedUntil = now + d
		}
		e.metrics.Migrations++
		if e.obs != nil {
			e.obs.OnMigrate(now, m.r.id, int(m.r.video), int(from.id), int(m.to.id), rescue)
		}
		if e.audit != nil {
			e.auditFail(e.audit.Migration(now, m.r.id, m.r.video, from.id, m.to.id, m.r.hops, rescue))
		}
	}
	for _, s := range touched {
		e.reschedule(s, now)
	}
	e.touchedBuf = touched
}
