package core

// Dynamic request migration (Section 3.1). When a request arrives and
// every server holding a replica of its video is full, the controller
// may migrate an active request off one of those servers to another
// server that holds a replica of *that* request's video, releasing a
// slot for the new arrival. The paper keeps the migration chain length
// at one (one migrated request per arrival) and studies hops-per-request
// limits of one and unlimited; bounded chain search (depth > 1) is
// supported as an ablation.
//
// This file is the move mechanism: which requests may move where, and
// how a planned chain is executed. Planning lives behind the
// MigrationPlanner seam (controller.go / controller_planners.go).

// move is one planned migration step.
type move struct {
	r  *request
	to *server
}

// eligibleTarget reports whether request r may be migrated to server t
// at time now. r must be synced to now.
func (e *Engine) eligibleTarget(r *request, t *server, now float64) bool {
	if t.failed || int(r.server) == int(t.id) {
		return false
	}
	if !e.holds(int(r.video), int(t.id)) {
		return false
	}
	return true
}

// migratable reports whether the attached request r may move at all
// (hops budget, not mid-switch, and — when switching takes time —
// enough buffered data to mask the blackout). rescue bypasses the hops
// budget: a stream on a failing server is moved if at all possible.
// r's server must be synced to now.
func (e *Engine) migratable(r *request, now float64, rescue bool) bool {
	s := e.servers[r.server]
	if s.suspendedAt(int(r.slot), now) {
		return false
	}
	if r.isPatch || r.taps > 0 {
		// Patching pins streams to their server: the multicast tree
		// feeding the taps cannot move.
		return false
	}
	if !rescue {
		mh := e.cfg.Migration.MaxHops
		if mh != UnlimitedHops && int(r.hops) >= mh {
			return false
		}
	}
	if d := e.cfg.Migration.SwitchDelay; d > 0 {
		need := d * e.cfg.ViewRate
		if s.bufferOf(int(r.slot), now, e.cfg.ViewRate) < need-dataEps {
			e.metrics.MigrationsRefusedByBuffer++
			return false
		}
	}
	return true
}

// executeMoves applies planned migrations in order. Sources and targets
// are synced and rescheduled exactly once each.
func (e *Engine) executeMoves(plan []move, now float64, rescue bool) {
	touched := e.touchedBuf[:0]
	mark := func(s *server) {
		for _, x := range touched {
			if x == s {
				return
			}
		}
		touched = append(touched, s)
	}
	for _, m := range plan {
		mark(e.servers[m.r.server])
		mark(m.to)
	}
	for _, s := range touched {
		s.syncAll(now)
	}
	for _, m := range plan {
		from := e.servers[m.r.server]
		from.detach(m.r)
		m.to.attach(m.r)
		m.r.hops++
		if d := e.cfg.Migration.SwitchDelay; d > 0 {
			m.to.setSuspend(m.r, now+d)
		}
		e.metrics.Migrations++
		if e.obs != nil {
			e.obs.OnMigrate(now, m.r.id, int(m.r.video), int(from.id), int(m.to.id), rescue)
		}
		if e.audit != nil {
			e.auditFail(e.audit.Migration(now, m.r.id, m.r.video, from.id, m.to.id, m.r.hops, rescue))
		}
	}
	for _, s := range touched {
		e.reschedule(s, now)
	}
	e.touchedBuf = touched
}
