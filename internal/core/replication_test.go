package core

import (
	"testing"

	"semicont/internal/workload"
)

// replicateObserver records replica installations.
type replicateObserver struct {
	finishObserver
	replicas []struct{ video, from, to int }
}

func (o *replicateObserver) OnReplicate(t float64, video, from, to int) {
	o.replicas = append(o.replicas, struct{ video, from, to int }{video, from, to})
}

// replScenario: video 0 lives on server 0 only (7 Mb/s: two slots plus
// 1 Mb/s spare that can feed a copy); server 1 holds only video 1 and
// is otherwise idle. Two streams fill server 0; the third request for
// video 0 is rejected and triggers replication to server 1.
func replScenario(t *testing.T, enabled bool, extra []workload.Request) (*Engine, *replicateObserver) {
	t.Helper()
	cat := fixedCatalog(t, 2, 1200) // 3600 Mb each
	cfg := Config{
		ServerBandwidth: []float64{7, 7},
		ViewRate:        3,
		Replication:     ReplicationConfig{Enabled: enabled},
	}
	reqs := []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // rejected; replication trigger
	}
	reqs = append(reqs, extra...)
	obs := &replicateObserver{finishObserver: *newFinishObserver()}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, reqs)
	e.SetObserver(obs)
	return e, obs
}

func TestReplicationOnRejection(t *testing.T) {
	later := []workload.Request{
		{Arrival: 5000, Video: 0},
		{Arrival: 5001, Video: 0},
		{Arrival: 5002, Video: 0}, // needs the new replica on server 1
	}
	// Without replication the later burst loses one request again.
	e, _ := replScenario(t, false, later)
	m := run(t, e, 6000)
	if m.Accepted != 4 || m.Rejected != 2 || m.ReplicationsStarted != 0 {
		t.Fatalf("baseline: accepted=%d rejected=%d repl=%d, want 4/2/0",
			m.Accepted, m.Rejected, m.ReplicationsStarted)
	}

	// With replication the rejection at t=2 creates a second replica
	// (copy finishes long before t=5000), so the burst fits.
	e, obs := replScenario(t, true, later)
	m = run(t, e, 6000)
	if m.ReplicationsStarted != 1 || m.ReplicationsCompleted != 1 {
		t.Fatalf("replications started=%d completed=%d, want 1/1",
			m.ReplicationsStarted, m.ReplicationsCompleted)
	}
	if !approx(m.ReplicatedMb, 3600, 1e-6) {
		t.Errorf("ReplicatedMb = %v, want 3600", m.ReplicatedMb)
	}
	if m.Accepted != 5 || m.Rejected != 1 {
		t.Fatalf("with replication: accepted=%d rejected=%d, want 5/1", m.Accepted, m.Rejected)
	}
	if len(obs.replicas) != 1 || obs.replicas[0].video != 0 ||
		obs.replicas[0].from != 0 || obs.replicas[0].to != 1 {
		t.Errorf("replica events = %+v", obs.replicas)
	}
	// One of the burst requests must land on the new replica holder.
	onNew := 0
	for id, srv := range obs.admits {
		if id >= 4 && srv == 1 {
			onNew++
		}
	}
	if onNew == 0 {
		t.Error("no burst request served from the dynamic replica")
	}
}

func TestReplicationDeduplicates(t *testing.T) {
	// Two rejections for the same video while a copy is in flight must
	// start only one job.
	e, _ := replScenario(t, true, []workload.Request{{Arrival: 3, Video: 0}})
	m := run(t, e, 6000)
	if m.ReplicationsStarted != 1 {
		t.Errorf("ReplicationsStarted = %d, want 1 (dedup)", m.ReplicationsStarted)
	}
	// The second rejection found the copy in flight: a deferral, not a
	// silently swallowed retry.
	if m.ReplicationsDeferred != 1 {
		t.Errorf("ReplicationsDeferred = %d, want 1", m.ReplicationsDeferred)
	}
}

func TestReplicationDeferredWithoutSource(t *testing.T) {
	// Server 0 is video 0's only holder; failing it leaves rejections
	// for video 0 with no live source to copy from.
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{7, 7},
		ViewRate:        3,
		Replication:     ReplicationConfig{Enabled: true},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 200, Video: 0}, // holder dead: rejected, and no source to copy from
	})
	if err := e.ScheduleFailure(100, 0); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 6000)
	if m.Rejected != 1 || m.ReplicationsStarted != 0 {
		t.Fatalf("rejected=%d started=%d, want 1/0", m.Rejected, m.ReplicationsStarted)
	}
	if m.ReplicationsDeferred != 1 {
		t.Errorf("ReplicationsDeferred = %d, want 1 (no live source)", m.ReplicationsDeferred)
	}
}

func TestReplicationRespectsStorage(t *testing.T) {
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{7, 7},
		ViewRate:        3,
		Replication:     ReplicationConfig{Enabled: true},
		// Server 1 already holds video 1 (3600 Mb) and has no room for
		// a second object.
		ServerStorage: []float64{7200, 3600},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0},
	})
	m := run(t, e, 6000)
	if m.ReplicationsStarted != 0 {
		t.Errorf("ReplicationsStarted = %d, want 0 (no storage room)", m.ReplicationsStarted)
	}
	if m.ReplicationsDeferred != 1 {
		t.Errorf("ReplicationsDeferred = %d, want 1 (no target with room)", m.ReplicationsDeferred)
	}
}

func TestReplicationAbortedBySourceFailure(t *testing.T) {
	e, _ := replScenario(t, true, nil)
	// The copy runs at 1 Mb/s while both streams are live; kill the
	// source at t=100, long before completion.
	if err := e.ScheduleFailure(100, 0); err != nil {
		t.Fatal(err)
	}
	m := run(t, e, 6000)
	if m.ReplicationsStarted != 1 || m.ReplicationsAborted != 1 || m.ReplicationsCompleted != 0 {
		t.Errorf("started=%d aborted=%d completed=%d, want 1/1/0",
			m.ReplicationsStarted, m.ReplicationsAborted, m.ReplicationsCompleted)
	}
}

func TestReplicationAbortedByTargetFailure(t *testing.T) {
	e, _ := replScenario(t, true, nil)
	if err := e.ScheduleFailure(100, 1); err != nil { // target dies
		t.Fatal(err)
	}
	m := run(t, e, 6000)
	if m.ReplicationsAborted != 1 || m.ReplicationsCompleted != 0 {
		t.Errorf("aborted=%d completed=%d, want 1/0", m.ReplicationsAborted, m.ReplicationsCompleted)
	}
}

func TestCopyConsumesOnlySpareBandwidth(t *testing.T) {
	// While both streams are live the copy gets exactly the 1 Mb/s of
	// spare (invariants verify Σ rates ≤ 7); after they finish it ramps
	// to the 6 Mb/s default cap. Completion time pins the trajectory:
	// 1198 Mb by t≈1201, the rest at 6 Mb/s → ≈1601.3. The replica
	// install is observable through the metrics after the run.
	e, obs := replScenario(t, true, nil)
	m := run(t, e, 6000)
	if m.ReplicationsCompleted != 1 {
		t.Fatalf("completed=%d", m.ReplicationsCompleted)
	}
	_ = obs
	// Invariant checking (enabled by the harness) has already asserted
	// the bandwidth budget at every event; conservation of request
	// bytes must still hold alongside the copy traffic.
	if !approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3) {
		t.Errorf("delivered %v vs accepted %v", m.DeliveredBytes, m.AcceptedBytes)
	}
}

func TestMigrationSeesDynamicReplicas(t *testing.T) {
	// After video 0 is replicated onto server 1, DRM may migrate a
	// video-0 stream there: the overlay must feed eligibleTarget.
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{7, 7},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
		Replication:     ReplicationConfig{Enabled: true},
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {1}}, []workload.Request{
		{Arrival: 0, Video: 0},
		{Arrival: 1, Video: 0},
		{Arrival: 2, Video: 0}, // rejected (no DRM target yet) → copy starts
		// After the copy completes (~t=1601) and both early streams are
		// done, fill server 0 again and force DRM to use the replica.
		{Arrival: 5000, Video: 0},
		{Arrival: 5001, Video: 0},
		{Arrival: 5002, Video: 1}, // server 1's own video
		{Arrival: 5003, Video: 1},
		{Arrival: 5004, Video: 0}, // server 0 full; migrate a v0 stream to server 1? server 1 full too (2 slots)
	})
	m := run(t, e, 9000)
	// At t=5004: server 0 carries two v0 streams, server 1 two v1
	// streams; all full. DRM chain: no target has a slot, so the
	// arrival is rejected — but the overlay made server 1 a legal
	// candidate, which planDirect explored without crashing. The real
	// assertion: the earlier burst behaves exactly as in
	// TestReplicationOnRejection and the engine stays consistent.
	if m.ReplicationsCompleted != 1 {
		t.Errorf("completed=%d", m.ReplicationsCompleted)
	}
	if m.Accepted != 6 || m.Rejected != 2 {
		t.Errorf("accepted=%d rejected=%d, want 6/2", m.Accepted, m.Rejected)
	}
}
