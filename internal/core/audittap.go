package core

// Audit taps: fine-grained engine instrumentation consumed by the
// internal/audit invariant auditor. The engine stays oblivious to what
// is checked — it only reports what it did, at the moments transient
// scheduler decisions (EFTF feed order, migration chains, intermittent
// pausing, replica installs) are visible. The auditor package cannot be
// imported from here (it imports core), so the contract lives on this
// side of the boundary.
//
// All slices handed to tap methods are reused scratch buffers: a tap
// must copy anything it wants to retain past the call.

// AuditEventKind identifies the engine event being audited.
type AuditEventKind uint8

// The engine's event kinds, as exposed to audit taps.
const (
	AuditArrival AuditEventKind = iota
	AuditWake
	AuditFailure
	AuditPause
	AuditResume
	AuditRecovery
	AuditRetry
	AuditPark
	AuditBrownout
	AuditBrownoutEnd
)

// String implements fmt.Stringer.
func (k AuditEventKind) String() string {
	switch k {
	case AuditArrival:
		return "arrival"
	case AuditWake:
		return "wake"
	case AuditFailure:
		return "failure"
	case AuditPause:
		return "pause"
	case AuditResume:
		return "resume"
	case AuditRecovery:
		return "recovery"
	case AuditRetry:
		return "retry"
	case AuditPark:
		return "park"
	case AuditBrownout:
		return "brownout"
	case AuditBrownoutEnd:
		return "brownout-end"
	default:
		return "unknown"
	}
}

// AuditRequestState is one in-flight request as seen by the auditor.
// Fluid quantities are valid as of SyncedAt (each request's own last
// sync instant, exactly what the engine's decisions were based on).
type AuditRequestState struct {
	ID       int64
	Video    int32
	Rate     float64 // current allocation, Mb/s
	Sent     float64 // Mb transmitted as of SyncedAt
	Size     float64 // Mb
	Buffer   float64 // raw sent − viewed (may be negative under intermittent)
	BufCap   float64 // client staging buffer, Mb (0 = none)
	RecvCap  float64 // client receive cap, Mb/s (0 = unlimited)
	Hops     int32   // lifetime migrations
	Taps     int32   // dependent patch streams
	SyncedAt float64
	WakeKey  float64 // stored wake key from the last allocation round

	Suspended  bool // mid-switch blackout
	PausedView bool // viewer has paused playback
	IsPatch    bool // unicast prefix patch stream
	Glitched   bool // buffer ran dry under the intermittent scheduler
}

// Finished reports whether transmission is complete.
func (r AuditRequestState) Finished() bool { return r.Size-r.Sent <= dataEps }

// AuditCopyState is one in-flight replica transfer on its source server.
type AuditCopyState struct {
	Video   int32
	Target  int32
	Rate    float64
	Sent    float64
	Size    float64
	WakeKey float64 // stored wake key from the last allocation round
}

// AuditServerState is one server's full transmission state.
type AuditServerState struct {
	ID        int32
	Bandwidth float64
	Slots     int
	Failed    bool
	// NextWake is the incremental wake index's current answer: the min
	// the engine would schedule the server's next wake from. The
	// wake-exact audit rule checks it equals the from-scratch min over
	// the stored WakeKeys below, bit for bit.
	NextWake float64
	Requests []AuditRequestState
	Copies   []AuditCopyState
}

// AuditEventRecord is the cluster state snapshot delivered after every
// processed engine event.
type AuditEventRecord struct {
	Seq     uint64  // 1-based event sequence number
	Time    float64 // simulation time of the event
	Kind    AuditEventKind
	Server  int32 // event's target server, −1 when not applicable
	Request int64 // event's target request, 0 when not applicable
	Servers []AuditServerState
}

// SpareGrant records one candidate considered by the workahead
// spreader, in feed order: the order the discipline fed spare bandwidth.
type SpareGrant struct {
	Request    int64
	Remaining  float64 // untransmitted volume when considered, Mb
	RateBefore float64 // allocation before the grant, Mb/s
	Extra      float64 // spare bandwidth granted, Mb/s (0 = none left or saturated)
	RecvCap    float64 // client receive cap (0 = unlimited)
}

// IntermittentGrant records one stream considered by the intermittent
// allocator, in feed (ascending-buffer) order.
type IntermittentGrant struct {
	Request    int64
	Buffer     float64 // clamped client buffer when considered, Mb
	Rate       float64 // assigned rate (b_view or 0)
	PausedFull bool    // viewer paused with a full buffer (exempt from feeding)
}

// AuditBegin describes the simulation an auditor attaches to, delivered
// once before the first event.
type AuditBegin struct {
	Config    Config
	NumVideos int
	// Holders lists the initial replica holders per video (the static
	// placement). Aliased engine state: do not modify.
	Holders [][]int32
	// StaticStorage is each server's storage consumed by the static
	// placement, in Mb.
	StaticStorage []float64
}

// AuditTap receives engine taps. Any method returning a non-nil error
// aborts the run: the engine stops stepping and Run returns the error.
type AuditTap interface {
	// Begin is called once from Start with the simulation's shape.
	Begin(b AuditBegin) error
	// BeginEvent is called before an event is processed, establishing
	// the context (seq, time, kind, target) for the in-event taps below.
	BeginEvent(seq uint64, t float64, kind AuditEventKind, server int32, req int64) error
	// Event is called after the event is fully processed, with the
	// complete cluster state.
	Event(rec AuditEventRecord) error
	// SpareOrder reports every sequential workahead feed pass (EFTF and
	// LFTF; the even-split water-filling pass has no feed order): the
	// candidates in the order the discipline fed them, with the granted
	// extras.
	SpareOrder(t float64, server int32, discipline SpareDiscipline, grants []SpareGrant) error
	// IntermittentOrder reports every intermittent allocation pass.
	IntermittentOrder(t float64, server int32, grants []IntermittentGrant) error
	// Admission reports the controller's server choice for one admitted
	// stream (new arrival or retry-queue attempt): the selected server,
	// whether DRM freed it, and the engine's own feasibility re-check
	// of the choice at decision time — an auditor can fail a selector
	// whose claimed-feasible pick could not actually accept the stream.
	// Parked-stream reconnects are client-initiated and not reported.
	Admission(t float64, video int32, server int32, viaDRM, feasible bool) error
	// Migration reports one executed request move. hops is the
	// request's lifetime count after this move.
	Migration(t float64, req int64, video int32, from, to int32, hops int32, rescue bool) error
	// Failure reports the disposition of a failed server's streams:
	// every stream active at the failure instant was rescued, dropped,
	// or parked into degraded-mode playback.
	Failure(t float64, server int32, rescued, dropped, parked int) error
	// Recovery reports a failed server rejoining the cluster; cold
	// means its storage was wiped.
	Recovery(t float64, server int32, cold bool) error
	// Brownout reports a server dimmed to the fraction frac of its
	// configured bandwidth, with the disposition of any minimum-flow
	// excess (zero under the intermittent scheduler, which sheds
	// nothing).
	Brownout(t float64, server int32, frac float64, rescued, dropped, parked int) error
	// BrownoutEnd reports a browned-out server restored to full
	// capacity.
	BrownoutEnd(t float64, server int32) error
	// Shed reports one arrival rejected up front by the overload shed
	// controller: its video, its traffic class (never 0, the protected
	// class), and the utilization/watermark pair that triggered it.
	Shed(t float64, video int32, class int32, util, watermark float64) error
	// EdgeServe reports one request (partially) served by the edge
	// tier, with its byte decomposition: prefixMb came from the edge
	// cache, catchupMb was relayed from the edge's buffer of a shared
	// stream, sharedMb arrives over that multicast stream, and
	// suffixMb is the unicast cluster stream admitted for the request
	// (0 for full-cache serves and batched joins). The parts must sum
	// to sizeMb, the whole object. batched marks a batch-prefix join.
	EdgeServe(t float64, video int32, prefixMb, catchupMb, sharedMb, suffixMb, sizeMb float64, batched bool) error
	// Chain reports the length of an executed DRM admission chain.
	Chain(t float64, length int) error
	// Replication reports a completed replica install.
	Replication(t float64, video, from, to int32, size float64) error
	// End is called once after the event list drains, with the final
	// metrics.
	End(t float64, m Metrics) error
}

// SetAuditTap installs an audit tap (may be nil). Call before Start.
func (e *Engine) SetAuditTap(tap AuditTap) { e.audit = tap }

// SetAuditSampling makes the attached auditor's per-event snapshot
// check run only on every k-th event (k ≤ 1 restores auditing of every
// event). Sampling is keyed to the engine's deterministic event
// sequence number, never wall time, so a sampled audit examines the
// same events on every platform, GOMAXPROCS, and worker count. The
// cheap stateful taps — BeginEvent, Admission, Migration, Failure,
// Recovery, Chain, Replication, and the feed-order taps — always fire,
// keeping the auditor's replica/storage/fault mirrors exact; only the
// full cluster snapshot (the expensive part, linear in cluster size) is
// sampled. Reset clears the rate.
func (e *Engine) SetAuditSampling(every int) {
	if every < 0 {
		every = 0
	}
	e.auditEvery = uint64(every)
}

// AuditErr returns the first audit violation raised so far (nil when
// clean). Step-based drivers consult it after Step returns false; Run
// surfaces it as its error.
func (e *Engine) AuditErr() error { return e.auditErr }

// DebugForceSpareMisorder inverts the EFTF feed order while still
// reporting the configured discipline to audit taps. It exists solely so
// tests outside this package can prove the auditor detects ordering
// violations; never enable it otherwise.
func (e *Engine) DebugForceSpareMisorder(on bool) { e.spareMisorder = on }

// DebugSkewWakeIndex makes audit snapshots report each loaded server's
// NextWake one second early, without touching the stored keys. It
// exists solely so tests outside this package can prove the auditor's
// wake-exact rule detects an index that disagrees with its keys; never
// enable it otherwise.
func (e *Engine) DebugSkewWakeIndex(on bool) { e.wakeSkew = on }

// auditFail records the first tap error; the engine aborts at the next
// Step boundary.
func (e *Engine) auditFail(err error) {
	if err != nil && e.auditErr == nil {
		e.auditErr = err
	}
}

// auditBegin delivers the Begin tap from Start.
func (e *Engine) auditBegin() {
	holders := make([][]int32, e.cat.Len())
	for v := range holders {
		holders[v] = e.layout.Holders(v)
	}
	static := make([]float64, len(e.servers))
	for i := range static {
		static[i] = e.layout.Used(i)
	}
	e.auditFail(e.audit.Begin(AuditBegin{
		Config:        e.cfg,
		NumVideos:     e.cat.Len(),
		Holders:       holders,
		StaticStorage: static,
	}))
}

// auditKind maps an internal event to its audited kind and target ids.
func auditKind(ev event) (kind AuditEventKind, server int32, req int64) {
	switch ev.kind {
	case evArrival:
		return AuditArrival, -1, 0
	case evServerWake:
		return AuditWake, ev.server, 0
	case evFailure:
		return AuditFailure, ev.server, 0
	case evPause:
		return AuditPause, -1, ev.req
	case evResume:
		return AuditResume, -1, ev.req
	case evRecovery:
		return AuditRecovery, ev.server, 0
	case evRetry:
		// ev.req is a retry-queue entry id, not a request id; the
		// record's Request field reports only real stream ids.
		return AuditRetry, -1, 0
	case evParkTick:
		return AuditPark, -1, ev.req
	case evBrownout:
		return AuditBrownout, ev.server, 0
	case evBrownoutEnd:
		return AuditBrownoutEnd, ev.server, 0
	default:
		return AuditWake, -1, 0
	}
}

// auditRecord fills the reusable snapshot buffers with the full cluster
// state. Fluid quantities are reported as of each request's own sync
// time, mirroring what checkInvariants reads.
func (e *Engine) auditRecord(kind AuditEventKind, server int32, req int64) AuditEventRecord {
	if e.auditServers == nil {
		e.auditServers = make([]AuditServerState, len(e.servers))
	}
	bview := e.cfg.ViewRate
	for i, s := range e.servers {
		st := &e.auditServers[i]
		st.ID = s.id
		st.Bandwidth = s.bandwidth
		st.Slots = s.slots
		st.Failed = s.failed
		st.NextWake = s.currentWake()
		if e.wakeSkew && len(s.active) > 0 {
			st.NextWake = st.NextWake - 1 // test-only sabotage
		}
		st.Requests = st.Requests[:0]
		for j, r := range s.active {
			st.Requests = append(st.Requests, AuditRequestState{
				ID:         r.id,
				Video:      r.video,
				Rate:       s.ln.rate[j],
				Sent:       s.ln.sent[j],
				Size:       r.size,
				Buffer:     s.ln.sent[j] - r.viewedAt(s.ln.last[j], bview),
				BufCap:     r.bufCap,
				RecvCap:    r.recvCap,
				Hops:       r.hops,
				Taps:       r.taps,
				SyncedAt:   s.ln.last[j],
				WakeKey:    s.ln.wake[j],
				Suspended:  s.suspendedAt(j, s.ln.last[j]),
				PausedView: r.pausedView,
				IsPatch:    r.isPatch,
				Glitched:   r.glitched,
			})
		}
		st.Copies = st.Copies[:0]
		for _, c := range s.copies {
			st.Copies = append(st.Copies, AuditCopyState{
				Video: c.video, Target: c.target,
				Rate: c.rate, Sent: c.sent, Size: c.size,
				WakeKey: c.wakeKey,
			})
		}
	}
	return AuditEventRecord{
		Seq:     e.auditSeq,
		Time:    e.now,
		Kind:    kind,
		Server:  server,
		Request: req,
		Servers: e.auditServers,
	}
}
