package core

// Numerical tolerances for the fluid model. Data volumes are in Mb
// (up to ~2×10^4 per object) and times in seconds (up to ~4×10^6 per
// run); float64 leaves ample headroom at these scales.
const (
	dataEps = 1e-6 // Mb: volumes closer than this are equal
	timeEps = 1e-9 // s: times closer than this are equal
)

// request is the engine's per-stream state. Between events a request
// transmits at the piecewise-constant rate of its lane slot; sent data
// is synced lazily to the current time before any decision reads it.
//
// Playback starts at admission and consumes data at the view rate
// except while the viewer has paused (the interactivity extension), so
//
//	viewed(t) = viewOffset                       while paused
//	          = viewOffset + (t − viewSyncT)·b_view  otherwise (≤ size)
//	buffer(t) = sent(t) − viewed(t)   ∈ [0, bufCap]
//
// A request is "unfinished" while sent < size; the server releases its
// bandwidth the moment transmission completes, even though the client
// keeps playing from its buffer afterwards.
//
// Hot-field ownership: while the request is attached to a server, its
// fluid hot fields (rate, sent, last, suspension deadline) live in the
// server's lane at index slot — read and write them there. The carry*
// fields below are the detached representation only: server.detach
// stores the lane slot into them, attach loads them back, and the
// fluid methods on request (syncTo, bufferAt, remaining, finished,
// suspended) operate on them — legal only for detached requests
// (parked streams playing from their buffers, freelist entries, and
// requests not yet attached).
type request struct {
	id    int64
	video int32
	size  float64 // Mb
	start float64 // admission == playback start time

	server int32 // current data source

	// Carried hot fields, valid only while detached (see above).
	carrySent float64 // Mb transmitted, valid as of carryLast
	carryRate float64 // current allocation, Mb/s
	carryLast float64 // time carrySent was last synced

	// Viewer playback state. viewOffset is the data consumed as of
	// viewSyncT; while pausedView is set the offset is frozen.
	viewOffset float64
	viewSyncT  float64
	pausedView bool

	// Per-client capabilities, set at admission from the engine config
	// or the request's drawn client class.
	bufCap  float64 // staging buffer, Mb (0 = no staging)
	recvCap float64 // receive bandwidth cap, Mb/s (0 = unlimited)

	hops int32 // lifetime migrations so far

	// class is the request's traffic class index (Config.Classes), -1
	// on classless runs. It rides the request so retry re-attempts and
	// parked-stream reconnects keep using the class's selector and
	// patience.
	class int32

	// Patching state: isPatch marks a unicast prefix stream whose
	// remainder arrives via a multicast tap; taps counts dependents
	// fed from this stream's transmission. Either pins the stream to
	// its server (the multicast tree must not move).
	isPatch bool
	taps    int32

	// startOff > 0 marks a cluster suffix stream behind the edge tier:
	// the first startOff Mb of the object were served from an edge
	// cache and size covers only the remainder. Cold bookkeeping for
	// accounting and batch-join eligibility; the fluid model treats
	// the stream as an ordinary object of its (suffix) size.
	startOff float64

	// glitched marks a stream whose buffer ran dry while paused by the
	// intermittent scheduler — a playback interruption the client saw.
	glitched bool

	// carrySusp > carryLast marks a stream mid-switch: it holds a slot
	// on the target server but receives no data until this time. Like
	// the other carry fields it is the detached copy; attached streams
	// keep the deadline in lane.susp.
	carrySusp float64

	// parked marks a stream in degraded-mode playback: detached from
	// every server after a failure, draining its client buffer while it
	// retries reconnection. parkVer lazily invalidates scheduled park
	// ticks the same way server.version invalidates wakes.
	parked    bool
	parkVer   uint64
	parkStart float64 // park instant, for the degraded-park observation

	// slot is the request's index within its server's active slice,
	// maintained for O(1) removal.
	slot int32
}

// syncTo advances the carried fluid state to time t. Detached requests
// only (attached streams are advanced by server.syncAll on the lane).
func (r *request) syncTo(t float64) {
	if t <= r.carryLast {
		return
	}
	if r.carryRate > 0 {
		r.carrySent += r.carryRate * (t - r.carryLast)
		if r.carrySent > r.size {
			r.carrySent = r.size // clamp float accumulation error
		}
	}
	r.carryLast = t
}

// viewedAt returns the data consumed by playback at time t.
func (r *request) viewedAt(t float64, bview float64) float64 {
	v := r.viewOffset
	if !r.pausedView {
		v += (t - r.viewSyncT) * bview
	}
	if v < 0 {
		return 0
	}
	if v > r.size {
		return r.size
	}
	return v
}

// pauseViewing freezes playback at time t.
func (r *request) pauseViewing(t float64, bview float64) {
	r.viewOffset = r.viewedAt(t, bview)
	r.viewSyncT = t
	r.pausedView = true
}

// resumeViewing restarts playback at time t.
func (r *request) resumeViewing(t float64) {
	r.viewSyncT = t
	r.pausedView = false
}

// drainRate returns the rate at which the client consumes buffered
// data: b_view while playing, 0 while the viewer has paused.
func (r *request) drainRate(bview float64) float64 {
	if r.pausedView {
		return 0
	}
	return bview
}

// bufferAt returns the client buffer occupancy at time t from the
// carried state. Detached requests only; must be synced to t.
func (r *request) bufferAt(t float64, bview float64) float64 {
	b := r.carrySent - r.viewedAt(t, bview)
	if b < 0 {
		return 0 // float noise only; the model guarantees buffer ≥ 0
	}
	return b
}

// remaining returns the untransmitted volume of the carried state.
func (r *request) remaining() float64 {
	rem := r.size - r.carrySent
	if rem < 0 {
		return 0
	}
	return rem
}

// finished reports whether transmission is complete (carried state).
func (r *request) finished() bool { return r.remaining() <= dataEps }

// suspended reports whether the stream is mid-switch at time t
// (carried state).
func (r *request) suspended(t float64) bool { return r.carrySusp > t+timeEps }

// deadline returns the time by which transmission must complete for
// uninterrupted playback, given the playback state as of now: when
// viewing catches up with the object size. For a paused viewer the
// true deadline depends on the unknown resume time; this reports the
// lower bound obtained if playback resumed immediately.
func (r *request) deadline(bview float64) float64 {
	return r.viewSyncT + (r.size-r.viewOffset)/bview
}
