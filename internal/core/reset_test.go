package core

import (
	"math"
	"reflect"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// TestResetEquivalence pins the engine-reuse contract: running a
// scenario on a Reset engine must produce metrics identical to running
// it on a freshly constructed one, even when the engine previously ran
// a completely different configuration (different server count, feature
// set, and seeds). The kitchen-sink builder supplies the scenario
// diversity; every feature's state must therefore survive — or be
// wiped by — Reset correctly.
func TestResetEquivalence(t *testing.T) {
	reused := new(Engine)
	for _, seed := range []uint64{1, 2, 3, 7, 11, 23, 42, 99} {
		cfg, cat, lay, mkSrc := kitchenSinkParts(t, seed)

		fresh, err := NewEngine(cfg, cat, lay, mkSrc())
		if err != nil {
			t.Fatal(err)
		}
		if err := reused.Reset(cfg, cat, lay, mkSrc()); err != nil {
			t.Fatal(err)
		}
		// Odd seeds also kill and recover a server so the fault path's
		// per-run state (faultSched, parked, retryQ) is exercised.
		if seed%2 == 1 {
			id := int(seed) % len(cfg.ServerBandwidth)
			for _, e := range []*Engine{fresh, reused} {
				if err := e.ScheduleFailure(600, id); err != nil {
					t.Fatal(err)
				}
				if err := e.ScheduleRecovery(1200, id, seed%4 == 1); err != nil {
					t.Fatal(err)
				}
			}
		}

		mf, errF := fresh.Run(1800)
		mr, errR := reused.Run(1800)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("seed %d: fresh err %v, reused err %v", seed, errF, errR)
		}
		if errF != nil {
			continue
		}
		if *mf != *mr {
			t.Errorf("seed %d: metrics diverge\nfresh:  %+v\nreused: %+v", seed, *mf, *mr)
		}
	}
}

// TestResetClearsLanes walks the lane struct by reflection so the check
// cannot silently rot: every slice field must be truncated to length
// zero by Reset (capacity may be retained — that is the point of engine
// reuse), the wake-index scalars must be back at their empty-server
// values, and any field of a kind this test does not recognize fails it
// outright — adding a hot-field array to lane without teaching
// lane.reset (and this test) about it is a bug.
func TestResetClearsLanes(t *testing.T) {
	cfg, cat, lay, mkSrc := kitchenSinkParts(t, 7)
	e, err := NewEngine(cfg, cat, lay, mkSrc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(1800); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(cfg, cat, lay, mkSrc()); err != nil {
		t.Fatal(err)
	}
	for si := range e.servers {
		ln := reflect.ValueOf(&e.servers[si].ln).Elem()
		tp := ln.Type()
		for fi := 0; fi < tp.NumField(); fi++ {
			f := tp.Field(fi)
			v := ln.Field(fi)
			switch {
			case f.Type.Kind() == reflect.Slice:
				if v.Len() != 0 {
					t.Errorf("server %d: lane.%s has %d entries after Reset", si, f.Name, v.Len())
				}
			case f.Name == "wakeMin":
				if got := v.Float(); !math.IsInf(got, 1) {
					t.Errorf("server %d: lane.wakeMin = %v after Reset, want +Inf", si, got)
				}
			case f.Name == "wakeArg":
				if got := v.Int(); got != int64(wakeArgNone) {
					t.Errorf("server %d: lane.wakeArg = %d after Reset, want %d", si, got, wakeArgNone)
				}
			case f.Name == "wakeDirty":
				if v.Bool() {
					t.Errorf("server %d: lane.wakeDirty set after Reset", si)
				}
			default:
				t.Errorf("lane.%s: kind %s not covered by this test — extend lane.reset and the cases above", f.Name, f.Type.Kind())
			}
		}
	}
}

// benchTrialParts is a mid-sized scenario representative of one sweep
// trial: four servers, DRM enabled, workahead buffering, calibrated to
// 90% load.
func benchTrialParts(b *testing.B) (Config, *catalog.Catalog, *placement.Layout, func() ArrivalSource) {
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 50, MinLength: 600, MaxLength: 7200, ViewRate: 3, Theta: 0.271,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	caps := []float64{1e6, 1e6, 1e6, 1e6}
	bws := []float64{100, 100, 100, 100}
	lay, err := placement.Build(placement.Even{}, cat, 2, caps, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		ServerBandwidth: bws,
		ServerStorage:   caps,
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  cat.AvgSize() * 0.1,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}
	rate, err := workload.CalibratedRate(cat, 400, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	mkSrc := func() ArrivalSource {
		gen, err := workload.New(cat, rate, rng.New(3))
		if err != nil {
			b.Fatal(err)
		}
		return gen
	}
	return cfg, cat, lay, mkSrc
}

// BenchmarkTrialReset measures one sweep trial on a reused engine —
// Reset plus Run — against BenchmarkTrialFresh's NewEngine per trial.
// The allocs/op gap is the garbage the reuse path avoids: everything
// but the arrival generator survives across trials.
func BenchmarkTrialReset(b *testing.B) {
	cfg, cat, lay, mkSrc := benchTrialParts(b)
	e := new(Engine)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Reset(cfg, cat, lay, mkSrc()); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(1800); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialFresh is the pre-reuse baseline: a new engine per trial.
func BenchmarkTrialFresh(b *testing.B) {
	cfg, cat, lay, mkSrc := benchTrialParts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(cfg, cat, lay, mkSrc())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(1800); err != nil {
			b.Fatal(err)
		}
	}
}
