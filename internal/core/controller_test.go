package core

import (
	"testing"

	"semicont/internal/workload"
)

func TestControllerRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	sel := func() ServerSelector { return leastLoadedSelector{} }
	pln := func() MigrationPlanner { return chainDFSPlanner{} }
	mustPanic("empty selector name", func() { RegisterSelector("", sel) })
	mustPanic("nil selector factory", func() { RegisterSelector("x", nil) })
	mustPanic("duplicate selector", func() { RegisterSelector(SelectorLeastLoaded, sel) })
	mustPanic("empty planner name", func() { RegisterPlanner("", pln) })
	mustPanic("nil planner factory", func() { RegisterPlanner("x", nil) })
	mustPanic("duplicate planner", func() { RegisterPlanner(PlannerChainDFS, pln) })
}

func TestControllerRegistryNames(t *testing.T) {
	sels := SelectorNames()
	for _, want := range []string{SelectorFirstFit, SelectorLeastLoaded, SelectorMostHeadroom, SelectorRandomFeasible} {
		if !HasSelector(want) {
			t.Errorf("selector %q not registered", want)
		}
	}
	for i := 1; i < len(sels); i++ {
		if sels[i-1] >= sels[i] {
			t.Errorf("SelectorNames not sorted: %v", sels)
		}
	}
	plns := PlannerNames()
	for _, want := range []string{PlannerChainDFS, PlannerDirectOnly} {
		if !HasPlanner(want) {
			t.Errorf("planner %q not registered", want)
		}
	}
	for i := 1; i < len(plns); i++ {
		if plns[i-1] >= plns[i] {
			t.Errorf("PlannerNames not sorted: %v", plns)
		}
	}
	if HasSelector("nonsense") || HasPlanner("nonsense") {
		t.Error("unknown names reported as registered")
	}
}

func TestControllerConfigValidation(t *testing.T) {
	base := Config{ServerBandwidth: []float64{3}, ViewRate: 3}
	if c := base; c.SelectorName() != SelectorLeastLoaded || c.PlannerName() != PlannerChainDFS {
		t.Errorf("defaults = %q/%q", base.SelectorName(), base.PlannerName())
	}

	c := base
	c.Selector = "nonsense"
	if err := c.Validate(); err == nil {
		t.Error("unknown selector accepted")
	}
	c = base
	c.Migration = MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1}
	c.Planner = "nonsense"
	if err := c.Validate(); err == nil {
		t.Error("unknown planner accepted")
	}
	// A planner is only consulted when DRM runs: naming one without
	// migration is a contradiction, not a silent no-op.
	c = base
	c.Planner = PlannerDirectOnly
	if err := c.Validate(); err == nil {
		t.Error("planner without migration accepted")
	}
	c = base
	c.Selector = SelectorRandomFeasible
	c.Migration = MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1}
	c.Planner = PlannerDirectOnly
	if err := c.Validate(); err != nil {
		t.Errorf("valid controller config rejected: %v", err)
	}
}

// TestSelectorChoice pins each deterministic selector's pick on a
// two-server cluster where the policies genuinely disagree: video 0 is
// replicated on both servers, video 1 only on server 0, and one video-1
// stream pre-loads server 0 before the probe arrival for video 0.
func TestSelectorChoice(t *testing.T) {
	cases := []struct {
		selector   string
		bandwidth  []float64
		preload    bool // send the video-1 stream to server 0 first
		wantServer int
	}{
		// Server 0 has load 1, server 1 load 0: least-loaded balances.
		{SelectorLeastLoaded, []float64{6, 6}, true, 1},
		// First-fit ignores load and takes the first feasible holder.
		{SelectorFirstFit, []float64{6, 6}, true, 0},
		// Equal loads, unequal capacity: most-headroom finds the bigger
		// server while least-loaded would tie-break to server 0.
		{SelectorMostHeadroom, []float64{6, 9}, false, 1},
		{SelectorLeastLoaded, []float64{6, 9}, false, 0},
		// Headroom accounts committed streams, not just capacity: 9 Mb/s
		// minus two streams leaves less room than an idle 6 Mb/s server.
		{SelectorMostHeadroom, []float64{6, 9}, true, 1},
	}
	for _, tc := range cases {
		cfg := Config{
			ServerBandwidth: tc.bandwidth,
			ViewRate:        3,
			Selector:        tc.selector,
		}
		reqs := []workload.Request{{Arrival: 10, Video: 0}}
		if tc.preload {
			reqs = append([]workload.Request{{Arrival: 0, Video: 1}}, reqs...)
		}
		obs := newFinishObserver()
		e := newTestEngine(t, cfg, fixedCatalog(t, 2, 1200), [][]int{{0, 1}, {0}}, reqs)
		e.SetObserver(obs)
		run(t, e, 100)
		probe := int64(len(reqs)) // ids are 1-based in arrival order
		if got := obs.admits[probe]; got != tc.wantServer {
			t.Errorf("%s (bw=%v preload=%t): admitted on server %d, want %d",
				tc.selector, tc.bandwidth, tc.preload, got, tc.wantServer)
		}
	}
}

// TestRandomFeasibleSeeded pins the random selector's contract: the
// choice stream is a pure function of Config.SelectorSeed, and every
// pick is a feasible replica holder (the invariant auditor would fail
// the run otherwise — CheckInvariants is on in newTestEngine).
func TestRandomFeasibleSeeded(t *testing.T) {
	build := func(seed uint64) *finishObserver {
		cfg := Config{
			ServerBandwidth: []float64{9, 9, 9},
			ViewRate:        3,
			Selector:        SelectorRandomFeasible,
			SelectorSeed:    seed,
		}
		reqs := make([]workload.Request, 8)
		for i := range reqs {
			reqs[i] = workload.Request{Arrival: float64(i), Video: i % 2}
		}
		obs := newFinishObserver()
		e := newTestEngine(t, cfg, fixedCatalog(t, 2, 1200),
			[][]int{{0, 1, 2}, {0, 1, 2}}, reqs)
		e.SetObserver(obs)
		run(t, e, 30)
		return obs
	}
	a, b := build(42), build(42)
	if len(a.admits) != 8 {
		t.Fatalf("admitted %d of 8", len(a.admits))
	}
	for id, srv := range a.admits {
		if b.admits[id] != srv {
			t.Fatalf("same seed diverged: request %d on %d vs %d", id, srv, b.admits[id])
		}
	}
	// Different seeds should explore a different assignment eventually;
	// with 8 placements over 3 servers a collision across all of them is
	// astronomically unlikely for a healthy generator, but don't hard-fail
	// determinism on it — only flag total equality.
	c := build(43)
	same := true
	for id, srv := range a.admits {
		if c.admits[id] != srv {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical assignments — seed not wired through")
	}
}

// TestPlannerDepthSemantics drives the canonical chain-of-two layout
// (server 0 holds {X,Y}, 1 holds {Y,Z}, 2 holds {Z}, one slot each;
// admitting X requires moving Z off server 1, then Y onto it) through
// both planners and the depth/hops knobs, table-driven.
func TestPlannerDepthSemantics(t *testing.T) {
	cases := []struct {
		name       string
		mig        MigrationConfig
		planner    string
		accepted   int64
		rejected   int64
		migrations int64
		maxChain   int
	}{
		{"chain-dfs depth 1 cannot chain", MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 1}, PlannerChainDFS, 2, 1, 0, 0},
		{"chain-dfs depth 2 frees via chain", MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 2}, PlannerChainDFS, 3, 0, 2, 2},
		{"chain-dfs deeper budget unused", MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 5}, PlannerChainDFS, 3, 0, 2, 2},
		{"zero hops pins every stream", MigrationConfig{Enabled: true, MaxHops: 0, MaxChain: 5}, PlannerChainDFS, 2, 1, 0, 0},
		{"direct-only never chains", MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 5}, PlannerDirectOnly, 2, 1, 0, 0},
	}
	for _, tc := range cases {
		cfg := Config{
			ServerBandwidth: []float64{3, 3, 3},
			ViewRate:        3,
			Migration:       tc.mig,
			Planner:         tc.planner,
		}
		e := newTestEngine(t, cfg, fixedCatalog(t, 3, 1200),
			[][]int{{0}, {0, 1}, {1, 2}}, []workload.Request{
				{Arrival: 0, Video: 1},  // Y → server 0
				{Arrival: 5, Video: 2},  // Z → server 1
				{Arrival: 10, Video: 0}, // X: only holder 0 is full
			})
		m := run(t, e, 100)
		if m.Accepted != tc.accepted || m.Rejected != tc.rejected ||
			m.Migrations != tc.migrations || m.MaxChainUsed != tc.maxChain {
			t.Errorf("%s: accepted=%d rejected=%d migr=%d maxChain=%d, want %d/%d/%d/%d",
				tc.name, m.Accepted, m.Rejected, m.Migrations, m.MaxChainUsed,
				tc.accepted, tc.rejected, tc.migrations, tc.maxChain)
		}
	}
}

// TestPlannerDirectOnlySingleMove checks direct-only still plans the
// single moves it exists for: the canonical DRM scenario needs exactly
// one migration, which both planners find.
func TestPlannerDirectOnlySingleMove(t *testing.T) {
	cat := fixedCatalog(t, 2, 1200)
	cfg := Config{
		ServerBandwidth: []float64{3, 3},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 3},
		Planner:         PlannerDirectOnly,
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {0, 1}}, []workload.Request{
		{Arrival: 0, Video: 1},
		{Arrival: 10, Video: 0},
	})
	m := run(t, e, 100)
	if m.Accepted != 2 || m.Migrations != 1 || m.MaxChainUsed != 1 {
		t.Fatalf("accepted=%d migr=%d maxChain=%d, want 2/1/1", m.Accepted, m.Migrations, m.MaxChainUsed)
	}
}

// TestPlanChainVisitedBitmap: two one-slot servers, both full, every
// video replicated on both — any move's target is the other (visited)
// server, so the DFS must conclude no plan exists instead of cycling
// 0→1→0. A deep MaxChain makes an unguarded search blow the budget in
// loops; the bitmap makes it terminate immediately with a rejection.
func TestPlanChainVisitedBitmap(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{3, 3},
		ViewRate:        3,
		Migration:       MigrationConfig{Enabled: true, MaxHops: UnlimitedHops, MaxChain: 8},
	}
	e := newTestEngine(t, cfg, fixedCatalog(t, 2, 1200),
		[][]int{{0, 1}, {0, 1}}, []workload.Request{
			{Arrival: 0, Video: 0},  // → server 0
			{Arrival: 5, Video: 1},  // → server 1
			{Arrival: 10, Video: 0}, // cluster full: no plan can exist
		})
	m := run(t, e, 100)
	if m.Accepted != 2 || m.Rejected != 1 || m.Migrations != 0 {
		t.Fatalf("accepted=%d rejected=%d migr=%d, want 2/1/0", m.Accepted, m.Rejected, m.Migrations)
	}
}
