package core

import (
	"testing"
	"testing/quick"

	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// buildRandomSim assembles a small but fully random simulation: random
// cluster size, staging, migration and demand skew, with invariant
// checking enabled. It is the workhorse of the property tests below.
func buildRandomSim(t testing.TB, seed uint64, staging, migration bool) (*Engine, float64) {
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 20,
		MinLength: 300,
		MaxLength: 900,
		ViewRate:  3,
		Theta:     float64(int(seed%7))/2 - 1.5, // −1.5 … 1.5
	}, rng.New(rng.DeriveSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	nServers := 2 + int(seed%4)
	caps := make([]float64, nServers)
	bws := make([]float64, nServers)
	for i := range caps {
		caps[i] = 1e6
		bws[i] = 30 + float64((seed>>3)%4)*15 // 30–75 Mb/s
	}
	lay, err := placement.Build(placement.Even{}, cat, 2.0, caps, rng.New(rng.DeriveSeed(seed, 2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ServerBandwidth: bws,
		ViewRate:        3,
		CheckInvariants: true,
	}
	if staging {
		cfg.Workahead = true
		cfg.BufferCapacity = cat.AvgSize() * 0.2
		cfg.ReceiveCap = 30
	}
	if migration {
		cfg.Migration = MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1}
	}
	total := 0.0
	for _, b := range bws {
		total += b
	}
	rate, err := workload.CalibratedRate(cat, total, 1)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(cat, rate, rng.New(rng.DeriveSeed(seed, 3)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, cat, lay, gen)
	if err != nil {
		t.Fatal(err)
	}
	return e, total
}

// TestRandomSimsRespectInvariants runs randomized mini-simulations with
// per-event invariant checking on (any violation panics inside Step).
// It also verifies the global accounting identities:
//
//	arrivals  = accepted + rejected
//	delivered = accepted bytes (exactly, once drained with no failures)
//	completions = accepted
func TestRandomSimsRespectInvariants(t *testing.T) {
	prop := func(seedRaw uint16, staging, migration bool) bool {
		e, _ := buildRandomSim(t, uint64(seedRaw)+1, staging, migration)
		m, err := e.Run(2 * 3600)
		if err != nil {
			return false
		}
		if m.Arrivals != m.Accepted+m.Rejected {
			return false
		}
		if m.Completions != m.Accepted {
			return false
		}
		return approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStagingNeverHurtsUtilization checks the paper's core monotonicity
// on random workloads: adding client staging can only increase (or
// leave unchanged) the number of accepted requests, since early
// finishes free slots strictly sooner.
func TestStagingNeverHurtsUtilization(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		base, _ := buildRandomSim(t, seed, false, false)
		staged, _ := buildRandomSim(t, seed, true, false)
		mb, err := base.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := staged.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		if mb.Arrivals != ms.Arrivals {
			t.Fatalf("seed %d: workloads diverged (%d vs %d arrivals)", seed, mb.Arrivals, ms.Arrivals)
		}
		// Not a theorem per-sample-path (an early acceptance can shift
		// later ones), so allow a whisker of slack but demand the trend.
		if float64(ms.Accepted) < float64(mb.Accepted)*0.99 {
			t.Errorf("seed %d: staging reduced acceptances %d → %d", seed, mb.Accepted, ms.Accepted)
		}
	}
}

// TestDisablingStagingNeverDecreasesRejections is the metamorphic twin
// of TestStagingNeverHurtsUtilization: on the identical arrival stream,
// taking staging away can only reject more requests (or the same
// number), never fewer. Phrasing the property in terms of rejections
// catches a different failure mode — an engine that inflated Accepted
// while also inflating Arrivals would pass the acceptance check but
// fail this one.
func TestDisablingStagingNeverDecreasesRejections(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		staged, _ := buildRandomSim(t, seed, true, false)
		bare, _ := buildRandomSim(t, seed, false, false)
		ms, err := staged.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := bare.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		if mb.Arrivals != ms.Arrivals {
			t.Fatalf("seed %d: workloads diverged (%d vs %d arrivals)", seed, mb.Arrivals, ms.Arrivals)
		}
		// Same slack rationale as the acceptance-side test: the property
		// holds in expectation, not per sample path.
		slack := int64(float64(mb.Arrivals) * 0.01)
		if mb.Rejected < ms.Rejected-slack {
			t.Errorf("seed %d: disabling staging decreased rejections %d → %d",
				seed, ms.Rejected, mb.Rejected)
		}
	}
}

// TestMigrationNeverHurtsAcceptance mirrors the DRM claim.
func TestMigrationNeverHurtsAcceptance(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		base, _ := buildRandomSim(t, seed, false, false)
		migr, _ := buildRandomSim(t, seed, false, true)
		mb, err := base.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := migr.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		if float64(mm.Accepted) < float64(mb.Accepted)*0.99 {
			t.Errorf("seed %d: DRM reduced acceptances %d → %d", seed, mb.Accepted, mm.Accepted)
		}
	}
}

// TestEngineDeterminism re-runs identical configurations and demands
// bit-identical metrics.
func TestEngineDeterminism(t *testing.T) {
	for _, mode := range []struct{ staging, migration bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	} {
		a, _ := buildRandomSim(t, 42, mode.staging, mode.migration)
		b, _ := buildRandomSim(t, 42, mode.staging, mode.migration)
		ma, err := a.Run(3600)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.Run(3600)
		if err != nil {
			t.Fatal(err)
		}
		if *ma != *mb {
			t.Errorf("mode %+v: metrics diverged:\n%+v\n%+v", mode, *ma, *mb)
		}
	}
}

// TestHopsNeverExceedBudget samples in-flight requests mid-run.
func TestHopsNeverExceedBudget(t *testing.T) {
	e, _ := buildRandomSim(t, 77, true, true)
	if err := e.Start(2 * 3600); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for e.Step() {
		steps++
		if steps%500 == 0 {
			for _, r := range e.Requests() {
				if r.Hops > 1 {
					t.Fatalf("request %d has %d hops with MaxHops=1", r.ID, r.Hops)
				}
			}
		}
	}
	if steps == 0 {
		t.Fatal("simulation processed no events")
	}
}

// TestUtilizationBounded sanity-checks the headline metric on stressed
// random runs: it must lie in (0, 1.1] (slightly above 1 is possible
// because accepted streams may drain past the horizon).
func TestUtilizationBounded(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		e, total := buildRandomSim(t, seed, seed%2 == 0, seed%3 == 0)
		m, err := e.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		u := m.Utilization(total, 2*3600)
		if u <= 0 || u > 1.1 {
			t.Errorf("seed %d: utilization %v out of range", seed, u)
		}
	}
}
