package core

import "math"

// Dynamic replication: the "more resource intensive solution" the paper
// contrasts DRM against in Section 3.1 ("perform dynamic replication of
// the requested object on another server where resources can be made
// available"), in the spirit of the dynamic segment-replication and
// load-management schemes it cites ([9], [26]).
//
// When a request is rejected (every holder full and DRM, if enabled,
// found no chain), the controller starts copying the video from one of
// its holders to a server that does not hold it and has storage room.
// The copy consumes *source transmission bandwidth* — spare bandwidth
// after the minimum-flow guarantee, before client workahead, capped at
// CopyRateCap — so replication competes with staging for the same
// resource, which is exactly the trade-off the experiment measures.
// When the copy completes, the target becomes a holder and serves
// future requests; the originally rejected request is not revived.

// ReplicationConfig controls dynamic replication.
type ReplicationConfig struct {
	// Enabled turns replication on.
	Enabled bool

	// CopyRateCap bounds the bandwidth one copy job consumes on its
	// source, in Mb/s. Zero means twice the view rate.
	CopyRateCap float64

	// PerSourceLimit bounds concurrent copy jobs per source server.
	// Zero means one.
	PerSourceLimit int
}

// copyJob is an in-flight replica transfer, accounted on its source
// server's bandwidth.
type copyJob struct {
	video  int32
	source int32
	target int32
	size   float64
	sent   float64
	rate   float64
	last   float64 // time sent was last synced

	// wakeKey is the job's stored wake key — its projected completion,
	// written by allocateCopies each allocation round on the source
	// (+Inf while unfed). Copy jobs are few, so their keys stay on the
	// job rather than in the source's lane arrays; the lane's
	// maintained min folds them in (see wake.go).
	wakeKey float64
}

// syncTo advances the transfer to time t.
func (c *copyJob) syncTo(t float64) {
	if t <= c.last {
		return
	}
	if c.rate > 0 {
		c.sent += c.rate * (t - c.last)
		if c.sent > c.size {
			c.sent = c.size
		}
	}
	c.last = t
}

// done reports whether the transfer is complete.
func (c *copyJob) done() bool { return c.size-c.sent <= dataEps }

// copyRateCap returns the per-job bandwidth cap with its default.
func (e *Engine) copyRateCap() float64 {
	if c := e.cfg.Replication.CopyRateCap; c > 0 {
		return c
	}
	return 2 * e.cfg.ViewRate
}

// perSourceLimit returns the concurrent-copy bound with its default.
func (e *Engine) perSourceLimit() int {
	if l := e.cfg.Replication.PerSourceLimit; l > 0 {
		return l
	}
	return 1
}

// holders returns the servers currently holding a replica of video v:
// the static layout plus any replicas created at runtime.
func (e *Engine) holders(v int) []int32 {
	if extra, ok := e.extraHolders[int32(v)]; ok {
		return extra
	}
	return e.layout.Holders(v)
}

// holds reports whether server s currently holds a replica of video v.
func (e *Engine) holds(v, s int) bool {
	for _, h := range e.holders(v) {
		if int(h) == s {
			return true
		}
	}
	return false
}

// startReplication tries to begin copying video v to a new server. It
// is called after a rejection; failures to find a source or target are
// silent (the next rejection will retry).
func (e *Engine) startReplication(v int32, t float64) {
	if e.copying[v] {
		// A copy of this video is already in flight; this rejection adds
		// no new replica but the deferral is accounted, not silent.
		e.metrics.ReplicationsDeferred++
		return
	}
	// Source: a live holder with copy capacity, least busy first.
	var src *server
	for _, h := range e.holders(int(v)) {
		s := e.servers[h]
		if s.failed || len(s.copies) >= e.perSourceLimit() {
			continue
		}
		if src == nil || s.load() < src.load() || (s.load() == src.load() && s.id < src.id) {
			src = s
		}
	}
	if src == nil {
		e.metrics.ReplicationsDeferred++ // no live holder can source a copy
		return
	}
	// Target: a live non-holder with storage room, least loaded first.
	size := e.cat.Video(int(v)).Size
	var dst *server
	for _, s := range e.servers {
		if s.failed || e.holds(int(v), int(s.id)) || e.targetedBy(v, s.id) {
			continue
		}
		if cap := e.storageCap(int(s.id)); cap > 0 && e.storageUsed(int(s.id))+size > cap {
			continue
		}
		if dst == nil || s.load() < dst.load() || (s.load() == dst.load() && s.id < dst.id) {
			dst = s
		}
	}
	if dst == nil {
		e.metrics.ReplicationsDeferred++ // no eligible target with room
		return
	}
	src.syncAll(t)
	job := &copyJob{video: v, source: src.id, target: dst.id, size: size, last: t, wakeKey: math.Inf(1)}
	src.copies = append(src.copies, job)
	if e.copying == nil {
		e.copying = make(map[int32]bool)
	}
	e.copying[v] = true
	e.metrics.ReplicationsStarted++
	e.reschedule(src, t)
}

// targetedBy reports whether some in-flight copy already targets server
// s with video v (prevents duplicate replicas racing).
func (e *Engine) targetedBy(v, s int32) bool {
	for _, srv := range e.servers {
		for _, c := range srv.copies {
			if c.video == v && c.target == s {
				return true
			}
		}
	}
	return false
}

// storageCap returns server s's storage capacity in Mb (0 = unbounded).
func (e *Engine) storageCap(s int) float64 {
	if len(e.cfg.ServerStorage) == 0 {
		return 0
	}
	return e.cfg.ServerStorage[s]
}

// storageUsed returns server s's storage consumption: the static layout
// plus runtime replicas, unless a cold recovery wiped the server — then
// only replicas installed since the wipe count.
func (e *Engine) storageUsed(s int) float64 {
	if e.staticWiped != nil && e.staticWiped[s] {
		return e.extraUsed[s]
	}
	return e.layout.Used(s) + e.extraUsed[s]
}

// finishCopy installs the completed replica and retires the job.
func (e *Engine) finishCopy(s *server, c *copyJob, t float64) {
	// Remove from the source's job list; its stored wake key goes with
	// it, so the source's wake index must be repaired before reuse.
	for i, x := range s.copies {
		if x == c {
			s.copies[i] = s.copies[len(s.copies)-1]
			s.copies[len(s.copies)-1] = nil
			s.copies = s.copies[:len(s.copies)-1]
			break
		}
	}
	s.ln.wakeDirty = true
	if e.shlog != nil {
		// The source's job list is shard-local, but installing the
		// replica rewrites the controller's holder map, storage ledger,
		// and the float ReplicatedMb sum — all parent-owned or
		// order-sensitive — so that half defers to the window commit.
		e.shlog.copiesDone = append(e.shlog.copiesDone, c)
		return
	}
	e.commitCopyDone(c, t)
}

// commitCopyDone is finishCopy's shared-state half: it retires the job
// from the in-flight set and installs the replica. Serial engines call
// it inline; sharded runs replay it at the window commit in global
// event order.
func (e *Engine) commitCopyDone(c *copyJob, t float64) {
	delete(e.copying, c.video)
	// Install the merged holder list.
	merged := append([]int32(nil), e.holders(int(c.video))...)
	merged = append(merged, c.target)
	if e.extraHolders == nil {
		e.extraHolders = make(map[int32][]int32)
	}
	e.extraHolders[c.video] = merged
	e.extraUsed[c.target] += c.size
	e.metrics.ReplicationsCompleted++
	e.metrics.ReplicatedMb += c.size
	if e.obs != nil {
		e.obs.OnReplicate(t, int(c.video), int(c.source), int(c.target))
	}
	if e.audit != nil {
		e.auditFail(e.audit.Replication(t, c.video, c.source, c.target, c.size))
	}
}

// abortCopies cancels every copy job sourced from or targeting a failed
// server.
func (e *Engine) abortCopies(failed *server) {
	// Jobs sourced here.
	for _, c := range failed.copies {
		delete(e.copying, c.video)
		e.metrics.ReplicationsAborted++
	}
	failed.copies = nil
	failed.ln.wakeDirty = true
	// Jobs targeting the failed server from elsewhere. Removing a job
	// removes its stored wake key, so each pruned source's wake index
	// goes dirty (its scheduled wake event stays valid — it just fires
	// at the aborted job's old key and reallocates, exactly as before).
	for _, s := range e.servers {
		if s == failed {
			continue
		}
		kept := s.copies[:0]
		for _, c := range s.copies {
			if c.target == failed.id {
				delete(e.copying, c.video)
				e.metrics.ReplicationsAborted++
				s.ln.wakeDirty = true
				continue
			}
			kept = append(kept, c)
		}
		for i := len(kept); i < len(s.copies); i++ {
			s.copies[i] = nil
		}
		s.copies = kept
	}
}
