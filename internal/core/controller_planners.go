package core

// Built-in DRM planners. planDirect and planChain are the planning
// primitives (moved here from migration.go; migration.go keeps the move
// mechanism — eligibility, buffer gating, execution); chainDFSPlanner
// wraps them to reproduce the pre-seam plan shape bit-for-bit.

func init() {
	RegisterPlanner(PlannerChainDFS, func() MigrationPlanner { return chainDFSPlanner{} })
	RegisterPlanner(PlannerDirectOnly, func() MigrationPlanner { return directOnlyPlanner{} })
}

// chainDFSPlanner is the default: a direct move when one exists, else a
// DFS over candidate targets that frees one of them first.
type chainDFSPlanner struct{}

func (chainDFSPlanner) Name() string { return PlannerChainDFS }

func (chainDFSPlanner) Plan(e *Engine, s *server, now float64, depth int, visited []bool) []move {
	return e.planChain(s, now, depth, visited)
}

// directOnlyPlanner plans single moves only. It answers only depth 1 —
// iterative deepening would re-ask the same question at every deeper
// budget, and the answer cannot change.
type directOnlyPlanner struct{}

func (directOnlyPlanner) Name() string { return PlannerDirectOnly }

func (directOnlyPlanner) Plan(e *Engine, s *server, now float64, depth int, visited []bool) []move {
	if depth != 1 {
		return nil
	}
	s.syncAll(now) // migratable's switch-delay check reads buffer levels
	if m, ok := e.planDirect(s, now); ok {
		return []move{m}
	}
	return nil
}

// planDirect finds the best single migration that frees a slot on s:
// among s's migratable requests with a free-slot target, it picks the
// pair whose target has the lowest load (ties: lowest request id, then
// lowest target id), mirroring the least-loaded assignment rule.
func (e *Engine) planDirect(s *server, now float64) (move, bool) {
	var best move
	bestLoad := -1
	for _, r := range s.active {
		if !e.migratable(r, now, false) {
			continue
		}
		for _, h := range e.holders(int(r.video)) {
			t := e.servers[h]
			if e.cfg.Intermittent {
				t.syncAll(now) // canAccept reads buffer levels
			}
			if !e.canAccept(t, now) || !e.eligibleTarget(r, t, now) {
				continue
			}
			if bestLoad == -1 || t.load() < bestLoad ||
				(t.load() == bestLoad && (r.id < best.r.id || (r.id == best.r.id && t.id < best.to.id))) {
				best = move{r: r, to: t}
				bestLoad = t.load()
			}
		}
	}
	return best, bestLoad >= 0
}

// planChain tries to free one slot on s using at most depthLeft
// migrations. It returns the moves in execution order (deepest first).
// visited marks servers already being freed higher up the chain, to
// prevent cycles.
func (e *Engine) planChain(s *server, now float64, depthLeft int, visited []bool) []move {
	if depthLeft <= 0 {
		return nil
	}
	// Bring fluid state up to date before reading buffers: migratable's
	// switch-delay check depends on each request's current buffer level.
	s.syncAll(now)
	if m, ok := e.planDirect(s, now); ok {
		return []move{m}
	}
	if depthLeft == 1 {
		return nil
	}
	// No direct target has room: try to free a slot on some candidate
	// target first, then move one of s's requests onto it.
	for _, r := range s.active {
		if !e.migratable(r, now, false) {
			continue
		}
		for _, h := range e.holders(int(r.video)) {
			t := e.servers[h]
			if visited[t.id] || !e.eligibleTarget(r, t, now) {
				continue
			}
			visited[t.id] = true
			if sub := e.planChain(t, now, depthLeft-1, visited); sub != nil {
				return append(sub, move{r: r, to: t})
			}
			// Leave visited set: freeing t failed and cannot succeed
			// via another path within this chain either.
		}
	}
	return nil
}
