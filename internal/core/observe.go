package core

import "semicont/internal/stats"

// ObsKind indexes the engine's streaming observation channels. Every
// channel is always bound to an accumulator — stats.Discard by default —
// so the hot paths record unconditionally and never branch on whether
// statistics are enabled. Observations are pure accumulation: they read
// simulation state but never feed back into it, so enabling them cannot
// perturb a run.
type ObsKind uint8

const (
	// ObsWait is the admission wait in seconds: 0 for requests admitted
	// on arrival, the queueing delay for requests admitted off the
	// retry queue. Rejected and reneged requests never start playback
	// and are not observed here (they appear in ObsRetrySojourn and the
	// rejection counters instead).
	ObsWait ObsKind = iota

	// ObsRetrySojourn is the seconds a queued request spent in the
	// admission retry queue, observed when the episode ends — whether
	// by admission or by reneging.
	ObsRetrySojourn

	// ObsGlitch is a viewer-visible playback interruption in seconds,
	// observed at detection time: for a degraded-mode stream dropped
	// with a dry buffer, the unplayed remainder of the video; for an
	// intermittent-feed underrun, the catch-up deficit when first seen
	// (zero when the pause itself is the detection point).
	ObsGlitch

	// ObsMigrations is a stream's lifetime migration count, observed
	// once when the stream leaves the cluster (finish or drop).
	ObsMigrations

	// ObsPark is the seconds a stream spent parked in degraded-mode
	// playback, observed when the episode ends (readmission or
	// buffer-dry drop).
	ObsPark

	// ObsEdgeWait is the wait in seconds before an edge-served prefix
	// starts playing: 0 for edge hits admitted on arrival (including
	// full-cache serves and batched joins), the queueing delay for
	// edge hits admitted off the retry queue. Cache misses are not
	// observed here — they are ordinary cluster admissions.
	ObsEdgeWait

	// NumObsKinds sizes per-channel arrays.
	NumObsKinds = int(ObsEdgeWait) + 1
)

// SetAccumulator binds an accumulator to one observation channel. Call
// it after Reset and before Run; nil restores the discard sink. Reset
// rebinds every channel to stats.Discard, so pooled engines never leak
// a previous run's accumulators.
func (e *Engine) SetAccumulator(k ObsKind, a stats.Accumulator) {
	if a == nil {
		a = stats.Discard
	}
	e.obsAcc[k] = a
}

// observe records one observation on channel k.
func (e *Engine) observe(k ObsKind, x float64) { e.obsAcc[k].Observe(x) }

// discardObs rebinds every channel to the discard sink.
func (e *Engine) discardObs() {
	for i := range e.obsAcc {
		e.obsAcc[i] = stats.Discard
	}
}
