package core

// Fault tolerance beyond the paper's single-failure experiment: server
// recovery (warm or cold), a bounded admission retry queue, and
// degraded-mode playback for streams orphaned by a failure.
//
// Recovery un-fails a server. A warm recovery returns with storage
// intact; a cold recovery wipes it — the server's replicas (static and
// dynamic) are lost, and it re-enters the replica set only through the
// dynamic-replication path, which sees the wiped server as an empty,
// eligible copy target.
//
// The retry queue models client patience: a rejected arrival waits and
// re-attempts admission every Backoff seconds until Patience expires,
// at which point it reneges (accounted separately from up-front
// rejections). The queue is bounded; overflow rejects immediately.
//
// Degraded-mode playback models the client staging buffer surviving its
// server: when a stream on a failing server cannot be rescued via
// migration, it keeps playing from buffered data at the view rate and
// periodically tries to reconnect to a live replica holder. Only when
// the buffer runs dry with nowhere to reconnect does the viewer see a
// glitch and the stream count as dropped.

// retryEntry is one rejected arrival waiting in the admission retry
// queue. The client capabilities drawn at arrival are preserved so a
// later admission behaves exactly as an immediate one would have.
type retryEntry struct {
	id       int64
	video    int32
	class    int32 // traffic class (-1 on classless runs)
	bufCap   float64
	recvCap  float64
	prefix   float64 // edge-served prefix Mb, pinned at arrival (cache state moves on)
	arrived  float64 // arrival time, for the sojourn observation
	deadline float64 // reneging time: arrival + the class's patience
}

// Config accessors with their documented defaults.

func (e *Engine) retryMaxQueue() int {
	if q := e.cfg.Retry.MaxQueue; q > 0 {
		return q
	}
	return 64
}

func (e *Engine) retryPatience() float64 {
	if p := e.cfg.Retry.Patience; p > 0 {
		return p
	}
	return 300
}

func (e *Engine) retryBackoff() float64 {
	if b := e.cfg.Retry.Backoff; b > 0 {
		return b
	}
	return 10
}

func (e *Engine) degradedInterval() float64 {
	if d := e.cfg.Degraded.RetryInterval; d > 0 {
		return d
	}
	return 5
}

// handleRecovery returns a failed server to service. Cold recoveries
// additionally wipe its storage. The server's wake version was bumped
// at failure, so no stale events can fire; it starts idle and picks up
// load from future admissions and park reconnects.
func (e *Engine) handleRecovery(s *server, t float64, cold bool) {
	if !s.failed {
		return
	}
	s.failed = false
	s.version++
	e.metrics.Recoveries++
	if cold {
		e.metrics.ColdRecoveries++
		e.wipeStorage(s)
	}
	if e.obs != nil {
		e.obs.OnRecovery(t, int(s.id), cold)
	}
	if e.audit != nil {
		e.auditFail(e.audit.Recovery(t, s.id, cold))
	}
}

// wipeStorage removes server s from every replica set and zeroes its
// storage accounting. Static holdings are masked by materializing the
// runtime overlay (holders() consults extraHolders first), and
// staticWiped makes storageUsed ignore the static layout so the wiped
// server is an empty replication target.
func (e *Engine) wipeStorage(s *server) {
	if e.extraHolders == nil {
		e.extraHolders = make(map[int32][]int32)
	}
	for v := 0; v < e.cat.Len(); v++ {
		hs := e.holders(v)
		has := false
		for _, h := range hs {
			if h == s.id {
				has = true
				break
			}
		}
		if !has {
			continue
		}
		kept := make([]int32, 0, len(hs)-1)
		for _, h := range hs {
			if h != s.id {
				kept = append(kept, h)
			}
		}
		e.extraHolders[int32(v)] = kept
	}
	e.extraUsed[s.id] = 0
	if e.staticWiped == nil {
		e.staticWiped = make([]bool, len(e.servers))
	}
	e.staticWiped[s.id] = true
}

// enqueueRetry parks a rejected arrival in the retry queue and
// schedules its first re-attempt. The caller has already checked the
// queue bound. Patience is the traffic class's (premium tiers wait
// longer), the global default on classless runs.
func (e *Engine) enqueueRetry(v int, t, bufCap, recvCap float64, class int32, prefix float64) {
	if e.retryQ == nil {
		e.retryQ = make(map[int64]*retryEntry)
	}
	e.nextRetryID++
	en := &retryEntry{
		id: e.nextRetryID, video: int32(v), class: class,
		bufCap: bufCap, recvCap: recvCap, prefix: prefix,
		arrived:  t,
		deadline: t + e.classPatience(class),
	}
	e.retryQ[en.id] = en
	e.metrics.RetriesQueued++
	e.pushRetry(en, t)
}

// pushRetry schedules the entry's next admission attempt: one backoff
// ahead, clamped to the reneging deadline so patience is exact.
func (e *Engine) pushRetry(en *retryEntry, t float64) {
	next := t + e.retryBackoff()
	if next > en.deadline {
		next = en.deadline
	}
	e.push(next, event{kind: evRetry, req: en.id})
}

// handleRetry re-attempts admission for a queued request. Queued
// requests do not patch-join: the tap window is measured from the
// feeder's start, and a client that already waited would rarely fit it.
func (e *Engine) handleRetry(id int64, t float64) {
	en, ok := e.retryQ[id]
	if !ok {
		return
	}
	v := int(en.video)
	if e.admit(v, t, en.bufCap, en.recvCap, en.class, en.prefix) {
		delete(e.retryQ, id)
		e.metrics.RetriedAdmissions++
		e.observe(ObsWait, t-en.arrived)
		e.observe(ObsRetrySojourn, t-en.arrived)
		if en.prefix > 0 {
			e.observe(ObsEdgeWait, t-en.arrived)
		}
		return
	}
	if t+timeEps >= en.deadline {
		delete(e.retryQ, id)
		e.metrics.Reneged++
		if en.class >= 0 {
			e.metrics.ClassReneged[en.class]++
		}
		e.observe(ObsRetrySojourn, t-en.arrived)
		if e.obs != nil {
			e.obs.OnReject(t, v)
		}
		return
	}
	e.pushRetry(en, t)
}

// park moves a stream that survived its server's failure into
// degraded-mode playback: detached from the cluster, rate zero, playing
// from its client buffer (detach stored the lane state into the carry
// fields, which hold the fluid state while parked). The caller has
// verified eligibility.
func (e *Engine) park(r *request, s *server, t float64) {
	s.detach(r)
	r.carryRate = 0
	r.parked = true
	r.parkStart = t
	if e.parked == nil {
		e.parked = make(map[int64]*request)
	}
	e.parked[r.id] = r
	e.metrics.DegradedParked++
	e.nextParkTick(r, t)
}

// nextParkTick schedules the parked stream's next reconnect attempt:
// one retry interval ahead, pulled in to the buffer-dry instant so the
// glitch is observed exactly when playback stalls. Like server wakes,
// stale ticks are invalidated by a version bump rather than removal.
func (e *Engine) nextParkTick(r *request, t float64) {
	r.parkVer++
	next := t + e.degradedInterval()
	if !r.pausedView {
		if dry := t + r.bufferAt(t, e.cfg.ViewRate)/e.cfg.ViewRate; dry < next {
			next = dry
		}
	}
	e.push(next, event{kind: evParkTick, req: r.id, version: r.parkVer})
}

// handleParkTick is a parked stream's reconnect attempt. Readmission is
// client-initiated (the stream reconnects through the admission
// selector — no migration machinery, no hops charge, no DRM fallback),
// tried before the dryness check so a stream reconnecting exactly at
// buffer exhaustion resumes seamlessly.
func (e *Engine) handleParkTick(id int64, ver uint64, t float64) {
	r, ok := e.parked[id]
	if !ok || ver != r.parkVer {
		return // stale tick superseded by a later park event
	}
	r.syncTo(t)
	bview := e.cfg.ViewRate
	// Reconnection goes through the request's class selector, which
	// re-checks feasibility against each candidate's *effective*
	// capacity — a browned-out holder with its reduced slots full is
	// skipped exactly like a failed one.
	best := e.classSelector(r.class).Select(e, int(r.video), t)
	if best != nil {
		d := e.cfg.Migration.SwitchDelay
		if d <= 0 || r.bufferAt(t, bview) >= d*bview-dataEps {
			best.syncAll(t)
			delete(e.parked, id)
			r.parked = false
			r.parkVer++
			best.attach(r)
			if d > 0 {
				best.setSuspend(r, t+d)
			}
			e.metrics.DegradedResumed++
			e.observe(ObsPark, t-r.parkStart)
			e.reschedule(best, t)
			return
		}
	}
	if r.bufferAt(t, bview) <= dataEps && !r.pausedView {
		// Buffer dry with nowhere to reconnect: the viewer sees the
		// interruption and the stream is lost.
		delete(e.parked, id)
		r.parked = false
		r.glitched = true
		e.metrics.DegradedGlitches++
		e.metrics.DroppedStreams++
		e.metrics.DeliveredBytes += r.carrySent
		if e.cfg.Edge.Nodes > 0 {
			e.metrics.ClusterEgressMb += r.carrySent
		}
		e.observe(ObsPark, t-r.parkStart)
		e.observe(ObsGlitch, (r.size-r.viewedAt(t, bview))/bview)
		e.observe(ObsMigrations, float64(r.hops))
		e.recycle(r)
		return
	}
	e.nextParkTick(r, t)
}
