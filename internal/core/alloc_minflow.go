package core

// Minimum-flow allocation (Sections 3.3 and Figure 2 of the paper):
// every unfinished, non-suspended request is guaranteed at least the
// view bandwidth b_view, so admitted playback can never glitch. The
// three minimum-flow policies (EFTF, LFTF, even-split) share this pass
// and differ only in how the leftover bandwidth is staged ahead — see
// their files and spare.go.

// minFlowRates assigns the minimum-flow guarantee on server s at time t
// and returns the spare bandwidth left over. All requests in s.active
// must be synced to t.
func (e *Engine) minFlowRates(s *server, t float64) float64 {
	avail := s.bandwidth
	bview := e.cfg.ViewRate
	for _, r := range s.active {
		if r.suspended(t) || e.pausedAndFull(r, t) {
			// Mid-switch streams receive nothing; a paused viewer with
			// a full buffer has nowhere to put data, so the minimum-flow
			// guarantee is moot until it resumes (an evResume event
			// triggers reallocation).
			r.rate = 0
			continue
		}
		r.rate = bview
		avail -= bview
	}
	return avail
}
