package core

import "math"

// Minimum-flow allocation (Sections 3.3 and Figure 2 of the paper):
// every unfinished, non-suspended request is guaranteed at least the
// view bandwidth b_view, so admitted playback can never glitch. The
// three minimum-flow policies (EFTF, LFTF, even-split) share this pass
// and differ only in how the leftover bandwidth is staged ahead — see
// their files and spare.go.

// minFlowRates assigns the minimum-flow guarantee on server s at time t
// and returns the spare bandwidth left over. All requests in s.active
// must be synced to t. It opens the server's wake round and writes
// every slot's key as it assigns the rate: a later spare feed rewrites
// the keys of the slots it raises (see wake.go).
func (e *Engine) minFlowRates(s *server, t float64) float64 {
	avail := s.bandwidth
	bview := e.cfg.ViewRate
	ln := &s.ln
	ln.beginRound()
	// The round touches every slot exactly once, so the min is tracked in
	// locals and committed wholesale instead of paying setWake's fold per
	// slot; the spare feeds that follow rewrite keys through setWake,
	// which keeps the committed min valid (a raise only lowers keys).
	// Reslicing to rate's length drops the per-element bounds checks.
	min, arg := math.Inf(1), wakeArgNone
	rateA := ln.rate
	suspA := ln.susp[:len(rateA)]
	wakeA := ln.wake[:len(rateA)]
	sentA := ln.sent[:len(rateA)]
	sizeA := ln.size[:len(rateA)]
	for i := range rateA {
		var k float64
		if suspA[i] > t+timeEps {
			// Mid-switch streams receive nothing until the blackout ends.
			rateA[i] = 0
			k = suspA[i]
		} else if r := s.active[i]; r.pausedView && s.bufferOf(i, t, bview) >= r.bufCap-dataEps {
			// A paused viewer with a full buffer has nowhere to put
			// data, so the minimum-flow guarantee is moot until it
			// resumes (an evResume event triggers reallocation).
			rateA[i] = 0
			k = math.Inf(1)
		} else {
			rateA[i] = bview
			avail -= bview
			// wakeKeyServing at rate = bview, manually unrolled: the call
			// exceeds the inline budget and this loop pays it per slot.
			// Identical operations in the same order — the keys must stay
			// bit-identical to wakeKeyServing's (TestWakeIndexMatchesScan
			// and the wake-exact audit rule pin the equivalence).
			sent := sentA[i]
			rem := sizeA[i] - sent
			if rem < 0 {
				rem = 0
			}
			k = t + rem/bview
			if fill := bview - r.drainRate(bview); fill > dataEps && r.bufCap >= 0 {
				buf := sent - r.viewedAt(t, bview)
				if buf < 0 {
					buf = 0
				}
				room := r.bufCap - buf
				if room < 0 {
					room = 0
				}
				if tb := t + room/fill; tb < k {
					k = tb
				}
			}
		}
		wakeA[i] = k
		if k < min {
			min, arg = k, int32(i)
		}
	}
	ln.wakeMin, ln.wakeArg = min, arg
	return avail
}
