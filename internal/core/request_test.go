package core

import (
	"testing"
	"testing/quick"
)

func TestRequestSync(t *testing.T) {
	r := &request{size: 3600, start: 0, carryLast: 0, carryRate: 6}
	r.syncTo(100)
	if !approx(r.carrySent, 600, 1e-9) {
		t.Errorf("sent = %v, want 600", r.carrySent)
	}
	// Sync is idempotent and never moves backwards.
	r.syncTo(100)
	r.syncTo(50)
	if !approx(r.carrySent, 600, 1e-9) {
		t.Errorf("sent after re-sync = %v, want 600", r.carrySent)
	}
	if r.carryLast != 100 {
		t.Errorf("last = %v, want 100", r.carryLast)
	}
}

func TestRequestSyncClampsAtSize(t *testing.T) {
	r := &request{size: 100, carryRate: 10, carryLast: 0}
	r.syncTo(1000)
	if r.carrySent != 100 {
		t.Errorf("sent = %v, want clamp at size 100", r.carrySent)
	}
	if !r.finished() {
		t.Error("request not finished after transmitting everything")
	}
}

func TestViewedAt(t *testing.T) {
	r := &request{size: 300, start: 10, viewSyncT: 10}
	const bview = 3.0
	cases := []struct{ t, want float64 }{
		{5, 0},     // before start
		{10, 0},    // at start
		{20, 30},   // mid-play
		{110, 300}, // exactly done
		{500, 300}, // capped at size
	}
	for _, c := range cases {
		if got := r.viewedAt(c.t, bview); !approx(got, c.want, 1e-9) {
			t.Errorf("viewedAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestBufferAt(t *testing.T) {
	const bview = 3.0
	r := &request{size: 3000, start: 0, carryLast: 0, carryRate: 9}
	r.syncTo(100) // sent 900, viewed 300
	if got := r.bufferAt(100, bview); !approx(got, 600, 1e-9) {
		t.Errorf("buffer = %v, want 600", got)
	}
}

func TestBufferNeverNegative(t *testing.T) {
	const bview = 3.0
	r := &request{size: 3000, start: 0, carryLast: 0, carryRate: 3}
	r.syncTo(10)
	// sent == viewed: float noise must not yield a negative buffer.
	if got := r.bufferAt(10, bview); got < 0 {
		t.Errorf("buffer = %v < 0", got)
	}
}

func TestRemainingAndFinished(t *testing.T) {
	r := &request{size: 100, carrySent: 40}
	if got := r.remaining(); got != 60 {
		t.Errorf("remaining() = %v, want 60", got)
	}
	if r.finished() {
		t.Error("finished() with 60 Mb left")
	}
	r.carrySent = 100 - dataEps/2
	if !r.finished() {
		t.Error("finished() false within tolerance of completion")
	}
}

func TestDeadline(t *testing.T) {
	r := &request{size: 3600, start: 50, viewSyncT: 50}
	if got := r.deadline(3); got != 1250 {
		t.Errorf("deadline = %v, want 1250", got)
	}
}

func TestSuspended(t *testing.T) {
	r := &request{carrySusp: 100}
	if !r.suspended(50) {
		t.Error("suspended(50) = false with suspendedUntil=100")
	}
	if r.suspended(100) {
		t.Error("suspended(100) = true at the resume instant")
	}
	if r.suspended(150) {
		t.Error("suspended(150) = true after resume")
	}
}

// Property: for any play history with rate ≥ b_view, the fluid
// invariants hold: 0 ≤ viewed ≤ sent ≤ size.
func TestFluidInvariantProperty(t *testing.T) {
	const bview = 3.0
	prop := func(rateRaw, sizeRaw uint16, steps []uint8) bool {
		rate := bview + float64(rateRaw%100)
		size := 300 + float64(sizeRaw%10000)
		r := &request{size: size, start: 0, carryLast: 0, carryRate: rate}
		now := 0.0
		for _, s := range steps {
			now += float64(s) / 7
			r.syncTo(now)
			viewed := r.viewedAt(now, bview)
			if viewed < 0 || viewed > r.carrySent+dataEps || r.carrySent > r.size+dataEps {
				return false
			}
			if r.bufferAt(now, bview) < 0 {
				return false
			}
			if r.finished() {
				r.carryRate = 0
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
