package core

// The controller layer: the paper separates the distribution controller
// (admission control and dynamic request migration, Sections 3.1–3.2)
// from the data servers. This file is that seam. Two policy interfaces —
// ServerSelector (which feasible replica holder admits a new stream) and
// MigrationPlanner (which chain of moves frees a slot when none can) —
// are resolved from named registries exactly like BandwidthAllocator,
// so alternative controllers are one-file additions selected by name
// via Config.Selector / Config.Planner (threaded from Policy.Selector /
// Policy.Planner).
//
// The engine keeps event dispatch and accounting; findAdmission and
// admitViaMigration below are the controller glue shared by arrivals,
// retry-queue re-attempts, and (selection only) parked-stream
// reconnects, so fault-tolerance behavior rides the same seam.

import (
	"fmt"
	"slices"
)

// ServerSelector is the admission-control policy seam: given a new
// stream's video, pick the server that admits it among the live replica
// holders that can accept one more stream, or nil when none can.
//
// Implementations live beside the engine in this package (they read
// per-server state directly, keeping the admission hot path free of
// per-candidate interface dispatch) and must be deterministic given the
// engine state and Config.SelectorSeed. In intermittent mode a selector
// must syncAll each candidate before testing it — canAccept reads
// buffer levels. Adding a selector is a one-file addition: implement
// the interface, call RegisterSelector from an init function, and
// select it by name via Config.Selector.
type ServerSelector interface {
	// Name returns the selector's registry name.
	Name() string

	// Select picks the admitting server for a new stream of video v at
	// time t, or nil when no feasible holder exists.
	Select(e *Engine, v int, t float64) *server
}

// MigrationPlanner is the DRM planning seam: given a full server s,
// produce a chain of at most depth moves that frees one admission slot
// on s, or nil when impossible. Moves are returned in execution order
// (deepest first). visited marks servers already being freed higher up
// the chain; a planner must respect it to prevent cycles and may mark
// servers it rules out.
type MigrationPlanner interface {
	// Name returns the planner's registry name.
	Name() string

	// Plan attempts to free one slot on s using at most depth moves.
	Plan(e *Engine, s *server, now float64, depth int, visited []bool) []move
}

// Registry names of the built-in controller policies.
const (
	// SelectorLeastLoaded assigns to the feasible replica holder with
	// the fewest unfinished streams (Section 3.2's assignment rule).
	// The default.
	SelectorLeastLoaded = "least-loaded"
	// SelectorFirstFit assigns to the first feasible holder in replica
	// order — the simplest possible controller.
	SelectorFirstFit = "first-fit"
	// SelectorMostHeadroom assigns to the feasible holder with the most
	// uncommitted bandwidth (capacity minus the minimum-flow commitment
	// of its unfinished streams), which differs from least-loaded only
	// on heterogeneous clusters.
	SelectorMostHeadroom = "most-headroom"
	// SelectorRandomFeasible assigns uniformly at random among the
	// feasible holders, seeded from Config.SelectorSeed (a split-RNG
	// stream, so runs stay bit-reproducible).
	SelectorRandomFeasible = "random-feasible"

	// PlannerChainDFS is the iterative-deepening DFS chain search: a
	// direct move when one exists, else recursively free a target
	// (depth > 1). The default; depth 1 reproduces the paper's single
	// migration per arrival.
	PlannerChainDFS = "chain-dfs"
	// PlannerDirectOnly plans single moves only: it never recurses, so
	// chains longer than one are never produced even when MaxChain
	// permits them.
	PlannerDirectOnly = "direct-only"
)

// selectorRegistry and plannerRegistry map registry names to factories.
// Factories (not instances) are registered because engines run
// concurrently and a policy may carry per-engine scratch or RNG state.
var (
	selectorRegistry = map[string]func() ServerSelector{}
	plannerRegistry  = map[string]func() MigrationPlanner{}
)

// RegisterSelector adds a named admission selector to the registry. It
// panics on an empty or duplicate name — registration is an init-time
// programming act, not a runtime input.
func RegisterSelector(name string, factory func() ServerSelector) {
	if name == "" {
		panic("core: RegisterSelector with empty name")
	}
	if factory == nil {
		panic("core: RegisterSelector with nil factory")
	}
	if _, dup := selectorRegistry[name]; dup {
		panic(fmt.Sprintf("core: selector %q registered twice", name))
	}
	selectorRegistry[name] = factory
}

// RegisterPlanner adds a named DRM planner to the registry, with the
// same contract as RegisterSelector.
func RegisterPlanner(name string, factory func() MigrationPlanner) {
	if name == "" {
		panic("core: RegisterPlanner with empty name")
	}
	if factory == nil {
		panic("core: RegisterPlanner with nil factory")
	}
	if _, dup := plannerRegistry[name]; dup {
		panic(fmt.Sprintf("core: planner %q registered twice", name))
	}
	plannerRegistry[name] = factory
}

// HasSelector reports whether a selector with the given name exists.
func HasSelector(name string) bool {
	_, ok := selectorRegistry[name]
	return ok
}

// HasPlanner reports whether a planner with the given name exists.
func HasPlanner(name string) bool {
	_, ok := plannerRegistry[name]
	return ok
}

// SelectorNames returns the registered selector names, sorted.
func SelectorNames() []string {
	names := make([]string, 0, len(selectorRegistry))
	for n := range selectorRegistry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// PlannerNames returns the registered planner names, sorted.
func PlannerNames() []string {
	names := make([]string, 0, len(plannerRegistry))
	for n := range plannerRegistry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// SelectorName returns the effective selector registry name for this
// configuration: Selector when set, otherwise the default.
func (c Config) SelectorName() string {
	if c.Selector != "" {
		return c.Selector
	}
	return SelectorLeastLoaded
}

// PlannerName returns the effective planner registry name for this
// configuration: Planner when set, otherwise the default.
func (c Config) PlannerName() string {
	if c.Planner != "" {
		return c.Planner
	}
	return PlannerChainDFS
}

// validateController cross-checks the controller names against the
// registries. A planner is only consulted when DRM runs, so naming one
// with migration disabled is a configuration contradiction, rejected
// rather than silently ignored.
func (c Config) validateController() error {
	if c.Selector != "" && !HasSelector(c.Selector) {
		return fmt.Errorf("core: unknown selector %q (have %v)", c.Selector, SelectorNames())
	}
	if c.Planner != "" {
		if !HasPlanner(c.Planner) {
			return fmt.Errorf("core: unknown planner %q (have %v)", c.Planner, PlannerNames())
		}
		if !c.Migration.Enabled {
			return fmt.Errorf("core: Planner %q configured while Migration is disabled", c.Planner)
		}
	}
	return nil
}

// selector returns the engine's admission selector, resolving it from
// the registry on first use — lazy for the same reason allocator() is:
// tests adjust cfg between NewEngine and the first event. Validate vets
// the name, so resolution cannot fail for a validated configuration.
func (e *Engine) selector() ServerSelector {
	if e.sel == nil {
		name := e.cfg.SelectorName()
		factory, ok := selectorRegistry[name]
		if !ok {
			panic(fmt.Sprintf("core: selector %q not registered", name))
		}
		e.sel = factory()
	}
	return e.sel
}

// planner returns the engine's DRM planner, resolved lazily like
// selector.
func (e *Engine) planner() MigrationPlanner {
	if e.planr == nil {
		name := e.cfg.PlannerName()
		factory, ok := plannerRegistry[name]
		if !ok {
			panic(fmt.Sprintf("core: planner %q not registered", name))
		}
		e.planr = factory()
	}
	return e.planr
}

// findAdmission locates a server for a new stream of video v: the
// selector's pick among feasible replica holders, else a server freed
// via dynamic request migration when configured. The selector is the
// request's traffic class's (the engine default for classless runs and
// classes without an override). The bool reports a DRM admission.
// Arrivals and retry-queue attempts share it.
func (e *Engine) findAdmission(v int, t float64, class int32) (*server, bool) {
	best := e.classSelector(class).Select(e, v, t)
	viaDRM := false
	if best == nil && e.cfg.Migration.Enabled {
		best, viaDRM = e.admitViaMigration(int32(v), t)
	}
	if best != nil && e.audit != nil {
		feasible := e.canAccept(best, t)
		if viaDRM && e.cfg.Intermittent {
			// A DRM plan frees a minimum-flow slot, but the intermittent
			// admission test can still count the server urgent-full —
			// over-subscribing it is exactly what intermittent mode
			// permits, so the claim reduces to liveness (the move and
			// chain taps audit the plan itself).
			feasible = !best.failed
		}
		e.auditFail(e.audit.Admission(t, int32(v), best.id, viaDRM, feasible))
	}
	return best, viaDRM
}

// admit runs the controller's admission decision for video v at time t
// and, on success, attaches a new stream with the given client
// capabilities and traffic class (-1 for classless runs) and does the
// shared success accounting (acceptance counters, observer callback,
// interaction draw, reschedule). prefix is the volume served by the
// arrival's edge node (0 without an edge hit): the cluster stream is
// the object's suffix, that much smaller and marked with its start
// offset. handleArrival and handleRetry wrap admit with their own
// failure paths.
func (e *Engine) admit(v int, t, bufCap, recvCap float64, class int32, prefix float64) bool {
	best, viaDRM := e.findAdmission(v, t, class)
	if best == nil {
		return false
	}
	best.syncAll(t)
	r := e.newRequest(v, t)
	if prefix > 0 {
		r.size -= prefix
		r.startOff = prefix
	}
	r.bufCap, r.recvCap = bufCap, recvCap
	r.class = class
	best.attach(r)
	e.metrics.Accepted++
	e.metrics.AcceptedBytes += r.size
	if class >= 0 {
		e.metrics.ClassAccepted[class]++
	}
	if prefix > 0 {
		e.metrics.EdgeHits++
		e.metrics.EdgeMb += prefix
		if e.audit != nil {
			e.auditFail(e.audit.EdgeServe(t, int32(v), prefix, 0, 0, r.size, r.size+prefix, false))
		}
	}
	if e.obs != nil {
		e.obs.OnAdmit(t, r.id, v, int(best.id), viaDRM)
	}
	e.scheduleInteraction(r, t)
	e.reschedule(best, t)
	return true
}

// admitViaMigration attempts to admit a request for video v at time now
// by migrating active requests. All replica holders of v are known to be
// full. On success it executes the plan and returns the freed server.
// Iterative deepening keeps chains as short as possible, so the paper's
// MaxChain=1 configuration performs exactly one migration per arrival.
func (e *Engine) admitViaMigration(v int32, now float64) (*server, bool) {
	holders := e.holders(int(v))
	maxChain := e.cfg.Migration.MaxChain
	planner := e.planner()
	for depth := 1; depth <= maxChain; depth++ {
		for _, h := range holders {
			s := e.servers[h]
			if s.failed {
				continue
			}
			for i := range e.visited {
				e.visited[i] = false
			}
			e.visited[s.id] = true
			plan := planner.Plan(e, s, now, depth, e.visited)
			if plan == nil {
				continue
			}
			e.executeMoves(plan, now, false)
			if e.audit != nil {
				e.auditFail(e.audit.Chain(now, len(plan)))
			}
			e.metrics.AdmissionsViaDRM++
			e.metrics.ChainLengthTotal += int64(len(plan))
			if len(plan) > e.metrics.MaxChainUsed {
				e.metrics.MaxChainUsed = len(plan)
			}
			return s, true
		}
	}
	return nil, false
}
