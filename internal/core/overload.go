package core

import "fmt"

// Traffic classes and graceful load shedding (see Config.Classes /
// Config.Shed). Classes partition the arrival stream into priority
// tiers: each arrival draws a class from its own split-RNG stream (one
// draw per arrival, admitted or not, so the stream stays aligned
// regardless of outcomes — the same discipline drawClientCaps follows),
// and the class picks the request's admission selector and retry
// patience. The shed controller sits in front of admission: at every
// arrival it re-evaluates instantaneous utilization and, at or above
// the watermark, rejects arrivals of every class but the highest before
// they reach the selector, the retry queue, or replication.

// drawTrafficClass draws the arriving request's traffic class, or -1
// when the run is classless. Classless runs make no draw at all, so
// enabling classes never perturbs any other random stream.
func (e *Engine) drawTrafficClass() int32 {
	if e.trafficAlias == nil {
		return -1
	}
	return int32(e.trafficAlias.Sample(e.trafficRNG))
}

// classSelector returns the admission selector for a traffic class:
// the class's named selector when it has one, the engine default
// otherwise (and always the default for classless runs, class < 0).
// Resolution is lazy per class, mirroring Engine.selector.
func (e *Engine) classSelector(class int32) ServerSelector {
	if class < 0 || e.cfg.Classes[class].Selector == "" {
		return e.selector()
	}
	if e.classSel[class] == nil {
		name := e.cfg.Classes[class].Selector
		factory, ok := selectorRegistry[name]
		if !ok {
			panic(fmt.Sprintf("core: selector %q not registered", name))
		}
		e.classSel[class] = factory()
	}
	return e.classSel[class]
}

// classPatience returns the retry patience for a traffic class: the
// class override when set, the global Retry.Patience default otherwise.
func (e *Engine) classPatience(class int32) float64 {
	if class >= 0 {
		if p := e.cfg.Classes[class].RetryPatience; p > 0 {
			return p
		}
	}
	return e.retryPatience()
}

// shedUtilization returns the cluster's instantaneous utilization as
// the shed controller sees it: the minimum-flow bandwidth committed to
// unfinished streams over the effective capacity of the live servers.
// Browned-out servers contribute their dimmed bandwidth and failed
// servers contribute nothing, so partial failures push utilization up
// exactly as load does. A fully-dead cluster counts as saturated.
func (e *Engine) shedUtilization() float64 {
	committed, capacity := 0.0, 0.0
	for _, s := range e.servers {
		if s.failed {
			continue
		}
		committed += float64(s.load()) * e.cfg.ViewRate
		capacity += s.bandwidth
	}
	if capacity <= 0 {
		return 1
	}
	return committed / capacity
}

// shedArrival runs the shed controller for one arrival and reports
// whether the arrival must be rejected up front. The controller is a
// two-state machine re-evaluated per arrival: shedding engages while
// utilization ≥ watermark (each normal→shedding transition counts in
// SheddingActivated) and applies to every class except the highest
// (class 0). The caller does the rejection accounting.
func (e *Engine) shedArrival(video, class int32, t float64) bool {
	if !e.cfg.Shed.Enabled || class < 0 {
		return false
	}
	u := e.shedUtilization()
	active := u >= e.cfg.Shed.Watermark
	if active && !e.shedding {
		e.metrics.SheddingActivated++
	}
	e.shedding = active
	if !active || class == 0 {
		return false
	}
	if e.audit != nil {
		e.auditFail(e.audit.Shed(t, video, class, u, e.cfg.Shed.Watermark))
	}
	return true
}
