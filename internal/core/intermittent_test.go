package core

import (
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/workload"
)

func TestIntermittentRequiresWorkahead(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{100}, ViewRate: 3, Intermittent: true}
	if err := cfg.Validate(); err == nil {
		t.Error("intermittent without workahead accepted")
	}
	cfg.Workahead = true
	cfg.BufferCapacity = 600
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid intermittent config rejected: %v", err)
	}
	cfg.ResumeGuard = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ResumeGuard accepted")
	}
}

// intermittentScenario: a 2-slot server (6 Mb/s). Stream A buffers
// ahead while alone; once two later streams hold both slots, A is
// paused and plays from its buffer — the server carries three streams
// on two slots, which minimum-flow admission can never do.
func intermittentScenario(t *testing.T, intermittent bool) *Engine {
	t.Helper()
	cat := fixedCatalog(t, 1, 1200) // 3600 Mb videos
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  1e6, // effectively unbounded staging
		ReceiveCap:      0,
		Intermittent:    intermittent,
	}
	return newTestEngine(t, cfg, cat, [][]int{{0}}, []workload.Request{
		{Arrival: 0, Video: 0},   // A: buffers at 6 Mb/s while alone
		{Arrival: 100, Video: 0}, // B
		{Arrival: 200, Video: 0}, // C: third stream on a 2-slot server
	})
}

func TestIntermittentOverSubscribes(t *testing.T) {
	// Minimum-flow: the third arrival is rejected.
	m := run(t, intermittentScenario(t, false), 3000)
	if m.Accepted != 2 || m.Rejected != 1 {
		t.Fatalf("min-flow: accepted=%d rejected=%d, want 2/1", m.Accepted, m.Rejected)
	}
	if m.GlitchedStreams != 0 {
		t.Errorf("min-flow glitched %d streams", m.GlitchedStreams)
	}

	// Intermittent: A has 300 Mb (100 s) buffered at t=200, far above
	// the 30 s guard, so it is pausable and C is admitted.
	m = run(t, intermittentScenario(t, true), 3000)
	if m.Accepted != 3 || m.Rejected != 0 {
		t.Fatalf("intermittent: accepted=%d rejected=%d, want 3/0", m.Accepted, m.Rejected)
	}
	// The price: A's 100 s of buffer cannot cover the ~1000 s it stays
	// paused (B and C never release their slots in time), so A glitches.
	if m.GlitchedStreams != 1 {
		t.Errorf("intermittent: glitched = %d, want 1", m.GlitchedStreams)
	}
	// All transmissions still complete and conservation holds.
	if m.Completions != 3 || !approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3) {
		t.Errorf("completions=%d delivered=%v accepted=%v", m.Completions, m.DeliveredBytes, m.AcceptedBytes)
	}
}

func TestIntermittentGlitchFreeWhenCovered(t *testing.T) {
	// The pause is covered when a slot frees before the paused stream's
	// buffer drains. Video 0 is a 600 s feature; video 1 a 60 s clip.
	// A (video 0) buffers 300 Mb (100 s of playback) while alone, is
	// paused when the short clip C arrives at t=200, and C's slot frees
	// at t=260 — 40 s before A's buffer would have run dry.
	cat, err := catalog.FromVideos([]catalog.Video{
		{Length: 600, Prob: 0.5},
		{Length: 60, Prob: 0.5},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ServerBandwidth: []float64{6},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  1e6,
		Intermittent:    true,
	}
	e := newTestEngine(t, cfg, cat, [][]int{{0}, {0}}, []workload.Request{
		{Arrival: 0, Video: 0},   // A: rate 6 while alone
		{Arrival: 100, Video: 0}, // B: both slots now busy
		{Arrival: 200, Video: 1}, // C (60 s clip): A pauses
	})
	m := run(t, e, 3000)
	if m.Accepted != 3 {
		t.Fatalf("accepted=%d, want 3", m.Accepted)
	}
	if m.GlitchedStreams != 0 {
		t.Errorf("glitched = %d, want 0 (buffer covers the pause)", m.GlitchedStreams)
	}
	if m.Completions != 3 || !approx(m.DeliveredBytes, m.AcceptedBytes, 1e-3) {
		t.Errorf("completions=%d delivered=%v accepted=%v", m.Completions, m.DeliveredBytes, m.AcceptedBytes)
	}
}

func TestIntermittentAcceptsAtLeastMinimumFlow(t *testing.T) {
	// On random workloads the intermittent heuristic should accept at
	// least as many requests as minimum-flow (it can always transmit
	// continuously), modulo tiny sample-path divergence.
	for seed := uint64(1); seed <= 8; seed++ {
		base, _ := buildRandomSim(t, seed, true, false)
		mb, err := base.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		inter, _ := buildRandomSim(t, seed, true, false)
		inter.cfg.Intermittent = true
		mi, err := inter.Run(2 * 3600)
		if err != nil {
			t.Fatal(err)
		}
		if float64(mi.Accepted) < float64(mb.Accepted)*0.98 {
			t.Errorf("seed %d: intermittent accepted %d < min-flow %d", seed, mi.Accepted, mb.Accepted)
		}
	}
}

func TestResumeGuardDefault(t *testing.T) {
	e := &Engine{cfg: Config{ResumeGuard: 0}}
	if e.resumeGuard() != 30 {
		t.Errorf("default guard = %v, want 30", e.resumeGuard())
	}
	e.cfg.ResumeGuard = 10
	if e.resumeGuard() != 10 {
		t.Errorf("guard = %v, want 10", e.resumeGuard())
	}
}

func TestUrgentCount(t *testing.T) {
	cfg := Config{ServerBandwidth: []float64{30}, ViewRate: 3, Workahead: true, BufferCapacity: 1e6, Intermittent: true}
	e := &Engine{cfg: cfg}
	s := mkServer(30, 3)
	// Buffer 300 Mb (100 s): not urgent. Buffer 30 Mb (10 s): urgent.
	addReq(e, s, 1, 3600, 300, 0, 0)
	addReq(e, s, 2, 3600, 30, 0, 0)
	addReq(e, s, 3, 3600, 0, 0, 0) // empty: urgent
	if got := e.urgentCount(s, 0); got != 2 {
		t.Errorf("urgentCount = %d, want 2", got)
	}
}

func TestIntermittentPausesFullestBufferFirst(t *testing.T) {
	cfg := Config{
		ServerBandwidth: []float64{6}, ViewRate: 3,
		Workahead: true, BufferCapacity: 1e6, Intermittent: true,
	}
	e := &Engine{cfg: cfg}
	s := mkServer(6, 3)
	rich := addReq(e, s, 1, 3600, 900, 0, 0) // 900 Mb buffered
	mid := addReq(e, s, 2, 3600, 300, 0, 0)  // 300 Mb buffered
	poor := addReq(e, s, 3, 3600, 0, 0, 0)   // nothing buffered
	e.allocate(s, 0)
	if rateOf(s, poor) < 3-dataEps || rateOf(s, mid) < 3-dataEps {
		t.Errorf("urgent streams not served: poor=%v mid=%v", rateOf(s, poor), rateOf(s, mid))
	}
	if rateOf(s, rich) != 0 {
		t.Errorf("fullest-buffer stream rate = %v, want paused", rateOf(s, rich))
	}
}
