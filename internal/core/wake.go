package core

import "math"

// nextWake returns the earliest future instant at which server s's
// allocation must be recomputed absent external events: a transmission
// finishing, a client buffer filling, a suspended stream resuming, or —
// in intermittent mode — a paused stream draining to its resume guard.
// Returns +Inf when the server is idle.
//
// The wake is recomputed from scratch at every event on purpose. A wake
// time cached when a rate was assigned (t₀ + remaining₀/rate) and the
// same quantity recomputed at a later event (t₁ + remaining₁/rate) are
// equal mathematically but not in float64, so an incremental next-wake
// index would drift from the from-scratch value by ulps and break the
// engine's bit-identical determinism contract. The scan is a cheap
// linear pass; the allocation-order work that used to dominate the
// event path lives in the heap-selecting feeds (see spare.go).
func (e *Engine) nextWake(s *server, t float64) float64 {
	next := math.Inf(1)
	bview := e.cfg.ViewRate
	for _, r := range s.active {
		if r.suspended(t) {
			if r.suspendedUntil < next {
				next = r.suspendedUntil
			}
			continue
		}
		if r.rate <= 0 {
			// Paused by the intermittent scheduler: its buffer drains
			// at b_view; it must be reconsidered when it reaches the
			// resume guard (and certainly before it empties).
			if e.cfg.Intermittent {
				guard := e.resumeGuard() * bview
				lead := r.bufferAt(t, bview) - guard
				// lead ≤ 0 means the stream is already urgent; the
				// allocation that just ran made its decision, and only
				// another event (a finish, an arrival) can change it —
				// scheduling a wake "now" would spin.
				if lead > timeEps {
					if tb := t + lead/bview; tb < next {
						next = tb
					}
				}
			}
			continue
		}
		if tf := t + r.remaining()/r.rate; tf < next {
			next = tf
		}
		if fill := r.rate - r.drainRate(bview); fill > dataEps && r.bufCap >= 0 {
			// Buffer fills at rate − drain (drain is zero while the
			// viewer has paused).
			room := r.bufCap - r.bufferAt(t, bview)
			if room < 0 {
				room = 0
			}
			if tb := t + room/fill; tb < next {
				next = tb
			}
		}
	}
	for _, c := range s.copies {
		if c.rate > 0 {
			if tc := t + (c.size-c.sent)/c.rate; tc < next {
				next = tc
			}
		}
	}
	if next < t {
		next = t // guard against float noise scheduling into the past
	}
	return next
}
