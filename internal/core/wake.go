package core

import "math"

// The wake index: when must a server's allocation be recomputed absent
// external events? Each active stream contributes up to three wake
// candidates — its transmission finishing, its client buffer filling,
// and (suspended streams) its switch blackout ending; under the
// intermittent scheduler a paused stream additionally wakes when its
// draining buffer reaches the resume guard. Each copy job contributes
// its projected completion. The server's next wake is the min over all
// of them, +Inf when idle.
//
// Historically this min was recomputed from scratch at every event,
// because a *recomputed* candidate drifts from a *cached* one by ulps:
// t₀ + remaining₀/rate and t₁ + remaining₁/rate are equal mathematically
// but not in float64, and any drift breaks the engine's bit-identical
// determinism contract. The refactored data plane solves that with
// exact keys instead of recomputation: the allocation round that
// assigns a slot its rate also computes the slot's wake key — once,
// with the same operand values the end-of-round scan used to read —
// and stores it in the server's lane. The incremental min (folded as
// keys are written, lazily repaired by a compare-only rescan when a
// key is removed or raised — see lane.go) and any from-scratch min are
// then mins over the *same stored keys*, so they agree bit for bit and
// the cached answer is exactly what the old scan computed.
//
// Key-write discipline (who writes, and when a key is invalidated):
//
//   - minFlowRates / allocateIntermittent open the round (beginRound)
//     and write every slot's key as they assign rates: the suspension
//     deadline for suspended slots, +Inf for paused-and-full viewers
//     under minimum flow, the resume-guard key for streams the
//     intermittent feed pauses, and wakeKeyServing for transmitting
//     slots;
//   - the spare feeds rewrite wakeKeyServing for each slot whose rate
//     they raise (a raise only lowers the key, so the running min
//     stays valid);
//   - allocateCopies writes each copy job's key for the round;
//   - detach, copy-job removal, and anything else that deletes or
//     raises a stored key marks the index dirty; the next query
//     repairs it by rescanning stored keys, never recomputing them.
//
// Every reschedule runs a full round, so a server's stored keys are
// exactly as fresh as its rates — the same staleness contract the
// from-scratch scan had.

// wakeKeyServing returns the wake key of slot i, which the current
// allocation round just assigned a positive rate at time t: the
// earlier of its projected finish and its buffer filling (the buffer
// fills at rate − drain; drain is zero while the viewer has paused).
// The slot must be synced to t. r is s.active[i], passed in so callers
// iterating the lane pay the pointer chase once per slot.
func (e *Engine) wakeKeyServing(s *server, r *request, i int, t float64) float64 {
	bview := e.cfg.ViewRate
	ln := &s.ln
	rate := ln.rate[i]
	sent := ln.sent[i]
	// remainingOf and bufferOf, unrolled onto the already-loaded sent so
	// the hot loops pay one lane read and one request chase per slot.
	// Same operations in the same order, so the keys are bit-identical.
	rem := ln.size[i] - sent
	if rem < 0 {
		rem = 0
	}
	key := t + rem/rate
	if fill := rate - r.drainRate(bview); fill > dataEps && r.bufCap >= 0 {
		buf := sent - r.viewedAt(t, bview)
		if buf < 0 {
			buf = 0
		}
		room := r.bufCap - buf
		if room < 0 {
			room = 0
		}
		if tb := t + room/fill; tb < key {
			key = tb
		}
	}
	return key
}

// wakeKeyPaused returns the wake key of a stream the intermittent
// scheduler paused with buffer level buf at time t: its buffer drains
// at b_view and the stream must be reconsidered when it reaches the
// resume guard. A stream already at or below the guard is urgent — the
// round that just ran made its decision, and only another event (a
// finish, an arrival) can change it, so scheduling a wake "now" would
// spin; it gets no candidate.
func (e *Engine) wakeKeyPaused(buf, t float64) float64 {
	bview := e.cfg.ViewRate
	lead := buf - e.resumeGuard()*bview
	if lead > timeEps {
		return t + lead/bview
	}
	return math.Inf(1)
}

// currentWake returns the min over s's stored wake keys, repairing the
// incremental index first if a removal or raise invalidated it.
func (s *server) currentWake() float64 {
	if s.ln.wakeDirty {
		s.repairWake()
	}
	return s.ln.wakeMin
}

// repairWake recomputes the maintained min by rescanning the stored
// keys — compares only, no key is recomputed, so the repaired answer
// is bit-identical to the incremental one whenever both are valid.
func (s *server) repairWake() {
	ln := &s.ln
	min, arg := math.Inf(1), wakeArgNone
	for i, k := range ln.wake {
		if k < min {
			min, arg = k, int32(i)
		}
	}
	for _, c := range s.copies {
		if c.wakeKey < min {
			min, arg = c.wakeKey, wakeArgCopy
		}
	}
	ln.wakeMin, ln.wakeArg, ln.wakeDirty = min, arg, false
}

// wakeAt returns the server's next wake for a round that ran at time
// t: the stored-key min, clamped so float noise cannot schedule into
// the past. Every built-in Allocate returns it.
func (s *server) wakeAt(t float64) float64 {
	next := s.currentWake()
	if next < t {
		next = t
	}
	return next
}

// nextWake computes the server's next wake from scratch off the live
// lane state (rates, not stored keys) — the reference the stored-key
// index is audited against, and the fallback for custom allocators
// that do not maintain wake keys. For a server whose round just ran at
// time t it returns exactly wakeAt(t): the round stored each slot's
// key from the same operand values this scan reads.
func (e *Engine) nextWake(s *server, t float64) float64 {
	next := math.Inf(1)
	ln := &s.ln
	for i := range ln.rate {
		var k float64
		switch {
		case s.suspendedAt(i, t):
			k = ln.susp[i]
		case ln.rate[i] <= 0:
			if !e.cfg.Intermittent {
				continue
			}
			k = e.wakeKeyPaused(s.bufferOf(i, t, e.cfg.ViewRate), t)
		default:
			k = e.wakeKeyServing(s, s.active[i], i, t)
		}
		if k < next {
			next = k
		}
	}
	for _, c := range s.copies {
		if c.rate > 0 {
			if tc := t + (c.size-c.sent)/c.rate; tc < next {
				next = tc
			}
		}
	}
	if next < t {
		next = t // guard against float noise scheduling into the past
	}
	return next
}
