package core

import (
	"fmt"
	"math"

	"semicont/internal/catalog"
	"semicont/internal/core/alloc"
	"semicont/internal/edge"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/simtime"
	"semicont/internal/stats"
	"semicont/internal/workload"
)

// ArrivalSource supplies the request stream. workload.Generator
// implements it; tests substitute scripted sequences.
type ArrivalSource interface {
	// Next returns the next request. Arrival times must be
	// non-decreasing.
	Next() workload.Request
}

type evKind uint8

const (
	evArrival evKind = iota
	evServerWake
	evFailure
	evPause
	evResume
	evRecovery
	evRetry
	evParkTick
	evBrownout
	evBrownoutEnd
)

type event struct {
	kind    evKind
	server  int32
	version uint64
	req     int64   // pause/resume/park target request, or retry entry id
	cold    bool    // recovery only: storage wiped
	frac    float64 // brownout only: effective-bandwidth fraction
}

// Engine runs one cluster simulation: it owns the servers, the future
// event list, and all per-request fluid state.
type Engine struct {
	cfg     Config
	cat     *catalog.Catalog
	layout  *placement.Layout
	source  ArrivalSource
	events  simtime.Queue[event]
	servers []*server

	now     float64
	horizon float64
	metrics Metrics
	obs     Observer

	nextID  int64
	pending workload.Request

	// Deferred server wake: reschedule holds its wake push here instead
	// of touching the heap, because the dominant event pattern is
	// "handle event → reschedule → pop the very next event" and the
	// held wake can then be fused with that pop via Queue.PushPop
	// (replace the root, one sift) instead of a full push plus pop.
	// Ordering is untouched: every other push flushes the held wake
	// first, so sequence numbers are assigned in exactly the order the
	// eager pushes would have produced. See push/holdWake/popEvent.
	hasHeld bool
	heldT   float64
	held    event

	// Heterogeneous client population (nil when homogeneous).
	classAlias *rng.Alias
	classRNG   *rng.PCG

	// Traffic classes and load shedding (see overload.go): the class
	// draw stream (nil when classless), lazily resolved per-class
	// selectors, and the shed controller's two-state flag.
	trafficAlias *rng.Alias
	trafficRNG   *rng.PCG
	classSel     [MaxTrafficClasses]ServerSelector
	shedding     bool

	// Interactivity: the pause-draw stream and the live-request index
	// pause/resume events resolve through (nil when disabled).
	interactRNG *rng.PCG
	byID        map[int64]*request

	// Dynamic replication state: runtime replicas layered over the
	// static layout, per-server extra storage use, and the set of
	// videos with a copy in flight.
	extraHolders map[int32][]int32
	extraUsed    []float64
	copying      map[int32]bool

	// Fault-tolerance state (see faulttol.go): per-server scheduled
	// fail/recover bookkeeping, cold-wiped static storage, the admission
	// retry queue, and streams parked in degraded-mode playback.
	faultSched  []faultSched
	staticWiped []bool
	retryQ      map[int64]*retryEntry
	nextRetryID int64
	parked      map[int64]*request

	// Audit instrumentation (nil when no auditor is attached): the tap,
	// the first violation raised, the event sequence counter, and the
	// reusable snapshot/grant buffers.
	audit            AuditTap
	auditErr         error
	auditSeq         uint64
	auditEvery       uint64
	auditServers     []AuditServerState
	spareGrantBuf    []SpareGrant
	intermitGrantBuf []IntermittentGrant
	spareMisorder    bool
	wakeSkew         bool

	// Streaming observation channels (see observe.go). Always bound —
	// stats.Discard by default — so recording never branches.
	obsAcc [NumObsKinds]stats.Accumulator

	// Bandwidth-allocation policy, resolved from the registry by
	// Config.AllocatorName (see allocator.go).
	alloc BandwidthAllocator

	// Controller policies: the admission server selector and the DRM
	// planner, resolved from the registries by Config.SelectorName /
	// Config.PlannerName (see controller.go).
	sel   ServerSelector
	planr MigrationPlanner

	// Edge tier (see edge.go and batch.go): one prefix cache per edge
	// node, the round-robin arrival→node cursor, the per-video prefix
	// sizes computed at Reset, and the lazily resolved batch policy.
	edgeCaches []edge.CachePolicy
	edgeRR     int
	edgePrefix []float64
	batchPol   BatchPolicy

	// Sharded execution (see shard.go). sh is the shard machinery — nil
	// unless Config.Shards asked for more than one shard, so the serial
	// hot path pays only nil checks. seqSrc is the engine-owned event
	// sequence counter used instead of the queue-private one whenever
	// events are spread across several queues. shlog is set only on a
	// shard's replica engine and points at its shard's window log; on a
	// replica, finish/finishCopy/holdWake defer their shared-state
	// effects there instead of applying them.
	sh     *shardSet
	shlog  *shardState
	seqSrc uint64

	// Scratch reused across events to keep the hot path allocation-free.
	// cand is the per-server candidate index the allocators feed through;
	// its entries are pointer-free positions into a server's active
	// slice, so retaining it between events cannot pin finished requests
	// against the garbage collector (the old []*request scratch did).
	cand       alloc.Index
	evenBuf    []alloc.Entry
	touchedBuf []*server
	visited    []bool
	freeList   []*request
}

// NewEngine validates the configuration and assembles an engine. The
// layout must have been built for the same number of servers.
func NewEngine(cfg Config, cat *catalog.Catalog, lay *placement.Layout, src ArrivalSource) (*Engine, error) {
	e := new(Engine)
	if err := e.Reset(cfg, cat, lay, src); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset reinitializes the engine for a fresh run of a (possibly
// different) configuration, retaining every reusable allocation: the
// event queue's backing array, the request freelist, the per-server
// structs and their active/copy slices, and all allocator and audit
// scratch. A Reset engine is observationally identical to a NewEngine
// one — same validation, same derived seed streams, same event
// ordering — so workers running many trials reuse one engine instead
// of allocating per trial (see BenchmarkTrialReset).
func (e *Engine) Reset(cfg Config, cat *catalog.Catalog, lay *placement.Layout, src ArrivalSource) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if lay.NumServers() != len(cfg.ServerBandwidth) {
		return fmt.Errorf("core: layout has %d servers, config %d", lay.NumServers(), len(cfg.ServerBandwidth))
	}
	if src == nil {
		return fmt.Errorf("core: nil arrival source")
	}
	e.cfg = cfg
	e.cat = cat
	e.layout = lay
	e.source = src
	e.events.Reset()
	e.hasHeld = false

	n := len(cfg.ServerBandwidth)
	if cap(e.servers) < n {
		e.servers = make([]*server, n)
	} else {
		e.servers = e.servers[:n]
	}
	for i, b := range cfg.ServerBandwidth {
		if s := e.servers[i]; s != nil {
			clearRequests(s.active)
			s.active = s.active[:0]
			clearCopies(s.copies)
			ln := s.ln
			ln.reset()
			*s = server{id: int32(i), bandwidth: b, slots: cfg.Slots(i), active: s.active, copies: s.copies[:0], ln: ln}
		} else {
			e.servers[i] = &server{id: int32(i), bandwidth: b, slots: cfg.Slots(i)}
			e.servers[i].ln.beginRound() // an idle server's wake min is +Inf
		}
	}
	e.visited = resizeBools(e.visited, n)
	e.extraUsed = resizeFloats(e.extraUsed, n)

	e.now, e.horizon = 0, 0
	e.metrics = Metrics{}
	e.obs = nil
	e.nextID = 0
	e.pending = workload.Request{}

	// Per-run policy and RNG state: nil so the lazy resolvers re-derive
	// from the new config (random-feasible's choice stream, for one,
	// seeds itself from cfg.SelectorSeed on first use).
	e.alloc, e.sel, e.planr = nil, nil, nil
	e.batchPol = nil
	e.resetEdge()
	e.classAlias, e.classRNG = nil, nil
	e.trafficAlias, e.trafficRNG = nil, nil
	e.classSel = [MaxTrafficClasses]ServerSelector{}
	e.shedding = false
	e.interactRNG, e.byID = nil, nil
	if cfg.Interactivity.PauseProb > 0 {
		e.interactRNG = rng.New(rng.DeriveSeed(cfg.Interactivity.Seed, 0x706175)) // "pau"
		e.byID = make(map[int64]*request)
	}
	if len(cfg.ClientClasses) > 0 {
		weights := make([]float64, len(cfg.ClientClasses))
		for i, cl := range cfg.ClientClasses {
			weights[i] = cl.Weight
		}
		alias, err := rng.NewAlias(weights)
		if err != nil {
			return fmt.Errorf("core: client classes: %w", err)
		}
		e.classAlias = alias
		e.classRNG = rng.New(rng.DeriveSeed(cfg.ClientSeed, 0xc11e47)) // "client"
	}
	if len(cfg.Classes) > 0 {
		shares := make([]float64, len(cfg.Classes))
		for i, tc := range cfg.Classes {
			shares[i] = tc.Share
		}
		alias, err := rng.NewAlias(shares)
		if err != nil {
			return fmt.Errorf("core: traffic classes: %w", err)
		}
		e.trafficAlias = alias
		e.trafficRNG = rng.New(rng.DeriveSeed(cfg.ClassSeed, 0x636c6173)) // "clas"
	}

	// Replication, fault-tolerance, and audit state back to the lazy
	// zero the constructor leaves; maps keep their storage.
	clear(e.extraHolders)
	clear(e.copying)
	clear(e.retryQ)
	clear(e.parked)
	e.faultSched = nil
	e.staticWiped = nil
	e.nextRetryID = 0
	e.audit = nil
	e.auditErr = nil
	e.auditSeq = 0
	e.auditEvery = 0
	e.auditServers = nil
	e.discardObs()
	e.spareGrantBuf = e.spareGrantBuf[:0]
	e.intermitGrantBuf = e.intermitGrantBuf[:0]
	e.spareMisorder = false
	e.wakeSkew = false
	// cand/evenBuf/touchedBuf are reset at each use; freeList is kept —
	// recycled requests are the cross-trial reuse this enables.
	//
	// Last: arm (or disarm) sharding. This must precede every Schedule*
	// push so seqSrc numbers the whole run when sharded.
	e.ensureShards()
	return nil
}

func clearRequests(rs []*request) {
	for i := range rs {
		rs[i] = nil
	}
}

func clearCopies(cs []*copyJob) {
	for i := range cs {
		cs[i] = nil
	}
}

func resizeBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func resizeFloats(f []float64, n int) []float64 {
	if cap(f) < n {
		return make([]float64, n)
	}
	f = f[:n]
	for i := range f {
		f[i] = 0
	}
	return f
}

// SetObserver installs a lifecycle observer (may be nil). Call before Run.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Metrics returns the live metrics (valid during and after Run).
func (e *Engine) Metrics() *Metrics { return &e.metrics }

// faultSched tracks what has been scheduled for one server so the
// Schedule* methods can reject malformed sequences up front: failures
// and recoveries must alternate per server (starting from the up
// state) with non-decreasing times, and a brownout may neither overlap
// a down interval nor nest inside another brownout — the same
// three-state (up/down/dimmed) machine faults.Config.Validate enforces
// on scripted traces.
type faultSched struct {
	down   bool    // a scheduled failure has no recovery yet
	dimmed bool    // a scheduled brownout has no restore yet
	lastT  float64 // time of the last scheduled event
}

// checkFaultTime validates a fault-event time against a server's
// schedule so far.
func (e *Engine) checkFaultTime(t float64, id int, what string) error {
	if id < 0 || id >= len(e.servers) {
		return fmt.Errorf("core: no server %d", id)
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("core: %s time %g is not finite", what, t)
	}
	if t < 0 {
		return fmt.Errorf("core: %s time %g before start", what, t)
	}
	if e.faultSched == nil {
		e.faultSched = make([]faultSched, len(e.servers))
	}
	if prev := e.faultSched[id].lastT; t < prev {
		return fmt.Errorf("core: %s of server %d at %g precedes its already-scheduled event at %g", what, id, t, prev)
	}
	return nil
}

// ScheduleFailure arranges for server id to fail at time t. Streams on
// the failed server are rescued via migration where a replica holder
// has room, parked in degraded-mode playback when configured and
// buffered data allows, and dropped otherwise. Per server, failures
// and recoveries must alternate in non-decreasing time order; a
// duplicate failure of an already-failed server is an error. Call
// before Run.
func (e *Engine) ScheduleFailure(t float64, id int) error {
	if err := e.checkFaultTime(t, id, "failure"); err != nil {
		return err
	}
	if e.faultSched[id].down {
		return fmt.Errorf("core: server %d is already scheduled to be down at t=%g (schedule its recovery first)", id, t)
	}
	if e.faultSched[id].dimmed {
		return fmt.Errorf("core: server %d is scheduled to be browned out at t=%g (schedule its restore first)", id, t)
	}
	e.faultSched[id] = faultSched{down: true, lastT: t}
	e.push(t, event{kind: evFailure, server: int32(id)})
	return nil
}

// ScheduleRecovery arranges for a failed server to rejoin the cluster
// at time t. A warm recovery (cold=false) returns with its replicas
// intact; a cold recovery wipes the server's storage — its replicas
// are lost and are rebuilt only through the dynamic-replication path.
// The recovery must follow a scheduled failure of the same server.
// Call before Run.
func (e *Engine) ScheduleRecovery(t float64, id int, cold bool) error {
	if err := e.checkFaultTime(t, id, "recovery"); err != nil {
		return err
	}
	if !e.faultSched[id].down {
		return fmt.Errorf("core: recovery of server %d at t=%g without a preceding failure", id, t)
	}
	e.faultSched[id] = faultSched{down: false, lastT: t}
	e.push(t, event{kind: evRecovery, server: int32(id), cold: cold})
	return nil
}

// ScheduleBrownout arranges for server id's effective bandwidth to drop
// to the fraction frac ∈ (0,1] of its configured capacity at time t.
// Its slot count scales with it; under minimum-flow scheduling, streams
// in excess of the reduced slots go through the same rescue → park →
// drop ladder a failure applies. Per server, brownouts must be restored
// before the next brownout or failure, and may not target a server
// scheduled to be down. Call before Run.
func (e *Engine) ScheduleBrownout(t float64, id int, frac float64) error {
	if err := e.checkFaultTime(t, id, "brownout"); err != nil {
		return err
	}
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return fmt.Errorf("core: brownout fraction %g must be in (0,1]", frac)
	}
	if e.faultSched[id].down {
		return fmt.Errorf("core: server %d is scheduled to be down at t=%g (a down server has no bandwidth to dim)", id, t)
	}
	if e.faultSched[id].dimmed {
		return fmt.Errorf("core: server %d is already scheduled to be browned out at t=%g (schedule its restore first)", id, t)
	}
	e.faultSched[id] = faultSched{dimmed: true, lastT: t}
	e.push(t, event{kind: evBrownout, server: int32(id), frac: frac})
	return nil
}

// ScheduleRestore arranges for a browned-out server to return to full
// capacity at time t. It must follow a scheduled brownout of the same
// server. Call before Run.
func (e *Engine) ScheduleRestore(t float64, id int) error {
	if err := e.checkFaultTime(t, id, "restore"); err != nil {
		return err
	}
	if !e.faultSched[id].dimmed {
		return fmt.Errorf("core: restore of server %d at t=%g without a preceding brownout", id, t)
	}
	e.faultSched[id] = faultSched{lastT: t}
	e.push(t, event{kind: evBrownoutEnd, server: int32(id)})
	return nil
}

// Run processes arrivals with times in [0, horizon) and then drains all
// in-flight transmissions. It returns the accumulated metrics, or the
// first audit violation when an attached auditor rejects the run.
func (e *Engine) Run(horizon float64) (*Metrics, error) {
	if err := e.Start(horizon); err != nil {
		return nil, err
	}
	if e.sh != nil && !e.lockstepRequired() {
		e.runShardedParallel()
		e.mergeShardResults()
	} else {
		for e.Step() {
		}
	}
	if e.audit != nil && e.auditErr == nil {
		e.auditFail(e.audit.End(e.now, e.metrics))
	}
	if e.auditErr != nil {
		return nil, e.auditErr
	}
	return &e.metrics, nil
}

// Start primes the engine for stepwise execution: arrivals with times
// in [0, horizon) will be admitted as Step is called. Tests and
// interactive drivers use Start + Step; Run wraps them.
func (e *Engine) Start(horizon float64) error {
	if horizon <= 0 {
		return fmt.Errorf("core: horizon must be positive, got %g", horizon)
	}
	e.horizon = horizon
	if e.audit != nil {
		e.auditBegin()
		if e.auditErr != nil {
			return e.auditErr
		}
	}
	e.primeArrival()
	return nil
}

// primeArrival fetches the next request from the source and schedules
// its arrival event if it falls inside the horizon.
func (e *Engine) primeArrival() {
	r := e.source.Next()
	if r.Arrival >= e.horizon {
		return
	}
	e.pending = r
	e.push(r.Arrival, event{kind: evArrival})
}

// push schedules an event. Any held wake is flushed first, so sequence
// numbers are assigned in exactly the order the eager pushes would have
// produced — the deferred wake is invisible to the FIFO tie-break.
//
// On a sharded engine, events carry seqs from the engine-owned counter
// and server wakes route to the owning shard's queue; the held-wake
// fusion is disabled because the fused event would bypass the merge.
// A replica engine never pushes: its only event production is the
// reschedule of the server it is handling, which goes through holdWake
// into the window's birth log.
func (e *Engine) push(t float64, ev event) {
	if e.shlog != nil {
		panic("core: shard replica scheduled a global event during a window")
	}
	if e.sh != nil {
		e.seqSrc++
		if ev.kind == evServerWake {
			e.sh.shards[e.sh.owner[ev.server]].main.PushSeq(t, e.seqSrc, ev)
		} else {
			e.events.PushSeq(t, e.seqSrc, ev)
		}
		return
	}
	if e.hasHeld {
		e.events.Push(e.heldT, e.held)
		e.hasHeld = false
	}
	e.events.Push(t, ev)
}

// holdWake defers a server-wake push so popEvent can fuse it with the
// next pop. A previously held wake is flushed first, preserving order.
// Inside a shard window the wake is a birth, logged for the commit to
// assign its seq; on a sharded parent it routes eagerly to the owning
// shard's queue (the fusion would hide it from the merge).
func (e *Engine) holdWake(t float64, ev event) {
	if e.shlog != nil {
		e.shlog.recordBirth(t, ev)
		return
	}
	if e.sh != nil {
		e.seqSrc++
		e.sh.shards[e.sh.owner[ev.server]].main.PushSeq(t, e.seqSrc, ev)
		return
	}
	if e.hasHeld {
		e.events.Push(e.heldT, e.held)
	}
	e.hasHeld = true
	e.heldT, e.held = t, ev
}

// popEvent removes the earliest event, fusing a pending held wake with
// the pop via Queue.PushPop (one sift instead of an up-sift plus a
// down-sift). With a held wake the queue is momentarily never empty, so
// the run keeps draining until the last wake has actually been handled.
// A sharded engine's event list is partitioned across queues, so its
// pop is the K+1-way merge instead.
func (e *Engine) popEvent() (float64, event, bool) {
	if e.sh != nil {
		return e.popMerged()
	}
	if e.hasHeld {
		e.hasHeld = false
		return e.events.PushPop(e.heldT, e.held)
	}
	return e.events.Pop()
}

// Step processes a single event. It returns false when the event list
// is exhausted (the run is complete) or an attached auditor raised a
// violation (consult AuditErr).
func (e *Engine) Step() bool {
	t, ev, ok := e.popEvent()
	if !ok {
		return false
	}
	if t > e.now {
		e.now = t
	}
	var akind AuditEventKind
	var aserver int32
	var areq int64
	if e.audit != nil {
		if e.auditErr != nil {
			return false
		}
		akind, aserver, areq = auditKind(ev)
		e.auditSeq++
		e.auditFail(e.audit.BeginEvent(e.auditSeq, e.now, akind, aserver, areq))
	}
	e.dispatch(ev)
	if e.cfg.CheckInvariants {
		e.checkInvariants()
	}
	if e.audit != nil {
		// The full post-event snapshot is the expensive audit step;
		// with sampling enabled only every auditEvery-th event builds
		// one. The decision is keyed to the deterministic event
		// sequence number — never wall time — so sampled audits
		// reproduce bit-identically at any GOMAXPROCS or worker count.
		if e.auditErr == nil && (e.auditEvery <= 1 || e.auditSeq%e.auditEvery == 0) {
			e.auditFail(e.audit.Event(e.auditRecord(akind, aserver, areq)))
		}
		if e.auditErr != nil {
			return false
		}
	}
	return true
}

// dispatch routes one popped event to its handler at the already
// advanced e.now. Step wraps it with audit instrumentation; the sharded
// run loop calls it directly for global events between windows.
func (e *Engine) dispatch(ev event) {
	switch ev.kind {
	case evArrival:
		e.handleArrival(e.now)
	case evServerWake:
		e.handleWake(e.servers[ev.server], ev.version, e.now)
	case evFailure:
		e.handleFailure(e.servers[ev.server], e.now)
	case evPause:
		e.handleInteraction(ev.req, e.now, true)
	case evResume:
		e.handleInteraction(ev.req, e.now, false)
	case evRecovery:
		e.handleRecovery(e.servers[ev.server], e.now, ev.cold)
	case evRetry:
		e.handleRetry(ev.req, e.now)
	case evParkTick:
		e.handleParkTick(ev.req, ev.version, e.now)
	case evBrownout:
		e.handleBrownout(e.servers[ev.server], ev.frac, e.now)
	case evBrownoutEnd:
		e.handleBrownoutEnd(e.servers[ev.server], e.now)
	}
}

// handleArrival is event dispatch plus failure accounting; the
// admission decision itself (selector, DRM planner, success accounting)
// is the controller's, behind admit (controller.go).
func (e *Engine) handleArrival(t float64) {
	req := e.pending
	e.primeArrival()
	e.metrics.Arrivals++

	v := req.Video
	class := e.drawTrafficClass()
	if class >= 0 {
		e.metrics.ClassArrivals[class]++
	}
	bufCap, recvCap := e.drawClientCaps()
	if e.shedArrival(int32(v), class, t) {
		// Shed up front: no retry queue, no replication — the point of
		// shedding is to stop spending overloaded capacity on low
		// classes.
		e.metrics.Rejected++
		e.metrics.ClassRejected[class]++
		e.metrics.ClassShed[class]++
		if e.obs != nil {
			e.obs.OnReject(t, v)
		}
		return
	}
	prefix := e.edgeProbe(v)
	if prefix > 0 && prefix >= e.cat.Video(v).Size-dataEps {
		// The cached prefix covers the whole object: served entirely
		// at the edge, the cluster never hears about it.
		e.edgeFullServe(v, t, class, prefix)
		e.observe(ObsWait, 0)
		e.observe(ObsEdgeWait, 0)
		return
	}
	if e.batch().TryJoin(e, v, t, bufCap, recvCap, class, prefix) {
		if class >= 0 {
			e.metrics.ClassAccepted[class]++
		}
		e.observe(ObsWait, 0)
		if prefix > 0 {
			e.observe(ObsEdgeWait, 0)
		}
		return
	}
	if e.admit(v, t, bufCap, recvCap, class, prefix) {
		e.observe(ObsWait, 0)
		if prefix > 0 {
			e.observe(ObsEdgeWait, 0)
		}
		return
	}
	if e.cfg.Retry.Enabled && len(e.retryQ) < e.retryMaxQueue() {
		e.enqueueRetry(v, t, bufCap, recvCap, class, prefix)
	} else {
		e.metrics.Rejected++
		if class >= 0 {
			e.metrics.ClassRejected[class]++
		}
		if e.obs != nil {
			e.obs.OnReject(t, v)
		}
	}
	if e.cfg.Replication.Enabled {
		// The request is lost (or waiting), but copying the video to
		// a fresh server serves the demand the rejection revealed.
		e.startReplication(int32(v), t)
	}
}

// scheduleInteraction decides at admission whether this viewing pauses
// and, if so, schedules the pause/resume pair. The pause instant is
// derived from the playback position (uniform over the middle 90% of
// the video), which is deterministic until the first pause.
func (e *Engine) scheduleInteraction(r *request, t float64) {
	if e.interactRNG == nil {
		return
	}
	e.byID[r.id] = r
	if e.interactRNG.Float64() >= e.cfg.Interactivity.PauseProb {
		return
	}
	frac := e.interactRNG.UniformRange(0.05, 0.95)
	dur := e.interactRNG.UniformRange(e.cfg.Interactivity.MinPause, e.cfg.Interactivity.MaxPause)
	pauseAt := t + frac*r.size/e.cfg.ViewRate
	e.push(pauseAt, event{kind: evPause, req: r.id})
	e.push(pauseAt+dur, event{kind: evResume, req: r.id})
}

// handleInteraction applies a viewer pause or resume. Events whose
// stream has already finished transmission are client-side only and
// need no server action.
func (e *Engine) handleInteraction(id int64, t float64, pause bool) {
	r, ok := e.byID[id]
	if !ok {
		return // transmission already complete; playback state moot
	}
	if r.parked {
		// No server to reschedule; recompute the buffer-dry horizon.
		r.syncTo(t)
		if pause {
			r.pauseViewing(t, e.cfg.ViewRate)
			e.metrics.ViewerPauses++
		} else {
			r.resumeViewing(t)
		}
		e.nextParkTick(r, t)
		return
	}
	s := e.servers[r.server]
	s.syncAll(t)
	if pause {
		r.pauseViewing(t, e.cfg.ViewRate)
		e.metrics.ViewerPauses++
	} else {
		r.resumeViewing(t)
	}
	e.reschedule(s, t)
}

func (e *Engine) handleWake(s *server, version uint64, t float64) {
	if version != s.version || s.failed {
		return // stale event
	}
	s.syncAll(t)
	for i := 0; i < len(s.active); {
		if s.finishedAt(i) {
			e.finish(s.active[i], s, t)
			continue // detach swapped another request into slot i
		}
		i++
	}
	for i := 0; i < len(s.copies); {
		c := s.copies[i]
		if c.done() {
			e.finishCopy(s, c, t) // removes by swapping; don't advance i
			continue
		}
		i++
	}
	e.reschedule(s, t)
}

func (e *Engine) finish(r *request, s *server, t float64) {
	s.detach(r)
	e.metrics.Completions++
	e.observe(ObsMigrations, float64(r.hops))
	if e.shlog != nil {
		// DeliveredBytes is a float sum — addition order matters to the
		// bit — and recycle touches parent-owned maps, so both defer to
		// the window commit, which replays them in global event order.
		// The counter and the sketch above are order-independent and
		// merge at end of run.
		e.shlog.finished = append(e.shlog.finished, r)
		return
	}
	e.metrics.DeliveredBytes += r.carrySent // detach just stored the lane state
	if e.cfg.Edge.Nodes > 0 {
		e.metrics.ClusterEgressMb += r.carrySent
	}
	if e.obs != nil {
		e.obs.OnFinish(t, r.id, int(r.video), int(s.id))
	}
	e.recycle(r)
}

func (e *Engine) handleFailure(s *server, t float64) {
	if s.failed {
		return
	}
	s.syncAll(t)
	s.failed = true
	e.metrics.Failures++
	e.abortCopies(s)
	rescued, dropped, parked := 0, 0, 0
	for len(s.active) > 0 {
		switch e.evictSlot0(s, t) {
		case evictRescued:
			rescued++
		case evictParked:
			parked++
		case evictDropped:
			dropped++
		}
	}
	s.version++ // cancel any pending wake; the server is dead
	if e.obs != nil {
		e.obs.OnFailure(t, int(s.id), rescued, dropped, parked)
	}
	if e.audit != nil {
		e.auditFail(e.audit.Failure(t, s.id, rescued, dropped, parked))
	}
}

func (e *Engine) newRequest(video int, t float64) *request {
	var r *request
	if n := len(e.freeList); n > 0 {
		r = e.freeList[n-1]
		e.freeList[n-1] = nil
		e.freeList = e.freeList[:n-1]
		*r = request{}
	} else {
		r = new(request)
	}
	e.nextID++
	r.id = e.nextID
	r.class = -1 // admit overrides with the drawn traffic class
	r.video = int32(video)
	r.size = e.cat.Video(video).Size
	r.start = t
	r.carryLast = t
	r.viewSyncT = t
	return r
}

// drawClientCaps decides the arriving client's capabilities: one draw
// per arrival (admitted or not), so the class stream stays aligned
// regardless of admission outcomes.
func (e *Engine) drawClientCaps() (bufCap, recvCap float64) {
	if e.classAlias != nil {
		cl := e.cfg.ClientClasses[e.classAlias.Sample(e.classRNG)]
		return cl.BufferCapacity, cl.ReceiveCap
	}
	return e.cfg.BufferCapacity, e.cfg.ReceiveCap
}

func (e *Engine) recycle(r *request) {
	if e.byID != nil {
		delete(e.byID, r.id)
	}
	e.freeList = append(e.freeList, r)
}

// checkInvariants asserts the fluid-model and admission invariants on
// every server. It panics with a diagnostic on violation; tests run
// with Config.CheckInvariants to exercise it.
func (e *Engine) checkInvariants() {
	bview := e.cfg.ViewRate
	for _, s := range e.servers {
		if s.failed {
			if len(s.active) != 0 {
				panic(fmt.Sprintf("core: failed server %d still has %d streams", s.id, len(s.active)))
			}
			continue
		}
		// Minimum-flow admission caps concurrent streams at the slot
		// count; intermittent admission deliberately over-subscribes
		// (paused streams play from their buffers).
		if !e.cfg.Intermittent && len(s.active) > s.slots {
			panic(fmt.Sprintf("core: server %d holds %d streams, capacity %d", s.id, len(s.active), s.slots))
		}
		if n := len(s.active); len(s.ln.rate) != n || len(s.ln.sent) != n ||
			len(s.ln.last) != n || len(s.ln.susp) != n ||
			len(s.ln.size) != n || len(s.ln.wake) != n {
			panic(fmt.Sprintf("core: server %d lane arrays out of step with %d active streams", s.id, n))
		}
		total := 0.0
		for i, r := range s.active {
			if int(r.slot) != i {
				panic(fmt.Sprintf("core: server %d slot index corrupt for request %d", s.id, r.id))
			}
			rate, sent, last := s.ln.rate[i], s.ln.sent[i], s.ln.last[i]
			total += rate
			if sent > r.size+dataEps {
				panic(fmt.Sprintf("core: request %d sent %g > size %g", r.id, sent, r.size))
			}
			if s.ln.size[i] != r.size {
				panic(fmt.Sprintf("core: request %d lane size %g != %g", r.id, s.ln.size[i], r.size))
			}
			if !e.cfg.Intermittent && !s.suspendedAt(i, last) && !s.finishedAt(i) && !r.pausedView && rate < bview-dataEps {
				panic(fmt.Sprintf("core: request %d rate %g below minimum flow %g", r.id, rate, bview))
			}
			if e.cfg.Workahead && r.recvCap > 0 && rate > r.recvCap+dataEps {
				panic(fmt.Sprintf("core: request %d rate %g exceeds receive cap %g", r.id, rate, r.recvCap))
			}
			if !e.cfg.Workahead && !s.suspendedAt(i, last) && rate > bview+dataEps {
				panic(fmt.Sprintf("core: request %d rate %g with workahead disabled", r.id, rate))
			}
			buf := sent - r.viewedAt(last, bview)
			// Underruns are impossible under minimum-flow scheduling;
			// the intermittent heuristic risks them by design and
			// accounts for them as glitches instead.
			if buf < -dataEps && !e.cfg.Intermittent {
				panic(fmt.Sprintf("core: request %d buffer underrun %g at t=%g", r.id, buf, last))
			}
			if buf > r.bufCap+bview*timeEps+dataEps {
				panic(fmt.Sprintf("core: request %d buffer %g exceeds capacity %g", r.id, buf, r.bufCap))
			}
		}
		for _, c := range s.copies {
			total += c.rate
			if c.sent > c.size+dataEps {
				panic(fmt.Sprintf("core: copy of video %d sent %g > size %g", c.video, c.sent, c.size))
			}
			if c.rate > e.copyRateCap()+dataEps {
				panic(fmt.Sprintf("core: copy of video %d rate %g exceeds cap %g", c.video, c.rate, e.copyRateCap()))
			}
		}
		if total > s.bandwidth+dataEps {
			panic(fmt.Sprintf("core: server %d allocated %g of %g Mb/s", s.id, total, s.bandwidth))
		}
	}
}

// --- introspection for tests and tracing ---

// ServerSnapshot summarizes one server's state.
type ServerSnapshot struct {
	ID        int
	Load      int     // unfinished streams
	Slots     int     // minimum-flow capacity
	Allocated float64 // Σ rates, Mb/s
	Failed    bool
}

// RequestSnapshot summarizes one in-flight request.
type RequestSnapshot struct {
	ID        int64
	Video     int
	Server    int
	Size      float64
	Sent      float64
	Rate      float64
	Buffer    float64
	Hops      int
	Suspended bool
	Glitched  bool
}

// Snapshot returns the state of every server at the current time.
func (e *Engine) Snapshot() []ServerSnapshot {
	out := make([]ServerSnapshot, len(e.servers))
	for i, s := range e.servers {
		total := 0.0
		for _, rate := range s.ln.rate {
			total += rate
		}
		out[i] = ServerSnapshot{
			ID: i, Load: s.load(), Slots: s.slots, Allocated: total, Failed: s.failed,
		}
	}
	return out
}

// Requests returns snapshots of every in-flight request, synced to the
// current simulation time, ordered by request id.
func (e *Engine) Requests() []RequestSnapshot {
	var out []RequestSnapshot
	for _, s := range e.servers {
		// Advance the streams (but not the copies, whose sync times the
		// snapshot must not disturb) to the current instant.
		s.syncStreams(e.now)
		for i, r := range s.active {
			out = append(out, RequestSnapshot{
				ID: r.id, Video: int(r.video), Server: int(r.server),
				Size: r.size, Sent: s.ln.sent[i], Rate: s.ln.rate[i],
				Buffer:    s.bufferOf(i, e.now, e.cfg.ViewRate),
				Hops:      int(r.hops),
				Suspended: s.suspendedAt(i, e.now),
				Glitched:  r.glitched,
			})
		}
	}
	sortRequestSnapshots(out)
	return out
}

func sortRequestSnapshots(s []RequestSnapshot) {
	// Insertion sort: snapshots are test-path only and nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
