package core

// Stream batching: the policy seam for how concurrent requests to the
// same title share cluster streams. The legacy multicast-patching
// mechanism (patching.go) becomes the "patch" policy behind this
// registry; "unicast" shares nothing; "batch-prefix" is the edge-tier
// variant where a joiner whose prefix is cached at the edge taps an
// ongoing *suffix* stream and the edge relays the small catch-up gap —
// so a burst of hits on a hot title costs the cluster one suffix
// stream ("A Strategy to enable Prefix of Multicast VoD through
// dynamic buffer allocation", PAPERS.md).
//
// The registry mirrors RegisterAllocator/RegisterSelector exactly:
// registration is an init-time programming act that panics on empty or
// duplicate names, Validate vets configured names up front, and the
// engine resolves its policy lazily on first use.

import (
	"fmt"
	"slices"
)

// BatchPolicy decides whether a new arrival can be served by joining
// an ongoing transmission instead of opening its own cluster stream.
//
// TryJoin is consulted after load shedding and before the admission
// controller. prefix is the volume (Mb) the arrival's edge node serves
// locally (0 on a miss or with the edge tier disabled). On success the
// policy has done all join bookkeeping (metrics, taps, reschedules)
// except the caller-owned per-class acceptance count and wait
// observations, and must leave engine state untouched on failure.
type BatchPolicy interface {
	// Name returns the policy's registry name.
	Name() string

	// TryJoin attempts to serve the arrival by sharing; it reports
	// whether the request was fully handled.
	TryJoin(e *Engine, v int, t, bufCap, recvCap float64, class int32, prefix float64) bool
}

// Registry names of the built-in batch policies.
const (
	// BatchUnicast shares nothing: every admitted request gets its own
	// cluster stream. The default (matching the engine's historical
	// behaviour when Patching is disabled).
	BatchUnicast = "unicast"
	// BatchPatch is the legacy multicast-patching mechanism: a joiner
	// taps a whole-object primary and receives the missed prefix as a
	// short unicast patch (see patching.go). Configuring
	// Patching.Enabled resolves to this policy.
	BatchPatch = "patch"
	// BatchBatchPrefix batches at the edge: a joiner holding an edge
	// prefix hit taps an ongoing cluster suffix stream for the same
	// title; the edge relays the catch-up gap from its buffer, so the
	// join consumes no cluster bandwidth and no server slot at all.
	BatchBatchPrefix = "batch-prefix"
)

// batchRegistry maps batch-policy names to factories, with the same
// contract as the allocator and controller registries.
var batchRegistry = map[string]func() BatchPolicy{}

// RegisterBatchPolicy adds a named batch policy to the registry. It
// panics on an empty or duplicate name — registration is an init-time
// programming act, not a runtime input.
func RegisterBatchPolicy(name string, factory func() BatchPolicy) {
	if name == "" {
		panic("core: RegisterBatchPolicy with empty name")
	}
	if factory == nil {
		panic("core: RegisterBatchPolicy with nil factory")
	}
	if _, dup := batchRegistry[name]; dup {
		panic(fmt.Sprintf("core: batch policy %q registered twice", name))
	}
	batchRegistry[name] = factory
}

// HasBatchPolicy reports whether a batch policy with the given name
// exists.
func HasBatchPolicy(name string) bool {
	_, ok := batchRegistry[name]
	return ok
}

// BatchPolicyNames returns the registered batch-policy names, sorted.
func BatchPolicyNames() []string {
	names := make([]string, 0, len(batchRegistry))
	for n := range batchRegistry {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// BatchPolicyName returns the effective batch-policy registry name for
// this configuration: Edge.Batch when set, otherwise BatchPatch when
// legacy Patching is enabled and BatchUnicast when not.
func (c Config) BatchPolicyName() string {
	if c.Edge.Batch != "" {
		return c.Edge.Batch
	}
	if c.Patching.Enabled {
		return BatchPatch
	}
	return BatchUnicast
}

// batch returns the engine's batch policy, resolved lazily from the
// registry like selector(); Validate vets the name, so resolution
// cannot fail for a validated configuration.
func (e *Engine) batch() BatchPolicy {
	if e.batchPol == nil {
		name := e.cfg.BatchPolicyName()
		factory, ok := batchRegistry[name]
		if !ok {
			panic(fmt.Sprintf("core: batch policy %q not registered", name))
		}
		e.batchPol = factory()
	}
	return e.batchPol
}

func init() {
	RegisterBatchPolicy(BatchUnicast, func() BatchPolicy { return unicastBatch{} })
	RegisterBatchPolicy(BatchPatch, func() BatchPolicy { return patchBatch{} })
	RegisterBatchPolicy(BatchBatchPrefix, func() BatchPolicy { return batchPrefix{} })
}

// unicastBatch implements BatchUnicast: never join.
type unicastBatch struct{}

func (unicastBatch) Name() string { return BatchUnicast }

func (unicastBatch) TryJoin(*Engine, int, float64, float64, float64, int32, float64) bool {
	return false
}

// patchBatch implements BatchPatch by delegating to the legacy
// patching mechanism, which does its own join bookkeeping.
type patchBatch struct{}

func (patchBatch) Name() string { return BatchPatch }

func (patchBatch) TryJoin(e *Engine, v int, t, bufCap, recvCap float64, class int32, prefix float64) bool {
	_, ok := e.tryPatchJoin(v, t, bufCap, recvCap)
	return ok
}

// batchPrefix implements BatchBatchPrefix. Only an arrival whose
// prefix is served at the edge can join (a miss needs the head from
// the cluster anyway, so it opens its own whole-object stream). The
// join taps the cheapest ongoing suffix stream of the same title whose
// progress — the catch-up the edge must relay from its buffer of the
// shared stream — fits both the batch window and the joiner's client
// buffer. Joining pins the primary like patching does (taps > 0: no
// workahead run-ahead, no migration); it consumes no server slot, so
// no admission test is needed.
type batchPrefix struct{}

func (batchPrefix) Name() string { return BatchBatchPrefix }

func (batchPrefix) TryJoin(e *Engine, v int, t, bufCap, recvCap float64, class int32, prefix float64) bool {
	if prefix <= 0 {
		return false
	}
	maxCatch := e.cfg.Edge.BatchWindow * e.cfg.ViewRate
	if bufCap < maxCatch {
		maxCatch = bufCap // the relayed catch-up is buffered client-side
	}
	// Find the cheapest joinable primary: the suffix stream with the
	// least progress (smallest relay) wins, ties to the lowest id.
	var primary *request
	var primarySent float64
	for _, h := range e.holders(v) {
		s := e.servers[h]
		if s.failed {
			continue
		}
		synced := false
		for i, r := range s.active {
			if int(r.video) != v || r.startOff <= 0 || r.isPatch || s.suspendedAt(i, t) {
				continue
			}
			if !synced {
				s.syncAll(t)
				synced = true
			}
			sent := s.ln.sent[i]
			if s.finishedAt(i) || sent > maxCatch+dataEps {
				continue
			}
			if primary == nil || sent < primarySent ||
				(sent == primarySent && r.id < primary.id) {
				primary, primarySent = r, sent
			}
		}
	}
	if primary == nil {
		return false
	}
	s := e.servers[primary.server]
	s.syncAll(t)
	primary.taps++

	// Every suffix stream of v starts startOff = prefix deep (the
	// prefix size is fixed per run), so the joiner's delivery is
	// exactly: prefix (edge cache) + catch-up (edge relay) + the rest
	// of the suffix (shared stream).
	full := e.cat.Video(v).Size
	shared := full - prefix - primarySent
	e.metrics.Accepted++
	e.metrics.Completions++
	e.metrics.BatchedJoins++
	e.metrics.EdgeHits++
	e.metrics.EdgeMb += prefix + primarySent
	e.metrics.SharedMb += shared
	if e.audit != nil {
		e.auditFail(e.audit.EdgeServe(t, int32(v), prefix, primarySent, shared, 0, full, true))
	}
	// The tap pins the primary to the view rate (spare.go skips
	// taps > 0); re-run the allocation so the pin takes effect now.
	e.reschedule(s, t)
	return true
}
