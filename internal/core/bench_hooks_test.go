package core

// Benchmark entry points into the allocator. These tiny shims pin the
// bench bodies to stable names across refactors of the allocation
// layer, so BENCH_alloc.json baselines stay comparable.

// benchBindAllocator resolves the engine's allocator the way NewEngine
// would (a no-op before the allocator seam existed).
func benchBindAllocator(e *Engine) { e.allocator() }

// benchAllocateWake performs one allocation pass plus the next-wake
// computation — the work reschedule does per event, minus the queue
// push.
func benchAllocateWake(e *Engine, s *server) {
	e.allocator().Allocate(e, s, 0)
}

// benchSpreadSpare spreads the given spare over s's staging candidates.
func benchSpreadSpare(e *Engine, s *server, avail float64) {
	e.spreadSpare(s, 0, avail)
}

// benchSelect runs one admission selection — the controller's candidate
// scan — without the attach/accounting that a real admission performs.
func benchSelect(e *Engine, v int, t float64) *server {
	return e.selector().Select(e, v, t)
}

// benchEdgeProbe runs one edge-tier probe — the per-arrival cache
// lookup (and, for replacing policies, the admit/evict update) that
// precedes admission when the edge tier is on.
func benchEdgeProbe(e *Engine, v int) float64 {
	return e.edgeProbe(v)
}
