package trace

import (
	"strings"
	"testing"
)

func fill(r *Recorder) {
	r.OnAdmit(1, 10, 3, 0, false)
	r.OnAdmit(2, 11, 4, 1, true)
	r.OnReject(3, 5)
	r.OnMigrate(4, 10, 3, 0, 1, false)
	r.OnFinish(5, 10, 3, 1)
	r.OnFailure(6, 0, 2, 1, 0)
	r.OnRecovery(7, 0, true)
}

func TestRecorderCounts(t *testing.T) {
	var r Recorder
	fill(&r)
	if r.Admits != 2 || r.Rejects != 1 || r.Migrations != 1 || r.Finishes != 1 || r.Failures != 1 || r.Recoveries != 1 {
		t.Errorf("counts = %+v", r)
	}
	if len(r.Events) != 7 {
		t.Errorf("recorded %d events, want 7", len(r.Events))
	}
	rec := r.Events[6]
	if rec.Kind != Recovery || rec.From != 0 || !rec.Cold {
		t.Errorf("recovery event = %+v", rec)
	}
}

func TestRecorderCountsOnly(t *testing.T) {
	r := Recorder{CountsOnly: true}
	fill(&r)
	if len(r.Events) != 0 {
		t.Errorf("CountsOnly recorded %d events", len(r.Events))
	}
	if r.Admits != 2 {
		t.Errorf("Admits = %d", r.Admits)
	}
}

func TestEventFields(t *testing.T) {
	var r Recorder
	fill(&r)
	ev := r.Events[1] // the DRM admission
	if ev.Kind != Admit || ev.Time != 2 || ev.Request != 11 || ev.Video != 4 || ev.From != 1 || !ev.ViaDRM {
		t.Errorf("admit event = %+v", ev)
	}
	mig := r.Events[3]
	if mig.Kind != Migrate || mig.From != 0 || mig.To != 1 || mig.Rescue {
		t.Errorf("migrate event = %+v", mig)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Admit: "admit", Reject: "reject", Migrate: "migrate",
		Finish: "finish", Failure: "failure", Recovery: "recovery",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	fill(&r)
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("CSV has %d lines, want header + 7", len(lines))
	}
	if lines[0] != "time,kind,request,video,from,to,via_drm,rescue" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "admit") || !strings.Contains(lines[2], "true") {
		t.Errorf("DRM admit row = %q", lines[2])
	}
	if !strings.Contains(lines[3], "reject") {
		t.Errorf("reject row = %q", lines[3])
	}
}

type failWriter struct{ after int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.after--
	if w.after < 0 {
		return 0, errWrite
	}
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "write failed" }

func TestWriteCSVPropagatesErrors(t *testing.T) {
	var r Recorder
	fill(&r)
	if err := r.WriteCSV(&failWriter{after: 0}); err == nil {
		t.Error("header write error swallowed")
	}
	if err := r.WriteCSV(&failWriter{after: 2}); err == nil {
		t.Error("row write error swallowed")
	}
}

func TestRecorderReplicate(t *testing.T) {
	var r Recorder
	r.OnReplicate(7, 3, 0, 2)
	if r.Replications != 1 || len(r.Events) != 1 {
		t.Fatalf("recorder = %+v", r)
	}
	ev := r.Events[0]
	if ev.Kind != Replicate || ev.Video != 3 || ev.From != 0 || ev.To != 2 {
		t.Errorf("event = %+v", ev)
	}
	if Replicate.String() != "replicate" {
		t.Error("kind name")
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "replicate") {
		t.Errorf("CSV missing replicate row: %s", b.String())
	}
}
