// Package trace records engine lifecycle events for debugging,
// validation, and post-hoc analysis. A Recorder implements
// core.Observer; events can be inspected programmatically or dumped as
// CSV.
//
// Tracing every event of a long run is memory-hungry, so the Recorder
// supports both full recording and a counting-only mode.
package trace

import (
	"fmt"
	"io"
)

// Kind labels one recorded event.
type Kind uint8

// Event kinds, in the order they tend to occur for a stream.
const (
	Admit Kind = iota
	Reject
	Migrate
	Finish
	Failure
	Replicate
	Recovery
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Admit:
		return "admit"
	case Reject:
		return "reject"
	case Migrate:
		return "migrate"
	case Finish:
		return "finish"
	case Failure:
		return "failure"
	case Replicate:
		return "replicate"
	case Recovery:
		return "recovery"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence. Fields not meaningful for a kind
// are zero (e.g. To for an admission).
type Event struct {
	Time    float64
	Kind    Kind
	Request int64
	Video   int
	From    int // source server (admission target, migration source)
	To      int // migration destination
	ViaDRM  bool
	Rescue  bool
	// Cold marks a recovery that wiped the server's storage. Not part
	// of the CSV dump (the column set predates the fault model).
	Cold bool
}

// Recorder implements core.Observer.
type Recorder struct {
	// CountsOnly suppresses event storage; only the tallies are kept.
	CountsOnly bool

	Events []Event

	Admits       int64
	Rejects      int64
	Migrations   int64
	Finishes     int64
	Failures     int64
	Recoveries   int64
	Replications int64
}

// OnAdmit implements core.Observer.
func (r *Recorder) OnAdmit(t float64, reqID int64, video, server int, viaMigration bool) {
	r.Admits++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Admit, Request: reqID, Video: video, From: server, ViaDRM: viaMigration})
	}
}

// OnReject implements core.Observer.
func (r *Recorder) OnReject(t float64, video int) {
	r.Rejects++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Reject, Video: video})
	}
}

// OnMigrate implements core.Observer.
func (r *Recorder) OnMigrate(t float64, reqID int64, video, from, to int, rescue bool) {
	r.Migrations++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Migrate, Request: reqID, Video: video, From: from, To: to, Rescue: rescue})
	}
}

// OnFinish implements core.Observer.
func (r *Recorder) OnFinish(t float64, reqID int64, video, server int) {
	r.Finishes++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Finish, Request: reqID, Video: video, From: server})
	}
}

// OnFailure implements core.Observer.
func (r *Recorder) OnFailure(t float64, server int, rescued, dropped, parked int) {
	r.Failures++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Failure, From: server})
	}
}

// OnRecovery implements core.Observer.
func (r *Recorder) OnRecovery(t float64, server int, cold bool) {
	r.Recoveries++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Recovery, From: server, Cold: cold})
	}
}

// OnReplicate implements core.Observer.
func (r *Recorder) OnReplicate(t float64, video, from, to int) {
	r.Replications++
	if !r.CountsOnly {
		r.Events = append(r.Events, Event{Time: t, Kind: Replicate, Video: video, From: from, To: to})
	}
}

// WriteCSV dumps the recorded events as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,kind,request,video,from,to,via_drm,rescue"); err != nil {
		return err
	}
	for _, e := range r.Events {
		if _, err := fmt.Fprintf(w, "%.3f,%s,%d,%d,%d,%d,%t,%t\n",
			e.Time, e.Kind, e.Request, e.Video, e.From, e.To, e.ViaDRM, e.Rescue); err != nil {
			return err
		}
	}
	return nil
}
