// Package audit implements an always-available invariant auditor for
// the simulation core. It attaches to a core.Engine through the audit
// taps (core.AuditTap) and re-derives, independently of the engine's
// own bookkeeping, the conservation laws the paper's results rest on:
//
//   - bandwidth: per-server allocated bandwidth never exceeds capacity,
//     and every unfinished, transmitting request receives at least
//     b_view — the semi-continuous minimum-flow guarantee;
//   - client state: staging buffers stay within [0, capacity] and no
//     client receives faster than its receive cap;
//   - EFTF: spare bandwidth is fed in earliest-projected-finish order,
//     and no fuller-buffered later-finishing request is fed while an
//     eligible earlier-finishing one still has headroom;
//   - admission: the controller's chosen server could actually accept
//     the stream it claimed to admit, and holds a replica of its video;
//   - DRM: per-request hop budgets and per-admission chain lengths are
//     respected, and every migration lands on a replica holder;
//   - placement: every stream is served by a server that holds its
//     video (tracked against the auditor's own replica map, updated
//     only by replication taps), and dynamic replicas fit storage;
//   - faults: failures and recoveries alternate per server, every
//     stream active at a failure is rescued, dropped, or parked, and a
//     cold recovery resets the auditor's replica and storage model so
//     later placement checks see the wiped state;
//   - partial failures: brownouts and restores alternate per server and
//     never overlap a failure, and a browned-out server's effective
//     bandwidth and slot count equal, bit for bit, the configured
//     capacity scaled by the audited fraction — the auditor keeps its
//     own per-server fraction mirror driven only by the brownout taps;
//   - overload shedding: shed rejections occur only with the controller
//     enabled, only against sheddable (non-premium) classes, and only
//     at utilizations at or above the configured watermark; per-class
//     arrival accounting balances at the end of the run;
//   - accounting: arrivals = accepted + rejected + reneged, accepted
//     streams all finish or are dropped, retry-queue and degraded-mode
//     episodes balance, and delivered volume never exceeds accepted
//     volume;
//   - wake index: each server's incremental next-wake answer equals,
//     bit for bit, the from-scratch minimum over the wake keys stored
//     on its streams and copy jobs — a maintenance bug in the engine's
//     min-tracking (a missed dirty mark, an unfolded copy key) cannot
//     hide behind floating-point slack.
//
// The auditor fails fast: the first violation aborts the run and
// surfaces as a structured *Violation error naming the event, server,
// and request involved. Enable it with Scenario.Audit (or the vodsim
// -audit flag); every tier-1 test and the experiment registry run with
// it on.
package audit

import (
	"fmt"
	"math"

	"semicont/internal/core"
)

// Tolerances mirroring the core fluid model's (core keeps its own
// unexported copies; the values are part of the model contract).
const (
	dataEps = 1e-6 // Mb
	timeEps = 1e-9 // s
)

// Violation is one broken invariant, with enough context to locate the
// offending event in a trace. It implements error and is the error type
// Run returns when auditing rejects a simulation.
type Violation struct {
	// Rule names the invariant: "bandwidth", "min-flow", "receive-cap",
	// "workahead-off", "buffer-underrun", "buffer-overflow", "overrun",
	// "slots", "failed-active", "copy-rate", "eftf-order", "eftf-feed",
	// "intermittent-order", "intermittent-feed", "admission-feasible",
	// "hops", "chain", "migration-target", "replica", "replica-dup",
	// "storage", "fault-state", "failure-accounting", "accounting",
	// "overload-shedding", "wake-exact", "edge-accounting".
	Rule string

	Time    float64 // simulation time of the violating event
	Seq     uint64  // 1-based event sequence number (0 = before first event)
	Event   string  // event kind being processed ("arrival", "wake", …)
	Server  int     // offending server, −1 when not applicable
	Request int64   // offending request, 0 when not applicable
	Detail  string  // human-readable specifics
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("audit: %s violation at t=%.6g (event #%d %s, server %d, request %d): %s",
		v.Rule, v.Time, v.Seq, v.Event, v.Server, v.Request, v.Detail)
}

// Auditor implements core.AuditTap. It keeps its own model of the
// cluster's replica placement and storage use so the checks do not
// trust the engine state they are checking. The zero value is not
// usable; call New.
type Auditor struct {
	cfg    core.Config
	begun  bool
	events uint64

	holders     []map[int32]bool // video → servers holding a replica
	storageUsed []float64        // static + dynamic storage per server, Mb
	rescued     map[int64]bool   // requests moved by failure rescue (hop budget waived)

	// Fault model. down mirrors per-server up/down state exactly — it
	// is driven by the always-on Failure/Recovery taps, so it stays
	// correct under snapshot sampling. lastActive holds per-server
	// active stream counts as of the last *recorded* event; with
	// sampling it can be stale, so checks that need the
	// immediately-previous event's state gate on lastEventSeq.
	lastActive   []int
	down         []bool
	lastEventSeq uint64
	failures     int64
	recoveries   int64

	// Partial-failure model. frac mirrors each server's effective
	// capacity fraction (1 = full), driven only by the always-on
	// Brownout/BrownoutEnd taps; the per-event snapshot check derives
	// the expected bandwidth and slot count from it with the engine's
	// own float expressions, so the comparison is exact.
	frac      []float64
	brownouts int64
	restores  int64

	// Overload-shedding model: shed-tap count, reconciled against the
	// engine's per-class metrics at End.
	shedCount int64

	// Edge-tier model: serve/batched-join counts and an edge-byte
	// mirror accumulated with the engine's own float expression
	// (prefix + catch-up per serve, in tap order), reconciled exactly
	// against Metrics.EdgeHits/BatchedJoins/EdgeMb at End.
	edgeServes  int64
	edgeBatched int64
	edgeMb      float64

	// Current event context, established by BeginEvent, attributed to
	// violations raised by in-event taps.
	curSeq            uint64
	curTime           float64
	curKind           string
	effMaxHops        int     // −1 = unlimited
	effMaxChain       int     // ≥ 1
	effCopyRateCap    float64 // Mb/s
	migrationBounded  bool
	storageCapEnabled bool

	violations []Violation
}

// New returns an empty auditor ready to attach via Engine.SetAuditTap.
func New() *Auditor {
	return &Auditor{rescued: make(map[int64]bool)}
}

// Violations returns every violation recorded so far (at most one per
// run under the fail-fast contract, but unit tests may accumulate more).
func (a *Auditor) Violations() []Violation { return a.violations }

// Events returns how many engine events have been audited.
func (a *Auditor) Events() uint64 { return a.events }

// Err returns the first violation as an error, or nil when clean.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	return &a.violations[0]
}

// fail records a violation with the current event context and returns
// it as the tap error that aborts the run.
func (a *Auditor) fail(rule string, server int, request int64, format string, args ...any) error {
	v := Violation{
		Rule:    rule,
		Time:    a.curTime,
		Seq:     a.curSeq,
		Event:   a.curKind,
		Server:  server,
		Request: request,
		Detail:  fmt.Sprintf(format, args...),
	}
	a.violations = append(a.violations, v)
	return &a.violations[len(a.violations)-1]
}

// Begin implements core.AuditTap.
func (a *Auditor) Begin(b core.AuditBegin) error {
	a.cfg = b.Config
	a.begun = true
	a.curKind = "begin"
	a.holders = make([]map[int32]bool, b.NumVideos)
	for v, hs := range b.Holders {
		set := make(map[int32]bool, len(hs))
		for _, h := range hs {
			set[h] = true
		}
		a.holders[v] = set
	}
	a.storageUsed = append([]float64(nil), b.StaticStorage...)
	a.down = make([]bool, len(b.StaticStorage))
	a.frac = make([]float64, len(b.StaticStorage))
	for i := range a.frac {
		a.frac[i] = 1
	}
	a.effMaxHops = core.UnlimitedHops
	a.effMaxChain = 1
	if m := b.Config.Migration; m.Enabled {
		a.effMaxHops = m.MaxHops
		if m.MaxChain > a.effMaxChain {
			a.effMaxChain = m.MaxChain
		}
		a.migrationBounded = m.MaxHops != core.UnlimitedHops
	}
	a.effCopyRateCap = b.Config.Replication.CopyRateCap
	if a.effCopyRateCap == 0 {
		a.effCopyRateCap = 2 * b.Config.ViewRate
	}
	// A video may legitimately have no replica when the static placement
	// ran out of storage (Result.PlacementShortfall warns); the per-event
	// replica check catches any such video actually being served.
	a.storageCapEnabled = len(b.Config.ServerStorage) > 0
	return nil
}

// BeginEvent implements core.AuditTap.
func (a *Auditor) BeginEvent(seq uint64, t float64, kind core.AuditEventKind, server int32, req int64) error {
	a.curSeq, a.curTime, a.curKind = seq, t, kind.String()
	return nil
}

// Event implements core.AuditTap: the per-event conservation checks.
func (a *Auditor) Event(rec core.AuditEventRecord) error {
	a.events++
	if a.lastActive == nil {
		a.lastActive = make([]int, len(rec.Servers))
	}
	defer func() {
		// Remember the post-event state: the next failure event's
		// dispositions are checked against these counts (valid only
		// when that event immediately follows this one — see
		// lastEventSeq).
		for si := range rec.Servers {
			a.lastActive[si] = len(rec.Servers[si].Requests)
		}
		a.lastEventSeq = rec.Seq
	}()
	bview := a.cfg.ViewRate
	for si := range rec.Servers {
		s := &rec.Servers[si]
		sid := int(s.ID)
		if s.Failed {
			if len(s.Requests) != 0 {
				return a.fail("failed-active", sid, s.Requests[0].ID,
					"failed server still carries %d streams", len(s.Requests))
			}
			if len(s.Copies) != 0 {
				return a.fail("failed-active", sid, 0,
					"failed server still sources %d copy jobs", len(s.Copies))
			}
			continue
		}
		if !a.cfg.Intermittent && len(s.Requests) > s.Slots {
			return a.fail("slots", sid, 0,
				"%d streams on a server with %d minimum-flow slots", len(s.Requests), s.Slots)
		}
		// Effective capacity: the snapshot's bandwidth and slot count
		// must equal the configured capacity scaled by the audited
		// brownout fraction — computed with the engine's own float
		// expressions, so == is exact, not rounded.
		if sid < len(a.frac) && sid < len(a.cfg.ServerBandwidth) {
			wantBW := a.cfg.ServerBandwidth[sid] * a.frac[sid]
			if s.Bandwidth != wantBW {
				return a.fail("fault-state", sid, 0,
					"effective bandwidth %g != %g (configured %g × audited fraction %g)",
					s.Bandwidth, wantBW, a.cfg.ServerBandwidth[sid], a.frac[sid])
			}
			if want := int(wantBW/a.cfg.ViewRate + timeEps); s.Slots != want {
				return a.fail("fault-state", sid, 0,
					"%d slots != %d derived from effective bandwidth %g", s.Slots, want, wantBW)
			}
		}
		total := 0.0
		for ri := range s.Requests {
			r := &s.Requests[ri]
			total += r.Rate
			if err := a.checkRequest(sid, r, bview); err != nil {
				return err
			}
		}
		for ci := range s.Copies {
			c := &s.Copies[ci]
			total += c.Rate
			if c.Sent > c.Size+dataEps {
				return a.fail("overrun", sid, 0,
					"copy of video %d sent %g of %g Mb", c.Video, c.Sent, c.Size)
			}
			if c.Rate > a.effCopyRateCap+dataEps {
				return a.fail("copy-rate", sid, 0,
					"copy of video %d at %g Mb/s exceeds cap %g", c.Video, c.Rate, a.effCopyRateCap)
			}
		}
		if total > s.Bandwidth+dataEps {
			return a.fail("bandwidth", sid, 0,
				"allocated %g of %g Mb/s", total, s.Bandwidth)
		}
		// Wake-exact: the engine's incremental wake index must answer
		// exactly the from-scratch minimum over the stored keys. The
		// comparison is deliberately == (no epsilon): both sides read the
		// same stored float64 keys, so any difference is a maintenance
		// bug, not rounding.
		scan := math.Inf(1)
		for ri := range s.Requests {
			if k := s.Requests[ri].WakeKey; k < scan {
				scan = k
			}
		}
		for ci := range s.Copies {
			if k := s.Copies[ci].WakeKey; k < scan {
				scan = k
			}
		}
		if s.NextWake != scan {
			return a.fail("wake-exact", sid, 0,
				"incremental next-wake %g != %g from-scratch min over %d stored keys",
				s.NextWake, scan, len(s.Requests)+len(s.Copies))
		}
		if a.storageCapEnabled {
			if cap := a.cfg.ServerStorage[sid]; cap > 0 && a.storageUsed[sid] > cap+dataEps {
				return a.fail("storage", sid, 0,
					"storage %g Mb exceeds capacity %g Mb", a.storageUsed[sid], cap)
			}
		}
	}
	return nil
}

// checkRequest audits one in-flight request's fluid state.
func (a *Auditor) checkRequest(sid int, r *core.AuditRequestState, bview float64) error {
	if r.Sent > r.Size+dataEps {
		return a.fail("overrun", sid, r.ID, "sent %g of %g Mb", r.Sent, r.Size)
	}
	if !a.cfg.Intermittent && !r.Suspended && !r.Finished() && !r.PausedView && r.Rate < bview-dataEps {
		return a.fail("min-flow", sid, r.ID,
			"rate %g Mb/s below the b_view=%g minimum-flow guarantee", r.Rate, bview)
	}
	if a.cfg.Workahead && r.RecvCap > 0 && r.Rate > r.RecvCap+dataEps {
		return a.fail("receive-cap", sid, r.ID,
			"rate %g Mb/s exceeds client receive cap %g", r.Rate, r.RecvCap)
	}
	if !a.cfg.Workahead && !r.Suspended && r.Rate > bview+dataEps {
		return a.fail("workahead-off", sid, r.ID,
			"rate %g Mb/s above b_view=%g with workahead disabled", r.Rate, bview)
	}
	if r.Buffer < -dataEps && !a.cfg.Intermittent {
		return a.fail("buffer-underrun", sid, r.ID,
			"buffer %g Mb at t=%g (playback outran delivery under minimum-flow)", r.Buffer, r.SyncedAt)
	}
	if r.Buffer > r.BufCap+bview*timeEps+dataEps {
		return a.fail("buffer-overflow", sid, r.ID,
			"buffer %g Mb exceeds capacity %g Mb", r.Buffer, r.BufCap)
	}
	if v := int(r.Video); v >= 0 && v < len(a.holders) && !a.holders[v][int32(sid)] {
		return a.fail("replica", sid, r.ID,
			"served by a server that holds no replica of video %d", v)
	}
	if a.migrationBounded && !a.rescued[r.ID] && int(r.Hops) > a.effMaxHops {
		return a.fail("hops", sid, r.ID,
			"%d lifetime migrations exceed MaxHops=%d", r.Hops, a.effMaxHops)
	}
	return nil
}

// SpareOrder implements core.AuditTap: the EFTF ordering checks.
func (a *Auditor) SpareOrder(t float64, server int32, discipline core.SpareDiscipline, grants []core.SpareGrant) error {
	if discipline != core.EFTF && discipline != core.LFTF {
		return nil
	}
	starved := false // an earlier candidate still had receive headroom
	for i := range grants {
		g := &grants[i]
		if i > 0 {
			prev := &grants[i-1]
			inOrder := g.Remaining+dataEps >= prev.Remaining
			if discipline == core.LFTF {
				inOrder = g.Remaining-dataEps <= prev.Remaining
			}
			if !inOrder {
				return a.fail("eftf-order", int(server), g.Request,
					"%s feed order broken: remaining %g Mb fed after %g Mb (request %d)",
					discipline, g.Remaining, prev.Remaining, prev.Request)
			}
		}
		if g.Extra > dataEps && starved {
			return a.fail("eftf-feed", int(server), g.Request,
				"granted %g Mb/s while an earlier-finishing candidate still had receive headroom", g.Extra)
		}
		saturated := g.RecvCap > 0 && g.RateBefore+g.Extra >= g.RecvCap-dataEps
		if !saturated {
			starved = true
		}
	}
	return nil
}

// IntermittentOrder implements core.AuditTap: ascending-buffer feeding.
func (a *Auditor) IntermittentOrder(t float64, server int32, grants []core.IntermittentGrant) error {
	drained := false // bandwidth ran out at some earlier stream
	for i := range grants {
		g := &grants[i]
		if i > 0 && g.Buffer+dataEps < grants[i-1].Buffer {
			return a.fail("intermittent-order", int(server), g.Request,
				"buffer %g Mb considered after %g Mb (request %d)",
				g.Buffer, grants[i-1].Buffer, grants[i-1].Request)
		}
		if g.PausedFull {
			continue // paused viewer with a full buffer: legitimately unfed anywhere
		}
		if g.Rate <= 0 {
			drained = true
		} else if drained {
			return a.fail("intermittent-feed", int(server), g.Request,
				"fed %g Mb/s after a drier stream was paused", g.Rate)
		}
	}
	return nil
}

// Admission implements core.AuditTap: the selector's feasibility claim.
// A chosen server must have been able to accept the stream (the engine
// reports its own re-check as feasible) and must hold a replica of the
// video per the auditor's independent replica model.
func (a *Auditor) Admission(t float64, video int32, server int32, viaDRM, feasible bool) error {
	if !feasible {
		return a.fail("admission-feasible", int(server), 0,
			"selector chose a server that cannot accept video %d (viaDRM=%t)", video, viaDRM)
	}
	if v := int(video); v >= 0 && v < len(a.holders) && !a.holders[v][server] {
		return a.fail("admission-feasible", int(server), 0,
			"selector chose a server holding no replica of video %d", v)
	}
	return nil
}

// Migration implements core.AuditTap: hop budgets and target legality.
func (a *Auditor) Migration(t float64, req int64, video int32, from, to int32, hops int32, rescue bool) error {
	if from == to {
		return a.fail("migration-target", int(to), req, "migrated onto its own server")
	}
	if v := int(video); v >= 0 && v < len(a.holders) && !a.holders[v][to] {
		return a.fail("migration-target", int(to), req,
			"migrated to a server holding no replica of video %d", v)
	}
	if rescue {
		a.rescued[req] = true
		return nil
	}
	if a.migrationBounded && !a.rescued[req] && int(hops) > a.effMaxHops {
		return a.fail("hops", int(to), req,
			"migration %d exceeds MaxHops=%d", hops, a.effMaxHops)
	}
	return nil
}

// Failure implements core.AuditTap: a failure must dispose of exactly
// the streams active on the server when it failed (rescued, dropped,
// or parked — none silently vanish), and failures must strike only
// servers that were up.
func (a *Auditor) Failure(t float64, server int32, rescued, dropped, parked int) error {
	a.failures++
	sid := int(server)
	if sid < len(a.down) && a.down[sid] {
		return a.fail("fault-state", sid, 0, "failure of a server already failed")
	}
	if sid < len(a.frac) && a.frac[sid] != 1 {
		return a.fail("fault-state", sid, 0,
			"failure of a server browned out to %g (its restore must come first)", a.frac[sid])
	}
	if sid < len(a.down) {
		a.down[sid] = true
	}
	if rescued < 0 || dropped < 0 || parked < 0 {
		return a.fail("failure-accounting", sid, 0,
			"negative disposition: %d rescued, %d dropped, %d parked", rescued, dropped, parked)
	}
	// The full accounting identity needs the stream count as of the
	// event just before this one. Under snapshot sampling lastActive
	// may be older than that, so the check runs only when the previous
	// event was actually recorded (always true without sampling).
	if a.lastEventSeq == a.curSeq-1 {
		was := 0
		if sid < len(a.lastActive) {
			was = a.lastActive[sid]
		}
		if rescued+dropped+parked != was {
			return a.fail("failure-accounting", sid, 0,
				"%d rescued + %d dropped + %d parked != %d streams active at failure",
				rescued, dropped, parked, was)
		}
	}
	return nil
}

// Recovery implements core.AuditTap: recoveries must follow failures,
// and a cold recovery resets the auditor's independent replica and
// storage model so subsequent placement checks reflect the wipe.
func (a *Auditor) Recovery(t float64, server int32, cold bool) error {
	a.recoveries++
	sid := int(server)
	if sid >= len(a.down) || !a.down[sid] {
		return a.fail("fault-state", sid, 0, "recovery of a server that was not failed")
	}
	a.down[sid] = false
	if cold {
		for _, set := range a.holders {
			delete(set, server)
		}
		if sid < len(a.storageUsed) {
			a.storageUsed[sid] = 0
		}
	}
	return nil
}

// Brownout implements core.AuditTap: brownouts strike only servers
// that are up and at full capacity, with a fraction in (0, 1]. The
// audited fraction becomes the auditor's mirror that the per-event
// effective-capacity check derives expectations from.
func (a *Auditor) Brownout(t float64, server int32, frac float64, rescued, dropped, parked int) error {
	a.brownouts++
	sid := int(server)
	if sid < len(a.down) && a.down[sid] {
		return a.fail("fault-state", sid, 0, "brownout of a failed server")
	}
	if sid < len(a.frac) && a.frac[sid] != 1 {
		return a.fail("fault-state", sid, 0,
			"brownout of a server already dimmed to %g", a.frac[sid])
	}
	if math.IsNaN(frac) || frac <= 0 || frac > 1 {
		return a.fail("fault-state", sid, 0, "brownout fraction %g outside (0, 1]", frac)
	}
	if rescued < 0 || dropped < 0 || parked < 0 {
		return a.fail("failure-accounting", sid, 0,
			"negative brownout disposition: %d rescued, %d dropped, %d parked",
			rescued, dropped, parked)
	}
	if sid < len(a.frac) {
		a.frac[sid] = frac
	}
	return nil
}

// BrownoutEnd implements core.AuditTap: restores must follow brownouts
// per server, and reset the auditor's fraction mirror to full capacity.
func (a *Auditor) BrownoutEnd(t float64, server int32) error {
	a.restores++
	sid := int(server)
	if sid < len(a.down) && a.down[sid] {
		return a.fail("fault-state", sid, 0, "restore of a failed server")
	}
	if sid >= len(a.frac) || a.frac[sid] == 1 {
		return a.fail("fault-state", sid, 0, "restore of a server that was not browned out")
	}
	a.frac[sid] = 1
	return nil
}

// Shed implements core.AuditTap: the overload-shedding rule. A shed
// rejection is legal only with the controller enabled, against a
// sheddable class (never 0, the protected premium tier), and at an
// instantaneous utilization at or above the configured watermark.
func (a *Auditor) Shed(t float64, video int32, class int32, util, watermark float64) error {
	a.shedCount++
	if !a.cfg.Shed.Enabled {
		return a.fail("overload-shedding", -1, 0,
			"arrival shed with the shed controller disabled")
	}
	if class <= 0 || int(class) >= len(a.cfg.Classes) {
		return a.fail("overload-shedding", -1, 0,
			"shed class %d outside the sheddable range [1, %d)", class, len(a.cfg.Classes))
	}
	if watermark != a.cfg.Shed.Watermark {
		return a.fail("overload-shedding", -1, 0,
			"shed against watermark %g, configured %g", watermark, a.cfg.Shed.Watermark)
	}
	if math.IsNaN(util) || util < watermark {
		return a.fail("overload-shedding", -1, 0,
			"arrival shed at utilization %g below watermark %g", util, watermark)
	}
	return nil
}

// EdgeServe implements core.AuditTap: the edge-accounting rule. Every
// edge serve must decompose the whole object exactly — prefix bytes
// from the edge cache, plus the relayed catch-up and multicast share
// of a batched join, plus the unicast cluster suffix, must equal the
// object's size — with every part non-negative, only on a run with
// the edge tier enabled, and with the batched shape matching the
// configured batch policy.
func (a *Auditor) EdgeServe(t float64, video int32, prefixMb, catchupMb, sharedMb, suffixMb, sizeMb float64, batched bool) error {
	a.edgeServes++
	if a.cfg.Edge.Nodes == 0 {
		return a.fail("edge-accounting", -1, 0,
			"edge serve of video %d with the edge tier disabled", video)
	}
	if prefixMb <= 0 || catchupMb < 0 || sharedMb < 0 || suffixMb < 0 {
		return a.fail("edge-accounting", -1, 0,
			"video %d: malformed decomposition prefix=%g catchup=%g shared=%g suffix=%g",
			video, prefixMb, catchupMb, sharedMb, suffixMb)
	}
	if got := prefixMb + catchupMb + sharedMb + suffixMb; math.Abs(got-sizeMb) > dataEps {
		return a.fail("edge-accounting", -1, 0,
			"video %d: prefix %g + catchup %g + shared %g + suffix %g = %g != object size %g",
			video, prefixMb, catchupMb, sharedMb, suffixMb, got, sizeMb)
	}
	if batched {
		a.edgeBatched++
		if a.cfg.BatchPolicyName() != core.BatchBatchPrefix {
			return a.fail("edge-accounting", -1, 0,
				"batched join of video %d under batch policy %q", video, a.cfg.BatchPolicyName())
		}
		if suffixMb != 0 {
			return a.fail("edge-accounting", -1, 0,
				"batched join of video %d opened a %g Mb cluster suffix stream", video, suffixMb)
		}
	} else if catchupMb != 0 || sharedMb != 0 {
		return a.fail("edge-accounting", -1, 0,
			"unbatched serve of video %d with catchup %g / shared %g Mb", video, catchupMb, sharedMb)
	}
	a.edgeMb += prefixMb + catchupMb
	return nil
}

// Chain implements core.AuditTap: per-admission chain bounds.
func (a *Auditor) Chain(t float64, length int) error {
	if length < 1 || length > a.effMaxChain {
		return a.fail("chain", -1, 0,
			"DRM chain of %d moves outside [1, %d]", length, a.effMaxChain)
	}
	return nil
}

// Replication implements core.AuditTap: replica and storage accounting.
func (a *Auditor) Replication(t float64, video, from, to int32, size float64) error {
	v := int(video)
	if v < 0 || v >= len(a.holders) {
		return a.fail("replica", int(to), 0, "replicated unknown video %d", v)
	}
	if !a.holders[v][from] {
		return a.fail("replica", int(from), 0,
			"replica of video %d copied from a non-holder", v)
	}
	if a.holders[v][to] {
		return a.fail("replica-dup", int(to), 0,
			"replica of video %d installed on a server that already holds it", v)
	}
	a.holders[v][to] = true
	a.storageUsed[to] += size
	if a.storageCapEnabled {
		if cap := a.cfg.ServerStorage[to]; cap > 0 && a.storageUsed[to] > cap+dataEps {
			return a.fail("storage", int(to), 0,
				"replica of video %d (%g Mb) overflows storage: %g of %g Mb", v, size, a.storageUsed[to], cap)
		}
	}
	return nil
}

// End implements core.AuditTap: global accounting identities, checked
// once the run has drained.
func (a *Auditor) End(t float64, m core.Metrics) error {
	a.curTime, a.curKind = t, "end"
	if m.Arrivals != m.Accepted+m.Rejected+m.Reneged {
		return a.fail("accounting", -1, 0,
			"%d arrivals != %d accepted + %d rejected + %d reneged",
			m.Arrivals, m.Accepted, m.Rejected, m.Reneged)
	}
	if m.Accepted != m.Completions+m.DroppedStreams {
		return a.fail("accounting", -1, 0,
			"%d accepted != %d completions + %d dropped after drain", m.Accepted, m.Completions, m.DroppedStreams)
	}
	if m.RetriesQueued != m.RetriedAdmissions+m.Reneged {
		return a.fail("accounting", -1, 0,
			"%d retries queued != %d retried admissions + %d reneged after drain",
			m.RetriesQueued, m.RetriedAdmissions, m.Reneged)
	}
	if m.DegradedParked != m.DegradedResumed+m.DegradedGlitches {
		return a.fail("accounting", -1, 0,
			"%d parked != %d resumed + %d glitched after drain",
			m.DegradedParked, m.DegradedResumed, m.DegradedGlitches)
	}
	if a.failures != m.Failures || a.recoveries != m.Recoveries {
		return a.fail("fault-state", -1, 0,
			"audited %d failures / %d recoveries, metrics report %d / %d",
			a.failures, a.recoveries, m.Failures, m.Recoveries)
	}
	downNow := int64(0)
	for _, f := range a.down {
		if f {
			downNow++
		}
	}
	if m.Failures-m.Recoveries != downNow {
		return a.fail("fault-state", -1, 0,
			"%d failures − %d recoveries != %d servers down at end",
			m.Failures, m.Recoveries, downNow)
	}
	if a.brownouts != m.Brownouts || a.restores != m.BrownoutRestores {
		return a.fail("fault-state", -1, 0,
			"audited %d brownouts / %d restores, metrics report %d / %d",
			a.brownouts, a.restores, m.Brownouts, m.BrownoutRestores)
	}
	dimmedNow := int64(0)
	for _, f := range a.frac {
		if f != 1 {
			dimmedNow++
		}
	}
	if m.Brownouts-m.BrownoutRestores != dimmedNow {
		return a.fail("fault-state", -1, 0,
			"%d brownouts − %d restores != %d servers dimmed at end",
			m.Brownouts, m.BrownoutRestores, dimmedNow)
	}
	if len(a.cfg.Classes) > 0 {
		var classArrivals, classShed int64
		for c := range a.cfg.Classes {
			classArrivals += m.ClassArrivals[c]
			classShed += m.ClassShed[c]
			if m.ClassArrivals[c] != m.ClassAccepted[c]+m.ClassRejected[c]+m.ClassReneged[c] {
				return a.fail("accounting", -1, 0,
					"class %d: %d arrivals != %d accepted + %d rejected + %d reneged",
					c, m.ClassArrivals[c], m.ClassAccepted[c], m.ClassRejected[c], m.ClassReneged[c])
			}
			if m.ClassShed[c] > m.ClassRejected[c] {
				return a.fail("overload-shedding", -1, 0,
					"class %d: %d shed exceeds %d rejected", c, m.ClassShed[c], m.ClassRejected[c])
			}
		}
		if classArrivals != m.Arrivals {
			return a.fail("accounting", -1, 0,
				"per-class arrivals sum to %d, metrics report %d", classArrivals, m.Arrivals)
		}
		if classShed != a.shedCount {
			return a.fail("overload-shedding", -1, 0,
				"per-class shed counts sum to %d, audited %d shed taps", classShed, a.shedCount)
		}
		if a.shedCount > 0 && m.SheddingActivated == 0 {
			return a.fail("overload-shedding", -1, 0,
				"%d arrivals shed but the controller never reported activating", a.shedCount)
		}
	} else if a.shedCount > 0 {
		return a.fail("overload-shedding", -1, 0,
			"%d arrivals shed on a classless run", a.shedCount)
	}
	if m.DeliveredBytes > m.AcceptedBytes*(1+1e-9)+dataEps {
		return a.fail("accounting", -1, 0,
			"delivered %g Mb exceeds accepted %g Mb", m.DeliveredBytes, m.AcceptedBytes)
	}
	if a.edgeServes != m.EdgeHits || a.edgeBatched != m.BatchedJoins {
		return a.fail("edge-accounting", -1, 0,
			"audited %d edge serves / %d batched joins, metrics report %d / %d",
			a.edgeServes, a.edgeBatched, m.EdgeHits, m.BatchedJoins)
	}
	// The byte mirror was accumulated with the engine's own expression
	// in the engine's own order, so the comparison is exact — any
	// difference is an accounting path the EdgeServe tap missed.
	if a.edgeMb != m.EdgeMb {
		return a.fail("edge-accounting", -1, 0,
			"audited edge bytes %g != metrics EdgeMb %g", a.edgeMb, m.EdgeMb)
	}
	if a.cfg.Edge.Nodes > 0 {
		if m.ClusterEgressMb != m.DeliveredBytes {
			return a.fail("edge-accounting", -1, 0,
				"cluster egress %g Mb != delivered %g Mb", m.ClusterEgressMb, m.DeliveredBytes)
		}
	} else if m.ClusterEgressMb != 0 || m.EdgeMb != 0 || m.EdgeHits != 0 || m.BatchedJoins != 0 {
		return a.fail("edge-accounting", -1, 0,
			"edge metrics nonzero with the edge tier disabled: hits=%d joins=%d edge=%g egress=%g",
			m.EdgeHits, m.BatchedJoins, m.EdgeMb, m.ClusterEgressMb)
	}
	if m.ChainLengthTotal > m.Migrations {
		return a.fail("accounting", -1, 0,
			"chain-length total %d exceeds %d migrations", m.ChainLengthTotal, m.Migrations)
	}
	return nil
}
