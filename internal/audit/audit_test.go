package audit

import (
	"errors"
	"strings"
	"testing"

	"semicont/internal/core"
)

// testAuditor returns an auditor attached to a fixed two-server cluster:
// 30 Mb/s each (10 minimum-flow slots), b_view = 3, staging with a
// 100 Mb buffer, DRM with MaxHops=1/MaxChain=1, replication with
// 1000 Mb of storage per server. Video 0 lives on server 0 only; video 1
// on both. An event context is already established.
func testAuditor(t *testing.T) *Auditor {
	t.Helper()
	a := New()
	cfg := core.Config{
		ServerBandwidth: []float64{30, 30},
		ViewRate:        3,
		BufferCapacity:  100,
		Workahead:       true,
		ReceiveCap:      30,
		Migration:       core.MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
		Replication:     core.ReplicationConfig{Enabled: true},
		ServerStorage:   []float64{1000, 1000},
	}
	if err := a.Begin(core.AuditBegin{
		Config:        cfg,
		NumVideos:     2,
		Holders:       [][]int32{{0}, {0, 1}},
		StaticStorage: []float64{500, 300},
	}); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := a.BeginEvent(1, 10, core.AuditWake, 0, 0); err != nil {
		t.Fatalf("BeginEvent: %v", err)
	}
	return a
}

// okRequest returns a request state that passes every check on its
// holder's server.
func okRequest(id int64, video int32) core.AuditRequestState {
	return core.AuditRequestState{
		ID: id, Video: video, Rate: 3, Sent: 10, Size: 100,
		Buffer: 5, BufCap: 100, RecvCap: 30, SyncedAt: 10,
	}
}

// record wraps per-server request/copy lists into a full event record.
func record(servers ...core.AuditServerState) core.AuditEventRecord {
	return core.AuditEventRecord{Seq: 1, Time: 10, Kind: core.AuditWake, Server: 0, Servers: servers}
}

func server(id int32, reqs []core.AuditRequestState, copies []core.AuditCopyState) core.AuditServerState {
	return core.AuditServerState{ID: id, Bandwidth: 30, Slots: 10, Requests: reqs, Copies: copies}
}

// wantRule asserts err is a *Violation with the given rule.
func wantRule(t *testing.T, err error, rule string) *Violation {
	t.Helper()
	if err == nil {
		t.Fatalf("want %q violation, got nil", rule)
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *Violation, got %T: %v", err, err)
	}
	if v.Rule != rule {
		t.Fatalf("want rule %q, got %q (%v)", rule, v.Rule, v)
	}
	return v
}

func TestEventCleanStatePasses(t *testing.T) {
	a := testAuditor(t)
	rec := record(
		server(0, []core.AuditRequestState{okRequest(1, 0), okRequest(2, 1)}, nil),
		server(1, []core.AuditRequestState{okRequest(3, 1)}, nil),
	)
	if err := a.Event(rec); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	if a.Events() != 1 {
		t.Errorf("Events() = %d, want 1", a.Events())
	}
	if a.Err() != nil {
		t.Errorf("Err() = %v", a.Err())
	}
}

func TestEventViolations(t *testing.T) {
	cases := []struct {
		name string
		rule string
		rec  func() core.AuditEventRecord
	}{
		{"over-allocated bandwidth", "bandwidth", func() core.AuditEventRecord {
			// Two streams at 16+15 Mb/s on a 30 Mb/s server; uncapped
			// clients so the per-request checks stay quiet.
			r1, r2 := okRequest(1, 0), okRequest(2, 0)
			r1.Rate, r1.RecvCap = 16, 0
			r2.Rate, r2.RecvCap = 15, 0
			return record(server(0, []core.AuditRequestState{r1, r2}, nil))
		}},
		{"below minimum flow", "min-flow", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Rate = 2 // < b_view = 3
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"receive cap exceeded", "receive-cap", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Rate = 31 // > RecvCap = 30
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"buffer underrun", "buffer-underrun", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Buffer = -1
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"buffer overflow", "buffer-overflow", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Buffer = 200 // > BufCap = 100
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"transmission overrun", "overrun", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Sent = 101 // > Size = 100
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"slots oversubscribed", "slots", func() core.AuditEventRecord {
			reqs := make([]core.AuditRequestState, 11) // > 10 slots
			for i := range reqs {
				reqs[i] = okRequest(int64(i+1), 0)
			}
			return record(server(0, reqs, nil))
		}},
		{"failed server still active", "failed-active", func() core.AuditEventRecord {
			s := server(0, []core.AuditRequestState{okRequest(1, 0)}, nil)
			s.Failed = true
			return record(s)
		}},
		{"served by non-holder", "replica", func() core.AuditEventRecord {
			// Video 0 lives on server 0 only.
			return record(server(1, []core.AuditRequestState{okRequest(1, 0)}, nil))
		}},
		{"hop budget exceeded", "hops", func() core.AuditEventRecord {
			r := okRequest(1, 0)
			r.Hops = 2 // MaxHops = 1
			return record(server(0, []core.AuditRequestState{r}, nil))
		}},
		{"copy rate exceeded", "copy-rate", func() core.AuditEventRecord {
			// Default cap = 2 × b_view = 6 Mb/s.
			c := core.AuditCopyState{Video: 0, Target: 1, Rate: 7, Sent: 1, Size: 100}
			return record(server(0, nil, []core.AuditCopyState{c}))
		}},
		{"copy overrun", "overrun", func() core.AuditEventRecord {
			c := core.AuditCopyState{Video: 0, Target: 1, Rate: 6, Sent: 101, Size: 100}
			return record(server(0, nil, []core.AuditCopyState{c}))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuditor(t)
			wantRule(t, a.Event(tc.rec()), tc.rule)
		})
	}
}

func TestEventAllowsExemptStates(t *testing.T) {
	a := testAuditor(t)
	finished := okRequest(1, 0)
	finished.Sent, finished.Rate = 100, 0 // done transmitting: 0 rate is fine
	paused := okRequest(2, 0)
	paused.PausedView, paused.Rate = true, 0 // viewer paused: exempt from min-flow
	suspended := okRequest(3, 1)
	suspended.Suspended, suspended.Rate = true, 0 // mid-switch blackout
	rec := record(server(0, []core.AuditRequestState{finished, paused, suspended}, nil))
	if err := a.Event(rec); err != nil {
		t.Fatalf("exempt states flagged: %v", err)
	}
}

func TestSpareOrderViolations(t *testing.T) {
	grant := func(req int64, remaining, before, extra, cap float64) core.SpareGrant {
		return core.SpareGrant{Request: req, Remaining: remaining, RateBefore: before, Extra: extra, RecvCap: cap}
	}
	t.Run("eftf order broken", func(t *testing.T) {
		a := testAuditor(t)
		// EFTF must feed the smaller remaining volume first.
		err := a.SpareOrder(10, 0, core.EFTF, []core.SpareGrant{
			grant(1, 50, 3, 10, 30),
			grant(2, 20, 3, 10, 30),
		})
		wantRule(t, err, "eftf-order")
	})
	t.Run("lftf order broken", func(t *testing.T) {
		a := testAuditor(t)
		err := a.SpareOrder(10, 0, core.LFTF, []core.SpareGrant{
			grant(1, 20, 3, 10, 30),
			grant(2, 50, 3, 10, 30),
		})
		wantRule(t, err, "eftf-order")
	})
	t.Run("later grant past starved candidate", func(t *testing.T) {
		a := testAuditor(t)
		// Request 1 got nothing and still had receive headroom; feeding
		// request 2 anyway breaks the greedy EFTF property.
		err := a.SpareOrder(10, 0, core.EFTF, []core.SpareGrant{
			grant(1, 20, 3, 0, 30),
			grant(2, 50, 3, 5, 30),
		})
		wantRule(t, err, "eftf-feed")
	})
	t.Run("saturated candidate is not starving", func(t *testing.T) {
		a := testAuditor(t)
		// Request 1 reached its receive cap; request 2 may be fed.
		err := a.SpareOrder(10, 0, core.EFTF, []core.SpareGrant{
			grant(1, 20, 3, 27, 30),
			grant(2, 50, 3, 5, 30),
		})
		if err != nil {
			t.Fatalf("legal EFTF pass flagged: %v", err)
		}
	})
	t.Run("even split has no order", func(t *testing.T) {
		a := testAuditor(t)
		err := a.SpareOrder(10, 0, core.EvenSplit, []core.SpareGrant{
			grant(1, 50, 3, 10, 30),
			grant(2, 20, 3, 10, 30),
		})
		if err != nil {
			t.Fatalf("even-split pass flagged: %v", err)
		}
	})
}

func TestIntermittentOrderViolations(t *testing.T) {
	g := func(req int64, buf, rate float64, pausedFull bool) core.IntermittentGrant {
		return core.IntermittentGrant{Request: req, Buffer: buf, Rate: rate, PausedFull: pausedFull}
	}
	t.Run("descending buffers", func(t *testing.T) {
		a := testAuditor(t)
		err := a.IntermittentOrder(10, 0, []core.IntermittentGrant{
			g(1, 8, 3, false), g(2, 2, 3, false),
		})
		wantRule(t, err, "intermittent-order")
	})
	t.Run("fed past a drier paused stream", func(t *testing.T) {
		a := testAuditor(t)
		err := a.IntermittentOrder(10, 0, []core.IntermittentGrant{
			g(1, 1, 0, false), g(2, 2, 3, false),
		})
		wantRule(t, err, "intermittent-feed")
	})
	t.Run("paused-full streams are exempt", func(t *testing.T) {
		a := testAuditor(t)
		err := a.IntermittentOrder(10, 0, []core.IntermittentGrant{
			g(1, 1, 3, false), g(2, 8, 0, true), g(3, 9, 3, false),
		})
		if err != nil {
			t.Fatalf("legal intermittent pass flagged: %v", err)
		}
	})
}

func TestMigrationViolations(t *testing.T) {
	t.Run("self migration", func(t *testing.T) {
		a := testAuditor(t)
		wantRule(t, a.Migration(10, 1, 1, 0, 0, 1, false), "migration-target")
	})
	t.Run("target holds no replica", func(t *testing.T) {
		a := testAuditor(t)
		// Video 0 lives on server 0 only.
		wantRule(t, a.Migration(10, 1, 0, 0, 1, 1, false), "migration-target")
	})
	t.Run("hop budget", func(t *testing.T) {
		a := testAuditor(t)
		wantRule(t, a.Migration(10, 1, 1, 0, 1, 2, false), "hops")
	})
	t.Run("rescue waives the hop budget", func(t *testing.T) {
		a := testAuditor(t)
		if err := a.Migration(10, 1, 1, 0, 1, 5, true); err != nil {
			t.Fatalf("rescue migration flagged: %v", err)
		}
		// The rescued request may then appear with excess hops.
		r := okRequest(1, 1)
		r.Hops = 5
		if err := a.Event(record(server(0, []core.AuditRequestState{r}, nil))); err != nil {
			t.Fatalf("rescued request flagged: %v", err)
		}
	})
}

func TestAdmissionViolations(t *testing.T) {
	t.Run("feasible holder passes", func(t *testing.T) {
		a := testAuditor(t)
		if err := a.Admission(10, 1, 1, false, true); err != nil {
			t.Fatalf("legal admission flagged: %v", err)
		}
	})
	t.Run("infeasible claim", func(t *testing.T) {
		a := testAuditor(t)
		wantRule(t, a.Admission(10, 1, 1, false, false), "admission-feasible")
	})
	t.Run("server holds no replica", func(t *testing.T) {
		a := testAuditor(t)
		// Video 0 lives on server 0 only.
		wantRule(t, a.Admission(10, 0, 1, true, true), "admission-feasible")
	})
	t.Run("replication unlocks the holder check", func(t *testing.T) {
		a := testAuditor(t)
		if err := a.Replication(10, 0, 0, 1, 100); err != nil {
			t.Fatalf("legal replication flagged: %v", err)
		}
		if err := a.Admission(11, 0, 1, false, true); err != nil {
			t.Fatalf("post-replication admission flagged: %v", err)
		}
	})
}

func TestChainViolations(t *testing.T) {
	a := testAuditor(t)
	if err := a.Chain(10, 1); err != nil {
		t.Fatalf("legal chain flagged: %v", err)
	}
	wantRule(t, a.Chain(10, 2), "chain") // MaxChain = 1
	wantRule(t, a.Chain(10, 0), "chain")
}

func TestReplicationViolations(t *testing.T) {
	t.Run("copied from non-holder", func(t *testing.T) {
		a := testAuditor(t)
		wantRule(t, a.Replication(10, 0, 1, 0, 100), "replica")
	})
	t.Run("duplicate install", func(t *testing.T) {
		a := testAuditor(t)
		// Video 1 already lives on server 1.
		wantRule(t, a.Replication(10, 1, 0, 1, 100), "replica-dup")
	})
	t.Run("storage overflow", func(t *testing.T) {
		a := testAuditor(t)
		// Server 1 has 300 of 1000 Mb used.
		wantRule(t, a.Replication(10, 0, 0, 1, 800), "storage")
	})
	t.Run("install updates the replica map", func(t *testing.T) {
		a := testAuditor(t)
		if err := a.Replication(10, 0, 0, 1, 100); err != nil {
			t.Fatalf("legal replication flagged: %v", err)
		}
		// Server 1 may now serve video 0 …
		if err := a.Event(record(server(1, []core.AuditRequestState{okRequest(1, 0)}, nil))); err != nil {
			t.Fatalf("post-replication serving flagged: %v", err)
		}
		// … and may migrate video-0 streams in.
		if err := a.Migration(11, 2, 0, 0, 1, 1, false); err != nil {
			t.Fatalf("post-replication migration flagged: %v", err)
		}
	})
}

func TestEndAccounting(t *testing.T) {
	good := core.Metrics{
		Arrivals: 10, Accepted: 7, Rejected: 3,
		Completions: 6, DroppedStreams: 1,
		AcceptedBytes: 700, DeliveredBytes: 650,
		Migrations: 4, ChainLengthTotal: 2,
	}
	a := testAuditor(t)
	if err := a.End(100, good); err != nil {
		t.Fatalf("consistent metrics flagged: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*core.Metrics)
	}{
		{"arrival identity", func(m *core.Metrics) { m.Rejected = 4 }},
		{"drain identity", func(m *core.Metrics) { m.Completions = 7 }},
		{"delivered exceeds accepted", func(m *core.Metrics) { m.DeliveredBytes = 701 }},
		{"chain total exceeds migrations", func(m *core.Metrics) { m.ChainLengthTotal = 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuditor(t)
			m := good
			tc.mutate(&m)
			wantRule(t, a.End(100, m), "accounting")
		})
	}
}

func TestViolationError(t *testing.T) {
	a := testAuditor(t)
	err := a.Event(record(server(1, []core.AuditRequestState{okRequest(7, 0)}, nil)))
	v := wantRule(t, err, "replica")
	if v.Server != 1 || v.Request != 7 || v.Seq != 1 || v.Event != "wake" {
		t.Errorf("violation context = %+v", v)
	}
	msg := v.Error()
	for _, want := range []string{"replica", "wake", "server 1", "request 7"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if len(a.Violations()) != 1 {
		t.Errorf("Violations() = %d entries", len(a.Violations()))
	}
}
