package audit_test

import (
	"errors"
	"testing"

	"semicont"
	"semicont/internal/audit"
	"semicont/internal/catalog"
	"semicont/internal/core"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// stagedEngine builds a small two-server cluster with client staging —
// enough concurrency that the EFTF spreader runs multi-candidate passes
// on nearly every wake.
func stagedEngine(t *testing.T, seed uint64) *core.Engine {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 20, MinLength: 300, MaxLength: 900, ViewRate: 3, Theta: 0,
	}, rng.New(rng.DeriveSeed(seed, 1)))
	if err != nil {
		t.Fatal(err)
	}
	caps := []float64{1e6, 1e6}
	lay, err := placement.Build(placement.Even{}, cat, 2, caps, rng.New(rng.DeriveSeed(seed, 2)))
	if err != nil {
		t.Fatal(err)
	}
	// Overload the cluster and cap clients low: buffers stage slowly, so
	// most spare passes juggle several concurrent candidates.
	rate, err := workload.CalibratedRate(cat, 120, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(cat, rate, rng.New(rng.DeriveSeed(seed, 3)))
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEngine(core.Config{
		ServerBandwidth: []float64{60, 60},
		ViewRate:        3,
		Workahead:       true,
		BufferCapacity:  cat.AvgSize() * 0.2,
		ReceiveCap:      6,
		Migration:       core.MigrationConfig{Enabled: true, MaxHops: 1, MaxChain: 1},
	}, cat, lay, gen)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAuditorCatchesBrokenEFTF is the acceptance check for the audit
// layer: sabotage the EFTF comparator (test-only engine hook that feeds
// spare bandwidth in inverted order while still reporting EFTF to the
// taps) and require the auditor to reject the run with a structured
// eftf-order violation.
func TestAuditorCatchesBrokenEFTF(t *testing.T) {
	e := stagedEngine(t, 7)
	a := audit.New()
	e.SetAuditTap(a)
	e.DebugForceSpareMisorder(true)
	_, err := e.Run(2 * 3600)
	if err == nil {
		t.Fatal("sabotaged EFTF ordering passed the audit")
	}
	var v *audit.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *audit.Violation, got %T: %v", err, err)
	}
	if v.Rule != "eftf-order" {
		t.Fatalf("rule = %q, want eftf-order (%v)", v.Rule, v)
	}
	if v.Seq == 0 || v.Server < 0 || v.Request == 0 {
		t.Errorf("violation lacks context: %+v", v)
	}
	if a.Err() == nil {
		t.Error("auditor Err() nil after rejecting the run")
	}
}

// TestAuditorCatchesSkewedWakeIndex is the acceptance check for the
// wake-exact rule: sabotage the audit snapshot's NextWake (test-only
// engine hook that reports a loaded server's incremental answer one
// second early while leaving the stored keys intact) and require the
// auditor to reject the run. This is exactly the signature of a real
// maintenance bug — a missed dirty mark or unfolded copy key makes the
// index disagree with its own keys — and the rule must catch it with
// an exact comparison, not an epsilon.
func TestAuditorCatchesSkewedWakeIndex(t *testing.T) {
	e := stagedEngine(t, 7)
	a := audit.New()
	e.SetAuditTap(a)
	e.DebugSkewWakeIndex(true)
	_, err := e.Run(2 * 3600)
	if err == nil {
		t.Fatal("skewed wake index passed the audit")
	}
	var v *audit.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *audit.Violation, got %T: %v", err, err)
	}
	if v.Rule != "wake-exact" {
		t.Fatalf("rule = %q, want wake-exact (%v)", v.Rule, v)
	}
	if v.Seq == 0 || v.Server < 0 {
		t.Errorf("violation lacks context: %+v", v)
	}
}

// TestAuditorCleanOnHonestEFTF is the control: the identical simulation
// without sabotage audits clean.
func TestAuditorCleanOnHonestEFTF(t *testing.T) {
	e := stagedEngine(t, 7)
	a := audit.New()
	e.SetAuditTap(a)
	if _, err := e.Run(2 * 3600); err != nil {
		t.Fatalf("honest EFTF rejected: %v", err)
	}
	if a.Events() == 0 {
		t.Error("auditor saw no events")
	}
	if len(a.Violations()) != 0 {
		t.Errorf("violations = %v", a.Violations())
	}
}

// randomScenario derives a scenario exercising a seed-dependent mix of
// every mechanism: staging (all three spare disciplines), DRM, dynamic
// replication, intermittent scheduling, patching, interactivity, and
// mid-run server failure.
func randomScenario(seed uint64) semicont.Scenario {
	sys := semicont.System{
		Name:            "rand",
		NumServers:      2 + int(seed%3),
		ServerBandwidth: 30 + float64(seed%3)*15,
		DiskCapacity:    2e5,
		NumVideos:       25,
		MinVideoLength:  300,
		MaxVideoLength:  900,
		AvgCopies:       2,
		ViewRate:        3,
	}
	pol := semicont.Policy{Name: "rand"}
	if seed&1 != 0 {
		pol.StagingFrac = 0.2
		pol.Spare = semicont.SpareKind(seed % 3)
	}
	if seed&2 != 0 {
		pol.Migration = true
		pol.MaxChain = 1 + int(seed%2)
	}
	if seed&4 != 0 {
		pol.Replicate = true
	}
	if seed&8 != 0 && pol.StagingFrac > 0 {
		pol.Intermittent = true
	}
	switch (seed >> 4) % 3 {
	case 1:
		if pol.StagingFrac > 0 && !pol.Intermittent {
			pol.PatchWindowSec = 300
		}
	case 2:
		if !pol.Intermittent {
			pol.PauseProb = 0.2
			pol.MinPauseSec = 30
			pol.MaxPauseSec = 300
		}
	}
	sc := semicont.Scenario{
		System:       sys,
		Policy:       pol,
		Theta:        float64(int(seed%6))/2 - 1.5, // −1.5 … 1
		HorizonHours: 1,
		LoadFactor:   1.2,
		Seed:         seed,
		Audit:        true,
	}
	if (seed>>6)&1 != 0 && pol.PatchWindowSec == 0 {
		sc.FailAtHours = 0.5
		sc.FailServer = int(seed) % sys.NumServers
	}
	return sc
}

// TestRandomScenariosAuditClean runs randomized full-stack scenarios
// with the auditor attached and requires zero violations: the engine's
// actual behaviour satisfies every audited conservation law across the
// mechanism space, not just on the curated experiment configurations.
func TestRandomScenariosAuditClean(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		sc := randomScenario(seed)
		res, err := semicont.Run(sc)
		if err != nil {
			var v *audit.Violation
			if errors.As(err, &v) {
				t.Fatalf("seed %d (policy %+v): audit violation: %v", seed, sc.Policy, v)
			}
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.AuditedEvents == 0 {
			t.Fatalf("seed %d: auditor saw no events", seed)
		}
	}
}

// TestAuditedRunMatchesUnaudited guards against the observer effect: the
// auditor must not perturb the simulation it is checking.
func TestAuditedRunMatchesUnaudited(t *testing.T) {
	plain := randomScenario(11)
	plain.Audit = false
	pres, err := semicont.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	audited := randomScenario(11)
	ares, err := semicont.Run(audited)
	if err != nil {
		t.Fatal(err)
	}
	got, want := *ares, *pres
	got.AuditedEvents = 0 // the only field allowed to differ
	if got != want {
		t.Errorf("auditing changed the run:\nplain   %+v\naudited %+v", pres, ares)
	}
}
