// Package workload generates the request arrival process of the paper's
// evaluation (Section 4.1): Poisson arrivals whose rate is calibrated so
// that, were every request accepted, the system would be exactly 100%
// utilized — "the expected sum of the sizes of all requested videos is
// equal to the number of servers times the server bandwidth times the
// length of the simulation".
//
// That calibration places maximum stress on the admission controller and
// accentuates the differences between policies, which is the point of
// the study.
package workload

import (
	"fmt"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

// Request is one arrival: at time Arrival a client asks to view Video.
type Request struct {
	Arrival float64
	Video   int
}

// Generator produces a Poisson stream of video requests, stationary
// (New) or rate-modulated by a deterministic curve via thinning
// (NewNonStationary; see curve.go).
type Generator struct {
	cat  *catalog.Catalog
	p    *rng.PCG
	rate float64 // arrivals per second
	next float64

	// Thinning state, used only by non-stationary generators
	// (maxShape > 0). The stationary path draws videos lazily in Next;
	// the thinning path must look ahead to the next surviving candidate
	// so Peek stays exact, staging its video in pendingVideo.
	curve        Curve
	maxShape     float64 // thinning envelope; 0 = stationary generator
	candidate    float64 // candidate-process clock, ≥ next
	pendingVideo int
}

// CalibratedRate returns the Poisson arrival rate λ (requests/second)
// at which the expected offered bandwidth equals totalBandwidth:
// λ · E[size of a requested video] = totalBandwidth, scaled by the
// load factor (1.0 reproduces the paper; other values support
// sensitivity studies).
func CalibratedRate(cat *catalog.Catalog, totalBandwidth, loadFactor float64) (float64, error) {
	if totalBandwidth <= 0 {
		return 0, fmt.Errorf("workload: total bandwidth must be positive, got %g", totalBandwidth)
	}
	if loadFactor <= 0 {
		return 0, fmt.Errorf("workload: load factor must be positive, got %g", loadFactor)
	}
	es := cat.ExpectedSize()
	if es <= 0 {
		return 0, fmt.Errorf("workload: catalog expected size %g", es)
	}
	return loadFactor * totalBandwidth / es, nil
}

// New returns a generator with the given arrival rate, drawing videos
// from the catalog's popularity distribution and inter-arrival gaps
// from p. The first arrival occurs after one exponential gap, matching
// a Poisson process started at time zero.
func New(cat *catalog.Catalog, rate float64, p *rng.PCG) (*Generator, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", rate)
	}
	g := &Generator{cat: cat, p: p, rate: rate}
	g.next = g.p.ExpFloat64() / g.rate
	return g, nil
}

// Rate returns the arrival rate in requests per second.
func (g *Generator) Rate() float64 { return g.rate }

// Next returns the next request and advances the stream. The horizon is
// the caller's concern: keep calling until Arrival exceeds it.
func (g *Generator) Next() Request {
	if g.maxShape > 0 {
		r := Request{Arrival: g.next, Video: g.pendingVideo}
		g.advanceThinned()
		return r
	}
	r := Request{Arrival: g.next, Video: g.cat.Sample(g.p)}
	g.next += g.p.ExpFloat64() / g.rate
	return r
}

// Peek returns the arrival time of the next request without consuming it.
func (g *Generator) Peek() float64 { return g.next }
