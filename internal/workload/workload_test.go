package workload

import (
	"math"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

func testCatalog(t *testing.T, theta float64) *catalog.Catalog {
	t.Helper()
	cat, err := catalog.Generate(catalog.Config{
		NumVideos: 50, MinLength: 600, MaxLength: 1800, ViewRate: 3, Theta: theta,
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCalibratedRate(t *testing.T) {
	cat := testCatalog(t, 1)
	rate, err := CalibratedRate(cat, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// λ · E[S] must equal the total bandwidth exactly.
	if got := rate * cat.ExpectedSize(); math.Abs(got-500) > 1e-9 {
		t.Errorf("offered load = %v Mb/s, want 500", got)
	}
	// Load factor scales linearly.
	half, err := CalibratedRate(cat, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(half*2-rate) > 1e-12 {
		t.Errorf("load factor not linear: %v vs %v", half, rate)
	}
}

func TestCalibratedRateErrors(t *testing.T) {
	cat := testCatalog(t, 1)
	if _, err := CalibratedRate(cat, 0, 1); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := CalibratedRate(cat, 500, 0); err == nil {
		t.Error("zero load factor accepted")
	}
	if _, err := CalibratedRate(cat, -5, 1); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestNewErrors(t *testing.T) {
	cat := testCatalog(t, 1)
	if _, err := New(cat, 0, rng.New(1)); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := New(cat, -1, rng.New(1)); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestArrivalsMonotone(t *testing.T) {
	cat := testCatalog(t, 0.271)
	g, err := New(cat, 0.2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 10000; i++ {
		r := g.Next()
		if r.Arrival < prev {
			t.Fatalf("arrival %d at %v before previous %v", i, r.Arrival, prev)
		}
		if r.Video < 0 || r.Video >= cat.Len() {
			t.Fatalf("video id %d out of range", r.Video)
		}
		prev = r.Arrival
	}
}

func TestPoissonRate(t *testing.T) {
	cat := testCatalog(t, 1)
	const rate = 0.5
	g, err := New(cat, rate, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var last float64
	for i := 0; i < n; i++ {
		last = g.Next().Arrival
	}
	// n arrivals should span ≈ n/rate seconds.
	want := n / rate
	if math.Abs(last-want)/want > 0.02 {
		t.Errorf("%d arrivals span %v s, want ≈%v", n, last, want)
	}
}

func TestPeekMatchesNext(t *testing.T) {
	cat := testCatalog(t, 1)
	g, err := New(cat, 1, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		peeked := g.Peek()
		if got := g.Next().Arrival; got != peeked {
			t.Fatalf("Peek() = %v but Next().Arrival = %v", peeked, got)
		}
	}
}

func TestVideosFollowPopularity(t *testing.T) {
	cat := testCatalog(t, -1) // heavily skewed
	g, err := New(cat, 1, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cat.Len())
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Video]++
	}
	want := cat.Video(0).Prob
	got := float64(counts[0]) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("video 0 frequency %v, want ≈%v", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	cat := testCatalog(t, 0.5)
	a, _ := New(cat, 1, rng.New(6))
	b, _ := New(cat, 1, rng.New(6))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("generators with equal seeds diverged at %d", i)
		}
	}
}

func TestRate(t *testing.T) {
	cat := testCatalog(t, 1)
	g, err := New(cat, 0.25, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.Rate() != 0.25 {
		t.Errorf("Rate() = %v", g.Rate())
	}
}
