package workload

import (
	"math"
	"testing"

	"semicont/internal/catalog"
	"semicont/internal/rng"
)

func benchCatalog() (*catalog.Catalog, error) {
	return catalog.Generate(catalog.Config{
		NumVideos: 50, MinLength: 600, MaxLength: 1800, ViewRate: 3, Theta: 0.271,
	}, rng.New(1))
}

func TestCurveValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Curve
		ok   bool
	}{
		{"zero", Curve{}, true},
		{"diurnal", Curve{DiurnalAmp: 0.5}, true},
		{"diurnal with period", Curve{DiurnalAmp: 0.5, DiurnalPeriod: 3600}, true},
		{"flash", Curve{FlashAt: 100, FlashDuration: 50, FlashFactor: 2, FlashVideo: 3}, true},
		{"both", Curve{DiurnalAmp: 0.2, FlashAt: 0, FlashDuration: 50, FlashFactor: 2}, true},
		{"amp one", Curve{DiurnalAmp: 1}, false},
		{"amp negative", Curve{DiurnalAmp: -0.1}, false},
		{"amp NaN", Curve{DiurnalAmp: math.NaN()}, false},
		{"period without amp", Curve{DiurnalPeriod: 3600}, false},
		{"period negative", Curve{DiurnalAmp: 0.5, DiurnalPeriod: -1}, false},
		{"factor in (0,1)", Curve{FlashDuration: 50, FlashFactor: 0.5}, false},
		{"factor one", Curve{FlashDuration: 50, FlashFactor: 1}, false},
		{"factor inf", Curve{FlashDuration: 50, FlashFactor: math.Inf(1)}, false},
		{"flash without duration", Curve{FlashFactor: 2}, false},
		{"flash video out of range", Curve{FlashDuration: 50, FlashFactor: 2, FlashVideo: 50}, false},
		{"flash video negative", Curve{FlashDuration: 50, FlashFactor: 2, FlashVideo: -1}, false},
		{"stray flash window", Curve{FlashAt: 100}, false},
		{"stray flash video", Curve{FlashVideo: 3}, false},
		{"flash at NaN", Curve{FlashAt: math.NaN(), FlashDuration: 50, FlashFactor: 2}, false},
	}
	for _, tc := range cases {
		err := tc.c.Validate(50)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNonStationaryErrors(t *testing.T) {
	cat := testCatalog(t, 1)
	if _, err := NewNonStationary(cat, 0, rng.New(1), Curve{DiurnalAmp: 0.5}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewNonStationary(cat, 1, rng.New(1), Curve{}); err == nil {
		t.Error("zero curve accepted (stationary runs must use New)")
	}
	if _, err := NewNonStationary(cat, 1, rng.New(1), Curve{DiurnalAmp: 2}); err == nil {
		t.Error("invalid curve accepted")
	}
}

// TestThinningConstantCurveBitIdentical is the metamorphic pin for the
// thinning machinery: with a constant curve the envelope equals the
// shape everywhere, every candidate is accepted without an acceptance
// draw, and the generator must replay the stationary generator's
// request stream bit for bit — same arrival instants, same videos,
// same RNG consumption.
func TestThinningConstantCurveBitIdentical(t *testing.T) {
	cat := testCatalog(t, 0.271)
	const rate = 0.8
	thin := &Generator{cat: cat, p: rng.New(42), rate: rate, maxShape: 1}
	thin.advanceThinned()
	stat, err := New(cat, rate, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		a, b := thin.Next(), stat.Next()
		if a != b {
			t.Fatalf("request %d: thinned %+v != stationary %+v", i, a, b)
		}
	}
}

func TestThinningMonotoneAndPeek(t *testing.T) {
	cat := testCatalog(t, 0.271)
	g, err := NewNonStationary(cat, 0.5, rng.New(9), Curve{
		DiurnalAmp: 0.8, DiurnalPeriod: 7200,
		FlashAt: 3000, FlashDuration: 1000, FlashFactor: 3, FlashVideo: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 10000; i++ {
		peeked := g.Peek()
		r := g.Next()
		if r.Arrival != peeked {
			t.Fatalf("Peek() = %v but Next().Arrival = %v", peeked, r.Arrival)
		}
		if r.Arrival < prev {
			t.Fatalf("arrival %d at %v before previous %v", i, r.Arrival, prev)
		}
		if r.Video < 0 || r.Video >= cat.Len() {
			t.Fatalf("video id %d out of range", r.Video)
		}
		prev = r.Arrival
	}
}

// TestDiurnalModulation checks the thinned process actually follows the
// curve: over whole periods the mean rate equals λ (the sine integrates
// to zero), while the rising half-period carries ≈(1+2a/π)/(1−2a/π)
// times the arrivals of the falling half.
func TestDiurnalModulation(t *testing.T) {
	cat := testCatalog(t, 1)
	const (
		rate    = 1.0
		period  = 10000.0
		amp     = 0.8
		periods = 100
	)
	g, err := NewNonStationary(cat, rate, rng.New(11), Curve{DiurnalAmp: amp, DiurnalPeriod: period})
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough, total int
	for {
		r := g.Next()
		if r.Arrival >= period*periods {
			break
		}
		total++
		if math.Mod(r.Arrival, period) < period/2 {
			peak++
		} else {
			trough++
		}
	}
	wantTotal := rate * period * periods
	if got := float64(total); math.Abs(got-wantTotal)/wantTotal > 0.02 {
		t.Errorf("total arrivals %v, want ≈%v (mean rate must stay λ)", got, wantTotal)
	}
	wantRatio := (1 + 2*amp/math.Pi) / (1 - 2*amp/math.Pi)
	if got := float64(peak) / float64(trough); math.Abs(got-wantRatio)/wantRatio > 0.05 {
		t.Errorf("peak/trough ratio %v, want ≈%v", got, wantRatio)
	}
}

// TestFlashCrowd checks the flash window: the in-window rate multiplies
// by the factor and the surge excess requests the flash video.
func TestFlashCrowd(t *testing.T) {
	cat := testCatalog(t, 1)
	const (
		rate    = 1.0
		at      = 50000.0
		dur     = 20000.0
		factor  = 4.0
		video   = 7
		horizon = 200000.0
	)
	g, err := NewNonStationary(cat, rate, rng.New(13), Curve{
		FlashAt: at, FlashDuration: dur, FlashFactor: factor, FlashVideo: video,
	})
	if err != nil {
		t.Fatal(err)
	}
	var inWin, outWin, flashVid int
	for {
		r := g.Next()
		if r.Arrival >= horizon {
			break
		}
		if r.Arrival >= at && r.Arrival < at+dur {
			inWin++
			if r.Video == video {
				flashVid++
			}
		} else {
			outWin++
		}
	}
	if got, want := float64(inWin)/dur, rate*factor; math.Abs(got-want)/want > 0.03 {
		t.Errorf("in-window rate %v, want ≈%v", got, want)
	}
	if got, want := float64(outWin)/(horizon-dur), rate; math.Abs(got-want)/want > 0.03 {
		t.Errorf("out-of-window rate %v, want ≈%v", got, want)
	}
	// In-window flash-video share: the surge excess (f−1)/f plus the
	// base process occasionally picking it by popularity.
	pv := cat.Video(video).Prob
	want := (factor - 1) / factor * (1 - pv)
	if got := float64(flashVid)/float64(inWin) - pv; math.Abs(got-want) > 0.02 {
		t.Errorf("flash-video excess share %v, want ≈%v", got, want)
	}
}

// BenchmarkArrivalThinning measures the per-arrival cost of the
// non-stationary path against the stationary baseline.
func BenchmarkArrivalThinning(b *testing.B) {
	cat, err := benchCatalog()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("stationary", func(b *testing.B) {
		g, err := New(cat, 1, rng.New(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Next()
		}
	})
	b.Run("thinned", func(b *testing.B) {
		g, err := NewNonStationary(cat, 1, rng.New(1), Curve{
			DiurnalAmp: 0.5, DiurnalPeriod: 86400,
			FlashAt: 3600, FlashDuration: 1800, FlashFactor: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Next()
		}
	})
}
