// Package hetero generates the heterogeneous cluster configurations of
// the paper's Section 4.6: clusters whose servers differ in bandwidth
// or storage while the cluster-wide totals stay fixed, so heterogeneous
// and homogeneous systems are directly comparable.
package hetero

import "fmt"

// Spread describes how much a resource varies across servers: server i
// gets mean·(1 ± level), alternating high/low so the total is
// preserved (odd clusters give the middle server the mean).
type Spread struct {
	// Level is the relative deviation in [0, 1): 0 is homogeneous,
	// 0.5 alternates between 50% and 150% of the mean.
	Level float64
}

// Apply returns n values with the given mean and the spread's
// alternating deviation. The sum is n·mean exactly (up to float
// rounding).
func (s Spread) Apply(n int, mean float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("hetero: need at least one server, got %d", n)
	}
	if s.Level < 0 || s.Level >= 1 {
		return nil, fmt.Errorf("hetero: spread level %g outside [0, 1)", s.Level)
	}
	if mean <= 0 {
		return nil, fmt.Errorf("hetero: mean must be positive, got %g", mean)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = mean
	}
	if s.Level == 0 {
		return out, nil
	}
	// Pair servers (0,1), (2,3), …: one high, one low. A leftover
	// middle server keeps the mean.
	for i := 0; i+1 < n; i += 2 {
		out[i] = mean * (1 + s.Level)
		out[i+1] = mean * (1 - s.Level)
	}
	return out, nil
}

// Profile names one of the §4.6 cluster classes: which resource varies.
type Profile int

// The three profiles compared in the heterogeneity experiment.
const (
	Homogeneous Profile = iota
	BandwidthHetero
	StorageHetero
)

// String implements fmt.Stringer.
func (p Profile) String() string {
	switch p {
	case Homogeneous:
		return "homogeneous"
	case BandwidthHetero:
		return "bandwidth-hetero"
	case StorageHetero:
		return "storage-hetero"
	default:
		return fmt.Sprintf("Profile(%d)", int(p))
	}
}

// Cluster materializes per-server bandwidths and storage capacities for
// a profile. meanBandwidth is in Mb/s, meanStorage in Mb.
func Cluster(p Profile, n int, meanBandwidth, meanStorage, level float64) (bandwidth, storage []float64, err error) {
	flat := Spread{Level: 0}
	varied := Spread{Level: level}
	switch p {
	case Homogeneous:
		bandwidth, err = flat.Apply(n, meanBandwidth)
		if err == nil {
			storage, err = flat.Apply(n, meanStorage)
		}
	case BandwidthHetero:
		bandwidth, err = varied.Apply(n, meanBandwidth)
		if err == nil {
			storage, err = flat.Apply(n, meanStorage)
		}
	case StorageHetero:
		bandwidth, err = flat.Apply(n, meanBandwidth)
		if err == nil {
			storage, err = varied.Apply(n, meanStorage)
		}
	default:
		err = fmt.Errorf("hetero: unknown profile %d", int(p))
	}
	return bandwidth, storage, err
}
