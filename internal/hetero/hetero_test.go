package hetero

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpreadErrors(t *testing.T) {
	if _, err := (Spread{Level: 0.5}).Apply(0, 100); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := (Spread{Level: -0.1}).Apply(4, 100); err == nil {
		t.Error("negative level accepted")
	}
	if _, err := (Spread{Level: 1}).Apply(4, 100); err == nil {
		t.Error("level 1 accepted (would zero a server)")
	}
	if _, err := (Spread{Level: 0.5}).Apply(4, 0); err == nil {
		t.Error("zero mean accepted")
	}
}

func TestHomogeneousSpread(t *testing.T) {
	vals, err := Spread{}.Apply(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != 100 {
			t.Errorf("server %d = %v, want 100", i, v)
		}
	}
}

func TestSpreadAlternates(t *testing.T) {
	vals, err := Spread{Level: 0.5}.Apply(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{150, 50, 150, 50}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Errorf("server %d = %v, want %v", i, vals[i], w)
		}
	}
}

func TestSpreadOddMiddleKeepsMean(t *testing.T) {
	vals, err := Spread{Level: 0.5}.Apply(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if vals[4] != 100 {
		t.Errorf("odd server = %v, want the mean", vals[4])
	}
}

// Property: totals are preserved for any level and size.
func TestSpreadPreservesTotal(t *testing.T) {
	prop := func(nRaw, levelRaw uint8) bool {
		n := int(nRaw%20) + 1
		level := float64(levelRaw%100) / 101
		vals, err := Spread{Level: level}.Apply(n, 100)
		if err != nil {
			return false
		}
		total := 0.0
		for _, v := range vals {
			if v <= 0 {
				return false
			}
			total += v
		}
		return math.Abs(total-float64(n)*100) < 1e-9*float64(n)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestProfileString(t *testing.T) {
	if Homogeneous.String() != "homogeneous" ||
		BandwidthHetero.String() != "bandwidth-hetero" ||
		StorageHetero.String() != "storage-hetero" {
		t.Error("profile names wrong")
	}
	if Profile(99).String() == "" {
		t.Error("unknown profile should still render")
	}
}

func TestCluster(t *testing.T) {
	for _, p := range []Profile{Homogeneous, BandwidthHetero, StorageHetero} {
		bw, st, err := Cluster(p, 6, 100, 800000, 0.5)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		sumBw, sumSt := 0.0, 0.0
		varBw, varSt := false, false
		for i := range bw {
			sumBw += bw[i]
			sumSt += st[i]
			if bw[i] != 100 {
				varBw = true
			}
			if st[i] != 800000 {
				varSt = true
			}
		}
		if math.Abs(sumBw-600) > 1e-9 || math.Abs(sumSt-4800000) > 1e-6 {
			t.Errorf("%v: totals not preserved (%v, %v)", p, sumBw, sumSt)
		}
		if (p == BandwidthHetero) != varBw {
			t.Errorf("%v: bandwidth variation = %v", p, varBw)
		}
		if (p == StorageHetero) != varSt {
			t.Errorf("%v: storage variation = %v", p, varSt)
		}
	}
	if _, _, err := Cluster(Profile(42), 4, 100, 1000, 0.5); err == nil {
		t.Error("unknown profile accepted")
	}
}
