// Package sweep is the experiment throughput layer: a bounded worker
// pool plus a flattened (cell × trial) job grid over it.
//
// An experiment is a grid of cells (one per scenario: a policy at a
// load, an allocator at an MTBF, …), each run for several independent
// trials. The paper's sweeps are embarrassingly parallel — every trial
// is a pure function of its derived seed — but a per-cell fan-out caps
// concurrency at the trial count (five) while cells execute serially.
// Grid instead submits the whole matrix as one job list drained by a
// single Pool, so wall clock scales with workers rather than with the
// number of cells.
//
// Determinism contract: every job writes its result into a slot indexed
// by (cell, trial) fixed at submission, and Wait returns cells in
// submission order with the first error selected in (cell, trial)
// order. Scheduling therefore cannot reorder anything observable:
// output is byte-identical to a serial run regardless of the worker
// count (the same contract the GOMAXPROCS determinism tests pin for
// RunTrials).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool bounds the number of simulation jobs running at once. It is a
// counting semaphore rather than a fixed set of worker goroutines:
// there is no lifecycle to manage, an idle pool consumes nothing, and
// any number of grids can share one pool (vodsim's -experiment all runs
// every experiment through a single pool).
type Pool struct {
	sem chan struct{}
}

// New returns a pool admitting at most workers concurrent jobs;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return cap(p.sem) }

// Budget divides a worker budget between the pool and per-job inner
// parallelism (the sharded engine's within-run shards): it returns the
// pool size that keeps workers × inner at or under the budget. workers
// <= 0 selects GOMAXPROCS, inner < 1 counts as 1, and the result is at
// least 1 so a large inner degree serializes the jobs rather than
// starving them. Callers running sharded trials build their pool with
// New(Budget(workers, shards)) so nested parallelism cannot oversubscribe
// the host.
func Budget(workers, inner int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if inner < 1 {
		inner = 1
	}
	if w := workers / inner; w > 1 {
		return w
	}
	return 1
}

// CellError reports the first failed job in (cell, trial) submission
// order.
type CellError struct {
	Cell  int // cell index as returned by Grid.Cell
	Trial int // trial index within the cell
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("sweep: cell %d trial %d: %v", e.Cell, e.Trial, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Grid collects a (cell × trial) job matrix over one pool. Cells are
// submitted from a single goroutine; jobs start running immediately as
// pool slots free up, and Wait blocks until every submitted job has
// finished.
//
// Jobs must not submit to or wait on the grid's own pool: a job that
// blocks on a pool slot it transitively occupies deadlocks. Submit the
// whole matrix flat instead — that is the point of the grid.
type Grid[T any] struct {
	pool  *Pool
	wg    sync.WaitGroup
	cells [][]T
	errs  [][]error
}

// NewGrid returns an empty grid over p; a nil pool gets a private one
// of GOMAXPROCS workers.
func NewGrid[T any](p *Pool) *Grid[T] {
	if p == nil {
		p = New(0)
	}
	return &Grid[T]{pool: p}
}

// Cell submits one cell of trials jobs and returns the cell's index
// into Wait's result. run is called once per trial from a pool worker;
// its result lands in the slot pre-indexed by the trial number, so
// scheduling order cannot reorder results. Not safe for concurrent use
// with other Cell or Wait calls.
func (g *Grid[T]) Cell(trials int, run func(trial int) (T, error)) int {
	idx := len(g.cells)
	results := make([]T, trials)
	errs := make([]error, trials)
	g.cells = append(g.cells, results)
	g.errs = append(g.errs, errs)
	for t := 0; t < trials; t++ {
		g.wg.Add(1)
		go func(t int) {
			defer g.wg.Done()
			g.pool.sem <- struct{}{}
			defer func() { <-g.pool.sem }()
			results[t], errs[t] = run(t)
		}(t)
	}
	return idx
}

// Wait blocks until every submitted job has finished and returns the
// cells in submission order. On failure it returns the first error in
// (cell, trial) order as a *CellError — the same error a serial loop
// over the matrix would have stopped at.
func (g *Grid[T]) Wait() ([][]T, error) {
	g.wg.Wait()
	for c, errs := range g.errs {
		for t, err := range errs {
			if err != nil {
				return nil, &CellError{Cell: c, Trial: t, Err: err}
			}
		}
	}
	return g.cells, nil
}
