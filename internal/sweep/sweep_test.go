package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolWorkersDefault(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d, want 7", got)
	}
}

// TestGridResultsIndexed pins the determinism contract: results come
// back in (cell, trial) submission order no matter how jobs were
// scheduled.
func TestGridResultsIndexed(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		g := NewGrid[string](New(workers))
		const cells, trials = 7, 5
		for c := 0; c < cells; c++ {
			c := c
			got := g.Cell(trials, func(trial int) (string, error) {
				return fmt.Sprintf("%d/%d", c, trial), nil
			})
			if got != c {
				t.Fatalf("Cell returned index %d, want %d", got, c)
			}
		}
		out, err := g.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != cells {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(out), cells)
		}
		for c := range out {
			for trial, v := range out[c] {
				if want := fmt.Sprintf("%d/%d", c, trial); v != want {
					t.Errorf("workers=%d: cell %d trial %d = %q, want %q", workers, c, trial, v, want)
				}
			}
		}
	}
}

// TestGridFirstErrorInSubmissionOrder pins error selection: with
// several failing jobs, Wait reports the one a serial loop would have
// hit first, regardless of which failed first on the clock.
func TestGridFirstErrorInSubmissionOrder(t *testing.T) {
	g := NewGrid[int](New(4))
	boom := func(c, trial int) error { return fmt.Errorf("boom %d/%d", c, trial) }
	for c := 0; c < 4; c++ {
		c := c
		g.Cell(3, func(trial int) (int, error) {
			if c >= 1 && trial >= 1 {
				return 0, boom(c, trial)
			}
			return 0, nil
		})
	}
	_, err := g.Wait()
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("Wait error = %v, want *CellError", err)
	}
	if ce.Cell != 1 || ce.Trial != 1 {
		t.Errorf("first error at cell %d trial %d, want 1/1", ce.Cell, ce.Trial)
	}
	if got, want := ce.Err.Error(), "boom 1/1"; got != want {
		t.Errorf("unwrapped error %q, want %q", got, want)
	}
}

// TestPoolBoundsConcurrency verifies the semaphore actually caps
// simultaneous jobs.
func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGrid[int](New(workers))
	var inFlight, peak atomic.Int64
	g.Cell(50, func(trial int) (int, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		for i := 0; i < 1000; i++ {
			runtime.Gosched()
		}
		inFlight.Add(-1)
		return trial, nil
	})
	if _, err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, pool caps at %d", p, workers)
	}
}

// TestSharedPoolAcrossGrids runs two grids through one pool — the
// vodsim -experiment all pattern.
func TestSharedPoolAcrossGrids(t *testing.T) {
	p := New(2)
	a, b := NewGrid[int](p), NewGrid[int](p)
	a.Cell(10, func(trial int) (int, error) { return trial, nil })
	b.Cell(10, func(trial int) (int, error) { return trial * 2, nil })
	ra, err := a.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if ra[0][i] != i || rb[0][i] != 2*i {
			t.Fatalf("trial %d: got %d/%d", i, ra[0][i], rb[0][i])
		}
	}
}

func TestEmptyGridWait(t *testing.T) {
	g := NewGrid[int](nil)
	out, err := g.Wait()
	if err != nil || len(out) != 0 {
		t.Errorf("empty Wait = %v, %v; want no cells, no error", out, err)
	}
}
