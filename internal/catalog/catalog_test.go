package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"semicont/internal/rng"
)

func validConfig() Config {
	return Config{NumVideos: 50, MinLength: 600, MaxLength: 1800, ViewRate: 3, Theta: 0.271}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero videos", func(c *Config) { c.NumVideos = 0 }},
		{"negative videos", func(c *Config) { c.NumVideos = -1 }},
		{"zero min length", func(c *Config) { c.MinLength = 0 }},
		{"max below min", func(c *Config) { c.MaxLength = c.MinLength - 1 }},
		{"zero view rate", func(c *Config) { c.ViewRate = 0 }},
	}
	for _, tc := range cases {
		cfg := validConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", tc.name)
		}
	}
	if err := validConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateBasics(t *testing.T) {
	cat, err := Generate(validConfig(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 50 {
		t.Fatalf("Len() = %d, want 50", cat.Len())
	}
	if cat.ViewRate() != 3 {
		t.Errorf("ViewRate() = %v, want 3", cat.ViewRate())
	}
	for i := 0; i < cat.Len(); i++ {
		v := cat.Video(i)
		if v.ID != i {
			t.Errorf("Video(%d).ID = %d", i, v.ID)
		}
		if v.Length < 600 || v.Length >= 1800 {
			t.Errorf("video %d length %v outside [600, 1800)", i, v.Length)
		}
		if math.Abs(v.Size-v.Length*3) > 1e-9 {
			t.Errorf("video %d size %v != length × rate %v", i, v.Size, v.Length*3)
		}
		if v.Prob <= 0 || v.Prob >= 1 {
			t.Errorf("video %d prob %v outside (0,1)", i, v.Prob)
		}
	}
}

func TestAvgSize(t *testing.T) {
	cat, err := Generate(validConfig(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range cat.Videos() {
		sum += v.Size
	}
	if got, want := cat.AvgSize(), sum/float64(cat.Len()); math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgSize() = %v, want %v", got, want)
	}
}

func TestExpectedSizeIsPopularityWeighted(t *testing.T) {
	cat, err := Generate(validConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range cat.Videos() {
		want += v.Prob * v.Size
	}
	if got := cat.ExpectedSize(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedSize() = %v, want %v", got, want)
	}
}

func TestFixedLength(t *testing.T) {
	cfg := validConfig()
	cfg.MinLength, cfg.MaxLength = 1200, 1200
	cat, err := Generate(cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cat.Videos() {
		if v.Length != 1200 {
			t.Fatalf("length %v with degenerate range", v.Length)
		}
	}
	if cat.AvgSize() != 3600 {
		t.Errorf("AvgSize() = %v, want 3600", cat.AvgSize())
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(validConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(validConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Video(i) != b.Video(i) {
			t.Fatalf("video %d differs across identically seeded catalogs", i)
		}
	}
}

func TestSampleRespectsPopularity(t *testing.T) {
	cfg := validConfig()
	cfg.Theta = -1 // strongly skewed
	cat, err := Generate(cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	p := rng.New(7)
	counts := make([]int, cat.Len())
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[cat.Sample(p)]++
	}
	p0 := float64(counts[0]) / draws
	if math.Abs(p0-cat.Video(0).Prob) > 0.01 {
		t.Errorf("video 0 drawn with frequency %v, want ≈%v", p0, cat.Video(0).Prob)
	}
}

// Property: generation succeeds and preserves the length/size invariant
// over a range of configurations.
func TestGenerateProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8, thetaRaw int8) bool {
		cfg := Config{
			NumVideos: int(nRaw%100) + 1,
			MinLength: 300,
			MaxLength: 7200,
			ViewRate:  3,
			Theta:     float64(thetaRaw) / 60,
		}
		cat, err := Generate(cfg, rng.New(seed))
		if err != nil {
			return false
		}
		total := 0.0
		for _, v := range cat.Videos() {
			if v.Size != v.Length*cfg.ViewRate {
				return false
			}
			total += v.Prob
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFromVideos(t *testing.T) {
	cat, err := FromVideos([]Video{
		{Length: 600, Prob: 3},
		{Length: 60, Prob: 1},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 2 {
		t.Fatalf("Len() = %d", cat.Len())
	}
	// Sizes recomputed, probabilities normalized, ids assigned.
	if cat.Video(0).Size != 1800 || cat.Video(1).Size != 180 {
		t.Errorf("sizes = %v, %v", cat.Video(0).Size, cat.Video(1).Size)
	}
	if math.Abs(cat.Video(0).Prob-0.75) > 1e-12 || math.Abs(cat.Video(1).Prob-0.25) > 1e-12 {
		t.Errorf("probs = %v, %v", cat.Video(0).Prob, cat.Video(1).Prob)
	}
	if cat.Video(1).ID != 1 {
		t.Errorf("ID = %d", cat.Video(1).ID)
	}
	if got := cat.AvgSize(); math.Abs(got-990) > 1e-9 {
		t.Errorf("AvgSize = %v", got)
	}
	if got := cat.ExpectedSize(); math.Abs(got-(0.75*1800+0.25*180)) > 1e-9 {
		t.Errorf("ExpectedSize = %v", got)
	}
}

func TestFromVideosErrors(t *testing.T) {
	cases := [][]Video{
		nil,
		{{Length: 0, Prob: 1}},
		{{Length: -5, Prob: 1}},
		{{Length: 10, Prob: -1}},
		{{Length: 10, Prob: 0}, {Length: 10, Prob: 0}},
		{{Length: 10, Prob: math.NaN()}},
	}
	for i, vs := range cases {
		if _, err := FromVideos(vs, 3); err == nil {
			t.Errorf("case %d accepted: %+v", i, vs)
		}
	}
	if _, err := FromVideos([]Video{{Length: 10, Prob: 1}}, 0); err == nil {
		t.Error("zero view rate accepted")
	}
}

func TestFromVideosSampling(t *testing.T) {
	cat, err := FromVideos([]Video{
		{Length: 100, Prob: 9},
		{Length: 100, Prob: 1},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := rng.New(9)
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if cat.Sample(p) == 0 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("hot video frequency %v, want ≈0.9", frac)
	}
}
