package catalog

import (
	"math"
	"testing"

	"semicont/internal/rng"
)

// FuzzCatalog throws arbitrary configurations at Generate: it must
// either return an error or a catalog satisfying every documented
// invariant — never panic. Extreme-but-finite inputs (huge θ, denormal
// lengths) must surface as errors from the Zipf or alias layers, not as
// NaNs inside a "successful" catalog.
func FuzzCatalog(f *testing.F) {
	f.Add(100, 600.0, 1800.0, 3.0, 0.271, uint64(1))
	f.Add(1, 60.0, 60.0, 1.5, 1.0, uint64(2))
	f.Add(50, 300.0, 900.0, 3.0, -1.5, uint64(3))
	f.Fuzz(func(t *testing.T, n int, minLen, maxLen, viewRate, theta float64, seed uint64) {
		if n > 4096 {
			n = n%4096 + 1 // keep generation cheap; small n finds the same bugs
		}
		cfg := Config{
			NumVideos: n, MinLength: minLen, MaxLength: maxLen,
			ViewRate: viewRate, Theta: theta,
		}
		cat, err := Generate(cfg, rng.New(seed))
		if err != nil {
			return
		}
		if cat.Len() != n {
			t.Fatalf("Len = %d, want %d", cat.Len(), n)
		}
		sum := 0.0
		for _, v := range cat.Videos() {
			if v.Length < minLen || v.Length > maxLen {
				t.Fatalf("video %d length %g outside [%g, %g]", v.ID, v.Length, minLen, maxLen)
			}
			if v.Prob < 0 || v.Prob > 1 || math.IsNaN(v.Prob) {
				t.Fatalf("video %d probability %g", v.ID, v.Prob)
			}
			if v.Size < 0 || math.IsNaN(v.Size) || math.IsInf(v.Size, 0) {
				t.Fatalf("video %d size %g", v.ID, v.Size)
			}
			sum += v.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		if a := cat.AvgSize(); math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
			t.Fatalf("AvgSize = %g", a)
		}
		if e := cat.ExpectedSize(); math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Fatalf("ExpectedSize = %g", e)
		}
		p := rng.New(seed + 1)
		for i := 0; i < 16; i++ {
			if id := cat.Sample(p); id < 0 || id >= n {
				t.Fatalf("Sample returned %d with %d videos", id, n)
			}
		}
	})
}

// FuzzFromVideos covers the hand-built catalog path: arbitrary lengths
// and raw (unnormalized) probabilities for a three-video library. The
// normalization must yield a proper distribution or an error — notably
// when the raw probabilities overflow their sum to +Inf.
func FuzzFromVideos(f *testing.F) {
	f.Add(300.0, 0.5, 600.0, 0.3, 900.0, 0.2, 3.0)
	f.Add(60.0, 1.0, 60.0, 0.0, 60.0, 0.0, 1.0)
	f.Fuzz(func(t *testing.T, l1, p1, l2, p2, l3, p3, viewRate float64) {
		cat, err := FromVideos([]Video{
			{Length: l1, Prob: p1},
			{Length: l2, Prob: p2},
			{Length: l3, Prob: p3},
		}, viewRate)
		if err != nil {
			return
		}
		sum := 0.0
		for _, v := range cat.Videos() {
			if v.Prob < 0 || v.Prob > 1 || math.IsNaN(v.Prob) {
				t.Fatalf("video %d probability %g", v.ID, v.Prob)
			}
			sum += v.Prob
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("probabilities sum to %g", sum)
		}
		p := rng.New(1)
		for i := 0; i < 16; i++ {
			if id := cat.Sample(p); id < 0 || id >= cat.Len() {
				t.Fatalf("Sample returned %d", id)
			}
		}
	})
}
