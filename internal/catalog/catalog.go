// Package catalog models the video library of the cluster: each video
// has a playback length drawn uniformly from a configured range
// (Figure 3 of the paper: 10–30 minutes for the small system, 1–2 hours
// for the large one) and a size determined by the constant-bit-rate view
// bandwidth, size = length × b_view.
//
// The catalog also binds the Zipf-like popularity distribution to the
// videos: video 0 is the most popular. Keeping popularity attached to
// the catalog lets placement strategies and the workload generator agree
// on which video is which. Libraries with hand-picked lengths and
// popularities (real deployments, tests) use FromVideos instead of the
// generated form.
package catalog

import (
	"fmt"
	"math"

	"semicont/internal/rng"
	"semicont/internal/zipf"
)

// Video describes one object in the library.
type Video struct {
	ID     int
	Length float64 // playback duration, seconds
	Size   float64 // object size, Mb (Length × view bandwidth)
	Prob   float64 // probability a request is for this video
}

// Catalog is the immutable video library for one simulation.
type Catalog struct {
	videos  []Video
	alias   *rng.Alias
	bview   float64
	avgSize float64
}

// Config describes how to generate a catalog.
type Config struct {
	NumVideos int     // number of distinct videos
	MinLength float64 // shortest playback length, seconds
	MaxLength float64 // longest playback length, seconds
	ViewRate  float64 // b_view, Mb/s
	Theta     float64 // Zipf θ (paper convention; 1 = uniform)
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	bad := func(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
	switch {
	case c.NumVideos <= 0:
		return fmt.Errorf("catalog: NumVideos must be positive, got %d", c.NumVideos)
	case bad(c.MinLength) || c.MinLength <= 0:
		return fmt.Errorf("catalog: MinLength must be positive, got %g", c.MinLength)
	case bad(c.MaxLength) || c.MaxLength < c.MinLength:
		return fmt.Errorf("catalog: MaxLength %g < MinLength %g", c.MaxLength, c.MinLength)
	case bad(c.ViewRate) || c.ViewRate <= 0:
		return fmt.Errorf("catalog: ViewRate must be positive, got %g", c.ViewRate)
	case bad(c.Theta):
		return fmt.Errorf("catalog: Theta %g must be finite", c.Theta)
	}
	return nil
}

// Generate builds a catalog from cfg, drawing video lengths with p.
func Generate(cfg Config, p *rng.PCG) (*Catalog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pop, err := zipf.New(cfg.NumVideos, cfg.Theta)
	if err != nil {
		return nil, err
	}
	videos := make([]Video, cfg.NumVideos)
	for i := range videos {
		length := cfg.MinLength
		if cfg.MaxLength > cfg.MinLength {
			length = p.UniformRange(cfg.MinLength, cfg.MaxLength)
		}
		videos[i] = Video{
			ID:     i,
			Length: length,
			Size:   length * cfg.ViewRate,
			Prob:   pop.Prob(i),
		}
	}
	return FromVideos(videos, cfg.ViewRate)
}

// FromVideos builds a catalog from an explicit video list: lengths and
// request probabilities chosen by the caller. Sizes are recomputed from
// the lengths; probabilities must be non-negative and are normalized.
func FromVideos(videos []Video, viewRate float64) (*Catalog, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("catalog: no videos")
	}
	if viewRate <= 0 || math.IsNaN(viewRate) || math.IsInf(viewRate, 0) {
		return nil, fmt.Errorf("catalog: ViewRate must be positive, got %g", viewRate)
	}
	own := make([]Video, len(videos))
	weights := make([]float64, len(videos))
	totalProb, totalSize := 0.0, 0.0
	for i, v := range videos {
		if v.Length <= 0 || math.IsNaN(v.Length) || math.IsInf(v.Length, 0) {
			return nil, fmt.Errorf("catalog: video %d has length %g", i, v.Length)
		}
		if v.Prob < 0 || math.IsNaN(v.Prob) || math.IsInf(v.Prob, 0) {
			return nil, fmt.Errorf("catalog: video %d has probability %g", i, v.Prob)
		}
		own[i] = Video{ID: i, Length: v.Length, Size: v.Length * viewRate, Prob: v.Prob}
		if math.IsInf(own[i].Size, 0) {
			return nil, fmt.Errorf("catalog: video %d size overflows (length %g × rate %g)", i, v.Length, viewRate)
		}
		weights[i] = v.Prob
		totalProb += v.Prob
		totalSize += own[i].Size
	}
	if totalProb <= 0 {
		return nil, fmt.Errorf("catalog: no video has positive probability")
	}
	for i := range own {
		own[i].Prob /= totalProb
		weights[i] = own[i].Prob
	}
	alias, err := rng.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	return &Catalog{
		videos:  own,
		alias:   alias,
		bview:   viewRate,
		avgSize: totalSize / float64(len(own)),
	}, nil
}

// Len returns the number of videos.
func (c *Catalog) Len() int { return len(c.videos) }

// Video returns the video with the given id.
func (c *Catalog) Video(id int) Video { return c.videos[id] }

// Videos returns the full video list. Callers must not modify it.
func (c *Catalog) Videos() []Video { return c.videos }

// ViewRate returns b_view in Mb/s.
func (c *Catalog) ViewRate() float64 { return c.bview }

// AvgSize returns the mean object size in Mb. The paper expresses
// client staging buffers as a percentage of this quantity.
func (c *Catalog) AvgSize() float64 { return c.avgSize }

// Sample draws a video id according to popularity.
func (c *Catalog) Sample(p *rng.PCG) int { return c.alias.Sample(p) }

// ExpectedSize returns Σ p_i·Size_i, the mean size of a *requested*
// video (popularity-weighted, which differs from AvgSize when demand is
// skewed). The workload generator uses it to calibrate the arrival rate
// so the offered load equals cluster capacity.
func (c *Catalog) ExpectedSize() float64 {
	e := 0.0
	for _, v := range c.videos {
		e += v.Prob * v.Size
	}
	return e
}
