package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Trace files are JSON arrays of events:
//
//	[
//	  {"at_hours": 0.5, "server": 2, "kind": "fail"},
//	  {"at_hours": 1.0, "server": 2, "kind": "recover", "cold": true}
//	]
//
// ParseTrace is strict: unknown fields, trailing data, non-finite
// times, and out-of-order or non-alternating sequences are errors, so a
// trace that parses is guaranteed to compile against any cluster large
// enough for its server ids.

// ParseTrace decodes and validates a scripted fault trace. Validation
// uses the smallest cluster containing every referenced server, so the
// caller's Config.Validate still checks ids against the real cluster.
func ParseTrace(data []byte) ([]Event, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var trace []Event
	if err := dec.Decode(&trace); err != nil {
		return nil, fmt.Errorf("faults: parse trace: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("faults: trace has trailing data after the event array")
	}
	maxServer := -1
	for _, ev := range trace {
		if ev.Server > maxServer {
			maxServer = ev.Server
		}
	}
	if maxServer == math.MaxInt {
		return nil, fmt.Errorf("faults: trace server id overflows")
	}
	if err := validateTrace(trace, maxServer+1, nil); err != nil {
		return nil, err
	}
	return trace, nil
}
