package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		servers int
		ok      bool
	}{
		{"zero value", Config{}, 4, true},
		{"stochastic", Config{MTBFHours: 10, MTTRHours: 1}, 4, true},
		{"mtbf without mttr", Config{MTBFHours: 10}, 4, false},
		{"negative mtbf", Config{MTBFHours: -1, MTTRHours: 1}, 4, false},
		{"nan mtbf", Config{MTBFHours: math.NaN(), MTTRHours: 1}, 4, false},
		{"inf mttr", Config{MTBFHours: 1, MTTRHours: math.Inf(1)}, 4, false},
		{"trace", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindFail},
			{AtHours: 2, Server: 0, Kind: KindRecover, Cold: true},
		}}, 4, true},
		{"trace and stochastic exclusive", Config{MTBFHours: 10, MTTRHours: 1,
			Trace: []Event{{AtHours: 1, Server: 0, Kind: KindFail}}}, 4, false},
		{"trace server out of range", Config{Trace: []Event{
			{AtHours: 1, Server: 4, Kind: KindFail}}}, 4, false},
		{"trace negative time", Config{Trace: []Event{
			{AtHours: -1, Server: 0, Kind: KindFail}}}, 4, false},
		{"trace out of order", Config{Trace: []Event{
			{AtHours: 2, Server: 0, Kind: KindFail},
			{AtHours: 1, Server: 1, Kind: KindFail},
		}}, 4, false},
		{"trace double fail", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindFail},
			{AtHours: 2, Server: 0, Kind: KindFail},
		}}, 4, false},
		{"trace recover while up", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindRecover}}}, 4, false},
		{"trace cold fail", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindFail, Cold: true}}}, 4, false},
		{"trace unknown kind", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: "explode"}}}, 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(tc.servers)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("config %+v validated, want error", tc.cfg)
			}
		})
	}
}

func TestCompileStochastic(t *testing.T) {
	cfg := Config{MTBFHours: 5, MTTRHours: 0.5, Cold: true}
	evs, err := Compile(cfg, 4, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("100 h at MTBF 5 h over 4 servers produced no events")
	}
	if len(evs)%2 != 0 {
		t.Fatalf("%d events: every failure must pair with a recovery", len(evs))
	}
	down := make(map[int]bool)
	prevAt := math.Inf(-1)
	perServer := make(map[int]float64)
	for i, ev := range evs {
		if ev.At < prevAt {
			t.Fatalf("event %d at %g before predecessor at %g", i, ev.At, prevAt)
		}
		prevAt = ev.At
		if ev.At < perServer[ev.Server] {
			t.Fatalf("event %d out of order for server %d", i, ev.Server)
		}
		perServer[ev.Server] = ev.At
		if ev.Recover {
			if !down[ev.Server] {
				t.Fatalf("event %d recovers server %d while up", i, ev.Server)
			}
			if !ev.Cold {
				t.Errorf("event %d: Cold config must mark recoveries cold", i)
			}
			down[ev.Server] = false
		} else {
			if down[ev.Server] {
				t.Fatalf("event %d fails server %d while down", i, ev.Server)
			}
			if ev.At >= 100*3600 {
				t.Fatalf("event %d: failure at %g past the horizon", i, ev.At)
			}
			down[ev.Server] = true
		}
	}
	for s, d := range down {
		if d {
			t.Errorf("server %d left down with no compiled recovery", s)
		}
	}
}

// TestCompileDeterministic pins the stream-split contract: the schedule
// is a pure function of (config, servers, horizon, seed), and each
// server's draws are independent of the cluster size.
func TestCompileDeterministic(t *testing.T) {
	cfg := Config{MTBFHours: 2, MTTRHours: 0.25}
	a, err := Compile(cfg, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(cfg, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs compiled to different schedules")
	}
	c, err := Compile(cfg, 9, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(evs []Compiled) []Compiled {
		var out []Compiled
		for _, ev := range evs {
			if ev.Server < 8 {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(a), filter(c)) {
		t.Fatal("adding a server perturbed existing servers' fault draws")
	}
	d, err := Compile(cfg, 8, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds compiled to the same schedule")
	}
}

func TestCompileTrace(t *testing.T) {
	cfg := Config{Trace: []Event{
		{AtHours: 0.5, Server: 2, Kind: KindFail},
		{AtHours: 1, Server: 2, Kind: KindRecover, Cold: true},
	}}
	evs, err := Compile(cfg, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Compiled{
		{At: 1800, Server: 2},
		{At: 3600, Server: 2, Recover: true, Cold: true},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("compiled %+v, want %+v", evs, want)
	}
}

func TestParseTrace(t *testing.T) {
	good := []byte(`[
		{"at_hours": 0.5, "server": 1, "kind": "fail"},
		{"at_hours": 1.25, "server": 1, "kind": "recover", "cold": true}
	]`)
	trace, err := ParseTrace(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[1].Cold != true || trace[0].Kind != KindFail {
		t.Fatalf("parsed %+v", trace)
	}

	bad := map[string]string{
		"not json":        `{`,
		"unknown field":   `[{"at_hours": 1, "server": 0, "kind": "fail", "blast_radius": 3}]`,
		"trailing data":   `[] []`,
		"bad kind":        `[{"at_hours": 1, "server": 0, "kind": "melt"}]`,
		"recover first":   `[{"at_hours": 1, "server": 0, "kind": "recover"}]`,
		"negative time":   `[{"at_hours": -1, "server": 0, "kind": "fail"}]`,
		"inf time":        `[{"at_hours": 1e999, "server": 0, "kind": "fail"}]`,
		"order":           `[{"at_hours": 2, "server": 0, "kind": "fail"}, {"at_hours": 1, "server": 1, "kind": "fail"}]`,
		"negative server": `[{"at_hours": 1, "server": -1, "kind": "fail"}]`,
	}
	for name, in := range bad {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("%s: ParseTrace accepted %q", name, in)
		}
	}
}
