package faults

import "testing"

// FuzzParseTrace fuzzes the trace parser's contract: it must never
// panic, and any trace it accepts must compile cleanly against a
// cluster large enough for its server ids — compilation is where the
// engine's scheduling preconditions (time order, per-server fail and
// recover alternation) are consumed, so a parse-then-compile gap would
// surface as an engine error at run time.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"at_hours": 0.5, "server": 2, "kind": "fail"}]`))
	f.Add([]byte(`[
		{"at_hours": 0.5, "server": 0, "kind": "fail"},
		{"at_hours": 1.0, "server": 0, "kind": "recover", "cold": true},
		{"at_hours": 1.0, "server": 1, "kind": "fail"}
	]`))
	f.Add([]byte(`{"not": "an array"}`))
	f.Add([]byte(`[{"at_hours": 1e308, "server": 9999999, "kind": "recover"}]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := ParseTrace(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		servers := 1
		for _, ev := range trace {
			if ev.Server >= servers {
				servers = ev.Server + 1
			}
		}
		if _, err := Compile(Config{Trace: trace}, servers, 1, 1); err != nil {
			t.Fatalf("parsed trace failed to compile: %v\ntrace: %+v", err, trace)
		}
	})
}
