package faults

import "testing"

// FuzzParseTrace fuzzes the trace parser's contract: it must never
// panic, and any trace it accepts must compile cleanly against a
// cluster large enough for its server ids — compilation is where the
// engine's scheduling preconditions (time order, per-server fail and
// recover alternation, brownout fraction ranges, domain expansion) are
// consumed, so a parse-then-compile gap would surface as an engine
// error at run time. Domain events name domains the parser cannot see,
// so the harness synthesizes one singleton domain per referenced id on
// fresh server ids — parse-time domain-state alternation then maps
// one-to-one onto compile-time member states.
func FuzzParseTrace(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"at_hours": 0.5, "server": 2, "kind": "fail"}]`))
	f.Add([]byte(`[
		{"at_hours": 0.5, "server": 0, "kind": "fail"},
		{"at_hours": 1.0, "server": 0, "kind": "recover", "cold": true},
		{"at_hours": 1.0, "server": 1, "kind": "fail"}
	]`))
	f.Add([]byte(`{"not": "an array"}`))
	f.Add([]byte(`[{"at_hours": 1e308, "server": 9999999, "kind": "recover"}]`))
	f.Add([]byte(`[
		{"at_hours": 0.25, "server": 3, "kind": "brownout", "fraction": 0.5},
		{"at_hours": 0.75, "server": 3, "kind": "restore"},
		{"at_hours": 0.75, "server": 3, "kind": "fail"}
	]`))
	f.Add([]byte(`[{"at_hours": 1, "server": 0, "kind": "fail", "fraction": 0.5}]`))
	f.Add([]byte(`[
		{"at_hours": 0.1, "domain": 1, "kind": "domain-fail"},
		{"at_hours": 0.2, "domain": 0, "kind": "domain-brownout", "fraction": 0.25},
		{"at_hours": 0.4, "domain": 1, "kind": "domain-recover"},
		{"at_hours": 0.9, "domain": 0, "kind": "domain-restore"}
	]`))
	f.Add([]byte(`[{"at_hours": 0.1, "server": 2, "domain": 1, "kind": "domain-fail"}]`))
	f.Add([]byte(`[
		{"at_hours": 0.5, "server": 4, "kind": "fail"},
		{"at_hours": 0.6, "server": 4, "kind": "brownout", "fraction": 0.9}
	]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := ParseTrace(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		servers, maxDomain := 1, -1
		for _, ev := range trace {
			if ev.Server >= servers {
				servers = ev.Server + 1
			}
			if isDomainKind(ev.Kind) && ev.Domain > maxDomain {
				maxDomain = ev.Domain
			}
		}
		if maxDomain >= 1<<12 {
			return // a huge sparse domain id parses; don't materialize it
		}
		var domains [][]int
		for d := 0; d <= maxDomain; d++ {
			domains = append(domains, []int{servers + d})
		}
		if _, err := Compile(Config{Trace: trace, Domains: domains}, servers+len(domains), 1, 1); err != nil {
			t.Fatalf("parsed trace failed to compile: %v\ntrace: %+v", err, trace)
		}
	})
}
