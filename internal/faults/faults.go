// Package faults models server failure and recovery for the cluster
// simulation. It turns a fault specification — a stochastic process
// (exponential MTBF/MTTR per server) or a scripted trace — into a
// deterministic, pre-compiled sequence of engine events.
//
// Beyond binary up/down failures the package models two partial-failure
// regimes:
//
//   - Brownouts: a server's effective bandwidth scales to a fraction
//     f ∈ (0,1] for a duration (overheating, a degraded NIC, a noisy
//     neighbour). Brownouts come from a scripted trace or from their own
//     per-server stochastic process, drawn on a stream split off the
//     failure stream so enabling one process never perturbs the other.
//   - Correlated failure domains: servers grouped into racks or zones
//     fail (or brown out) together — one domain event takes down every
//     member. Domains are scripted via the domain-* trace kinds or
//     driven by a per-domain stochastic process on its own split stream.
//
// Determinism is the package's contract: the stochastic processes draw
// every variate up front from per-server (or per-domain) streams derived
// with the repository's stream-splitting discipline (rng.DeriveSeed), so
// the compiled schedule depends only on (config, cluster size, horizon,
// seed) — never on event interleaving or GOMAXPROCS.
package faults

import (
	"fmt"
	"math"
	"slices"

	"semicont/internal/rng"
)

// Seed-stream labels decoupling each fault process from every other
// random stream.
const (
	seedLabel         uint64 = 0x6661756c74 // "fault": per-server failures
	brownoutSeedLabel uint64 = 0x6272776e   // "brwn": per-server brownouts
	domainSeedLabel   uint64 = 0x646f6d61   // "doma": per-domain events
)

// Kind values for scripted trace events. The domain-* kinds target a
// failure domain (Config.Domains index) instead of a single server and
// expand to one compiled event per member.
const (
	KindFail           = "fail"
	KindRecover        = "recover"
	KindBrownout       = "brownout"
	KindRestore        = "restore"
	KindDomainFail     = "domain-fail"
	KindDomainRecover  = "domain-recover"
	KindDomainBrownout = "domain-brownout"
	KindDomainRestore  = "domain-restore"
)

// Event is one scripted fault event. Times are in simulated hours from
// the start of the run. Cold is only meaningful on a recovery and marks
// the server's storage as wiped (its replicas are lost and must be
// rebuilt through dynamic replication). Fraction is required on
// brownout kinds — the effective-bandwidth fraction f ∈ (0,1] — and
// must be absent on every other kind. Domain kinds address
// Config.Domains[Domain] and must leave Server zero; server kinds must
// leave Domain zero.
type Event struct {
	AtHours  float64 `json:"at_hours"`
	Server   int     `json:"server"`
	Domain   int     `json:"domain,omitempty"`
	Kind     string  `json:"kind"`
	Cold     bool    `json:"cold,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
}

// Config specifies the fault model for one run. The zero value disables
// faults entirely. The stochastic processes and a scripted trace are
// mutually exclusive: mixing the two on one cluster could interleave
// events out of order for a server. The per-server processes (failures,
// brownouts) may run together — Compile suppresses brownout intervals
// that would overlap a down interval; the domain process replaces the
// per-server processes (a run has one correlation regime).
type Config struct {
	// MTBFHours is each server's mean time between failures (exponential),
	// in simulated hours. Zero disables the stochastic failure process.
	MTBFHours float64

	// MTTRHours is each server's mean time to recovery (exponential), in
	// simulated hours. Required positive when MTBFHours > 0.
	MTTRHours float64

	// Cold marks stochastic recoveries as cold: the server rejoins with
	// its storage wiped. Warm (default) recoveries keep replicas intact.
	// Applies to the domain process too when it injects failures.
	Cold bool

	// BrownoutMTBFHours is each server's mean time between brownouts
	// (exponential), in simulated hours. Zero disables the stochastic
	// brownout process.
	BrownoutMTBFHours float64

	// BrownoutMTTRHours is each brownout's mean duration (exponential),
	// in simulated hours. Required positive when BrownoutMTBFHours > 0.
	BrownoutMTTRHours float64

	// BrownoutFraction is the effective-bandwidth fraction f ∈ (0,1]
	// applied for the duration of each stochastic brownout. Required in
	// range when BrownoutMTBFHours > 0.
	BrownoutFraction float64

	// Domains groups servers into correlated failure domains (racks,
	// zones). Every domain must be non-empty and no server may belong to
	// two domains. Domains are referenced by index from domain-* trace
	// events and drive the stochastic domain process below.
	Domains [][]int

	// DomainMTBFHours is each domain's mean time between events
	// (exponential), in simulated hours. Zero disables the stochastic
	// domain process; positive requires Domains and DomainMTTRHours, and
	// is mutually exclusive with the per-server processes — a run has
	// one correlation regime.
	DomainMTBFHours float64

	// DomainMTTRHours is each domain event's mean duration (exponential),
	// in simulated hours.
	DomainMTTRHours float64

	// DomainBrownout makes stochastic domain events brown members out to
	// DomainFraction instead of failing them.
	DomainBrownout bool

	// DomainFraction is the effective-bandwidth fraction f ∈ (0,1] for
	// domain brownouts. Required in range when DomainBrownout is set;
	// must be zero otherwise.
	DomainFraction float64

	// Trace is a scripted event sequence, validated by Validate and used
	// instead of the stochastic processes.
	Trace []Event
}

// Enabled reports whether the configuration injects any faults. A trace
// containing only brownout events arms the fault path exactly like one
// containing failures, as does any of the three stochastic processes.
func (c Config) Enabled() bool {
	return c.MTBFHours > 0 || c.BrownoutMTBFHours > 0 || c.DomainMTBFHours > 0 || len(c.Trace) > 0
}

// validFraction reports whether f is a usable effective-bandwidth
// fraction: finite and in (0,1].
func validFraction(f float64) bool {
	return !math.IsNaN(f) && f > 0 && f <= 1
}

func checkRate(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("faults: %s %g must be finite and non-negative", name, v)
	}
	return nil
}

// Validate reports configuration errors for a cluster of numServers.
func (c Config) Validate(numServers int) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MTBFHours", c.MTBFHours}, {"MTTRHours", c.MTTRHours},
		{"BrownoutMTBFHours", c.BrownoutMTBFHours}, {"BrownoutMTTRHours", c.BrownoutMTTRHours},
		{"DomainMTBFHours", c.DomainMTBFHours}, {"DomainMTTRHours", c.DomainMTTRHours},
	} {
		if err := checkRate(f.name, f.v); err != nil {
			return err
		}
	}
	if c.MTBFHours > 0 && c.MTTRHours <= 0 {
		return fmt.Errorf("faults: MTBFHours %g requires a positive MTTRHours", c.MTBFHours)
	}
	if c.BrownoutMTBFHours > 0 {
		if c.BrownoutMTTRHours <= 0 {
			return fmt.Errorf("faults: BrownoutMTBFHours %g requires a positive BrownoutMTTRHours", c.BrownoutMTBFHours)
		}
		if !validFraction(c.BrownoutFraction) {
			return fmt.Errorf("faults: BrownoutFraction %g must be in (0,1]", c.BrownoutFraction)
		}
	} else if c.BrownoutFraction != 0 && !validFraction(c.BrownoutFraction) {
		return fmt.Errorf("faults: BrownoutFraction %g must be in (0,1]", c.BrownoutFraction)
	}
	if err := c.validateDomains(numServers); err != nil {
		return err
	}
	if c.DomainMTBFHours > 0 {
		if len(c.Domains) == 0 {
			return fmt.Errorf("faults: DomainMTBFHours %g requires Domains", c.DomainMTBFHours)
		}
		if c.DomainMTTRHours <= 0 {
			return fmt.Errorf("faults: DomainMTBFHours %g requires a positive DomainMTTRHours", c.DomainMTBFHours)
		}
		if c.MTBFHours > 0 || c.BrownoutMTBFHours > 0 {
			return fmt.Errorf("faults: the domain process and the per-server processes are mutually exclusive")
		}
	}
	if c.DomainBrownout && !validFraction(c.DomainFraction) {
		return fmt.Errorf("faults: DomainFraction %g must be in (0,1]", c.DomainFraction)
	}
	if !c.DomainBrownout && c.DomainFraction != 0 {
		return fmt.Errorf("faults: DomainFraction %g set without DomainBrownout", c.DomainFraction)
	}
	if (c.MTBFHours > 0 || c.BrownoutMTBFHours > 0 || c.DomainMTBFHours > 0) && len(c.Trace) > 0 {
		return fmt.Errorf("faults: stochastic processes and a scripted Trace are mutually exclusive")
	}
	return validateTrace(c.Trace, numServers, c.Domains)
}

// validateDomains checks the domain definition itself: every domain
// non-empty, every member in range, and no server in two domains (a
// shared member would receive out-of-order events from both).
func (c Config) validateDomains(numServers int) error {
	seen := make(map[int]int)
	for d, members := range c.Domains {
		if len(members) == 0 {
			return fmt.Errorf("faults: domain %d is empty", d)
		}
		for _, s := range members {
			if s < 0 || s >= numServers {
				return fmt.Errorf("faults: domain %d member %d outside cluster of %d", d, s, numServers)
			}
			if prev, dup := seen[s]; dup {
				return fmt.Errorf("faults: server %d belongs to domains %d and %d", s, prev, d)
			}
			seen[s] = d
		}
	}
	return nil
}

// Per-target fault states for trace validation. Transitions: fail only
// from up, recover only from down, brownout only from up, restore only
// from dimmed — so a brownout can never overlap a down interval and
// every sequence alternates cleanly.
const (
	stateUp uint8 = iota
	stateDown
	stateDimmed
)

// stepFaultState applies one transition to a target's state, returning
// an error naming what broke.
func stepFaultState(states map[int]uint8, key int, kind string, what string, i int) error {
	st := states[key]
	switch kind {
	case KindFail, KindDomainFail:
		switch st {
		case stateDown:
			return fmt.Errorf("faults: trace[%d] fails %s %d, which is already down", i, what, key)
		case stateDimmed:
			return fmt.Errorf("faults: trace[%d] fails %s %d while browned out (restore it first)", i, what, key)
		}
		states[key] = stateDown
	case KindRecover, KindDomainRecover:
		if st != stateDown {
			return fmt.Errorf("faults: trace[%d] recovers %s %d, which is not down", i, what, key)
		}
		states[key] = stateUp
	case KindBrownout, KindDomainBrownout:
		switch st {
		case stateDown:
			return fmt.Errorf("faults: trace[%d] browns out %s %d, which is down", i, what, key)
		case stateDimmed:
			return fmt.Errorf("faults: trace[%d] browns out %s %d, which is already browned out", i, what, key)
		}
		states[key] = stateDimmed
	case KindDomainRestore, KindRestore:
		if st != stateDimmed {
			return fmt.Errorf("faults: trace[%d] restores %s %d, which is not browned out", i, what, key)
		}
		states[key] = stateUp
	}
	return nil
}

// isDomainKind reports whether kind targets a failure domain.
func isDomainKind(kind string) bool {
	switch kind {
	case KindDomainFail, KindDomainRecover, KindDomainBrownout, KindDomainRestore:
		return true
	}
	return false
}

// isBrownoutKind reports whether kind begins a brownout (and therefore
// requires a Fraction).
func isBrownoutKind(kind string) bool {
	return kind == KindBrownout || kind == KindDomainBrownout
}

// isColdableKind reports whether kind may carry the Cold flag.
func isColdableKind(kind string) bool {
	return kind == KindRecover || kind == KindDomainRecover
}

// validKind reports whether kind is one of the eight trace kinds.
func validKind(kind string) bool {
	switch kind {
	case KindFail, KindRecover, KindBrownout, KindRestore,
		KindDomainFail, KindDomainRecover, KindDomainBrownout, KindDomainRestore:
		return true
	}
	return false
}

// validateTrace checks a scripted event sequence: global time order,
// in-range targets, known kinds, fraction ranges, and per-target
// fail/recover/brownout/restore alternation starting from the up state.
// When domains is non-nil, domain events are additionally expanded to
// their members, so a domain event overlapping a member's individual
// down or dimmed interval is rejected; with domains nil (ParseTrace,
// where membership is unknown) only the per-domain alternation is
// checked — Config.Validate re-runs with the real domain table.
func validateTrace(trace []Event, numServers int, domains [][]int) error {
	serverState := make(map[int]uint8, numServers)
	domainState := make(map[int]uint8)
	prev := math.Inf(-1)
	for i, ev := range trace {
		if math.IsNaN(ev.AtHours) || math.IsInf(ev.AtHours, 0) || ev.AtHours < 0 {
			return fmt.Errorf("faults: trace[%d] time %g must be finite and non-negative", i, ev.AtHours)
		}
		if ev.AtHours < prev {
			return fmt.Errorf("faults: trace[%d] time %g before preceding event at %g", i, ev.AtHours, prev)
		}
		prev = ev.AtHours
		if !validKind(ev.Kind) {
			return fmt.Errorf("faults: trace[%d] has unknown kind %q", i, ev.Kind)
		}
		if ev.Cold && !isColdableKind(ev.Kind) {
			return fmt.Errorf("faults: trace[%d] marks a %s cold (cold applies to recoveries)", i, ev.Kind)
		}
		if isBrownoutKind(ev.Kind) {
			if !validFraction(ev.Fraction) {
				return fmt.Errorf("faults: trace[%d] brownout fraction %g must be in (0,1]", i, ev.Fraction)
			}
		} else if ev.Fraction != 0 {
			return fmt.Errorf("faults: trace[%d] %s carries a fraction (only brownouts take one)", i, ev.Kind)
		}
		if isDomainKind(ev.Kind) {
			if ev.Server != 0 {
				return fmt.Errorf("faults: trace[%d] %s sets server %d (domain events target a domain)", i, ev.Kind, ev.Server)
			}
			if ev.Domain < 0 {
				return fmt.Errorf("faults: trace[%d] negative domain %d", i, ev.Domain)
			}
			if domains != nil && ev.Domain >= len(domains) {
				return fmt.Errorf("faults: trace[%d] domain %d outside the %d configured domains", i, ev.Domain, len(domains))
			}
			if err := stepFaultState(domainState, ev.Domain, ev.Kind, "domain", i); err != nil {
				return err
			}
			if domains != nil {
				for _, s := range domains[ev.Domain] {
					if err := stepFaultState(serverState, s, ev.Kind, "server", i); err != nil {
						return err
					}
				}
			}
			continue
		}
		if ev.Domain != 0 {
			return fmt.Errorf("faults: trace[%d] %s sets domain %d (server events target a server)", i, ev.Kind, ev.Domain)
		}
		if ev.Server < 0 || ev.Server >= numServers {
			return fmt.Errorf("faults: trace[%d] server %d outside cluster of %d", i, ev.Server, numServers)
		}
		if err := stepFaultState(serverState, ev.Server, ev.Kind, "server", i); err != nil {
			return err
		}
	}
	return nil
}

// Compiled is one engine-ready fault event; At is in simulated seconds.
// Brownout distinguishes the partial-failure pair: Brownout && !Recover
// dims the server's effective bandwidth to Fraction, Brownout && Recover
// restores it. Fraction is set only on brownout begins.
type Compiled struct {
	At       float64
	Server   int
	Recover  bool
	Cold     bool
	Brownout bool
	Fraction float64
}

// interval is one closed stochastic downtime [start, end] used for
// brownout-overlap suppression.
type interval struct{ start, end float64 }

// overlaps reports whether two closed intervals intersect or touch.
// Touching counts: a brownout beginning exactly at a recovery instant
// (or ending exactly at a failure instant) would race the failure
// event's ordering, so it is suppressed too.
func (iv interval) overlaps(o interval) bool {
	return iv.start <= o.end && o.start <= iv.end
}

// Compile validates cfg and expands it into the full, time-ordered
// event schedule for a run of horizonHours. Each stochastic process
// draws one independent variate stream per server (or domain) from
// seed; begins are generated inside [0, horizon) and every begin is
// paired with its end even when that end lands past the horizon (the
// drain phase observes it). When the failure and brownout processes run
// together, a brownout interval that overlaps (or touches) one of the
// server's down intervals is dropped whole — a down server has no
// bandwidth to dim, and dropping the interval keeps each server's event
// sequence cleanly alternating.
func Compile(cfg Config, numServers int, horizonHours float64, seed uint64) ([]Compiled, error) {
	if err := cfg.Validate(numServers); err != nil {
		return nil, err
	}
	var out []Compiled
	for _, ev := range cfg.Trace {
		c := Compiled{
			At:       ev.AtHours * 3600,
			Recover:  ev.Kind == KindRecover || ev.Kind == KindRestore || ev.Kind == KindDomainRecover || ev.Kind == KindDomainRestore,
			Cold:     ev.Cold,
			Brownout: ev.Kind == KindBrownout || ev.Kind == KindRestore || ev.Kind == KindDomainBrownout || ev.Kind == KindDomainRestore,
		}
		if isBrownoutKind(ev.Kind) {
			c.Fraction = ev.Fraction
		}
		if isDomainKind(ev.Kind) {
			for _, s := range cfg.Domains[ev.Domain] {
				c.Server = s
				out = append(out, c)
			}
			continue
		}
		c.Server = ev.Server
		out = append(out, c)
	}
	horizon := horizonHours * 3600
	// Down intervals per server, kept only when the brownout process
	// needs them for overlap suppression.
	var downIvs [][]interval
	if cfg.MTBFHours > 0 && cfg.BrownoutMTBFHours > 0 {
		downIvs = make([][]interval, numServers)
	}
	if cfg.MTBFHours > 0 {
		mtbf := cfg.MTBFHours * 3600
		mttr := cfg.MTTRHours * 3600
		for s := 0; s < numServers; s++ {
			g := rng.New(rng.DeriveSeed(seed, seedLabel, uint64(s)))
			t := 0.0
			for {
				t += g.ExpFloat64() * mtbf
				if t >= horizon {
					break
				}
				start := t
				out = append(out, Compiled{At: t, Server: s})
				t += g.ExpFloat64() * mttr
				out = append(out, Compiled{At: t, Server: s, Recover: true, Cold: cfg.Cold})
				if downIvs != nil {
					downIvs[s] = append(downIvs[s], interval{start, t})
				}
			}
		}
	}
	if cfg.BrownoutMTBFHours > 0 {
		mtbf := cfg.BrownoutMTBFHours * 3600
		mttr := cfg.BrownoutMTTRHours * 3600
		for s := 0; s < numServers; s++ {
			g := rng.New(rng.DeriveSeed(seed, brownoutSeedLabel, uint64(s)))
			t := 0.0
			for {
				t += g.ExpFloat64() * mtbf
				if t >= horizon {
					break
				}
				iv := interval{t, t + g.ExpFloat64()*mttr}
				t = iv.end
				if downIvs != nil && slices.ContainsFunc(downIvs[s], iv.overlaps) {
					continue // suppressed: the server is (or goes) down inside it
				}
				out = append(out,
					Compiled{At: iv.start, Server: s, Brownout: true, Fraction: cfg.BrownoutFraction},
					Compiled{At: iv.end, Server: s, Brownout: true, Recover: true})
			}
		}
	}
	if cfg.DomainMTBFHours > 0 {
		mtbf := cfg.DomainMTBFHours * 3600
		mttr := cfg.DomainMTTRHours * 3600
		for d := range cfg.Domains {
			g := rng.New(rng.DeriveSeed(seed, domainSeedLabel, uint64(d)))
			t := 0.0
			for {
				t += g.ExpFloat64() * mtbf
				if t >= horizon {
					break
				}
				start := t
				t += g.ExpFloat64() * mttr
				for _, s := range cfg.Domains[d] {
					if cfg.DomainBrownout {
						out = append(out,
							Compiled{At: start, Server: s, Brownout: true, Fraction: cfg.DomainFraction},
							Compiled{At: t, Server: s, Brownout: true, Recover: true})
					} else {
						out = append(out,
							Compiled{At: start, Server: s},
							Compiled{At: t, Server: s, Recover: true, Cold: cfg.Cold})
					}
				}
			}
		}
	}
	// Per-target sequences are already ordered; the stable sort merges
	// them deterministically (ties resolved by server id, then original
	// order, so a zero-length downtime keeps begin before end).
	slices.SortStableFunc(out, func(a, b Compiled) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		return a.Server - b.Server
	})
	return out, nil
}
