// Package faults models server failure and recovery for the cluster
// simulation. It turns a fault specification — a stochastic process
// (exponential MTBF/MTTR per server) or a scripted trace — into a
// deterministic, pre-compiled sequence of engine events.
//
// Determinism is the package's contract: the stochastic process draws
// every variate up front from per-server streams derived with the
// repository's stream-splitting discipline (rng.DeriveSeed), so the
// compiled schedule depends only on (config, cluster size, horizon,
// seed) — never on event interleaving or GOMAXPROCS.
package faults

import (
	"fmt"
	"math"
	"slices"

	"semicont/internal/rng"
)

// seedLabel decouples fault draws from every other random stream
// ("fault" in ASCII).
const seedLabel uint64 = 0x6661756c74

// Kind values for scripted trace events.
const (
	KindFail    = "fail"
	KindRecover = "recover"
)

// Event is one scripted fault event. Times are in simulated hours from
// the start of the run; Cold is only meaningful on a recovery and marks
// the server's storage as wiped (its replicas are lost and must be
// rebuilt through dynamic replication).
type Event struct {
	AtHours float64 `json:"at_hours"`
	Server  int     `json:"server"`
	Kind    string  `json:"kind"`
	Cold    bool    `json:"cold,omitempty"`
}

// Config specifies the fault model for one run. The zero value disables
// faults entirely. The stochastic process and a scripted trace are
// mutually exclusive: mixing the two on one cluster could interleave
// fail/recover events out of order for a server.
type Config struct {
	// MTBFHours is each server's mean time between failures (exponential),
	// in simulated hours. Zero disables the stochastic process.
	MTBFHours float64

	// MTTRHours is each server's mean time to recovery (exponential), in
	// simulated hours. Required positive when MTBFHours > 0.
	MTTRHours float64

	// Cold marks stochastic recoveries as cold: the server rejoins with
	// its storage wiped. Warm (default) recoveries keep replicas intact.
	Cold bool

	// Trace is a scripted event sequence, validated by Validate and used
	// instead of the stochastic process.
	Trace []Event
}

// Enabled reports whether the configuration injects any faults.
func (c Config) Enabled() bool { return c.MTBFHours > 0 || len(c.Trace) > 0 }

// Validate reports configuration errors for a cluster of numServers.
func (c Config) Validate(numServers int) error {
	if math.IsNaN(c.MTBFHours) || math.IsInf(c.MTBFHours, 0) || c.MTBFHours < 0 {
		return fmt.Errorf("faults: MTBFHours %g must be finite and non-negative", c.MTBFHours)
	}
	if math.IsNaN(c.MTTRHours) || math.IsInf(c.MTTRHours, 0) || c.MTTRHours < 0 {
		return fmt.Errorf("faults: MTTRHours %g must be finite and non-negative", c.MTTRHours)
	}
	if c.MTBFHours > 0 && c.MTTRHours <= 0 {
		return fmt.Errorf("faults: MTBFHours %g requires a positive MTTRHours", c.MTBFHours)
	}
	if c.MTBFHours > 0 && len(c.Trace) > 0 {
		return fmt.Errorf("faults: stochastic process (MTBFHours) and scripted Trace are mutually exclusive")
	}
	return validateTrace(c.Trace, numServers)
}

// validateTrace checks a scripted event sequence: global time order,
// in-range servers, known kinds, and per-server fail/recover
// alternation starting from the up state.
func validateTrace(trace []Event, numServers int) error {
	down := make(map[int]bool, numServers)
	prev := math.Inf(-1)
	for i, ev := range trace {
		if math.IsNaN(ev.AtHours) || math.IsInf(ev.AtHours, 0) || ev.AtHours < 0 {
			return fmt.Errorf("faults: trace[%d] time %g must be finite and non-negative", i, ev.AtHours)
		}
		if ev.AtHours < prev {
			return fmt.Errorf("faults: trace[%d] time %g before preceding event at %g", i, ev.AtHours, prev)
		}
		prev = ev.AtHours
		if ev.Server < 0 || ev.Server >= numServers {
			return fmt.Errorf("faults: trace[%d] server %d outside cluster of %d", i, ev.Server, numServers)
		}
		switch ev.Kind {
		case KindFail:
			if ev.Cold {
				return fmt.Errorf("faults: trace[%d] marks a failure cold (cold applies to recoveries)", i)
			}
			if down[ev.Server] {
				return fmt.Errorf("faults: trace[%d] fails server %d, which is already down", i, ev.Server)
			}
			down[ev.Server] = true
		case KindRecover:
			if !down[ev.Server] {
				return fmt.Errorf("faults: trace[%d] recovers server %d, which is not down", i, ev.Server)
			}
			down[ev.Server] = false
		default:
			return fmt.Errorf("faults: trace[%d] has unknown kind %q (want %q or %q)", i, ev.Kind, KindFail, KindRecover)
		}
	}
	return nil
}

// Compiled is one engine-ready fault event; At is in simulated seconds.
type Compiled struct {
	At      float64
	Server  int
	Recover bool
	Cold    bool
}

// Compile validates cfg and expands it into the full, time-ordered
// event schedule for a run of horizonHours. The stochastic process
// draws one independent variate stream per server from seed; failures
// are generated inside [0, horizon) and every failure is paired with
// its recovery even when that recovery lands past the horizon (the
// drain phase observes it).
func Compile(cfg Config, numServers int, horizonHours float64, seed uint64) ([]Compiled, error) {
	if err := cfg.Validate(numServers); err != nil {
		return nil, err
	}
	var out []Compiled
	for _, ev := range cfg.Trace {
		out = append(out, Compiled{
			At:      ev.AtHours * 3600,
			Server:  ev.Server,
			Recover: ev.Kind == KindRecover,
			Cold:    ev.Cold,
		})
	}
	if cfg.MTBFHours > 0 {
		horizon := horizonHours * 3600
		mtbf := cfg.MTBFHours * 3600
		mttr := cfg.MTTRHours * 3600
		for s := 0; s < numServers; s++ {
			g := rng.New(rng.DeriveSeed(seed, seedLabel, uint64(s)))
			t := 0.0
			for {
				t += g.ExpFloat64() * mtbf
				if t >= horizon {
					break
				}
				out = append(out, Compiled{At: t, Server: s})
				t += g.ExpFloat64() * mttr
				out = append(out, Compiled{At: t, Server: s, Recover: true, Cold: cfg.Cold})
			}
		}
	}
	// Per-server sequences are already ordered; the stable sort merges
	// them deterministically (ties resolved by server id, then original
	// order, so a zero-length downtime keeps fail before recover).
	slices.SortStableFunc(out, func(a, b Compiled) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		return a.Server - b.Server
	})
	return out, nil
}
