package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestValidateBrownoutAndDomains(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		servers int
		ok      bool
	}{
		{"stochastic brownout", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 0.5}, 4, true},
		{"brownout without mttr", Config{BrownoutMTBFHours: 10, BrownoutFraction: 0.5}, 4, false},
		{"brownout without fraction", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1}, 4, false},
		{"brownout fraction zero", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 0}, 4, false},
		{"brownout fraction above one", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 1.5}, 4, false},
		{"brownout fraction nan", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: math.NaN()}, 4, false},
		{"brownout fraction one", Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 1}, 4, true},
		{"stray negative fraction", Config{BrownoutFraction: -0.5}, 4, false},
		{"failures plus brownouts", Config{MTBFHours: 5, MTTRHours: 1,
			BrownoutMTBFHours: 3, BrownoutMTTRHours: 1, BrownoutFraction: 0.5}, 4, true},
		{"domains alone", Config{Domains: [][]int{{0, 1}, {2, 3}}}, 4, true},
		{"empty domain", Config{Domains: [][]int{{0, 1}, {}}}, 4, false},
		{"domain member out of range", Config{Domains: [][]int{{0, 4}}}, 4, false},
		{"domain member negative", Config{Domains: [][]int{{-1}}}, 4, false},
		{"duplicate within domain", Config{Domains: [][]int{{0, 0}}}, 4, false},
		{"duplicate across domains", Config{Domains: [][]int{{0, 1}, {1, 2}}}, 4, false},
		{"domain process", Config{Domains: [][]int{{0, 1}, {2, 3}},
			DomainMTBFHours: 10, DomainMTTRHours: 1}, 4, true},
		{"domain process without domains", Config{DomainMTBFHours: 10, DomainMTTRHours: 1}, 4, false},
		{"domain process without mttr", Config{Domains: [][]int{{0}}, DomainMTBFHours: 10}, 4, false},
		{"domain brownout", Config{Domains: [][]int{{0, 1}},
			DomainMTBFHours: 10, DomainMTTRHours: 1, DomainBrownout: true, DomainFraction: 0.25}, 4, true},
		{"domain brownout without fraction", Config{Domains: [][]int{{0, 1}},
			DomainMTBFHours: 10, DomainMTTRHours: 1, DomainBrownout: true}, 4, false},
		{"domain fraction without brownout", Config{Domains: [][]int{{0, 1}},
			DomainMTBFHours: 10, DomainMTTRHours: 1, DomainFraction: 0.25}, 4, false},
		{"domain process excludes per-server", Config{MTBFHours: 5, MTTRHours: 1,
			Domains: [][]int{{0}}, DomainMTBFHours: 10, DomainMTTRHours: 1}, 4, false},
		{"domain process excludes trace", Config{Domains: [][]int{{0}},
			DomainMTBFHours: 10, DomainMTTRHours: 1,
			Trace: []Event{{AtHours: 1, Server: 1, Kind: KindFail}}}, 4, false},
		{"brownout process excludes trace", Config{
			BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 0.5,
			Trace: []Event{{AtHours: 1, Server: 1, Kind: KindFail}}}, 4, false},

		{"trace brownout pair", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
			{AtHours: 2, Server: 0, Kind: KindRestore},
		}}, 4, true},
		{"trace brownout missing fraction", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout}}}, 4, false},
		{"trace brownout fraction above one", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 2}}}, 4, false},
		{"trace fraction on fail", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindFail, Fraction: 0.5}}}, 4, false},
		{"trace restore while up", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindRestore}}}, 4, false},
		{"trace double brownout", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
			{AtHours: 2, Server: 0, Kind: KindBrownout, Fraction: 0.5},
		}}, 4, false},
		{"trace fail while browned out", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
			{AtHours: 2, Server: 0, Kind: KindFail},
		}}, 4, false},
		{"trace brownout while down", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindFail},
			{AtHours: 2, Server: 0, Kind: KindBrownout, Fraction: 0.5},
		}}, 4, false},
		{"trace recover a brownout", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
			{AtHours: 2, Server: 0, Kind: KindRecover},
		}}, 4, false},
		{"trace cold brownout", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5, Cold: true}}}, 4, false},
		{"trace cold restore", Config{Trace: []Event{
			{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
			{AtHours: 2, Server: 0, Kind: KindRestore, Cold: true},
		}}, 4, false},

		{"trace domain pair", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Domain: 0, Kind: KindDomainFail},
			{AtHours: 2, Domain: 0, Kind: KindDomainRecover, Cold: true},
		}}, 4, true},
		{"trace domain brownout pair", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Domain: 0, Kind: KindDomainBrownout, Fraction: 0.5},
			{AtHours: 2, Domain: 0, Kind: KindDomainRestore},
		}}, 4, true},
		{"trace domain out of range", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Domain: 1, Kind: KindDomainFail}}}, 4, false},
		{"trace domain event with server", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Server: 1, Domain: 0, Kind: KindDomainFail}}}, 4, false},
		{"trace server event with domain", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Server: 2, Domain: 1, Kind: KindFail}}}, 4, false},
		{"trace domain overlaps member fail", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Server: 1, Kind: KindFail},
			{AtHours: 2, Domain: 0, Kind: KindDomainFail},
		}}, 4, false},
		{"trace domain brownout overlaps member fail", Config{Domains: [][]int{{0, 1}}, Trace: []Event{
			{AtHours: 1, Server: 1, Kind: KindFail},
			{AtHours: 2, Domain: 0, Kind: KindDomainBrownout, Fraction: 0.5},
		}}, 4, false},
		{"trace double domain fail", Config{Domains: [][]int{{0}, {1}}, Trace: []Event{
			{AtHours: 1, Domain: 0, Kind: KindDomainFail},
			{AtHours: 2, Domain: 0, Kind: KindDomainFail},
		}}, 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(tc.servers)
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("config %+v validated, want error", tc.cfg)
			}
		})
	}
}

// TestEnabledBrownoutOnlyTrace pins the satellite fix: a trace (or
// stochastic process) containing only brownouts must arm the fault path.
func TestEnabledBrownoutOnlyTrace(t *testing.T) {
	cfg := Config{Trace: []Event{
		{AtHours: 1, Server: 0, Kind: KindBrownout, Fraction: 0.5},
		{AtHours: 2, Server: 0, Kind: KindRestore},
	}}
	if !cfg.Enabled() {
		t.Fatal("brownout-only trace reported disabled")
	}
	if !(Config{BrownoutMTBFHours: 10, BrownoutMTTRHours: 1, BrownoutFraction: 0.5}).Enabled() {
		t.Fatal("stochastic brownout process reported disabled")
	}
	if !(Config{Domains: [][]int{{0}}, DomainMTBFHours: 10, DomainMTTRHours: 1}).Enabled() {
		t.Fatal("stochastic domain process reported disabled")
	}
	if (Config{Domains: [][]int{{0}}}).Enabled() {
		t.Fatal("domains without any process reported enabled")
	}
}

func TestCompileBrownoutTrace(t *testing.T) {
	cfg := Config{Trace: []Event{
		{AtHours: 0.5, Server: 1, Kind: KindBrownout, Fraction: 0.25},
		{AtHours: 1, Server: 1, Kind: KindRestore},
	}}
	evs, err := Compile(cfg, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Compiled{
		{At: 1800, Server: 1, Brownout: true, Fraction: 0.25},
		{At: 3600, Server: 1, Brownout: true, Recover: true},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("compiled %+v, want %+v", evs, want)
	}
}

func TestCompileDomainTrace(t *testing.T) {
	cfg := Config{Domains: [][]int{{2, 0}, {1, 3}}, Trace: []Event{
		{AtHours: 0.5, Domain: 0, Kind: KindDomainFail},
		{AtHours: 1, Domain: 0, Kind: KindDomainRecover, Cold: true},
		{AtHours: 1.5, Domain: 1, Kind: KindDomainBrownout, Fraction: 0.5},
		{AtHours: 2, Domain: 1, Kind: KindDomainRestore},
	}}
	evs, err := Compile(cfg, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Member expansion happens at compile time; the final stable sort
	// orders equal-time events by server id.
	want := []Compiled{
		{At: 1800, Server: 0},
		{At: 1800, Server: 2},
		{At: 3600, Server: 0, Recover: true, Cold: true},
		{At: 3600, Server: 2, Recover: true, Cold: true},
		{At: 5400, Server: 1, Brownout: true, Fraction: 0.5},
		{At: 5400, Server: 3, Brownout: true, Fraction: 0.5},
		{At: 7200, Server: 1, Brownout: true, Recover: true},
		{At: 7200, Server: 3, Brownout: true, Recover: true},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("compiled %+v, want %+v", evs, want)
	}
}

// TestCompileStochasticBrownout checks pairing, fraction stamping, and
// horizon discipline for the per-server brownout process.
func TestCompileStochasticBrownout(t *testing.T) {
	cfg := Config{BrownoutMTBFHours: 5, BrownoutMTTRHours: 0.5, BrownoutFraction: 0.3}
	evs, err := Compile(cfg, 4, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || len(evs)%2 != 0 {
		t.Fatalf("%d events: want a non-empty paired schedule", len(evs))
	}
	dimmed := make(map[int]bool)
	for i, ev := range evs {
		if !ev.Brownout {
			t.Fatalf("event %d is not a brownout: %+v", i, ev)
		}
		if ev.Recover {
			if !dimmed[ev.Server] {
				t.Fatalf("event %d restores server %d while undimmed", i, ev.Server)
			}
			if ev.Fraction != 0 {
				t.Fatalf("event %d: restore carries fraction %g", i, ev.Fraction)
			}
			dimmed[ev.Server] = false
		} else {
			if dimmed[ev.Server] {
				t.Fatalf("event %d dims server %d twice", i, ev.Server)
			}
			if ev.Fraction != 0.3 {
				t.Fatalf("event %d fraction %g, want 0.3", i, ev.Fraction)
			}
			if ev.At >= 100*3600 {
				t.Fatalf("event %d begins at %g past the horizon", i, ev.At)
			}
			dimmed[ev.Server] = true
		}
	}
}

// TestCompileBrownoutOverlapSuppression runs the failure and brownout
// processes together and checks the merged schedule still alternates
// cleanly per server through the up/down/dimmed state machine — i.e.
// every brownout interval overlapping a down interval was dropped.
func TestCompileBrownoutOverlapSuppression(t *testing.T) {
	cfg := Config{
		MTBFHours: 2, MTTRHours: 1,
		BrownoutMTBFHours: 2, BrownoutMTTRHours: 1, BrownoutFraction: 0.5,
	}
	evs, err := Compile(cfg, 6, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sawBrownout, sawFailure bool
	state := make(map[int]uint8)
	for i, ev := range evs {
		var kind string
		switch {
		case ev.Brownout && ev.Recover:
			kind = KindRestore
		case ev.Brownout:
			kind = KindBrownout
			sawBrownout = true
		case ev.Recover:
			kind = KindRecover
		default:
			kind = KindFail
			sawFailure = true
		}
		if err := stepFaultState(state, ev.Server, kind, "server", i); err != nil {
			t.Fatalf("merged schedule breaks alternation: %v (event %+v)", err, ev)
		}
	}
	if !sawBrownout || !sawFailure {
		t.Fatalf("want both processes represented: brownout=%v failure=%v", sawBrownout, sawFailure)
	}
}

// TestCompileStochasticDomain checks that domain events move every
// member together and that domain draws are independent per domain.
func TestCompileStochasticDomain(t *testing.T) {
	cfg := Config{
		Domains:         [][]int{{0, 1}, {2, 3}},
		DomainMTBFHours: 5, DomainMTTRHours: 0.5, Cold: true,
	}
	evs, err := Compile(cfg, 4, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no domain events over 100 h at MTBF 5 h")
	}
	// Group by (At, Recover): each group must be exactly one domain's
	// member set.
	type key struct {
		at      float64
		recover bool
	}
	groups := make(map[key][]int)
	for _, ev := range evs {
		if ev.Brownout {
			t.Fatalf("non-brownout domain process emitted %+v", ev)
		}
		if ev.Recover && !ev.Cold {
			t.Fatalf("Cold config must mark domain recoveries cold: %+v", ev)
		}
		groups[key{ev.At, ev.Recover}] = append(groups[key{ev.At, ev.Recover}], ev.Server)
	}
	for k, members := range groups {
		if !reflect.DeepEqual(members, []int{0, 1}) && !reflect.DeepEqual(members, []int{2, 3}) {
			t.Fatalf("group %+v is not a whole domain: %v", k, members)
		}
	}

	// Adding a domain must not perturb existing domains' draws.
	bigger := cfg
	bigger.Domains = [][]int{{0, 1}, {2, 3}, {4, 5}}
	evs2, err := Compile(bigger, 6, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(in []Compiled) []Compiled {
		var out []Compiled
		for _, ev := range in {
			if ev.Server < 4 {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(evs, filter(evs2)) {
		t.Fatal("adding a domain perturbed existing domains' draws")
	}
}

func TestParseTraceBrownoutAndDomain(t *testing.T) {
	good := []byte(`[
		{"at_hours": 0.5, "server": 1, "kind": "brownout", "fraction": 0.5},
		{"at_hours": 1, "server": 1, "kind": "restore"},
		{"at_hours": 2, "domain": 1, "kind": "domain-fail"},
		{"at_hours": 3, "domain": 1, "kind": "domain-recover", "cold": true}
	]`)
	trace, err := ParseTrace(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 || trace[0].Fraction != 0.5 || trace[2].Domain != 1 {
		t.Fatalf("parsed %+v", trace)
	}

	bad := map[string]string{
		"fraction zero":      `[{"at_hours": 1, "server": 0, "kind": "brownout"}]`,
		"fraction negative":  `[{"at_hours": 1, "server": 0, "kind": "brownout", "fraction": -0.5}]`,
		"fraction over one":  `[{"at_hours": 1, "server": 0, "kind": "brownout", "fraction": 1.5}]`,
		"fraction on fail":   `[{"at_hours": 1, "server": 0, "kind": "fail", "fraction": 0.5}]`,
		"restore first":      `[{"at_hours": 1, "server": 0, "kind": "restore"}]`,
		"negative domain":    `[{"at_hours": 1, "domain": -1, "kind": "domain-fail"}]`,
		"domain with server": `[{"at_hours": 1, "server": 1, "domain": 1, "kind": "domain-fail"}]`,
		"fail during brownout": `[
			{"at_hours": 1, "server": 0, "kind": "brownout", "fraction": 0.5},
			{"at_hours": 2, "server": 0, "kind": "fail"}]`,
	}
	for name, in := range bad {
		if _, err := ParseTrace([]byte(in)); err == nil {
			t.Errorf("%s: ParseTrace accepted %q", name, in)
		}
	}
}
