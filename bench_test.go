// Benchmarks: one per paper table/figure (regenerating a scaled-down
// version of each experiment) plus micro-benchmarks of the simulator's
// hot paths. Run with
//
//	go test -bench=. -benchmem
//
// The figure benchmarks use a reduced horizon (2 simulated hours, one
// trial, three θ points) so the suite completes in minutes; the shapes
// they exercise are the same ones cmd/paperfigs reproduces at full
// scale.
package semicont_test

import (
	"testing"

	"semicont"
	"semicont/internal/experiments"
	"semicont/internal/sweep"
)

func benchOpts() experiments.Options {
	return experiments.Options{
		HorizonHours: 2,
		Trials:       1,
		Seed:         1,
		Thetas:       []float64{-1, 0, 1},
	}
}

func runExperiment(b *testing.B, f func(experiments.Options) (*experiments.Output, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := f(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table/figure ---

func BenchmarkTableFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableFig3()
	}
}

func BenchmarkTableFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableFig6()
	}
}

func BenchmarkFig4Small(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig4(semicont.SmallSystem(), o)
	})
}

func BenchmarkFig4Large(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig4(semicont.LargeSystem(), o)
	})
}

func BenchmarkFig5Small(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig5(semicont.SmallSystem(), o)
	})
}

func BenchmarkFig5Large(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig5(semicont.LargeSystem(), o)
	})
}

func BenchmarkFig7Small(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig7(semicont.SmallSystem(), o)
	})
}

func BenchmarkFig7Large(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Fig7(semicont.LargeSystem(), o)
	})
}

func BenchmarkStagingSweep(b *testing.B) {
	runExperiment(b, experiments.StagingSweep)
}

func BenchmarkSVBR(b *testing.B) {
	runExperiment(b, experiments.SVBR)
}

func BenchmarkHeterogeneity(b *testing.B) {
	runExperiment(b, experiments.Heterogeneity)
}

func BenchmarkPartialPredictive(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.PartialPredictive(semicont.SmallSystem(), o)
	})
}

func BenchmarkChainLength(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.ChainLength(semicont.SmallSystem(), o)
	})
}

func BenchmarkSwitchDelay(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.SwitchDelay(semicont.SmallSystem(), o)
	})
}

func BenchmarkFailover(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Failover(semicont.SmallSystem(), o)
	})
}

func BenchmarkFaultSweep(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.FaultSweep(semicont.SmallSystem(), o)
	})
}

// --- simulator throughput benchmarks ---

// BenchmarkEngineSmallSystem measures end-to-end simulation throughput
// on the paper's small system under the full P4 policy; the reported
// time is per simulated hour of cluster operation.
func BenchmarkEngineSmallSystem(b *testing.B) {
	sc := semicont.Scenario{
		System:       semicont.SmallSystem(),
		Policy:       semicont.PolicyP4(),
		Theta:        0.271,
		HorizonHours: 10,
		Seed:         1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := semicont.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLargeSystem is the same for the 20-server system.
func BenchmarkEngineLargeSystem(b *testing.B) {
	sc := semicont.Scenario{
		System:       semicont.LargeSystem(),
		Policy:       semicont.PolicyP4(),
		Theta:        0.271,
		HorizonHours: 5,
		Seed:         1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := semicont.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineNoStaging isolates the continuous-transmission
// baseline (P1), the cheapest configuration.
func BenchmarkEngineNoStaging(b *testing.B) {
	sc := semicont.Scenario{
		System:       semicont.SmallSystem(),
		Policy:       semicont.PolicyP1(),
		Theta:        0.271,
		HorizonHours: 10,
		Seed:         1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc.Seed = uint64(i + 1)
		if _, err := semicont.Run(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplication(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Replication(semicont.SmallSystem(), o)
	})
}

func BenchmarkIntermittent(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Intermittent(semicont.SmallSystem(), o)
	})
}

func BenchmarkClientMix(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.ClientMix(semicont.SmallSystem(), o)
	})
}

func BenchmarkInteractivity(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Interactivity(semicont.SmallSystem(), o)
	})
}

func BenchmarkClusterAnalysis(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.ClusterAnalysis(semicont.SmallSystem(), o)
	})
}

func BenchmarkSpareDisciplines(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.SpareDisciplines(semicont.SmallSystem(), o)
	})
}

func BenchmarkPatching(b *testing.B) {
	runExperiment(b, func(o experiments.Options) (*experiments.Output, error) {
		return experiments.Patching(semicont.SmallSystem(), o)
	})
}

// --- sweep throughput benchmarks ---

// benchSweepSmall runs the small-system fault sweep (5 allocators × 5
// MTBF points × 2 trials = 50 cell×trial jobs) on a pool of the given
// width. This is the headline sweep-throughput benchmark: the serial
// and parallel variants below differ only in pool size, so their ratio
// is the wall-clock speedup of the flattened scheduler on this host.
func benchSweepSmall(b *testing.B, workers int) {
	b.Helper()
	pool := sweep.New(workers)
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		o.Trials = 2
		o.Pool = pool
		if _, err := experiments.FaultSweep(semicont.SmallSystem(), o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSmallSerial(b *testing.B)   { benchSweepSmall(b, 1) }
func BenchmarkSweepSmallParallel(b *testing.B) { benchSweepSmall(b, 0) }
