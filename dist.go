package semicont

import (
	"fmt"

	"semicont/internal/core"
	"semicont/internal/stats"
)

// DistStats carries the streaming distribution sketches of one run —
// or, after Merge, of several trials. Each field is a deterministic
// quantile sketch (see internal/stats.Sketch) over one per-request
// observation channel; memory is O(observed value range), independent
// of request count, which is what lets 10^7-request trials run in
// bounded memory.
type DistStats struct {
	// Wait is the admission wait in seconds: 0 for requests admitted on
	// arrival, the queueing delay for retry-queue admissions.
	Wait stats.Sketch
	// RetrySojourn is the time rejected arrivals spent in the retry
	// queue, whether the episode ended in admission or reneging.
	RetrySojourn stats.Sketch
	// Glitch is the viewer-visible interruption in seconds: unplayed
	// remainder for degraded-mode drops, catch-up deficit for
	// intermittent underruns.
	Glitch stats.Sketch
	// Migrations is the per-stream lifetime migration count, observed
	// when a stream leaves the cluster.
	Migrations stats.Sketch
	// Park is the time streams spent in degraded-mode playback.
	Park stats.Sketch
	// EdgeWait is the admission wait of edge-hit requests only — the
	// subset of Wait whose prefix an edge node served. Empty unless the
	// edge tier is enabled.
	EdgeWait stats.Sketch
}

// bind attaches the sketches to the engine's observation channels.
func (d *DistStats) bind(eng *core.Engine) {
	eng.SetAccumulator(core.ObsWait, &d.Wait)
	eng.SetAccumulator(core.ObsRetrySojourn, &d.RetrySojourn)
	eng.SetAccumulator(core.ObsGlitch, &d.Glitch)
	eng.SetAccumulator(core.ObsMigrations, &d.Migrations)
	eng.SetAccumulator(core.ObsPark, &d.Park)
	eng.SetAccumulator(core.ObsEdgeWait, &d.EdgeWait)
}

// Merge folds o's sketches into d. Sketch merging is bit-for-bit
// commutative and associative, so any merge order over the same trials
// yields an identical aggregate; Summarize merges in trial-submission
// order regardless of worker scheduling.
func (d *DistStats) Merge(o *DistStats) {
	if o == nil {
		return
	}
	d.Wait.Merge(&o.Wait)
	d.RetrySojourn.Merge(&o.RetrySojourn)
	d.Glitch.Merge(&o.Glitch)
	d.Migrations.Merge(&o.Migrations)
	d.Park.Merge(&o.Park)
	d.EdgeWait.Merge(&o.EdgeWait)
}

// Equal reports bit-for-bit equality of every sketch. Determinism tests
// use it: Result values carrying *DistStats cannot be compared with ==
// (that would compare pointer identity).
func (d *DistStats) Equal(o *DistStats) bool {
	if d == nil || o == nil {
		return d == o
	}
	return d.Wait.Equal(&o.Wait) &&
		d.RetrySojourn.Equal(&o.RetrySojourn) &&
		d.Glitch.Equal(&o.Glitch) &&
		d.Migrations.Equal(&o.Migrations) &&
		d.Park.Equal(&o.Park) &&
		d.EdgeWait.Equal(&o.EdgeWait)
}

// Channels returns the sketches with their report labels, in a fixed
// order, for CLIs and tables.
func (d *DistStats) Channels() []struct {
	Name   string
	Sketch *stats.Sketch
} {
	return []struct {
		Name   string
		Sketch *stats.Sketch
	}{
		{"wait", &d.Wait},
		{"retry sojourn", &d.RetrySojourn},
		{"glitch", &d.Glitch},
		{"migrations", &d.Migrations},
		{"degraded park", &d.Park},
		{"edge wait", &d.EdgeWait},
	}
}

// String renders one line per non-empty channel.
func (d *DistStats) String() string {
	out := ""
	for _, c := range d.Channels() {
		if c.Sketch.N() == 0 {
			continue
		}
		q := c.Sketch.Summary()
		out += fmt.Sprintf("%-14s n=%d p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			c.Name, c.Sketch.N(), q.P50, q.P95, q.P99, c.Sketch.Max())
	}
	if out == "" {
		return "(no observations)\n"
	}
	return out
}
