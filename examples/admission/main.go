// Admission: the same overloaded cluster run under every registered
// admission selector, plus both DRM planners, to show the controller
// seam in action.
//
// The paper's controller (Section 3.2) assigns each arrival to the
// least-loaded replica holder. That rule is now one entry in a registry:
// Policy.Selector names the admission policy and Policy.Planner names
// the migration planner, so alternatives can be compared without
// touching the engine. At high load the selector decides which servers
// saturate first, which shows up directly in the rejection ratio.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"semicont"
)

func main() {
	system := semicont.SmallSystem()

	fmt.Println("Admission drill: 5-server cluster at 120% offered load, theta = 0.271")
	fmt.Println()

	// Every registered selector under the same seed and workload. The
	// selector only picks among feasible holders, so differences are
	// pure placement quality, not capacity.
	fmt.Printf("%-18s  %-12s  %-10s\n", "selector", "utilization", "rejected")
	for _, sel := range semicont.SelectorNames() {
		res, err := semicont.Run(semicont.Scenario{
			System: system,
			Policy: semicont.Policy{
				Name:      sel,
				Placement: semicont.EvenPlacement,
				Selector:  sel,
			},
			Theta:        0.271,
			LoadFactor:   1.2,
			HorizonHours: 60,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %.4f        %5.2f%%\n",
			sel, res.Utilization, 100*res.RejectionRatio)
	}

	// The planner seam: same selector, DRM enabled with chains of up to
	// three moves, planned either by the default DFS chain search or by
	// the single-move planner.
	fmt.Println()
	fmt.Printf("%-18s  %-10s  %-12s  %s\n", "planner", "rejected", "via DRM", "max chain")
	for _, pl := range semicont.PlannerNames() {
		res, err := semicont.Run(semicont.Scenario{
			System: system,
			Policy: semicont.Policy{
				Name:      pl,
				Placement: semicont.EvenPlacement,
				Migration: true,
				MaxChain:  3,
				Planner:   pl,
			},
			Theta:        0.271,
			LoadFactor:   1.2,
			HorizonHours: 60,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %5.2f%%     %-12d  %d\n",
			pl, 100*res.RejectionRatio, res.AdmissionsViaDRM, res.MaxChainUsed)
	}

	fmt.Println()
	fmt.Println("least-loaded spreads streams evenly and rejects least; first-fit piles")
	fmt.Println("onto the early servers and pays for it. The chain planner turns more")
	fmt.Println("full-cluster arrivals into migrations than single moves alone can.")
}
