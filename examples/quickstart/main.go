// Quickstart: run one simulation of the paper's small system under
// policy P4 (even placement + dynamic request migration + 20% client
// staging) and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semicont"
)

func main() {
	sc := semicont.Scenario{
		System:       semicont.SmallSystem(), // 5 servers × 100 Mb/s, 10–30 min clips
		Policy:       semicont.PolicyP4(),    // even placement + DRM + 20% staging
		Theta:        0.271,                  // Zipf skew from prior VoD studies
		HorizonHours: 100,                    // arrivals for 100 simulated hours
		Seed:         1,
	}

	res, err := semicont.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster:        %d servers × %g Mb/s (SVBR %.0f)\n",
		sc.System.NumServers, sc.System.ServerBandwidth, sc.System.SVBR())
	fmt.Printf("offered:        %d requests at %.3f req/s (load = capacity)\n",
		res.Arrivals, res.ArrivalRate)
	fmt.Printf("utilization:    %.2f%%\n", 100*res.Utilization)
	fmt.Printf("rejected:       %.2f%% of requests\n", 100*res.RejectionRatio)
	fmt.Printf("DRM:            %d streams migrated to admit %d extra requests\n",
		res.Migrations, res.AdmissionsViaDRM)
	fmt.Printf("client buffers: %.0f Mb (20%% of the average object)\n", res.StagingBufferMb)

	// Compare against doing nothing (P1): same workload, no staging, no
	// migration.
	sc.Policy = semicont.PolicyP1()
	base, err := semicont.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout staging+DRM (P1): %.2f%% utilization — semi-continuous "+
		"transmission recovers %.1f points\n",
		100*base.Utilization, 100*(res.Utilization-base.Utilization))
}
