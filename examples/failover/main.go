// Failover: dynamic request migration as a fault-tolerance mechanism
// (Section 3.1: "the ability to dynamically switch servers for a single
// stream can help deal with node server failures").
//
// A server dies mid-run. Without DRM every stream it carried is lost;
// with DRM the controller re-homes streams onto other replica holders
// with spare slots. The example also attaches an event-trace recorder
// (the library's Observer hook) to show exactly which streams were
// rescued where.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"semicont"
	"semicont/internal/trace"
)

func main() {
	system := semicont.SmallSystem()

	fmt.Println("Failure drill: server 2 of the small system dies at t = 30 h")
	fmt.Println("(offered load 80% of capacity so survivors have headroom)")
	fmt.Println()

	for _, pol := range []semicont.Policy{
		{Name: "no-DRM", Placement: semicont.EvenPlacement},
		{Name: "DRM", Placement: semicont.EvenPlacement, Migration: true},
	} {
		rec := &trace.Recorder{CountsOnly: true}
		res, err := semicont.Run(semicont.Scenario{
			System:       system,
			Policy:       pol,
			Theta:        0.271,
			HorizonHours: 60,
			LoadFactor:   0.8,
			Seed:         3,
			FailServer:   2,
			FailAtHours:  30,
			Observer:     rec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s utilization %.4f | %3d streams rescued, %3d dropped mid-play\n",
			pol.Name, res.Utilization, res.RescuedStreams, res.DroppedStreams)
	}

	// Re-run the DRM case with full tracing to show the rescue detail.
	rec := &trace.Recorder{}
	if _, err := semicont.Run(semicont.Scenario{
		System:       system,
		Policy:       semicont.Policy{Name: "DRM", Placement: semicont.EvenPlacement, Migration: true},
		Theta:        0.271,
		HorizonHours: 60,
		LoadFactor:   0.8,
		Seed:         3,
		FailServer:   2,
		FailAtHours:  30,
		Observer:     rec,
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrescue trace (first 10 migrations off the failed server):")
	shown := 0
	for _, ev := range rec.Events {
		if ev.Kind == trace.Migrate && ev.Rescue {
			fmt.Printf("  t=%8.1fs  stream %5d (video %3d): server %d -> %d\n",
				ev.Time, ev.Request, ev.Video, ev.From, ev.To)
			shown++
			if shown == 10 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (no rescues occurred — try a different seed)")
	}
}
