// Hotspot: a surprise hit overwhelms a popularity-oblivious placement,
// and the operator compares the paper's dynamic request migration with
// the "more resource intensive" alternative it names in Section 3.1 —
// dynamic replication — and with the analytical Erlang bracket.
//
// Demand is extremely skewed (θ = −1: the top title draws ~45% of all
// requests) while the cluster still holds just ~2.2 copies of each
// video. Migration cannot help (the hot title's holders are full of
// hot-title streams); replication creates the missing copies on the
// fly, paying with copy bandwidth.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"semicont"
)

func main() {
	system := semicont.SmallSystem()
	const theta = -1.0

	fmt.Println("Hotspot drill: 5-server cluster, surprise hit (theta = -1), even placement")
	fmt.Println()

	// What does queueing theory predict for the naive configuration?
	analysis, err := semicont.Analyze(semicont.Scenario{
		System: system, Policy: semicont.PolicyP1(), Theta: theta,
		HorizonHours: 1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Erlang estimates:   no-sharing %.3f ≤ util ≤ complete-sharing %.3f\n\n",
		analysis.NoSharing, analysis.CompleteSharing)

	fmt.Printf("%-22s  %-12s  %-10s  %-14s  %s\n",
		"policy", "utilization", "rejected", "migrations", "replicas (GB copied)")
	for _, pol := range []semicont.Policy{
		{Name: "even only", Placement: semicont.EvenPlacement},
		{Name: "+DRM", Placement: semicont.EvenPlacement, Migration: true},
		{Name: "+replication", Placement: semicont.EvenPlacement, Replicate: true},
		{Name: "+DRM+replication", Placement: semicont.EvenPlacement, Migration: true, Replicate: true},
		semicont.PolicyP8(), // what perfect prediction would have bought
	} {
		res, err := semicont.Run(semicont.Scenario{
			System:       system,
			Policy:       pol,
			Theta:        theta,
			HorizonHours: 60,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(err)
		}
		repl := "-"
		if pol.Replicate {
			repl = fmt.Sprintf("%d (%.0f GB)", res.ReplicationsCompleted, res.ReplicatedMb/8000)
		}
		fmt.Printf("%-22s  %.4f        %5.2f%%     %-14d  %s\n",
			pol.Name, res.Utilization, 100*res.RejectionRatio, res.Migrations, repl)
	}

	fmt.Println()
	fmt.Println("Migration alone cannot fix a placement that simply lacks copies of the")
	fmt.Println("hit; dynamic replication rebuilds the placement online and closes most")
	fmt.Println("of the gap to the perfectly predicted layout (P8).")
}
