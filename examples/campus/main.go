// Campus: capacity planning for a small-enterprise video service (the
// paper's intro motivates "less than a dozen servers for small
// enterprise intranets").
//
// A campus serves 10–30 minute lecture clips from a handful of servers.
// The question a deployer asks: how much demand skew can the cheap,
// popularity-oblivious configuration (even placement) tolerate before
// replica planning becomes necessary — and how much do client-side
// staging buffers and request migration buy?
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"

	"semicont"
)

func main() {
	system := semicont.SmallSystem()
	system.Name = "campus"

	fmt.Println("Campus VoD: 5 servers × 100 Mb/s, 100 clips of 10-30 min, offered load = capacity")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-22s  %-22s\n", "", "naive (P1)", "+staging+DRM (P4)", "perfect predict (P8)")
	fmt.Printf("%-10s  %-22s  %-22s  %-22s\n", "demand", "util    rejected", "util    rejected", "util    rejected")

	// Sweep demand skew from uniform (θ=1) to severely skewed (θ=-1.5).
	for _, d := range []struct {
		label string
		theta float64
	}{
		{"uniform", 1.0},
		{"mild", 0.5},
		{"zipf", 0.0},
		{"heavy", -0.75},
		{"extreme", -1.5},
	} {
		row := fmt.Sprintf("%-10s", d.label)
		for _, pol := range []semicont.Policy{semicont.PolicyP1(), semicont.PolicyP4(), semicont.PolicyP8()} {
			agg, err := semicont.RunTrials(semicont.Scenario{
				System:       system,
				Policy:       pol,
				Theta:        d.theta,
				HorizonHours: 60,
				Seed:         7,
			}, 3)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %-22s", fmt.Sprintf("%.3f   %5.2f%%",
				agg.Utilization.Mean(), 100*agg.Rejection.Mean()))
		}
		fmt.Println(row)
	}

	fmt.Println()
	fmt.Println("Reading the table: with staging + migration (P4) the oblivious even")
	fmt.Println("placement holds near-maximum utilization for any realistic skew; only")
	fmt.Println("under extreme skew does replica prediction (P8) still matter — the")
	fmt.Println("paper's conclusion that placement can usually ignore popularity.")
}
