// Megaplex: sizing client staging buffers for a movie service (the
// paper's large system — 20 servers × 300 Mb/s streaming 1–2 hour
// features).
//
// Client set-top boxes have disks; how much of one should the service
// reserve for workahead staging? This example sweeps the staging
// fraction and prints utilization alongside the actual buffer size in
// megabytes, reproducing the paper's "20% is near optimal" knee on a
// deployment-shaped question.
//
//	go run ./examples/megaplex
package main

import (
	"fmt"
	"log"

	"semicont"
)

func main() {
	system := semicont.LargeSystem()
	system.Name = "megaplex"

	fmt.Println("Megaplex VoD: 20 servers × 300 Mb/s, 1-2 h features, 30 Mb/s client links")
	fmt.Println("Demand: Zipf theta = 0.271 (typical movie popularity), offered load = capacity")
	fmt.Println()
	fmt.Printf("%-18s  %-14s  %-12s  %s\n", "staging fraction", "client buffer", "utilization", "rejected")

	var prev float64
	for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.4, 1.0} {
		agg, err := semicont.RunTrials(semicont.Scenario{
			System: system,
			Policy: semicont.Policy{
				Name:        fmt.Sprintf("stage-%g", frac),
				Placement:   semicont.EvenPlacement,
				Migration:   true,
				StagingFrac: frac,
				ReceiveCap:  semicont.DefaultReceiveCap,
			},
			Theta:        0.271,
			HorizonHours: 60,
			Seed:         11,
		}, 3)
		if err != nil {
			log.Fatal(err)
		}
		bufMb := agg.Results[0].StagingBufferMb
		util := agg.Utilization.Mean()
		delta := ""
		if frac > 0 {
			delta = fmt.Sprintf("  (%+.2f pts)", 100*(util-prev))
		}
		fmt.Printf("%-18s  %8.0f Mb    %.4f      %5.2f%%%s\n",
			fmt.Sprintf("%.0f%% of object", 100*frac), bufMb, util,
			100*agg.Rejection.Mean(), delta)
		prev = util
	}

	fmt.Println()
	fmt.Println("The marginal gain collapses past ~20%: reserving a fifth of an average")
	fmt.Println("object (~3 GB of set-top disk here) buys nearly all of the benefit of")
	fmt.Println("buffering whole movies.")
}
