package semicont

import (
	"fmt"
	"testing"
)

// shardCounts is the determinism matrix ISSUE 9 pins: 1 exercises the
// serial fallback, 2 and 4 partition the small system's five servers
// unevenly, and 8 exceeds the server count so the cap-at-NumServers
// rule rides the suite too.
var shardCounts = []int{1, 2, 4, 8}

// TestShardDeterminism runs every golden cell at every shard count and
// demands the checked-in serial fixture bit-for-bit. The audited cells
// pin the lockstep (merged serial order) path; the bare cells pin the
// parallel window/commit path — both against results captured from the
// pre-shard engine.
func TestShardDeterminism(t *testing.T) {
	fixtures := goldenFixtureMap(t)
	for _, shards := range shardCounts {
		for _, cell := range goldenMatrix() {
			sc := cell.Sc
			sc.Shards = shards
			res, err := Run(sc)
			if err != nil {
				t.Fatalf("%s@shards=%d: %v", cell.Name, shards, err)
			}
			want, ok := fixtures[cell.Name]
			if !ok {
				t.Fatalf("%s: no fixture", cell.Name)
			}
			matchGolden(t, fmt.Sprintf("%s@shards=%d", cell.Name, shards), *res, want)
		}
	}
}

// TestShardDeterminismStats covers the one result surface the fixtures
// cannot (Dist is deliberately excluded from == comparison): a Stats
// run's quantile sketches must also be bit-identical at every shard
// count. Parallel windows observe migrations and glitches into
// per-shard sketches merged at end of run, so this pins that merge
// against the serial accumulation order.
func TestShardDeterminismStats(t *testing.T) {
	base := goldenMatrix()[5].Sc // drm-hops1: migrations populate the sketch
	base.Stats = true
	serial, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Dist == nil || serial.Dist.Migrations.N() == 0 {
		t.Fatal("baseline run recorded no migration observations; the test would pin nothing")
	}
	for _, shards := range shardCounts {
		sc := base
		sc.Shards = shards
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, want := *res, *serial
		got.Dist, want.Dist = nil, nil
		matchGolden(t, fmt.Sprintf("stats@shards=%d", shards), got, want)
		if !res.Dist.Equal(serial.Dist) {
			t.Errorf("shards=%d: distribution sketches diverged from serial:\n got %vwant %v", shards, res.Dist, serial.Dist)
		}
	}
}
