package semicont

import (
	"reflect"
	"runtime"
	"testing"

	"semicont/internal/faults"
)

// TestRunTrialsDeterministicAcrossGOMAXPROCS pins the parallel-trial
// contract: RunTrials farms trials out to GOMAXPROCS workers over an
// unordered channel, so the only thing keeping results reproducible is
// that each trial derives its seed from its index and writes its result
// by index. Run the same aggregate serially and with 8 workers and
// demand bit-identical results — any hidden shared state (a global RNG,
// an append instead of an indexed store) shows up here.
func TestRunTrialsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := quickScenario()
	sc.HorizonHours = 2
	run := func(procs int) *Aggregate {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		agg, err := RunTrials(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial.Results {
		if *serial.Results[i] != *parallel.Results[i] {
			t.Errorf("trial %d diverged across GOMAXPROCS:\nserial   %+v\nparallel %+v",
				i, serial.Results[i], parallel.Results[i])
		}
	}
	// Aggregate samples accumulate in index order, so they must match
	// exactly too (stats.Sample has unexported fields; DeepEqual covers
	// them all).
	if !reflect.DeepEqual(serial.Utilization, parallel.Utilization) {
		t.Error("utilization sample diverged across GOMAXPROCS")
	}
	if !reflect.DeepEqual(serial.Rejection, parallel.Rejection) {
		t.Error("rejection sample diverged across GOMAXPROCS")
	}
	if !reflect.DeepEqual(serial.Migrations, parallel.Migrations) {
		t.Error("migration sample diverged across GOMAXPROCS")
	}
}

// TestFaultRunDeterministicAcrossGOMAXPROCS pins the stochastic fault
// process to the determinism contract: every failure/recovery variate is
// drawn per-server from a split RNG stream and compiled into the event
// schedule before the run starts, so the trial fan-out must not perturb
// it. Fault-heavy trials with retry and degraded playback enabled must be
// bit-identical serially and with 8 workers.
func TestFaultRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := quickScenario()
	sc.HorizonHours = 2
	sc.Policy.Migration, sc.Policy.MaxHops, sc.Policy.MaxChain = true, 2, 1
	sc.Policy.RetryQueue = true
	sc.Policy.DegradedPlayback = true
	sc.Faults = faults.Config{MTBFHours: 0.5, MTTRHours: 0.1}
	run := func(procs int) *Aggregate {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		agg, err := RunTrials(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	serial := run(1)
	parallel := run(8)
	churn := int64(0)
	for i := range serial.Results {
		if *serial.Results[i] != *parallel.Results[i] {
			t.Errorf("fault trial %d diverged across GOMAXPROCS:\nserial   %+v\nparallel %+v",
				i, serial.Results[i], parallel.Results[i])
		}
		churn += serial.Results[i].Failures
	}
	if churn == 0 {
		t.Error("fault process injected no failures — the scenario is not exercising the schedule")
	}
}

// TestSelectorsDeterministicAcrossGOMAXPROCS extends the parallel-trial
// contract to every registered admission selector, random-feasible
// included: its RNG derives from SelectorSeed (itself split from the
// scenario seed), so the trial fan-out must not perturb the choice
// stream. Each selector runs with DRM on so the planner seam is crossed
// too, serially and with 8 workers, and must be bit-identical.
func TestSelectorsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	for _, sel := range SelectorNames() {
		sc := quickScenario()
		sc.HorizonHours = 2
		sc.Policy.Selector = sel
		sc.Policy.Migration, sc.Policy.MaxHops, sc.Policy.MaxChain = true, 2, 2
		run := func(procs int) *Aggregate {
			t.Helper()
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			agg, err := RunTrials(sc, 4)
			if err != nil {
				t.Fatal(err)
			}
			return agg
		}
		serial := run(1)
		parallel := run(8)
		for i := range serial.Results {
			if *serial.Results[i] != *parallel.Results[i] {
				t.Errorf("selector %s trial %d diverged across GOMAXPROCS:\nserial   %+v\nparallel %+v",
					sel, i, serial.Results[i], parallel.Results[i])
			}
		}
	}
}

// TestOverloadRunDeterministicAcrossGOMAXPROCS pins the overload layer
// to the determinism contract: the per-arrival class draw comes from a
// split stream (ClassSeed), the shed controller reads only engine
// state, the flash crowd rides the thinned arrival stream, and the
// brownout schedule compiles before the run — none of which may feel
// the trial fan-out. Fault-churn trials with two classes, shedding, and
// a 2× flash crowd must be bit-identical serially and with 8 workers,
// per-class counters included (Result compares with ==, so the class
// arrays are covered).
func TestOverloadRunDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := quickScenario()
	sc.HorizonHours = 2
	sc.LoadFactor = 1.0
	sc.Policy.Migration, sc.Policy.MaxHops, sc.Policy.MaxChain = true, 2, 1
	sc.Policy.RetryQueue = true
	sc.Policy.DegradedPlayback = true
	sc.Policy.Classes = []TrafficClass{
		{Name: "premium", Share: 1, RetryPatienceSec: 600},
		{Name: "standard", Share: 3},
	}
	sc.Policy.ShedWatermark = 0.7
	sc.Faults = faults.Config{
		MTBFHours: 1, MTTRHours: 0.2,
		BrownoutMTBFHours: 1, BrownoutMTTRHours: 0.2, BrownoutFraction: 0.5,
	}
	sc.Curve.FlashAt = 1800
	sc.Curve.FlashDuration = 3600
	sc.Curve.FlashFactor = 2
	run := func(procs int) *Aggregate {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		agg, err := RunTrials(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	serial := run(1)
	parallel := run(8)
	var classed, shed int64
	for i := range serial.Results {
		if *serial.Results[i] != *parallel.Results[i] {
			t.Errorf("overload trial %d diverged across GOMAXPROCS:\nserial   %+v\nparallel %+v",
				i, serial.Results[i], parallel.Results[i])
		}
		for c := range serial.Results[i].ClassArrivals {
			classed += serial.Results[i].ClassArrivals[c]
			shed += serial.Results[i].ClassShed[c]
		}
	}
	if classed == 0 {
		t.Error("no arrivals drew a traffic class — the class seam is not exercised")
	}
	if shed == 0 {
		t.Error("shed controller never fired — the scenario is not exercising overload")
	}
}

// TestAuditedRunDeterministic extends the plain Run determinism check to
// audited runs: the auditor keeps per-run state (replica maps, event
// counters), and two runs of the same audited scenario must still agree
// on every result field, AuditedEvents included.
func TestAuditedRunDeterministic(t *testing.T) {
	sc := quickScenario()
	sc.HorizonHours = 2
	sc.Audit = true
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical audited scenarios diverged:\n%+v\n%+v", a, b)
	}
	if a.AuditedEvents == 0 {
		t.Error("audited run recorded no events")
	}
}
