package semicont

import "testing"

func TestPaperPolicies(t *testing.T) {
	ps := PaperPolicies()
	if len(ps) != 8 {
		t.Fatalf("%d policies, want 8", len(ps))
	}
	// Figure 6's matrix: P1–P4 even, P5–P8 predictive; migration on
	// P3, P4, P7, P8; 20% staging on the even-numbered policies.
	for i, p := range ps {
		wantName := string(rune('P')) + string(rune('1'+i))
		if p.Name != wantName {
			t.Errorf("policy %d named %q, want %q", i, p.Name, wantName)
		}
		wantPred := i >= 4
		if (p.Placement == PredictivePlacement) != wantPred {
			t.Errorf("%s placement = %v", p.Name, p.Placement)
		}
		wantMigr := i%4 >= 2
		if p.Migration != wantMigr {
			t.Errorf("%s migration = %v, want %v", p.Name, p.Migration, wantMigr)
		}
		wantStage := i%2 == 1
		if (p.StagingFrac == 0.2) != wantStage || (wantStage == (p.StagingFrac == 0)) {
			t.Errorf("%s staging = %v", p.Name, p.StagingFrac)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{Migration: true}
	if p.maxHops() != 1 {
		t.Errorf("default maxHops = %d, want 1", p.maxHops())
	}
	if p.maxChain() != 1 {
		t.Errorf("default maxChain = %d, want 1", p.maxChain())
	}
	if p.receiveCap() != DefaultReceiveCap {
		t.Errorf("default receiveCap = %v", p.receiveCap())
	}
	p.MaxHops = UnlimitedHops
	if p.maxHops() != UnlimitedHops {
		t.Errorf("unlimited hops = %d", p.maxHops())
	}
	p.ReceiveCap = -1
	if p.receiveCap() != 0 {
		t.Errorf("unlimited receive = %v", p.receiveCap())
	}
	p.ReceiveCap = 45
	if p.receiveCap() != 45 {
		t.Errorf("explicit receive = %v", p.receiveCap())
	}
}

func TestPolicyValidate(t *testing.T) {
	cases := []Policy{
		{Placement: PlacementKind(9)},
		{StagingFrac: -0.1},
		{SwitchDelay: -1},
		{Migration: true, MaxHops: -5},
		{Migration: true, MaxChain: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestPlacementKindString(t *testing.T) {
	if EvenPlacement.String() != "even" ||
		PredictivePlacement.String() != "predictive" ||
		PartialPredictivePlacement.String() != "partial-predictive" {
		t.Error("placement names wrong")
	}
	if PlacementKind(42).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestSpareKind(t *testing.T) {
	if EFTFSpare.String() != "eftf" || LFTFSpare.String() != "lftf" || EvenSplitSpare.String() != "even-split" {
		t.Error("spare kind names wrong")
	}
	if SpareKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
	bad := Policy{Spare: SpareKind(9)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown spare kind accepted")
	}
	ok := Policy{StagingFrac: 0.2, Spare: LFTFSpare}
	if err := ok.Validate(); err != nil {
		t.Errorf("LFTF policy rejected: %v", err)
	}
}
