module semicont

go 1.22
