package semicont

import (
	"encoding/json"
	"os"
	"testing"
)

// Shared golden-fixture plumbing: TestGoldenEquivalence pins the serial
// engine to the checked-in results, and the shard-determinism suite
// pins the sharded engine to the very same bytes, so the two suites
// must load and compare fixtures identically.

const goldenEquivPath = "testdata/golden_equiv.json"

type goldenEntry struct {
	Name   string
	Result Result
}

// loadGoldenFixtures reads and decodes the checked-in fixture file.
// JSON float encoding uses the shortest round-trippable representation,
// so decoded fixtures compare exactly with ==.
func loadGoldenFixtures(t testing.TB) []goldenEntry {
	t.Helper()
	data, err := os.ReadFile(goldenEquivPath)
	if err != nil {
		t.Fatalf("read fixtures (run with -update-golden to create): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// goldenFixtureMap indexes the fixtures by cell name.
func goldenFixtureMap(t testing.TB) map[string]Result {
	t.Helper()
	entries := loadGoldenFixtures(t)
	m := make(map[string]Result, len(entries))
	for _, e := range entries {
		m[e.Name] = e.Result
	}
	return m
}

// matchGolden demands that a run's Result equals its fixture
// bit-for-bit; label names the run in the failure (cell name, plus the
// shard count in the determinism suite).
func matchGolden(t testing.TB, label string, got, want Result) {
	t.Helper()
	if got != want {
		t.Errorf("%s: result diverged from fixture\n got %+v\nwant %+v", label, got, want)
	}
}
