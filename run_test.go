package semicont

import (
	"testing"

	"semicont/internal/trace"
)

func quickScenario() Scenario {
	return Scenario{
		System:       SmallSystem(),
		Policy:       PolicyP4(),
		Theta:        0.271,
		HorizonHours: 5,
		Seed:         1,
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := quickScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"bad system", func(s *Scenario) { s.System.NumServers = 0 }},
		{"bad policy", func(s *Scenario) { s.Policy.StagingFrac = -1 }},
		{"zero horizon", func(s *Scenario) { s.HorizonHours = 0 }},
		{"negative load", func(s *Scenario) { s.LoadFactor = -1 }},
		{"bad fail server", func(s *Scenario) { s.FailAtHours = 1; s.FailServer = 99 }},
	}
	for _, tc := range cases {
		sc := quickScenario()
		tc.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRunBasics(t *testing.T) {
	sc := quickScenario()
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0.5 || res.Utilization > 1.1 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	if res.Arrivals != res.Accepted+res.Rejected {
		t.Errorf("arrival accounting: %d != %d + %d", res.Arrivals, res.Accepted, res.Rejected)
	}
	if res.TotalBandwidthMbps != 500 {
		t.Errorf("total bandwidth = %v", res.TotalBandwidthMbps)
	}
	if res.HorizonSeconds != 5*3600 {
		t.Errorf("horizon = %v", res.HorizonSeconds)
	}
	if res.StagingBufferMb <= 0 {
		t.Errorf("staging buffer = %v with StagingFrac 0.2", res.StagingBufferMb)
	}
	// Offered load calibration: λ·E[S] = capacity → arrival rate ×
	// horizon ≈ arrivals.
	wantArrivals := res.ArrivalRate * res.HorizonSeconds
	if float64(res.Arrivals) < wantArrivals*0.9 || float64(res.Arrivals) > wantArrivals*1.1 {
		t.Errorf("arrivals %d vs calibrated %v", res.Arrivals, wantArrivals)
	}
	if res.PlacedCopies != 220 {
		t.Errorf("placed copies = %d, want 220 (100 videos × 2.2)", res.PlacedCopies)
	}
	if res.PlacementShortfall != 0 {
		t.Errorf("shortfall = %d", res.PlacementShortfall)
	}
}

func TestRunDeterminism(t *testing.T) {
	a, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical scenarios diverged:\n%+v\n%+v", a, b)
	}
}

func TestRunSeedMatters(t *testing.T) {
	a, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	sc := quickScenario()
	sc.Seed = 2
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrivals == b.Arrivals && a.AcceptedMb == b.AcceptedMb {
		t.Error("different seeds produced identical runs")
	}
}

func TestRunConservation(t *testing.T) {
	res, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	// No failures: every accepted megabit is delivered once drained.
	if !approxEq(res.AcceptedMb, res.DeliveredMb, 1e-3) {
		t.Errorf("accepted %v Mb vs delivered %v Mb", res.AcceptedMb, res.DeliveredMb)
	}
	if res.Completions != res.Accepted {
		t.Errorf("completions %d != accepted %d", res.Completions, res.Accepted)
	}
}

func TestRunWithFailure(t *testing.T) {
	sc := quickScenario()
	sc.FailServer = 2
	sc.FailAtHours = 2
	sc.LoadFactor = 0.8
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.RescuedStreams+res.DroppedStreams == 0 {
		t.Error("failure had no effect on any stream")
	}
	if res.DeliveredMb > res.AcceptedMb+1e-3 {
		t.Errorf("delivered %v exceeds accepted %v", res.DeliveredMb, res.AcceptedMb)
	}
}

func TestRunObserver(t *testing.T) {
	sc := quickScenario()
	sc.HorizonHours = 1
	rec := &trace.Recorder{CountsOnly: true}
	sc.Observer = rec
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Admits != res.Accepted {
		t.Errorf("observer admits %d != accepted %d", rec.Admits, res.Accepted)
	}
	if rec.Rejects != res.Rejected {
		t.Errorf("observer rejects %d != rejected %d", rec.Rejects, res.Rejected)
	}
	if rec.Finishes != res.Completions {
		t.Errorf("observer finishes %d != completions %d", rec.Finishes, res.Completions)
	}
}

func TestRunMeanChainLength(t *testing.T) {
	sc := quickScenario()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdmissionsViaDRM > 0 && res.MeanChainLength < 1 {
		t.Errorf("mean chain length = %v with %d DRM admissions", res.MeanChainLength, res.AdmissionsViaDRM)
	}
	// Paper configuration: chain length is exactly one.
	if res.AdmissionsViaDRM > 0 && res.MeanChainLength != 1 {
		t.Errorf("mean chain = %v, want 1 under MaxChain=1", res.MeanChainLength)
	}
}

func TestRunTrials(t *testing.T) {
	agg, err := RunTrials(quickScenario(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Results) != 3 || agg.Utilization.N() != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
	// Trials differ (different derived seeds) but are all reasonable.
	if agg.Utilization.Min() == agg.Utilization.Max() {
		t.Error("all trials identical; seeds not derived per trial")
	}
	if agg.Utilization.Mean() < 0.5 {
		t.Errorf("mean utilization = %v", agg.Utilization.Mean())
	}
}

func TestRunTrialsDeterministic(t *testing.T) {
	a, err := RunTrials(quickScenario(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTrials(quickScenario(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if *a.Results[i] != *b.Results[i] {
			t.Errorf("trial %d diverged across identical RunTrials calls", i)
		}
	}
}

func TestRunTrialsErrors(t *testing.T) {
	if _, err := RunTrials(quickScenario(), 0); err == nil {
		t.Error("zero trials accepted")
	}
	sc := quickScenario()
	sc.Observer = &trace.Recorder{}
	if _, err := RunTrials(sc, 2); err == nil {
		t.Error("observer on multi-trial run accepted (would race)")
	}
	bad := quickScenario()
	bad.HorizonHours = -1
	if _, err := RunTrials(bad, 2); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestRunLoadFactor(t *testing.T) {
	light := quickScenario()
	light.Policy = PolicyP1()
	light.LoadFactor = 0.5
	lres, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	full := quickScenario()
	full.Policy = PolicyP1()
	fres, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	if lres.Utilization >= fres.Utilization {
		t.Errorf("half load utilization %v ≥ full load %v", lres.Utilization, fres.Utilization)
	}
	if lres.RejectionRatio > fres.RejectionRatio {
		t.Errorf("half load rejects more: %v vs %v", lres.RejectionRatio, fres.RejectionRatio)
	}
}

func TestRunAllPaperPolicies(t *testing.T) {
	for _, p := range PaperPolicies() {
		sc := quickScenario()
		sc.Policy = p
		sc.HorizonHours = 2
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Utilization <= 0 {
			t.Errorf("%s: utilization %v", p.Name, res.Utilization)
		}
		if !p.Migration && res.Migrations != 0 {
			t.Errorf("%s migrated %d streams without DRM", p.Name, res.Migrations)
		}
	}
}

func TestRunIntermittentPolicy(t *testing.T) {
	sc := quickScenario()
	sc.Policy = Policy{
		Name: "intermittent", Placement: EvenPlacement,
		StagingFrac: 0.2, Intermittent: true,
	}
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the minimum-flow twin on the same workload.
	base := quickScenario()
	base.Policy = PolicyP2()
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < bres.Accepted {
		t.Errorf("intermittent accepted %d < minimum-flow %d", res.Accepted, bres.Accepted)
	}
	if bres.GlitchedStreams != 0 {
		t.Errorf("minimum-flow glitched %d streams", bres.GlitchedStreams)
	}
}

func TestRunReplicationPolicy(t *testing.T) {
	sc := quickScenario()
	sc.Theta = -1 // skewed demand: replication has work to do
	sc.Policy = Policy{Name: "repl", Placement: EvenPlacement, Replicate: true}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicationsStarted == 0 || res.ReplicationsCompleted == 0 {
		t.Fatalf("no replication activity under skewed demand: %+v", res)
	}
	if res.ReplicatedMb <= 0 {
		t.Errorf("ReplicatedMb = %v", res.ReplicatedMb)
	}
	// Replication must improve on the bare baseline.
	base := sc
	base.Policy = PolicyP1()
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= bres.Utilization {
		t.Errorf("replication utilization %v not above baseline %v", res.Utilization, bres.Utilization)
	}
}

func TestRunClientMixPolicy(t *testing.T) {
	sc := quickScenario()
	sc.Policy = Policy{
		Name: "mix", Placement: EvenPlacement, Migration: true,
		ClientMix: []ClientClass{
			{Weight: 1, StagingFrac: 0.2, ReceiveCap: 30},
			{Weight: 1, StagingFrac: 0, ReceiveCap: 30},
		},
	}
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// A half-thin population should land between all-staged (P4) and
	// no-staging (P3).
	all := quickScenario()
	all.Policy = PolicyP4()
	ares, err := Run(all)
	if err != nil {
		t.Fatal(err)
	}
	none := quickScenario()
	none.Policy = PolicyP3()
	nres, err := Run(none)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > ares.Utilization+0.01 || res.Utilization < nres.Utilization-0.01 {
		t.Errorf("mixed population utilization %v outside [%v, %v]",
			res.Utilization, nres.Utilization, ares.Utilization)
	}
}

func TestPolicyValidateExtensions(t *testing.T) {
	cases := []Policy{
		{Intermittent: true},                     // no buffers anywhere
		{ResumeGuard: -1},                        // negative guard
		{ReplicationRate: -3},                    // negative copy rate
		{ClientMix: []ClientClass{{Weight: -1}}}, // negative weight
		{ClientMix: []ClientClass{{Weight: 0}}},  // no positive weight
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	good := Policy{StagingFrac: 0.2, Intermittent: true, ResumeGuard: 10, Replicate: true, ReplicationRate: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("valid extension policy rejected: %v", err)
	}
}

func TestRunInteractivePolicy(t *testing.T) {
	sc := quickScenario()
	sc.Policy.PauseProb = 0.5
	sc.Policy.MinPauseSec = 60
	sc.Policy.MaxPauseSec = 300
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewerPauses == 0 {
		t.Error("no pauses recorded at PauseProb=0.5")
	}
	// Conservation still holds with pauses in play.
	if !approxEq(res.AcceptedMb, res.DeliveredMb, 1e-3) {
		t.Errorf("accepted %v vs delivered %v", res.AcceptedMb, res.DeliveredMb)
	}
}

func TestPolicyValidateInteractivity(t *testing.T) {
	bad := []Policy{
		{PauseProb: -0.5},
		{PauseProb: 2},
		{PauseProb: 0.5}, // missing durations
		{PauseProb: 0.5, MinPauseSec: 9, MaxPauseSec: 3}, // inverted
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
	good := Policy{PauseProb: 0.3, MinPauseSec: 30, MaxPauseSec: 600}
	if err := good.Validate(); err != nil {
		t.Errorf("valid interactive policy rejected: %v", err)
	}
}

// fullObserver exercises every Observer callback through the public
// API: a failing server with DRM rescue, replication, and rejections.
type countingObserver struct {
	admits, rejects, migrates, finishes, failures, recoveries, replicates int
}

func (o *countingObserver) OnAdmit(t float64, id int64, v, s int, m bool) { o.admits++ }
func (o *countingObserver) OnReject(t float64, v int)                     { o.rejects++ }
func (o *countingObserver) OnMigrate(t float64, id int64, v, f, to int, r bool) {
	o.migrates++
}
func (o *countingObserver) OnFinish(t float64, id int64, v, s int) { o.finishes++ }
func (o *countingObserver) OnFailure(t float64, s, r, d, p int)    { o.failures++ }
func (o *countingObserver) OnRecovery(t float64, s int, cold bool) { o.recoveries++ }
func (o *countingObserver) OnReplicate(t float64, v, f, to int)    { o.replicates++ }

func TestObserverAdapterFullSurface(t *testing.T) {
	obs := &countingObserver{}
	sc := Scenario{
		System:       SmallSystem(),
		Policy:       Policy{Name: "all", Placement: EvenPlacement, Migration: true, Replicate: true},
		Theta:        -1, // rejections → replications
		HorizonHours: 10,
		Seed:         2,
		FailServer:   1,
		FailAtHours:  5,
		Observer:     obs,
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if int64(obs.admits) != res.Accepted || int64(obs.rejects) != res.Rejected {
		t.Errorf("admission callbacks %d/%d vs %d/%d", obs.admits, obs.rejects, res.Accepted, res.Rejected)
	}
	if obs.failures != 1 {
		t.Errorf("failures = %d", obs.failures)
	}
	if int64(obs.replicates) != res.ReplicationsCompleted {
		t.Errorf("replicate callbacks %d vs %d", obs.replicates, res.ReplicationsCompleted)
	}
	if obs.migrates == 0 && res.Migrations > 0 {
		t.Error("migration callbacks missing")
	}
}

func TestRunPatchingPolicy(t *testing.T) {
	sc := quickScenario()
	sc.Theta = -1 // hot titles overlap constantly
	sc.Policy = Policy{
		Name: "patch", Placement: EvenPlacement,
		StagingFrac: 0.2, PatchWindowSec: 600,
	}
	sc.CheckInvariants = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.PatchedJoins == 0 || res.SharedMb <= 0 {
		t.Fatalf("no patching activity under skew: %+v", res)
	}
	// Patching must raise acceptance over the unicast twin.
	base := sc
	base.Policy = PolicyP2()
	bres, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectionRatio >= bres.RejectionRatio {
		t.Errorf("patching rejection %v not below unicast %v", res.RejectionRatio, bres.RejectionRatio)
	}
	// Incompatibility surfaces as a validation error.
	bad := sc
	bad.Policy.Intermittent = true
	if _, err := Run(bad); err == nil {
		t.Error("patching + intermittent accepted")
	}
	bad = sc
	bad.Policy.Intermittent = false
	bad.Policy.PauseProb = 0.5
	bad.Policy.MinPauseSec, bad.Policy.MaxPauseSec = 10, 20
	if _, err := Run(bad); err == nil {
		t.Error("patching + interactivity accepted")
	}
}
