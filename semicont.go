// Package semicont is a simulation library for semi-continuous
// transmission in cluster-based video-on-demand servers, reproducing
//
//	S. Irani and N. Venkatasubramanian, "Semi-Continuous Transmission
//	for Cluster-Based Video Servers", IEEE CLUSTER 2001.
//
// A cluster of data servers streams constant-bit-rate videos to
// clients. Clients may own a staging buffer (disk) into which servers
// transmit ahead of playback with spare bandwidth (the EFTF scheduler),
// and the distribution controller may migrate active streams between
// replica holders to admit requests that would otherwise be rejected
// (dynamic request migration, DRM). The library models all of this as a
// deterministic fluid-flow discrete-event simulation and ships the
// placement strategies, workload generator, analytical model, and
// experiment harness needed to regenerate every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	sc := semicont.Scenario{
//	    System:       semicont.SmallSystem(),
//	    Policy:       semicont.PolicyP4(), // even placement + DRM + 20% staging
//	    Theta:        0.27,                // Zipf skew used in prior studies
//	    HorizonHours: 100,
//	    Seed:         1,
//	}
//	res, err := semicont.Run(sc)
//	// res.Utilization, res.Accepted, res.Rejected, ...
//
// See DESIGN.md for the model specification and EXPERIMENTS.md for the
// reproduction results.
package semicont

import (
	"fmt"
	"math"

	"semicont/internal/units"
)

// finite reports whether v is an ordinary number. NaN and ±Inf slip
// through ordered comparisons like v <= 0, so every Validate in this
// package checks explicitly: a scenario that validates must build and
// run (the fuzz targets enforce exactly that contract).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// System describes the hardware of a cluster (the rows of the paper's
// Figure 3): how many servers, their bandwidth and storage, and the
// video library they serve.
type System struct {
	// Name labels the system in reports ("small", "large", …).
	Name string

	// NumServers is the cluster size.
	NumServers int

	// ServerBandwidth is each server's transmission capacity in Mb/s.
	// Bandwidths, when non-nil, overrides it per server (heterogeneous
	// clusters); its length must equal NumServers.
	ServerBandwidth float64
	Bandwidths      []float64

	// DiskCapacity is each server's storage in Mb. Capacities, when
	// non-nil, overrides it per server.
	DiskCapacity float64
	Capacities   []float64

	// NumVideos is the library size.
	NumVideos int

	// MinVideoLength and MaxVideoLength bound the uniformly distributed
	// playback lengths, in seconds.
	MinVideoLength float64
	MaxVideoLength float64

	// AvgCopies is the mean number of replicas per video (≈2.2 in the
	// paper).
	AvgCopies float64

	// ViewRate is b_view in Mb/s (3 Mb/s throughout the paper).
	ViewRate float64
}

// SmallSystem returns the paper's small configuration (Figure 3): a
// five-server cluster delivering short clips — 100 Mb/s and 100 GB per
// server, 10–30 minute videos.
func SmallSystem() System {
	return System{
		Name:            "small",
		NumServers:      5,
		ServerBandwidth: 100,
		DiskCapacity:    float64(units.GB(100)),
		NumVideos:       100,
		MinVideoLength:  float64(units.Minutes(10)),
		MaxVideoLength:  float64(units.Minutes(30)),
		AvgCopies:       2.2,
		ViewRate:        3,
	}
}

// LargeSystem returns the paper's large configuration (Figure 3): a
// twenty-server cluster delivering feature-length movies — 300 Mb/s and
// 150 GB per server, 1–2 hour videos.
func LargeSystem() System {
	return System{
		Name:            "large",
		NumServers:      20,
		ServerBandwidth: 300,
		DiskCapacity:    float64(units.GB(150)),
		NumVideos:       100,
		MinVideoLength:  float64(units.Hours(1)),
		MaxVideoLength:  float64(units.Hours(2)),
		AvgCopies:       2.2,
		ViewRate:        3,
	}
}

// ScaleSystem returns a cluster of n 300 Mb/s servers serving a large
// short-clip library — the `*-large` experiment family's system. At
// n = 200 the calibrated arrival rate is ≈16.7 requests/second
// (≈60,000 per simulated hour), so the paper-default 100-hour horizon
// yields ~6×10^6 requests per trial and 167 hours yield 10^7; the
// streaming metrics layer keeps memory bounded regardless.
func ScaleSystem(n int) System {
	return System{
		Name:            fmt.Sprintf("scale-%d", n),
		NumServers:      n,
		ServerBandwidth: 300,
		DiskCapacity:    float64(units.GB(500)),
		NumVideos:       500,
		MinVideoLength:  float64(units.Minutes(10)),
		MaxVideoLength:  float64(units.Minutes(30)),
		AvgCopies:       2.2,
		ViewRate:        3,
	}
}

// SingleServer returns a one-server system with the given
// server-to-view bandwidth ratio, used by the SVBR validation
// experiment against the Erlang-B model.
func SingleServer(svbr int) System {
	return System{
		Name:            fmt.Sprintf("svbr-%d", svbr),
		NumServers:      1,
		ServerBandwidth: float64(svbr) * 3,
		DiskCapacity:    float64(units.GB(1000)),
		NumVideos:       50,
		MinVideoLength:  float64(units.Minutes(10)),
		MaxVideoLength:  float64(units.Minutes(30)),
		AvgCopies:       1,
		ViewRate:        3,
	}
}

// bandwidths returns the per-server bandwidth vector.
func (s System) bandwidths() []float64 {
	if s.Bandwidths != nil {
		return s.Bandwidths
	}
	out := make([]float64, s.NumServers)
	for i := range out {
		out[i] = s.ServerBandwidth
	}
	return out
}

// capacities returns the per-server storage vector.
func (s System) capacities() []float64 {
	if s.Capacities != nil {
		return s.Capacities
	}
	out := make([]float64, s.NumServers)
	for i := range out {
		out[i] = s.DiskCapacity
	}
	return out
}

// TotalBandwidth returns the aggregate cluster bandwidth in Mb/s.
func (s System) TotalBandwidth() float64 {
	t := 0.0
	for _, b := range s.bandwidths() {
		t += b
	}
	return t
}

// SVBR returns the server-to-view bandwidth ratio of (homogeneous)
// server 0 — the crucial utilization parameter of Section 3.2.
func (s System) SVBR() float64 { return s.bandwidths()[0] / s.ViewRate }

// Validate reports configuration errors.
func (s System) Validate() error {
	switch {
	case s.NumServers <= 0:
		return fmt.Errorf("semicont: NumServers must be positive, got %d", s.NumServers)
	case s.Bandwidths != nil && len(s.Bandwidths) != s.NumServers:
		return fmt.Errorf("semicont: %d bandwidths for %d servers", len(s.Bandwidths), s.NumServers)
	case s.Capacities != nil && len(s.Capacities) != s.NumServers:
		return fmt.Errorf("semicont: %d capacities for %d servers", len(s.Capacities), s.NumServers)
	case s.Bandwidths == nil && !(finite(s.ServerBandwidth) && s.ServerBandwidth > 0):
		return fmt.Errorf("semicont: ServerBandwidth must be positive, got %g", s.ServerBandwidth)
	case s.Capacities == nil && !(finite(s.DiskCapacity) && s.DiskCapacity > 0):
		return fmt.Errorf("semicont: DiskCapacity must be positive, got %g", s.DiskCapacity)
	case s.NumVideos <= 0:
		return fmt.Errorf("semicont: NumVideos must be positive, got %d", s.NumVideos)
	case !finite(s.MinVideoLength) || !finite(s.MaxVideoLength) ||
		s.MinVideoLength <= 0 || s.MaxVideoLength < s.MinVideoLength:
		return fmt.Errorf("semicont: invalid video length range [%g, %g]", s.MinVideoLength, s.MaxVideoLength)
	case !finite(s.AvgCopies) || s.AvgCopies < 1:
		return fmt.Errorf("semicont: AvgCopies %g < 1", s.AvgCopies)
	case s.AvgCopies > float64(s.NumServers):
		return fmt.Errorf("semicont: AvgCopies %g exceeds %d servers (one replica per server max)", s.AvgCopies, s.NumServers)
	case !(finite(s.ViewRate) && s.ViewRate > 0):
		return fmt.Errorf("semicont: ViewRate must be positive, got %g", s.ViewRate)
	}
	for i, b := range s.bandwidths() {
		if !finite(b) || b < s.ViewRate {
			return fmt.Errorf("semicont: server %d bandwidth %g below view rate %g", i, b, s.ViewRate)
		}
	}
	for i, c := range s.capacities() {
		if !(finite(c) && c > 0) {
			return fmt.Errorf("semicont: server %d capacity %g must be positive", i, c)
		}
	}
	return nil
}
