package semicont

import (
	"runtime"
	"testing"

	"semicont/internal/faults"
)

// faultScenario is the fault-heavy configuration the sampled-audit and
// stats determinism tests share: churn plus the retry queue and
// degraded playback, so every observation channel carries data.
func faultScenario() Scenario {
	sc := quickScenario()
	sc.HorizonHours = 2
	sc.Policy.Migration, sc.Policy.MaxHops, sc.Policy.MaxChain = true, 2, 1
	sc.Policy.RetryQueue = true
	sc.Policy.DegradedPlayback = true
	sc.Faults = faults.Config{MTBFHours: 0.5, MTTRHours: 0.1}
	return sc
}

// stripDist returns a copy of r with Dist detached, leaving only the
// comparable fields. Results carrying *DistStats cannot be compared
// with == (pointer identity); tests compare the flat fields this way
// and the sketches via DistStats.Equal.
func stripDist(r *Result) Result {
	c := *r
	c.Dist = nil
	return c
}

// TestSampledAuditDeterministicAcrossGOMAXPROCS pins the audit-sampling
// contract: the every-k-th-event choice keys off the deterministic
// event sequence number, so sampled-audit runs must be bit-identical —
// AuditedEvents included — at any GOMAXPROCS.
func TestSampledAuditDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := faultScenario()
	sc.Audit = true
	sc.AuditSample = 7
	run := func(procs int) *Aggregate {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		agg, err := RunTrials(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	serial := run(1)
	for _, procs := range []int{2, 8} {
		parallel := run(procs)
		for i := range serial.Results {
			if *serial.Results[i] != *parallel.Results[i] {
				t.Errorf("sampled-audit trial %d diverged at GOMAXPROCS=%d:\nserial   %+v\nparallel %+v",
					i, procs, serial.Results[i], parallel.Results[i])
			}
		}
	}
	for i, r := range serial.Results {
		if r.AuditedEvents == 0 {
			t.Errorf("sampled-audit trial %d snapshot-checked no events", i)
		}
	}
}

// TestAuditSamplingOnlyDropsSnapshots pins that sampling changes
// nothing but how many snapshots the auditor builds: a fault-heavy run
// audited at every event and at every 5th must agree on every result
// field except AuditedEvents, which must shrink accordingly.
func TestAuditSamplingOnlyDropsSnapshots(t *testing.T) {
	sc := faultScenario()
	sc.Audit = true

	sc.AuditSample = 1
	full, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.AuditSample = 5
	sampled, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}

	f, s := *full, *sampled
	f.AuditedEvents, s.AuditedEvents = 0, 0
	if f != s {
		t.Errorf("sampling perturbed the simulation:\nfull    %+v\nsampled %+v", full, sampled)
	}
	if sampled.AuditedEvents == 0 || sampled.AuditedEvents >= full.AuditedEvents {
		t.Errorf("sampled %d snapshots vs %d full — expected a strict reduction",
			sampled.AuditedEvents, full.AuditedEvents)
	}
	// Every 5th event plus integer truncation: the sampled count is
	// within one of full/5.
	if want := full.AuditedEvents / 5; sampled.AuditedEvents < want-1 || sampled.AuditedEvents > want+1 {
		t.Errorf("sampled %d snapshots, want ≈%d (full %d / 5)", sampled.AuditedEvents, want, full.AuditedEvents)
	}
}

// TestStatsMetamorphic pins the metamorphic contract of the streaming
// layer: enabling Stats is pure accumulation, so a run with it on must
// reproduce every other result field bit-identically, and the
// observation counts must tie out against the run's own accounting.
func TestStatsMetamorphic(t *testing.T) {
	sc := faultScenario()
	base, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Stats = true
	stat, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if *base != stripDist(stat) {
		t.Errorf("enabling Stats perturbed the run:\noff %+v\non  %+v", base, stat)
	}
	d := stat.Dist
	if d == nil {
		t.Fatal("Stats run returned nil Dist")
	}
	// Every admitted request observes a wait (immediate, patch-join, or
	// retry admission) exactly once.
	if got, want := int64(d.Wait.N()), stat.Accepted; got != want {
		t.Errorf("wait observations %d != %d accepted", got, want)
	}
	// Every retry episode ends exactly once: admission or reneging.
	if got, want := int64(d.RetrySojourn.N()), stat.RetriedAdmissions+stat.Reneged; got != want {
		t.Errorf("sojourn observations %d != %d retried + %d reneged", got, stat.RetriedAdmissions, stat.Reneged)
	}
	// Every park episode ends exactly once: resume or glitch-drop.
	if got, want := int64(d.Park.N()), stat.DegradedResumed+stat.DegradedGlitches; got != want {
		t.Errorf("park observations %d != %d resumed + %d glitched", got, stat.DegradedResumed, stat.DegradedGlitches)
	}
	// Every stream leaving the cluster observes its migration count.
	if got, want := int64(d.Migrations.N()), stat.Completions+stat.DroppedStreams; got != want {
		t.Errorf("migration observations %d != %d completions + %d dropped", got, stat.Completions, stat.DroppedStreams)
	}
	// Glitch episodes: degraded buffer dry-outs (intermittent is off in
	// this scenario, so its channel contributes nothing here).
	if got, want := int64(d.Glitch.N()), stat.DegradedGlitches; got != want {
		t.Errorf("glitch observations %d != %d degraded glitches", got, want)
	}
	if stat.RetriedAdmissions == 0 || stat.DegradedParked == 0 {
		t.Error("scenario exercised no retries or parks — observation ties are vacuous")
	}

	// Same scenario again: the sketches themselves are deterministic.
	again, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !stat.Dist.Equal(again.Dist) {
		t.Error("identical Stats runs produced different sketches")
	}
}

// TestStatsDeterministicAcrossGOMAXPROCS extends the parallel-trial
// contract to the streaming layer: per-trial sketches and the
// trial-merged aggregate must be bit-identical at any GOMAXPROCS.
func TestStatsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sc := faultScenario()
	sc.Stats = true
	run := func(procs int) *Aggregate {
		t.Helper()
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		agg, err := RunTrials(sc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial.Results {
		if stripDist(serial.Results[i]) != stripDist(parallel.Results[i]) {
			t.Errorf("stats trial %d diverged across GOMAXPROCS", i)
		}
		if !serial.Results[i].Dist.Equal(parallel.Results[i].Dist) {
			t.Errorf("stats trial %d sketches diverged across GOMAXPROCS", i)
		}
	}
	if serial.Dist == nil || !serial.Dist.Equal(parallel.Dist) {
		t.Error("trial-merged sketches diverged across GOMAXPROCS")
	}
	if serial.Dist.Wait.N() == 0 {
		t.Error("merged wait sketch is empty — the scenario observed nothing")
	}
}
