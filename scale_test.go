package semicont

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"semicont/internal/faults"
)

// scaleCell returns one cell of the `*-large` experiment family: an
// n-server ScaleSystem under the full fault-tolerance stack at 0.9
// offered load, so every observation channel (wait, retry sojourn,
// glitch, migrations, park) carries data. The 200-server cell
// calibrates to ≈54,000 requests per simulated hour; HorizonHours is
// the request-count dial.
func scaleCell(n int, horizonHours float64) Scenario {
	return Scenario{
		System: ScaleSystem(n),
		Policy: Policy{
			Name:             "scale-faulttol",
			Placement:        EvenPlacement,
			StagingFrac:      0.2,
			ReceiveCap:       DefaultReceiveCap,
			Allocator:        AllocatorEFTF,
			Migration:        true,
			MaxHops:          UnlimitedHops,
			MaxChain:         1,
			RetryQueue:       true,
			DegradedPlayback: true,
		},
		Theta:        0.271,
		LoadFactor:   0.9,
		HorizonHours: horizonHours,
		Seed:         1,
		Stats:        true,
		Faults:       faults.Config{MTBFHours: 8, MTTRHours: 0.5},
	}
}

// TestEngineAllocsBoundedPerRequest guards the memory diet: steady-state
// request handling must run entirely off the engine's freelists, so the
// malloc count of a long run over a short one grows by (almost) nothing
// per additional request. A regression that allocates once per request
// shows up here as a per-request rate near 1 instead of near 0.
func TestEngineAllocsBoundedPerRequest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hour scale cells are slow under -short")
	}
	measure := func(hours float64) (allocs uint64, requests int64) {
		t.Helper()
		sc := scaleCell(50, hours)
		// GC first so both measurements start from drained sync.Pools:
		// each run then pays the same engine-construction cost, which
		// the long-minus-short subtraction cancels.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, res.Arrivals
	}
	measure(1) // warm the workload generator's lazy state out of the delta
	shortAllocs, shortReqs := measure(2)
	longAllocs, longReqs := measure(8)
	if longReqs <= shortReqs {
		t.Fatalf("horizon did not scale requests: %d vs %d", shortReqs, longReqs)
	}
	extra := float64(longAllocs) - float64(shortAllocs)
	perReq := extra / float64(longReqs-shortReqs)
	t.Logf("allocs: %d @ %d requests, %d @ %d requests → %.4f allocs/request",
		shortAllocs, shortReqs, longAllocs, longReqs, perReq)
	// The freelists make steady state allocation-free; 0.5 leaves slack
	// for GC-clock noise while still catching any once-per-request site.
	if perReq > 0.5 {
		t.Errorf("%.4f allocations per request; steady state must recycle, not allocate", perReq)
	}
}

// scaleBench is one row of BENCH_scale.json.
type scaleBench struct {
	HorizonHours float64 `json:"horizon_hours"`
	Requests     int64   `json:"requests"`
	WallS        float64 `json:"wall_s"`
	PeakRSSMB    float64 `json:"peak_rss_mb"`
	WaitP50      float64 `json:"wait_p50"`
	WaitP95      float64 `json:"wait_p95"`
	WaitP99      float64 `json:"wait_p99"`
	GlitchP99    float64 `json:"glitch_p99"`
}

func loadScaleBench(t *testing.T, name string) scaleBench {
	t.Helper()
	raw, err := os.ReadFile("BENCH_scale.json")
	if err != nil {
		t.Fatalf("missing baseline: %v", err)
	}
	var doc struct {
		Benchmarks map[string]scaleBench `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_scale.json: %v", err)
	}
	b, ok := doc.Benchmarks[name]
	if !ok {
		t.Fatalf("BENCH_scale.json has no %q row", name)
	}
	return b
}

// readPeakRSSMB returns the process's peak resident set (VmHWM) in MB.
func readPeakRSSMB(t *testing.T) float64 {
	t.Helper()
	f, err := os.Open("/proc/self/status")
	if err != nil {
		t.Skipf("no /proc/self/status: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var kb float64
		if _, err := fmt.Sscanf(sc.Text(), "VmHWM: %f kB", &kb); err == nil {
			return kb / 1024
		}
	}
	t.Skip("no VmHWM line in /proc/self/status")
	return 0
}

// resetPeakRSS resets the kernel's RSS high-water mark to the current
// RSS so VmHWM reflects this test, not earlier ones. Best-effort: on
// kernels that refuse the write, VmHWM stays a (looser) upper bound.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// runScaleCell runs one 200-server cell and reports its measurements.
func runScaleCell(t *testing.T, horizonHours float64) (res *Result, wallS, rssMB float64) {
	t.Helper()
	sc := scaleCell(200, horizonHours)
	sc.Audit = true
	sc.AuditSample = 512 // the family's sampling rate; full snapshots are O(servers)
	runtime.GC()
	resetPeakRSS()
	start := time.Now()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	wallS = time.Since(start).Seconds()
	rssMB = readPeakRSSMB(t)
	w, g := res.Dist.Wait.Summary(), res.Dist.Glitch.Summary()
	t.Logf("scale cell %gh: requests=%d wall=%.1fs peak_rss=%.0fMB audited=%d",
		horizonHours, res.Arrivals, wallS, rssMB, res.AuditedEvents)
	t.Logf("  wait   p50=%.6f p95=%.6f p99=%.6f (n=%d)", w.P50, w.P95, w.P99, res.Dist.Wait.N())
	t.Logf("  glitch p50=%.6f p95=%.6f p99=%.6f (n=%d)", g.P50, g.P95, g.P99, res.Dist.Glitch.N())
	return res, wallS, rssMB
}

// TestScaleSmoke runs the smallest `*-large` cell (~10^6 requests,
// ~18 simulated hours on 200 servers) against the BENCH_scale.json
// baseline: the arrival count and wait/glitch quantiles must be
// bit-identical (the determinism contract extends to the sketches), and
// wall/RSS must stay within slack of the recorded run. Gated behind
// SEMICONT_SCALE_SMOKE=1 — CI's scale-smoke job sets it; local `go
// test` skips.
func TestScaleSmoke(t *testing.T) {
	if os.Getenv("SEMICONT_SCALE_SMOKE") == "" {
		t.Skip("set SEMICONT_SCALE_SMOKE=1 to run the ~10^6-request scale smoke")
	}
	base := loadScaleBench(t, "ScaleTrial1e6")
	res, wallS, rssMB := runScaleCell(t, base.HorizonHours)
	if res.Arrivals != base.Requests {
		t.Errorf("arrivals = %d, baseline %d — the workload is no longer deterministic", res.Arrivals, base.Requests)
	}
	w, g := res.Dist.Wait.Summary(), res.Dist.Glitch.Summary()
	if w.P50 != base.WaitP50 || w.P95 != base.WaitP95 || w.P99 != base.WaitP99 {
		t.Errorf("wait quantiles %.9g/%.9g/%.9g, baseline %.9g/%.9g/%.9g — sketch determinism broken",
			w.P50, w.P95, w.P99, base.WaitP50, base.WaitP95, base.WaitP99)
	}
	if g.P99 != base.GlitchP99 {
		t.Errorf("glitch p99 = %.9g, baseline %.9g", g.P99, base.GlitchP99)
	}
	if wallS > base.WallS*4 {
		t.Errorf("wall %.1fs exceeds 4× baseline %.1fs", wallS, base.WallS)
	}
	if rssMB > base.PeakRSSMB*2 {
		t.Errorf("peak RSS %.0fMB exceeds 2× baseline %.0fMB", rssMB, base.PeakRSSMB)
	}
}

// TestScaleDemo10M is the headline demonstration: a single 10^7-request
// trial (≈185 simulated hours) completes in bounded memory — peak RSS
// comparable to the 10^6-request run, i.e. independent of request
// count, because the streaming layer retains sketches, not samples.
// Gated behind SEMICONT_SCALE_DEMO=1 (~a minute of wall clock).
func TestScaleDemo10M(t *testing.T) {
	if os.Getenv("SEMICONT_SCALE_DEMO") == "" {
		t.Skip("set SEMICONT_SCALE_DEMO=1 to run the 10^7-request demonstration")
	}
	small := loadScaleBench(t, "ScaleTrial1e6")
	base := loadScaleBench(t, "ScaleTrial1e7")
	res, _, rssMB := runScaleCell(t, base.HorizonHours)
	if res.Arrivals != base.Requests {
		t.Errorf("arrivals = %d, baseline %d", res.Arrivals, base.Requests)
	}
	if res.Arrivals < 9_000_000 {
		t.Errorf("only %d requests — not a 10^7-scale run", res.Arrivals)
	}
	// The claim under test: 10× the requests, same memory.
	if rssMB > small.PeakRSSMB*2 {
		t.Errorf("peak RSS %.0fMB at 10^7 requests exceeds 2× the 10^6-request baseline %.0fMB — memory is not request-count independent",
			rssMB, small.PeakRSSMB)
	}
	if res.Dist.Wait.N() == 0 || res.Dist.Glitch.N() == 0 {
		t.Error("wait/glitch sketches are empty at 10^7 requests")
	}
}
