package semicont

import (
	"fmt"

	"semicont/internal/analytic"
	"semicont/internal/catalog"
	"semicont/internal/placement"
	"semicont/internal/rng"
	"semicont/internal/workload"
)

// Analysis is the closed-form performance estimate for a scenario
// under continuous transmission (policy P1), extending the paper's
// single-server Erlang-B validation (Section 3.2) to the cluster.
type Analysis struct {
	// FixedPoint is the reduced-load (Erlang fixed-point) utilization
	// estimate. Its independence assumption makes it optimistic; the
	// E-ANA experiment quantifies by how much.
	FixedPoint float64
	// NoSharing treats every server as an isolated Erlang-B system
	// with its nominal traffic share — the partitioned end of the
	// sharing spectrum (heuristic lower bracket).
	NoSharing float64
	// CompleteSharing pools all slots into one loss system — an upper
	// bracket no replication scheme can beat.
	CompleteSharing float64
}

// Analyze computes the Analysis for a scenario, using exactly the
// catalog, placement, and calibrated arrival rate that Run would
// simulate for the same scenario and seed.
func Analyze(sc Scenario) (*Analysis, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sys := sc.System

	cat, err := catalog.Generate(catalog.Config{
		NumVideos: sys.NumVideos,
		MinLength: sys.MinVideoLength,
		MaxLength: sys.MaxVideoLength,
		ViewRate:  sys.ViewRate,
		Theta:     sc.Theta,
	}, rng.New(rng.DeriveSeed(sc.Seed, seedCatalog)))
	if err != nil {
		return nil, err
	}
	lay, err := placement.Build(placementStrategy(sc.Policy), cat, sys.AvgCopies,
		sys.capacities(), rng.New(rng.DeriveSeed(sc.Seed, seedPlacement)))
	if err != nil {
		return nil, err
	}
	load := sc.LoadFactor
	if load == 0 {
		load = 1
	}
	rate, err := workload.CalibratedRate(cat, sys.TotalBandwidth(), load)
	if err != nil {
		return nil, err
	}

	bws := sys.bandwidths()
	model := &analytic.ClusterModel{
		Slots:   make([]int, len(bws)),
		Load:    make([]float64, cat.Len()),
		Holders: make([][]int, cat.Len()),
	}
	for s, b := range bws {
		model.Slots[s] = int(b / sys.ViewRate)
		if model.Slots[s] < 1 {
			return nil, fmt.Errorf("semicont: server %d has no slots", s)
		}
	}
	for v := 0; v < cat.Len(); v++ {
		video := cat.Video(v)
		// Offered load of video v in Erlangs: arrival rate × share ×
		// holding time.
		model.Load[v] = rate * video.Prob * video.Length
		hs := lay.Holders(v)
		model.Holders[v] = make([]int, len(hs))
		for i, h := range hs {
			model.Holders[v][i] = int(h)
		}
	}
	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	// Convert carried streams to carried bandwidth over true capacity
	// (a server's capacity is not an exact multiple of b_view).
	norm := sys.ViewRate / sys.TotalBandwidth()
	carried := 0.0
	for v, loss := range sol.VideoLoss {
		carried += model.Load[v] * (1 - loss)
	}
	lower, err := model.NoSharing()
	if err != nil {
		return nil, err
	}
	upper, err := model.CompleteSharing()
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		FixedPoint:      carried * norm,
		NoSharing:       lower * norm,
		CompleteSharing: upper * norm,
	}
	// The raw independence approximation can exceed the provable
	// complete-sharing ceiling (its known pathology with small sharing
	// groups); clip it to keep the estimate consistent.
	if a.FixedPoint > a.CompleteSharing {
		a.FixedPoint = a.CompleteSharing
	}
	return a, nil
}
